/**
 * @file
 * GPU-package model tests: device-timeline invariants, Section 6
 * findings (multi-GPU efficiency collapse, memcpy dominance, eam/chain
 * flip, Chute unsupported), Section 7/8 sensitivities, and anchors.
 */

#include <gtest/gtest.h>

#include "gpusim/gpu_model.h"
#include "util/error.h"

namespace mdbench {
namespace {

void
expectNear(double measured, double paper, double band,
           const std::string &what)
{
    EXPECT_GT(measured, paper / band) << what;
    EXPECT_LT(measured, paper * band) << what;
}

TEST(GpuModel, ChuteRejected)
{
    const GpuModel model;
    const auto chute = WorkloadInstance::make(BenchmarkId::Chute, 32000);
    EXPECT_THROW(model.evaluate(chute, 1), FatalError);
}

TEST(GpuModel, GpuBenchmarksExcludeChute)
{
    for (BenchmarkId id : gpuBenchmarks())
        EXPECT_NE(id, BenchmarkId::Chute);
    EXPECT_EQ(gpuBenchmarks().size(), 4u);
}

TEST(GpuModel, BreakdownAndTimelineConsistent)
{
    const GpuModel model;
    for (BenchmarkId id : gpuBenchmarks()) {
        const auto w = WorkloadInstance::make(id, 256000);
        const auto result = model.evaluate(w, 4);
        double taskSum = 0.0;
        for (std::size_t t = 0; t < kNumTasks; ++t)
            taskSum += result.taskBreakdown.fraction(static_cast<Task>(t));
        EXPECT_NEAR(taskSum, 1.0, 1e-9) << benchmarkName(id);
        double activitySum = 0.0;
        for (std::size_t a = 0; a < kNumGpuActivities; ++a)
            activitySum +=
                result.activityFraction(static_cast<GpuActivity>(a));
        EXPECT_NEAR(activitySum, 1.0, 1e-9) << benchmarkName(id);
        EXPECT_GT(result.deviceUtilization, 0.0);
        EXPECT_LT(result.deviceUtilization, 1.0);
    }
}

TEST(GpuModel, MultiDeviceEfficiencyCollapses)
{
    // Section 6.2: parallel efficiency drops below ~30% for some
    // benchmarks on 8 devices (as low as 23.28%).
    const GpuModel model;
    double worst = 100.0;
    for (BenchmarkId id : gpuBenchmarks()) {
        for (long sizeK : paperSizesK()) {
            const auto w = WorkloadInstance::make(id, sizeK * 1000);
            worst = std::min(worst, model.parallelEfficiency(w, 8));
        }
    }
    EXPECT_LT(worst, 30.0);
    EXPECT_GT(worst, 10.0);
}

TEST(GpuModel, SmallSystemsScaleWorst)
{
    const GpuModel model;
    const auto small = WorkloadInstance::make(BenchmarkId::LJ, 32000);
    const auto large = WorkloadInstance::make(BenchmarkId::LJ, 2048000);
    EXPECT_LT(model.parallelEfficiency(small, 8),
              model.parallelEfficiency(large, 8));
}

TEST(GpuModel, EamOutperformsChainUnlikeCpu)
{
    // Section 6.2 finding, contrary to the CPU ordering.
    const GpuModel model;
    const auto eam = WorkloadInstance::make(BenchmarkId::EAM, 2048000);
    const auto chain = WorkloadInstance::make(BenchmarkId::Chain, 2048000);
    EXPECT_GT(model.evaluate(eam, 8).timestepsPerSecond,
              model.evaluate(chain, 8).timestepsPerSecond);
}

TEST(GpuModel, EamKernelsSlowerThanCharmm)
{
    // Fig. 8 finding: k_eam_fast + k_energy_fast run longer than
    // k_charmm_long at matched size/devices.
    const GpuModel model;
    const auto eam = WorkloadInstance::make(BenchmarkId::EAM, 864000);
    const auto rhodo = WorkloadInstance::make(BenchmarkId::Rhodo, 864000);
    const auto eamResult = model.evaluate(eam, 4);
    const auto rhodoResult = model.evaluate(rhodo, 4);
    const double eamKernels =
        eamResult.deviceSecondsOf(GpuActivity::KEamFast) +
        eamResult.deviceSecondsOf(GpuActivity::KEnergyFast);
    EXPECT_GT(eamKernels,
              rhodoResult.deviceSecondsOf(GpuActivity::KCharmmLong));
    // EAM's pair share stays dominant on the device (Section 6.1).
    EXPECT_GT(eamResult.taskBreakdown.fraction(Task::Pair), 0.4);
}

TEST(GpuModel, RhodoNeighborKernelBreaksAtTwoMillion)
{
    // Fig. 8: calc_neigh_list_cell becomes prevalent at 2048k.
    const GpuModel model;
    const auto medium = WorkloadInstance::make(BenchmarkId::Rhodo, 864000);
    const auto large = WorkloadInstance::make(BenchmarkId::Rhodo, 2048000);
    const double mediumShare =
        model.evaluate(medium, 8)
            .activityFraction(GpuActivity::CalcNeighListCell);
    const double largeShare =
        model.evaluate(large, 8)
            .activityFraction(GpuActivity::CalcNeighListCell);
    EXPECT_GT(largeShare, 2.0 * mediumShare);
}

TEST(GpuModel, MemcpyGrowsWithTighterThreshold)
{
    // Section 7: lowering the threshold makes CUDA memcpy grow
    // substantially, shadowing the kernels.
    const GpuModel model;
    const auto loose =
        WorkloadInstance::make(BenchmarkId::Rhodo, 864000, 1e-4);
    const auto tight =
        WorkloadInstance::make(BenchmarkId::Rhodo, 864000, 1e-7);
    const auto looseResult = model.evaluate(loose, 8);
    const auto tightResult = model.evaluate(tight, 8);
    const double looseMemcpy =
        looseResult.activityFraction(GpuActivity::MemcpyHtoD) +
        looseResult.activityFraction(GpuActivity::MemcpyDtoH);
    const double tightMemcpy =
        tightResult.activityFraction(GpuActivity::MemcpyHtoD) +
        tightResult.activityFraction(GpuActivity::MemcpyDtoH);
    EXPECT_GT(tightMemcpy, looseMemcpy);
    EXPECT_GT(tightMemcpy, 0.6);
    EXPECT_LT(tightResult.deviceUtilization,
              looseResult.deviceUtilization);
}

TEST(GpuModel, PaperAnchors)
{
    const GpuModel model;
    const double band = 1.45;

    const auto rhodo4 =
        WorkloadInstance::make(BenchmarkId::Rhodo, 2048000, 1e-4);
    expectNear(model.evaluate(rhodo4, 8).timestepsPerSecond, 16.09, band,
               "rhodo 2M 8g 1e-4");
    expectNear(model.evaluate(rhodo4, 8).nsPerDay, 2.8, band,
               "rhodo ns/day");
    // "the average utilization per GPU reaches only 30%"
    expectNear(model.evaluate(rhodo4, 8).deviceUtilization, 0.30, 1.5,
               "gpu utilization");

    const auto rhodo7 =
        WorkloadInstance::make(BenchmarkId::Rhodo, 2048000, 1e-7);
    // The collapse is over an order of magnitude (16.09 -> 0.46);
    // allow a wider band on the extreme point.
    expectNear(model.evaluate(rhodo7, 8).timestepsPerSecond, 0.46, 3.5,
               "rhodo 2M 8g 1e-7");

    const auto ljSingle = WorkloadInstance::make(
        BenchmarkId::LJ, 2048000, 1e-4, Precision::Single);
    expectNear(model.evaluate(ljSingle, 8).timestepsPerSecond, 170.0,
               band, "lj single 8g");
    const auto ljDouble = WorkloadInstance::make(
        BenchmarkId::LJ, 2048000, 1e-4, Precision::Double);
    expectNear(model.evaluate(ljDouble, 8).timestepsPerSecond, 121.6,
               band, "lj double 8g");
}

TEST(GpuModel, PrecisionSensitivityMatchesPaper)
{
    // LJ on GPU is the most precision sensitive; rhodo is nearly flat
    // (Fig. 16: 17.1 -> 16.5).
    const GpuModel model;
    auto ratioFor = [&](BenchmarkId id) {
        const auto single =
            WorkloadInstance::make(id, 2048000, 1e-4, Precision::Single);
        const auto dbl =
            WorkloadInstance::make(id, 2048000, 1e-4, Precision::Double);
        return model.evaluate(single, 8).timestepsPerSecond /
               model.evaluate(dbl, 8).timestepsPerSecond;
    };
    const double ljRatio = ratioFor(BenchmarkId::LJ);
    const double rhodoRatio = ratioFor(BenchmarkId::Rhodo);
    EXPECT_GT(ljRatio, 1.2);
    EXPECT_LT(rhodoRatio, 1.1);
    EXPECT_GT(rhodoRatio, 0.99);
}

TEST(GpuModel, ActivityNamesMatchFigure8Legend)
{
    EXPECT_STREQ(gpuActivityName(GpuActivity::KLjFast), "k lj fast");
    EXPECT_STREQ(gpuActivityName(GpuActivity::MakeRho), "make rho");
    EXPECT_STREQ(gpuActivityName(GpuActivity::MemcpyHtoD),
                 "[CUDA memcpy HtoD]");
    EXPECT_STREQ(gpuActivityName(GpuActivity::CalcNeighListCell),
                 "calc neigh list cell");
}

TEST(GpuModel, PowerWithinEnvelope)
{
    const GpuModel model;
    const auto w = WorkloadInstance::make(BenchmarkId::LJ, 2048000);
    const auto result = model.evaluate(w, 8);
    // 8 devices + dual-socket host.
    EXPECT_GT(result.powerWatts, 8 * 52.0);
    EXPECT_LT(result.powerWatts, 8 * 300.0 + 2 * 165.0 + 150.0);
}

} // namespace
} // namespace mdbench
