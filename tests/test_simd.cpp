/**
 * @file
 * The portable SIMD compute layer (DESIGN.md §12): wrapper-op semantics
 * of the generic and compiled backends, the padded neighbor packing,
 * scalar-vs-SIMD kernel agreement at every width, thread-count
 * invariance of the vector kernels, the sort-interaction regression,
 * and the width-selection API.
 */

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstdint>
#include <functional>
#include <memory>
#include <random>
#include <vector>

#include "core/suite.h"
#include "md/neighbor.h"
#include "md/simulation.h"
#include "obs/counters.h"
#include "util/simd.h"
#include "util/thread_pool.h"

namespace mdbench {
namespace {

using D2 = Simd<double, 2>;
using D4 = Simd<double, 4>;
using I2 = SimdIndex<2>;

/** Restore the environment-default width when a test exits. */
struct WidthGuard
{
    ~WidthGuard() { setSimdWidth(-1); }
};

/** Deterministic displacement so lattice symmetry doesn't hide bugs. */
void
jitter(Simulation &sim)
{
    std::mt19937_64 rng(999);
    std::uniform_real_distribution<double> jig(-0.03, 0.03);
    for (std::size_t i = 0; i < sim.atoms.nlocal(); ++i) {
        sim.atoms.x[i].x += jig(rng);
        sim.atoms.x[i].y += jig(rng);
        sim.atoms.x[i].z += jig(rng);
    }
}

using Builder = std::function<std::unique_ptr<Simulation>()>;

std::unique_ptr<Simulation>
builtLJ()
{
    auto sim = buildLJ(4);
    jitter(*sim);
    sim->thermoEvery = 0;
    sim->setup();
    return sim;
}

std::unique_ptr<Simulation>
builtEAM()
{
    auto sim = buildEAM(4);
    jitter(*sim);
    sim->thermoEvery = 0;
    sim->setup();
    return sim;
}

std::unique_ptr<Simulation>
builtCharmm()
{
    auto sim = buildRhodoProxy(8);
    sim->thermoEvery = 0;
    sim->setup();
    return sim;
}

struct Comparison
{
    double maxForceDiff = 0.0;
    bool forcesExact = true;
    double energyDiff = 0.0; ///< relative to the scalar reference
};

/** Forces/energy of a width-@p w setup against the scalar kernels. */
Comparison
compareAgainstScalar(const Builder &build, int w)
{
    setSimdWidth(0);
    auto ref = build();
    setSimdWidth(w);
    auto sim = build();
    Comparison c;
    EXPECT_EQ(ref->atoms.nlocal(), sim->atoms.nlocal());
    for (std::size_t i = 0; i < sim->atoms.nlocal(); ++i) {
        const Vec3 a = sim->atoms.f[i];
        const Vec3 b = ref->atoms.f[i];
        c.maxForceDiff =
            std::max({c.maxForceDiff, std::abs(a.x - b.x),
                      std::abs(a.y - b.y), std::abs(a.z - b.z)});
        if (a.x != b.x || a.y != b.y || a.z != b.z)
            c.forcesExact = false;
    }
    const double refEnergy = ref->potentialEnergy();
    c.energyDiff = std::abs(sim->potentialEnergy() - refEnergy) /
                   std::max(1.0, std::abs(refEnergy));
    return c;
}

// -------------------------------------------------------- wrapper ops

TEST(SimdOps, BroadcastLoadStoreRoundTrip)
{
    const double vals[2] = {1.5, -2.25};
    const auto v = D2::loadu(vals);
    double out[2] = {};
    v.storeu(out);
    EXPECT_EQ(out[0], 1.5);
    EXPECT_EQ(out[1], -2.25);
    const D2 b(3.0);
    EXPECT_EQ(b.lane(0), 3.0);
    EXPECT_EQ(b.lane(1), 3.0);
}

TEST(SimdOps, ArithmeticMatchesScalarPerLane)
{
    const double a[2] = {1.75, -0.5};
    const double b[2] = {0.3, 4.0};
    const auto va = D2::loadu(a);
    const auto vb = D2::loadu(b);
    for (int l = 0; l < 2; ++l) {
        EXPECT_EQ((va + vb).lane(l), a[l] + b[l]);
        EXPECT_EQ((va - vb).lane(l), a[l] - b[l]);
        EXPECT_EQ((va * vb).lane(l), a[l] * b[l]);
        EXPECT_EQ((va / vb).lane(l), a[l] / b[l]);
        EXPECT_EQ(D2::sqrt(vb).lane(l), std::sqrt(b[l]));
        EXPECT_EQ(D2::min(va, vb).lane(l),
                  std::min(a[l], b[l]));
        EXPECT_EQ(D2::max(va, vb).lane(l),
                  std::max(a[l], b[l]));
    }
}

TEST(SimdOps, GenericFmaIsDeliberatelyUnfused)
{
    // Chosen so the rounded product differs from the infinitely precise
    // one: (1 + 2^-27)^2 = 1 + 2^-26 + 2^-54, and the last term is
    // below double precision at this magnitude.
    const double a = 1.0 + std::ldexp(1.0, -27);
    const D2 va(a);
    const D2 vc(-1.0);
    const double unfused = (a * a) + (-1.0);
    const double fused = std::fma(a, a, -1.0);
    ASSERT_NE(unfused, fused); // the probe is meaningful
    EXPECT_EQ((D2::fma(va, va, vc)).lane(0), unfused);
    EXPECT_EQ((D2::fms(va, va, D2(1.0))).lane(0),
              (a * a) - 1.0);
}

TEST(SimdOps, MaskBitsSelectAndCombine)
{
    const double a[4] = {1.0, 5.0, 2.0, 7.0};
    const auto va = D4::loadu(a);
    const D4 three(3.0);
    const auto lt = va < three; // lanes 0, 2
    EXPECT_EQ(lt.bits(), 0b0101);
    EXPECT_TRUE(lt.lane(0));
    EXPECT_FALSE(lt.lane(1));
    const auto gt = va > three; // lanes 1, 3
    EXPECT_EQ(gt.bits(), 0b1010);
    EXPECT_EQ((lt & gt).bits(), 0);
    const auto sel = D4::select(lt, va, three);
    EXPECT_EQ(sel.lane(0), 1.0);
    EXPECT_EQ(sel.lane(1), 3.0);
    EXPECT_EQ(sel.lane(2), 2.0);
    EXPECT_EQ(sel.lane(3), 3.0);
    const D4 zero(0.0);
    EXPECT_EQ((zero != zero).bits(), 0);
}

TEST(SimdOps, GatherAndIndexArithmetic)
{
    const double table[8] = {0, 10, 20, 30, 40, 50, 60, 70};
    const int types[4] = {2, 0, 3, 1};
    const std::uint32_t raw[2] = {3, 1};
    const auto idx = I2::load(raw);
    EXPECT_EQ(idx.lane(0), 3u);
    EXPECT_EQ(idx.lane(1), 1u);
    const auto scaled = idx * 2u + 1u;
    EXPECT_EQ(scaled.lane(0), 7u);
    EXPECT_EQ(scaled.lane(1), 3u);
    const auto g = D2::gather(table, scaled);
    EXPECT_EQ(g.lane(0), 70.0);
    EXPECT_EQ(g.lane(1), 30.0);
    const auto t = I2::gather32(types, idx); // types[3], types[1]
    EXPECT_EQ(t.lane(0), 1u);
    EXPECT_EQ(t.lane(1), 0u);
    EXPECT_EQ(I2::min(idx, 2u).lane(0), 2u);
    const D2 x(2.75);
    EXPECT_EQ(D2::truncToIndex(x).lane(0), 2u);
    EXPECT_EQ(D2::fromIndex(idx).lane(0), 3.0);
}

TEST(SimdOps, LoadXyzwTransposesFourDoubleRecords)
{
    // records r: [100r, 100r+1, 100r+2, 100r+3]
    double pack[4 * 5];
    for (int r = 0; r < 5; ++r)
        for (int c = 0; c < 4; ++c)
            pack[4 * r + c] = 100.0 * r + c;
    const std::uint32_t idx[4] = {4, 0, 2, 1};
    D4 x, y, z, w;
    loadXyzw(pack, idx, x, y, z, w);
    for (int l = 0; l < 4; ++l) {
        EXPECT_EQ(x.lane(l), 100.0 * idx[l] + 0);
        EXPECT_EQ(y.lane(l), 100.0 * idx[l] + 1);
        EXPECT_EQ(z.lane(l), 100.0 * idx[l] + 2);
        EXPECT_EQ(w.lane(l), 100.0 * idx[l] + 3);
    }
}

TEST(SimdOps, SumIsAscendingLaneOrder)
{
    // Order-sensitive values: any other association changes the result.
    const double vals[4] = {1e16, 1.0, -1e16, 1.0};
    const auto v = D4::loadu(vals);
    double expected = vals[0];
    for (int l = 1; l < 4; ++l)
        expected += vals[l];
    EXPECT_EQ(v.sum(), expected);
}

TEST(SimdOps, CompiledBackendMatchesGenericSemantics)
{
    // On an ISA build this exercises the intrinsic specializations; on
    // a scalar build it degenerates to the generic template (and the
    // fma check switches to the unfused contract).
    constexpr int W = kSimdCompiledWidth;
    using D = Simd<double, W>;
    std::array<double, W> a{}, b{}, c{};
    std::mt19937_64 rng(42);
    std::uniform_real_distribution<double> dist(0.5, 2.0);
    for (int l = 0; l < W; ++l) {
        a[l] = dist(rng);
        b[l] = dist(rng);
        c[l] = dist(rng);
    }
    const D va = D::loadu(a.data());
    const D vb = D::loadu(b.data());
    const D vc = D::loadu(c.data());
    for (int l = 0; l < W; ++l) {
        EXPECT_EQ((va + vb).lane(l), a[l] + b[l]);
        EXPECT_EQ((va * vb).lane(l), a[l] * b[l]);
        EXPECT_EQ((va / vb).lane(l), a[l] / b[l]);
        EXPECT_EQ(D::sqrt(va).lane(l), std::sqrt(a[l]));
        const double expectFma = W > 1 ? std::fma(a[l], b[l], c[l])
                                       : (a[l] * b[l]) + c[l];
        EXPECT_EQ(D::fma(va, vb, vc).lane(l), expectFma);
    }
    const auto mask = va < vb;
    int expectBits = 0;
    for (int l = 0; l < W; ++l)
        expectBits |= (a[l] < b[l] ? 1 : 0) << l;
    EXPECT_EQ(mask.bits(), expectBits);
}

// ---------------------------------------------------- padded packing

TEST(PackedList, RowsPaddedWithSentinelToWidthMultiple)
{
    WidthGuard guard;
    setSimdWidth(4);
    auto sim = builtLJ();
    const NeighborList &list = sim->neighbor.list();
    ASSERT_EQ(list.padWidth, 4);
    ASSERT_TRUE(list.packedFor(4));
    EXPECT_EQ(sim->atoms.npad(), 1u);
    EXPECT_EQ(list.sentinel, static_cast<std::uint32_t>(sim->atoms.nall()));

    std::size_t padSeen = 0;
    for (std::size_t i = 0; i < sim->atoms.nlocal(); ++i) {
        const auto [pb, pe] = list.packedRange(i);
        const auto [b, e] = list.range(i);
        ASSERT_EQ((pe - pb) % 4, 0u);
        ASSERT_GE(pe - pb, e - b);
        // Real entries first, in plain-CSR order; sentinel afterwards.
        for (std::uint32_t k = b; k < e; ++k)
            ASSERT_EQ(list.packedNeighbors[pb + (k - b)],
                      list.neighbors[k]);
        for (std::uint32_t k = pb + (e - b); k < pe; ++k) {
            ASSERT_EQ(list.packedNeighbors[k], list.sentinel);
            ++padSeen;
        }
    }
    EXPECT_EQ(padSeen, list.paddedSlots);
}

TEST(PackedList, DisabledAtWidthZero)
{
    WidthGuard guard;
    setSimdWidth(0);
    auto sim = builtLJ();
    const NeighborList &list = sim->neighbor.list();
    EXPECT_EQ(list.padWidth, 0);
    EXPECT_FALSE(list.packedFor(1));
    EXPECT_EQ(list.paddedSlots, 0u);
}

TEST(PackedList, FullListRequestSurvivesSetup)
{
    // Regression: Simulation::setup used to overwrite an explicit full
    // request with the pair style's (half) preference, silently turning
    // every full-list measurement into a half-list one.
    WidthGuard guard;
    setSimdWidth(0);
    auto half = buildLJ(4);
    jitter(*half);
    half->thermoEvery = 0;
    half->setup();
    ASSERT_FALSE(half->neighbor.list().full);

    auto full = buildLJ(4);
    jitter(*full);
    full->thermoEvery = 0;
    full->neighbor.full = true;
    full->setup();
    ASSERT_TRUE(full->neighbor.list().full);
    EXPECT_EQ(full->neighbor.list().pairCount(),
              2 * half->neighbor.list().pairCount());

    // Same physics from both flavors (summation order differs).
    EXPECT_NEAR(full->potentialEnergy(), half->potentialEnergy(),
                1e-9 * std::abs(half->potentialEnergy()));
    for (std::size_t i = 0; i < half->atoms.nlocal(); ++i) {
        EXPECT_NEAR(full->atoms.f[i].x, half->atoms.f[i].x, 1e-9);
        EXPECT_NEAR(full->atoms.f[i].y, half->atoms.f[i].y, 1e-9);
        EXPECT_NEAR(full->atoms.f[i].z, half->atoms.f[i].z, 1e-9);
    }
}

TEST(PackedList, SimdFullListMatchesScalarFullList)
{
    WidthGuard guard;
    auto build = [] {
        auto sim = buildLJ(4);
        jitter(*sim);
        sim->thermoEvery = 0;
        sim->neighbor.full = true;
        sim->setup();
        return sim;
    };
    for (int w : {1, 2, 4, 8}) {
        const Comparison c = compareAgainstScalar(build, w);
        EXPECT_LT(c.maxForceDiff, 1e-10) << "width " << w;
        EXPECT_LT(c.energyDiff, 1e-8) << "width " << w;
    }
}

// ------------------------------------------------- kernel agreement

TEST(Kernels, LjCutMatchesScalarAtEveryWidth)
{
    WidthGuard guard;
    for (int w : {1, 2, 4, 8}) {
        const Comparison c = compareAgainstScalar(builtLJ, w);
        EXPECT_LT(c.maxForceDiff, 1e-10) << "width " << w;
        EXPECT_LT(c.energyDiff, 1e-8) << "width " << w;
    }
}

TEST(Kernels, EamMatchesScalarAtEveryWidth)
{
    WidthGuard guard;
    for (int w : {1, 2, 4, 8}) {
        const Comparison c = compareAgainstScalar(builtEAM, w);
        EXPECT_LT(c.maxForceDiff, 1e-10) << "width " << w;
        EXPECT_LT(c.energyDiff, 1e-8) << "width " << w;
    }
}

TEST(Kernels, CharmmMatchesScalarAtEveryWidth)
{
    WidthGuard guard;
    for (int w : {1, 2, 4, 8}) {
        const Comparison c = compareAgainstScalar(builtCharmm, w);
        EXPECT_LT(c.maxForceDiff, 1e-9) << "width " << w;
        EXPECT_LT(c.energyDiff, 1e-6) << "width " << w;
    }
}

TEST(Kernels, WidthOneIsBitwiseScalarOnNoFmaBuilds)
{
    // The generic backend mirrors the scalar expression trees term for
    // term, so W = 1 must reproduce the scalar kernels bit for bit
    // whenever the compiler cannot contract a*b+c (no FMA codegen).
    // ISA builds hand width 1 the same generic template, but the whole
    // TU is compiled with -mfma, so only the claim below is portable.
    if (kSimdCompiledWidth != 1)
        GTEST_SKIP() << "FMA contraction expected on ISA builds";
    WidthGuard guard;
    for (const Builder &build : {Builder(builtLJ), Builder(builtEAM),
                                 Builder(builtCharmm)}) {
        const Comparison c = compareAgainstScalar(build, 1);
        EXPECT_TRUE(c.forcesExact);
        EXPECT_EQ(c.energyDiff, 0.0);
    }
}

TEST(Kernels, SimdForcesAreThreadCountInvariant)
{
    WidthGuard guard;
    const int before = ThreadPool::threads();
    setSimdWidth(4);
    ThreadPool::setThreads(1);
    auto ref = builtLJ();
    ThreadPool::setThreads(3);
    auto sim = builtLJ();
    ThreadPool::setThreads(before);
    ASSERT_EQ(ref->atoms.nlocal(), sim->atoms.nlocal());
    for (std::size_t i = 0; i < sim->atoms.nlocal(); ++i) {
        EXPECT_EQ(ref->atoms.f[i].x, sim->atoms.f[i].x);
        EXPECT_EQ(ref->atoms.f[i].y, sim->atoms.f[i].y);
        EXPECT_EQ(ref->atoms.f[i].z, sim->atoms.f[i].z);
    }
    EXPECT_EQ(ref->pair->energy(), sim->pair->energy());
    EXPECT_EQ(ref->pair->virial(), sim->pair->virial());
}

TEST(Kernels, SortEveryRebuildKeepsPackingConsistent)
{
    // Regression for the padded-packing x sort interaction: every
    // reorder invalidates the packed indices, so each sorted rebuild
    // must repack before the SIMD kernels touch the list again.
    WidthGuard guard;
    auto run = [](int width) {
        setSimdWidth(width);
        auto sim = buildLJ(4);
        jitter(*sim);
        sim->thermoEvery = 0;
        sim->setSortEvery(1);
        sim->setup();
        sim->run(12);
        return sim;
    };
    auto scalar = run(0);
    auto simd = run(4);
    const NeighborList &list = simd->neighbor.list();
    ASSERT_TRUE(list.packedFor(4));
    for (std::size_t i = 0; i < simd->atoms.nlocal(); ++i) {
        const auto [pb, pe] = list.packedRange(i);
        for (std::uint32_t k = pb; k < pe; ++k)
            ASSERT_LE(list.packedNeighbors[k], list.sentinel);
    }
    EXPECT_NEAR(simd->potentialEnergy(), scalar->potentialEnergy(),
                1e-8 * std::abs(scalar->potentialEnergy()));
}

// ------------------------------------------------------ width API

TEST(WidthApi, OverrideAndRestore)
{
    WidthGuard guard;
    setSimdWidth(2);
    EXPECT_EQ(simdWidth(), 2);
    setSimdWidth(0);
    EXPECT_EQ(simdWidth(), 0);
    setSimdWidth(-1);
    EXPECT_EQ(simdWidth(), simdDefaultWidth());
    setSimdWidth(3); // unsupported width falls back to the default
    EXPECT_EQ(simdWidth(), simdDefaultWidth());
}

TEST(WidthApi, BackendNamesAreConsistent)
{
    EXPECT_STREQ(simdBackendName(0), "scalar");
    EXPECT_STREQ(simdBackendName(-1), "scalar");
    for (int w : {1, 2, 4, 8, 16}) {
        ASSERT_TRUE(simdWidthSupported(w));
        const char *name = simdBackendName(w);
        if (w == kSimdCompiledWidth && w > 1)
            EXPECT_STREQ(name, simdIsaName());
        else
            EXPECT_STREQ(name, "generic");
        // Float lanes at a given width use the ISA backend whose float
        // vector holds that many lanes (twice the double count).
        const char *floatName = simdBackendName(w, true);
        if (w == kSimdCompiledFloatWidth && w > 1)
            EXPECT_STREQ(floatName, simdIsaName());
        else
            EXPECT_STREQ(floatName, "generic");
    }
    EXPECT_FALSE(simdWidthSupported(3));
    EXPECT_FALSE(simdWidthSupported(32));
}

} // namespace
} // namespace mdbench
