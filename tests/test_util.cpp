/**
 * @file
 * Unit tests for the util subsystem: RNG, stats, timers, tables, strings.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <sstream>

#include "util/error.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/string_utils.h"
#include "util/table.h"
#include "util/timer.h"

namespace mdbench {
namespace {

TEST(Rng, DeterministicFromSeed)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.nextU64(), b.nextU64());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    int equal = 0;
    for (int i = 0; i < 64; ++i)
        equal += a.nextU64() == b.nextU64();
    EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInRange)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanIsHalf)
{
    Rng rng(11);
    RunningStat stat;
    for (int i = 0; i < 100000; ++i)
        stat.push(rng.uniform());
    EXPECT_NEAR(stat.mean(), 0.5, 0.01);
}

TEST(Rng, GaussianMoments)
{
    Rng rng(13);
    RunningStat stat;
    for (int i = 0; i < 200000; ++i)
        stat.push(rng.gaussian());
    EXPECT_NEAR(stat.mean(), 0.0, 0.02);
    EXPECT_NEAR(stat.stddev(), 1.0, 0.02);
}

TEST(Rng, UniformIntUnbiasedSmallRange)
{
    Rng rng(17);
    int counts[3] = {0, 0, 0};
    for (int i = 0; i < 90000; ++i)
        ++counts[rng.uniformInt(3)];
    for (int c : counts)
        EXPECT_NEAR(c, 30000, 1000);
}

TEST(Rng, SplitStreamsIndependent)
{
    Rng a(5);
    Rng b = a.split();
    EXPECT_NE(a.nextU64(), b.nextU64());
}

TEST(RunningStat, BasicMoments)
{
    RunningStat s;
    for (double v : {1.0, 2.0, 3.0, 4.0})
        s.push(v);
    EXPECT_EQ(s.count(), 4u);
    EXPECT_DOUBLE_EQ(s.mean(), 2.5);
    EXPECT_NEAR(s.variance(), 5.0 / 3.0, 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 4.0);
    EXPECT_DOUBLE_EQ(s.sum(), 10.0);
}

TEST(RunningStat, EmptyIsSafe)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Imbalance, MatchesDefinition)
{
    const Imbalance imb = Imbalance::fromSamples({1.0, 2.0, 3.0});
    EXPECT_DOUBLE_EQ(imb.max, 3.0);
    EXPECT_DOUBLE_EQ(imb.mean, 2.0);
    EXPECT_NEAR(imb.imbalancePercent(), (3.0 - 2.0) / 3.0 * 100.0, 1e-12);
}

TEST(Imbalance, UniformLoadIsZero)
{
    const Imbalance imb = Imbalance::fromSamples({2.0, 2.0, 2.0, 2.0});
    EXPECT_DOUBLE_EQ(imb.imbalancePercent(), 0.0);
}

TEST(TaskTimer, AccumulatesAndFractions)
{
    TaskTimer timer;
    timer.add(Task::Pair, 3.0);
    timer.add(Task::Comm, 1.0);
    EXPECT_DOUBLE_EQ(timer.total(), 4.0);
    EXPECT_DOUBLE_EQ(timer.fraction(Task::Pair), 0.75);
    EXPECT_DOUBLE_EQ(timer.seconds(Task::Kspace), 0.0);
}

TEST(TaskTimer, MergeAdds)
{
    TaskTimer a;
    TaskTimer b;
    a.add(Task::Neigh, 1.0);
    b.add(Task::Neigh, 2.0);
    a.merge(b);
    EXPECT_DOUBLE_EQ(a.seconds(Task::Neigh), 3.0);
}

TEST(TaskTimer, MeasuredTimeIsPositive)
{
    TaskTimer timer;
    {
        ScopedTask scope(timer, Task::Other);
        volatile double x = 0.0;
        for (int i = 0; i < 100000; ++i)
            x = x + std::sqrt(static_cast<double>(i));
        (void)x;
    }
    EXPECT_GT(timer.seconds(Task::Other), 0.0);
}

TEST(TaskTimer, TaskNamesMatchTable1)
{
    EXPECT_STREQ(taskName(Task::Bond), "Bond");
    EXPECT_STREQ(taskName(Task::Comm), "Comm");
    EXPECT_STREQ(taskName(Task::Kspace), "Kspace");
    EXPECT_STREQ(taskName(Task::Modify), "Modify");
    EXPECT_STREQ(taskName(Task::Neigh), "Neigh");
    EXPECT_STREQ(taskName(Task::Output), "Output");
    EXPECT_STREQ(taskName(Task::Pair), "Pair");
    EXPECT_STREQ(taskName(Task::Other), "Other");
}

TEST(TaskTimer, NestedStartChargesBothTasks)
{
    TaskTimer timer;
    const auto spin = [] {
        volatile double x = 0.0;
        for (int i = 0; i < 50000; ++i)
            x = x + std::sqrt(static_cast<double>(i));
        (void)x;
    };
    timer.start(Task::Pair);
    spin();
    timer.start(Task::Neigh); // suspends Pair
    spin();
    timer.stop();             // resumes Pair
    spin();
    timer.stop();
    EXPECT_GT(timer.seconds(Task::Pair), 0.0);
    EXPECT_GT(timer.seconds(Task::Neigh), 0.0);
    // Exclusive semantics: the nested interval is charged once, so the
    // per-task sum equals the total (no double counting).
    EXPECT_DOUBLE_EQ(timer.total(), timer.seconds(Task::Pair) +
                                        timer.seconds(Task::Neigh));
}

TEST(TaskTimer, StopWithoutStartPanics)
{
    TaskTimer timer;
    EXPECT_THROW(timer.stop(), PanicError);
}

TEST(TaskTimer, NestingDeeperThanLimitPanics)
{
    TaskTimer timer;
    for (int d = 0; d < TaskTimer::kMaxNesting; ++d)
        timer.start(Task::Other);
    EXPECT_THROW(timer.start(Task::Other), PanicError);
    for (int d = 0; d < TaskTimer::kMaxNesting; ++d)
        timer.stop();
    EXPECT_THROW(timer.stop(), PanicError);
}

TEST(TaskTimer, ResetAbandonsRunningTasks)
{
    TaskTimer timer;
    timer.start(Task::Pair);
    timer.reset();
    EXPECT_DOUBLE_EQ(timer.total(), 0.0);
    EXPECT_THROW(timer.stop(), PanicError);
}

TEST(Logging, ParseLogLevelNamesAndNumerals)
{
    EXPECT_EQ(parseLogLevel("silent"), LogLevel::Silent);
    EXPECT_EQ(parseLogLevel("WARN"), LogLevel::Warn);
    EXPECT_EQ(parseLogLevel("Inform"), LogLevel::Inform);
    EXPECT_EQ(parseLogLevel("debug"), LogLevel::Debug);
    EXPECT_EQ(parseLogLevel("0"), LogLevel::Silent);
    EXPECT_EQ(parseLogLevel("3"), LogLevel::Debug);
    EXPECT_EQ(parseLogLevel("verbose"), std::nullopt);
    EXPECT_EQ(parseLogLevel("7"), std::nullopt);
    EXPECT_EQ(parseLogLevel(""), std::nullopt);
}

TEST(Logging, EnvironmentVariablePrecedence)
{
    const LogLevel before = logLevel();

    // Environment beats the built-in default...
    ::setenv("MDBENCH_LOG_LEVEL", "debug", 1);
    EXPECT_EQ(refreshLogLevelFromEnvironment(), LogLevel::Debug);
    EXPECT_EQ(logLevel(), LogLevel::Debug);

    // ...but an explicit setLogLevel() beats the environment.
    setLogLevel(LogLevel::Silent);
    EXPECT_EQ(logLevel(), LogLevel::Silent);

    // Unset (or unparsable) environment falls back to the default.
    ::unsetenv("MDBENCH_LOG_LEVEL");
    EXPECT_EQ(refreshLogLevelFromEnvironment(), LogLevel::Warn);

    ::setenv("MDBENCH_LOG_LEVEL", "not-a-level", 1);
    EXPECT_EQ(refreshLogLevelFromEnvironment(), LogLevel::Warn);

    ::unsetenv("MDBENCH_LOG_LEVEL");
    setLogLevel(before);
}

TEST(Table, AsciiHasAllCells)
{
    Table table({"name", "value"});
    table.addRow({"alpha", "1"});
    table.addRow({"beta", "2"});
    std::ostringstream os;
    table.printAscii(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("beta"), std::string::npos);
    EXPECT_NE(out.find("value"), std::string::npos);
}

TEST(Table, CsvEscapesCommas)
{
    Table table({"a"});
    table.addRow({"x,y"});
    std::ostringstream os;
    table.printCsv(os);
    EXPECT_NE(os.str().find("\"x,y\""), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows)
{
    Table table({"a", "b"});
    EXPECT_THROW(table.addRow({"only-one"}), FatalError);
}

TEST(Strings, Strprintf)
{
    EXPECT_EQ(strprintf("%d-%s", 7, "x"), "7-x");
}

TEST(Strings, FormatThreshold)
{
    EXPECT_EQ(formatThreshold(1e-4), "1.0e-4");
    EXPECT_EQ(formatThreshold(1e-7), "1.0e-7");
}

TEST(Errors, FatalAndPanicTypes)
{
    EXPECT_THROW(fatal("boom"), FatalError);
    EXPECT_THROW(panic("bug"), PanicError);
    EXPECT_NO_THROW(require(true, "ok"));
    EXPECT_THROW(require(false, "no"), FatalError);
    EXPECT_THROW(ensure(false, "no"), PanicError);
}

} // namespace
} // namespace mdbench
