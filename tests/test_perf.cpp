/**
 * @file
 * Platform-model tests: Table 2/3 data fidelity, cost-model invariants,
 * paper-anchor agreement, and the sensitivity-study mechanisms
 * (threshold -> slowdown, precision -> slowdown).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "perf/cpu_model.h"
#include "perf/platform.h"
#include "perf/power.h"
#include "perf/workload.h"
#include "util/error.h"

namespace mdbench {
namespace {

/** Loose factor-band check for paper anchors (shape, not digits). */
void
expectNear(double measured, double paper, double band,
           const std::string &what)
{
    EXPECT_GT(measured, paper / band) << what;
    EXPECT_LT(measured, paper * band) << what;
}

TEST(Platform, Table3CpuInstance)
{
    const PlatformInstance cpu = PlatformInstance::cpuInstance();
    EXPECT_EQ(cpu.cpu.cores, 32);
    EXPECT_EQ(cpu.cpu.threads, 64);
    EXPECT_EQ(cpu.sockets, 2);
    EXPECT_EQ(cpu.totalCores(), 64);
    EXPECT_DOUBLE_EQ(cpu.cpu.baseGHz, 2.6);
    EXPECT_DOUBLE_EQ(cpu.cpu.tdpW, 250.0);
    EXPECT_EQ(cpu.memoryGB, 1024);
    EXPECT_FALSE(cpu.gpu.has_value());
}

TEST(Platform, Table3GpuInstance)
{
    const PlatformInstance gpu = PlatformInstance::gpuInstance();
    EXPECT_EQ(gpu.cpu.cores, 26);
    EXPECT_EQ(gpu.gpuCount, 8);
    ASSERT_TRUE(gpu.gpu.has_value());
    EXPECT_EQ(gpu.gpu->sms, 84);
    EXPECT_DOUBLE_EQ(gpu.gpu->tdpW, 300.0);
    EXPECT_DOUBLE_EQ(gpu.gpu->freqGHz, 1.35);
}

TEST(Workload, Table2Taxonomy)
{
    const WorkloadSpec rhodo = WorkloadSpec::get(BenchmarkId::Rhodo);
    EXPECT_DOUBLE_EQ(rhodo.cutoff, 10.0);
    EXPECT_DOUBLE_EQ(rhodo.skin, 2.0);
    EXPECT_DOUBLE_EQ(rhodo.neighborsPerAtom, 440.0);
    EXPECT_TRUE(rhodo.usesKspace);
    EXPECT_TRUE(rhodo.nptIntegration);

    const WorkloadSpec lj = WorkloadSpec::get(BenchmarkId::LJ);
    EXPECT_DOUBLE_EQ(lj.cutoff, 2.5);
    EXPECT_DOUBLE_EQ(lj.neighborsPerAtom, 55.0);
    EXPECT_TRUE(lj.newton3);

    const WorkloadSpec chain = WorkloadSpec::get(BenchmarkId::Chain);
    EXPECT_NEAR(chain.cutoff, 1.12, 0.01);
    EXPECT_DOUBLE_EQ(chain.neighborsPerAtom, 5.0);
    EXPECT_TRUE(chain.hasBonds);

    const WorkloadSpec eam = WorkloadSpec::get(BenchmarkId::EAM);
    EXPECT_DOUBLE_EQ(eam.cutoff, 4.95);
    EXPECT_DOUBLE_EQ(eam.neighborsPerAtom, 45.0);

    const WorkloadSpec chute = WorkloadSpec::get(BenchmarkId::Chute);
    EXPECT_FALSE(chute.newton3);
    EXPECT_DOUBLE_EQ(chute.neighborsPerAtom, 7.0);
}

TEST(Workload, PairInteractionsRespectNewton)
{
    const auto lj = WorkloadInstance::make(BenchmarkId::LJ, 1000);
    EXPECT_DOUBLE_EQ(lj.pairInteractionsPerStep(), 1000 * 55.0 / 2.0);
    const auto chute = WorkloadInstance::make(BenchmarkId::Chute, 1000);
    EXPECT_DOUBLE_EQ(chute.pairInteractionsPerStep(), 1000 * 7.0);
}

TEST(Workload, BoxMatchesDensity)
{
    const auto lj = WorkloadInstance::make(BenchmarkId::LJ, 32000);
    const double volume =
        lj.boxLength.x * lj.boxLength.y * lj.boxLength.z;
    EXPECT_NEAR(32000.0 / volume, 0.8442, 1e-6);
}

TEST(Workload, KspaceGridGrowsWithThreshold)
{
    long last = 0;
    for (double accuracy : paperErrorThresholds()) {
        const auto w =
            WorkloadInstance::make(BenchmarkId::Rhodo, 256000, accuracy);
        EXPECT_GT(w.kspaceGridPoints(), last);
        last = w.kspaceGridPoints();
    }
    // Over three decades the mesh must grow by well over an order of
    // magnitude (the Section 7 mechanism).
    const auto loose = WorkloadInstance::make(BenchmarkId::Rhodo, 256000,
                                              1e-4);
    EXPECT_GT(static_cast<double>(last) / loose.kspaceGridPoints(), 15.0);
}

TEST(CpuModel, BreakdownFractionsSumToOne)
{
    const CpuModel model;
    for (BenchmarkId id : allBenchmarks()) {
        const auto w = WorkloadInstance::make(id, 256000);
        const auto result = model.evaluate(w, 16);
        double sum = 0.0;
        for (std::size_t t = 0; t < kNumTasks; ++t)
            sum += result.taskBreakdown.fraction(static_cast<Task>(t));
        EXPECT_NEAR(sum, 1.0, 1e-9) << benchmarkName(id);
    }
}

TEST(CpuModel, ThroughputMonotonicInRanksForLargeSystems)
{
    const CpuModel model;
    for (BenchmarkId id : allBenchmarks()) {
        const auto w = WorkloadInstance::make(id, 2048000);
        double last = 0.0;
        for (int ranks : paperRankCounts()) {
            const double ts =
                model.evaluate(w, ranks).timestepsPerSecond;
            EXPECT_GT(ts, last) << benchmarkName(id) << " " << ranks;
            last = ts;
        }
    }
}

TEST(CpuModel, ThroughputDecreasesWithSize)
{
    const CpuModel model;
    for (BenchmarkId id : allBenchmarks()) {
        double last = 1e300;
        for (long sizeK : paperSizesK()) {
            const auto w = WorkloadInstance::make(id, sizeK * 1000);
            const double ts = model.evaluate(w, 64).timestepsPerSecond;
            EXPECT_LT(ts, last) << benchmarkName(id);
            last = ts;
        }
    }
}

TEST(CpuModel, ParallelEfficiencyBounded)
{
    const CpuModel model;
    for (BenchmarkId id : allBenchmarks()) {
        const auto w = WorkloadInstance::make(id, 864000);
        for (int ranks : paperRankCounts()) {
            const double eff = model.parallelEfficiency(w, ranks);
            EXPECT_GT(eff, 15.0) << benchmarkName(id);
            EXPECT_LT(eff, 135.0) << benchmarkName(id);
        }
    }
}

TEST(CpuModel, MpiShareDecreasesWithSize)
{
    // Fig. 4 trend: bigger systems -> smaller MPI share.
    const CpuModel model;
    for (BenchmarkId id : allBenchmarks()) {
        const auto small = WorkloadInstance::make(id, 32000);
        const auto large = WorkloadInstance::make(id, 2048000);
        EXPECT_GT(model.evaluate(small, 64).mpiTimePercent,
                  model.evaluate(large, 64).mpiTimePercent)
            << benchmarkName(id);
    }
}

TEST(CpuModel, PairShareTracksNeighborsPerAtom)
{
    // Section 5 finding: neighbors/atom, not the force field, drives
    // the Pair share. LJ (55) > Chain (5) and Chute (7) at one rank.
    const CpuModel model;
    const auto lj = WorkloadInstance::make(BenchmarkId::LJ, 256000);
    const auto chain = WorkloadInstance::make(BenchmarkId::Chain, 256000);
    const auto chute = WorkloadInstance::make(BenchmarkId::Chute, 256000);
    const double ljPair =
        model.evaluate(lj, 1).taskBreakdown.fraction(Task::Pair);
    EXPECT_GT(ljPair, 0.75); // "over 75% ... if not parallelized"
    EXPECT_GT(ljPair,
              model.evaluate(chain, 1).taskBreakdown.fraction(Task::Pair));
    EXPECT_GT(ljPair,
              model.evaluate(chute, 1).taskBreakdown.fraction(Task::Pair));
}

TEST(CpuModel, PaperAnchors)
{
    const CpuModel model;
    const double band = 1.45; // reproduce within ~±45 %

    const auto rhodo4 =
        WorkloadInstance::make(BenchmarkId::Rhodo, 2048000, 1e-4);
    expectNear(model.evaluate(rhodo4, 64).timestepsPerSecond, 10.77, band,
               "rhodo 2M 64r 1e-4");
    expectNear(model.parallelEfficiency(rhodo4, 64), 74.29, 1.25,
               "rhodo 2M eff");

    const auto rhodo7 =
        WorkloadInstance::make(BenchmarkId::Rhodo, 2048000, 1e-7);
    expectNear(model.evaluate(rhodo7, 64).timestepsPerSecond, 3.54, band,
               "rhodo 2M 64r 1e-7");
    expectNear(model.parallelEfficiency(rhodo7, 64), 56.54, 1.25,
               "rhodo 2M eff 1e-7");

    const auto ljSingle = WorkloadInstance::make(
        BenchmarkId::LJ, 2048000, 1e-4, Precision::Single);
    expectNear(model.evaluate(ljSingle, 64).timestepsPerSecond, 115.2,
               band, "lj single");
    const auto ljDouble = WorkloadInstance::make(
        BenchmarkId::LJ, 2048000, 1e-4, Precision::Double);
    expectNear(model.evaluate(ljDouble, 64).timestepsPerSecond, 98.9,
               band, "lj double");

    const auto chute = WorkloadInstance::make(BenchmarkId::Chute, 32000);
    expectNear(model.evaluate(chute, 64).timestepsPerSecond, 10697.0,
               band, "chute 32k best");

    // ~2 ns/day for the 2M-atom rhodopsin run (Section 10).
    expectNear(model.evaluate(rhodo4, 64).nsPerDay, 2.0, 1.35,
               "rhodo ns/day");
}

TEST(CpuModel, PrecisionOrdering)
{
    const CpuModel model;
    for (BenchmarkId id : allBenchmarks()) {
        const auto single = WorkloadInstance::make(id, 864000, 1e-4,
                                                   Precision::Single);
        const auto mixed = WorkloadInstance::make(id, 864000, 1e-4,
                                                  Precision::Mixed);
        const auto dbl = WorkloadInstance::make(id, 864000, 1e-4,
                                                Precision::Double);
        const double tsS = model.evaluate(single, 32).timestepsPerSecond;
        const double tsM = model.evaluate(mixed, 32).timestepsPerSecond;
        const double tsD = model.evaluate(dbl, 32).timestepsPerSecond;
        EXPECT_GE(tsS, tsM) << benchmarkName(id);
        EXPECT_GT(tsM, tsD) << benchmarkName(id);
    }
}

TEST(CpuModel, ThresholdSlowdownMatchesPaperShape)
{
    // 10.77 -> 3.54 TS/s is a ~3x slowdown; require 2x..6x.
    const CpuModel model;
    const auto loose =
        WorkloadInstance::make(BenchmarkId::Rhodo, 2048000, 1e-4);
    const auto tight =
        WorkloadInstance::make(BenchmarkId::Rhodo, 2048000, 1e-7);
    const double ratio = model.evaluate(loose, 64).timestepsPerSecond /
                         model.evaluate(tight, 64).timestepsPerSecond;
    EXPECT_GT(ratio, 2.0);
    EXPECT_LT(ratio, 6.0);
    // Kspace dominates the tight-threshold breakdown (Fig. 11).
    EXPECT_GT(model.evaluate(tight, 64).taskBreakdown.fraction(
                  Task::Kspace),
              0.5);
}

TEST(CpuModel, MpiOverheadShrinksAtTighterThreshold)
{
    // Paper Section 7: the relative MPI overhead is *reduced* as
    // compute grows faster than communication.
    const CpuModel model;
    const auto loose =
        WorkloadInstance::make(BenchmarkId::Rhodo, 864000, 1e-4);
    const auto tight =
        WorkloadInstance::make(BenchmarkId::Rhodo, 864000, 1e-7);
    EXPECT_GT(model.evaluate(loose, 64).mpiImbalancePercent,
              model.evaluate(tight, 64).mpiImbalancePercent);
}

TEST(CpuModel, CoreUtilizationProfile)
{
    // Section 5.2: chute 24% < lj 48% < chain 56% < eam 63% < rhodo 83%.
    EXPECT_LT(WorkloadSpec::get(BenchmarkId::Chute).coreUtilization,
              WorkloadSpec::get(BenchmarkId::LJ).coreUtilization);
    EXPECT_LT(WorkloadSpec::get(BenchmarkId::LJ).coreUtilization,
              WorkloadSpec::get(BenchmarkId::Chain).coreUtilization);
    EXPECT_LT(WorkloadSpec::get(BenchmarkId::Chain).coreUtilization,
              WorkloadSpec::get(BenchmarkId::EAM).coreUtilization);
    EXPECT_LT(WorkloadSpec::get(BenchmarkId::EAM).coreUtilization,
              WorkloadSpec::get(BenchmarkId::Rhodo).coreUtilization);
}

TEST(Power, CpuPowerWithinTdpEnvelope)
{
    const PlatformInstance platform = PlatformInstance::cpuInstance();
    const double idle = cpuNodeWatts(platform, 0, 0.0);
    const double busy = cpuNodeWatts(platform, 64, 1.0);
    EXPECT_GT(idle, 50.0);
    EXPECT_LT(idle, busy);
    EXPECT_LT(busy, 2 * 250.0 + 100.0);
}

TEST(Power, GpuPowerScalesWithUtilization)
{
    const GpuSpec gpu = *PlatformInstance::gpuInstance().gpu;
    EXPECT_LT(gpuDeviceWatts(gpu, 0.0), gpuDeviceWatts(gpu, 1.0));
    EXPECT_NEAR(gpuDeviceWatts(gpu, 1.0), 300.0, 1e-9);
}

TEST(Power, InvalidInputsThrow)
{
    const PlatformInstance platform = PlatformInstance::cpuInstance();
    EXPECT_THROW(cpuNodeWatts(platform, 999, 0.5), FatalError);
    EXPECT_THROW(cpuNodeWatts(platform, 4, 2.0), FatalError);
}

} // namespace
} // namespace mdbench
