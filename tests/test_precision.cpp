/**
 * @file
 * The precision policy of the native compute path (DESIGN.md §13):
 * tier selection/parsing API, float-lane neighbor packing, mixed-tier
 * force agreement against the double oracle, bitwise thread-count
 * determinism at every tier, and the paper's Fig. 15-style acceptance
 * run — long NVE energy drift and RDF deviation bounds per tier.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <random>
#include <vector>

#include "core/experiment.h"
#include "core/suite.h"
#include "md/analysis.h"
#include "md/neighbor.h"
#include "md/simulation.h"
#include "util/precision.h"
#include "util/simd.h"
#include "util/thread_pool.h"

namespace mdbench {
namespace {

/** Restore the default tier and SIMD width when a test exits. */
struct TierGuard
{
    ~TierGuard()
    {
        setPrecisionTier(Precision::EngineDefault);
        setSimdWidth(-1);
    }
};

/** Deterministic displacement so lattice symmetry doesn't hide bugs. */
void
jitter(Simulation &sim)
{
    std::mt19937_64 rng(999);
    std::uniform_real_distribution<double> jig(-0.03, 0.03);
    for (std::size_t i = 0; i < sim.atoms.nlocal(); ++i) {
        sim.atoms.x[i].x += jig(rng);
        sim.atoms.x[i].y += jig(rng);
        sim.atoms.x[i].z += jig(rng);
    }
}

std::unique_ptr<Simulation>
builtLJ(Precision tier, int width)
{
    setPrecisionTier(tier);
    setSimdWidth(width);
    auto sim = buildLJ(4);
    jitter(*sim);
    sim->thermoEvery = 0;
    sim->setup();
    return sim;
}

/** The tier's native vector width (float tiers double the lanes). */
int
nativeWidth(Precision tier)
{
    return tier == Precision::Double ? kSimdCompiledWidth
                                     : kSimdCompiledFloatWidth;
}

// ------------------------------------------------------------ tier API

TEST(PrecisionApi, ParseAndNameRoundTrip)
{
    Precision tier = Precision::EngineDefault;
    ASSERT_TRUE(parsePrecision("double", tier));
    EXPECT_EQ(tier, Precision::Double);
    ASSERT_TRUE(parsePrecision("mixed", tier));
    EXPECT_EQ(tier, Precision::Mixed);
    ASSERT_TRUE(parsePrecision("single", tier));
    EXPECT_EQ(tier, Precision::Single);
    ASSERT_TRUE(parsePrecision("default", tier));
    EXPECT_EQ(tier, Precision::EngineDefault);
    EXPECT_FALSE(parsePrecision("half", tier));
    EXPECT_FALSE(parsePrecision("", tier));

    EXPECT_STREQ(precisionName(Precision::Double), "double");
    EXPECT_STREQ(precisionName(Precision::Mixed), "mixed");
    EXPECT_STREQ(precisionName(Precision::Single), "single");
}

TEST(PrecisionApi, OverrideAndRestore)
{
    TierGuard guard;
    setPrecisionTier(Precision::Single);
    EXPECT_EQ(precisionTier(), Precision::Single);
    setPrecisionTier(Precision::Mixed);
    EXPECT_EQ(precisionTier(), Precision::Mixed);
    setPrecisionTier(Precision::EngineDefault);
    EXPECT_EQ(precisionTier(), defaultPrecisionTier());
}

TEST(PrecisionApi, ExperimentSpecRestoresEngineDefault)
{
    TierGuard guard;
    const Precision before = precisionTier();
    ExperimentSpec spec;
    spec.mode = ExperimentMode::NativeSerial;
    spec.benchmark = BenchmarkId::LJ;
    spec.natoms = 500;
    spec.steps = 5;
    spec.precision = Precision::Single;
    runExperiment(spec);
    EXPECT_EQ(precisionTier(), before);
}

// ----------------------------------------------------- float packing

TEST(PrecisionPacking, FloatTiersRecordTierAndWidth)
{
    TierGuard guard;
    auto mixed = builtLJ(Precision::Mixed, 8);
    EXPECT_EQ(mixed->neighbor.list().packTier, Precision::Mixed);
    EXPECT_EQ(mixed->neighbor.list().padWidth, 8);

    auto dbl = builtLJ(Precision::Double, 4);
    EXPECT_EQ(dbl->neighbor.list().packTier, Precision::Double);
    EXPECT_EQ(dbl->neighbor.list().padWidth, 4);
}

TEST(PrecisionPacking, DefaultWidthDoublesLanesOnFloatTiers)
{
    TierGuard guard;
    setPrecisionTier(Precision::Mixed);
    setSimdWidth(-1);
    if (simdDefaultFloatWidth() == 0)
        GTEST_SKIP() << "SIMD disabled on this build/host";
    auto sim = buildLJ(4);
    sim->thermoEvery = 0;
    sim->setup();
    EXPECT_EQ(sim->neighbor.list().padWidth, simdDefaultFloatWidth());
    EXPECT_EQ(sim->neighbor.list().packTier, Precision::Mixed);
}

// ------------------------------------------------- force agreement

TEST(PrecisionForces, MixedMatchesDoubleWithinFloatTolerance)
{
    // The mixed tier computes per-pair forces in float and accumulates
    // in double: per-atom force error is bounded by float round-off on
    // each pair term, a few ulp x the neighbor count. The documented
    // tolerance is 1e-4 relative to the largest force component.
    TierGuard guard;
    auto ref = builtLJ(Precision::Double, 0);
    for (Precision tier : {Precision::Mixed, Precision::Single}) {
        auto sim = builtLJ(tier, nativeWidth(tier));
        ASSERT_EQ(ref->atoms.nlocal(), sim->atoms.nlocal());
        double maxForce = 0.0;
        double maxDiff = 0.0;
        for (std::size_t i = 0; i < sim->atoms.nlocal(); ++i) {
            const Vec3 a = sim->atoms.f[i];
            const Vec3 b = ref->atoms.f[i];
            maxForce = std::max({maxForce, std::fabs(b.x), std::fabs(b.y),
                                 std::fabs(b.z)});
            maxDiff = std::max({maxDiff, std::fabs(a.x - b.x),
                                std::fabs(a.y - b.y), std::fabs(a.z - b.z)});
        }
        EXPECT_LT(maxDiff, 1e-4 * std::max(1.0, maxForce))
            << precisionName(tier);
        const double refEnergy = ref->potentialEnergy();
        EXPECT_NEAR(sim->potentialEnergy(), refEnergy,
                    1e-5 * std::fabs(refEnergy))
            << precisionName(tier);
    }
}

TEST(PrecisionForces, DoubleTierIsUnchangedByTheKnob)
{
    // Explicitly selecting the double tier must reproduce the
    // engine-default double path bit for bit at the same width.
    TierGuard guard;
    auto def = builtLJ(Precision::EngineDefault, 4);
    auto dbl = builtLJ(Precision::Double, 4);
    ASSERT_EQ(def->atoms.nlocal(), dbl->atoms.nlocal());
    for (std::size_t i = 0; i < dbl->atoms.nlocal(); ++i) {
        EXPECT_EQ(def->atoms.f[i].x, dbl->atoms.f[i].x);
        EXPECT_EQ(def->atoms.f[i].y, dbl->atoms.f[i].y);
        EXPECT_EQ(def->atoms.f[i].z, dbl->atoms.f[i].z);
    }
    EXPECT_EQ(def->pair->energy(), dbl->pair->energy());
}

// ------------------------------------------------ thread determinism

TEST(PrecisionDeterminism, ForcesAreThreadCountInvariantAtEveryTier)
{
    // Row-bounded accumulation makes every tier's forces and energies
    // independent of the slice decomposition: 1 vs 3 pool threads must
    // agree bitwise, not just within tolerance.
    TierGuard guard;
    const int before = ThreadPool::threads();
    for (Precision tier :
         {Precision::Double, Precision::Mixed, Precision::Single}) {
        ThreadPool::setThreads(1);
        auto ref = builtLJ(tier, nativeWidth(tier));
        ThreadPool::setThreads(3);
        auto sim = builtLJ(tier, nativeWidth(tier));
        ThreadPool::setThreads(before);
        ASSERT_EQ(ref->atoms.nlocal(), sim->atoms.nlocal());
        for (std::size_t i = 0; i < sim->atoms.nlocal(); ++i) {
            EXPECT_EQ(ref->atoms.f[i].x, sim->atoms.f[i].x)
                << precisionName(tier);
            EXPECT_EQ(ref->atoms.f[i].y, sim->atoms.f[i].y);
            EXPECT_EQ(ref->atoms.f[i].z, sim->atoms.f[i].z);
        }
        EXPECT_EQ(ref->pair->energy(), sim->pair->energy())
            << precisionName(tier);
        EXPECT_EQ(ref->pair->virial(), sim->pair->virial())
            << precisionName(tier);
    }
}

// ------------------------------------------- Fig. 15-style acceptance

struct TierRun
{
    double drift = 0.0;
    std::vector<double> g;
};

/**
 * Long microcanonical run at the tier's native width: relative energy
 * drift plus an RDF averaged over trailing snapshots (a single
 * instantaneous histogram of a 256-atom box is too noisy to compare).
 */
TierRun
nveRun(Precision tier, long steps)
{
    setPrecisionTier(tier);
    setSimdWidth(nativeWidth(tier));
    auto sim = buildLJ(4);
    sim->thermoEvery = 0;
    sim->setup();
    const double e0 = sim->kineticEnergy() + sim->potentialEnergy();
    sim->run(steps);
    const double e1 = sim->kineticEnergy() + sim->potentialEnergy();

    TierRun run;
    run.drift = std::fabs(e1 - e0) / std::fabs(e0);
    const int snapshots = 8;
    for (int s = 0; s < snapshots; ++s) {
        sim->run(25);
        const Rdf rdf = computeRdf(*sim, 2.5, 100);
        if (run.g.empty())
            run.g.assign(rdf.g.size(), 0.0);
        for (std::size_t b = 0; b < rdf.g.size(); ++b)
            run.g[b] += rdf.g[b] / snapshots;
    }
    setPrecisionTier(Precision::EngineDefault);
    setSimdWidth(-1);
    return run;
}

TEST(PrecisionAcceptance, NveDriftAndRdfBoundsPerTier)
{
    // The paper's Fig. 15 acceptance criteria made native: every tier
    // must conserve energy over a long NVE run, the float tiers within
    // the same absolute bound as the double tier, and the structure
    // (RDF) must stay on the double-tier curve. Trajectories diverge
    // chaotically between tiers, so the RDF bound is statistical, not
    // bitwise.
    TierGuard guard;
    const long steps = 10000;
    const TierRun dbl = nveRun(Precision::Double, steps);
    const double driftBound = 5e-3;
    EXPECT_LT(dbl.drift, driftBound);
    for (Precision tier : {Precision::Mixed, Precision::Single}) {
        const TierRun run = nveRun(tier, steps);
        EXPECT_LT(run.drift, driftBound) << precisionName(tier);
        ASSERT_EQ(run.g.size(), dbl.g.size());
        double maxDiff = 0.0;
        for (std::size_t b = 0; b < run.g.size(); ++b)
            maxDiff = std::max(maxDiff, std::fabs(run.g[b] - dbl.g[b]));
        EXPECT_LT(maxDiff, 0.75) << precisionName(tier);
    }
}

} // namespace
} // namespace mdbench
