/**
 * @file
 * Integration tests of the timestep loop: NVE energy/momentum
 * conservation, thermostats relaxing to setpoints, and the task-timer
 * instrumentation of the Verlet loop.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "forcefield/pair_lj_cut.h"
#include "md/fix_langevin.h"
#include "md/fix_nh.h"
#include "md/fix_nve.h"
#include "md/lattice.h"
#include "md/simulation.h"
#include "md/velocity.h"
#include "util/rng.h"
#include "util/stats.h"

namespace mdbench {
namespace {

/** Standard small LJ melt (rho* = 0.8442, T* = 1.44). */
Simulation
makeLJMelt(int cells, double temperature = 1.44)
{
    Simulation sim;
    buildFcc(sim, cells, cells, cells, fccLatticeConstant(0.8442));
    auto pair = std::make_unique<PairLJCut>(1, 2.5);
    pair->setCoeff(1, 1, 1.0, 1.0);
    sim.pair = std::move(pair);
    sim.neighbor.skin = 0.3;
    sim.dt = 0.005;
    sim.thermoEvery = 0;
    Rng rng(987);
    createVelocities(sim, temperature, rng);
    return sim;
}

TEST(IntegrateNVE, EnergyConservation)
{
    Simulation sim = makeLJMelt(5);
    sim.addFix<FixNVE>();
    sim.setup();
    const double e0 = sim.kineticEnergy() + sim.potentialEnergy();
    sim.run(400);
    const double e1 = sim.kineticEnergy() + sim.potentialEnergy();
    // Velocity Verlet at dt = 0.005 tau conserves energy to a small
    // relative drift over 400 steps.
    EXPECT_NEAR(e1, e0, 2e-3 * std::fabs(e0));
}

TEST(IntegrateNVE, EnergyDriftScalesWithTimestepSquared)
{
    // Property: halving dt reduces the energy drift by roughly 4x
    // (2nd-order integrator). Allow generous slack for chaos.
    auto driftFor = [&](double dt) {
        Simulation sim = makeLJMelt(4);
        sim.dt = dt;
        sim.addFix<FixNVE>();
        sim.setup();
        const double e0 = sim.kineticEnergy() + sim.potentialEnergy();
        sim.run(static_cast<long>(1.0 / dt));
        const double e1 = sim.kineticEnergy() + sim.potentialEnergy();
        return std::fabs(e1 - e0);
    };
    const double coarse = driftFor(0.008);
    const double fine = driftFor(0.004);
    EXPECT_LT(fine, coarse);
}

TEST(IntegrateNVE, MomentumConservation)
{
    Simulation sim = makeLJMelt(4);
    sim.addFix<FixNVE>();
    sim.setup();
    sim.run(200);
    Vec3 momentum{};
    for (std::size_t i = 0; i < sim.atoms.nlocal(); ++i)
        momentum += sim.atoms.v[i] * sim.atoms.massOf(i);
    EXPECT_NEAR(momentum.norm(), 0.0, 1e-8);
}

TEST(IntegrateNVE, TemperatureEquilibratesNearMeltValue)
{
    // The classic LJ melt started at T = 1.44 on a lattice settles to
    // roughly half the initial temperature as potential energy is
    // released (LAMMPS bench thermo shows T ~ 0.7).
    Simulation sim = makeLJMelt(5);
    sim.addFix<FixNVE>();
    sim.setup();
    sim.run(500);
    EXPECT_NEAR(sim.temperature(), 0.72, 0.12);
}

TEST(IntegrateNVE, TaskTimerCoversAllPhases)
{
    Simulation sim = makeLJMelt(4);
    sim.addFix<FixNVE>();
    sim.thermoEvery = 10;
    sim.setup();
    sim.run(60);
    EXPECT_GT(sim.timer.seconds(Task::Pair), 0.0);
    EXPECT_GT(sim.timer.seconds(Task::Neigh), 0.0);
    EXPECT_GT(sim.timer.seconds(Task::Comm), 0.0);
    EXPECT_GT(sim.timer.seconds(Task::Modify), 0.0);
    EXPECT_GT(sim.timer.seconds(Task::Output), 0.0);
    // Pair dominates an LJ run (the paper's Figure 3, lj row).
    EXPECT_GT(sim.timer.fraction(Task::Pair), 0.4);
}

TEST(IntegrateNVE, ThermoLogSampledAtRequestedCadence)
{
    Simulation sim = makeLJMelt(4);
    sim.addFix<FixNVE>();
    sim.thermoEvery = 25;
    sim.setup();
    sim.run(100);
    // setup() sample + steps 25, 50, 75, 100.
    ASSERT_EQ(sim.thermoLog().size(), 5u);
    EXPECT_EQ(sim.thermoLog()[0].step, 0);
    EXPECT_EQ(sim.thermoLog()[4].step, 100);
}

TEST(Langevin, RelaxesToTargetTemperature)
{
    Simulation sim = makeLJMelt(4, 0.3);
    sim.addFix<FixNVE>();
    sim.addFix<FixLangevin>(1.0, 0.5, 777);
    sim.setup();
    sim.run(600);
    // Average over a window to smooth fluctuations.
    RunningStat temperature;
    for (int i = 0; i < 200; ++i) {
        sim.run(5);
        temperature.push(sim.temperature());
    }
    EXPECT_NEAR(temperature.mean(), 1.0, 0.08);
}

TEST(NoseHoover, NVTRelaxesToTargetTemperature)
{
    Simulation sim = makeLJMelt(4, 2.0);
    sim.addFix<FixNVT>(1.2, 0.5);
    sim.setup();
    sim.run(800);
    RunningStat temperature;
    for (int i = 0; i < 150; ++i) {
        sim.run(5);
        temperature.push(sim.temperature());
    }
    EXPECT_NEAR(temperature.mean(), 1.2, 0.1);
}

TEST(NoseHoover, NPTMovesPressureTowardTarget)
{
    Simulation sim = makeLJMelt(4, 1.44);
    sim.addFix<FixNPT>(1.44, 0.5, 0.5, 5.0);
    sim.setup();
    const double p0 = sim.pressure();
    sim.run(1200);
    RunningStat pressure;
    for (int i = 0; i < 100; ++i) {
        sim.run(5);
        pressure.push(sim.pressure());
    }
    // The LJ melt starts far above P = 0.5; NPT must move it closer.
    EXPECT_LT(std::fabs(pressure.mean() - 0.5), std::fabs(p0 - 0.5) * 0.5);
    EXPECT_NE(sim.box.volume(), 0.0);
}

} // namespace
} // namespace mdbench
