/**
 * @file
 * Decomposed granular runs: the Chute workload across subdomains
 * (full lists, ghost velocities, per-rank contact history, non-periodic
 * z axis) must match the serial trajectory.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "core/experiment.h"
#include "core/suite.h"
#include "parallel/ranked_sim.h"

namespace mdbench {
namespace {

/** Strip styles/fixes from a built system for the ranked driver. */
void
bareSystem(Simulation &sim)
{
    sim.pair.reset();
    sim.bondStyle.reset();
    sim.angleStyle.reset();
    sim.kspace.reset();
    sim.fixes.clear();
}

TEST(RankedGranular, MatchesSerialTrajectory)
{
    const long steps = 120;

    auto serial = buildChute(8, 8, 4);
    serial->thermoEvery = 0;
    serial->setup();
    serial->run(steps);

    for (int nranks : {2, 4}) {
        auto global = buildChute(8, 8, 4);
        bareSystem(*global);
        RankedSimulation ranked(
            *global, nranks, [](Simulation &rankSim) {
                auto reference = buildChute(4, 4, 2);
                rankSim.pair = std::move(reference->pair);
                rankSim.fixes = std::move(reference->fixes);
                rankSim.neighbor.skin = reference->neighbor.skin;
                rankSim.dt = reference->dt;
                rankSim.box.setPeriodic(true, true, false);
            });
        ranked.setup();
        ranked.run(steps);

        ASSERT_EQ(ranked.totalAtoms(), serial->atoms.nlocal());
        Simulation gathered;
        ranked.gather(gathered);

        std::vector<std::pair<std::int64_t, Vec3>> serialPos;
        for (std::size_t i = 0; i < serial->atoms.nlocal(); ++i)
            serialPos.push_back({serial->atoms.tag[i],
                                 serial->box.wrap(serial->atoms.x[i])});
        std::sort(serialPos.begin(), serialPos.end(),
                  [](const auto &a, const auto &b) {
                      return a.first < b.first;
                  });
        double worst = 0.0;
        for (std::size_t i = 0; i < gathered.atoms.nlocal(); ++i) {
            ASSERT_EQ(gathered.atoms.tag[i], serialPos[i].first);
            const Vec3 delta = serial->box.minimumImage(
                gathered.box.wrap(gathered.atoms.x[i]) -
                serialPos[i].second);
            worst = std::max(worst, delta.norm());
        }
        EXPECT_LT(worst, 1e-8) << nranks << " ranks";
    }
}

TEST(RankedGranular, AngularMomentumTransfersAcrossRanks)
{
    // After a decomposed run with wall friction, grains must have
    // picked up spin on every rank (torques act through ghosts too).
    ExperimentSpec spec;
    spec.mode = ExperimentMode::NativeRanked;
    spec.benchmark = BenchmarkId::Chute;
    spec.natoms = 512;
    spec.resources = 4;
    spec.steps = 800;
    const ExperimentRecord record = runExperiment(spec);
    EXPECT_GT(record.timestepsPerSecond, 0.0);
    EXPECT_GT(record.taskBreakdown.fraction(Task::Pair), 0.0);
}

} // namespace
} // namespace mdbench
