/**
 * @file
 * SHAKE/RATTLE constraint correctness: rigid 3-site molecules stay
 * rigid under dynamics, velocities stay on the constraint manifold,
 * degrees of freedom are removed, and energy behaves.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "forcefield/pair_lj_cut.h"
#include "md/fix_nve.h"
#include "md/fix_shake.h"
#include "md/simulation.h"
#include "md/velocity.h"
#include "util/rng.h"

namespace mdbench {
namespace {

constexpr double kBondOH = 0.9572; // TIP3P-like geometry (arbitrary units)
constexpr double kAngleHOH = 104.52 * M_PI / 180.0;

/** Add one rigid 3-site molecule at @p center; returns the first tag. */
std::int64_t
addWater(Simulation &sim, const Vec3 &center, std::int64_t firstTag)
{
    const double hh =
        2.0 * kBondOH * std::sin(kAngleHOH / 2.0); // H-H distance
    const std::size_t o = sim.atoms.addAtom(firstTag, 1, center);
    const std::size_t h1 = sim.atoms.addAtom(
        firstTag + 1, 2,
        center + Vec3{kBondOH * std::sin(kAngleHOH / 2),
                      kBondOH * std::cos(kAngleHOH / 2), 0});
    const std::size_t h2 = sim.atoms.addAtom(
        firstTag + 2, 2,
        center + Vec3{-kBondOH * std::sin(kAngleHOH / 2),
                      kBondOH * std::cos(kAngleHOH / 2), 0});
    sim.atoms.molecule[o] = firstTag;
    sim.atoms.molecule[h1] = firstTag;
    sim.atoms.molecule[h2] = firstTag;

    ShakeCluster cluster;
    cluster.tags = {firstTag, firstTag + 1, firstTag + 2};
    cluster.constraints = {{0, 1, kBondOH}, {0, 2, kBondOH}, {1, 2, hh}};
    sim.topology.shakeClusters.push_back(cluster);
    return firstTag + 3;
}

/** Grid of rigid molecules with LJ on the central site. */
Simulation
makeWaterBox(int n, double spacing)
{
    Simulation sim;
    const double length = n * spacing;
    sim.box = Box({0, 0, 0}, {length, length, length});
    sim.atoms.setNumTypes(2);
    sim.atoms.typeParams[1].mass = 16.0;
    sim.atoms.typeParams[2].mass = 1.0;
    std::int64_t tag = 1;
    for (int iz = 0; iz < n; ++iz)
        for (int iy = 0; iy < n; ++iy)
            for (int ix = 0; ix < n; ++ix)
                tag = addWater(sim,
                               {(ix + 0.35) * spacing, (iy + 0.35) * spacing,
                                (iz + 0.35) * spacing},
                               tag);
    auto pair = std::make_unique<PairLJCut>(2, 2.8);
    pair->setCoeff(1, 1, 0.15, 2.2);
    pair->setCoeff(2, 2, 0.0, 1.0);
    pair->mix(MixRule::Arithmetic);
    sim.pair = std::move(pair);
    sim.neighbor.skin = 0.4;
    sim.dt = 0.002;
    sim.thermoEvery = 0;
    return sim;
}

double
maxConstraintViolation(const Simulation &sim)
{
    double worst = 0.0;
    for (const auto &cluster : sim.topology.shakeClusters) {
        for (const auto &con : cluster.constraints) {
            const auto a = sim.topology.indexOf(cluster.tags[con.i]);
            const auto b = sim.topology.indexOf(cluster.tags[con.j]);
            const double r =
                sim.box.minimumImage(sim.atoms.x[a] - sim.atoms.x[b]).norm();
            worst = std::max(worst,
                             std::fabs(r - con.distance) / con.distance);
        }
    }
    return worst;
}

TEST(Shake, ConstraintsHoldUnderDynamics)
{
    Simulation sim = makeWaterBox(3, 3.2);
    Rng rng(22);
    createVelocities(sim, 0.5, rng);
    sim.addFix<FixNVE>();
    sim.addFix<FixShake>(1e-8);
    sim.setup();
    sim.run(300);
    EXPECT_LT(maxConstraintViolation(sim), 1e-4);
}

TEST(Shake, VelocitiesOrthogonalToConstraints)
{
    Simulation sim = makeWaterBox(2, 3.2);
    Rng rng(23);
    createVelocities(sim, 0.5, rng);
    sim.addFix<FixNVE>();
    sim.addFix<FixShake>(1e-10);
    sim.setup();
    sim.run(50);
    for (const auto &cluster : sim.topology.shakeClusters) {
        for (const auto &con : cluster.constraints) {
            const auto a = sim.topology.indexOf(cluster.tags[con.i]);
            const auto b = sim.topology.indexOf(cluster.tags[con.j]);
            const Vec3 rab =
                sim.box.minimumImage(sim.atoms.x[a] - sim.atoms.x[b]);
            const Vec3 vab = sim.atoms.v[a] - sim.atoms.v[b];
            // Relative velocity along the bond ~ 0 (RATTLE).
            EXPECT_NEAR(rab.dot(vab) / rab.norm(), 0.0, 1e-6);
        }
    }
}

TEST(Shake, RemovesThreeDofPerRigidTriatomic)
{
    Simulation sim = makeWaterBox(2, 3.2);
    sim.addFix<FixNVE>();
    auto &shake = sim.addFix<FixShake>();
    const long molecules = 2 * 2 * 2;
    EXPECT_EQ(shake.removedDof(sim), 3 * molecules);
    const long atoms = 3 * molecules;
    EXPECT_EQ(sim.degreesOfFreedom(), 3 * atoms - 3 - 3 * molecules);
}

TEST(Shake, SetupProjectsOffManifoldInput)
{
    Simulation sim = makeWaterBox(2, 3.2);
    // Perturb a hydrogen off the rigid geometry.
    sim.atoms.x[1] += Vec3{0.05, -0.03, 0.02};
    sim.addFix<FixNVE>();
    sim.addFix<FixShake>(1e-8);
    sim.setup();
    EXPECT_LT(maxConstraintViolation(sim), 1e-4);
}

TEST(Shake, EnergyStableOverLongRun)
{
    Simulation sim = makeWaterBox(3, 3.2);
    Rng rng(29);
    createVelocities(sim, 0.4, rng);
    sim.addFix<FixNVE>();
    sim.addFix<FixShake>(1e-8);
    sim.setup();
    const double e0 = sim.kineticEnergy() + sim.potentialEnergy();
    sim.run(500);
    const double e1 = sim.kineticEnergy() + sim.potentialEnergy();
    // Constraint forces do no work; total energy drifts only mildly.
    EXPECT_NEAR(e1, e0, 0.05 * std::max(1.0, std::fabs(e0)));
}

TEST(Shake, ResidualReportedBelowTolerance)
{
    Simulation sim = makeWaterBox(2, 3.2);
    Rng rng(31);
    createVelocities(sim, 0.5, rng);
    sim.addFix<FixNVE>();
    auto &shake = sim.addFix<FixShake>(1e-9);
    sim.setup();
    sim.run(20);
    EXPECT_LT(shake.maxResidual(), 1e-8);
}

} // namespace
} // namespace mdbench
