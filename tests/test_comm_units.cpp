/**
 * @file
 * Communication-layer and unit-system tests: SerialComm ghost
 * bookkeeping under force folding and scalar exchange, box dilation
 * interplay (NPT), and the lj/metal/real conversion constants.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "forcefield/pair_lj_cut.h"
#include "md/lattice.h"
#include "md/simulation.h"
#include "md/units.h"
#include "util/error.h"
#include "md/velocity.h"
#include "util/rng.h"

namespace mdbench {
namespace {

Simulation
ghostedSystem()
{
    Simulation sim;
    buildFcc(sim, 5, 5, 5, 1.7);
    sim.neighbor.cutoff = 2.0;
    sim.neighbor.skin = 0.3;
    sim.comm->exchange(sim);
    sim.comm->borders(sim);
    return sim;
}

TEST(SerialComm, GhostsArePeriodicImages)
{
    Simulation sim = ghostedSystem();
    ASSERT_GT(sim.atoms.nghost(), 0u);
    const Vec3 len = sim.box.lengths();
    for (std::size_t g = sim.atoms.nlocal(); g < sim.atoms.nall(); ++g) {
        const auto owner = static_cast<std::size_t>(sim.atoms.ghostOf[g]);
        const Vec3 delta = sim.atoms.x[g] - sim.atoms.x[owner];
        // Each component is a multiple of the box length (0 or +-L).
        for (double pair : {delta.x / len.x, delta.y / len.y,
                            delta.z / len.z}) {
            EXPECT_NEAR(pair, std::round(pair), 1e-12);
            EXPECT_LE(std::fabs(pair), 1.0 + 1e-12);
        }
        EXPECT_EQ(sim.atoms.tag[g], sim.atoms.tag[owner]);
    }
}

TEST(SerialComm, ForwardTracksOwnersAfterMotion)
{
    Simulation sim = ghostedSystem();
    Rng rng(3);
    for (std::size_t i = 0; i < sim.atoms.nlocal(); ++i)
        sim.atoms.x[i] += Vec3{rng.uniform(-0.05, 0.05),
                               rng.uniform(-0.05, 0.05),
                               rng.uniform(-0.05, 0.05)};
    sim.comm->forwardPositions(sim);
    const Vec3 len = sim.box.lengths();
    for (std::size_t g = sim.atoms.nlocal(); g < sim.atoms.nall(); ++g) {
        const auto owner = static_cast<std::size_t>(sim.atoms.ghostOf[g]);
        const Vec3 delta = sim.atoms.x[g] - sim.atoms.x[owner];
        EXPECT_NEAR(delta.x / len.x, std::round(delta.x / len.x), 1e-12);
        EXPECT_NEAR(delta.y / len.y, std::round(delta.y / len.y), 1e-12);
        EXPECT_NEAR(delta.z / len.z, std::round(delta.z / len.z), 1e-12);
    }
}

TEST(SerialComm, ForwardAdaptsToBoxDilation)
{
    // NPT dilates the box between rebuilds; ghost images must follow
    // the *current* box lengths.
    Simulation sim = ghostedSystem();
    const Vec3 center = (sim.box.lo() + sim.box.hi()) * 0.5;
    sim.box.dilate(1.02);
    for (std::size_t i = 0; i < sim.atoms.nlocal(); ++i)
        sim.atoms.x[i] = center + (sim.atoms.x[i] - center) * 1.02;
    sim.comm->forwardPositions(sim);
    const Vec3 len = sim.box.lengths();
    for (std::size_t g = sim.atoms.nlocal(); g < sim.atoms.nall(); ++g) {
        const auto owner = static_cast<std::size_t>(sim.atoms.ghostOf[g]);
        const Vec3 delta = sim.atoms.x[g] - sim.atoms.x[owner];
        EXPECT_NEAR(delta.x / len.x, std::round(delta.x / len.x), 1e-12);
    }
}

TEST(SerialComm, ReverseFoldsForcesOntoOwners)
{
    Simulation sim = ghostedSystem();
    sim.atoms.zeroForces();
    // Deposit a marker force on every ghost.
    for (std::size_t g = sim.atoms.nlocal(); g < sim.atoms.nall(); ++g)
        sim.atoms.f[g] = {1.0, 2.0, 3.0};
    const std::size_t nghost = sim.atoms.nghost();
    sim.comm->reverseForces(sim);
    Vec3 total{};
    for (std::size_t i = 0; i < sim.atoms.nlocal(); ++i)
        total += sim.atoms.f[i];
    EXPECT_NEAR(total.x, 1.0 * nghost, 1e-9);
    EXPECT_NEAR(total.y, 2.0 * nghost, 1e-9);
    EXPECT_NEAR(total.z, 3.0 * nghost, 1e-9);
    // Ghost accumulators were consumed.
    for (std::size_t g = sim.atoms.nlocal(); g < sim.atoms.nall(); ++g)
        EXPECT_DOUBLE_EQ(sim.atoms.f[g].norm(), 0.0);
}

TEST(SerialComm, ScalarRoundTrip)
{
    Simulation sim = ghostedSystem();
    std::vector<double> values(sim.atoms.nall(), 0.0);
    for (std::size_t i = 0; i < sim.atoms.nlocal(); ++i)
        values[i] = static_cast<double>(sim.atoms.tag[i]);
    sim.comm->forwardScalar(sim, values);
    for (std::size_t g = sim.atoms.nlocal(); g < sim.atoms.nall(); ++g)
        EXPECT_DOUBLE_EQ(values[g],
                         static_cast<double>(sim.atoms.tag[g]));

    // Reverse: ghosts contribute back, owners accumulate.
    std::vector<double> ones(sim.atoms.nall(), 1.0);
    sim.comm->reverseScalar(sim, ones);
    double sum = 0.0;
    for (std::size_t i = 0; i < sim.atoms.nlocal(); ++i)
        sum += ones[i];
    EXPECT_NEAR(sum, static_cast<double>(sim.atoms.nlocal() +
                                         sim.atoms.nghost()),
                1e-9);
}

TEST(SerialComm, SmallBoxRejected)
{
    Simulation sim;
    buildFcc(sim, 3, 3, 3, 1.0); // box edge 3
    sim.neighbor.cutoff = 2.0;   // needs edge > 4.6
    sim.neighbor.skin = 0.3;
    sim.comm->exchange(sim);
    EXPECT_THROW(sim.comm->borders(sim), FatalError);
}

TEST(Units, LjIsAllOnes)
{
    const Units lj = Units::lj();
    EXPECT_DOUBLE_EQ(lj.boltz, 1.0);
    EXPECT_DOUBLE_EQ(lj.mvv2e, 1.0);
    EXPECT_DOUBLE_EQ(lj.ftm2v, 1.0);
    EXPECT_DOUBLE_EQ(lj.qqr2e, 1.0);
}

TEST(Units, MetalConstants)
{
    const Units metal = Units::metal();
    // g/mol * (A/ps)^2 -> eV.
    EXPECT_NEAR(metal.mvv2e, 1.0364269e-4, 1e-9);
    EXPECT_NEAR(metal.mvv2e * metal.ftm2v, 1.0, 1e-12);
    EXPECT_NEAR(metal.boltz, 8.617333e-5, 1e-9);
    EXPECT_NEAR(metal.qqr2e, 14.399645, 1e-5);
}

TEST(Units, RealConstants)
{
    const Units real = Units::real();
    // 1 g/mol * (A/fs)^2 = 1e7 J/mol = 2390.06 kcal/mol.
    EXPECT_NEAR(real.mvv2e, 1e7 / 4184.0, 0.01);
    EXPECT_NEAR(real.boltz, 1.9872e-3, 1e-6);
    EXPECT_NEAR(real.qqr2e, 332.06371, 1e-5);
}

TEST(Units, TemperatureConsistentAcrossSystems)
{
    // Equipartition: velocities sampled at T should read back as T in
    // any unit system.
    for (const Units &units : {Units::metal(), Units::real()}) {
        Simulation sim;
        buildFcc(sim, 4, 4, 4, 3.6);
        sim.units = units;
        sim.atoms.typeParams[1].mass = 55.0;
        Rng rng(42);
        createVelocities(sim, 450.0, rng);
        EXPECT_NEAR(sim.temperature(), 450.0, 1e-9) << units.name;
    }
}

} // namespace
} // namespace mdbench
