/**
 * @file
 * Granular (gran/hooke/history) correctness: contact forces, energy
 * dissipation, friction caps, shear history persistence, wall and
 * gravity fixes, and rotational integration.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "forcefield/pair_gran_hooke_history.h"
#include "md/fix_gravity.h"
#include "md/fix_nve.h"
#include "md/fix_wall_gran.h"
#include "md/simulation.h"

namespace mdbench {
namespace {

constexpr double kKn = 200000.0;
constexpr double kKt = 2.0 / 7.0 * kKn;
constexpr double kGammaN = 50.0;
constexpr double kGammaT = 25.0;
constexpr double kXmu = 0.5;

/** Two unit-diameter grains approaching head-on with speed v each. */
Simulation
collisionSetup(double gap, double speed)
{
    Simulation sim;
    sim.box = Box({0, 0, 0}, {20, 20, 20});
    sim.box.setPeriodic(true, true, true);
    sim.atoms.setNumTypes(1);
    sim.atoms.typeParams[1].radius = 0.5;
    const std::size_t a = sim.atoms.addAtom(1, 1, {9.5 - gap / 2, 10, 10});
    const std::size_t b = sim.atoms.addAtom(2, 1, {10.5 + gap / 2, 10, 10});
    sim.atoms.v[a] = {speed, 0, 0};
    sim.atoms.v[b] = {-speed, 0, 0};
    sim.pair = std::make_unique<PairGranHookeHistory>(kKn, kKt, kGammaN,
                                                      kGammaT, kXmu, 1.0);
    sim.neighbor.skin = 0.1;
    sim.dt = 1e-4;
    sim.thermoEvery = 0;
    sim.addFix<FixNVESphere>();
    return sim;
}

TEST(GranPair, NoForceWithoutOverlap)
{
    Simulation sim = collisionSetup(0.05, 0.0);
    sim.setup();
    EXPECT_DOUBLE_EQ(sim.atoms.f[0].norm(), 0.0);
    EXPECT_DOUBLE_EQ(sim.atoms.f[1].norm(), 0.0);
}

TEST(GranPair, StaticOverlapGivesHookeanForce)
{
    Simulation sim = collisionSetup(-0.01, 0.0); // 1% overlap
    sim.setup();
    // F = kn * overlap on each grain, pushing them apart.
    EXPECT_NEAR(sim.atoms.f[0].x, -kKn * 0.01, 1e-6);
    EXPECT_NEAR(sim.atoms.f[1].x, kKn * 0.01, 1e-6);
}

TEST(GranPair, NewtonsThirdLawFromFullList)
{
    Simulation sim = collisionSetup(-0.02, 1.0);
    sim.setup();
    sim.run(10);
    const Vec3 total = sim.atoms.f[0] + sim.atoms.f[1];
    EXPECT_NEAR(total.norm(), 0.0, 1e-9);
}

TEST(GranPair, HeadOnCollisionDissipatesEnergy)
{
    Simulation sim = collisionSetup(0.02, 1.0);
    sim.setup();
    const double ke0 = sim.kineticEnergy();
    sim.run(400); // through the collision
    const double ke1 = sim.kineticEnergy();
    // Grains separated again and lost energy to the normal dashpot.
    const double gap = (sim.atoms.x[1] - sim.atoms.x[0]).norm();
    EXPECT_GT(gap, 1.0);
    EXPECT_LT(ke1, ke0);
    EXPECT_GT(ke1, 0.0);
    // Velocities reversed (they bounced).
    EXPECT_LT(sim.atoms.v[0].x, 0.0);
    EXPECT_GT(sim.atoms.v[1].x, 0.0);
}

TEST(GranPair, ObliqueContactInducesSpin)
{
    // Grain sliding tangentially across another builds tangential force
    // and hence torque (frictional history at work).
    Simulation sim = collisionSetup(-0.02, 0.0);
    sim.atoms.v[0] = {0, 1.0, 0}; // tangential motion
    sim.setup();
    sim.run(50);
    EXPECT_GT(std::fabs(sim.atoms.omega[0].z), 0.0);
    EXPECT_GT(std::fabs(sim.atoms.omega[1].z), 0.0);
}

TEST(GranPair, FrictionCappedByCoulomb)
{
    Simulation sim = collisionSetup(-0.001, 0.0); // light overlap
    sim.atoms.v[0] = {0, 5.0, 0};                 // fast sliding
    sim.setup();
    // Tangential force magnitude never exceeds xmu * |fn|.
    for (int i = 0; i < 20; ++i) {
        sim.run(1);
        const Vec3 f = sim.atoms.f[0];
        const double fn = std::fabs(f.x);
        const double ft = std::sqrt(f.y * f.y + f.z * f.z);
        if (fn > 0.0) {
            EXPECT_LE(ft, kXmu * fn * 1.05) << "step " << i;
        }
    }
}

TEST(GranPair, HistoryPersistsAcrossSteps)
{
    Simulation sim = collisionSetup(-0.02, 0.0);
    sim.atoms.v[0] = {0, 0.2, 0};
    sim.setup();
    sim.run(5);
    auto &gran = static_cast<PairGranHookeHistory &>(*sim.pair);
    EXPECT_GE(gran.historyCount(), 2u); // both directed sides tracked
    // Tangential spring force grows with accumulated displacement while
    // static friction holds.
    const double ft1 = std::fabs(sim.atoms.f[0].y);
    sim.run(5);
    const double ft2 = std::fabs(sim.atoms.f[0].y);
    EXPECT_GT(ft2, ft1 * 0.5);
    EXPECT_GT(ft2, 0.0);
}

TEST(GranPair, HistoryClearedOnSeparation)
{
    Simulation sim = collisionSetup(0.02, 1.0);
    sim.setup();
    sim.run(400); // collide and separate
    auto &gran = static_cast<PairGranHookeHistory &>(*sim.pair);
    EXPECT_EQ(gran.historyCount(), 0u);
}

TEST(WallGran, SupportsParticleAgainstGravity)
{
    Simulation sim;
    sim.box = Box({0, 0, 0}, {10, 10, 10});
    sim.box.setPeriodic(true, true, false);
    sim.atoms.setNumTypes(1);
    sim.atoms.typeParams[1].radius = 0.5;
    sim.atoms.addAtom(1, 1, {5, 5, 0.55});
    sim.pair = std::make_unique<PairGranHookeHistory>(kKn, kKt, kGammaN,
                                                      kGammaT, kXmu, 1.0);
    sim.neighbor.skin = 0.1;
    sim.dt = 1e-4;
    sim.thermoEvery = 0;
    sim.addFix<FixNVESphere>();
    sim.addFix<FixGravity>(1.0, Vec3{0, 0, -1});
    // Strong normal damping so the bounce cascade settles quickly.
    sim.addFix<FixWallGran>(0.0, kKn, kKt, 500.0, kGammaT, kXmu);
    sim.setup();
    sim.run(20000);
    // Particle settles just above the wall (z ~ radius).
    EXPECT_NEAR(sim.atoms.x[0].z, 0.5, 0.05);
    EXPECT_NEAR(sim.atoms.v[0].z, 0.0, 0.05);
}

TEST(FixGravity, ChuteTiltSplitsComponents)
{
    const FixGravity gravity = FixGravity::chute(1.0, 26.0);
    const Vec3 &g = gravity.acceleration();
    EXPECT_NEAR(g.x, std::sin(26.0 * M_PI / 180.0), 1e-12);
    EXPECT_NEAR(g.z, -std::cos(26.0 * M_PI / 180.0), 1e-12);
    EXPECT_DOUBLE_EQ(g.y, 0.0);
}

TEST(FixNVESphere, FreeRotationIsUniform)
{
    Simulation sim;
    sim.box = Box({0, 0, 0}, {10, 10, 10});
    sim.atoms.setNumTypes(1);
    sim.atoms.typeParams[1].radius = 0.5;
    sim.atoms.addAtom(1, 1, {5, 5, 5});
    sim.atoms.omega[0] = {0, 0, 3.0};
    sim.pair = std::make_unique<PairGranHookeHistory>(kKn, kKt, kGammaN,
                                                      kGammaT, kXmu, 1.0);
    sim.neighbor.skin = 0.1;
    sim.dt = 1e-4;
    sim.thermoEvery = 0;
    sim.addFix<FixNVESphere>();
    sim.setup();
    sim.run(100);
    EXPECT_NEAR(sim.atoms.omega[0].z, 3.0, 1e-12);
}

} // namespace
} // namespace mdbench
