/**
 * @file
 * EAM potential correctness: spline interpolation, two-pass density
 * bookkeeping, force-energy consistency, and copper-solid stability.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "forcefield/pair_eam.h"
#include "forcefield/spline.h"
#include "md/fix_nve.h"
#include "md/lattice.h"
#include "md/simulation.h"
#include "md/velocity.h"
#include "util/rng.h"

namespace mdbench {
namespace {

/** Cu fcc solid with the synthetic EAM tables, metal units. */
Simulation
makeCopper(int cells)
{
    Simulation sim;
    buildFcc(sim, cells, cells, cells, 3.615);
    sim.units = Units::metal();
    sim.atoms.typeParams[1].mass = 63.546;
    sim.pair = std::make_unique<PairEAM>(EamTables::makeSyntheticCopper());
    sim.neighbor.skin = 1.0;
    sim.dt = 0.002; // ps
    sim.thermoEvery = 0;
    return sim;
}

TEST(Spline, ReproducesSmoothFunction)
{
    const int n = 200;
    const double x0 = 0.0;
    const double dx = 0.05;
    std::vector<double> samples(n);
    for (int i = 0; i < n; ++i)
        samples[i] = std::sin(x0 + i * dx);
    CubicSpline spline(x0, dx, samples);
    for (double x : {0.31, 1.7, 4.44, 7.9}) {
        EXPECT_NEAR(spline.value(x), std::sin(x), 1e-5);
        EXPECT_NEAR(spline.derivative(x), std::cos(x), 1e-3);
    }
}

TEST(Spline, ExactAtKnots)
{
    CubicSpline spline(1.0, 0.5, {2.0, 3.0, 5.0, 4.0, 1.0});
    EXPECT_NEAR(spline.value(1.0), 2.0, 1e-12);
    EXPECT_NEAR(spline.value(2.0), 5.0, 1e-12);
    EXPECT_NEAR(spline.value(3.0), 1.0, 1e-12);
}

TEST(Spline, ClampsOutsideRange)
{
    CubicSpline spline(0.0, 1.0, {1.0, 2.0, 3.0});
    EXPECT_NO_THROW(spline.value(-5.0));
    EXPECT_NO_THROW(spline.value(10.0));
}

TEST(EamTables, PairTermVanishesAtCutoff)
{
    const EamTables tables = EamTables::makeSyntheticCopper();
    EXPECT_NEAR(tables.phi.value(tables.cutoff), 0.0, 1e-8);
    EXPECT_NEAR(tables.phi.derivative(tables.cutoff), 0.0, 1e-3);
    EXPECT_NEAR(tables.rho.value(tables.cutoff), 0.0, 1e-8);
}

TEST(EamTables, DensityDecreasesWithDistance)
{
    const EamTables tables = EamTables::makeSyntheticCopper();
    double last = tables.rho.value(1.5);
    for (double r = 1.8; r < 4.8; r += 0.3) {
        const double value = tables.rho.value(r);
        EXPECT_LT(value, last) << r;
        last = value;
    }
}

TEST(EamTables, EmbeddingIsNegativeAndConcave)
{
    const EamTables tables = EamTables::makeSyntheticCopper();
    EXPECT_LT(tables.embed.value(1.0), 0.0);
    // sqrt-like: derivative decreases in magnitude with rho.
    EXPECT_LT(std::fabs(tables.embed.derivative(2.0)),
              std::fabs(tables.embed.derivative(0.5)));
}

TEST(PairEam, CohesiveEnergyIsNegative)
{
    Simulation sim = makeCopper(4);
    sim.setup();
    const double perAtom =
        sim.pair->energy() / static_cast<double>(sim.atoms.nlocal());
    // A bound metallic solid: several eV of cohesion per atom.
    EXPECT_LT(perAtom, -0.5);
    EXPECT_GT(perAtom, -10.0);
}

TEST(PairEam, LatticeForcesVanishBySymmetry)
{
    Simulation sim = makeCopper(4);
    sim.setup();
    for (std::size_t i = 0; i < sim.atoms.nlocal(); ++i)
        EXPECT_NEAR(sim.atoms.f[i].norm(), 0.0, 1e-8) << i;
}

TEST(PairEam, HostDensityNearTwelveNeighborValue)
{
    Simulation sim = makeCopper(4);
    sim.setup();
    auto &eam = static_cast<PairEAM &>(*sim.pair);
    // All lattice sites are equivalent: densities must be equal.
    const double rho0 = eam.hostDensity(0);
    EXPECT_GT(rho0, 0.0);
    for (std::size_t i = 1; i < 20; ++i)
        EXPECT_NEAR(eam.hostDensity(i), rho0, 1e-10);
}

TEST(PairEam, ForceIsMinusEnergyGradient)
{
    Simulation sim = makeCopper(4);
    // Perturb atoms so forces are nonzero.
    Rng rng(55);
    for (auto &pos : sim.atoms.x)
        pos += Vec3{rng.uniform(-0.1, 0.1), rng.uniform(-0.1, 0.1),
                    rng.uniform(-0.1, 0.1)};
    sim.setup();

    auto energyAt = [&](std::size_t atom, int axis, double delta) {
        Vec3 &pos = sim.atoms.x[atom];
        double *coord = axis == 0 ? &pos.x : axis == 1 ? &pos.y : &pos.z;
        const double saved = *coord;
        *coord = saved + delta;
        sim.reneighbor();
        sim.computeForces();
        const double energy = sim.pair->energy();
        *coord = saved;
        return energy;
    };

    sim.reneighbor();
    sim.computeForces();
    std::vector<Vec3> forces(sim.atoms.f.begin(),
                             sim.atoms.f.begin() + sim.atoms.nlocal());

    const double h = 1e-5;
    for (std::size_t atom : {0u, 5u, 17u}) {
        for (int axis = 0; axis < 3; ++axis) {
            const double numeric =
                -(energyAt(atom, axis, h) - energyAt(atom, axis, -h)) /
                (2.0 * h);
            const double analytic = axis == 0   ? forces[atom].x
                                    : axis == 1 ? forces[atom].y
                                                : forces[atom].z;
            EXPECT_NEAR(numeric, analytic,
                        2e-3 * std::max(1.0, std::fabs(analytic)))
                << "atom " << atom << " axis " << axis;
        }
    }
}

TEST(PairEam, SolidStaysBoundUnderNVE)
{
    Simulation sim = makeCopper(4);
    Rng rng(77);
    createVelocities(sim, 300.0, rng); // kelvin
    sim.addFix<FixNVE>();
    sim.setup();
    const double e0 = sim.kineticEnergy() + sim.potentialEnergy();
    sim.run(200);
    const double e1 = sim.kineticEnergy() + sim.potentialEnergy();
    EXPECT_NEAR(e1, e0, 5e-3 * std::fabs(e0));
    // Still a solid: temperature bounded, atoms near lattice sites.
    EXPECT_LT(sim.temperature(), 900.0);
}

TEST(PairEam, NewtonThirdLawTotalForceZero)
{
    Simulation sim = makeCopper(4);
    Rng rng(3);
    for (auto &pos : sim.atoms.x)
        pos += Vec3{rng.uniform(-0.15, 0.15), rng.uniform(-0.15, 0.15),
                    rng.uniform(-0.15, 0.15)};
    sim.setup();
    Vec3 total{};
    for (std::size_t i = 0; i < sim.atoms.nlocal(); ++i)
        total += sim.atoms.f[i];
    EXPECT_NEAR(total.norm(), 0.0, 1e-8);
}

} // namespace
} // namespace mdbench
