/**
 * @file
 * Pair-potential correctness for lj/cut: analytic two-body values,
 * force-energy consistency by finite differences, Newton's third law,
 * mixing rules, and the WCA shifted variant.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "forcefield/pair_lj_cut.h"
#include "md/lattice.h"
#include "md/simulation.h"
#include "util/rng.h"

namespace mdbench {
namespace {

/** Two atoms at distance r in a large box with an lj/cut pair style. */
Simulation
twoBody(double r, double cutoff, bool shift = false)
{
    Simulation sim;
    sim.box = Box({0, 0, 0}, {40, 40, 40});
    sim.atoms.setNumTypes(1);
    sim.atoms.addAtom(1, 1, {10, 10, 10});
    sim.atoms.addAtom(2, 1, {10 + r, 10, 10});
    auto pair = std::make_unique<PairLJCut>(1, cutoff, shift);
    pair->setCoeff(1, 1, 1.0, 1.0);
    sim.pair = std::move(pair);
    sim.setup();
    return sim;
}

double
ljEnergy(double r)
{
    const double sr6 = std::pow(1.0 / r, 6);
    return 4.0 * (sr6 * sr6 - sr6);
}

double
ljForce(double r)
{
    const double sr6 = std::pow(1.0 / r, 6);
    return 24.0 * (2.0 * sr6 * sr6 - sr6) / r;
}

TEST(PairLJ, TwoBodyEnergyAtMinimum)
{
    const double rmin = std::pow(2.0, 1.0 / 6.0);
    Simulation sim = twoBody(rmin, 2.5);
    EXPECT_NEAR(sim.pair->energy(), -1.0, 1e-12);
    // Force vanishes at the minimum.
    EXPECT_NEAR(sim.atoms.f[0].norm(), 0.0, 1e-10);
}

class PairLJDistances : public ::testing::TestWithParam<double>
{};

TEST_P(PairLJDistances, MatchesAnalyticForms)
{
    const double r = GetParam();
    Simulation sim = twoBody(r, 2.5);
    EXPECT_NEAR(sim.pair->energy(), ljEnergy(r), 1e-10);
    EXPECT_NEAR(sim.atoms.f[0].x, -ljForce(r), 1e-9);
    EXPECT_NEAR(sim.atoms.f[1].x, ljForce(r), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(SweepDistances, PairLJDistances,
                         ::testing::Values(0.9, 1.0, 1.1, 1.3, 1.5, 1.8,
                                           2.0, 2.3, 2.49));

TEST(PairLJ, BeyondCutoffIsZero)
{
    Simulation sim = twoBody(2.6, 2.5);
    EXPECT_DOUBLE_EQ(sim.pair->energy(), 0.0);
    EXPECT_DOUBLE_EQ(sim.atoms.f[0].norm(), 0.0);
}

TEST(PairLJ, ShiftZeroesEnergyAtCutoff)
{
    Simulation near = twoBody(2.4999, 2.5, true);
    EXPECT_NEAR(near.pair->energy(), 0.0, 1e-5);
    Simulation at = twoBody(1.2, 2.5, true);
    EXPECT_NEAR(at.pair->energy(), ljEnergy(1.2) - ljEnergy(2.5), 1e-10);
}

TEST(PairLJ, WcaIsPurelyRepulsive)
{
    const double rc = std::pow(2.0, 1.0 / 6.0);
    for (double r : {0.9, 1.0, 1.05, 1.1}) {
        Simulation sim = twoBody(r, rc, true);
        EXPECT_GE(sim.pair->energy(), 0.0) << r;
        EXPECT_GT(sim.atoms.f[1].x, 0.0) << r;
    }
}

TEST(PairLJ, ForceIsMinusEnergyGradient)
{
    // Finite-difference check on a disordered many-body system.
    Simulation sim;
    sim.box = Box({0, 0, 0}, {8, 8, 8});
    sim.atoms.setNumTypes(1);
    Rng rng(4);
    for (int i = 0; i < 60; ++i)
        sim.atoms.addAtom(i + 1, 1,
                          {rng.uniform(0, 8), rng.uniform(0, 8),
                           rng.uniform(0, 8)});
    auto pair = std::make_unique<PairLJCut>(1, 2.0);
    pair->setCoeff(1, 1, 0.7, 0.95);
    sim.pair = std::move(pair);
    sim.neighbor.skin = 0.4;
    sim.setup();

    auto energyAt = [&](std::size_t atom, int axis, double delta) {
        Vec3 &pos = sim.atoms.x[atom];
        double *coord = axis == 0 ? &pos.x : axis == 1 ? &pos.y : &pos.z;
        const double saved = *coord;
        *coord = saved + delta;
        sim.reneighbor();
        sim.computeForces();
        const double energy = sim.pair->energy();
        *coord = saved;
        return energy;
    };

    sim.reneighbor();
    sim.computeForces();
    std::vector<Vec3> forces(sim.atoms.f.begin(),
                             sim.atoms.f.begin() + sim.atoms.nlocal());

    const double h = 1e-6;
    for (std::size_t atom : {0u, 7u, 23u, 59u}) {
        for (int axis = 0; axis < 3; ++axis) {
            const double numeric =
                -(energyAt(atom, axis, h) - energyAt(atom, axis, -h)) /
                (2.0 * h);
            const double analytic = axis == 0   ? forces[atom].x
                                    : axis == 1 ? forces[atom].y
                                                : forces[atom].z;
            EXPECT_NEAR(numeric, analytic,
                        1e-4 * std::max(1.0, std::fabs(analytic)))
                << "atom " << atom << " axis " << axis;
        }
    }
}

TEST(PairLJ, NewtonThirdLawTotalForceZero)
{
    Simulation sim;
    buildFcc(sim, 4, 4, 4, fccLatticeConstant(0.8442));
    // Perturb to break symmetry.
    Rng rng(10);
    for (auto &pos : sim.atoms.x)
        pos += Vec3{rng.uniform(-0.05, 0.05), rng.uniform(-0.05, 0.05),
                    rng.uniform(-0.05, 0.05)};
    auto pair = std::make_unique<PairLJCut>(1, 2.5);
    pair->setCoeff(1, 1, 1.0, 1.0);
    sim.pair = std::move(pair);
    sim.setup();

    Vec3 total{};
    for (std::size_t i = 0; i < sim.atoms.nlocal(); ++i)
        total += sim.atoms.f[i];
    EXPECT_NEAR(total.norm(), 0.0, 1e-9);
}

TEST(PairLJ, MixingRules)
{
    PairLJCut pair(2, 2.5);
    pair.setCoeff(1, 1, 1.0, 1.0);
    pair.setCoeff(2, 2, 4.0, 2.0);
    pair.mix(MixRule::Arithmetic);

    // Probe the mixed interaction through a two-atom system.
    Simulation sim;
    sim.box = Box({0, 0, 0}, {40, 40, 40});
    sim.atoms.setNumTypes(2);
    sim.atoms.addAtom(1, 1, {10, 10, 10});
    sim.atoms.addAtom(2, 2, {11.8, 10, 10});
    sim.pair = std::make_unique<PairLJCut>(pair);
    sim.setup();

    // Arithmetic mixing: eps = sqrt(1*4) = 2, sigma = 1.5.
    const double r = 1.8;
    const double sr6 = std::pow(1.5 / r, 6);
    EXPECT_NEAR(sim.pair->energy(), 4.0 * 2.0 * (sr6 * sr6 - sr6), 1e-10);
}

TEST(PairLJ, CohesiveEnergyOfFccLJCrystal)
{
    // Perfect fcc LJ crystal at rho* = 1.0459 (a = 1.5496) has cohesive
    // energy near -8.6 eps/atom with a 2.5 sigma cutoff (classic value
    // ~-8.61 for r_c -> inf is -8.61; truncated slightly less bound).
    Simulation sim;
    buildFcc(sim, 5, 5, 5, 1.5496);
    auto pair = std::make_unique<PairLJCut>(1, 2.5);
    pair->setCoeff(1, 1, 1.0, 1.0);
    sim.pair = std::move(pair);
    sim.setup();
    const double perAtom =
        sim.pair->energy() / static_cast<double>(sim.atoms.nlocal());
    EXPECT_NEAR(perAtom, -8.2, 0.5);
}

} // namespace
} // namespace mdbench
