/**
 * @file
 * FFT correctness: naive-DFT cross-check, round trips, Parseval,
 * linearity, and smooth-size helpers.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "kspace/fft3d.h"
#include "obs/counters.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace mdbench {
namespace {

std::vector<Complex>
randomSignal(int n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<Complex> signal(n);
    for (auto &value : signal)
        value = Complex(rng.uniform(-1, 1), rng.uniform(-1, 1));
    return signal;
}

std::vector<Complex>
naiveDft(const std::vector<Complex> &in, int sign)
{
    const int n = static_cast<int>(in.size());
    std::vector<Complex> out(n);
    for (int k = 0; k < n; ++k) {
        Complex acc{};
        for (int j = 0; j < n; ++j) {
            const double angle = sign * 2.0 * M_PI * k * j / n;
            acc += in[j] * Complex(std::cos(angle), std::sin(angle));
        }
        out[k] = acc;
    }
    return out;
}

class Fft1dSizes : public ::testing::TestWithParam<int>
{};

TEST_P(Fft1dSizes, MatchesNaiveDft)
{
    const int n = GetParam();
    auto signal = randomSignal(n, 100 + n);
    const auto expected = naiveDft(signal, -1);
    fft1d(signal.data(), n, -1);
    for (int k = 0; k < n; ++k) {
        EXPECT_NEAR(signal[k].real(), expected[k].real(), 1e-9 * n)
            << "n=" << n << " k=" << k;
        EXPECT_NEAR(signal[k].imag(), expected[k].imag(), 1e-9 * n);
    }
}

TEST_P(Fft1dSizes, RoundTripRecoversSignal)
{
    const int n = GetParam();
    const auto original = randomSignal(n, 200 + n);
    auto signal = original;
    fft1d(signal.data(), n, -1);
    fft1d(signal.data(), n, 1);
    for (int k = 0; k < n; ++k) {
        EXPECT_NEAR(signal[k].real() / n, original[k].real(), 1e-10);
        EXPECT_NEAR(signal[k].imag() / n, original[k].imag(), 1e-10);
    }
}

INSTANTIATE_TEST_SUITE_P(MixedRadixAndPrime, Fft1dSizes,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 8, 9, 10, 12,
                                           15, 16, 20, 24, 25, 27, 30, 32,
                                           7, 11, 13, 36, 45, 60, 64, 100));

TEST(Fft1d, ParsevalHolds)
{
    const int n = 60;
    auto signal = randomSignal(n, 31);
    double timeEnergy = 0.0;
    for (const auto &value : signal)
        timeEnergy += std::norm(value);
    fft1d(signal.data(), n, -1);
    double freqEnergy = 0.0;
    for (const auto &value : signal)
        freqEnergy += std::norm(value);
    EXPECT_NEAR(freqEnergy, n * timeEnergy, 1e-8 * n * timeEnergy);
}

TEST(Fft1d, DeltaTransformsToConstant)
{
    std::vector<Complex> signal(16, Complex{});
    signal[0] = 1.0;
    fft1d(signal.data(), 16, -1);
    for (const auto &value : signal) {
        EXPECT_NEAR(value.real(), 1.0, 1e-12);
        EXPECT_NEAR(value.imag(), 0.0, 1e-12);
    }
}

TEST(Fft1d, SingleModeIsLocalized)
{
    const int n = 30;
    std::vector<Complex> signal(n);
    for (int j = 0; j < n; ++j) {
        const double angle = 2.0 * M_PI * 7 * j / n;
        signal[j] = Complex(std::cos(angle), std::sin(angle));
    }
    fft1d(signal.data(), n, -1);
    for (int k = 0; k < n; ++k) {
        const double expected = k == 7 ? n : 0.0;
        EXPECT_NEAR(signal[k].real(), expected, 1e-9);
        EXPECT_NEAR(signal[k].imag(), 0.0, 1e-9);
    }
}

TEST(Fft3d, RoundTrip)
{
    Fft3d fft(6, 10, 4);
    Rng rng(42);
    std::vector<Complex> data(fft.size());
    for (auto &value : data)
        value = Complex(rng.uniform(-1, 1), rng.uniform(-1, 1));
    const auto original = data;
    fft.forward(data);
    fft.inverse(data);
    for (std::size_t i = 0; i < data.size(); ++i) {
        EXPECT_NEAR(data[i].real(), original[i].real(), 1e-10);
        EXPECT_NEAR(data[i].imag(), original[i].imag(), 1e-10);
    }
}

TEST(Fft3d, PlaneWaveLocalizes)
{
    const int nx = 8;
    const int ny = 6;
    const int nz = 5;
    Fft3d fft(nx, ny, nz);
    std::vector<Complex> data(fft.size());
    const int mx = 3;
    const int my = 2;
    const int mz = 4;
    for (int z = 0; z < nz; ++z)
        for (int y = 0; y < ny; ++y)
            for (int x = 0; x < nx; ++x) {
                const double angle =
                    2.0 * M_PI *
                    (static_cast<double>(mx) * x / nx +
                     static_cast<double>(my) * y / ny +
                     static_cast<double>(mz) * z / nz);
                data[(static_cast<std::size_t>(z) * ny + y) * nx + x] =
                    Complex(std::cos(angle), std::sin(angle));
            }
    fft.forward(data);
    const std::size_t peak =
        (static_cast<std::size_t>(mz) * ny + my) * nx + mx;
    for (std::size_t i = 0; i < data.size(); ++i) {
        const double expected = i == peak ? static_cast<double>(fft.size())
                                          : 0.0;
        EXPECT_NEAR(data[i].real(), expected, 1e-8);
        EXPECT_NEAR(data[i].imag(), 0.0, 1e-8);
    }
}

TEST(SmoothSizes, Detection)
{
    EXPECT_TRUE(isSmooth235(1));
    EXPECT_TRUE(isSmooth235(8));
    EXPECT_TRUE(isSmooth235(45));
    EXPECT_TRUE(isSmooth235(120));
    EXPECT_FALSE(isSmooth235(7));
    EXPECT_FALSE(isSmooth235(22));
    EXPECT_FALSE(isSmooth235(0));
}

TEST(SmoothSizes, NextSmooth)
{
    EXPECT_EQ(nextSmooth235(7), 8);
    EXPECT_EQ(nextSmooth235(31), 32);
    EXPECT_EQ(nextSmooth235(121), 125);
    EXPECT_EQ(nextSmooth235(16), 16);
}

TEST(SmoothSizes, EdgeCases)
{
    // n = 1 is the empty product of {2, 3, 5}.
    EXPECT_TRUE(isSmooth235(1));
    EXPECT_EQ(nextSmooth235(1), 1);
    // Non-positive inputs: not smooth; next rounds up to 1.
    EXPECT_FALSE(isSmooth235(-3));
    EXPECT_EQ(nextSmooth235(0), 1);
    EXPECT_EQ(nextSmooth235(-10), 1);
    // Primes outside {2, 3, 5} and numbers carrying them as factors.
    for (int prime : {7, 11, 13, 9973})
        EXPECT_FALSE(isSmooth235(prime)) << prime;
    EXPECT_FALSE(isSmooth235(2 * 3 * 5 * 7));
    // Large smooth values are fixed points of nextSmooth235.
    const int large = 1024 * 243 * 125; // 2^10 3^5 5^3 = 31,104,000
    EXPECT_TRUE(isSmooth235(large));
    EXPECT_EQ(nextSmooth235(large), large);
    // 10007 is prime; the next 2/3/5-smooth integer is 3^4 5^3.
    EXPECT_EQ(nextSmooth235(10007), 10125);
}

// The paper's Section 7 thresholds produce non-power-of-two PPPM grids
// (any 2/3/5-smooth axis), so the transform quality guarantees must
// hold there too, not only at the power-of-two sizes.

TEST(Fft3d, NonPowerOfTwoRoundTrip)
{
    Fft3d fft(12, 15, 10);
    Rng rng(91);
    std::vector<Complex> data(fft.size());
    for (auto &value : data)
        value = Complex(rng.uniform(-1, 1), rng.uniform(-1, 1));
    const auto original = data;
    fft.forward(data);
    fft.inverse(data);
    for (std::size_t i = 0; i < data.size(); ++i) {
        EXPECT_NEAR(data[i].real(), original[i].real(), 1e-10);
        EXPECT_NEAR(data[i].imag(), original[i].imag(), 1e-10);
    }
}

TEST(Fft3d, NonPowerOfTwoParseval)
{
    Fft3d fft(9, 20, 6);
    Rng rng(92);
    std::vector<Complex> data(fft.size());
    double timeEnergy = 0.0;
    for (auto &value : data) {
        value = Complex(rng.uniform(-1, 1), rng.uniform(-1, 1));
        timeEnergy += std::norm(value);
    }
    fft.forward(data);
    double freqEnergy = 0.0;
    for (const auto &value : data)
        freqEnergy += std::norm(value);
    const double n = static_cast<double>(fft.size());
    EXPECT_NEAR(freqEnergy, n * timeEnergy, 1e-8 * n * timeEnergy);
}

TEST(Fft3d, ThreadedTransformIsBitwiseIdenticalToSerial)
{
    const int before = ThreadPool::threads();
    Fft3d fft(12, 9, 10);
    Rng rng(93);
    std::vector<Complex> original(fft.size());
    for (auto &value : original)
        value = Complex(rng.uniform(-1, 1), rng.uniform(-1, 1));

    ThreadPool::setThreads(1);
    auto serial = original;
    fft.forward(serial);
    for (int nthreads : {2, 4, 8}) {
        SCOPED_TRACE(nthreads);
        ThreadPool::setThreads(nthreads);
        auto threaded = original;
        fft.forward(threaded);
        for (std::size_t i = 0; i < serial.size(); ++i) {
            EXPECT_EQ(threaded[i].real(), serial[i].real()) << i;
            EXPECT_EQ(threaded[i].imag(), serial[i].imag()) << i;
        }
    }
    ThreadPool::setThreads(before);
}

TEST(FftPlan, CacheReusesPlansAtFixedLength)
{
    // Generic-radix length (prime 19): before planning, every call
    // re-derived the factorization and twiddles; now the second lookup
    // must be served from the cache.
    const FftPlan &first = fftPlanFor(19);
    const auto hitsBefore = counterValue(Counter::KspacePlanCacheHits);
    const FftPlan &second = fftPlanFor(19);
    EXPECT_EQ(&first, &second);
    EXPECT_EQ(counterValue(Counter::KspacePlanCacheHits), hitsBefore + 1);

    auto signal = randomSignal(19, 321);
    const auto expected = naiveDft(signal, -1);
    fft1d(signal.data(), 19, -1); // routes through the same cached plan
    EXPECT_GT(counterValue(Counter::KspacePlanCacheHits), hitsBefore + 1);
    for (int k = 0; k < 19; ++k) {
        EXPECT_NEAR(signal[k].real(), expected[k].real(), 1e-9 * 19);
        EXPECT_NEAR(signal[k].imag(), expected[k].imag(), 1e-9 * 19);
    }
}

TEST(FftPlan, FactorsMultiplyBackToLength)
{
    for (int n : {1, 2, 12, 19, 60, 98, 121, 1000}) {
        const FftPlan &plan = fftPlanFor(n);
        EXPECT_EQ(plan.length(), n);
        long product = 1;
        for (int factor : plan.factors())
            product *= factor;
        EXPECT_EQ(product, n) << n;
    }
}

} // namespace
} // namespace mdbench
