/**
 * @file
 * Harness tests: sweep generation order, model-experiment records,
 * figure-table rendering, and anchor reporting.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "harness/experiment.h"
#include "harness/report.h"
#include "harness/sweep.h"

namespace mdbench {
namespace {

TEST(Sweep, RowMajorOrderMatchesFigureGrids)
{
    const auto specs = cpuSweep({BenchmarkId::LJ, BenchmarkId::EAM},
                                {32, 256}, {1, 4});
    ASSERT_EQ(specs.size(), 8u);
    EXPECT_EQ(specs[0].benchmark, BenchmarkId::LJ);
    EXPECT_EQ(specs[0].natoms, 32000);
    EXPECT_EQ(specs[0].resources, 1);
    EXPECT_EQ(specs[1].resources, 4);
    EXPECT_EQ(specs[2].natoms, 256000);
    EXPECT_EQ(specs[4].benchmark, BenchmarkId::EAM);
    for (const auto &spec : specs)
        EXPECT_EQ(spec.mode, ExperimentMode::ModelCpu);
}

TEST(Sweep, GpuSweepSetsMode)
{
    const auto specs = gpuSweep({BenchmarkId::LJ}, {32}, {1, 2, 4, 6, 8});
    ASSERT_EQ(specs.size(), 5u);
    for (const auto &spec : specs)
        EXPECT_EQ(spec.mode, ExperimentMode::ModelGpu);
}

TEST(Sweep, OptionsPropagate)
{
    SweepOptions options;
    options.kspaceAccuracy = 1e-6;
    options.precision = Precision::Double;
    const auto specs = cpuSweep({BenchmarkId::Rhodo}, {32}, {1}, options);
    EXPECT_DOUBLE_EQ(specs[0].kspaceAccuracy, 1e-6);
    EXPECT_EQ(specs[0].precision, Precision::Double);
}

TEST(Sweep, RunModelSweepProducesRecords)
{
    const auto records =
        runModelSweep(cpuSweep({BenchmarkId::LJ}, {32}, {1, 8, 64}));
    ASSERT_EQ(records.size(), 3u);
    EXPECT_GT(records[2].timestepsPerSecond,
              records[0].timestepsPerSecond);
}

TEST(Report, BreakdownTableHasTaskColumns)
{
    const auto records =
        runModelSweep(cpuSweep({BenchmarkId::Rhodo}, {32}, {4}));
    const Table table = makeBreakdownTable(records, "procs");
    std::ostringstream os;
    table.printAscii(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("Pair%"), std::string::npos);
    EXPECT_NE(out.find("Kspace%"), std::string::npos);
    EXPECT_NE(out.find("rhodo"), std::string::npos);
}

TEST(Report, MpiFunctionTableHasInitColumn)
{
    const auto records =
        runModelSweep(cpuSweep({BenchmarkId::LJ}, {32}, {8}));
    const Table table = makeMpiFunctionTable(records);
    std::ostringstream os;
    table.printAscii(os);
    EXPECT_NE(os.str().find("MPI_Init%"), std::string::npos);
    EXPECT_NE(os.str().find("MPI_Wait%"), std::string::npos);
}

TEST(Report, ScalingTableGpuColumn)
{
    const auto records =
        runModelSweep(gpuSweep({BenchmarkId::LJ}, {256}, {1, 8}));
    const Table table = makeScalingTable(records, "GPUs", true);
    std::ostringstream os;
    table.printAscii(os);
    EXPECT_NE(os.str().find("device util"), std::string::npos);
}

TEST(Report, AnchorReportComputesRatios)
{
    AnchorReport report;
    report.add("thing", 10.0, 12.0);
    report.add("other", 5.0, 5.0);
    std::ostringstream os;
    const double worst = report.print(os);
    EXPECT_NEAR(worst, std::log(1.2), 1e-9);
    EXPECT_NE(os.str().find("1.20x"), std::string::npos);
}

TEST(Report, EmitTableIncludesCsvBlock)
{
    Table table({"a"});
    table.addRow({"1"});
    std::ostringstream os;
    emitTable(os, table, "test_tag");
    EXPECT_NE(os.str().find("[csv:test_tag]"), std::string::npos);
    EXPECT_NE(os.str().find("[/csv]"), std::string::npos);
}

TEST(Record, ModeNames)
{
    EXPECT_STREQ(experimentModeName(ExperimentMode::ModelCpu),
                 "model-cpu");
    EXPECT_STREQ(experimentModeName(ExperimentMode::NativeRanked),
                 "native-ranked");
}

} // namespace
} // namespace mdbench
