/**
 * @file
 * Unit tests for the observability layer (src/obs/): the event tracer,
 * the counter registry, the JSON writer/parser, BenchOptions parsing,
 * TaskScope, and the run-manifest schema (golden-file style, validated
 * with the bundled JSON parser against a real tiny LJ run).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/suite.h"
#include "kspace/fft3d.h"
#include "md/neighbor.h"
#include "md/simulation.h"
#include "obs/bench_options.h"
#include "obs/counters.h"
#include "obs/json.h"
#include "obs/manifest.h"
#include "obs/task_scope.h"
#include "obs/trace.h"
#include "util/neigh_layout.h"
#include "util/simd.h"
#include "util/logging.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace mdbench {
namespace {

/** Default per-thread ring capacity (mirrors trace.cpp). */
constexpr std::size_t kDefaultCapacity = std::size_t{1} << 15;

/** Reset the tracer to a known state between tests. */
void
resetTracer()
{
    traceDisable();
    traceClear();
    traceSetBufferCapacity(kDefaultCapacity);
}

std::string
exportTrace()
{
    std::ostringstream os;
    writeChromeTrace(os);
    return os.str();
}

// ------------------------------------------------------------------ trace

TEST(Trace, DisabledRecordsNothing)
{
    resetTracer();
    {
        TraceScope scope("test", "outer");
        traceInstant("test", "tick");
    }
    EXPECT_EQ(traceRecordedEvents(), 0u);
    EXPECT_EQ(traceDroppedEvents(), 0u);
}

TEST(Trace, NestedScopesExportValidChromeJson)
{
    resetTracer();
    traceEnable();
    {
        TraceScope outer("test", "outer");
        {
            TraceScope inner("test", "inner");
            traceInstant("test", "tick");
        }
    }
    traceDisable();
    EXPECT_EQ(traceRecordedEvents(), 5u); // 2 B, 2 E, 1 i

    const auto doc = JsonValue::parse(exportTrace());
    ASSERT_TRUE(doc.has_value());
    ASSERT_TRUE(doc->isObject());
    const JsonValue *events = doc->find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());
    ASSERT_EQ(events->size(), 5u);

    // Same-thread events come out in recording order: B B i E E.
    const char *phases[] = {"B", "B", "i", "E", "E"};
    const char *names[] = {"outer", "inner", "tick", "inner", "outer"};
    double lastTs = -1.0;
    for (std::size_t e = 0; e < 5; ++e) {
        const JsonValue &event = events->at(e);
        EXPECT_EQ(event.find("ph")->asString(), phases[e]);
        EXPECT_EQ(event.find("name")->asString(), names[e]);
        EXPECT_EQ(event.find("cat")->asString(), "test");
        const double ts = event.find("ts")->asNumber();
        EXPECT_GE(ts, lastTs);
        lastTs = ts;
    }
    resetTracer();
}

TEST(Trace, ScopeStartedWhileDisabledStaysUnpaired)
{
    resetTracer();
    {
        TraceScope scope("test", "straddle"); // disabled at construction
        traceEnable();
    } // must NOT emit a dangling E event
    traceDisable();
    EXPECT_EQ(traceRecordedEvents(), 0u);
    resetTracer();
}

TEST(Trace, RingWrapDropsOldestAndCounts)
{
    resetTracer();
    traceSetBufferCapacity(8);
    traceEnable();
    static const char *const digits[] = {"0", "1", "2", "3", "4", "5", "6",
                                         "7", "8", "9", "10", "11", "12",
                                         "13", "14", "15", "16", "17", "18",
                                         "19"};
    for (int e = 0; e < 20; ++e)
        traceInstant("wrap", digits[e]);
    traceDisable();

    EXPECT_EQ(traceRecordedEvents(), 8u);
    EXPECT_EQ(traceDroppedEvents(), 12u);

    const auto doc = JsonValue::parse(exportTrace());
    ASSERT_TRUE(doc.has_value());
    const JsonValue *events = doc->find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_EQ(events->size(), 8u);
    // The survivors are the newest eight, oldest first.
    for (std::size_t e = 0; e < 8; ++e)
        EXPECT_EQ(events->at(e).find("name")->asString(), digits[12 + e]);
    resetTracer();
}

TEST(Trace, ClearResetsEventsAndDropCount)
{
    resetTracer();
    traceSetBufferCapacity(4);
    traceEnable();
    for (int e = 0; e < 9; ++e)
        traceInstant("wrap", "x");
    traceDisable();
    EXPECT_GT(traceDroppedEvents(), 0u);
    traceClear();
    EXPECT_EQ(traceRecordedEvents(), 0u);
    EXPECT_EQ(traceDroppedEvents(), 0u);
    resetTracer();
}

// --------------------------------------------------------------- counters

TEST(Counters, NamesAreStableAndDistinct)
{
    std::set<std::string> names;
    for (std::size_t c = 0; c < kNumCounters; ++c)
        names.insert(counterName(static_cast<Counter>(c)));
    EXPECT_EQ(names.size(), kNumCounters);
    EXPECT_EQ(names.count("neigh.builds"), 1u);
    EXPECT_EQ(names.count("pair.interactions"), 1u);
    EXPECT_EQ(names.count("kspace.ffts"), 1u);
    EXPECT_EQ(names.count("pool.slices"), 1u);
    EXPECT_EQ(names.count("mpi.modeled_bytes"), 1u);
    // Hybrid rank×thread runtime counters (DESIGN.md §17).
    EXPECT_EQ(names.count("pair.interior_pairs"), 1u);
    EXPECT_EQ(names.count("pair.boundary_pairs"), 1u);
    EXPECT_EQ(names.count("comm.overlap_steps"), 1u);
    EXPECT_EQ(names.count("comm.bytes_inflight"), 1u);
}

TEST(Counters, AddAndReset)
{
    resetCounters();
    counterAdd(Counter::NeighBuilds);
    counterAdd(Counter::NeighPairs, 41);
    counterAdd(Counter::NeighPairs);
    EXPECT_EQ(counterValue(Counter::NeighBuilds), 1u);
    EXPECT_EQ(counterValue(Counter::NeighPairs), 42u);
    resetCounters();
    EXPECT_EQ(counterValue(Counter::NeighPairs), 0u);
}

TEST(Counters, ExactUnderThreadPoolContention)
{
    ThreadPool::setThreads(4);
    resetCounters();
    ThreadPool &pool = ThreadPool::global();
    constexpr std::size_t kItems = 100000;
    pool.parallelFor(0, kItems, 64,
                     [](std::size_t begin, std::size_t end, int) {
                         for (std::size_t i = begin; i < end; ++i)
                             counterAdd(Counter::MpiMessages);
                     });
    EXPECT_EQ(counterValue(Counter::MpiMessages), kItems);
    resetCounters();
    ThreadPool::setThreads(1);
}

TEST(Counters, GlobalTaskSecondsAccumulate)
{
    resetCounters();
    chargeGlobalTask(Task::Pair, 0.25);
    chargeGlobalTask(Task::Pair, 0.5);
    chargeGlobalTask(Task::Comm, 1.0);
    const auto seconds = globalTaskSeconds();
    EXPECT_NEAR(seconds[static_cast<std::size_t>(Task::Pair)], 0.75, 1e-9);
    EXPECT_NEAR(seconds[static_cast<std::size_t>(Task::Comm)], 1.0, 1e-9);
    resetCounters();
}

TEST(Counters, SimdKernelLaneAccounting)
{
    // setup() does exactly one neighbor build and one force compute, so
    // the SIMD lane counters must come out exactly: every stored pair
    // is one active lane, every sentinel slot one wasted lane, and
    // together they tile the padded rows with no remainder.
    setSimdWidth(4);
    resetCounters();
    auto sim = buildLJ(4);
    sim->thermoEvery = 0;
    sim->setup();
    const NeighborList &list = sim->neighbor.list();
    ASSERT_TRUE(list.packedFor(4));
    const auto lanes = counterValue(Counter::PairSimdLanesActive);
    const auto waste = counterValue(Counter::PairSimdPaddingWaste);
    EXPECT_EQ(lanes, list.pairCount());
    EXPECT_EQ(waste, list.paddedSlots);
    EXPECT_EQ(counterValue(Counter::NeighPaddedSlots), list.paddedSlots);
    EXPECT_EQ((lanes + waste) % 4, 0u);
    resetCounters();
    setSimdWidth(-1);
}

TEST(Counters, SimdCountersStaySilentOnScalarPath)
{
    setSimdWidth(0);
    resetCounters();
    auto sim = buildLJ(4);
    sim->thermoEvery = 0;
    sim->setup();
    EXPECT_EQ(counterValue(Counter::PairSimdLanesActive), 0u);
    EXPECT_EQ(counterValue(Counter::PairSimdPaddingWaste), 0u);
    EXPECT_EQ(counterValue(Counter::NeighPaddedSlots), 0u);
    resetCounters();
    setSimdWidth(-1);
}

TEST(Trace, SimdKernelScopeAppearsInExport)
{
    setSimdWidth(4);
    resetTracer();
    traceEnable();
    {
        auto sim = buildLJ(4);
        sim->thermoEvery = 0;
        sim->setup();
    }
    traceDisable();
    const auto doc = JsonValue::parse(exportTrace());
    ASSERT_TRUE(doc.has_value());
    const JsonValue *events = doc->find("traceEvents");
    ASSERT_NE(events, nullptr);
    bool sawSimdScope = false;
    for (std::size_t e = 0; e < events->size(); ++e) {
        const JsonValue &event = events->at(e);
        if (event.find("cat")->asString() == "pair" &&
            event.find("name")->asString() == "simd" &&
            event.find("ph")->asString() == "B")
            sawSimdScope = true;
    }
    EXPECT_TRUE(sawSimdScope);
    resetTracer();
    setSimdWidth(-1);
}

TEST(Counters, NeighborBuildFilterAccounting)
{
    // setup() does exactly one build: candidates are every stencil slot
    // the filter examined, accepted is exactly the stored payload, and
    // neither depends on the filter width (the scalar walk examines the
    // same candidate set).
    setSimdWidth(4);
    resetCounters();
    auto sim = buildLJ(4);
    sim->thermoEvery = 0;
    sim->setup();
    const auto candidates = counterValue(Counter::NeighBuildCandidates);
    const auto accepted = counterValue(Counter::NeighBuildAccepted);
    EXPECT_GT(candidates, accepted);
    EXPECT_GT(accepted, 0u);
    EXPECT_EQ(accepted, sim->neighbor.list().pairCount());
    setSimdWidth(-1);

    setSimdWidth(0);
    resetCounters();
    auto scalar = buildLJ(4);
    scalar->thermoEvery = 0;
    scalar->setup();
    EXPECT_EQ(counterValue(Counter::NeighBuildCandidates), candidates);
    EXPECT_EQ(counterValue(Counter::NeighBuildAccepted), accepted);
    resetCounters();
    setSimdWidth(-1);
}

TEST(Counters, ClusterLaneAccounting)
{
    // One build + one force compute through the cluster kernel: active
    // lanes are the half list's pairs visited from both sides, and
    // active + waste tiles the stored cluster pairs exactly.
    setSimdWidth(4);
    setNeighLayout(1);
    resetCounters();
    auto sim = buildLJ(4);
    sim->thermoEvery = 0;
    sim->setup();
    const NeighborList &list = sim->neighbor.list();
    ASSERT_TRUE(list.clusterFor(4));
    const auto lanes = counterValue(Counter::PairSimdLanesActive);
    const auto waste = counterValue(Counter::PairSimdPaddingWaste);
    EXPECT_EQ(lanes, 2 * list.pairCount());
    EXPECT_EQ(lanes + waste,
              list.clusterPairCount() *
                  static_cast<std::size_t>(list.clusterM) *
                  static_cast<std::size_t>(list.clusterN));
    resetCounters();
    setNeighLayout(-1);
    setSimdWidth(-1);
}

TEST(Trace, NeighborBuildFilterScopeAppearsInExport)
{
    resetTracer();
    traceEnable();
    {
        auto sim = buildLJ(4);
        sim->thermoEvery = 0;
        sim->setup();
    }
    traceDisable();
    const auto doc = JsonValue::parse(exportTrace());
    ASSERT_TRUE(doc.has_value());
    const JsonValue *events = doc->find("traceEvents");
    ASSERT_NE(events, nullptr);
    bool sawFilterScope = false;
    for (std::size_t e = 0; e < events->size(); ++e) {
        const JsonValue &event = events->at(e);
        if (event.find("cat")->asString() == "neigh" &&
            event.find("name")->asString() == "build_filter" &&
            event.find("ph")->asString() == "B")
            sawFilterScope = true;
    }
    EXPECT_TRUE(sawFilterScope);
    resetTracer();
}

// -------------------------------------------------------------- TaskScope

TEST(TaskScope, ChargesLocalTimerAndGlobalAccumulator)
{
    resetCounters();
    TaskTimer timer;
    {
        TaskScope scope(timer, Task::Neigh);
        volatile double x = 0.0;
        for (int i = 0; i < 50000; ++i)
            x = x + std::sqrt(static_cast<double>(i));
        (void)x;
    }
    EXPECT_GT(timer.seconds(Task::Neigh), 0.0);
    const auto seconds = globalTaskSeconds();
    EXPECT_GT(seconds[static_cast<std::size_t>(Task::Neigh)], 0.0);
    resetCounters();
}

// ------------------------------------------------------------------- json

TEST(Json, WriterRoundTripsThroughParser)
{
    std::ostringstream os;
    JsonWriter json(os);
    json.beginObject();
    json.key("name").value("quote \" backslash \\ newline \n tab \t");
    json.key("count").value(std::uint64_t{18446744073709551615ull});
    json.key("pi").value(3.141592653589793);
    json.key("flag").value(true);
    json.key("list").beginArray();
    json.value(1).value(2).value(3);
    json.endArray();
    json.endObject();

    const auto doc = JsonValue::parse(os.str());
    ASSERT_TRUE(doc.has_value());
    EXPECT_EQ(doc->find("name")->asString(),
              "quote \" backslash \\ newline \n tab \t");
    EXPECT_DOUBLE_EQ(doc->find("pi")->asNumber(), 3.141592653589793);
    EXPECT_TRUE(doc->find("flag")->asBool());
    ASSERT_EQ(doc->find("list")->size(), 3u);
    EXPECT_DOUBLE_EQ(doc->find("list")->at(2).asNumber(), 3.0);
}

TEST(Json, ParserAcceptsValidDocuments)
{
    EXPECT_TRUE(JsonValue::parse("null").has_value());
    EXPECT_TRUE(JsonValue::parse("[]").has_value());
    EXPECT_TRUE(JsonValue::parse("{\"a\":[1,-2.5e3,{\"b\":false}]}")
                    .has_value());
    EXPECT_TRUE(JsonValue::parse("  \"\\u0041\\u00e9\"  ").has_value());
    EXPECT_EQ(JsonValue::parse("\"\\u0041\"")->asString(), "A");
}

TEST(Json, ParserRejectsMalformedDocuments)
{
    EXPECT_FALSE(JsonValue::parse("").has_value());
    EXPECT_FALSE(JsonValue::parse("{").has_value());
    EXPECT_FALSE(JsonValue::parse("[1,]").has_value());
    EXPECT_FALSE(JsonValue::parse("{\"a\" 1}").has_value());
    EXPECT_FALSE(JsonValue::parse("\"unterminated").has_value());
    EXPECT_FALSE(JsonValue::parse("tru").has_value());
    EXPECT_FALSE(JsonValue::parse("{} trailing").has_value());
    EXPECT_FALSE(JsonValue::parse("01").has_value());
}

// ----------------------------------------------------------- BenchOptions

TEST(BenchOptions, ParsesAndStripsSharedFlags)
{
    const LogLevel before = logLevel();
    std::vector<std::string> storage = {
        "prog",          "--trace",  "t.json", "--benchmark_filter=BM_X",
        "--manifest=m.json", "--log-level", "inform", "positional"};
    std::vector<char *> argv;
    for (auto &arg : storage)
        argv.push_back(arg.data());
    int argc = static_cast<int>(argv.size());
    argv.push_back(nullptr); // the argv[argc] slot real mains guarantee

    const BenchOptions options = parseBenchOptions(argc, argv.data());
    EXPECT_EQ(options.tracePath, "t.json");
    EXPECT_EQ(options.manifestPath, "m.json");
    EXPECT_EQ(options.logLevel, "inform");
    EXPECT_FALSE(options.help);
    EXPECT_EQ(logLevel(), LogLevel::Inform);

    // Unrecognized arguments survive, in order, compacted to the front.
    ASSERT_EQ(argc, 3);
    EXPECT_STREQ(argv[0], "prog");
    EXPECT_STREQ(argv[1], "--benchmark_filter=BM_X");
    EXPECT_STREQ(argv[2], "positional");

    setLogLevel(before);
}

TEST(BenchOptions, HelpIsDetectedAndKept)
{
    std::vector<std::string> storage = {"prog", "--help"};
    std::vector<char *> argv;
    for (auto &arg : storage)
        argv.push_back(arg.data());
    int argc = static_cast<int>(argv.size());
    argv.push_back(nullptr); // the argv[argc] slot real mains guarantee
    const BenchOptions options = parseBenchOptions(argc, argv.data());
    EXPECT_TRUE(options.help);
    // --help stays visible so a wrapped parser (google-benchmark) can
    // print its own usage too.
    ASSERT_EQ(argc, 2);
    EXPECT_STREQ(argv[1], "--help");
}

// --------------------------------------------------------------- manifest

/**
 * Golden-file test: trace + manifest from a real tiny LJ run, then a
 * schema walk over the parsed JSON. Also exercises the acceptance
 * criterion that a traced run covers the neigh/pair/kspace/pool
 * categories (kspace via a direct FFT, since LJ has no solver).
 */
TEST(Manifest, TinyLjRunProducesSchemaCompleteManifest)
{
    ThreadPool::setThreads(1);
    resetTracer();
    resetCounters();
    traceEnable();

    auto sim = buildLJ(4);
    sim->thermoEvery = 0;
    sim->setup();
    sim->run(3);

    Fft3d fft(8, 8, 8);
    std::vector<Complex> data(fft.size(), Complex{0.5, -0.5});
    fft.forward(data);
    fft.inverse(data);

    traceDisable();

    RunManifest manifest("test_obs");
    Table table({"figure", "value"});
    table.addRow({"fig99", "1.25"});
    manifest.addTable("fig99", table);
    manifest.captureRuntime();

    std::ostringstream os;
    manifest.write(os);
    const auto doc = JsonValue::parse(os.str());
    ASSERT_TRUE(doc.has_value());
    ASSERT_TRUE(doc->isObject());

    EXPECT_EQ(doc->find("schema")->asString(), "mdbench-manifest-v1");
    EXPECT_EQ(doc->find("program")->asString(), "test_obs");

    const JsonValue *platform = doc->find("platform");
    ASSERT_NE(platform, nullptr);
    for (const char *key : {"hostname", "os", "kernel", "arch", "compiler"})
        ASSERT_NE(platform->find(key), nullptr) << key;
    EXPECT_GE(platform->find("hardware_threads")->asNumber(), 1.0);

    const JsonValue *build = doc->find("build");
    ASSERT_NE(build, nullptr);
    ASSERT_NE(build->find("type"), nullptr);
    ASSERT_NE(build->find("sanitize"), nullptr);
    ASSERT_NE(build->find("native_arch"), nullptr);

    EXPECT_EQ(doc->find("threads")->asNumber(), 1.0);

    const JsonValue *tasks = doc->find("tasks");
    ASSERT_NE(tasks, nullptr);
    ASSERT_EQ(tasks->size(), kNumTasks);
    for (std::size_t t = 0; t < kNumTasks; ++t)
        ASSERT_NE(tasks->find(taskName(static_cast<Task>(t))), nullptr);
    // The step loop ran, so Pair and Neigh accumulated real time.
    EXPECT_GT(tasks->find("Pair")->asNumber(), 0.0);
    EXPECT_GT(tasks->find("Neigh")->asNumber(), 0.0);

    const JsonValue *counters = doc->find("counters");
    ASSERT_NE(counters, nullptr);
    ASSERT_EQ(counters->size(), kNumCounters);
    for (std::size_t c = 0; c < kNumCounters; ++c)
        ASSERT_NE(counters->find(counterName(static_cast<Counter>(c))),
                  nullptr);
    EXPECT_GT(counters->find("neigh.builds")->asNumber(), 0.0);
    EXPECT_GT(counters->find("pair.interactions")->asNumber(), 0.0);
    EXPECT_EQ(counters->find("kspace.ffts")->asNumber(), 2.0);
    EXPECT_GT(counters->find("pool.regions")->asNumber(), 0.0);

    const JsonValue *trace = doc->find("trace");
    ASSERT_NE(trace, nullptr);
    EXPECT_GT(trace->find("recorded")->asNumber(), 0.0);

    const JsonValue *tables = doc->find("tables");
    ASSERT_NE(tables, nullptr);
    ASSERT_EQ(tables->size(), 1u);
    const JsonValue &record = tables->at(0);
    EXPECT_EQ(record.find("tag")->asString(), "fig99");
    ASSERT_EQ(record.find("headers")->size(), 2u);
    EXPECT_EQ(record.find("headers")->at(1).asString(), "value");
    ASSERT_EQ(record.find("rows")->size(), 1u);
    EXPECT_EQ(record.find("rows")->at(0).at(1).asString(), "1.25");

    // Acceptance criterion: the trace of an end-to-end run covers the
    // four engine categories (plus task/comm from the step loop).
    const auto traceDoc = JsonValue::parse(exportTrace());
    ASSERT_TRUE(traceDoc.has_value());
    const JsonValue *events = traceDoc->find("traceEvents");
    ASSERT_NE(events, nullptr);
    std::set<std::string> categories;
    for (std::size_t e = 0; e < events->size(); ++e)
        categories.insert(events->at(e).find("cat")->asString());
    for (const char *cat : {"neigh", "pair", "kspace", "pool", "comm",
                            "task"})
        EXPECT_EQ(categories.count(cat), 1u) << cat;

    resetTracer();
    resetCounters();
}

TEST(Manifest, ActiveManifestCollectsEmittedTables)
{
    RunManifest manifest("test_obs");
    setActiveManifest(&manifest);
    EXPECT_EQ(activeManifest(), &manifest);
    setActiveManifest(nullptr);
    EXPECT_EQ(activeManifest(), nullptr);
}

} // namespace
} // namespace mdbench
