/**
 * @file
 * Spatial atom reordering: the AtomStore::applyPermutation contract
 * (gather semantics, bijectivity checks, ghost exclusion), the
 * Simulation/Neighbor sort policy, and physics invariance of sorted
 * runs (same system, different memory order, same trajectory).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <vector>

#include "core/suite.h"
#include "md/atoms.h"
#include "md/neighbor.h"
#include "md/simulation.h"
#include "obs/counters.h"
#include "util/error.h"
#include "util/rng.h"

namespace mdbench {
namespace {

/** Five distinguishable atoms: per-array values derived from the tag. */
AtomStore
makeStore(std::size_t n)
{
    AtomStore store;
    store.setNumTypes(2);
    for (std::size_t i = 0; i < n; ++i) {
        const auto tag = static_cast<std::int64_t>(i + 1);
        const double s = static_cast<double>(i);
        const std::size_t idx = store.addAtom(
            tag, 1 + static_cast<int>(i % 2), Vec3{s, 10.0 + s, 20.0 + s});
        store.v[idx] = Vec3{0.1 * s, 0.2 * s, 0.3 * s};
        store.f[idx] = Vec3{-s, -2.0 * s, -3.0 * s};
        store.omega[idx] = Vec3{s, 0.0, -s};
        store.torque[idx] = Vec3{0.0, s, 0.0};
        store.q[idx] = 0.5 * s;
        store.molecule[idx] = tag * 10;
    }
    return store;
}

TEST(ApplyPermutation, GatherSemantics)
{
    AtomStore store = makeStore(5);
    // New index k holds the atom previously at oldOf[k].
    const std::vector<std::uint32_t> oldOf{3, 1, 4, 0, 2};
    store.applyPermutation(oldOf);
    ASSERT_EQ(store.nlocal(), 5u);
    for (std::size_t k = 0; k < 5; ++k) {
        const auto old = oldOf[k];
        EXPECT_EQ(store.tag[k], static_cast<std::int64_t>(old + 1));
        EXPECT_EQ(store.type[k], 1 + static_cast<int>(old % 2));
        EXPECT_EQ(store.molecule[k], static_cast<std::int64_t>(old + 1) * 10);
        EXPECT_EQ(store.x[k].x, static_cast<double>(old));
        EXPECT_EQ(store.v[k].y, 0.2 * static_cast<double>(old));
        EXPECT_EQ(store.f[k].z, -3.0 * static_cast<double>(old));
        EXPECT_EQ(store.omega[k].x, static_cast<double>(old));
        EXPECT_EQ(store.torque[k].y, static_cast<double>(old));
        EXPECT_EQ(store.q[k], 0.5 * static_cast<double>(old));
        EXPECT_EQ(store.ghostOf[k], -1);
    }
}

TEST(ApplyPermutation, InverseRoundTripsToIdentity)
{
    AtomStore store = makeStore(7);
    const AtomStore original = store;
    Rng rng(99);
    std::vector<std::uint32_t> oldOf(7);
    for (std::uint32_t i = 0; i < 7; ++i)
        oldOf[i] = i;
    for (std::size_t i = 6; i > 0; --i)
        std::swap(oldOf[i], oldOf[rng.uniformInt(i + 1)]);
    store.applyPermutation(oldOf);
    // Applying the inverse (newOf: inverse[oldOf[k]] = k) restores the
    // original order exactly.
    std::vector<std::uint32_t> inverse(7);
    for (std::uint32_t k = 0; k < 7; ++k)
        inverse[oldOf[k]] = k;
    store.applyPermutation(inverse);
    for (std::size_t i = 0; i < 7; ++i) {
        EXPECT_EQ(store.tag[i], original.tag[i]);
        EXPECT_EQ(store.x[i].x, original.x[i].x);
        EXPECT_EQ(store.x[i].y, original.x[i].y);
        EXPECT_EQ(store.x[i].z, original.x[i].z);
        EXPECT_EQ(store.v[i].x, original.v[i].x);
        EXPECT_EQ(store.q[i], original.q[i]);
        EXPECT_EQ(store.type[i], original.type[i]);
        EXPECT_EQ(store.molecule[i], original.molecule[i]);
    }
}

TEST(ApplyPermutation, RejectsWrongSizeAndNonBijections)
{
    AtomStore store = makeStore(4);
    EXPECT_THROW(store.applyPermutation({0, 1, 2}), PanicError);
    EXPECT_THROW(store.applyPermutation({0, 1, 2, 2}), PanicError);
    EXPECT_THROW(store.applyPermutation({0, 1, 2, 4}), PanicError);
}

TEST(ApplyPermutation, RejectsGhosts)
{
    AtomStore store = makeStore(3);
    store.addGhost(0, Vec3{1.0, 0.0, 0.0});
    EXPECT_THROW(store.applyPermutation({2, 1, 0}), PanicError);
    // After dropping the ghosts the same permutation is legal again.
    store.clearGhosts();
    store.applyPermutation({2, 1, 0});
    EXPECT_EQ(store.tag[0], 3);
}

TEST(ApplyPermutation, ComposesWithRemoveAtom)
{
    AtomStore store = makeStore(5);
    // removeAtom swaps the last owned atom (tag 5) into slot 1.
    store.removeAtom(1);
    ASSERT_EQ(store.nlocal(), 4u);
    ASSERT_EQ(store.tag[1], 5);
    store.applyPermutation({1, 0, 3, 2});
    EXPECT_EQ(store.tag[0], 5);
    EXPECT_EQ(store.tag[1], 1);
    EXPECT_EQ(store.tag[2], 4);
    EXPECT_EQ(store.tag[3], 3);
}

TEST(SortPolicy, DefaultSortEveryReadsEnvironment)
{
    unsetenv("MDBENCH_SORT_EVERY");
    EXPECT_EQ(Neighbor::defaultSortEvery(), 0);
    setenv("MDBENCH_SORT_EVERY", "7", 1);
    EXPECT_EQ(Neighbor::defaultSortEvery(), 7);
    auto sim = buildLJ(4);
    EXPECT_EQ(sim->sortEvery(), 7);
    setenv("MDBENCH_SORT_EVERY", "0", 1);
    EXPECT_EQ(Neighbor::defaultSortEvery(), 0);
    setenv("MDBENCH_SORT_EVERY", "-3", 1);
    EXPECT_EQ(Neighbor::defaultSortEvery(), 0);
    unsetenv("MDBENCH_SORT_EVERY");
}

TEST(SortPolicy, SetSortEveryRejectsNegative)
{
    auto sim = buildLJ(4);
    EXPECT_THROW(sim->setSortEvery(-1), FatalError);
    sim->setSortEvery(3);
    EXPECT_EQ(sim->sortEvery(), 3);
}

TEST(SortPolicy, DisabledRunNeverSortsAndCountsNothing)
{
    unsetenv("MDBENCH_SORT_EVERY");
    resetCounters();
    auto sim = buildLJ(4);
    sim->thermoEvery = 0;
    ASSERT_EQ(sim->sortEvery(), 0);
    sim->setup();
    sim->run(60);
    EXPECT_EQ(sim->neighbor.sortCount(), 0);
    EXPECT_EQ(counterValue(Counter::SortApplied), 0u);
    EXPECT_EQ(counterValue(Counter::SortSkipped), 0u);
}

TEST(SortPolicy, EnabledRunSortsAndCounts)
{
    resetCounters();
    auto sim = buildLJ(4);
    sim->thermoEvery = 0;
    sim->setSortEvery(2);
    sim->setup();
    sim->run(60);
    EXPECT_GT(sim->neighbor.sortCount(), 0);
    EXPECT_EQ(counterValue(Counter::SortApplied),
              static_cast<std::uint64_t>(sim->neighbor.sortCount()));
    // Sorting every 2nd rebuild skips the rebuilds in between.
    EXPECT_GT(counterValue(Counter::SortSkipped), 0u);
    // Owned atoms ended up in bin (ascending spatial) order at the last
    // sort; tags must still be a permutation of 1..N.
    std::vector<bool> seen(sim->atoms.nlocal() + 1, false);
    for (std::size_t i = 0; i < sim->atoms.nlocal(); ++i) {
        const auto tag = sim->atoms.tag[i];
        ASSERT_GE(tag, 1);
        ASSERT_LE(tag, static_cast<std::int64_t>(sim->atoms.nlocal()));
        ASSERT_FALSE(seen[static_cast<std::size_t>(tag)]);
        seen[static_cast<std::size_t>(tag)] = true;
    }
}

/** Force on each atom keyed by tag, for order-independent comparison. */
std::map<std::int64_t, Vec3>
forcesByTag(const Simulation &sim)
{
    std::map<std::int64_t, Vec3> forces;
    for (std::size_t i = 0; i < sim.atoms.nlocal(); ++i)
        forces[sim.atoms.tag[i]] = sim.atoms.f[i];
    return forces;
}

/** Shuffle the owned atoms with a fixed-seed Fisher-Yates permutation. */
void
shuffleAtoms(Simulation &sim, std::uint64_t seed)
{
    const std::size_t n = sim.atoms.nlocal();
    std::vector<std::uint32_t> oldOf(n);
    for (std::size_t i = 0; i < n; ++i)
        oldOf[i] = static_cast<std::uint32_t>(i);
    Rng rng(seed);
    for (std::size_t i = n - 1; i > 0; --i)
        std::swap(oldOf[i], oldOf[rng.uniformInt(i + 1)]);
    sim.atoms.applyPermutation(oldOf);
}

TEST(SortPhysics, ForceEvaluationIsPermutationInvariant)
{
    auto reference = buildLJ(4);
    reference->thermoEvery = 0;
    reference->setup();
    const auto expected = forcesByTag(*reference);

    auto shuffled = buildLJ(4);
    shuffled->thermoEvery = 0;
    shuffleAtoms(*shuffled, 2024);
    shuffled->setup();
    const auto got = forcesByTag(*shuffled);

    // The per-atom sums accumulate in a different neighbor order, so
    // agreement is to rounding, not bitwise.
    ASSERT_EQ(got.size(), expected.size());
    for (const auto &[tag, fref] : expected) {
        const auto it = got.find(tag);
        ASSERT_NE(it, got.end()) << tag;
        const double scale =
            std::max(1.0, std::sqrt(fref.normSq()));
        EXPECT_NEAR(it->second.x, fref.x, 1e-11 * scale) << tag;
        EXPECT_NEAR(it->second.y, fref.y, 1e-11 * scale) << tag;
        EXPECT_NEAR(it->second.z, fref.z, 1e-11 * scale) << tag;
    }
}

TEST(SortPhysics, SortedLJRunMatchesUnsortedObservables)
{
    auto plain = buildLJ(5);
    plain->thermoEvery = 0;
    plain->setup();
    plain->run(200);

    auto sorted = buildLJ(5);
    sorted->thermoEvery = 0;
    sorted->setSortEvery(2);
    sorted->setup();
    sorted->run(200);
    ASSERT_GT(sorted->neighbor.sortCount(), 0);

    // 200 LJ-melt steps at dt = 0.005 is one reduced time unit; with a
    // Lyapunov exponent of order 1-2 the rounding-level reordering
    // noise (~1e-16) grows by only ~e^2, so a tight relative tolerance
    // is safe and any indexing bug (atoms swapped, arrays desynced)
    // blows through it immediately.
    const double pePlain = plain->potentialEnergy();
    const double peSorted = sorted->potentialEnergy();
    EXPECT_NEAR(peSorted, pePlain, 1e-9 * std::abs(pePlain));
    EXPECT_NEAR(sorted->temperature(), plain->temperature(),
                1e-9 * plain->temperature());
    EXPECT_NEAR(sorted->kineticEnergy(), plain->kineticEnergy(),
                1e-9 * plain->kineticEnergy());
}

} // namespace
} // namespace mdbench
