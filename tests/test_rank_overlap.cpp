/**
 * @file
 * Hybrid rank×thread runtime correctness (DESIGN.md §17): the
 * concurrent rank scheduler against the sequential oracle, overlapped
 * against blocking halo exchange, determinism under an oversubscribed
 * thread pool, and the overlap-specific accounting (counters, modeled
 * Isend/Irecv/Waitall, virtual-clock monotonicity).
 *
 * Every trajectory comparison here is *bitwise*: the concurrent
 * scheduler, the overlap knob, and the pool geometry may only change
 * when work happens, never the arithmetic.
 */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "forcefield/pair_lj_charmm_coul_long.h"
#include "forcefield/pair_lj_cut.h"
#include "md/fix_nve.h"
#include "md/lattice.h"
#include "md/simulation.h"
#include "md/velocity.h"
#include "obs/counters.h"
#include "obs/json.h"
#include "obs/trace.h"
#include "parallel/mpi_model.h"
#include "parallel/ranked_sim.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace mdbench {
namespace {

/** Serial LJ melt used as the uncharged workload. */
void
buildMelt(Simulation &sim, int cells, std::uint64_t seed)
{
    buildFcc(sim, cells, cells, cells, fccLatticeConstant(0.8442));
    sim.dt = 0.005;
    sim.thermoEvery = 0;
    Rng rng(seed);
    createVelocities(sim, 1.44, rng);
}

void
configureLJ(Simulation &sim)
{
    auto pair = std::make_unique<PairLJCut>(1, 2.5);
    pair->setCoeff(1, 1, 1.0, 1.0);
    sim.pair = std::move(pair);
    sim.neighbor.skin = 0.3;
    sim.addFix<FixNVE>();
}

/**
 * Charged workload: the LJ melt with alternating ±q charges (neutral
 * overall — the fcc builder produces an even atom count) under the
 * charmm/coul pair style with no k-space solver attached, so the
 * Coulomb term is the plain cut 1/r (splitting parameter 0). This is
 * the charged path a decomposed native run supports.
 */
void
buildCharged(Simulation &sim, int cells, std::uint64_t seed)
{
    buildMelt(sim, cells, seed);
    for (std::size_t i = 0; i < sim.atoms.nlocal(); ++i)
        sim.atoms.q[i] = (i % 2 == 0) ? 0.2 : -0.2;
}

void
configureCharmm(Simulation &sim)
{
    auto pair = std::make_unique<PairLJCharmmCoulLong>(1, 2.0, 2.5, 2.5);
    pair->setCoeff(1, 1.0, 1.0);
    sim.pair = std::move(pair);
    sim.neighbor.skin = 0.3;
    sim.addFix<FixNVE>();
}

using Builder = void (*)(Simulation &, int, std::uint64_t);
using Configure = void (*)(Simulation &);

/** Run a ranked simulation with explicit knobs and gather the result. */
Simulation
runRanked(Builder build, Configure configure, int cells, int nranks,
          RankExecution exec, bool overlap, long steps,
          std::uint64_t seed = 42)
{
    Simulation global;
    build(global, cells, seed);
    RankedSimulation ranked(global, nranks, configure);
    ranked.setExecution(exec);
    ranked.setCommOverlap(overlap);
    ranked.setup();
    ranked.run(steps);
    Simulation gathered;
    ranked.gather(gathered);
    return gathered;
}

/** Exact (bitwise) equality of two gathered trajectories. */
void
expectBitwiseEqual(const Simulation &a, const Simulation &b)
{
    ASSERT_EQ(a.atoms.nlocal(), b.atoms.nlocal());
    for (std::size_t i = 0; i < a.atoms.nlocal(); ++i) {
        ASSERT_EQ(a.atoms.tag[i], b.atoms.tag[i]);
        EXPECT_EQ(a.atoms.x[i].x, b.atoms.x[i].x) << "tag " << a.atoms.tag[i];
        EXPECT_EQ(a.atoms.x[i].y, b.atoms.x[i].y) << "tag " << a.atoms.tag[i];
        EXPECT_EQ(a.atoms.x[i].z, b.atoms.x[i].z) << "tag " << a.atoms.tag[i];
        EXPECT_EQ(a.atoms.v[i].x, b.atoms.v[i].x) << "tag " << a.atoms.tag[i];
        EXPECT_EQ(a.atoms.v[i].y, b.atoms.v[i].y) << "tag " << a.atoms.tag[i];
        EXPECT_EQ(a.atoms.v[i].z, b.atoms.v[i].z) << "tag " << a.atoms.tag[i];
    }
}

class ConcurrentVsSequential : public ::testing::TestWithParam<int>
{};

TEST_P(ConcurrentVsSequential, BitwiseIdenticalLJ)
{
    const int nranks = GetParam();
    const Simulation seq =
        runRanked(buildMelt, configureLJ, 5, nranks,
                  RankExecution::Sequential, false, 60);
    const Simulation conc =
        runRanked(buildMelt, configureLJ, 5, nranks,
                  RankExecution::Concurrent, false, 60);
    expectBitwiseEqual(seq, conc);
}

INSTANTIATE_TEST_SUITE_P(RankCounts, ConcurrentVsSequential,
                         ::testing::Values(4, 8));

TEST(ConcurrentRanks, BitwiseIdenticalCharged)
{
    // Charges exercise the coulomb kernel's ghost reads (the halo
    // carries x only; q travels with migration/border events).
    const Simulation seq =
        runRanked(buildCharged, configureCharmm, 4, 4,
                  RankExecution::Sequential, false, 40);
    const Simulation conc =
        runRanked(buildCharged, configureCharmm, 4, 4,
                  RankExecution::Concurrent, false, 40);
    expectBitwiseEqual(seq, conc);
}

TEST(CommOverlap, BitwiseIdenticalToBlockingLongRun)
{
    // 1000 steps crosses many reneighbor/migration events, so every
    // overlap edge case (rebuild steps fall back to blocking, halo
    // completion mid-force-pass) is exercised repeatedly.
    const Simulation blocking =
        runRanked(buildMelt, configureLJ, 4, 4, RankExecution::Concurrent,
                  false, 1000);
    const Simulation overlapped =
        runRanked(buildMelt, configureLJ, 4, 4, RankExecution::Concurrent,
                  true, 1000);
    expectBitwiseEqual(blocking, overlapped);
}

TEST(CommOverlap, BitwiseIdenticalCharged)
{
    const Simulation blocking =
        runRanked(buildCharged, configureCharmm, 4, 4,
                  RankExecution::Concurrent, false, 100);
    const Simulation overlapped =
        runRanked(buildCharged, configureCharmm, 4, 4,
                  RankExecution::Concurrent, true, 100);
    expectBitwiseEqual(blocking, overlapped);
}

TEST(ConcurrentRanks, OversubscribedPoolIsDeterministic)
{
    // More ranks than pool threads: rank phases interleave arbitrarily
    // on the worker threads, repeat runs and the sequential oracle must
    // still agree bitwise.
    const int before = ThreadPool::threads();
    ThreadPool::setThreads(3);
    const Simulation first =
        runRanked(buildMelt, configureLJ, 4, 8, RankExecution::Concurrent,
                  true, 80);
    const Simulation second =
        runRanked(buildMelt, configureLJ, 4, 8, RankExecution::Concurrent,
                  true, 80);
    const Simulation oracle =
        runRanked(buildMelt, configureLJ, 4, 8, RankExecution::Sequential,
                  true, 80);
    ThreadPool::setThreads(before);
    expectBitwiseEqual(first, second);
    expectBitwiseEqual(first, oracle);
}

TEST(CommOverlap, NonblockingFunctionsAccounted)
{
    // A deliberately slow wire (0.1 s latency) guarantees the modeled
    // halo flight time exceeds the interior compute wall time, so the
    // Waitall charge — the *exposed* part of the wire time only — must
    // come out positive. (On the default model a fast interior can
    // legitimately hide the whole flight and book a zero wait.)
    MpiMachineModel slow;
    slow.latency = 0.1;
    slow.bandwidth = 1.0e6;

    Simulation global;
    buildMelt(global, 5, 42);
    RankedSimulation ranked(global, 8, configureLJ, slow);
    ranked.setExecution(RankExecution::Concurrent);
    ranked.setCommOverlap(true);
    ranked.setup();
    ranked.run(50);

    const MpiStats &stats = ranked.mpiStats();
    // Overlapped halo exchange books Isend/Irecv at post time and the
    // exposed wire time in Waitall; the blocking Send path only runs on
    // reneighbor steps' border rebuilds, and reverse folds stay
    // Sendrecv.
    EXPECT_GT(stats.meanFunction(MpiFunction::Isend), 0.0);
    EXPECT_GT(stats.meanFunction(MpiFunction::Irecv), 0.0);
    EXPECT_GT(stats.meanFunction(MpiFunction::Waitall), 0.0);
    EXPECT_GT(stats.meanFunction(MpiFunction::Sendrecv), 0.0);
    EXPECT_GT(ranked.virtualTime(), 0.0);
}

TEST(CommOverlap, CountersPopulate)
{
    resetCounters();
    Simulation global;
    buildMelt(global, 4, 7);
    RankedSimulation ranked(global, 4, configureLJ);
    ranked.setExecution(RankExecution::Concurrent);
    ranked.setCommOverlap(true);
    ranked.setup();
    ranked.run(30);
    EXPECT_GT(counterValue(Counter::CommOverlapSteps), 0u);
    EXPECT_GT(counterValue(Counter::CommBytesInflight), 0u);
    EXPECT_GT(counterValue(Counter::PairInteriorPairs), 0u);
    EXPECT_GT(counterValue(Counter::PairBoundaryPairs), 0u);

    // Blocking runs never report overlapped steps or in-flight bytes,
    // but still split the pair work (decomposed ranks always do).
    resetCounters();
    Simulation global2;
    buildMelt(global2, 4, 7);
    RankedSimulation blocking(global2, 4, configureLJ);
    blocking.setExecution(RankExecution::Concurrent);
    blocking.setCommOverlap(false);
    blocking.setup();
    blocking.run(30);
    EXPECT_EQ(counterValue(Counter::CommOverlapSteps), 0u);
    EXPECT_EQ(counterValue(Counter::CommBytesInflight), 0u);
    EXPECT_GT(counterValue(Counter::PairInteriorPairs), 0u);
    EXPECT_GT(counterValue(Counter::PairBoundaryPairs), 0u);
    resetCounters();
}

TEST(ConcurrentRanks, RankStepScopeAppearsInTrace)
{
    traceClear();
    traceEnable();
    {
        Simulation global;
        buildMelt(global, 4, 5);
        RankedSimulation ranked(global, 4, configureLJ);
        ranked.setExecution(RankExecution::Concurrent);
        ranked.setCommOverlap(true);
        ranked.setup();
        ranked.run(5);
    }
    traceDisable();
    std::ostringstream os;
    writeChromeTrace(os);
    const auto doc = JsonValue::parse(os.str());
    traceClear();
    ASSERT_TRUE(doc.has_value());
    const JsonValue *events = doc->find("traceEvents");
    ASSERT_NE(events, nullptr);
    bool sawRankStep = false;
    for (std::size_t e = 0; e < events->size(); ++e) {
        const JsonValue &event = events->at(e);
        if (event.find("cat")->asString() == "parallel" &&
            event.find("name")->asString() == "rank_step" &&
            event.find("ph")->asString() == "B")
            sawRankStep = true;
    }
    EXPECT_TRUE(sawRankStep);
}

TEST(ConcurrentRanks, VirtualClocksMonotoneAcrossRuns)
{
    Simulation global;
    buildMelt(global, 4, 9);
    RankedSimulation ranked(global, 4, configureLJ);
    ranked.setExecution(RankExecution::Concurrent);
    ranked.setCommOverlap(true);
    ranked.setup();
    const double t0 = ranked.virtualTime();
    EXPECT_GT(t0, 0.0); // setup charges MPI_Init
    ranked.run(20);
    const double t1 = ranked.virtualTime();
    EXPECT_GT(t1, t0);
    ranked.run(20); // resuming must keep the clocks monotone
    EXPECT_GT(ranked.virtualTime(), t1);
    ASSERT_EQ(ranked.clocks().size(), 4u);
    for (double clock : ranked.clocks())
        EXPECT_GT(clock, 0.0);
}

} // namespace
} // namespace mdbench
