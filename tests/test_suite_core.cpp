/**
 * @file
 * Tests of the public API: the five native suite builders (Table 2
 * fidelity + short-run stability), taxonomy measurement, and the
 * experiment facade across all four modes.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/experiment.h"
#include "core/suite.h"
#include "util/error.h"
#include "md/fix_shake.h"

namespace mdbench {
namespace {

TEST(Suite, LJBuilderMatchesBenchGeometry)
{
    auto sim = buildLJ(5);
    EXPECT_EQ(sim->atoms.nlocal(), 500u);
    EXPECT_NEAR(sim->atoms.nlocal() / sim->box.volume(), 0.8442, 1e-9);
    EXPECT_NEAR(sim->temperature(), 1.44, 1e-9);
    sim->thermoEvery = 0;
    sim->setup();
    EXPECT_NO_THROW(sim->run(50));
}

TEST(Suite, ChainBuilderChainsAreBonded)
{
    auto sim = buildChain(4);
    EXPECT_EQ(sim->atoms.nlocal(), 400u);
    EXPECT_EQ(sim->topology.bonds.size(), 4u * 99u);
    // All initial bond lengths inside the FENE well.
    for (const Bond &bond : sim->topology.bonds) {
        const Vec3 a = sim->atoms.x[bond.tagA - 1];
        const Vec3 b = sim->atoms.x[bond.tagB - 1];
        EXPECT_LT(sim->box.minimumImage(a - b).norm(), 1.3);
    }
    sim->thermoEvery = 0;
    sim->setup();
    EXPECT_NO_THROW(sim->run(100));
}

TEST(Suite, EamBuilderStable)
{
    auto sim = buildEAM(4);
    EXPECT_EQ(sim->atoms.nlocal(), 256u);
    sim->thermoEvery = 0;
    sim->setup();
    const double e0 = sim->kineticEnergy() + sim->potentialEnergy();
    sim->run(50);
    const double e1 = sim->kineticEnergy() + sim->potentialEnergy();
    EXPECT_NEAR(e1, e0, 0.02 * std::fabs(e0));
}

TEST(Suite, ChuteBuilderSettlesOnWall)
{
    auto sim = buildChute(6, 6, 4);
    EXPECT_EQ(sim->atoms.nlocal(), 6u * 6u * 4u);
    EXPECT_FALSE(sim->box.periodic(2));
    sim->thermoEvery = 0;
    sim->setup();
    sim->run(2000);
    // Nothing fell through the wall or flew away.
    for (std::size_t i = 0; i < sim->atoms.nlocal(); ++i) {
        EXPECT_GT(sim->atoms.x[i].z, 0.2) << i;
        EXPECT_LT(sim->atoms.x[i].z, sim->box.hi().z) << i;
    }
}

TEST(Suite, RhodoProxyRunsWithAllFeatures)
{
    auto sim = buildRhodoProxy(8);
    EXPECT_GT(sim->atoms.nlocal(), 1000u);
    EXPECT_FALSE(sim->topology.shakeClusters.empty());
    EXPECT_FALSE(sim->topology.bonds.empty());  // solute chains
    EXPECT_FALSE(sim->topology.angles.empty());
    ASSERT_TRUE(sim->kspace);
    EXPECT_EQ(sim->kspace->name(), "pppm");
    // Charge neutrality.
    double qsum = 0.0;
    for (std::size_t i = 0; i < sim->atoms.nlocal(); ++i)
        qsum += sim->atoms.q[i];
    EXPECT_NEAR(qsum, 0.0, 1e-9);

    sim->thermoEvery = 0;
    sim->setup();
    EXPECT_NO_THROW(sim->run(20));
    // Rigid solvent stayed rigid.
    for (const auto &fix : sim->fixes) {
        if (auto *shake = dynamic_cast<FixShake *>(fix.get())) {
            EXPECT_LT(shake->maxResidual(), 1e-4);
        }
    }
}

TEST(Suite, RhodoProxyNeighborsPerAtomNearPaper)
{
    // The proxy must land near Table 2's 440 neighbors/atom.
    const TaxonomyRow row = measureTaxonomy(BenchmarkId::Rhodo, 2500);
    EXPECT_NEAR(row.measuredNeighborsPerAtom, 440.0, 110.0);
}

class TaxonomyAll : public ::testing::TestWithParam<BenchmarkId>
{};

TEST_P(TaxonomyAll, MeasuredNeighborsMatchTable2)
{
    const BenchmarkId id = GetParam();
    const TaxonomyRow row = measureTaxonomy(id, 3000);
    EXPECT_GT(row.atoms, 1000);
    // Within ~35% of the Table 2 value (Chute's settled bed and the
    // proxy solvent differ slightly from the original inputs).
    EXPECT_GT(row.measuredNeighborsPerAtom,
              row.paperNeighborsPerAtom * 0.6);
    EXPECT_LT(row.measuredNeighborsPerAtom,
              row.paperNeighborsPerAtom * 1.6);
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, TaxonomyAll,
                         ::testing::Values(BenchmarkId::LJ,
                                           BenchmarkId::Chain,
                                           BenchmarkId::EAM,
                                           BenchmarkId::Rhodo,
                                           BenchmarkId::Chute));

TEST(ExperimentFacade, ModelCpuMode)
{
    ExperimentSpec spec;
    spec.mode = ExperimentMode::ModelCpu;
    spec.benchmark = BenchmarkId::LJ;
    spec.natoms = 256000;
    spec.resources = 16;
    const ExperimentRecord record = runExperiment(spec);
    EXPECT_GT(record.timestepsPerSecond, 0.0);
    EXPECT_GT(record.parallelEfficiencyPct, 0.0);
    EXPECT_EQ(record.spec.label(), "lj-256k");
}

TEST(ExperimentFacade, ModelGpuMode)
{
    ExperimentSpec spec;
    spec.mode = ExperimentMode::ModelGpu;
    spec.benchmark = BenchmarkId::Rhodo;
    spec.natoms = 864000;
    spec.resources = 4;
    const ExperimentRecord record = runExperiment(spec);
    EXPECT_GT(record.timestepsPerSecond, 0.0);
    EXPECT_GT(record.deviceUtilization, 0.0);
}

TEST(ExperimentFacade, NativeSerialMode)
{
    ExperimentSpec spec;
    spec.mode = ExperimentMode::NativeSerial;
    spec.benchmark = BenchmarkId::LJ;
    spec.natoms = 2000;
    spec.steps = 40;
    const ExperimentRecord record = runExperiment(spec);
    EXPECT_GT(record.timestepsPerSecond, 0.0);
    EXPECT_GT(record.taskBreakdown.fraction(Task::Pair), 0.3);
}

TEST(ExperimentFacade, NativeRankedMode)
{
    ExperimentSpec spec;
    spec.mode = ExperimentMode::NativeRanked;
    spec.benchmark = BenchmarkId::LJ;
    spec.natoms = 2000;
    spec.resources = 4;
    spec.steps = 30;
    const ExperimentRecord record = runExperiment(spec);
    EXPECT_GT(record.timestepsPerSecond, 0.0);
    EXPECT_GT(record.mpiTimePercent, 0.0);
    EXPECT_GT(record.mpiFunctionSeconds[static_cast<std::size_t>(
                  MpiFunction::Init)],
              0.0);
}

TEST(ExperimentFacade, NativeRankedRejectsRhodo)
{
    ExperimentSpec spec;
    spec.mode = ExperimentMode::NativeRanked;
    spec.benchmark = BenchmarkId::Rhodo;
    spec.natoms = 2000;
    spec.resources = 2;
    spec.steps = 5;
    EXPECT_THROW(runExperiment(spec), FatalError);
}

} // namespace
} // namespace mdbench
