/**
 * @file
 * Neighbor-list correctness: brute-force cross-checks, half/full list
 * invariants, skin/rebuild behaviour, and ghost construction.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "md/lattice.h"
#include "md/neighbor.h"
#include "md/simulation.h"
#include "md/velocity.h"
#include "forcefield/pair_lj_cut.h"
#include "md/fix_nve.h"
#include "util/rng.h"

namespace mdbench {
namespace {

/** Place n atoms at random positions in a cubic box of side length. */
void
randomSystem(Simulation &sim, int n, double length, std::uint64_t seed)
{
    sim.box = Box({0, 0, 0}, {length, length, length});
    sim.atoms.setNumTypes(1);
    Rng rng(seed);
    for (int i = 0; i < n; ++i)
        sim.atoms.addAtom(i + 1, 1,
                          {rng.uniform(0, length), rng.uniform(0, length),
                           rng.uniform(0, length)});
}

/** All minimum-image pairs within cutoff, as sorted-tag pairs. */
std::multiset<std::pair<std::int64_t, std::int64_t>>
bruteForcePairs(const Simulation &sim, double cutoff)
{
    std::multiset<std::pair<std::int64_t, std::int64_t>> pairs;
    const std::size_t n = sim.atoms.nlocal();
    const double cutSq = cutoff * cutoff;
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i + 1; j < n; ++j) {
            const Vec3 d =
                sim.box.minimumImage(sim.atoms.x[i] - sim.atoms.x[j]);
            if (d.normSq() < cutSq)
                pairs.insert({std::min(sim.atoms.tag[i], sim.atoms.tag[j]),
                              std::max(sim.atoms.tag[i], sim.atoms.tag[j])});
        }
    }
    return pairs;
}

/** Pairs stored in a half list, as sorted-tag pairs. */
std::multiset<std::pair<std::int64_t, std::int64_t>>
halfListPairs(const Simulation &sim)
{
    std::multiset<std::pair<std::int64_t, std::int64_t>> pairs;
    const NeighborList &list = sim.neighbor.list();
    for (std::size_t i = 0; i < sim.atoms.nlocal(); ++i) {
        const auto [begin, end] = list.range(i);
        for (std::uint32_t k = begin; k < end; ++k) {
            const std::uint32_t j = list.neighbors[k];
            pairs.insert({std::min(sim.atoms.tag[i], sim.atoms.tag[j]),
                          std::max(sim.atoms.tag[i], sim.atoms.tag[j])});
        }
    }
    return pairs;
}

TEST(Neighbor, HalfListMatchesBruteForce)
{
    Simulation sim;
    randomSystem(sim, 200, 8.0, 321);
    sim.neighbor.cutoff = 1.5;
    sim.neighbor.skin = 0.0;
    sim.comm->exchange(sim);
    sim.comm->borders(sim);
    sim.neighbor.build(sim);

    // Box side (8.0) is > 2x cutoff, so each physical pair appears once.
    EXPECT_EQ(halfListPairs(sim), bruteForcePairs(sim, 1.5));
}

TEST(Neighbor, HalfListMatchesBruteForceManySeeds)
{
    for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
        Simulation sim;
        randomSystem(sim, 120, 6.5, seed);
        sim.neighbor.cutoff = 1.8;
        sim.neighbor.skin = 0.0;
        sim.comm->exchange(sim);
        sim.comm->borders(sim);
        sim.neighbor.build(sim);
        EXPECT_EQ(halfListPairs(sim), bruteForcePairs(sim, 1.8))
            << "seed " << seed;
    }
}

TEST(Neighbor, FullListStoresEachPairTwice)
{
    Simulation sim;
    randomSystem(sim, 150, 7.0, 77);
    sim.neighbor.cutoff = 1.5;
    sim.neighbor.skin = 0.0;
    sim.neighbor.full = true;
    sim.comm->exchange(sim);
    sim.comm->borders(sim);
    sim.neighbor.build(sim);

    const auto brute = bruteForcePairs(sim, 1.5);
    const auto full = halfListPairs(sim); // collects every stored entry
    EXPECT_EQ(full.size(), 2 * brute.size());
    for (const auto &pair : brute)
        EXPECT_EQ(full.count(pair), 2u) << pair.first << "," << pair.second;
}

TEST(Neighbor, SkinGrowsList)
{
    Simulation sim;
    randomSystem(sim, 300, 8.0, 5);
    sim.neighbor.cutoff = 1.5;
    sim.neighbor.skin = 0.0;
    sim.comm->exchange(sim);
    sim.comm->borders(sim);
    sim.neighbor.build(sim);
    const std::size_t tight = sim.neighbor.list().pairCount();

    sim.neighbor.skin = 0.5;
    sim.comm->borders(sim);
    sim.neighbor.build(sim);
    EXPECT_GT(sim.neighbor.list().pairCount(), tight);
}

TEST(Neighbor, TriggerFiresOnlyAfterHalfSkinMotion)
{
    Simulation sim;
    randomSystem(sim, 50, 10.0, 9);
    sim.neighbor.cutoff = 1.5;
    sim.neighbor.skin = 0.4;
    sim.comm->exchange(sim);
    sim.comm->borders(sim);
    sim.neighbor.build(sim);

    EXPECT_FALSE(sim.neighbor.checkTrigger(sim));
    sim.atoms.x[0].x += 0.19; // just under skin/2
    EXPECT_FALSE(sim.neighbor.checkTrigger(sim));
    sim.atoms.x[0].x += 0.02; // crosses skin/2
    EXPECT_TRUE(sim.neighbor.checkTrigger(sim));
}

TEST(Neighbor, NeighborsPerAtomLJMelt)
{
    // LJ melt at rho* = 0.8442 with cutoff 2.5 sigma has ~55 neighbors
    // per atom within the cutoff (paper Table 2).
    Simulation sim;
    buildFcc(sim, 8, 8, 8, fccLatticeConstant(0.8442));
    sim.neighbor.cutoff = 2.5;
    sim.neighbor.skin = 0.0;
    sim.comm->exchange(sim);
    sim.comm->borders(sim);
    sim.neighbor.build(sim);
    EXPECT_NEAR(sim.neighbor.list().neighborsPerAtom(), 55.0, 8.0);
}

TEST(Neighbor, GhostCountScalesWithSurface)
{
    Simulation sim;
    buildFcc(sim, 6, 6, 6, 1.6);
    sim.neighbor.cutoff = 2.0;
    sim.neighbor.skin = 0.3;
    sim.comm->exchange(sim);
    sim.comm->borders(sim);
    EXPECT_GT(sim.atoms.nghost(), 0u);
    // Ghost shell thickness cut on each face: fraction roughly
    // (1 + 2 cut/L)^3 - 1 of the owned atoms.
    const double cut = sim.commCutoff();
    const double ratio = std::pow(1.0 + 2.0 * cut / sim.box.lengths().x, 3) -
                         1.0;
    EXPECT_NEAR(static_cast<double>(sim.atoms.nghost()) /
                    static_cast<double>(sim.atoms.nlocal()),
                ratio, 0.35 * ratio);
}

TEST(Neighbor, RebuildKeepsPhysicsConsistent)
{
    // Run an LJ melt with a large skin and verify neighbor rebuilds
    // happen *and* energy stays conserved across them.
    Simulation sim;
    buildFcc(sim, 5, 5, 5, fccLatticeConstant(0.8442));
    sim.pair = std::make_unique<PairLJCut>(1, 2.5);
    static_cast<PairLJCut &>(*sim.pair).setCoeff(1, 1, 1.0, 1.0);
    sim.neighbor.skin = 0.3;
    sim.dt = 0.005;
    Rng rng(2024);
    createVelocities(sim, 1.44, rng);
    sim.addFix<FixNVE>();
    sim.thermoEvery = 0;
    sim.setup();
    sim.run(150);
    EXPECT_GT(sim.reneighborCount(), 2);
}

} // namespace
} // namespace mdbench
