/**
 * @file
 * Neighbor-list correctness: brute-force cross-checks, half/full list
 * invariants, skin/rebuild behaviour, and ghost construction.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "core/suite.h"
#include "md/lattice.h"
#include "md/neighbor.h"
#include "md/simulation.h"
#include "md/velocity.h"
#include "forcefield/pair_lj_cut.h"
#include "md/fix_nve.h"
#include "util/neigh_layout.h"
#include "util/rng.h"
#include "util/simd.h"

namespace mdbench {
namespace {

/** Place n atoms at random positions in a cubic box of side length. */
void
randomSystem(Simulation &sim, int n, double length, std::uint64_t seed)
{
    sim.box = Box({0, 0, 0}, {length, length, length});
    sim.atoms.setNumTypes(1);
    Rng rng(seed);
    for (int i = 0; i < n; ++i)
        sim.atoms.addAtom(i + 1, 1,
                          {rng.uniform(0, length), rng.uniform(0, length),
                           rng.uniform(0, length)});
}

/** All minimum-image pairs within cutoff, as sorted-tag pairs. */
std::multiset<std::pair<std::int64_t, std::int64_t>>
bruteForcePairs(const Simulation &sim, double cutoff)
{
    std::multiset<std::pair<std::int64_t, std::int64_t>> pairs;
    const std::size_t n = sim.atoms.nlocal();
    const double cutSq = cutoff * cutoff;
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i + 1; j < n; ++j) {
            const Vec3 d =
                sim.box.minimumImage(sim.atoms.x[i] - sim.atoms.x[j]);
            if (d.normSq() < cutSq)
                pairs.insert({std::min(sim.atoms.tag[i], sim.atoms.tag[j]),
                              std::max(sim.atoms.tag[i], sim.atoms.tag[j])});
        }
    }
    return pairs;
}

/** Pairs stored in a half list, as sorted-tag pairs. */
std::multiset<std::pair<std::int64_t, std::int64_t>>
halfListPairs(const Simulation &sim)
{
    std::multiset<std::pair<std::int64_t, std::int64_t>> pairs;
    const NeighborList &list = sim.neighbor.list();
    for (std::size_t i = 0; i < sim.atoms.nlocal(); ++i) {
        const auto [begin, end] = list.range(i);
        for (std::uint32_t k = begin; k < end; ++k) {
            const std::uint32_t j = list.neighbors[k];
            pairs.insert({std::min(sim.atoms.tag[i], sim.atoms.tag[j]),
                          std::max(sim.atoms.tag[i], sim.atoms.tag[j])});
        }
    }
    return pairs;
}

TEST(Neighbor, HalfListMatchesBruteForce)
{
    Simulation sim;
    randomSystem(sim, 200, 8.0, 321);
    sim.neighbor.cutoff = 1.5;
    sim.neighbor.skin = 0.0;
    sim.comm->exchange(sim);
    sim.comm->borders(sim);
    sim.neighbor.build(sim);

    // Box side (8.0) is > 2x cutoff, so each physical pair appears once.
    EXPECT_EQ(halfListPairs(sim), bruteForcePairs(sim, 1.5));
}

TEST(Neighbor, HalfListMatchesBruteForceManySeeds)
{
    for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
        Simulation sim;
        randomSystem(sim, 120, 6.5, seed);
        sim.neighbor.cutoff = 1.8;
        sim.neighbor.skin = 0.0;
        sim.comm->exchange(sim);
        sim.comm->borders(sim);
        sim.neighbor.build(sim);
        EXPECT_EQ(halfListPairs(sim), bruteForcePairs(sim, 1.8))
            << "seed " << seed;
    }
}

TEST(Neighbor, FullListStoresEachPairTwice)
{
    Simulation sim;
    randomSystem(sim, 150, 7.0, 77);
    sim.neighbor.cutoff = 1.5;
    sim.neighbor.skin = 0.0;
    sim.neighbor.full = true;
    sim.comm->exchange(sim);
    sim.comm->borders(sim);
    sim.neighbor.build(sim);

    const auto brute = bruteForcePairs(sim, 1.5);
    const auto full = halfListPairs(sim); // collects every stored entry
    EXPECT_EQ(full.size(), 2 * brute.size());
    for (const auto &pair : brute)
        EXPECT_EQ(full.count(pair), 2u) << pair.first << "," << pair.second;
}

TEST(Neighbor, SkinGrowsList)
{
    Simulation sim;
    randomSystem(sim, 300, 8.0, 5);
    sim.neighbor.cutoff = 1.5;
    sim.neighbor.skin = 0.0;
    sim.comm->exchange(sim);
    sim.comm->borders(sim);
    sim.neighbor.build(sim);
    const std::size_t tight = sim.neighbor.list().pairCount();

    sim.neighbor.skin = 0.5;
    sim.comm->borders(sim);
    sim.neighbor.build(sim);
    EXPECT_GT(sim.neighbor.list().pairCount(), tight);
}

TEST(Neighbor, TriggerFiresOnlyAfterHalfSkinMotion)
{
    Simulation sim;
    randomSystem(sim, 50, 10.0, 9);
    sim.neighbor.cutoff = 1.5;
    sim.neighbor.skin = 0.4;
    sim.comm->exchange(sim);
    sim.comm->borders(sim);
    sim.neighbor.build(sim);

    EXPECT_FALSE(sim.neighbor.checkTrigger(sim));
    sim.atoms.x[0].x += 0.19; // just under skin/2
    EXPECT_FALSE(sim.neighbor.checkTrigger(sim));
    sim.atoms.x[0].x += 0.02; // crosses skin/2
    EXPECT_TRUE(sim.neighbor.checkTrigger(sim));
}

TEST(Neighbor, NeighborsPerAtomLJMelt)
{
    // LJ melt at rho* = 0.8442 with cutoff 2.5 sigma has ~55 neighbors
    // per atom within the cutoff (paper Table 2).
    Simulation sim;
    buildFcc(sim, 8, 8, 8, fccLatticeConstant(0.8442));
    sim.neighbor.cutoff = 2.5;
    sim.neighbor.skin = 0.0;
    sim.comm->exchange(sim);
    sim.comm->borders(sim);
    sim.neighbor.build(sim);
    EXPECT_NEAR(sim.neighbor.list().neighborsPerAtom(), 55.0, 8.0);
}

TEST(Neighbor, GhostCountScalesWithSurface)
{
    Simulation sim;
    buildFcc(sim, 6, 6, 6, 1.6);
    sim.neighbor.cutoff = 2.0;
    sim.neighbor.skin = 0.3;
    sim.comm->exchange(sim);
    sim.comm->borders(sim);
    EXPECT_GT(sim.atoms.nghost(), 0u);
    // Ghost shell thickness cut on each face: fraction roughly
    // (1 + 2 cut/L)^3 - 1 of the owned atoms.
    const double cut = sim.commCutoff();
    const double ratio = std::pow(1.0 + 2.0 * cut / sim.box.lengths().x, 3) -
                         1.0;
    EXPECT_NEAR(static_cast<double>(sim.atoms.nghost()) /
                    static_cast<double>(sim.atoms.nlocal()),
                ratio, 0.35 * ratio);
}

/** offsets+neighbors of a fresh build at the given knobs. */
std::pair<std::vector<std::uint32_t>, std::vector<std::uint32_t>>
buildListAt(int width, bool full, std::uint64_t seed)
{
    setSimdWidth(width);
    Simulation sim;
    randomSystem(sim, 400, 7.0, seed);
    sim.neighbor.cutoff = 1.5;
    sim.neighbor.skin = 0.3;
    sim.neighbor.full = full;
    sim.comm->exchange(sim);
    sim.comm->borders(sim);
    sim.neighbor.build(sim);
    setSimdWidth(-1);
    return {sim.neighbor.list().offsets, sim.neighbor.list().neighbors};
}

TEST(Neighbor, VectorizedBuildMatchesScalarOracleAtAllWidths)
{
    // The vectorized candidate filter must emit exactly the scalar
    // walk's CSR rows — same offsets, same payload, same order — for
    // both list flavors at every packing width.
    for (const bool full : {false, true}) {
        for (const std::uint64_t seed : {11u, 12u, 13u}) {
            const auto reference = buildListAt(0, full, seed);
            for (const int width : {1, 2, 4, 8}) {
                SCOPED_TRACE(testing::Message()
                             << "full=" << full << " seed=" << seed
                             << " width=" << width);
                const auto vectorized = buildListAt(width, full, seed);
                EXPECT_EQ(vectorized.first, reference.first);
                EXPECT_EQ(vectorized.second, reference.second);
            }
        }
    }
}

TEST(Neighbor, ExclusionSystemListUnaffectedByWidth)
{
    // Bonded systems take the scalar inclusion path (exclusion checks
    // are not vectorized); the produced list must not depend on the
    // SIMD width knob regardless.
    auto listsAt = [](int width) {
        setSimdWidth(width);
        auto sim = buildChain(4);
        sim->thermoEvery = 0;
        sim->setup();
        setSimdWidth(-1);
        return std::make_pair(sim->neighbor.list().offsets,
                              sim->neighbor.list().neighbors);
    };
    const auto reference = listsAt(0);
    const auto wide = listsAt(8);
    EXPECT_EQ(wide.first, reference.first);
    EXPECT_EQ(wide.second, reference.second);
}

TEST(Neighbor, PackingRefreshesOnWidthChange)
{
    // Regression: changing the SIMD width between builds must not let
    // a kernel traverse the stale-width packing — the force loop
    // refreshes the packing before every pair compute.
    setSimdWidth(4);
    auto sim = buildLJ(4);
    sim->thermoEvery = 0;
    sim->setup();
    ASSERT_TRUE(sim->neighbor.list().packedFor(4));

    setSimdWidth(8);
    sim->computeForces();
    EXPECT_TRUE(sim->neighbor.list().packedFor(8));

    // The refreshed packing and the forces computed through it must
    // match a run that was at width 8 from the start.
    auto reference = buildLJ(4);
    reference->thermoEvery = 0;
    reference->setup();
    ASSERT_TRUE(reference->neighbor.list().packedFor(8));
    EXPECT_EQ(sim->neighbor.list().packedOffsets,
              reference->neighbor.list().packedOffsets);
    EXPECT_EQ(sim->neighbor.list().packedNeighbors,
              reference->neighbor.list().packedNeighbors);
    for (std::size_t i = 0; i < sim->atoms.nlocal(); ++i) {
        EXPECT_EQ(sim->atoms.f[i].x, reference->atoms.f[i].x) << i;
        EXPECT_EQ(sim->atoms.f[i].y, reference->atoms.f[i].y) << i;
        EXPECT_EQ(sim->atoms.f[i].z, reference->atoms.f[i].z) << i;
    }
    setSimdWidth(-1);
}

TEST(Neighbor, PackingRefreshesOnLayoutChange)
{
    setSimdWidth(4);
    auto sim = buildLJ(4);
    sim->thermoEvery = 0;
    sim->setup();
    ASSERT_TRUE(sim->neighbor.list().packedFor(4));
    ASSERT_EQ(sim->neighbor.list().clusterN, 0);

    setNeighLayout(1);
    sim->computeForces();
    EXPECT_TRUE(sim->neighbor.list().clusterFor(4));
    EXPECT_EQ(sim->neighbor.list().padWidth, 0);

    setNeighLayout(0);
    sim->computeForces();
    EXPECT_TRUE(sim->neighbor.list().packedFor(4));
    EXPECT_EQ(sim->neighbor.list().clusterN, 0);
    setNeighLayout(-1);
    setSimdWidth(-1);
}

TEST(Neighbor, ClusterLayoutCoversEveryStoredPair)
{
    // Every pair of the plain CSR list must appear among the cluster
    // pairs' lane pairs: for each stored (i, j) there must be a
    // cluster pair linking i's i-cluster to j's j-cluster (and, for
    // owned j, the mirror).
    setSimdWidth(4);
    setNeighLayout(1);
    auto sim = buildLJ(4);
    sim->thermoEvery = 0;
    sim->setup();
    const NeighborList &list = sim->neighbor.list();
    ASSERT_TRUE(list.clusterFor(4));
    const std::size_t m = static_cast<std::size_t>(list.clusterM);
    const std::size_t w = static_cast<std::size_t>(list.clusterN);

    // Invert the cluster memberships.
    std::map<std::uint32_t, std::uint32_t> icOf, jcOf;
    for (std::size_t k = 0; k < list.clusterIAtoms.size(); ++k) {
        if (list.clusterIAtoms[k] != list.sentinel)
            icOf[list.clusterIAtoms[k]] =
                static_cast<std::uint32_t>(k / m);
    }
    for (std::size_t k = 0; k < list.clusterJAtoms.size(); ++k) {
        if (list.clusterJAtoms[k] != list.sentinel)
            jcOf[list.clusterJAtoms[k]] =
                static_cast<std::uint32_t>(k / w);
    }
    std::set<std::pair<std::uint32_t, std::uint32_t>> stored;
    const std::size_t nic = list.clusterOffsets.size() - 1;
    for (std::size_t ic = 0; ic < nic; ++ic) {
        for (std::uint32_t p = list.clusterOffsets[ic];
             p < list.clusterOffsets[ic + 1]; ++p) {
            stored.insert({static_cast<std::uint32_t>(ic),
                           list.clusterPairs[p]});
        }
    }
    for (std::size_t i = 0; i < sim->atoms.nlocal(); ++i) {
        const auto [begin, end] = list.range(i);
        for (std::uint32_t k = begin; k < end; ++k) {
            const std::uint32_t j = list.neighbors[k];
            ASSERT_TRUE(stored.count(
                {icOf.at(static_cast<std::uint32_t>(i)), jcOf.at(j)}))
                << i << " -> " << j;
            if (j < sim->atoms.nlocal()) {
                ASSERT_TRUE(stored.count(
                    {icOf.at(j), jcOf.at(static_cast<std::uint32_t>(i))}))
                    << j << " -> " << i;
            }
        }
    }
    setNeighLayout(-1);
    setSimdWidth(-1);
}

TEST(Neighbor, ClusterLayoutMatchesCsrPhysicsOverManySteps)
{
    // Same LJ melt through both packings: identical initial
    // thermodynamics (up to summation order), and both trajectories
    // conserve energy over 1k steps — a stale or under-covered cluster
    // packing would show up as a conservation break at a rebuild.
    struct RunOut
    {
        std::vector<Vec3> f0;
        double e0 = 0.0, total0 = 0.0, totalEnd = 0.0;
    };
    auto runAt = [](int layout) {
        setNeighLayout(layout);
        auto sim = buildLJ(4);
        sim->thermoEvery = 0;
        sim->setup();
        RunOut out;
        out.f0.assign(sim->atoms.f.begin(),
                      sim->atoms.f.begin() + sim->atoms.nlocal());
        out.e0 = sim->pair->energy();
        out.total0 = sim->potentialEnergy() + sim->kineticEnergy();
        sim->run(1000);
        out.totalEnd = sim->potentialEnergy() + sim->kineticEnergy();
        setNeighLayout(-1);
        return out;
    };
    const RunOut csr = runAt(0);
    const RunOut cluster = runAt(1);

    const double eScale = std::abs(csr.e0);
    EXPECT_NEAR(cluster.e0, csr.e0, 1e-10 * eScale);
    ASSERT_EQ(cluster.f0.size(), csr.f0.size());
    for (std::size_t i = 0; i < csr.f0.size(); ++i) {
        const Vec3 d = cluster.f0[i] - csr.f0[i];
        EXPECT_LT(std::sqrt(d.normSq()),
                  1e-9 * (1.0 + std::sqrt(csr.f0[i].normSq())))
            << i;
    }
    // The melt drifts a little over 1k steps (finite dt + skin
    // rebuilds); what matters is that the cluster run drifts like the
    // CSR run, not worse.
    const double scale = std::abs(csr.total0);
    EXPECT_LT(std::abs(csr.totalEnd - csr.total0), 5e-3 * scale);
    EXPECT_LT(std::abs(cluster.totalEnd - cluster.total0), 5e-3 * scale);
}

TEST(Neighbor, RebuildKeepsPhysicsConsistent)
{
    // Run an LJ melt with a large skin and verify neighbor rebuilds
    // happen *and* energy stays conserved across them.
    Simulation sim;
    buildFcc(sim, 5, 5, 5, fccLatticeConstant(0.8442));
    sim.pair = std::make_unique<PairLJCut>(1, 2.5);
    static_cast<PairLJCut &>(*sim.pair).setCoeff(1, 1, 1.0, 1.0);
    sim.neighbor.skin = 0.3;
    sim.dt = 0.005;
    Rng rng(2024);
    createVelocities(sim, 1.44, rng);
    sim.addFix<FixNVE>();
    sim.thermoEvery = 0;
    sim.setup();
    sim.run(150);
    EXPECT_GT(sim.reneighborCount(), 2);
}

} // namespace
} // namespace mdbench
