/**
 * @file
 * Bonded-style correctness: FENE, harmonic bonds, harmonic angles —
 * analytic values, finite-difference force consistency, and exclusion
 * interplay with the pair list.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "forcefield/bond_styles.h"
#include "forcefield/pair_lj_cut.h"
#include "md/fix_langevin.h"
#include "md/fix_nve.h"
#include "md/simulation.h"
#include "md/velocity.h"
#include "util/error.h"
#include "util/rng.h"

namespace mdbench {
namespace {

/** Two bonded atoms at distance r. */
Simulation
bondedPair(double r)
{
    Simulation sim;
    sim.box = Box({0, 0, 0}, {30, 30, 30});
    sim.atoms.setNumTypes(1);
    sim.atoms.addAtom(1, 1, {10, 10, 10});
    sim.atoms.addAtom(2, 1, {10 + r, 10, 10});
    sim.topology.bonds.push_back({1, 2, 1});
    sim.neighbor.cutoff = 2.0;
    return sim;
}

TEST(BondFene, EnergyMatchesAnalyticForm)
{
    const double r = 1.1;
    Simulation sim = bondedPair(r);
    sim.bondStyle = std::make_unique<BondFENE>();
    sim.setup();
    const double k = 30.0;
    const double r0 = 1.5;
    double expected = -0.5 * k * r0 * r0 * std::log(1.0 - r * r / (r0 * r0));
    const double rc = std::pow(2.0, 1.0 / 6.0);
    if (r < rc) {
        const double sr6 = std::pow(1.0 / r, 6);
        expected += 4.0 * (sr6 * sr6 - sr6) + 1.0;
    }
    EXPECT_NEAR(sim.bondStyle->energy(), expected, 1e-10);
}

TEST(BondFene, EquilibriumNearKremerGrestValue)
{
    // The Kremer-Grest bond minimum is at r ~ 0.97 sigma.
    double bestR = 0.0;
    double bestE = 1e300;
    for (double r = 0.8; r < 1.3; r += 0.001) {
        Simulation sim = bondedPair(r);
        sim.bondStyle = std::make_unique<BondFENE>();
        sim.setup();
        if (sim.bondStyle->energy() < bestE) {
            bestE = sim.bondStyle->energy();
            bestR = r;
        }
    }
    EXPECT_NEAR(bestR, 0.97, 0.01);
}

TEST(BondFene, OverstretchThrows)
{
    Simulation sim = bondedPair(1.49);
    sim.bondStyle = std::make_unique<BondFENE>();
    EXPECT_THROW(sim.setup(), FatalError);
}

TEST(BondFene, ForceMatchesFiniteDifference)
{
    for (double r : {0.9, 1.0, 1.2, 1.35}) {
        Simulation sim = bondedPair(r);
        sim.bondStyle = std::make_unique<BondFENE>();
        sim.setup();
        const double fx = sim.atoms.f[0].x;

        const double h = 1e-7;
        double energies[2];
        int idx = 0;
        for (double sign : {1.0, -1.0}) {
            Simulation sim2 = bondedPair(r - sign * h);
            sim2.bondStyle = std::make_unique<BondFENE>();
            sim2.setup();
            energies[idx++] = sim2.bondStyle->energy();
        }
        // energies[0] = E(r-h), energies[1] = E(r+h); with atom 0 at
        // x0 and atom 1 at x0 + r, dr/dx0 = -1, so F0x = +dE/dr.
        const double numeric = (energies[1] - energies[0]) / (2.0 * h);
        EXPECT_NEAR(fx, numeric, 1e-3 * std::max(1.0, std::fabs(fx))) << r;
    }
}

TEST(BondHarmonic, RestLengthGivesZeroForce)
{
    Simulation sim = bondedPair(1.0);
    auto bond = std::make_unique<BondHarmonic>();
    bond->setCoeff(1, {250.0, 1.0});
    sim.bondStyle = std::move(bond);
    sim.setup();
    EXPECT_NEAR(sim.bondStyle->energy(), 0.0, 1e-12);
    EXPECT_NEAR(sim.atoms.f[0].norm(), 0.0, 1e-12);
}

TEST(BondHarmonic, StretchedValues)
{
    Simulation sim = bondedPair(1.2);
    auto bond = std::make_unique<BondHarmonic>();
    bond->setCoeff(1, {250.0, 1.0});
    sim.bondStyle = std::move(bond);
    sim.setup();
    EXPECT_NEAR(sim.bondStyle->energy(), 250.0 * 0.04, 1e-9);
    // F = -2 k (r - r0) pulling atoms together.
    EXPECT_NEAR(sim.atoms.f[0].x, 2.0 * 250.0 * 0.2, 1e-9);
}

TEST(BondHarmonic, ActsAcrossPeriodicBoundary)
{
    Simulation sim;
    sim.box = Box({0, 0, 0}, {10, 10, 10});
    sim.atoms.setNumTypes(1);
    sim.atoms.addAtom(1, 1, {0.3, 5, 5});
    sim.atoms.addAtom(2, 1, {9.5, 5, 5}); // 0.8 apart via the boundary
    sim.topology.bonds.push_back({1, 2, 1});
    auto bond = std::make_unique<BondHarmonic>();
    bond->setCoeff(1, {100.0, 1.0});
    sim.bondStyle = std::move(bond);
    sim.neighbor.cutoff = 2.0;
    sim.setup();
    EXPECT_NEAR(sim.bondStyle->energy(), 100.0 * 0.04, 1e-9);
}

TEST(AngleHarmonic, RestAngleGivesZeroForce)
{
    Simulation sim;
    sim.box = Box({0, 0, 0}, {30, 30, 30});
    sim.atoms.setNumTypes(1);
    const double theta0 = 100.0 * M_PI / 180.0;
    sim.atoms.addAtom(1, 1, {10 + std::cos(theta0), 10 + std::sin(theta0),
                             10});
    sim.atoms.addAtom(2, 1, {10, 10, 10});
    sim.atoms.addAtom(3, 1, {11, 10, 10});
    sim.topology.angles.push_back({1, 2, 3, 1});
    auto angle = std::make_unique<AngleHarmonic>();
    angle->setCoeff(1, {60.0, theta0});
    sim.angleStyle = std::move(angle);
    sim.neighbor.cutoff = 2.5;
    sim.setup();
    EXPECT_NEAR(sim.angleStyle->energy(), 0.0, 1e-12);
    for (int i = 0; i < 3; ++i)
        EXPECT_NEAR(sim.atoms.f[i].norm(), 0.0, 1e-10);
}

TEST(AngleHarmonic, BentAngleEnergyAndForceDirections)
{
    Simulation sim;
    sim.box = Box({0, 0, 0}, {30, 30, 30});
    sim.atoms.setNumTypes(1);
    // 90-degree angle, rest angle 109.47: wants to open up.
    sim.atoms.addAtom(1, 1, {10, 11, 10});
    sim.atoms.addAtom(2, 1, {10, 10, 10});
    sim.atoms.addAtom(3, 1, {11, 10, 10});
    sim.topology.angles.push_back({1, 2, 3, 1});
    auto angle = std::make_unique<AngleHarmonic>();
    const double theta0 = 109.47 * M_PI / 180.0;
    angle->setCoeff(1, {60.0, theta0});
    sim.angleStyle = std::move(angle);
    sim.neighbor.cutoff = 2.5;
    sim.setup();
    const double dTheta = M_PI / 2.0 - theta0;
    EXPECT_NEAR(sim.angleStyle->energy(), 60.0 * dTheta * dTheta, 1e-9);
    // Ends pushed apart; total force zero.
    Vec3 total = sim.atoms.f[0] + sim.atoms.f[1] + sim.atoms.f[2];
    EXPECT_NEAR(total.norm(), 0.0, 1e-10);
    EXPECT_LT(sim.atoms.f[0].x, 0.0); // end atom 1 pushed toward -x
    EXPECT_LT(sim.atoms.f[2].y, 0.0); // end atom 3 pushed toward -y
}

TEST(AngleHarmonic, ForceMatchesFiniteDifference)
{
    auto build = [](const Vec3 &p0) {
        Simulation sim;
        sim.box = Box({0, 0, 0}, {30, 30, 30});
        sim.atoms.setNumTypes(1);
        sim.atoms.addAtom(1, 1, p0);
        sim.atoms.addAtom(2, 1, {10, 10, 10});
        sim.atoms.addAtom(3, 1, {11.2, 10.1, 9.9});
        sim.topology.angles.push_back({1, 2, 3, 1});
        auto angle = std::make_unique<AngleHarmonic>();
        angle->setCoeff(1, {60.0, 1.9});
        sim.angleStyle = std::move(angle);
        sim.neighbor.cutoff = 2.5;
        sim.setup();
        return sim;
    };
    const Vec3 base{10.2, 11.1, 10.4};
    Simulation sim = build(base);
    const Vec3 f0 = sim.atoms.f[0];
    const double h = 1e-6;
    const double dEdx = (build({base.x + h, base.y, base.z})
                             .angleStyle->energy() -
                         build({base.x - h, base.y, base.z})
                             .angleStyle->energy()) /
                        (2.0 * h);
    EXPECT_NEAR(f0.x, -dEdx, 1e-4 * std::max(1.0, std::fabs(f0.x)));
}

TEST(Exclusions, BondedPairSkippedByPairStyle)
{
    // Two atoms bonded at a distance where LJ would be huge: the
    // exclusion must remove the pair interaction entirely.
    Simulation sim = bondedPair(0.5);
    auto pair = std::make_unique<PairLJCut>(1, 2.5);
    pair->setCoeff(1, 1, 1.0, 1.0);
    sim.pair = std::move(pair);
    auto bond = std::make_unique<BondHarmonic>();
    bond->setCoeff(1, {10.0, 0.5});
    sim.bondStyle = std::move(bond);
    sim.setup();
    EXPECT_NEAR(sim.pair->energy(), 0.0, 1e-12);
    EXPECT_NEAR(sim.bondStyle->energy(), 0.0, 1e-12);
}

TEST(ChainWorkload, ShortChainStableUnderLangevin)
{
    // A 10-mer Kremer-Grest chain with WCA pair + FENE bonds and a
    // Langevin thermostat: bonds must stay within FENE range.
    Simulation sim;
    sim.box = Box({0, 0, 0}, {20, 20, 20});
    sim.atoms.setNumTypes(1);
    for (int i = 0; i < 10; ++i) {
        sim.atoms.addAtom(i + 1, 1, {5.0 + 0.97 * i, 10, 10});
        if (i > 0)
            sim.topology.bonds.push_back({i, i + 1, 1});
    }
    auto pair = std::make_unique<PairLJCut>(1, std::pow(2.0, 1.0 / 6.0),
                                            true);
    pair->setCoeff(1, 1, 1.0, 1.0);
    sim.pair = std::move(pair);
    sim.bondStyle = std::make_unique<BondFENE>();
    sim.neighbor.skin = 0.4;
    sim.dt = 0.005;
    sim.thermoEvery = 0;
    Rng rng(123);
    createVelocities(sim, 1.0, rng);
    sim.addFix<FixNVE>();
    sim.addFix<FixLangevin>(1.0, 1.0, 42);
    sim.setup();
    EXPECT_NO_THROW(sim.run(2000));
    // All bonds within the FENE extensibility limit.
    for (const Bond &bond : sim.topology.bonds) {
        const auto a = sim.topology.indexOf(bond.tagA);
        const auto b = sim.topology.indexOf(bond.tagB);
        const double r = sim.box
                             .minimumImage(sim.atoms.x[a] - sim.atoms.x[b])
                             .norm();
        EXPECT_LT(r, 1.4);
        EXPECT_GT(r, 0.6);
    }
}

} // namespace
} // namespace mdbench
