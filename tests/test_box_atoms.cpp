/**
 * @file
 * Unit tests for Box, AtomStore, Topology, lattice builders, and
 * velocity initialization.
 */

#include <gtest/gtest.h>

#include "md/box.h"
#include "md/lattice.h"
#include "md/simulation.h"
#include "md/topology.h"
#include "md/velocity.h"
#include "util/error.h"
#include "util/rng.h"

namespace mdbench {
namespace {

TEST(Box, WrapIntoPrimaryCell)
{
    Box box({0, 0, 0}, {10, 10, 10});
    const Vec3 wrapped = box.wrap({12.5, -3.0, 5.0});
    EXPECT_DOUBLE_EQ(wrapped.x, 2.5);
    EXPECT_DOUBLE_EQ(wrapped.y, 7.0);
    EXPECT_DOUBLE_EQ(wrapped.z, 5.0);
}

TEST(Box, WrapRespectsNonPeriodicAxis)
{
    Box box({0, 0, 0}, {10, 10, 10});
    box.setPeriodic(true, true, false);
    const Vec3 wrapped = box.wrap({1.0, 1.0, 14.0});
    EXPECT_DOUBLE_EQ(wrapped.z, 14.0);
}

TEST(Box, MinimumImage)
{
    Box box({0, 0, 0}, {10, 10, 10});
    const Vec3 delta = box.minimumImage({9.0, -9.0, 4.0});
    EXPECT_DOUBLE_EQ(delta.x, -1.0);
    EXPECT_DOUBLE_EQ(delta.y, 1.0);
    EXPECT_DOUBLE_EQ(delta.z, 4.0);
}

TEST(Box, VolumeAndDilate)
{
    Box box({0, 0, 0}, {2, 3, 4});
    EXPECT_DOUBLE_EQ(box.volume(), 24.0);
    box.dilate(2.0);
    EXPECT_DOUBLE_EQ(box.volume(), 24.0 * 8.0);
    // Center is preserved.
    EXPECT_DOUBLE_EQ((box.lo().x + box.hi().x) / 2.0, 1.0);
}

TEST(Box, InvalidCornersThrow)
{
    EXPECT_THROW(Box({0, 0, 0}, {-1, 1, 1}), FatalError);
}

TEST(AtomStore, AddAndRemove)
{
    AtomStore atoms;
    atoms.setNumTypes(1);
    atoms.addAtom(1, 1, {0, 0, 0});
    atoms.addAtom(2, 1, {1, 0, 0});
    atoms.addAtom(3, 1, {2, 0, 0});
    EXPECT_EQ(atoms.nlocal(), 3u);
    atoms.removeAtom(0); // swaps tag 3 into slot 0
    EXPECT_EQ(atoms.nlocal(), 2u);
    EXPECT_EQ(atoms.tag[0], 3);
}

TEST(AtomStore, GhostsTrackOwners)
{
    AtomStore atoms;
    atoms.setNumTypes(1);
    atoms.addAtom(1, 1, {1, 2, 3});
    atoms.q[0] = -0.5;
    const std::size_t g = atoms.addGhost(0, {10, 0, 0});
    EXPECT_EQ(atoms.nghost(), 1u);
    EXPECT_DOUBLE_EQ(atoms.x[g].x, 11.0);
    EXPECT_DOUBLE_EQ(atoms.q[g], -0.5);
    EXPECT_EQ(atoms.tag[g], 1);
    EXPECT_EQ(atoms.ghostOf[g], 0);
    atoms.clearGhosts();
    EXPECT_EQ(atoms.nghost(), 0u);
}

TEST(AtomStore, GhostOfGhostResolvesToOwner)
{
    AtomStore atoms;
    atoms.setNumTypes(1);
    atoms.addAtom(1, 1, {0, 0, 0});
    const std::size_t g1 = atoms.addGhost(0, {10, 0, 0});
    const std::size_t g2 = atoms.addGhost(g1, {0, 10, 0});
    EXPECT_EQ(atoms.ghostOf[g2], 0);
}

TEST(Lattice, FccCountsAndDensity)
{
    Simulation sim;
    const double a = fccLatticeConstant(0.8442);
    const std::int64_t n = buildFcc(sim, 5, 5, 5, a);
    EXPECT_EQ(n, 4 * 125);
    EXPECT_EQ(sim.atoms.nlocal(), 500u);
    const double rho = n / sim.box.volume();
    EXPECT_NEAR(rho, 0.8442, 1e-10);
}

TEST(Lattice, PaperSizesAreFccCubes)
{
    // The paper's sizes 32k..2048k are 4 k^3 with k = 20, 40, 60, 80.
    EXPECT_EQ(4 * 20 * 20 * 20, 32000);
    EXPECT_EQ(4 * 40 * 40 * 40, 256000);
    EXPECT_EQ(4 * 60 * 60 * 60, 864000);
    EXPECT_EQ(4 * 80 * 80 * 80, 2048000);
}

TEST(Lattice, TagsAreUniqueAndDense)
{
    Simulation sim;
    buildFcc(sim, 3, 3, 3, 1.0);
    std::vector<bool> seen(sim.atoms.nlocal() + 1, false);
    for (std::size_t i = 0; i < sim.atoms.nlocal(); ++i) {
        const auto tag = sim.atoms.tag[i];
        ASSERT_GE(tag, 1);
        ASSERT_LE(tag, static_cast<std::int64_t>(sim.atoms.nlocal()));
        EXPECT_FALSE(seen[tag]);
        seen[tag] = true;
    }
}

TEST(Velocity, CreateHitsTargetTemperature)
{
    Simulation sim;
    buildFcc(sim, 4, 4, 4, fccLatticeConstant(0.8442));
    Rng rng(1234);
    createVelocities(sim, 1.44, rng);
    EXPECT_NEAR(sim.temperature(), 1.44, 1e-10);
}

TEST(Velocity, CreateZeroesMomentum)
{
    Simulation sim;
    buildFcc(sim, 4, 4, 4, 1.0);
    Rng rng(99);
    createVelocities(sim, 2.0, rng);
    Vec3 p{};
    for (std::size_t i = 0; i < sim.atoms.nlocal(); ++i)
        p += sim.atoms.v[i] * sim.atoms.massOf(i);
    EXPECT_NEAR(p.norm(), 0.0, 1e-10);
}

TEST(Topology, TagMapPrefersOwnedAtoms)
{
    Simulation sim;
    sim.atoms.setNumTypes(1);
    sim.atoms.addAtom(1, 1, {0, 0, 0});
    sim.atoms.addAtom(2, 1, {1, 0, 0});
    sim.atoms.addGhost(0, {10, 0, 0});
    sim.topology.buildTagMap(sim.atoms);
    EXPECT_EQ(sim.topology.indexOf(1), 0);
    EXPECT_EQ(sim.topology.indexOf(2), 1);
    EXPECT_EQ(sim.topology.indexOf(42), -1);
}

TEST(Topology, ExclusionsCoverBondsAndAngles)
{
    Topology topo;
    topo.bonds.push_back({1, 2, 1});
    topo.angles.push_back({3, 4, 5, 1});
    topo.buildExclusions();
    EXPECT_TRUE(topo.excluded(1, 2));
    EXPECT_TRUE(topo.excluded(2, 1));
    EXPECT_TRUE(topo.excluded(3, 4));
    EXPECT_TRUE(topo.excluded(4, 5));
    EXPECT_TRUE(topo.excluded(3, 5));
    EXPECT_FALSE(topo.excluded(1, 5));
}

} // namespace
} // namespace mdbench
