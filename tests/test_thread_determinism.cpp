/**
 * @file
 * Bitwise reproducibility of the threaded force/neighbor pipeline: the
 * same trajectory, forces, energies, and virials must come out of a run
 * at any thread count. This is the determinism contract of SliceRange +
 * ReduceScratch (see util/thread_pool.h) checked end-to-end through the
 * real kernels.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <functional>
#include <memory>
#include <tuple>
#include <vector>

#include "core/suite.h"
#include "md/neighbor.h"
#include "md/simulation.h"
#include "util/neigh_layout.h"
#include "util/thread_pool.h"

namespace mdbench {
namespace {

/** Everything a run can leak order-dependence into. */
struct RunResult
{
    std::vector<Vec3> forces;
    std::vector<Vec3> positions;
    double pairEnergy = 0.0;
    double pairVirial = 0.0;
    double potential = 0.0;
};

RunResult
runAt(int nthreads, const std::function<std::unique_ptr<Simulation>()> &build,
      long nsteps)
{
    ThreadPool::setThreads(nthreads);
    auto sim = build();
    sim->thermoEvery = 0;
    sim->setup();
    sim->run(nsteps);
    RunResult result;
    const std::size_t nlocal = sim->atoms.nlocal();
    result.forces.assign(sim->atoms.f.begin(),
                         sim->atoms.f.begin() + nlocal);
    result.positions.assign(sim->atoms.x.begin(),
                            sim->atoms.x.begin() + nlocal);
    result.pairEnergy = sim->pair->energy();
    result.pairVirial = sim->pair->virial();
    result.potential = sim->potentialEnergy();
    return result;
}

void
expectBitwiseReproducible(
    const std::function<std::unique_ptr<Simulation>()> &build, long nsteps)
{
    const int before = ThreadPool::threads();
    const RunResult reference = runAt(1, build, nsteps);
    for (int nthreads : {2, 4, 8}) {
        SCOPED_TRACE(nthreads);
        const RunResult run = runAt(nthreads, build, nsteps);
        // EXPECT_EQ on doubles is exact: any reordering of the floating
        // point sums shows up here.
        EXPECT_EQ(run.pairEnergy, reference.pairEnergy);
        EXPECT_EQ(run.pairVirial, reference.pairVirial);
        EXPECT_EQ(run.potential, reference.potential);
        ASSERT_EQ(run.forces.size(), reference.forces.size());
        for (std::size_t i = 0; i < reference.forces.size(); ++i) {
            EXPECT_EQ(run.forces[i].x, reference.forces[i].x) << i;
            EXPECT_EQ(run.forces[i].y, reference.forces[i].y) << i;
            EXPECT_EQ(run.forces[i].z, reference.forces[i].z) << i;
            EXPECT_EQ(run.positions[i].x, reference.positions[i].x) << i;
            EXPECT_EQ(run.positions[i].y, reference.positions[i].y) << i;
            EXPECT_EQ(run.positions[i].z, reference.positions[i].z) << i;
        }
    }
    ThreadPool::setThreads(before);
}

TEST(ThreadDeterminism, LJMeltIsBitwiseReproducible)
{
    expectBitwiseReproducible([] { return buildLJ(5); }, 25);
}

TEST(ThreadDeterminism, EamCopperIsBitwiseReproducible)
{
    expectBitwiseReproducible([] { return buildEAM(4); }, 25);
}

TEST(ThreadDeterminism, RhodoProxyIsBitwiseReproducible)
{
    // CHARMM LJ + Ewald-split coulomb + PPPM + SHAKE + NPT, the full
    // feature stack, over enough steps to cross a neighbor rebuild.
    expectBitwiseReproducible([] { return buildRhodoProxy(8); }, 10);
}

TEST(ThreadDeterminism, GranularFullListIsBitwiseReproducible)
{
    // Chute uses full lists (no reduction scratch): the direct-write
    // path must be just as reproducible.
    expectBitwiseReproducible([] { return buildChute(4, 4, 3); }, 25);
}

// The threaded k-space pipeline: make_rho's plane-slab scatter, the
// line-parallel FFTs, the poisson mode loop, and interp must all keep
// the trajectory bitwise identical at any thread count. The Rhodo proxy
// test above covers PPPM at the default 1e-4 threshold; these pin the
// denser-grid and Ewald paths explicitly.

TEST(ThreadDeterminism, PppmTightAccuracyIsBitwiseReproducible)
{
    // Tighter threshold -> denser mesh -> more FFT lines and plane
    // slabs than the default-accuracy proxy run exercises.
    expectBitwiseReproducible(
        [] {
            SuiteOptions options;
            options.kspaceAccuracy = 1e-6;
            return buildRhodoProxy(8, options);
        },
        5);
}

TEST(ThreadDeterminism, EwaldIsBitwiseReproducible)
{
    // The k-sliced structure-factor loop reduces every atom's force
    // over all k vectors through the shared ReduceScratch.
    expectBitwiseReproducible(
        [] {
            SuiteOptions options;
            options.useEwaldInsteadOfPppm = true;
            return buildRhodoProxy(8, options);
        },
        3);
}

// Spatial sorting recomputes the permutation serially from positions
// that are themselves bitwise-identical across thread counts, so a
// sorted run must stay exactly as reproducible as an unsorted one.

TEST(ThreadDeterminism, LJMeltWithEnvSortingIsBitwiseReproducible)
{
    setenv("MDBENCH_SORT_EVERY", "5", 1);
    expectBitwiseReproducible([] { return buildLJ(5); }, 80);
    unsetenv("MDBENCH_SORT_EVERY");
}

TEST(ThreadDeterminism, LJMeltWithFrequentSortingIsBitwiseReproducible)
{
    expectBitwiseReproducible(
        [] {
            auto sim = buildLJ(5);
            sim->setSortEvery(1);
            return sim;
        },
        50);
}

TEST(ThreadDeterminism, GranularWithSortingIsBitwiseReproducible)
{
    // Shear-history contacts are keyed by tag pairs and must survive
    // the reorder.
    expectBitwiseReproducible(
        [] {
            auto sim = buildChute(4, 4, 3);
            sim->setSortEvery(1);
            return sim;
        },
        25);
}

TEST(ThreadDeterminism, RhodoProxyWithSortingIsBitwiseReproducible)
{
    // SHAKE clusters, PPPM charge maps, and NPT all see reordered atoms.
    expectBitwiseReproducible(
        [] {
            auto sim = buildRhodoProxy(8);
            sim->setSortEvery(1);
            return sim;
        },
        10);
}

// The vectorized neighbor build threads both the counting sort and the
// candidate filter; the lists it emits (plain CSR and the packing) must
// be bitwise identical at any thread count, including oversubscribed
// ones where slice boundaries land in odd places.

TEST(ThreadDeterminism, VectorizedNeighborBuildListsAreThreadInvariant)
{
    const int before = ThreadPool::threads();
    auto listsAt = [](int nthreads) {
        ThreadPool::setThreads(nthreads);
        auto sim = buildLJ(6);
        sim->thermoEvery = 0;
        sim->setup();
        const NeighborList &list = sim->neighbor.list();
        return std::make_tuple(list.offsets, list.neighbors,
                               list.packedOffsets, list.packedNeighbors);
    };
    const auto reference = listsAt(1);
    for (int nthreads : {2, 4, 8, 16}) {
        SCOPED_TRACE(nthreads);
        EXPECT_EQ(listsAt(nthreads), reference);
    }
    ThreadPool::setThreads(before);
}

TEST(ThreadDeterminism, LJMeltClusterLayoutIsBitwiseReproducible)
{
    // The cluster-pair kernel writes forces to the i side only, so its
    // determinism rests purely on the slice partition of i-clusters.
    setNeighLayout(1);
    expectBitwiseReproducible([] { return buildLJ(5); }, 25);
    setNeighLayout(-1);
}

} // namespace
} // namespace mdbench
