/**
 * @file
 * Decomposition + simulated-MPI correctness: rank grids, migration and
 * halo exchange, trajectory equivalence against serial runs, and the
 * MPI accounting the paper's Figures 4/5 are built from.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "forcefield/bond_styles.h"
#include "forcefield/pair_lj_cut.h"
#include "md/fix_nve.h"
#include "md/lattice.h"
#include "md/simulation.h"
#include "md/velocity.h"
#include "parallel/decomp.h"
#include "parallel/mpi_model.h"
#include "parallel/ranked_sim.h"
#include "util/error.h"
#include "util/rng.h"

namespace mdbench {
namespace {

/** Serial LJ melt used as the reference workload. */
void
buildMelt(Simulation &sim, int cells, std::uint64_t seed)
{
    buildFcc(sim, cells, cells, cells, fccLatticeConstant(0.8442));
    sim.dt = 0.005;
    sim.thermoEvery = 0;
    Rng rng(seed);
    createVelocities(sim, 1.44, rng);
}

void
configureLJ(Simulation &sim)
{
    auto pair = std::make_unique<PairLJCut>(1, 2.5);
    pair->setCoeff(1, 1, 1.0, 1.0);
    sim.pair = std::move(pair);
    sim.neighbor.skin = 0.3;
    sim.addFix<FixNVE>();
}

TEST(Decomposition, FactorsMinimizeSurface)
{
    Box cube({0, 0, 0}, {10, 10, 10});
    const Decomposition d8(8, cube);
    EXPECT_EQ(d8.grid()[0] * d8.grid()[1] * d8.grid()[2], 8);
    EXPECT_EQ(d8.grid()[0], 2);
    EXPECT_EQ(d8.grid()[1], 2);
    EXPECT_EQ(d8.grid()[2], 2);

    // An elongated box should be cut along its long axis.
    Box slab({0, 0, 0}, {40, 10, 10});
    const Decomposition d4(4, slab);
    EXPECT_EQ(d4.grid()[0], 4);
}

TEST(Decomposition, RankCellRoundTrip)
{
    Box cube({0, 0, 0}, {10, 10, 10});
    const Decomposition decomp(12, cube);
    for (int r = 0; r < 12; ++r) {
        const auto cell = decomp.cellOf(r);
        EXPECT_EQ(decomp.rankOf(cell[0], cell[1], cell[2]), r);
    }
}

TEST(Decomposition, OwnerMatchesBounds)
{
    Box cube({0, 0, 0}, {12, 12, 12});
    const Decomposition decomp(8, cube);
    Rng rng(5);
    for (int i = 0; i < 500; ++i) {
        const Vec3 pos{rng.uniform(0, 12), rng.uniform(0, 12),
                       rng.uniform(0, 12)};
        const int owner = decomp.ownerOf(pos);
        Vec3 lo;
        Vec3 hi;
        decomp.bounds(owner, lo, hi);
        EXPECT_GE(pos.x, lo.x - 1e-12);
        EXPECT_LT(pos.x, hi.x + 1e-12);
        EXPECT_GE(pos.y, lo.y - 1e-12);
        EXPECT_LT(pos.y, hi.y + 1e-12);
    }
}

TEST(Decomposition, GhostFractionShrinksWithSize)
{
    Box small({0, 0, 0}, {20, 20, 20});
    Box large({0, 0, 0}, {80, 80, 80});
    const Decomposition dSmall(8, small);
    const Decomposition dLarge(8, large);
    // Bigger subdomains -> smaller surface-to-volume comm share, the
    // Section 5.1 argument for why larger systems scale better.
    EXPECT_LT(dLarge.ghostFraction(2.8), dSmall.ghostFraction(2.8));
}

TEST(MpiModel, FunctionNames)
{
    EXPECT_STREQ(mpiFunctionName(MpiFunction::Init), "MPI_Init");
    EXPECT_STREQ(mpiFunctionName(MpiFunction::Allreduce), "MPI_Allreduce");
    EXPECT_STREQ(mpiFunctionName(MpiFunction::Others), "others");
}

TEST(MpiModel, TimesScaleSensibly)
{
    MpiMachineModel machine;
    EXPECT_GT(machine.sendTime(1 << 20), machine.sendTime(64));
    EXPECT_GT(machine.allreduceTime(8, 64), machine.allreduceTime(8, 4));
    EXPECT_DOUBLE_EQ(machine.allreduceTime(8, 1), 0.0);
    // MPI_Init grows with rank count (paper Section 5.1).
    EXPECT_GT(machine.initTime(64), machine.initTime(4));
}

TEST(MpiStats, AccountingAndFractions)
{
    MpiStats stats(2);
    stats.add(0, MpiFunction::Send, 1.0);
    stats.add(1, MpiFunction::Send, 3.0);
    stats.add(1, MpiFunction::Wait, 2.0);
    EXPECT_DOUBLE_EQ(stats.rankTotal(1), 5.0);
    EXPECT_DOUBLE_EQ(stats.meanTotal(), 3.0);
    EXPECT_DOUBLE_EQ(stats.meanFunction(MpiFunction::Send), 2.0);
    EXPECT_NEAR(stats.functionFraction(MpiFunction::Send), 2.0 / 3.0,
                1e-12);
}

class RankedEquivalence : public ::testing::TestWithParam<int>
{};

TEST_P(RankedEquivalence, MatchesSerialTrajectory)
{
    const int nranks = GetParam();
    const long steps = 25;

    // Serial reference.
    Simulation serial;
    buildMelt(serial, 5, 42);
    configureLJ(serial);
    serial.setup();
    serial.run(steps);

    // Ranked run from the identical initial state.
    Simulation global;
    buildMelt(global, 5, 42);
    RankedSimulation ranked(global, nranks, configureLJ);
    ranked.setup();
    ranked.run(steps);

    ASSERT_EQ(ranked.totalAtoms(), serial.atoms.nlocal());
    Simulation gathered;
    ranked.gather(gathered);

    // Sort serial by tag for comparison.
    std::vector<std::pair<std::int64_t, Vec3>> serialPos;
    for (std::size_t i = 0; i < serial.atoms.nlocal(); ++i)
        serialPos.push_back({serial.atoms.tag[i],
                             serial.box.wrap(serial.atoms.x[i])});
    std::sort(serialPos.begin(), serialPos.end(),
              [](const auto &a, const auto &b) { return a.first < b.first; });

    double worst = 0.0;
    for (std::size_t i = 0; i < gathered.atoms.nlocal(); ++i) {
        ASSERT_EQ(gathered.atoms.tag[i], serialPos[i].first);
        const Vec3 delta = serial.box.minimumImage(
            gathered.box.wrap(gathered.atoms.x[i]) - serialPos[i].second);
        worst = std::max(worst, delta.norm());
    }
    // Same physics, different summation order: tiny divergence only.
    EXPECT_LT(worst, 1e-7) << nranks << " ranks";
}

INSTANTIATE_TEST_SUITE_P(RankCounts, RankedEquivalence,
                         ::testing::Values(2, 4, 8));

TEST(Ranked, AtomCountConservedUnderMigration)
{
    Simulation global;
    buildMelt(global, 5, 7);
    const std::size_t n = global.atoms.nlocal();
    RankedSimulation ranked(global, 8, configureLJ);
    ranked.setup();
    ranked.run(120); // long enough for many migrations
    EXPECT_EQ(ranked.totalAtoms(), n);
}

TEST(Ranked, EnergyConserved)
{
    Simulation global;
    buildMelt(global, 5, 11);
    RankedSimulation ranked(global, 4, configureLJ);
    ranked.setup();

    auto totalEnergy = [&]() {
        double energy = 0.0;
        for (int r = 0; r < ranked.nranks(); ++r) {
            energy += ranked.rank(r).kineticEnergy();
            energy += ranked.rank(r).pair->energy();
        }
        return energy;
    };
    const double e0 = totalEnergy();
    ranked.run(300);
    EXPECT_NEAR(totalEnergy(), e0, 3e-3 * std::fabs(e0));
}

TEST(Ranked, MpiStatsPopulated)
{
    Simulation global;
    buildMelt(global, 4, 3);
    RankedSimulation ranked(global, 4, configureLJ);
    ranked.setup();
    ranked.run(30);
    const MpiStats &stats = ranked.mpiStats();
    EXPECT_GT(stats.meanFunction(MpiFunction::Init), 0.0);
    if (ranked.commOverlap()) {
        // Overlapped halos post nonblocking sends; the blocking Send
        // path never runs outside reneighbor-step border rebuilds.
        EXPECT_GT(stats.meanFunction(MpiFunction::Isend), 0.0);
        EXPECT_GT(stats.meanFunction(MpiFunction::Irecv), 0.0);
    } else {
        EXPECT_GT(stats.meanFunction(MpiFunction::Send), 0.0);
    }
    EXPECT_GT(stats.meanFunction(MpiFunction::Sendrecv), 0.0);
    EXPECT_GT(stats.meanFunction(MpiFunction::Allreduce), 0.0);
    EXPECT_GT(ranked.commBytes(), 0u);
    EXPECT_GT(ranked.virtualTime(), 0.0);
}

TEST(Ranked, BondedChainMatchesSerial)
{
    // A few short FENE chains exercised across subdomain boundaries.
    auto buildChains = [](Simulation &sim) {
        sim.box = Box({0, 0, 0}, {12, 12, 12});
        sim.atoms.setNumTypes(1);
        std::int64_t tag = 1;
        Rng rng(17);
        for (int c = 0; c < 12; ++c) {
            Vec3 pos{rng.uniform(1, 11), rng.uniform(1, 11),
                     rng.uniform(1, 11)};
            for (int m = 0; m < 8; ++m) {
                sim.atoms.addAtom(tag, 1, pos);
                if (m > 0)
                    sim.topology.bonds.push_back({tag - 1, tag, 1});
                ++tag;
                pos += Vec3{0.97, 0, 0};
            }
        }
        sim.dt = 0.004;
        sim.thermoEvery = 0;
        Rng vrng(23);
        createVelocities(sim, 0.8, vrng);
    };
    auto configureChain = [](Simulation &sim) {
        auto pair = std::make_unique<PairLJCut>(
            1, std::pow(2.0, 1.0 / 6.0), true);
        pair->setCoeff(1, 1, 1.0, 1.0);
        sim.pair = std::move(pair);
        sim.bondStyle = std::make_unique<BondFENE>();
        sim.neighbor.skin = 0.4;
        sim.addFix<FixNVE>();
    };

    Simulation serial;
    buildChains(serial);
    configureChain(serial);
    serial.setup();
    serial.run(20);

    Simulation global;
    buildChains(global);
    RankedSimulation ranked(global, 4, configureChain);
    ranked.setup();
    ranked.run(20);

    Simulation gathered;
    ranked.gather(gathered);
    std::vector<std::pair<std::int64_t, Vec3>> serialPos;
    for (std::size_t i = 0; i < serial.atoms.nlocal(); ++i)
        serialPos.push_back({serial.atoms.tag[i],
                             serial.box.wrap(serial.atoms.x[i])});
    std::sort(serialPos.begin(), serialPos.end(),
              [](const auto &a, const auto &b) { return a.first < b.first; });
    for (std::size_t i = 0; i < gathered.atoms.nlocal(); ++i) {
        const Vec3 delta = serial.box.minimumImage(
            gathered.box.wrap(gathered.atoms.x[i]) - serialPos[i].second);
        EXPECT_LT(delta.norm(), 1e-7) << "tag " << gathered.atoms.tag[i];
    }
}

TEST(Ranked, KspaceRejected)
{
    Simulation global;
    buildMelt(global, 4, 1);
    global.kspace = nullptr; // fine
    // SHAKE clusters rejected:
    global.topology.shakeClusters.push_back({});
    EXPECT_THROW(RankedSimulation(global, 2, configureLJ), FatalError);
}

} // namespace
} // namespace mdbench
