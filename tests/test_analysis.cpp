/**
 * @file
 * Analysis + dump tests: RDF peaks on known lattices, MSD properties
 * (zero for static systems, growth in a melt, solid vs liquid), and
 * extended-XYZ output format.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <sstream>

#include "core/suite.h"
#include "md/analysis.h"
#include "md/dump.h"
#include "md/fix_nve.h"
#include "md/lattice.h"
#include "md/simulation.h"
#include "md/velocity.h"
#include "forcefield/pair_lj_cut.h"
#include "util/error.h"
#include "util/rng.h"

namespace mdbench {
namespace {

Simulation
staticFcc(double a, double cutoff)
{
    Simulation sim;
    buildFcc(sim, 5, 5, 5, a);
    auto pair = std::make_unique<PairLJCut>(1, cutoff);
    pair->setCoeff(1, 1, 1.0, 1.0);
    sim.pair = std::move(pair);
    sim.neighbor.skin = 0.3;
    sim.thermoEvery = 0;
    sim.setup();
    return sim;
}

TEST(Rdf, FccFirstShellPeak)
{
    // fcc nearest-neighbor distance is a / sqrt(2).
    const double a = 1.6;
    Simulation sim = staticFcc(a, 2.5);
    const Rdf rdf = computeRdf(sim, 2.5, 125);
    EXPECT_NEAR(rdf.peakPosition(), a / std::sqrt(2.0), 0.03);
}

TEST(Rdf, NoPairsBelowFirstShell)
{
    Simulation sim = staticFcc(1.6, 2.5);
    const Rdf rdf = computeRdf(sim, 2.5, 100);
    // g(r) is exactly zero well inside the first shell.
    for (std::size_t b = 0; rdf.r(b) < 1.0; ++b)
        EXPECT_DOUBLE_EQ(rdf.g[b], 0.0) << b;
}

TEST(Rdf, LiquidTendsToOneAtLargeR)
{
    // After melting, g(r) approaches 1 near the cutoff.
    auto sim = buildLJ(6);
    sim->thermoEvery = 0;
    sim->setup();
    sim->run(400);
    const Rdf rdf = computeRdf(*sim, 2.7, 90);
    double tail = 0.0;
    int count = 0;
    for (std::size_t b = 0; b < rdf.g.size(); ++b) {
        if (rdf.r(b) > 2.2) {
            tail += rdf.g[b];
            ++count;
        }
    }
    EXPECT_NEAR(tail / count, 1.0, 0.15);
}

TEST(Rdf, RangeBeyondListThrows)
{
    Simulation sim = staticFcc(1.6, 2.5);
    EXPECT_THROW(computeRdf(sim, 5.0), FatalError);
}

TEST(Msd, ZeroForStaticSystem)
{
    Simulation sim = staticFcc(1.6, 2.5);
    MsdTracker tracker(sim);
    EXPECT_DOUBLE_EQ(tracker.sample(sim), 0.0);
}

TEST(Msd, GrowsInAMelt)
{
    auto sim = buildLJ(5);
    sim->thermoEvery = 0;
    sim->setup();
    MsdTracker tracker(*sim);
    sim->run(100);
    const double early = tracker.sample(*sim);
    sim->run(400);
    const double late = tracker.sample(*sim);
    EXPECT_GT(early, 0.0);
    // The melt cools as potential energy is released, so diffusion is
    // slow; still, displacement must keep accumulating.
    EXPECT_GT(late, 1.3 * early);
}

TEST(Msd, SolidStaysCaged)
{
    // The EAM copper solid at 800 K: atoms vibrate but do not diffuse,
    // so the MSD stays below a fraction of the nn distance squared.
    auto sim = buildEAM(4);
    sim->thermoEvery = 0;
    sim->setup();
    MsdTracker tracker(*sim);
    sim->run(150);
    const double msd = tracker.sample(*sim);
    const double nnSq = std::pow(3.615 / std::sqrt(2.0), 2);
    EXPECT_LT(msd, 0.25 * nnSq);
    EXPECT_GT(msd, 0.0);
}

TEST(Msd, SurvivesBoxWrap)
{
    // A single free atom drifting across the periodic boundary must
    // accumulate true displacement, not the wrapped coordinate jump.
    Simulation sim;
    sim.box = Box({0, 0, 0}, {10, 10, 10});
    sim.atoms.setNumTypes(1);
    sim.atoms.addAtom(1, 1, {9.5, 5, 5});
    sim.atoms.v[0] = {1.0, 0, 0};
    auto pair = std::make_unique<PairLJCut>(1, 2.0);
    pair->setCoeff(1, 1, 0.0, 1.0); // non-interacting
    sim.pair = std::move(pair);
    sim.neighbor.skin = 0.5;
    sim.dt = 0.01;
    sim.thermoEvery = 0;
    sim.addFix<FixNVE>();
    sim.setup();
    MsdTracker tracker(sim);
    for (int i = 0; i < 20; ++i) {
        sim.run(25); // 0.25 distance units per block
        tracker.sample(sim);
    }
    // Total drift 5.0 -> MSD 25, straight through the boundary.
    EXPECT_NEAR(tracker.value(), 25.0, 0.5);
}

TEST(Dump, XyzFrameFormat)
{
    Simulation sim = staticFcc(1.6, 2.5);
    std::ostringstream os;
    writeXyzFrame(os, sim);
    std::istringstream is(os.str());
    std::string line;
    std::getline(is, line);
    EXPECT_EQ(line, "500");
    std::getline(is, line);
    EXPECT_NE(line.find("Lattice="), std::string::npos);
    EXPECT_NE(line.find("step=0"), std::string::npos);
    std::getline(is, line);
    EXPECT_EQ(line.rfind("T1 ", 0), 0u);
    // Count atom lines.
    int count = 1;
    while (std::getline(is, line))
        if (!line.empty())
            ++count;
    EXPECT_EQ(count, 500);
}

TEST(Dump, AppendsFrames)
{
    Simulation sim = staticFcc(1.6, 2.5);
    const std::string path = "/tmp/mdbench_dump_test.xyz";
    XyzDump dump(path);
    EXPECT_EQ(dump.write(sim), 1);
    EXPECT_EQ(dump.write(sim), 2);
    std::ifstream file(path);
    std::string first;
    std::getline(file, first);
    EXPECT_EQ(first, "500");
    int lines = 1;
    std::string line;
    while (std::getline(file, line))
        ++lines;
    EXPECT_EQ(lines, 2 * (500 + 2));
}

} // namespace
} // namespace mdbench
