/**
 * @file
 * Tests of the shared-memory execution layer: SliceRange partition
 * invariants, ThreadPool::parallelFor semantics (coverage, exceptions,
 * nesting), and the deterministic ReduceScratch fold.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "util/thread_pool.h"

namespace mdbench {
namespace {

TEST(SliceRange, CoversRangeWithDisjointOrderedSlices)
{
    const SliceRange slices(10, 1010, 64);
    ASSERT_GT(slices.count(), 1);
    ASSERT_LE(slices.count(), SliceRange::kMaxSlices);
    EXPECT_EQ(slices.begin(0), 10u);
    EXPECT_EQ(slices.end(slices.count() - 1), 1010u);
    for (int s = 0; s + 1 < slices.count(); ++s) {
        EXPECT_EQ(slices.end(s), slices.begin(s + 1));
        EXPECT_GE(slices.end(s) - slices.begin(s), 64u);
    }
}

TEST(SliceRange, PartitionIsPureFunctionOfRangeAndGrain)
{
    // The determinism contract: the partition must not depend on any
    // global state (thread count in particular).
    const SliceRange a(0, 5000, 128);
    ThreadPool::setThreads(4);
    const SliceRange b(0, 5000, 128);
    ThreadPool::setThreads(1);
    ASSERT_EQ(a.count(), b.count());
    for (int s = 0; s < a.count(); ++s) {
        EXPECT_EQ(a.begin(s), b.begin(s));
        EXPECT_EQ(a.end(s), b.end(s));
    }
}

TEST(SliceRange, EmptyRangeHasNoSlices)
{
    const SliceRange slices(42, 42, 16);
    EXPECT_EQ(slices.count(), 0);
}

TEST(SliceRange, GrainLargerThanRangeYieldsSingleSlice)
{
    const SliceRange slices(0, 10, 1000);
    ASSERT_EQ(slices.count(), 1);
    EXPECT_EQ(slices.begin(0), 0u);
    EXPECT_EQ(slices.end(0), 10u);
}

TEST(ThreadPool, ParallelForVisitsEveryIndexOnce)
{
    ThreadPool pool(4);
    std::vector<std::atomic<int>> visits(997);
    pool.parallelFor(0, visits.size(), 32,
                     [&](std::size_t begin, std::size_t end, int) {
                         for (std::size_t i = begin; i < end; ++i)
                             visits[i].fetch_add(1);
                     });
    for (std::size_t i = 0; i < visits.size(); ++i)
        EXPECT_EQ(visits[i].load(), 1) << i;
}

TEST(ThreadPool, ParallelForOnEmptyRangeNeverCalls)
{
    ThreadPool pool(2);
    bool called = false;
    pool.parallelFor(7, 7, 1,
                     [&](std::size_t, std::size_t, int) { called = true; });
    EXPECT_FALSE(called);
}

TEST(ThreadPool, ExceptionPropagatesToCaller)
{
    ThreadPool pool(4);
    auto boom = [&] {
        pool.parallelFor(0, 1000, 10,
                         [&](std::size_t begin, std::size_t, int) {
                             if (begin == 0)
                                 throw std::runtime_error("slice failed");
                         });
    };
    EXPECT_THROW(boom(), std::runtime_error);
    // The pool must stay usable after an exception.
    std::atomic<int> sum{0};
    pool.parallelFor(0, 100, 10,
                     [&](std::size_t begin, std::size_t end, int) {
                         sum += static_cast<int>(end - begin);
                     });
    EXPECT_EQ(sum.load(), 100);
}

TEST(ThreadPool, NestedParallelForRunsInline)
{
    ThreadPool pool(4);
    std::atomic<int> inner{0};
    pool.parallelFor(0, 4, 1, [&](std::size_t, std::size_t, int) {
        pool.parallelFor(0, 8, 1, [&](std::size_t begin, std::size_t end,
                                      int) {
            inner += static_cast<int>(end - begin);
        });
    });
    EXPECT_EQ(inner.load(), 32);
}

TEST(ThreadPool, GlobalSetThreadsResizes)
{
    const int before = ThreadPool::threads();
    ThreadPool::setThreads(3);
    EXPECT_EQ(ThreadPool::threads(), 3);
    ThreadPool::setThreads(1);
    EXPECT_EQ(ThreadPool::threads(), 1);
    ThreadPool::setThreads(before);
}

TEST(ReduceScratch, SerialAndParallelFoldsAreBitwiseIdentical)
{
    // A synthetic scattered accumulation with values chosen so that
    // different summation orders would round differently.
    const std::size_t n = 1000;
    const SliceRange slices(0, n, 100);
    auto accumulate = [&](ThreadPool &pool, std::vector<double> &dst) {
        ReduceScratch<double> scratch;
        scratch.runAndReduce(
            pool, slices, n, dst.data(),
            [&](std::size_t begin, std::size_t end, int, int buffer) {
                auto acc = scratch.acc(buffer);
                for (std::size_t i = begin; i < end; ++i) {
                    acc.at(i) += 0.1 * static_cast<double>(i + 1);
                    // Scatter across slice boundaries like the j-side
                    // of a half neighbor list does.
                    acc.at((i * 7 + 13) % n) += 1.0 / (i + 3.0);
                    acc.at((i + n / 2) % n) -= 1e-7 * i;
                }
            });
    };
    ThreadPool serial(1);
    std::vector<double> expected(n, 0.5);
    accumulate(serial, expected);
    for (int nthreads : {2, 4, 8}) {
        ThreadPool pool(nthreads);
        std::vector<double> got(n, 0.5);
        accumulate(pool, got);
        ASSERT_EQ(got, expected) << nthreads << " threads";
    }
}

TEST(ReduceScratch, BuffersAreCleanAcrossCalls)
{
    const std::size_t n = 300;
    const SliceRange slices(0, n, 64);
    ThreadPool pool(4);
    ReduceScratch<double> scratch;
    for (int repeat = 0; repeat < 3; ++repeat) {
        std::vector<double> dst(n, 0.0);
        scratch.runAndReduce(
            pool, slices, n, dst.data(),
            [&](std::size_t begin, std::size_t end, int, int buffer) {
                auto acc = scratch.acc(buffer);
                for (std::size_t i = begin; i < end; ++i)
                    acc.at(i) += 2.0;
            });
        const double total = std::accumulate(dst.begin(), dst.end(), 0.0);
        EXPECT_DOUBLE_EQ(total, 2.0 * n) << repeat;
    }
}

} // namespace
} // namespace mdbench
