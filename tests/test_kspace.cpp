/**
 * @file
 * Long-range solver correctness: Ewald against the known NaCl Madelung
 * constant, PPPM against Ewald, and the error-threshold -> grid-size
 * planning that drives the paper's Section 7 sensitivity study.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "forcefield/pair_lj_charmm_coul_long.h"
#include "kspace/ewald.h"
#include "kspace/plan.h"
#include "kspace/pppm.h"
#include "md/lattice.h"
#include "md/fix_nve.h"
#include "md/simulation.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace mdbench {
namespace {

/**
 * Rocksalt (NaCl) lattice of 2*n^3 ions with nearest-neighbor spacing d,
 * charges +-1, LJ disabled (pure Coulomb).
 */
void
buildRocksalt(Simulation &sim, int n, double d)
{
    const double a = 2.0 * d;
    sim.box = Box({0, 0, 0}, {n * a, n * a, n * a});
    sim.atoms.setNumTypes(2);
    std::int64_t tag = 1;
    for (int iz = 0; iz < 2 * n; ++iz)
        for (int iy = 0; iy < 2 * n; ++iy)
            for (int ix = 0; ix < 2 * n; ++ix) {
                const int sign = (ix + iy + iz) % 2 == 0 ? 1 : -1;
                const std::size_t idx = sim.atoms.addAtom(
                    tag++, sign > 0 ? 1 : 2,
                    {ix * d, iy * d, iz * d});
                sim.atoms.q[idx] = sign;
            }
}

/** Neutral random charge cloud for solver cross-checks. */
void
buildRandomCharges(Simulation &sim, int nPairs, double length,
                   std::uint64_t seed)
{
    sim.box = Box({0, 0, 0}, {length, length, length});
    sim.atoms.setNumTypes(2);
    Rng rng(seed);
    std::int64_t tag = 1;
    for (int i = 0; i < nPairs; ++i) {
        for (int sign : {1, -1}) {
            const std::size_t idx = sim.atoms.addAtom(
                tag++, sign > 0 ? 1 : 2,
                {rng.uniform(0, length), rng.uniform(0, length),
                 rng.uniform(0, length)});
            sim.atoms.q[idx] = sign;
        }
    }
}

/** Attach a Coulomb-only pair style (epsilon = 0 LJ). */
void
attachCoulombPair(Simulation &sim, double cutoff)
{
    auto pair = std::make_unique<PairLJCharmmCoulLong>(2, 0.9 * cutoff,
                                                       0.95 * cutoff,
                                                       cutoff);
    pair->setCoeff(1, 0.0, 1.0);
    pair->setCoeff(2, 0.0, 1.0);
    sim.pair = std::move(pair);
}

TEST(Ewald, NaClMadelungEnergy)
{
    Simulation sim;
    const double d = 1.0;
    buildRocksalt(sim, 3, d); // (2n)^3 = 216 ions, box side 6d
    attachCoulombPair(sim, 2.7);
    sim.kspace = std::make_unique<Ewald>(1e-5);
    sim.neighbor.skin = 0.1;
    sim.setup();

    const double perIon = sim.potentialEnergy() /
                          static_cast<double>(sim.atoms.nlocal());
    // Madelung: E/ion = -1.7475646 q^2 / (2 d) ... energy per ion is
    // -M/2 per ion when counting each pair once; the standard lattice
    // energy is -M q^2 / d per *ion pair*, i.e. -M/(2d) per ion.
    EXPECT_NEAR(perIon, -1.7475646 / (2.0 * d), 2e-3);
}

TEST(Ewald, ForcesVanishOnPerfectLattice)
{
    Simulation sim;
    buildRocksalt(sim, 3, 1.0);
    attachCoulombPair(sim, 2.7);
    sim.kspace = std::make_unique<Ewald>(1e-5);
    sim.neighbor.skin = 0.1;
    sim.setup();
    for (std::size_t i = 0; i < sim.atoms.nlocal(); ++i)
        EXPECT_NEAR(sim.atoms.f[i].norm(), 0.0, 1e-3) << i;
}

TEST(Ewald, EnergyIndependentOfCutoffSplit)
{
    // The erfc/real + kspace split must sum to the same total for
    // different real-space cutoffs (the g parameter follows the cutoff).
    double energies[2];
    int idx = 0;
    for (double cutoff : {2.0, 2.7}) {
        Simulation sim;
        buildRocksalt(sim, 3, 1.0);
        attachCoulombPair(sim, cutoff);
        sim.kspace = std::make_unique<Ewald>(1e-6);
        sim.neighbor.skin = 0.1;
        sim.setup();
        energies[idx++] = sim.potentialEnergy();
    }
    EXPECT_NEAR(energies[0], energies[1],
                2e-4 * std::fabs(energies[0]));
}

TEST(Pppm, MatchesEwaldEnergy)
{
    double ewaldEnergy = 0.0;
    double pppmEnergy = 0.0;
    for (int pass = 0; pass < 2; ++pass) {
        Simulation sim;
        buildRandomCharges(sim, 40, 9.0, 2718);
        attachCoulombPair(sim, 3.5);
        if (pass == 0)
            sim.kspace = std::make_unique<Ewald>(1e-5);
        else
            sim.kspace = std::make_unique<Pppm>(1e-5);
        sim.neighbor.skin = 0.2;
        sim.setup();
        (pass == 0 ? ewaldEnergy : pppmEnergy) = sim.potentialEnergy();
    }
    EXPECT_NEAR(pppmEnergy, ewaldEnergy, 2e-3 * std::fabs(ewaldEnergy));
}

TEST(Pppm, MatchesEwaldForces)
{
    std::vector<Vec3> ewaldForces;
    std::vector<Vec3> pppmForces;
    double fScale = 0.0;
    for (int pass = 0; pass < 2; ++pass) {
        Simulation sim;
        buildRandomCharges(sim, 40, 9.0, 31415);
        attachCoulombPair(sim, 3.5);
        if (pass == 0)
            sim.kspace = std::make_unique<Ewald>(1e-5);
        else
            sim.kspace = std::make_unique<Pppm>(1e-5);
        sim.neighbor.skin = 0.2;
        sim.setup();
        auto &dst = pass == 0 ? ewaldForces : pppmForces;
        dst.assign(sim.atoms.f.begin(),
                   sim.atoms.f.begin() + sim.atoms.nlocal());
        if (pass == 0) {
            double sum = 0.0;
            for (const auto &f : dst)
                sum += f.normSq();
            fScale = std::sqrt(sum / dst.size());
        }
    }
    ASSERT_EQ(ewaldForces.size(), pppmForces.size());
    for (std::size_t i = 0; i < ewaldForces.size(); ++i) {
        EXPECT_NEAR((ewaldForces[i] - pppmForces[i]).norm() / fScale, 0.0,
                    2e-2)
            << "atom " << i;
    }
}

TEST(Pppm, TighterThresholdReducesActualError)
{
    // Reference forces from a tight Ewald run.
    std::vector<Vec3> reference;
    {
        Simulation sim;
        buildRandomCharges(sim, 30, 8.0, 999);
        attachCoulombPair(sim, 3.2);
        sim.kspace = std::make_unique<Ewald>(1e-7);
        sim.neighbor.skin = 0.2;
        sim.setup();
        reference.assign(sim.atoms.f.begin(),
                         sim.atoms.f.begin() + sim.atoms.nlocal());
    }
    double rms[2];
    int idx = 0;
    for (double accuracy : {1e-3, 1e-6}) {
        Simulation sim;
        buildRandomCharges(sim, 30, 8.0, 999);
        attachCoulombPair(sim, 3.2);
        sim.kspace = std::make_unique<Pppm>(accuracy);
        sim.neighbor.skin = 0.2;
        sim.setup();
        double sum = 0.0;
        for (std::size_t i = 0; i < reference.size(); ++i)
            sum += (sim.atoms.f[i] - reference[i]).normSq();
        rms[idx++] = std::sqrt(sum / reference.size());
    }
    EXPECT_LT(rms[1], rms[0]);
}

/**
 * Solver-level determinism probe (finer-grained than the end-to-end
 * trajectory checks in test_thread_determinism.cpp): one setup() —
 * pair + kspace compute — per thread count, forces compared bitwise.
 */
void
expectSolverForcesThreadInvariant(bool usePppm)
{
    const int before = ThreadPool::threads();
    std::vector<Vec3> reference;
    for (int nthreads : {1, 2, 4, 8}) {
        SCOPED_TRACE(nthreads);
        ThreadPool::setThreads(nthreads);
        Simulation sim;
        buildRandomCharges(sim, 40, 9.0, 5150);
        attachCoulombPair(sim, 3.5);
        if (usePppm)
            sim.kspace = std::make_unique<Pppm>(1e-5);
        else
            sim.kspace = std::make_unique<Ewald>(1e-5);
        sim.neighbor.skin = 0.2;
        sim.setup();
        if (nthreads == 1) {
            reference.assign(sim.atoms.f.begin(),
                             sim.atoms.f.begin() + sim.atoms.nlocal());
            continue;
        }
        ASSERT_EQ(sim.atoms.nlocal(), reference.size());
        for (std::size_t i = 0; i < reference.size(); ++i) {
            EXPECT_EQ(sim.atoms.f[i].x, reference[i].x) << i;
            EXPECT_EQ(sim.atoms.f[i].y, reference[i].y) << i;
            EXPECT_EQ(sim.atoms.f[i].z, reference[i].z) << i;
        }
    }
    ThreadPool::setThreads(before);
}

TEST(Pppm, ForcesAreThreadCountInvariant)
{
    expectSolverForcesThreadInvariant(true);
}

TEST(Ewald, ForcesAreThreadCountInvariant)
{
    expectSolverForcesThreadInvariant(false);
}

TEST(KspacePlan, GridGrowsWithTighterThreshold)
{
    // The mechanism behind the paper's Figures 10-14: lowering the error
    // threshold inflates the PPPM mesh (more FFT work + communication).
    KspaceProblem problem;
    problem.boxLength = {55.0, 55.0, 55.0};
    problem.natoms = 32000;
    problem.qSqSum = 32000 * 0.5;
    problem.qqr2e = 332.06371;
    problem.cutoff = 10.0;
    long lastPoints = 0;
    for (double accuracy : {1e-4, 1e-5, 1e-6, 1e-7}) {
        problem.accuracy = accuracy;
        const KspacePlan plan = planKspace(problem);
        EXPECT_GT(plan.gridPoints(), lastPoints) << accuracy;
        lastPoints = plan.gridPoints();
        EXPECT_TRUE(isSmooth235(plan.grid[0]));
        EXPECT_TRUE(isSmooth235(plan.grid[1]));
        EXPECT_TRUE(isSmooth235(plan.grid[2]));
    }
}

TEST(KspacePlan, SplittingParameterFollowsLammpsHeuristic)
{
    KspaceProblem problem;
    problem.boxLength = {30, 30, 30};
    problem.natoms = 1000;
    problem.qSqSum = 500.0;
    problem.cutoff = 10.0;
    problem.accuracy = 1e-4;
    const KspacePlan plan = planKspace(problem);
    EXPECT_NEAR(plan.gEwald, (1.35 - 0.15 * std::log(1e-4)) / 10.0, 1e-12);
}

TEST(KspacePlan, EstimatedErrorsBelowTarget)
{
    KspaceProblem problem;
    problem.boxLength = {40, 40, 40};
    problem.natoms = 8000;
    problem.qSqSum = 4000.0;
    problem.qqr2e = 332.06371;
    problem.cutoff = 10.0;
    problem.accuracy = 1e-5;
    const KspacePlan plan = planKspace(problem);
    EXPECT_LE(plan.kspaceError, problem.accuracy * problem.qqr2e * 1.01);
}

TEST(Pppm, StatsReportFourFftsPerStep)
{
    Simulation sim;
    buildRandomCharges(sim, 20, 8.0, 12);
    attachCoulombPair(sim, 3.0);
    auto pppm = std::make_unique<Pppm>(1e-4);
    Pppm *raw = pppm.get();
    sim.kspace = std::move(pppm);
    sim.neighbor.skin = 0.2;
    sim.setup();
    EXPECT_EQ(raw->stats().fftCount, 4);
    EXPECT_GT(raw->stats().gridPoints, 0);
}


class PppmOrders : public ::testing::TestWithParam<int>
{};

TEST_P(PppmOrders, MatchesEwaldAcrossAssignmentOrders)
{
    // The assignment order is a quality knob: every supported order
    // must agree with the Ewald reference within its accuracy class.
    const int order = GetParam();
    std::vector<Vec3> reference;
    double fScale = 0.0;
    {
        Simulation sim;
        buildRandomCharges(sim, 30, 8.5, 777);
        attachCoulombPair(sim, 3.3);
        sim.kspace = std::make_unique<Ewald>(1e-6);
        sim.neighbor.skin = 0.2;
        sim.setup();
        reference.assign(sim.atoms.f.begin(),
                         sim.atoms.f.begin() + sim.atoms.nlocal());
        for (const auto &f : reference)
            fScale += f.normSq();
        fScale = std::sqrt(fScale / reference.size());
    }
    Simulation sim;
    buildRandomCharges(sim, 30, 8.5, 777);
    attachCoulombPair(sim, 3.3);
    sim.kspace = std::make_unique<Pppm>(1e-5, order);
    sim.neighbor.skin = 0.2;
    sim.setup();
    double rmse = 0.0;
    for (std::size_t i = 0; i < reference.size(); ++i)
        rmse += (sim.atoms.f[i] - reference[i]).normSq();
    rmse = std::sqrt(rmse / reference.size()) / fScale;
    // Low orders are less accurate on the same mesh; all must stay
    // within a few percent and high orders within a fraction of that.
    EXPECT_LT(rmse, order >= 5 ? 5e-3 : 5e-2) << "order " << order;
}

INSTANTIATE_TEST_SUITE_P(AssignmentOrders, PppmOrders,
                         ::testing::Values(3, 4, 5, 6, 7));

TEST(Pppm, EnergyStableUnderDynamics)
{
    // Run real dynamics with PPPM forces: total energy must be well
    // behaved (no secular heating from force errors).
    Simulation sim;
    buildRandomCharges(sim, 30, 9.0, 4242);
    attachCoulombPair(sim, 3.3);
    // Give the ions LJ cores so they cannot collapse onto each other.
    auto pair = std::make_unique<PairLJCharmmCoulLong>(2, 2.6, 3.0, 3.3);
    pair->setCoeff(1, 0.2, 1.2);
    pair->setCoeff(2, 0.2, 1.2);
    sim.pair = std::move(pair);
    sim.kspace = std::make_unique<Pppm>(1e-5);
    sim.neighbor.skin = 0.3;
    sim.dt = 0.002;
    sim.thermoEvery = 0;
    Rng rng(5);
    for (std::size_t i = 0; i < sim.atoms.nlocal(); ++i)
        sim.atoms.v[i] = {rng.gaussian() * 0.3, rng.gaussian() * 0.3,
                          rng.gaussian() * 0.3};
    sim.addFix<FixNVE>();
    sim.setup();
    const double e0 = sim.kineticEnergy() + sim.potentialEnergy();
    sim.run(200);
    const double e1 = sim.kineticEnergy() + sim.potentialEnergy();
    EXPECT_NEAR(e1, e0, 0.03 * std::max(1.0, std::fabs(e0)));
}

} // namespace
} // namespace mdbench
