/**
 * @file
 * Cross-validation between the two operating points: the *native*
 * engine's measured behaviour must agree with the *model's* structural
 * assumptions — Pair shares, rebuild cadence, kspace presence, and the
 * Figure 3 trends — so the platform replay is anchored to real code,
 * not just to the paper's numbers.
 */

#include <gtest/gtest.h>

#include "core/experiment.h"
#include "core/suite.h"
#include "harness/sweep.h"

namespace mdbench {
namespace {

TEST(CrossValidation, LjPairShareNativeVsModel)
{
    // Native serial LJ run on the host vs the 1-rank model breakdown:
    // both must be pair-dominated to a similar degree.
    ExperimentSpec native;
    native.mode = ExperimentMode::NativeSerial;
    native.benchmark = BenchmarkId::LJ;
    native.natoms = 4000;
    native.steps = 120;
    // Pin the scalar pair kernels: the model's task ratios are
    // calibrated against them. On ISA builds the SIMD path speeds up
    // Pair but not the neighbor build (unlike the INTEL package the
    // model replays, which vectorizes both), so the share comparison
    // below only holds at the scalar operating point.
    native.simdWidth = 0;
    const auto nativeRecord = runExperiment(native);

    const auto modelRecord =
        runModelExperiment(cpuSweep({BenchmarkId::LJ}, {32}, {1})[0]);

    const double nativePair =
        nativeRecord.taskBreakdown.fraction(Task::Pair);
    const double modelPair =
        modelRecord.taskBreakdown.fraction(Task::Pair);
    // The model replays the vectorized INTEL-package ratios (~88%
    // Pair); our scalar engine spends relatively more in neighbor
    // builds, so only the structural statement must agree: Pair is
    // the dominant task on both operating points.
    EXPECT_GT(nativePair, 0.4);
    EXPECT_GT(modelPair, 0.6);
    for (Task task : {Task::Neigh, Task::Bond, Task::Kspace, Task::Comm,
                      Task::Modify, Task::Output, Task::Other}) {
        EXPECT_GT(nativePair, nativeRecord.taskBreakdown.fraction(task));
        EXPECT_GT(modelPair, modelRecord.taskBreakdown.fraction(task));
    }
}

TEST(CrossValidation, RebuildIntervalsNearModelAssumption)
{
    // The model amortizes neighbor builds over spec.rebuildInterval;
    // the native engine's measured cadence must be the same order.
    struct Case
    {
        BenchmarkId id;
        long natoms;
        long steps;
    };
    for (const Case &c : {Case{BenchmarkId::LJ, 4000, 300},
                          Case{BenchmarkId::Chain, 3000, 300}}) {
        auto sim = buildNative(c.id, c.natoms);
        sim->thermoEvery = 0;
        sim->setup();
        sim->run(c.steps);
        const double measured = sim->neighbor.averageRebuildInterval();
        const double assumed = WorkloadSpec::get(c.id).rebuildInterval;
        EXPECT_GT(measured, assumed / 4.0) << benchmarkName(c.id);
        EXPECT_LT(measured, assumed * 4.0) << benchmarkName(c.id);
    }
}

TEST(CrossValidation, RhodoKspaceShareBothOperatingPoints)
{
    ExperimentSpec native;
    native.mode = ExperimentMode::NativeSerial;
    native.benchmark = BenchmarkId::Rhodo;
    native.natoms = 1800;
    native.steps = 15;
    const auto nativeRecord = runExperiment(native);
    const auto modelRecord =
        runModelExperiment(cpuSweep({BenchmarkId::Rhodo}, {32}, {1})[0]);
    EXPECT_GT(nativeRecord.taskBreakdown.fraction(Task::Kspace), 0.01);
    EXPECT_GT(modelRecord.taskBreakdown.fraction(Task::Kspace), 0.01);
    // Both must also show the Modify cost of SHAKE + NPT.
    EXPECT_GT(nativeRecord.taskBreakdown.fraction(Task::Modify), 0.01);
    EXPECT_GT(modelRecord.taskBreakdown.fraction(Task::Modify), 0.01);
}

TEST(CrossValidation, Fig3TrendPairShareShrinksWithRanks)
{
    // Figure 3: parallelization reduces the Pair share (Comm grows).
    const auto records = runModelSweep(
        cpuSweep({BenchmarkId::LJ}, {32}, {1, 64}));
    EXPECT_GT(records[0].taskBreakdown.fraction(Task::Pair),
              records[1].taskBreakdown.fraction(Task::Pair));
    EXPECT_LT(records[0].taskBreakdown.fraction(Task::Comm),
              records[1].taskBreakdown.fraction(Task::Comm));
}

TEST(CrossValidation, Fig3TrendWeakerForLargerSystems)
{
    // "this effect is less noticeable for larger experiment sizes":
    // the Pair-share drop from 1 to 64 ranks shrinks with system size.
    auto dropFor = [](long sizeK) {
        const auto records = runModelSweep(
            cpuSweep({BenchmarkId::LJ}, {sizeK}, {1, 64}));
        return records[0].taskBreakdown.fraction(Task::Pair) -
               records[1].taskBreakdown.fraction(Task::Pair);
    };
    EXPECT_GT(dropFor(32), dropFor(2048));
}

TEST(CrossValidation, NativeRankedMpiSharesLookLikeModel)
{
    // The decomposed native run and the model agree structurally: MPI
    // time exists, Init is visible, and Wait reflects imbalance.
    ExperimentSpec spec;
    spec.mode = ExperimentMode::NativeRanked;
    spec.benchmark = BenchmarkId::LJ;
    spec.natoms = 4000;
    spec.resources = 4;
    spec.steps = 80;
    const auto record = runExperiment(spec);
    EXPECT_GT(record.mpiTimePercent, 0.0);
    EXPECT_LT(record.mpiTimePercent, 95.0);
    EXPECT_GT(record.mpiFunctionFraction(MpiFunction::Init), 0.0);
    EXPECT_GT(record.mpiFunctionFraction(MpiFunction::Sendrecv), 0.0);
}

} // namespace
} // namespace mdbench
