file(REMOVE_RECURSE
  "CMakeFiles/mdbench_core.dir/experiment.cpp.o"
  "CMakeFiles/mdbench_core.dir/experiment.cpp.o.d"
  "CMakeFiles/mdbench_core.dir/suite.cpp.o"
  "CMakeFiles/mdbench_core.dir/suite.cpp.o.d"
  "libmdbench_core.a"
  "libmdbench_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdbench_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
