# Empty compiler generated dependencies file for mdbench_core.
# This may be replaced when dependencies are built.
