file(REMOVE_RECURSE
  "libmdbench_core.a"
)
