file(REMOVE_RECURSE
  "libmdbench_util.a"
)
