# Empty dependencies file for mdbench_util.
# This may be replaced when dependencies are built.
