file(REMOVE_RECURSE
  "CMakeFiles/mdbench_util.dir/error.cpp.o"
  "CMakeFiles/mdbench_util.dir/error.cpp.o.d"
  "CMakeFiles/mdbench_util.dir/logging.cpp.o"
  "CMakeFiles/mdbench_util.dir/logging.cpp.o.d"
  "CMakeFiles/mdbench_util.dir/rng.cpp.o"
  "CMakeFiles/mdbench_util.dir/rng.cpp.o.d"
  "CMakeFiles/mdbench_util.dir/stats.cpp.o"
  "CMakeFiles/mdbench_util.dir/stats.cpp.o.d"
  "CMakeFiles/mdbench_util.dir/string_utils.cpp.o"
  "CMakeFiles/mdbench_util.dir/string_utils.cpp.o.d"
  "CMakeFiles/mdbench_util.dir/table.cpp.o"
  "CMakeFiles/mdbench_util.dir/table.cpp.o.d"
  "CMakeFiles/mdbench_util.dir/timer.cpp.o"
  "CMakeFiles/mdbench_util.dir/timer.cpp.o.d"
  "libmdbench_util.a"
  "libmdbench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdbench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
