# Empty dependencies file for mdbench_forcefield.
# This may be replaced when dependencies are built.
