file(REMOVE_RECURSE
  "CMakeFiles/mdbench_forcefield.dir/bond_styles.cpp.o"
  "CMakeFiles/mdbench_forcefield.dir/bond_styles.cpp.o.d"
  "CMakeFiles/mdbench_forcefield.dir/pair_eam.cpp.o"
  "CMakeFiles/mdbench_forcefield.dir/pair_eam.cpp.o.d"
  "CMakeFiles/mdbench_forcefield.dir/pair_gran_hooke_history.cpp.o"
  "CMakeFiles/mdbench_forcefield.dir/pair_gran_hooke_history.cpp.o.d"
  "CMakeFiles/mdbench_forcefield.dir/pair_lj_charmm_coul_long.cpp.o"
  "CMakeFiles/mdbench_forcefield.dir/pair_lj_charmm_coul_long.cpp.o.d"
  "CMakeFiles/mdbench_forcefield.dir/pair_lj_cut.cpp.o"
  "CMakeFiles/mdbench_forcefield.dir/pair_lj_cut.cpp.o.d"
  "CMakeFiles/mdbench_forcefield.dir/spline.cpp.o"
  "CMakeFiles/mdbench_forcefield.dir/spline.cpp.o.d"
  "libmdbench_forcefield.a"
  "libmdbench_forcefield.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdbench_forcefield.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
