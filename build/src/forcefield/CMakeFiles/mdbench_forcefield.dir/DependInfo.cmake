
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/forcefield/bond_styles.cpp" "src/forcefield/CMakeFiles/mdbench_forcefield.dir/bond_styles.cpp.o" "gcc" "src/forcefield/CMakeFiles/mdbench_forcefield.dir/bond_styles.cpp.o.d"
  "/root/repo/src/forcefield/pair_eam.cpp" "src/forcefield/CMakeFiles/mdbench_forcefield.dir/pair_eam.cpp.o" "gcc" "src/forcefield/CMakeFiles/mdbench_forcefield.dir/pair_eam.cpp.o.d"
  "/root/repo/src/forcefield/pair_gran_hooke_history.cpp" "src/forcefield/CMakeFiles/mdbench_forcefield.dir/pair_gran_hooke_history.cpp.o" "gcc" "src/forcefield/CMakeFiles/mdbench_forcefield.dir/pair_gran_hooke_history.cpp.o.d"
  "/root/repo/src/forcefield/pair_lj_charmm_coul_long.cpp" "src/forcefield/CMakeFiles/mdbench_forcefield.dir/pair_lj_charmm_coul_long.cpp.o" "gcc" "src/forcefield/CMakeFiles/mdbench_forcefield.dir/pair_lj_charmm_coul_long.cpp.o.d"
  "/root/repo/src/forcefield/pair_lj_cut.cpp" "src/forcefield/CMakeFiles/mdbench_forcefield.dir/pair_lj_cut.cpp.o" "gcc" "src/forcefield/CMakeFiles/mdbench_forcefield.dir/pair_lj_cut.cpp.o.d"
  "/root/repo/src/forcefield/spline.cpp" "src/forcefield/CMakeFiles/mdbench_forcefield.dir/spline.cpp.o" "gcc" "src/forcefield/CMakeFiles/mdbench_forcefield.dir/spline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/md/CMakeFiles/mdbench_md.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mdbench_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
