file(REMOVE_RECURSE
  "libmdbench_forcefield.a"
)
