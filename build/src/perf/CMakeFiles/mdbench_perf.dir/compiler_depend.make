# Empty compiler generated dependencies file for mdbench_perf.
# This may be replaced when dependencies are built.
