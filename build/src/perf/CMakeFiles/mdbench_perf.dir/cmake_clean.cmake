file(REMOVE_RECURSE
  "CMakeFiles/mdbench_perf.dir/cpu_model.cpp.o"
  "CMakeFiles/mdbench_perf.dir/cpu_model.cpp.o.d"
  "CMakeFiles/mdbench_perf.dir/platform.cpp.o"
  "CMakeFiles/mdbench_perf.dir/platform.cpp.o.d"
  "CMakeFiles/mdbench_perf.dir/power.cpp.o"
  "CMakeFiles/mdbench_perf.dir/power.cpp.o.d"
  "CMakeFiles/mdbench_perf.dir/workload.cpp.o"
  "CMakeFiles/mdbench_perf.dir/workload.cpp.o.d"
  "libmdbench_perf.a"
  "libmdbench_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdbench_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
