file(REMOVE_RECURSE
  "libmdbench_perf.a"
)
