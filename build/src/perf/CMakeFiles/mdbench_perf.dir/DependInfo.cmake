
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/perf/cpu_model.cpp" "src/perf/CMakeFiles/mdbench_perf.dir/cpu_model.cpp.o" "gcc" "src/perf/CMakeFiles/mdbench_perf.dir/cpu_model.cpp.o.d"
  "/root/repo/src/perf/platform.cpp" "src/perf/CMakeFiles/mdbench_perf.dir/platform.cpp.o" "gcc" "src/perf/CMakeFiles/mdbench_perf.dir/platform.cpp.o.d"
  "/root/repo/src/perf/power.cpp" "src/perf/CMakeFiles/mdbench_perf.dir/power.cpp.o" "gcc" "src/perf/CMakeFiles/mdbench_perf.dir/power.cpp.o.d"
  "/root/repo/src/perf/workload.cpp" "src/perf/CMakeFiles/mdbench_perf.dir/workload.cpp.o" "gcc" "src/perf/CMakeFiles/mdbench_perf.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kspace/CMakeFiles/mdbench_kspace.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/mdbench_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/md/CMakeFiles/mdbench_md.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mdbench_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
