file(REMOVE_RECURSE
  "libmdbench_parallel.a"
)
