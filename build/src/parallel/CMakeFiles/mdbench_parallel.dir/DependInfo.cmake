
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/parallel/decomp.cpp" "src/parallel/CMakeFiles/mdbench_parallel.dir/decomp.cpp.o" "gcc" "src/parallel/CMakeFiles/mdbench_parallel.dir/decomp.cpp.o.d"
  "/root/repo/src/parallel/mpi_model.cpp" "src/parallel/CMakeFiles/mdbench_parallel.dir/mpi_model.cpp.o" "gcc" "src/parallel/CMakeFiles/mdbench_parallel.dir/mpi_model.cpp.o.d"
  "/root/repo/src/parallel/ranked_sim.cpp" "src/parallel/CMakeFiles/mdbench_parallel.dir/ranked_sim.cpp.o" "gcc" "src/parallel/CMakeFiles/mdbench_parallel.dir/ranked_sim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/md/CMakeFiles/mdbench_md.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mdbench_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
