# Empty dependencies file for mdbench_parallel.
# This may be replaced when dependencies are built.
