file(REMOVE_RECURSE
  "CMakeFiles/mdbench_parallel.dir/decomp.cpp.o"
  "CMakeFiles/mdbench_parallel.dir/decomp.cpp.o.d"
  "CMakeFiles/mdbench_parallel.dir/mpi_model.cpp.o"
  "CMakeFiles/mdbench_parallel.dir/mpi_model.cpp.o.d"
  "CMakeFiles/mdbench_parallel.dir/ranked_sim.cpp.o"
  "CMakeFiles/mdbench_parallel.dir/ranked_sim.cpp.o.d"
  "libmdbench_parallel.a"
  "libmdbench_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdbench_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
