
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kspace/ewald.cpp" "src/kspace/CMakeFiles/mdbench_kspace.dir/ewald.cpp.o" "gcc" "src/kspace/CMakeFiles/mdbench_kspace.dir/ewald.cpp.o.d"
  "/root/repo/src/kspace/fft3d.cpp" "src/kspace/CMakeFiles/mdbench_kspace.dir/fft3d.cpp.o" "gcc" "src/kspace/CMakeFiles/mdbench_kspace.dir/fft3d.cpp.o.d"
  "/root/repo/src/kspace/plan.cpp" "src/kspace/CMakeFiles/mdbench_kspace.dir/plan.cpp.o" "gcc" "src/kspace/CMakeFiles/mdbench_kspace.dir/plan.cpp.o.d"
  "/root/repo/src/kspace/pppm.cpp" "src/kspace/CMakeFiles/mdbench_kspace.dir/pppm.cpp.o" "gcc" "src/kspace/CMakeFiles/mdbench_kspace.dir/pppm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/md/CMakeFiles/mdbench_md.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mdbench_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
