file(REMOVE_RECURSE
  "libmdbench_kspace.a"
)
