# Empty compiler generated dependencies file for mdbench_kspace.
# This may be replaced when dependencies are built.
