file(REMOVE_RECURSE
  "CMakeFiles/mdbench_kspace.dir/ewald.cpp.o"
  "CMakeFiles/mdbench_kspace.dir/ewald.cpp.o.d"
  "CMakeFiles/mdbench_kspace.dir/fft3d.cpp.o"
  "CMakeFiles/mdbench_kspace.dir/fft3d.cpp.o.d"
  "CMakeFiles/mdbench_kspace.dir/plan.cpp.o"
  "CMakeFiles/mdbench_kspace.dir/plan.cpp.o.d"
  "CMakeFiles/mdbench_kspace.dir/pppm.cpp.o"
  "CMakeFiles/mdbench_kspace.dir/pppm.cpp.o.d"
  "libmdbench_kspace.a"
  "libmdbench_kspace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdbench_kspace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
