src/md/CMakeFiles/mdbench_md.dir/units.cpp.o: /root/repo/src/md/units.cpp \
 /usr/include/stdc-predef.h /root/repo/src/md/units.h
