# Empty compiler generated dependencies file for mdbench_md.
# This may be replaced when dependencies are built.
