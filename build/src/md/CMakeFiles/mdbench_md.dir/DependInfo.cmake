
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/md/analysis.cpp" "src/md/CMakeFiles/mdbench_md.dir/analysis.cpp.o" "gcc" "src/md/CMakeFiles/mdbench_md.dir/analysis.cpp.o.d"
  "/root/repo/src/md/atoms.cpp" "src/md/CMakeFiles/mdbench_md.dir/atoms.cpp.o" "gcc" "src/md/CMakeFiles/mdbench_md.dir/atoms.cpp.o.d"
  "/root/repo/src/md/box.cpp" "src/md/CMakeFiles/mdbench_md.dir/box.cpp.o" "gcc" "src/md/CMakeFiles/mdbench_md.dir/box.cpp.o.d"
  "/root/repo/src/md/comm.cpp" "src/md/CMakeFiles/mdbench_md.dir/comm.cpp.o" "gcc" "src/md/CMakeFiles/mdbench_md.dir/comm.cpp.o.d"
  "/root/repo/src/md/dump.cpp" "src/md/CMakeFiles/mdbench_md.dir/dump.cpp.o" "gcc" "src/md/CMakeFiles/mdbench_md.dir/dump.cpp.o.d"
  "/root/repo/src/md/fix_gravity.cpp" "src/md/CMakeFiles/mdbench_md.dir/fix_gravity.cpp.o" "gcc" "src/md/CMakeFiles/mdbench_md.dir/fix_gravity.cpp.o.d"
  "/root/repo/src/md/fix_langevin.cpp" "src/md/CMakeFiles/mdbench_md.dir/fix_langevin.cpp.o" "gcc" "src/md/CMakeFiles/mdbench_md.dir/fix_langevin.cpp.o.d"
  "/root/repo/src/md/fix_nh.cpp" "src/md/CMakeFiles/mdbench_md.dir/fix_nh.cpp.o" "gcc" "src/md/CMakeFiles/mdbench_md.dir/fix_nh.cpp.o.d"
  "/root/repo/src/md/fix_nve.cpp" "src/md/CMakeFiles/mdbench_md.dir/fix_nve.cpp.o" "gcc" "src/md/CMakeFiles/mdbench_md.dir/fix_nve.cpp.o.d"
  "/root/repo/src/md/fix_shake.cpp" "src/md/CMakeFiles/mdbench_md.dir/fix_shake.cpp.o" "gcc" "src/md/CMakeFiles/mdbench_md.dir/fix_shake.cpp.o.d"
  "/root/repo/src/md/fix_wall_gran.cpp" "src/md/CMakeFiles/mdbench_md.dir/fix_wall_gran.cpp.o" "gcc" "src/md/CMakeFiles/mdbench_md.dir/fix_wall_gran.cpp.o.d"
  "/root/repo/src/md/lattice.cpp" "src/md/CMakeFiles/mdbench_md.dir/lattice.cpp.o" "gcc" "src/md/CMakeFiles/mdbench_md.dir/lattice.cpp.o.d"
  "/root/repo/src/md/neighbor.cpp" "src/md/CMakeFiles/mdbench_md.dir/neighbor.cpp.o" "gcc" "src/md/CMakeFiles/mdbench_md.dir/neighbor.cpp.o.d"
  "/root/repo/src/md/simulation.cpp" "src/md/CMakeFiles/mdbench_md.dir/simulation.cpp.o" "gcc" "src/md/CMakeFiles/mdbench_md.dir/simulation.cpp.o.d"
  "/root/repo/src/md/topology.cpp" "src/md/CMakeFiles/mdbench_md.dir/topology.cpp.o" "gcc" "src/md/CMakeFiles/mdbench_md.dir/topology.cpp.o.d"
  "/root/repo/src/md/units.cpp" "src/md/CMakeFiles/mdbench_md.dir/units.cpp.o" "gcc" "src/md/CMakeFiles/mdbench_md.dir/units.cpp.o.d"
  "/root/repo/src/md/velocity.cpp" "src/md/CMakeFiles/mdbench_md.dir/velocity.cpp.o" "gcc" "src/md/CMakeFiles/mdbench_md.dir/velocity.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mdbench_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
