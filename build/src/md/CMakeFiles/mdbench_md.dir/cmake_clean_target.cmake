file(REMOVE_RECURSE
  "libmdbench_md.a"
)
