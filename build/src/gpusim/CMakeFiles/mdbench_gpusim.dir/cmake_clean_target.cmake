file(REMOVE_RECURSE
  "libmdbench_gpusim.a"
)
