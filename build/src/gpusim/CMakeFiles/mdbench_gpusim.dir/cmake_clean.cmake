file(REMOVE_RECURSE
  "CMakeFiles/mdbench_gpusim.dir/gpu_model.cpp.o"
  "CMakeFiles/mdbench_gpusim.dir/gpu_model.cpp.o.d"
  "libmdbench_gpusim.a"
  "libmdbench_gpusim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdbench_gpusim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
