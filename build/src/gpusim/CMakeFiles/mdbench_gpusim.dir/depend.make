# Empty dependencies file for mdbench_gpusim.
# This may be replaced when dependencies are built.
