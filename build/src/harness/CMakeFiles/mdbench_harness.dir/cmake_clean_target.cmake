file(REMOVE_RECURSE
  "libmdbench_harness.a"
)
