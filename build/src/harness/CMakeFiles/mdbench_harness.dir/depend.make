# Empty dependencies file for mdbench_harness.
# This may be replaced when dependencies are built.
