file(REMOVE_RECURSE
  "CMakeFiles/mdbench_harness.dir/experiment.cpp.o"
  "CMakeFiles/mdbench_harness.dir/experiment.cpp.o.d"
  "CMakeFiles/mdbench_harness.dir/report.cpp.o"
  "CMakeFiles/mdbench_harness.dir/report.cpp.o.d"
  "CMakeFiles/mdbench_harness.dir/sweep.cpp.o"
  "CMakeFiles/mdbench_harness.dir/sweep.cpp.o.d"
  "libmdbench_harness.a"
  "libmdbench_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdbench_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
