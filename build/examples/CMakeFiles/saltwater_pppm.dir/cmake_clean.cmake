file(REMOVE_RECURSE
  "CMakeFiles/saltwater_pppm.dir/saltwater_pppm.cpp.o"
  "CMakeFiles/saltwater_pppm.dir/saltwater_pppm.cpp.o.d"
  "saltwater_pppm"
  "saltwater_pppm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/saltwater_pppm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
