# Empty compiler generated dependencies file for saltwater_pppm.
# This may be replaced when dependencies are built.
