file(REMOVE_RECURSE
  "CMakeFiles/polymer_relaxation.dir/polymer_relaxation.cpp.o"
  "CMakeFiles/polymer_relaxation.dir/polymer_relaxation.cpp.o.d"
  "polymer_relaxation"
  "polymer_relaxation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/polymer_relaxation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
