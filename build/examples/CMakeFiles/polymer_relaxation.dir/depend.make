# Empty dependencies file for polymer_relaxation.
# This may be replaced when dependencies are built.
