file(REMOVE_RECURSE
  "CMakeFiles/platform_whatif.dir/platform_whatif.cpp.o"
  "CMakeFiles/platform_whatif.dir/platform_whatif.cpp.o.d"
  "platform_whatif"
  "platform_whatif.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/platform_whatif.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
