# Empty dependencies file for platform_whatif.
# This may be replaced when dependencies are built.
