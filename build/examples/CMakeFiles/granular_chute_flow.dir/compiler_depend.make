# Empty compiler generated dependencies file for granular_chute_flow.
# This may be replaced when dependencies are built.
