file(REMOVE_RECURSE
  "CMakeFiles/granular_chute_flow.dir/granular_chute_flow.cpp.o"
  "CMakeFiles/granular_chute_flow.dir/granular_chute_flow.cpp.o.d"
  "granular_chute_flow"
  "granular_chute_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/granular_chute_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
