# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_box_atoms[1]_include.cmake")
include("/root/repo/build/tests/test_neighbor[1]_include.cmake")
include("/root/repo/build/tests/test_fft[1]_include.cmake")
include("/root/repo/build/tests/test_pair_lj[1]_include.cmake")
include("/root/repo/build/tests/test_integrate[1]_include.cmake")
include("/root/repo/build/tests/test_kspace[1]_include.cmake")
include("/root/repo/build/tests/test_eam[1]_include.cmake")
include("/root/repo/build/tests/test_bonds[1]_include.cmake")
include("/root/repo/build/tests/test_granular[1]_include.cmake")
include("/root/repo/build/tests/test_shake[1]_include.cmake")
include("/root/repo/build/tests/test_parallel[1]_include.cmake")
include("/root/repo/build/tests/test_perf[1]_include.cmake")
include("/root/repo/build/tests/test_gpusim[1]_include.cmake")
include("/root/repo/build/tests/test_suite_core[1]_include.cmake")
include("/root/repo/build/tests/test_harness[1]_include.cmake")
include("/root/repo/build/tests/test_analysis[1]_include.cmake")
include("/root/repo/build/tests/test_comm_units[1]_include.cmake")
include("/root/repo/build/tests/test_ranked_granular[1]_include.cmake")
include("/root/repo/build/tests/test_crossvalidation[1]_include.cmake")
