file(REMOVE_RECURSE
  "CMakeFiles/test_ranked_granular.dir/test_ranked_granular.cpp.o"
  "CMakeFiles/test_ranked_granular.dir/test_ranked_granular.cpp.o.d"
  "test_ranked_granular"
  "test_ranked_granular.pdb"
  "test_ranked_granular[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ranked_granular.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
