# Empty dependencies file for test_ranked_granular.
# This may be replaced when dependencies are built.
