# Empty dependencies file for test_kspace.
# This may be replaced when dependencies are built.
