file(REMOVE_RECURSE
  "CMakeFiles/test_kspace.dir/test_kspace.cpp.o"
  "CMakeFiles/test_kspace.dir/test_kspace.cpp.o.d"
  "test_kspace"
  "test_kspace.pdb"
  "test_kspace[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kspace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
