
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_eam.cpp" "tests/CMakeFiles/test_eam.dir/test_eam.cpp.o" "gcc" "tests/CMakeFiles/test_eam.dir/test_eam.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mdbench_core.dir/DependInfo.cmake"
  "/root/repo/build/src/harness/CMakeFiles/mdbench_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/gpusim/CMakeFiles/mdbench_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/mdbench_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/mdbench_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/kspace/CMakeFiles/mdbench_kspace.dir/DependInfo.cmake"
  "/root/repo/build/src/forcefield/CMakeFiles/mdbench_forcefield.dir/DependInfo.cmake"
  "/root/repo/build/src/md/CMakeFiles/mdbench_md.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mdbench_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
