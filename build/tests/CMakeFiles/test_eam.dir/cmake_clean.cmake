file(REMOVE_RECURSE
  "CMakeFiles/test_eam.dir/test_eam.cpp.o"
  "CMakeFiles/test_eam.dir/test_eam.cpp.o.d"
  "test_eam"
  "test_eam.pdb"
  "test_eam[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_eam.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
