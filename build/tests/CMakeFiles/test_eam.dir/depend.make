# Empty dependencies file for test_eam.
# This may be replaced when dependencies are built.
