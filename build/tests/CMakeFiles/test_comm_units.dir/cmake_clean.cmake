file(REMOVE_RECURSE
  "CMakeFiles/test_comm_units.dir/test_comm_units.cpp.o"
  "CMakeFiles/test_comm_units.dir/test_comm_units.cpp.o.d"
  "test_comm_units"
  "test_comm_units.pdb"
  "test_comm_units[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_comm_units.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
