# Empty compiler generated dependencies file for test_comm_units.
# This may be replaced when dependencies are built.
