# Empty compiler generated dependencies file for test_shake.
# This may be replaced when dependencies are built.
