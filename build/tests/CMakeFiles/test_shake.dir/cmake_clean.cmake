file(REMOVE_RECURSE
  "CMakeFiles/test_shake.dir/test_shake.cpp.o"
  "CMakeFiles/test_shake.dir/test_shake.cpp.o.d"
  "test_shake"
  "test_shake.pdb"
  "test_shake[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_shake.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
