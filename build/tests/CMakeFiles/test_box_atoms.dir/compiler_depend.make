# Empty compiler generated dependencies file for test_box_atoms.
# This may be replaced when dependencies are built.
