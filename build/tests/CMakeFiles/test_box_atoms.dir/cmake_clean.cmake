file(REMOVE_RECURSE
  "CMakeFiles/test_box_atoms.dir/test_box_atoms.cpp.o"
  "CMakeFiles/test_box_atoms.dir/test_box_atoms.cpp.o.d"
  "test_box_atoms"
  "test_box_atoms.pdb"
  "test_box_atoms[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_box_atoms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
