# Empty dependencies file for test_integrate.
# This may be replaced when dependencies are built.
