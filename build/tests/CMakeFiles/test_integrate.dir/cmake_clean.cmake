file(REMOVE_RECURSE
  "CMakeFiles/test_integrate.dir/test_integrate.cpp.o"
  "CMakeFiles/test_integrate.dir/test_integrate.cpp.o.d"
  "test_integrate"
  "test_integrate.pdb"
  "test_integrate[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
