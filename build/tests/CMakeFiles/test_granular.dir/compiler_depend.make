# Empty compiler generated dependencies file for test_granular.
# This may be replaced when dependencies are built.
