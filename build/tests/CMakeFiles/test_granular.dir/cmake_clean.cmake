file(REMOVE_RECURSE
  "CMakeFiles/test_granular.dir/test_granular.cpp.o"
  "CMakeFiles/test_granular.dir/test_granular.cpp.o.d"
  "test_granular"
  "test_granular.pdb"
  "test_granular[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_granular.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
