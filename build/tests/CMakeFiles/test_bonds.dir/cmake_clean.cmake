file(REMOVE_RECURSE
  "CMakeFiles/test_bonds.dir/test_bonds.cpp.o"
  "CMakeFiles/test_bonds.dir/test_bonds.cpp.o.d"
  "test_bonds"
  "test_bonds.pdb"
  "test_bonds[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bonds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
