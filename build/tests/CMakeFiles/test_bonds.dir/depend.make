# Empty dependencies file for test_bonds.
# This may be replaced when dependencies are built.
