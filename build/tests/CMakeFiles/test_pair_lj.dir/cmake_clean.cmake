file(REMOVE_RECURSE
  "CMakeFiles/test_pair_lj.dir/test_pair_lj.cpp.o"
  "CMakeFiles/test_pair_lj.dir/test_pair_lj.cpp.o.d"
  "test_pair_lj"
  "test_pair_lj.pdb"
  "test_pair_lj[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pair_lj.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
