# Empty dependencies file for test_pair_lj.
# This may be replaced when dependencies are built.
