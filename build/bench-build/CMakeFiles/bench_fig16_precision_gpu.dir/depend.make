# Empty dependencies file for bench_fig16_precision_gpu.
# This may be replaced when dependencies are built.
