file(REMOVE_RECURSE
  "../bench/bench_fig16_precision_gpu"
  "../bench/bench_fig16_precision_gpu.pdb"
  "CMakeFiles/bench_fig16_precision_gpu.dir/bench_fig16_precision_gpu.cpp.o"
  "CMakeFiles/bench_fig16_precision_gpu.dir/bench_fig16_precision_gpu.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_precision_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
