file(REMOVE_RECURSE
  "../bench/bench_ablation_skin"
  "../bench/bench_ablation_skin.pdb"
  "CMakeFiles/bench_ablation_skin.dir/bench_ablation_skin.cpp.o"
  "CMakeFiles/bench_ablation_skin.dir/bench_ablation_skin.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_skin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
