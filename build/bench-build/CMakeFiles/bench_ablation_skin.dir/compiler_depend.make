# Empty compiler generated dependencies file for bench_ablation_skin.
# This may be replaced when dependencies are built.
