# Empty compiler generated dependencies file for bench_fig04_mpi_overhead.
# This may be replaced when dependencies are built.
