# Empty dependencies file for bench_fig13_kspace_gpu_perf.
# This may be replaced when dependencies are built.
