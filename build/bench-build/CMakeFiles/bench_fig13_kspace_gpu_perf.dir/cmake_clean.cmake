file(REMOVE_RECURSE
  "../bench/bench_fig13_kspace_gpu_perf"
  "../bench/bench_fig13_kspace_gpu_perf.pdb"
  "CMakeFiles/bench_fig13_kspace_gpu_perf.dir/bench_fig13_kspace_gpu_perf.cpp.o"
  "CMakeFiles/bench_fig13_kspace_gpu_perf.dir/bench_fig13_kspace_gpu_perf.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_kspace_gpu_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
