# Empty compiler generated dependencies file for bench_fig07_gpu_breakdown.
# This may be replaced when dependencies are built.
