file(REMOVE_RECURSE
  "../bench/bench_fig10_kspace_cpu_perf"
  "../bench/bench_fig10_kspace_cpu_perf.pdb"
  "CMakeFiles/bench_fig10_kspace_cpu_perf.dir/bench_fig10_kspace_cpu_perf.cpp.o"
  "CMakeFiles/bench_fig10_kspace_cpu_perf.dir/bench_fig10_kspace_cpu_perf.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_kspace_cpu_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
