file(REMOVE_RECURSE
  "../bench/bench_ablation_gpu_offload"
  "../bench/bench_ablation_gpu_offload.pdb"
  "CMakeFiles/bench_ablation_gpu_offload.dir/bench_ablation_gpu_offload.cpp.o"
  "CMakeFiles/bench_ablation_gpu_offload.dir/bench_ablation_gpu_offload.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_gpu_offload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
