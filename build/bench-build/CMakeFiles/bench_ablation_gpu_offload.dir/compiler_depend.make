# Empty compiler generated dependencies file for bench_ablation_gpu_offload.
# This may be replaced when dependencies are built.
