# Empty compiler generated dependencies file for bench_fig08_gpu_kernels.
# This may be replaced when dependencies are built.
