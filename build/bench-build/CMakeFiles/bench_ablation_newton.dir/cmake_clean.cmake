file(REMOVE_RECURSE
  "../bench/bench_ablation_newton"
  "../bench/bench_ablation_newton.pdb"
  "CMakeFiles/bench_ablation_newton.dir/bench_ablation_newton.cpp.o"
  "CMakeFiles/bench_ablation_newton.dir/bench_ablation_newton.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_newton.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
