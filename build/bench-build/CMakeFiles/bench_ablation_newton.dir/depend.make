# Empty dependencies file for bench_ablation_newton.
# This may be replaced when dependencies are built.
