# Empty compiler generated dependencies file for bench_fig05_mpi_functions.
# This may be replaced when dependencies are built.
