# Empty compiler generated dependencies file for bench_fig12_kspace_mpi_functions.
# This may be replaced when dependencies are built.
