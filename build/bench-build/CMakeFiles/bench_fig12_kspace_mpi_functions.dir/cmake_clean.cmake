file(REMOVE_RECURSE
  "../bench/bench_fig12_kspace_mpi_functions"
  "../bench/bench_fig12_kspace_mpi_functions.pdb"
  "CMakeFiles/bench_fig12_kspace_mpi_functions.dir/bench_fig12_kspace_mpi_functions.cpp.o"
  "CMakeFiles/bench_fig12_kspace_mpi_functions.dir/bench_fig12_kspace_mpi_functions.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_kspace_mpi_functions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
