file(REMOVE_RECURSE
  "../bench/bench_native_breakdown"
  "../bench/bench_native_breakdown.pdb"
  "CMakeFiles/bench_native_breakdown.dir/bench_native_breakdown.cpp.o"
  "CMakeFiles/bench_native_breakdown.dir/bench_native_breakdown.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_native_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
