# Empty dependencies file for bench_native_breakdown.
# This may be replaced when dependencies are built.
