/**
 * @file
 * Hybrid rank×thread runtime sweep (DESIGN.md §17): the real engine
 * decomposed over simulated MPI ranks scheduled concurrently on the
 * shared ThreadPool, with the halo exchange either blocking or
 * overlapped with the interior force pass (MDBENCH_COMM_OVERLAP).
 *
 * For every (ranks, threads) point the blocking and overlapped runs
 * execute back to back and the table reports both, plus the measured
 * wall-clock speedup of overlap over blocking. The win comes from phase
 * fusion: a blocking step crosses five pool-region barriers (forward,
 * forces, reverse, final, integrate) while an overlapped step crosses
 * two (interior+wait+boundary, fused tail), so comm-bound points —
 * many ranks, few atoms per rank — gain the most. Trajectories are
 * bitwise identical either way (the split interior/boundary arithmetic
 * is always on for decomposed ranks).
 *
 * Usage: bench_native_rank_overlap [--quick] [shared flags]
 * `--quick` drops the large rank counts to smoke-test size (CI).
 */

#include <cstring>
#include <iostream>
#include <vector>

#include "core/experiment.h"
#include "harness/report.h"
#include "obs/bench_options.h"
#include "util/string_utils.h"
#include "util/table.h"

using namespace mdbench;

namespace {

struct Config
{
    int ranks;
    int threads;
    long natoms;
    long steps;
};

} // namespace

int
main(int argc, char **argv)
{
    BenchRun run(argc, argv, "bench_native_rank_overlap");
    bool quick = false;
    for (int i = 1; i < argc; ++i)
        quick = quick || std::strcmp(argv[i], "--quick") == 0;

    printFigureHeader(std::cout, "Rank overlap",
                      "Concurrent rank execution: blocking vs overlapped "
                      "halo exchange, measured host wall clock");

    // Small per-rank subdomains make the runs comm/orchestration-bound,
    // the regime where overlap pays (surface-to-volume argument of
    // Section 5.1 run in reverse). The high-thread rows oversubscribe
    // the host on purpose: every pool region boundary then costs real
    // scheduling work, so fusing five per-step phases into two is where
    // the overlapped runtime wins its wall clock.
    std::vector<Config> configs;
    if (quick) {
        configs = {{4, 2, 2000, 150}, {8, 8, 512, 200}};
    } else {
        configs = {{8, 8, 4000, 300},
                   {32, 8, 512, 500},
                   {32, 48, 256, 1000},
                   {64, 48, 128, 1000}};
    }

    Table table({"benchmark", "natoms", "ranks", "threads", "overlap",
                 "wall[ms/step]", "model TS/s", "MPI time %",
                 "speedup vs blocking"});
    for (const Config &config : configs) {
        double blockingWall = 0.0;
        for (int overlap : {0, 1}) {
            ExperimentSpec spec;
            spec.mode = ExperimentMode::NativeRanked;
            spec.benchmark = BenchmarkId::LJ;
            spec.natoms = config.natoms;
            spec.resources = config.ranks;
            spec.threads = config.threads;
            spec.steps = config.steps;
            spec.commOverlap = overlap;
            spec.rankExec = 1;
            const ExperimentRecord record = runExperiment(spec);
            if (overlap == 0)
                blockingWall = record.wallSeconds;
            const double msPerStep = record.wallSeconds /
                                     static_cast<double>(config.steps) *
                                     1e3;
            table.addRow(
                {benchmarkName(spec.benchmark),
                 std::to_string(spec.natoms),
                 std::to_string(config.ranks),
                 std::to_string(config.threads),
                 overlap ? "on" : "off",
                 strprintf("%8.4f", msPerStep),
                 strprintf("%10.2f", record.timestepsPerSecond),
                 strprintf("%6.2f", record.mpiTimePercent),
                 overlap ? strprintf("%5.2fx", blockingWall /
                                                   record.wallSeconds)
                         : std::string("1.00x")});
        }
    }
    emitTable(std::cout, table, "native_rank_overlap");

    std::cout << "\nObservations:\n"
              << " - overlap gains grow with the rank count at fixed "
                 "total size (less compute per rank hides less, but "
                 "three of five per-step phase barriers disappear)\n"
              << " - modeled TS/s and MPI% are identical between the "
                 "overlap rows of a pair up to exposed-wait accounting; "
                 "only the measured wall clock moves\n";
    return 0;
}
