/**
 * @file
 * Figure 13 reproduction: rhodopsin performance and parallel efficiency
 * on the GPU instance vs the kspace error threshold — the memcpy-driven
 * collapse at 1e-7.
 */

#include <iostream>

#include "harness/report.h"
#include "harness/sweep.h"
#include "obs/bench_options.h"
#include "util/string_utils.h"

using namespace mdbench;

int
main(int argc, char **argv)
{
    BenchRun run(argc, argv, "bench_fig13_kspace_gpu_perf");
    printFigureHeader(std::cout, "Figure 13",
                      "rhodo GPU performance and parallel efficiency vs "
                      "kspace error threshold");

    Table table({"variant", "size[k]", "GPUs", "perf [TS/s]",
                 "parallel eff [%]"});
    for (double accuracy : paperErrorThresholds()) {
        SweepOptions options;
        options.kspaceAccuracy = accuracy;
        const auto records = runModelSweep(gpuSweep(
            {BenchmarkId::Rhodo}, paperSizesK(), paperGpuCounts(),
            options));
        const std::string variant =
            accuracy == 1e-4 ? "rhodo"
                             : "rhodo-e-" + std::to_string(static_cast<int>(
                                   -std::log10(accuracy)));
        for (const auto &record : records) {
            table.addRow({variant,
                          std::to_string(record.spec.natoms / 1000),
                          std::to_string(record.spec.resources),
                          strprintf("%9.3f", record.timestepsPerSecond),
                          strprintf("%6.2f",
                                    record.parallelEfficiencyPct)});
        }
    }
    emitTable(std::cout, table, "fig13");

    AnchorReport anchors;
    SweepOptions tight;
    tight.kspaceAccuracy = 1e-7;
    anchors.add("rhodo 2048k 8 GPUs @1e-4 [TS/s]", 16.09,
                runModelExperiment(gpuSweep({BenchmarkId::Rhodo}, {2048},
                                            {8})[0])
                    .timestepsPerSecond);
    anchors.add("rhodo 2048k 8 GPUs @1e-7 [TS/s]", 0.46,
                runModelExperiment(gpuSweep({BenchmarkId::Rhodo}, {2048},
                                            {8}, tight)[0])
                    .timestepsPerSecond);
    anchors.print(std::cout);
    return 0;
}
