/**
 * @file
 * Figure 8 reproduction: device-activity breakdown (CUDA kernels and
 * memcpy) for the GPU-supported benchmarks.
 */

#include <iostream>

#include "gpusim/gpu_model.h"
#include "harness/report.h"
#include "obs/bench_options.h"
#include "util/string_utils.h"

using namespace mdbench;

int
main(int argc, char **argv)
{
    BenchRun run(argc, argv, "bench_fig08_gpu_kernels");
    printFigureHeader(std::cout, "Figure 8",
                      "GPU kernels and data-movement share of device "
                      "activity (one row per benchmark/size/devices)");

    const GpuModel model;
    std::vector<std::string> headers = {"benchmark", "size[k]", "GPUs"};
    for (std::size_t a = 0; a < kNumGpuActivities; ++a)
        headers.push_back(gpuActivityName(static_cast<GpuActivity>(a)));
    Table table(std::move(headers));

    for (BenchmarkId id : gpuBenchmarks()) {
        for (long sizeK : paperSizesK()) {
            const auto workload =
                WorkloadInstance::make(id, sizeK * 1000);
            for (int gpus : paperGpuCounts()) {
                const auto result = model.evaluate(workload, gpus);
                std::vector<std::string> row = {
                    benchmarkName(id), std::to_string(sizeK),
                    std::to_string(gpus)};
                for (std::size_t a = 0; a < kNumGpuActivities; ++a)
                    row.push_back(strprintf(
                        "%4.1f", result.activityFraction(
                                     static_cast<GpuActivity>(a)) *
                                     100.0));
                table.addRow(std::move(row));
            }
        }
    }
    emitTable(std::cout, table, "fig08");

    // The two kernel-level observations of Section 6.1.
    const auto eam =
        model.evaluate(WorkloadInstance::make(BenchmarkId::EAM, 864000), 4);
    const auto rhodo = model.evaluate(
        WorkloadInstance::make(BenchmarkId::Rhodo, 864000), 4);
    const auto rhodoBig = model.evaluate(
        WorkloadInstance::make(BenchmarkId::Rhodo, 2048000), 4);
    std::cout << "\nObservations reproduced:\n"
              << " - k_eam_fast + k_energy_fast per-step device time ("
              << strprintf("%.2f ms",
                           (eam.deviceSecondsOf(GpuActivity::KEamFast) +
                            eam.deviceSecondsOf(
                                GpuActivity::KEnergyFast)) *
                               1e3)
              << ") exceeds k_charmm_long ("
              << strprintf(
                     "%.2f ms",
                     rhodo.deviceSecondsOf(GpuActivity::KCharmmLong) * 1e3)
              << ")\n"
              << " - calc_neigh_list_cell share for rhodo grows from "
              << strprintf("%.0f%%",
                           rhodo.activityFraction(
                               GpuActivity::CalcNeighListCell) *
                               100)
              << " (864k) to "
              << strprintf("%.0f%%",
                           rhodoBig.activityFraction(
                               GpuActivity::CalcNeighListCell) *
                               100)
              << " (2048k): the 2M-atom breaking point\n";
    return 0;
}
