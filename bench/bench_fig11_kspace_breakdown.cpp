/**
 * @file
 * Figure 11 reproduction: rhodopsin task breakdown on the CPU instance
 * as the kspace error threshold tightens — the Kspace share takes over.
 */

#include <iostream>

#include "harness/report.h"
#include "harness/sweep.h"
#include "obs/bench_options.h"
#include "util/string_utils.h"

using namespace mdbench;

int
main(int argc, char **argv)
{
    BenchRun run(argc, argv, "bench_fig11_kspace_breakdown");
    printFigureHeader(std::cout, "Figure 11",
                      "rhodo CPU task breakdown vs kspace error "
                      "threshold (rhodo-e-*)");

    for (double accuracy : {1e-4, 1e-6, 1e-7}) {
        SweepOptions options;
        options.kspaceAccuracy = accuracy;
        const auto records = runModelSweep(cpuSweep(
            {BenchmarkId::Rhodo}, paperSizesK(), {2, 4, 8, 16, 32, 64},
            options));
        std::cout << "\n--- threshold " << formatThreshold(accuracy)
                  << " ---\n";
        emitTable(std::cout, makeBreakdownTable(records, "procs"),
                  "fig11_" + formatThreshold(accuracy));
    }

    SweepOptions tight;
    tight.kspaceAccuracy = 1e-7;
    const auto hard = runModelExperiment(
        cpuSweep({BenchmarkId::Rhodo}, {2048}, {64}, tight)[0]);
    std::cout << "\nObservation reproduced: at 1e-7 the Kspace share "
                 "reaches "
              << static_cast<int>(
                     hard.taskBreakdown.fraction(Task::Kspace) * 100)
              << "% of the timestep (dominant, as in the paper).\n";
    return 0;
}
