/**
 * @file
 * Extension: weak scaling on the modeled CPU instance. The paper
 * deliberately studies strong scaling (Section 4.1) and cites prior
 * weak-scaling work; this bench completes the picture with the same
 * cost model — atoms per rank held at 32k while ranks grow — showing
 * why weak scaling looks flattering (surface-to-volume stays fixed).
 */

#include <iostream>

#include "harness/report.h"
#include "obs/bench_options.h"
#include "perf/cpu_model.h"
#include "util/string_utils.h"

using namespace mdbench;

int
main(int argc, char **argv)
{
    BenchRun run(argc, argv, "bench_ext_weak_scaling");
    printFigureHeader(std::cout, "Extension: weak scaling",
                      "32k atoms per rank on the modeled CPU instance "
                      "(compare the strong-scaling Fig. 6)");

    const CpuModel model;
    Table table({"benchmark", "procs", "atoms", "perf [TS/s]",
                 "weak eff [%]", "strong eff 32k [%]"});
    for (BenchmarkId id : allBenchmarks()) {
        double ts1 = 0.0;
        for (int ranks : {1, 2, 4, 8, 16, 32, 64}) {
            const long natoms = 32000L * ranks;
            const auto weak = WorkloadInstance::make(id, natoms);
            const double ts = model.evaluate(weak, ranks).timestepsPerSecond;
            if (ranks == 1)
                ts1 = ts;
            // Weak efficiency: constant work per rank should keep TS/s
            // constant. Contrast with *strong* scaling of a fixed small
            // 32k system, where the shrinking subdomains make
            // communication dominate.
            const auto strong = WorkloadInstance::make(id, 32000);
            table.addRow(
                {benchmarkName(id), std::to_string(ranks),
                 std::to_string(natoms),
                 strprintf("%9.2f", ts),
                 strprintf("%6.2f", ts / ts1 * 100.0),
                 strprintf("%6.2f",
                           model.parallelEfficiency(strong, ranks))});
        }
    }
    emitTable(std::cout, table, "ext_weak_scaling");
    std::cout << "\nTakeaway: weak efficiency stays high (fixed "
                 "surface-to-volume per rank) while strong scaling of a "
                 "small system collapses — which is why prior "
                 "weak-scaling studies looked flattering and the paper "
                 "calls single-node strong scaling the missing piece.\n";
    return 0;
}
