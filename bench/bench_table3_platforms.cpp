/**
 * @file
 * Table 3 reproduction: the CPU- and GPU-instance descriptions driving
 * the platform-replay models.
 */

#include <iostream>

#include "harness/report.h"
#include "obs/bench_options.h"
#include "perf/platform.h"
#include "util/string_utils.h"

using namespace mdbench;

int
main(int argc, char **argv)
{
    BenchRun run(argc, argv, "bench_table3_platforms");
    printFigureHeader(std::cout, "Table 3",
                      "CPU and GPU instance descriptions (model inputs)");

    const PlatformInstance cpu = PlatformInstance::cpuInstance();
    const PlatformInstance gpu = PlatformInstance::gpuInstance();

    Table cpuTable({"CPU spec", "CPU Instance", "GPU Instance"});
    auto addCpuRow = [&](const std::string &name, auto getter) {
        cpuTable.addRow({name, getter(cpu), getter(gpu)});
    };
    addCpuRow("CPU", [](const PlatformInstance &p) { return p.cpu.model; });
    addCpuRow("Cores", [](const PlatformInstance &p) {
        return std::to_string(p.cpu.cores);
    });
    addCpuRow("Threads", [](const PlatformInstance &p) {
        return std::to_string(p.cpu.threads);
    });
    addCpuRow("Freq (turbo)", [](const PlatformInstance &p) {
        return strprintf("%.1f GHz (%.1f GHz)", p.cpu.baseGHz,
                         p.cpu.turboGHz);
    });
    addCpuRow("L1 / core", [](const PlatformInstance &p) {
        return std::to_string(p.cpu.l1KBPerCore) + " KB";
    });
    addCpuRow("L3 shared", [](const PlatformInstance &p) {
        return strprintf("%.2f MB", p.cpu.l3MB);
    });
    addCpuRow("Tech node", [](const PlatformInstance &p) {
        return std::to_string(p.cpu.techNm) + " nm";
    });
    addCpuRow("TDP", [](const PlatformInstance &p) {
        return strprintf("%.0f W", p.cpu.tdpW);
    });
    addCpuRow("Sockets", [](const PlatformInstance &p) {
        return std::to_string(p.sockets);
    });
    addCpuRow("Memory", [](const PlatformInstance &p) {
        return std::to_string(p.memoryGB) + " GB";
    });
    emitTable(std::cout, cpuTable, "table3_cpu");

    Table gpuTable({"GPU spec", "GPU Instance"});
    const GpuSpec &v100 = *gpu.gpu;
    gpuTable.addRow({"GPU", v100.model});
    gpuTable.addRow({"SM", std::to_string(v100.sms)});
    gpuTable.addRow({"Global mem",
                     strprintf("%.0f GB HBM", v100.memGB)});
    gpuTable.addRow({"L2 shared", strprintf("%.0f MB", v100.l2MB)});
    gpuTable.addRow({"L1 / SM",
                     std::to_string(v100.l1KBPerSm) + " KB"});
    gpuTable.addRow({"Frequency", strprintf("%.2f GHz", v100.freqGHz)});
    gpuTable.addRow({"Tech node", std::to_string(v100.techNm) + " nm"});
    gpuTable.addRow({"TDP", strprintf("%.0f W", v100.tdpW)});
    gpuTable.addRow({"Devices", std::to_string(gpu.gpuCount)});
    emitTable(std::cout, gpuTable, "table3_gpu");
    return 0;
}
