/**
 * @file
 * Ablation: the neighbor-skin tradeoff of Section 2 on the *native*
 * engine — a larger skin means more stored pairs per rebuild but fewer
 * rebuilds. Reports rebuild counts, list sizes, and measured wall time
 * per step for the LJ melt.
 */

#include <iostream>

#include "core/suite.h"
#include "harness/report.h"
#include "obs/bench_options.h"
#include "util/string_utils.h"
#include "util/timer.h"

using namespace mdbench;

int
main(int argc, char **argv)
{
    BenchRun run(argc, argv, "bench_ablation_skin");
    printFigureHeader(std::cout, "Ablation: neighbor skin",
                      "cutoff+skin list size vs rebuild frequency "
                      "(native LJ melt, 4000 atoms, 400 steps)");

    Table table({"skin [sigma]", "stored pairs", "rebuilds",
                 "avg rebuild interval", "us/step (host)",
                 "Neigh share [%]", "Pair share [%]"});
    const long steps = 400;
    for (double skin : {0.1, 0.2, 0.3, 0.5, 0.8}) {
        auto sim = buildLJ(10);
        sim->neighbor.skin = skin;
        sim->thermoEvery = 0;
        sim->setup();
        WallTimer wall;
        sim->run(steps);
        const double elapsed = wall.seconds();
        table.addRow(
            {strprintf("%.1f", skin),
             std::to_string(sim->neighbor.list().pairCount()),
             std::to_string(sim->neighbor.buildCount() - 1),
             strprintf("%.1f", sim->neighbor.averageRebuildInterval()),
             strprintf("%.1f", elapsed / steps * 1e6),
             strprintf("%.1f", sim->timer.fraction(Task::Neigh) * 100),
             strprintf("%.1f", sim->timer.fraction(Task::Pair) * 100)});
    }
    emitTable(std::cout, table, "ablation_skin");
    std::cout << "\nMechanism (paper Section 2): a larger skin stores "
                 "more candidate pairs per build but allows rebuilding "
                 "less often; the optimum balances the two.\n";
    return 0;
}
