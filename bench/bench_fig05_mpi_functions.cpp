/**
 * @file
 * Figure 5 reproduction: per-MPI-function breakdown of the MPI time
 * (MPI_Init / Send / Sendrecv / Allreduce / Wait / others).
 */

#include <iostream>

#include "harness/report.h"
#include "harness/sweep.h"
#include "obs/bench_options.h"

using namespace mdbench;

int
main(int argc, char **argv)
{
    BenchRun run(argc, argv, "bench_fig05_mpi_functions");
    printFigureHeader(std::cout, "Figure 5",
                      "Breakdown of the MPI overhead by function "
                      "(10k-step runs)");

    const auto records = runModelSweep(
        cpuSweep(allBenchmarks(), paperSizesK(), {4, 8, 16, 32, 64}));
    emitTable(std::cout, makeMpiFunctionTable(records), "fig05");

    std::cout << "\nObservations reproduced:\n"
              << " - MPI_Init takes a considerable share and grows with "
                 "the process count (Section 5.1)\n"
              << " - Send/Sendrecv/Allreduce become more prominent for "
                 "bigger systems\n";
    return 0;
}
