/**
 * @file
 * Figure 5 reproduction: per-MPI-function breakdown of the MPI time
 * (MPI_Init / Send / Sendrecv / Allreduce / Wait / others).
 */

#include <iostream>

#include "core/experiment.h"
#include "harness/report.h"
#include "harness/sweep.h"
#include "obs/bench_options.h"

using namespace mdbench;

int
main(int argc, char **argv)
{
    BenchRun run(argc, argv, "bench_fig05_mpi_functions");
    printFigureHeader(std::cout, "Figure 5",
                      "Breakdown of the MPI overhead by function "
                      "(10k-step runs)");

    const auto records = runModelSweep(
        cpuSweep(allBenchmarks(), paperSizesK(), {4, 8, 16, 32, 64}));
    emitTable(std::cout, makeMpiFunctionTable(records), "fig05");

    // Native companion: blocking vs overlapped halo exchange from the
    // real decomposed engine. The overlap row shifts the forward share
    // from MPI_Send into Isend/Irecv/Waitall and carries a measured
    // host wall column next to the modeled shares.
    std::cout << "\n-- native decomposed companion (measured wall) --\n";
    std::vector<ExperimentSpec> nativeSpecs;
    for (int overlap : {0, 1}) {
        ExperimentSpec spec;
        spec.mode = ExperimentMode::NativeRanked;
        spec.benchmark = BenchmarkId::LJ;
        spec.natoms = 4000;
        spec.resources = 8;
        spec.steps = 300;
        spec.commOverlap = overlap;
        nativeSpecs.push_back(spec);
    }
    emitTable(std::cout, makeMpiFunctionTable(runSweep(nativeSpecs)),
              "fig05_native");

    std::cout << "\nObservations reproduced:\n"
              << " - MPI_Init takes a considerable share and grows with "
                 "the process count (Section 5.1)\n"
              << " - Send/Sendrecv/Allreduce become more prominent for "
                 "bigger systems\n"
              << " - with overlap on, forward-halo time moves from "
                 "MPI_Send into Isend/Irecv/Waitall and only the "
                 "exposed remainder is waited on\n";
    return 0;
}
