/**
 * @file
 * Thread scaling of the PPPM k-space pipeline vs. error threshold: the
 * CPU-side counterpart of the paper's Section 7 sensitivity study
 * (Figs. 10-14), now that the make_rho / poisson / interp stages and
 * the FFT line batches run on the thread pool.
 *
 * Sweeps thread count x accuracy (1e-4 .. 1e-7) on the Rhodopsin-like
 * proxy and reports the Kspace task seconds of a timed segment, the
 * Kspace share of step time, and the per-accuracy speedup against the
 * 1-thread row — the `kspace_speedup` column at the highest thread
 * count is the headline number for this pipeline.
 *
 * Usage: bench_native_kspace_threads [--quick] [shared flags]
 * `--quick` shrinks the system, sweep, and step counts to smoke-test
 * size (CI).
 */

#include <cstring>
#include <iostream>
#include <sstream>
#include <vector>

#include "core/suite.h"
#include "harness/report.h"
#include "kspace/pppm.h"
#include "md/simulation.h"
#include "obs/bench_options.h"
#include "util/table.h"
#include "util/thread_pool.h"
#include "util/timer.h"

using namespace mdbench;

namespace {

std::string
formatDouble(double value, int precision)
{
    std::ostringstream os;
    os.precision(precision);
    os << std::fixed << value;
    return os.str();
}

struct Segment
{
    double kspaceSeconds = 0.0;
    double stepSeconds = 0.0;
    std::size_t natoms = 0;
    std::string grid = "-";
};

Segment
runSegment(int moleculesPerAxis, double accuracy, int nthreads,
           long warmup, long steps)
{
    ThreadPool::setThreads(nthreads);
    SuiteOptions options;
    options.kspaceAccuracy = accuracy;
    auto sim = buildRhodoProxy(moleculesPerAxis, options);
    sim->thermoEvery = 0;
    sim->setup();
    sim->run(warmup);

    sim->timer.reset();
    sim->run(steps);

    Segment segment;
    segment.kspaceSeconds = sim->timer.seconds(Task::Kspace);
    segment.stepSeconds = sim->timer.total();
    segment.natoms = sim->atoms.nlocal();
    if (const auto *pppm = dynamic_cast<const Pppm *>(sim->kspace.get())) {
        segment.grid = std::to_string(pppm->grid()[0]) + "x" +
                       std::to_string(pppm->grid()[1]) + "x" +
                       std::to_string(pppm->grid()[2]);
    }
    return segment;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchRun run(argc, argv, "bench_native_kspace_threads");
    bool quick = false;
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--quick") == 0)
            quick = true;

    const int molecules = quick ? 8 : 12;
    const long warmup = quick ? 2 : 5;
    const long steps = quick ? 5 : 20;
    const std::vector<double> accuracies =
        quick ? std::vector<double>{1e-4, 1e-5}
              : std::vector<double>{1e-4, 1e-5, 1e-6, 1e-7};
    const std::vector<int> threadCounts =
        quick ? std::vector<int>{1, 2, 4} : std::vector<int>{1, 2, 4, 8};

    const int before = ThreadPool::threads();
    Table table({"threads", "accuracy", "grid", "atoms", "steps",
                 "kspace_s", "step_s", "kspace_share", "kspace_speedup"});
    for (double accuracy : accuracies) {
        double baselineKspace = 0.0;
        for (int nthreads : threadCounts) {
            const Segment segment =
                runSegment(molecules, accuracy, nthreads, warmup, steps);
            if (nthreads == threadCounts.front())
                baselineKspace = segment.kspaceSeconds;
            std::ostringstream acc;
            acc << accuracy;
            table.addRow(
                {std::to_string(nthreads), acc.str(), segment.grid,
                 std::to_string(segment.natoms), std::to_string(steps),
                 formatDouble(segment.kspaceSeconds, 3),
                 formatDouble(segment.stepSeconds, 3),
                 formatDouble(segment.stepSeconds > 0.0
                                  ? segment.kspaceSeconds /
                                        segment.stepSeconds
                                  : 0.0,
                              3),
                 formatDouble(segment.kspaceSeconds > 0.0
                                  ? baselineKspace /
                                        segment.kspaceSeconds
                                  : 0.0,
                              3)});
        }
    }
    ThreadPool::setThreads(before);
    emitTable(std::cout, table, "native_kspace_threads");
    return 0;
}
