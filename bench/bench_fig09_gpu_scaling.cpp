/**
 * @file
 * Figure 9 reproduction: GPU-instance performance, energy efficiency,
 * and multi-device parallel efficiency, plus the Section 6.2/10 anchors.
 */

#include <algorithm>
#include <iostream>

#include "harness/report.h"
#include "harness/sweep.h"
#include "obs/bench_options.h"

using namespace mdbench;

int
main(int argc, char **argv)
{
    BenchRun run(argc, argv, "bench_fig09_gpu_scaling");
    printFigureHeader(std::cout, "Figure 9",
                      "GPU-instance performance, energy efficiency, and "
                      "parallel efficiency (1-8 V100s)");

    const auto records = runModelSweep(
        gpuSweep(gpuBenchmarks(), paperSizesK(), paperGpuCounts()));
    emitTable(std::cout, makeScalingTable(records, "GPUs", true), "fig09");

    double worstEfficiency = 100.0;
    for (const auto &record : records)
        if (record.spec.resources == 8)
            worstEfficiency =
                std::min(worstEfficiency, record.parallelEfficiencyPct);

    AnchorReport anchors;
    const auto rhodo = runModelExperiment(
        gpuSweep({BenchmarkId::Rhodo}, {2048}, {8})[0]);
    anchors.add("worst 8-GPU parallel efficiency [%]", 23.28,
                worstEfficiency);
    anchors.add("rhodo 2048k 8 GPUs ns/day (Section 10)", 2.8,
                rhodo.nsPerDay);
    anchors.add("average GPU utilization at 2M atoms [%]", 30.0,
                rhodo.deviceUtilization * 100.0);
    anchors.print(std::cout);

    std::cout << "\nObservations reproduced:\n"
              << " - multi-GPU strong scaling is considerably worse than "
                 "the CPU instance's MPI scaling\n"
              << " - eam outperforms chain on the GPU instance, contrary "
                 "to the CPU ordering\n";
    return 0;
}
