/**
 * @file
 * Throughput of the SIMD pair-kernel compute layer (DESIGN.md §12):
 * sweeps the packed vector width (0 = scalar oracle, 1/2/4/8 = SIMD
 * kernels, ISA backend where one matches) over the lj/cut, EAM, and
 * lj/charmm/coul/long force fields and reports Mpairs/s plus the
 * speedup against the scalar kernel on the same system. lj/cut runs
 * both list flavors, so the half-vs-full vectorization question (Newton
 * scatter + fewer stored pairs vs scatter-free gather loop) is a table
 * column rather than a rebuild.
 *
 * Usage: bench_native_simd_kernels [--quick] [shared flags]
 * `--quick` shrinks systems and the timing target to smoke-test size.
 */

#include <cstring>
#include <functional>
#include <iostream>
#include <memory>
#include <sstream>
#include <vector>

#include "core/suite.h"
#include "harness/report.h"
#include "md/neighbor.h"
#include "md/simulation.h"
#include "obs/bench_options.h"
#include "util/simd.h"
#include "util/table.h"
#include "util/thread_pool.h"
#include "util/timer.h"

using namespace mdbench;

namespace {

std::string
formatDouble(double value, int precision)
{
    std::ostringstream os;
    os.precision(precision);
    os << std::fixed << value;
    return os.str();
}

struct Config
{
    std::string kernel;
    bool fullList;
    std::function<std::unique_ptr<Simulation>()> build;
};

struct Cell
{
    std::size_t natoms = 0;
    std::size_t pairs = 0;
    double mpairsPerSecond = 0.0;
};

/**
 * Time pair->compute on a frozen neighbor list (the packed width is
 * baked in at setup's build). Iterations double until the measurement
 * exceeds @p targetSeconds, so each cell self-calibrates.
 */
Cell
runCell(const Config &config, int width, double targetSeconds)
{
    setSimdWidth(width);
    auto sim = config.build();
    sim->thermoEvery = 0;
    sim->neighbor.full = config.fullList;
    sim->setup();
    setSimdWidth(-1);

    Cell cell;
    cell.natoms = sim->atoms.nlocal();
    cell.pairs = sim->neighbor.list().pairCount();
    long iters = 1;
    for (;;) {
        WallTimer wall;
        for (long it = 0; it < iters; ++it) {
            sim->atoms.zeroForces();
            sim->pair->compute(*sim, sim->neighbor.list());
        }
        const double elapsed = wall.seconds();
        if (elapsed >= targetSeconds || iters >= (1L << 22)) {
            const double perCall = elapsed / static_cast<double>(iters);
            cell.mpairsPerSecond =
                perCall > 0.0
                    ? static_cast<double>(cell.pairs) / perCall * 1e-6
                    : 0.0;
            return cell;
        }
        iters *= 2;
    }
}

} // namespace

int
main(int argc, char **argv)
{
    BenchRun run(argc, argv, "bench_native_simd_kernels");
    bool quick = false;
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--quick") == 0)
            quick = true;

    ThreadPool::setThreads(1); // isolate kernel throughput from threading
    const double target = quick ? 0.02 : 0.25;
    const int ljCells = quick ? 5 : 12;
    const int eamCells = quick ? 4 : 8;
    const int rhodoMolecules = quick ? 8 : 8;

    const std::vector<Config> configs = {
        {"lj/cut", false, [&] { return buildLJ(ljCells); }},
        {"lj/cut", true, [&] { return buildLJ(ljCells); }},
        {"eam", false, [&] { return buildEAM(eamCells); }},
        {"lj/charmm/coul/long", false,
         [&] { return buildRhodoProxy(rhodoMolecules); }},
    };

    Table table({"kernel", "list", "atoms", "pairs", "width", "backend",
                 "mpairs_per_s", "vs_scalar"});
    for (const Config &config : configs) {
        double scalarRate = 0.0;
        for (int width : {0, 1, 2, 4, 8}) {
            const Cell cell = runCell(config, width, target);
            if (width == 0)
                scalarRate = cell.mpairsPerSecond;
            table.addRow(
                {config.kernel, config.fullList ? "full" : "half",
                 std::to_string(cell.natoms), std::to_string(cell.pairs),
                 std::to_string(width), simdBackendName(width),
                 formatDouble(cell.mpairsPerSecond, 2),
                 formatDouble(scalarRate > 0.0
                                  ? cell.mpairsPerSecond / scalarRate
                                  : 0.0,
                              3)});
        }
    }
    emitTable(std::cout, table, "native_simd_kernels");
    return 0;
}
