/**
 * @file
 * Figure 14 reproduction: rhodopsin total MPI overhead and imbalance
 * percentage vs kspace error threshold (1e-5 omitted, as in the paper,
 * because it behaves like 1e-6).
 */

#include <iostream>

#include "harness/report.h"
#include "harness/sweep.h"
#include "obs/bench_options.h"
#include "util/string_utils.h"

using namespace mdbench;

int
main(int argc, char **argv)
{
    BenchRun run(argc, argv, "bench_fig14_kspace_mpi_overhead");
    printFigureHeader(std::cout, "Figure 14",
                      "rhodo total MPI overhead (top) and imbalance "
                      "(bottom) vs kspace error threshold");

    for (double accuracy : {1e-4, 1e-6, 1e-7}) {
        SweepOptions options;
        options.kspaceAccuracy = accuracy;
        const auto records = runModelSweep(cpuSweep(
            {BenchmarkId::Rhodo}, paperSizesK(), {4, 8, 16, 32, 64},
            options));
        std::cout << "\n--- threshold " << formatThreshold(accuracy)
                  << " ---\n";
        emitTable(std::cout, makeMpiOverheadTable(records),
                  "fig14_" + formatThreshold(accuracy));
    }

    SweepOptions tight;
    tight.kspaceAccuracy = 1e-7;
    const auto loose = runModelExperiment(
        cpuSweep({BenchmarkId::Rhodo}, {32}, {64})[0]);
    const auto hard = runModelExperiment(
        cpuSweep({BenchmarkId::Rhodo}, {32}, {64}, tight)[0]);
    std::cout << "\nObservation reproduced: the MPI imbalance share "
                 "drops from "
              << strprintf("%.1f%%", loose.mpiImbalancePercent) << " to "
              << strprintf("%.1f%%", hard.mpiImbalancePercent)
              << " at 1e-7 (synchronization replaced by data exchange).\n";
    return 0;
}
