/**
 * @file
 * Figure 7 reproduction: GPU-instance execution-time breakdown by task
 * for the four GPU-supported benchmarks (no Chute).
 */

#include <iostream>

#include "harness/report.h"
#include "harness/sweep.h"
#include "obs/bench_options.h"

using namespace mdbench;

int
main(int argc, char **argv)
{
    BenchRun run(argc, argv, "bench_fig07_gpu_breakdown");
    printFigureHeader(std::cout, "Figure 7",
                      "GPU-instance execution-time breakdown by task "
                      "(Chute unsupported by the reference GPU package)");

    const auto records = runModelSweep(
        gpuSweep(gpuBenchmarks(), paperSizesK(), paperGpuCounts()));
    emitTable(std::cout, makeBreakdownTable(records, "GPUs"), "fig07");

    const auto rhodo = runModelExperiment(
        gpuSweep({BenchmarkId::Rhodo}, {2048}, {8})[0]);
    std::cout << "\nObservations reproduced:\n"
              << " - rhodo Pair share falls below 25% once accelerated "
                 "(paper Section 6.1): "
              << static_cast<int>(
                     rhodo.taskBreakdown.fraction(Task::Pair) * 100)
              << "%\n"
              << " - Modify grows (SHAKE stays on the host CPU): "
              << static_cast<int>(
                     rhodo.taskBreakdown.fraction(Task::Modify) * 100)
              << "%\n";
    return 0;
}
