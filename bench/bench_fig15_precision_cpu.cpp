/**
 * @file
 * Figure 15 reproduction: LJ and rhodopsin performance on the CPU
 * instance with single, mixed (default), and double floating-point
 * precision for the pairwise non-bonded forces.
 */

#include <iostream>

#include "core/experiment.h"
#include "harness/report.h"
#include "harness/sweep.h"
#include "obs/bench_options.h"
#include "util/string_utils.h"

using namespace mdbench;

int
main(int argc, char **argv)
{
    BenchRun run(argc, argv, "bench_fig15_precision_cpu");
    printFigureHeader(std::cout, "Figure 15",
                      "LJ and rhodo CPU performance vs floating-point "
                      "precision");

    Table table({"variant", "size[k]", "procs", "perf [TS/s]"});
    for (BenchmarkId id : {BenchmarkId::LJ, BenchmarkId::Rhodo}) {
        for (Precision precision :
             {Precision::Mixed, Precision::Single, Precision::Double}) {
            SweepOptions options;
            options.precision = precision;
            const auto records = runModelSweep(cpuSweep(
                {id}, paperSizesK(), paperRankCounts(), options));
            const std::string variant =
                precision == Precision::Mixed
                    ? benchmarkName(id)
                    : std::string(benchmarkName(id)) + "-" +
                          precisionName(precision);
            for (const auto &record : records) {
                table.addRow(
                    {variant, std::to_string(record.spec.natoms / 1000),
                     std::to_string(record.spec.resources),
                     strprintf("%9.2f", record.timestepsPerSecond)});
            }
        }
    }
    emitTable(std::cout, table, "fig15");

    // Native measured counterpart: the real engine at host scale with
    // the tier applied to the actual vectorized kernels, one row per
    // precision — the measured trend behind the modeled figure.
    Table native({"variant", "atoms", "tier", "measured [TS/s]",
                  "vs_double"});
    for (BenchmarkId id : {BenchmarkId::LJ, BenchmarkId::Rhodo}) {
        double baseline = 0.0;
        for (Precision precision :
             {Precision::Double, Precision::Mixed, Precision::Single}) {
            ExperimentSpec spec;
            spec.mode = ExperimentMode::NativeSerial;
            spec.benchmark = id;
            spec.natoms = id == BenchmarkId::Rhodo ? 2000 : 4000;
            spec.steps = id == BenchmarkId::Rhodo ? 25 : 150;
            spec.precision = precision;
            const ExperimentRecord record = runExperiment(spec);
            if (precision == Precision::Double)
                baseline = record.timestepsPerSecond;
            native.addRow({benchmarkName(id),
                           std::to_string(record.spec.natoms),
                           precisionName(precision),
                           strprintf("%9.2f", record.timestepsPerSecond),
                           strprintf("%.3f",
                                     baseline > 0.0
                                         ? record.timestepsPerSecond /
                                               baseline
                                         : 0.0)});
        }
    }
    emitTable(std::cout, native, "fig15_native_measured");

    AnchorReport anchors;
    auto at = [&](BenchmarkId id, Precision precision) {
        SweepOptions options;
        options.precision = precision;
        return runModelExperiment(cpuSweep({id}, {2048}, {64}, options)[0])
            .timestepsPerSecond;
    };
    anchors.add("lj 2048k 64p single [TS/s]", 115.2,
                at(BenchmarkId::LJ, Precision::Single));
    anchors.add("lj 2048k 64p double [TS/s]", 98.9,
                at(BenchmarkId::LJ, Precision::Double));
    anchors.add("rhodo 2048k 64p single [TS/s]", 11.5,
                at(BenchmarkId::Rhodo, Precision::Single));
    anchors.add("rhodo 2048k 64p double [TS/s]", 8.4,
                at(BenchmarkId::Rhodo, Precision::Double));
    anchors.print(std::cout);
    return 0;
}
