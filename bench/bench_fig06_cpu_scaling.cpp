/**
 * @file
 * Figure 6 reproduction: performance (TS/s), energy efficiency
 * (TS/s/W), and parallel efficiency of all benchmarks on the CPU
 * instance, plus the Section 10 ns/day headline anchors.
 */

#include <iostream>

#include "harness/report.h"
#include "harness/sweep.h"
#include "obs/bench_options.h"

using namespace mdbench;

int
main(int argc, char **argv)
{
    BenchRun run(argc, argv, "bench_fig06_cpu_scaling");
    printFigureHeader(std::cout, "Figure 6",
                      "CPU-instance performance, energy efficiency, and "
                      "parallel efficiency");

    const auto records = runModelSweep(
        cpuSweep(allBenchmarks(), paperSizesK(), paperRankCounts()));
    emitTable(std::cout, makeScalingTable(records, "procs"), "fig06");

    AnchorReport anchors;
    auto at = [&](BenchmarkId id, long sizeK, int ranks) {
        return runModelExperiment(cpuSweep({id}, {sizeK}, {ranks})[0]);
    };
    anchors.add("rhodo 2048k 64 procs [TS/s]", 10.77,
                at(BenchmarkId::Rhodo, 2048, 64).timestepsPerSecond);
    anchors.add("rhodo 2048k 64 procs parallel eff [%]", 74.29,
                at(BenchmarkId::Rhodo, 2048, 64).parallelEfficiencyPct);
    anchors.add("rhodo 2048k ns/day (Section 10)", 2.0,
                at(BenchmarkId::Rhodo, 2048, 64).nsPerDay);
    anchors.add("chute 32k best perf [TS/s]", 10697.0,
                at(BenchmarkId::Chute, 32, 64).timestepsPerSecond);
    anchors.print(std::cout);

    std::cout << "\nObservations reproduced:\n"
              << " - rhodo has by far the lowest TS/s (an order of "
                 "magnitude more neighbors/atom + long-range forces)\n"
              << " - chute leads small systems but cannot sustain it at "
                 "larger sizes, with the worst parallel efficiency\n";
    return 0;
}
