/**
 * @file
 * Cache-locality effect of spatial atom reordering on the pair/neighbor
 * hot path: sweeps the sort interval (off / every rebuild / every 5th
 * rebuild) over the LJ, EAM, and Chain workloads and reports the Pair
 * and Neigh task seconds of a timed segment.
 *
 * Each system is pre-shuffled with a fixed-seed random permutation
 * before setup, modeling the diffused steady state of a long run where
 * memory order has decorrelated from space. The sort-disabled rows keep
 * that shuffled order for the whole run and are the locality baseline
 * the `vs_off` speedup column is computed against.
 *
 * Usage: bench_native_sort_locality [--quick] [shared flags]
 * `--quick` shrinks systems and step counts to smoke-test size (CI).
 */

#include <cstring>
#include <iostream>
#include <sstream>
#include <vector>

#include "core/suite.h"
#include "harness/report.h"
#include "md/simulation.h"
#include "obs/bench_options.h"
#include "obs/counters.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/timer.h"

using namespace mdbench;

namespace {

std::string
formatDouble(double value, int precision)
{
    std::ostringstream os;
    os.precision(precision);
    os << std::fixed << value;
    return os.str();
}

/** Fixed-seed Fisher-Yates permutation of the owned atoms. */
void
shuffleAtoms(Simulation &sim, std::uint64_t seed)
{
    const std::size_t n = sim.atoms.nlocal();
    std::vector<std::uint32_t> oldOf(n);
    for (std::size_t i = 0; i < n; ++i)
        oldOf[i] = static_cast<std::uint32_t>(i);
    Rng rng(seed);
    for (std::size_t i = n - 1; i > 0; --i)
        std::swap(oldOf[i], oldOf[rng.uniformInt(i + 1)]);
    sim.atoms.applyPermutation(oldOf);
}

struct Config
{
    BenchmarkId id;
    long natoms;
    long warmup; ///< steps before the timer reset (sorts settle here)
    long steps;  ///< timed steps
};

struct Segment
{
    double pairSeconds = 0.0;
    double neighSeconds = 0.0;
    long sortsApplied = 0;
    long sortsSkipped = 0;
    std::size_t natoms = 0;
};

/**
 * One cell of the sweep: build, shuffle, warm up, then time. Sort time
 * itself is charged to Neigh (see Simulation::maybeSortAtoms), so the
 * pair+neigh sum the speedup uses already pays for the sorts.
 */
Segment
runSegment(const Config &config, int sortEvery)
{
    auto sim = buildNative(config.id, config.natoms);
    sim->thermoEvery = 0;
    sim->setSortEvery(sortEvery);
    shuffleAtoms(*sim, 777);
    const auto skippedBefore = counterValue(Counter::SortSkipped);
    sim->setup();
    sim->run(config.warmup);

    sim->timer.reset();
    sim->run(config.steps);

    Segment segment;
    segment.pairSeconds = sim->timer.seconds(Task::Pair);
    segment.neighSeconds = sim->timer.seconds(Task::Neigh);
    // Sort/skip counts cover the whole run (setup + warmup + timed):
    // solid workloads sort once at setup and never rebuild again, which
    // a timed-segment delta would report as zero.
    segment.sortsApplied = sim->neighbor.sortCount();
    segment.sortsSkipped = static_cast<long>(
        counterValue(Counter::SortSkipped) - skippedBefore);
    segment.natoms = sim->atoms.nlocal();
    return segment;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchRun run(argc, argv, "bench_native_sort_locality");
    bool quick = false;
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--quick") == 0)
            quick = true;

    const std::vector<Config> configs =
        quick ? std::vector<Config>{{BenchmarkId::LJ, 4000, 20, 30},
                                    {BenchmarkId::EAM, 4000, 15, 20},
                                    {BenchmarkId::Chain, 4000, 20, 30}}
              : std::vector<Config>{{BenchmarkId::LJ, 500000, 60, 60},
                                    {BenchmarkId::EAM, 108000, 40, 40},
                                    {BenchmarkId::Chain, 96000, 60, 60}};

    Table table({"bench", "atoms", "sort_every", "steps", "pair_s",
                 "neigh_s", "pair+neigh_s", "vs_off", "sorts", "skipped"});
    for (const Config &config : configs) {
        double baselineHot = 0.0;
        for (int sortEvery : {0, 1, 5}) {
            const Segment segment = runSegment(config, sortEvery);
            const double hot = segment.pairSeconds + segment.neighSeconds;
            if (sortEvery == 0)
                baselineHot = hot;
            table.addRow({benchmarkName(config.id),
                          std::to_string(segment.natoms),
                          std::to_string(sortEvery),
                          std::to_string(config.steps),
                          formatDouble(segment.pairSeconds, 3),
                          formatDouble(segment.neighSeconds, 3),
                          formatDouble(hot, 3),
                          formatDouble(hot > 0.0 ? baselineHot / hot : 0.0,
                                       3),
                          std::to_string(segment.sortsApplied),
                          std::to_string(segment.sortsSkipped)});
        }
    }
    emitTable(std::cout, table, "native_sort_locality");
    return 0;
}
