/**
 * @file
 * Native precision-tier study (DESIGN.md §13): sweeps the three
 * compute tiers (double / mixed / single) over the vectorized pair
 * kernels at the scalar width and each compiled native SIMD width,
 * reporting Mpairs/s and the speedup against the double tier at its
 * own native width — the paper's Section 8 question ("what does
 * dropping precision buy?") asked of the native engine instead of the
 * analytical model. The lj/cut rows at each tier's native width also
 * carry accuracy columns: relative NVE energy drift over a long
 * microcanonical run and the maximum RDF deviation from the
 * double-tier trajectory.
 *
 * Usage: bench_native_precision [--quick] [shared flags]
 * `--quick` shrinks systems, the timing target, and the NVE run to
 * smoke-test size.
 */

#include <algorithm>
#include <cmath>
#include <cstring>
#include <functional>
#include <iostream>
#include <memory>
#include <sstream>
#include <vector>

#include "core/suite.h"
#include "harness/report.h"
#include "md/analysis.h"
#include "md/neighbor.h"
#include "md/simulation.h"
#include "obs/bench_options.h"
#include "util/precision.h"
#include "util/simd.h"
#include "util/table.h"
#include "util/thread_pool.h"
#include "util/timer.h"

using namespace mdbench;

namespace {

std::string
formatDouble(double value, int precision)
{
    std::ostringstream os;
    os.precision(precision);
    os << std::fixed << value;
    return os.str();
}

std::string
formatScientific(double value, int precision)
{
    std::ostringstream os;
    os.precision(precision);
    os << std::scientific << value;
    return os.str();
}

struct Config
{
    std::string kernel;
    bool fullList;
    std::function<std::unique_ptr<Simulation>()> build;
};

struct Cell
{
    std::size_t natoms = 0;
    std::size_t pairs = 0;
    double mpairsPerSecond = 0.0;
};

/**
 * Time pair->compute on a frozen neighbor list packed at @p tier and
 * @p width (both are baked in at setup's build; the compute dispatch
 * reads them back off the list, so the globals are restored before
 * timing starts). Iterations double until the measurement exceeds
 * @p targetSeconds, so each cell self-calibrates.
 */
Cell
runCell(const Config &config, Precision tier, int width,
        double targetSeconds)
{
    setPrecisionTier(tier);
    setSimdWidth(width);
    auto sim = config.build();
    sim->thermoEvery = 0;
    sim->neighbor.full = config.fullList;
    sim->setup();
    setSimdWidth(-1);
    setPrecisionTier(Precision::EngineDefault);

    Cell cell;
    cell.natoms = sim->atoms.nlocal();
    cell.pairs = sim->neighbor.list().pairCount();
    auto measure = [&](long iters) {
        WallTimer wall;
        for (long it = 0; it < iters; ++it) {
            sim->atoms.zeroForces();
            sim->pair->compute(*sim, sim->neighbor.list());
        }
        return wall.seconds();
    };
    long iters = 1;
    double elapsed;
    while ((elapsed = measure(iters)) < targetSeconds &&
           iters < (1L << 22))
        iters *= 2;
    // Best-of-3 at the calibrated repeat count: the minimum estimates
    // the uncontended cost, shielding the ratio columns from scheduler
    // noise on shared machines.
    elapsed = std::min({elapsed, measure(iters), measure(iters)});
    const double perCall = elapsed / static_cast<double>(iters);
    cell.mpairsPerSecond =
        perCall > 0.0 ? static_cast<double>(cell.pairs) / perCall * 1e-6
                      : 0.0;
    return cell;
}

struct Accuracy
{
    double drift = 0.0;    ///< |E(t) - E(0)| / |E(0)| after the run
    std::vector<double> g; ///< RDF histogram at the end of the run
};

/**
 * Long microcanonical LJ run at @p tier and the tier's native SIMD
 * width: the accuracy half of the study. The same deterministic
 * initial condition at every tier, so the RDF histograms are directly
 * comparable bin by bin.
 */
Accuracy
runAccuracy(Precision tier, int cells, long steps)
{
    setPrecisionTier(tier);
    // Pin the tier's native width for the whole run (rebuilds repack):
    // the engine default resolves to the plain scalar double kernels on
    // a generic build, which would hide the float tiers entirely.
    setSimdWidth(tier == Precision::Double ? kSimdCompiledWidth
                                           : kSimdCompiledFloatWidth);
    auto sim = buildLJ(cells);
    sim->thermoEvery = 0;
    sim->setup();
    const double e0 = sim->kineticEnergy() + sim->potentialEnergy();
    sim->run(steps);
    const double e1 = sim->kineticEnergy() + sim->potentialEnergy();

    Accuracy accuracy;
    accuracy.drift = std::fabs(e1 - e0) / std::fabs(e0);
    accuracy.g = computeRdf(*sim, 2.5, 100).g;
    setSimdWidth(-1);
    setPrecisionTier(Precision::EngineDefault);
    return accuracy;
}

double
maxAbsDiff(const std::vector<double> &a, const std::vector<double> &b)
{
    double worst = 0.0;
    for (std::size_t i = 0; i < a.size() && i < b.size(); ++i)
        worst = std::max(worst, std::fabs(a[i] - b[i]));
    return worst;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchRun run(argc, argv, "bench_native_precision");
    bool quick = false;
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--quick") == 0)
            quick = true;

    ThreadPool::setThreads(1); // isolate kernel throughput from threading
    const double target = quick ? 0.02 : 0.25;
    const int ljCells = quick ? 5 : 12;
    const int eamCells = quick ? 4 : 8;
    const int rhodoMolecules = 8;
    const int accuracyCells = quick ? 4 : 6;
    const long accuracySteps = quick ? 200 : 10000;

    // lj/cut runs both list flavors: the half list pays a scalar
    // Newton scatter per pair that float lanes cannot widen, so the
    // scatter-free full list is where the precision tiers separate.
    const std::vector<Config> configs = {
        {"lj/cut", false, [&] { return buildLJ(ljCells); }},
        {"lj/cut", true, [&] { return buildLJ(ljCells); }},
        {"eam", false, [&] { return buildEAM(eamCells); }},
        {"lj/charmm/coul/long", false,
         [&] { return buildRhodoProxy(rhodoMolecules); }},
    };
    const std::vector<Precision> tiers = {
        Precision::Double, Precision::Mixed, Precision::Single};

    // Scalar plus each compiled native width (double lanes and float
    // lanes differ on any real ISA; deduplicate for the generic build).
    std::vector<int> widths = {0, kSimdCompiledWidth};
    if (kSimdCompiledFloatWidth != kSimdCompiledWidth)
        widths.push_back(kSimdCompiledFloatWidth);

    // Accuracy study: one NVE run per tier at its native width; the
    // double tier's RDF is the reference the float tiers diverge from.
    const Accuracy reference =
        runAccuracy(Precision::Double, accuracyCells, accuracySteps);
    std::vector<std::pair<Precision, Accuracy>> accuracy = {
        {Precision::Double, reference}};
    for (Precision tier : {Precision::Mixed, Precision::Single})
        accuracy.emplace_back(
            tier, runAccuracy(tier, accuracyCells, accuracySteps));

    Table table({"kernel", "list", "tier", "width", "backend", "atoms",
                 "pairs", "mpairs_per_s", "vs_double_native",
                 "energy_drift", "rdf_max_err"});
    for (const Config &config : configs) {
        struct Row
        {
            Precision tier;
            int width;
            Cell cell;
        };
        std::vector<Row> rows;
        double doubleNativeRate = 0.0;
        for (Precision tier : tiers) {
            const int native = tier == Precision::Double
                                   ? kSimdCompiledWidth
                                   : kSimdCompiledFloatWidth;
            for (int width : widths) {
                const Cell cell = runCell(config, tier, width, target);
                if (tier == Precision::Double && width == native)
                    doubleNativeRate = cell.mpairsPerSecond;
                rows.push_back({tier, width, cell});
            }
        }
        for (const Row &row : rows) {
            const bool floatLanes = row.tier != Precision::Double;
            const int native = floatLanes ? kSimdCompiledFloatWidth
                                          : kSimdCompiledWidth;
            std::string drift = "-";
            std::string rdfErr = "-";
            // The accuracy run uses the engine-default (half) list;
            // attach its columns to the matching throughput rows.
            if (config.kernel == "lj/cut" && !config.fullList &&
                row.width == native) {
                for (const auto &[tier, acc] : accuracy) {
                    if (tier != row.tier)
                        continue;
                    drift = formatScientific(acc.drift, 2);
                    rdfErr = formatScientific(
                        maxAbsDiff(acc.g, reference.g), 2);
                }
            }
            table.addRow(
                {config.kernel, config.fullList ? "full" : "half",
                 precisionName(row.tier), std::to_string(row.width),
                 simdBackendName(row.width, floatLanes),
                 std::to_string(row.cell.natoms),
                 std::to_string(row.cell.pairs),
                 formatDouble(row.cell.mpairsPerSecond, 2),
                 formatDouble(doubleNativeRate > 0.0
                                  ? row.cell.mpairsPerSecond /
                                        doubleNativeRate
                                  : 0.0,
                              3),
                 drift, rdfErr});
        }
    }
    emitTable(std::cout, table, "native_precision");
    return 0;
}
