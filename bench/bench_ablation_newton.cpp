/**
 * @file
 * Ablation: Newton's-third-law lists. The paper notes Chute's
 * gran/hooke/history does not exploit Newton-3 (full lists, each pair
 * computed twice). This bench quantifies what half lists would buy on
 * the modeled CPU instance, and conversely what LJ would lose with
 * full lists — isolating the design choice.
 */

#include <iostream>

#include "harness/report.h"
#include "obs/bench_options.h"
#include "perf/cpu_model.h"
#include "util/string_utils.h"

using namespace mdbench;

int
main(int argc, char **argv)
{
    BenchRun run(argc, argv, "bench_ablation_newton");
    printFigureHeader(std::cout, "Ablation: Newton's third law",
                      "half vs full neighbor lists on the modeled CPU "
                      "instance (64 ranks)");

    const CpuModel model;
    Table table({"benchmark", "size[k]", "lists", "perf [TS/s]",
                 "speedup"});
    for (BenchmarkId id : {BenchmarkId::Chute, BenchmarkId::LJ}) {
        for (long sizeK : {32L, 2048L}) {
            WorkloadInstance asIs =
                WorkloadInstance::make(id, sizeK * 1000);
            WorkloadInstance flipped = asIs;
            flipped.spec.newton3 = !flipped.spec.newton3;

            const double tsAsIs =
                model.evaluate(asIs, 64).timestepsPerSecond;
            const double tsFlipped =
                model.evaluate(flipped, 64).timestepsPerSecond;
            const char *asIsLists =
                asIs.spec.newton3 ? "half (as shipped)"
                                  : "full (as shipped)";
            const char *flippedLists =
                flipped.spec.newton3 ? "half (what-if)" : "full (what-if)";
            table.addRow({benchmarkName(id), std::to_string(sizeK),
                          asIsLists, strprintf("%9.1f", tsAsIs), "1.00x"});
            table.addRow({benchmarkName(id), std::to_string(sizeK),
                          flippedLists, strprintf("%9.1f", tsFlipped),
                          strprintf("%.2fx", tsFlipped / tsAsIs)});
        }
    }
    emitTable(std::cout, table, "ablation_newton");
    std::cout << "\nTakeaway: adding Newton-3 support to the granular "
                 "style would roughly halve its pair work — one of the "
                 "clearest optimization opportunities the "
                 "characterization exposes.\n";
    return 0;
}
