/**
 * @file
 * Throughput of the neighbor-list build pipeline (DESIGN.md §14):
 * sweeps packing layout (csr | cluster) × SIMD filter width (0 =
 * scalar oracle walk, -1 = native width) × thread count × system size
 * on the LJ melt and reports best-of-N build time, ns/atom, and the
 * bytes/atom of the packing the pair kernels traverse. The
 * `vs_scalar_serial` column is the speedup against the scalar
 * single-thread build of the same system — the number the vectorized +
 * threaded build is accountable to.
 *
 * Usage: bench_native_neigh_build [--quick] [shared flags]
 * `--quick` shrinks systems and the repeat count to smoke-test size.
 */

#include <algorithm>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/suite.h"
#include "harness/report.h"
#include "md/neighbor.h"
#include "md/simulation.h"
#include "obs/bench_options.h"
#include "util/neigh_layout.h"
#include "util/simd.h"
#include "util/table.h"
#include "util/thread_pool.h"
#include "util/timer.h"

using namespace mdbench;

namespace {

std::string
formatDouble(double value, int precision)
{
    std::ostringstream os;
    os.precision(precision);
    os << std::fixed << value;
    return os.str();
}

/** Bytes of the packing the pair kernels actually traverse. */
std::size_t
packedListBytes(const NeighborList &list)
{
    if (list.clusterN >= 2) {
        return sizeof(std::uint32_t) *
               (list.clusterJAtoms.size() + list.clusterIAtoms.size() +
                list.clusterOffsets.size() + list.clusterPairs.size());
    }
    if (list.padWidth >= 1) {
        return sizeof(std::uint32_t) *
               (list.packedOffsets.size() + list.packedNeighbors.size());
    }
    return sizeof(std::uint32_t) *
           (list.offsets.size() + list.neighbors.size());
}

struct Cell
{
    std::size_t natoms = 0;
    std::size_t pairs = 0;
    double buildMs = 0.0;
    double bytesPerAtom = 0.0;
};

/**
 * Best-of-@p reps rebuild time with the requested knobs applied for
 * the whole cell (positions are frozen, so every rebuild does
 * identical work and the minimum is the clean measurement).
 */
Cell
runCell(int cells, int width, int layout, int threads, int reps)
{
    setSimdWidth(width);
    setNeighLayout(layout);
    ThreadPool::setThreads(threads);
    auto sim = buildLJ(cells);
    sim->thermoEvery = 0;
    sim->setup();

    Cell cell;
    cell.natoms = sim->atoms.nlocal();
    double best = -1.0;
    for (int rep = 0; rep < reps; ++rep) {
        WallTimer wall;
        sim->neighbor.build(*sim);
        const double elapsed = wall.seconds();
        if (best < 0.0 || elapsed < best)
            best = elapsed;
    }
    cell.buildMs = best * 1e3;
    cell.pairs = sim->neighbor.list().pairCount();
    cell.bytesPerAtom =
        static_cast<double>(packedListBytes(sim->neighbor.list())) /
        static_cast<double>(cell.natoms);
    setSimdWidth(-1);
    setNeighLayout(-1);
    return cell;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchRun run(argc, argv, "bench_native_neigh_build");
    bool quick = false;
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--quick") == 0)
            quick = true;

    const int reps = quick ? 2 : 3;
    // buildLJ(c) is 4c³ atoms: the full sweep ends at the paper's
    // 500k-atom LJ working set (the acceptance workload), quick stays
    // smoke-test sized.
    const std::vector<int> sizes =
        quick ? std::vector<int>{5, 8} : std::vector<int>{16, 32, 50};
    const int hwThreads = std::max(
        1, static_cast<int>(std::thread::hardware_concurrency()));
    std::vector<int> threadCounts{1};
    if (hwThreads > 1)
        threadCounts.push_back(hwThreads);

    const int previousThreads = ThreadPool::threads();
    Table table({"layout", "width", "backend", "threads", "atoms",
                 "pairs", "build_ms", "ns_per_atom",
                 "list_bytes_per_atom", "vs_scalar_serial"});
    for (const int cells : sizes) {
        double scalarSerialMs = 0.0;
        for (const int layout : {0, 1}) {
            for (const int width : {0, -1}) {
                for (const int threads : threadCounts) {
                    const Cell cell =
                        runCell(cells, width, layout, threads, reps);
                    if (layout == 0 && width == 0 && threads == 1)
                        scalarSerialMs = cell.buildMs;
                    const int resolvedWidth =
                        width == 0 ? 0 : simdWidthFor(false);
                    table.addRow(
                        {neighLayoutName(layout == 1
                                             ? NeighLayout::Cluster
                                             : NeighLayout::Csr),
                         std::to_string(resolvedWidth),
                         simdBackendName(resolvedWidth),
                         std::to_string(threads),
                         std::to_string(cell.natoms),
                         std::to_string(cell.pairs),
                         formatDouble(cell.buildMs, 3),
                         formatDouble(cell.buildMs * 1e6 /
                                          static_cast<double>(
                                              cell.natoms),
                                      2),
                         formatDouble(cell.bytesPerAtom, 1),
                         formatDouble(cell.buildMs > 0.0
                                          ? scalarSerialMs / cell.buildMs
                                          : 0.0,
                                      3)});
                }
            }
        }
    }
    ThreadPool::setThreads(previousThreads);
    emitTable(std::cout, table, "native_neigh_build");
    return 0;
}
