/**
 * @file
 * Figure 16 reproduction: LJ and rhodopsin performance on the GPU
 * instance vs floating-point precision — LJ is the most sensitive
 * benchmark, rhodo is nearly flat.
 */

#include <iostream>

#include "core/experiment.h"
#include "harness/report.h"
#include "harness/sweep.h"
#include "obs/bench_options.h"
#include "util/string_utils.h"

using namespace mdbench;

int
main(int argc, char **argv)
{
    BenchRun run(argc, argv, "bench_fig16_precision_gpu");
    printFigureHeader(std::cout, "Figure 16",
                      "LJ and rhodo GPU performance vs floating-point "
                      "precision");

    Table table({"variant", "size[k]", "GPUs", "perf [TS/s]"});
    for (BenchmarkId id : {BenchmarkId::LJ, BenchmarkId::Rhodo}) {
        for (Precision precision :
             {Precision::Mixed, Precision::Single, Precision::Double}) {
            SweepOptions options;
            options.precision = precision;
            const auto records = runModelSweep(gpuSweep(
                {id}, paperSizesK(), paperGpuCounts(), options));
            const std::string variant =
                precision == Precision::Mixed
                    ? benchmarkName(id)
                    : std::string(benchmarkName(id)) + "-" +
                          precisionName(precision);
            for (const auto &record : records) {
                table.addRow(
                    {variant, std::to_string(record.spec.natoms / 1000),
                     std::to_string(record.spec.resources),
                     strprintf("%9.2f", record.timestepsPerSecond)});
            }
        }
    }
    emitTable(std::cout, table, "fig16");

    // Native measured counterpart: no GPU engine exists in this
    // reproduction, so the host engine supplies the measured
    // precision sensitivity (LJ reacts, rhodo is damped by its
    // fixed-precision bonded/k-space share — the figure's own story).
    Table native({"variant", "atoms", "tier", "measured [TS/s]",
                  "vs_double"});
    for (BenchmarkId id : {BenchmarkId::LJ, BenchmarkId::Rhodo}) {
        double baseline = 0.0;
        for (Precision precision :
             {Precision::Double, Precision::Mixed, Precision::Single}) {
            ExperimentSpec spec;
            spec.mode = ExperimentMode::NativeSerial;
            spec.benchmark = id;
            spec.natoms = id == BenchmarkId::Rhodo ? 2000 : 4000;
            spec.steps = id == BenchmarkId::Rhodo ? 25 : 150;
            spec.precision = precision;
            const ExperimentRecord record = runExperiment(spec);
            if (precision == Precision::Double)
                baseline = record.timestepsPerSecond;
            native.addRow({benchmarkName(id),
                           std::to_string(record.spec.natoms),
                           precisionName(precision),
                           strprintf("%9.2f", record.timestepsPerSecond),
                           strprintf("%.3f",
                                     baseline > 0.0
                                         ? record.timestepsPerSecond /
                                               baseline
                                         : 0.0)});
        }
    }
    emitTable(std::cout, native, "fig16_native_measured");

    AnchorReport anchors;
    auto at = [&](BenchmarkId id, Precision precision) {
        SweepOptions options;
        options.precision = precision;
        return runModelExperiment(gpuSweep({id}, {2048}, {8}, options)[0])
            .timestepsPerSecond;
    };
    anchors.add("lj 2048k 8 GPUs single [TS/s]", 170.0,
                at(BenchmarkId::LJ, Precision::Single));
    anchors.add("lj 2048k 8 GPUs double [TS/s]", 121.6,
                at(BenchmarkId::LJ, Precision::Double));
    anchors.add("rhodo 2048k 8 GPUs single [TS/s]", 17.1,
                at(BenchmarkId::Rhodo, Precision::Single));
    anchors.add("rhodo 2048k 8 GPUs double [TS/s]", 16.5,
                at(BenchmarkId::Rhodo, Precision::Double));
    anchors.print(std::cout);
    return 0;
}
