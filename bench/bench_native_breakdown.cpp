/**
 * @file
 * Native-engine characterization (the validation path of Figure 2's
 * framework): runs the *real* from-scratch engine on host-scale
 * instances of all five benchmarks, serial and decomposed, and prints
 * the same task-breakdown and MPI tables the modeled figures use.
 */

#include <iostream>

#include "core/experiment.h"
#include "harness/report.h"

using namespace mdbench;

int
main()
{
    printFigureHeader(std::cout, "Native breakdown",
                      "Real-engine task breakdown on the reproduction "
                      "host (small instances; validates the Fig. 2 "
                      "instrumentation path)");

    std::vector<ExperimentRecord> records;
    struct Config
    {
        BenchmarkId id;
        long natoms;
        long steps;
    };
    const std::vector<Config> configs = {
        {BenchmarkId::Chain, 4000, 150}, {BenchmarkId::Chute, 3000, 1500},
        {BenchmarkId::EAM, 4000, 80},    {BenchmarkId::LJ, 4000, 150},
        {BenchmarkId::Rhodo, 2000, 25}};
    for (const Config &config : configs) {
        ExperimentSpec spec;
        spec.mode = ExperimentMode::NativeSerial;
        spec.benchmark = config.id;
        spec.natoms = config.natoms;
        spec.steps = config.steps;
        records.push_back(runExperiment(spec));
    }
    emitTable(std::cout, makeBreakdownTable(records, "procs(=1)"),
              "native_serial");

    // Decomposed runs with simulated MPI (LJ / Chain / Chute).
    std::vector<ExperimentRecord> ranked;
    for (BenchmarkId id :
         {BenchmarkId::LJ, BenchmarkId::Chain, BenchmarkId::Chute}) {
        for (int ranks : {2, 4, 8}) {
            ExperimentSpec spec;
            spec.mode = ExperimentMode::NativeRanked;
            spec.benchmark = id;
            spec.natoms = 4000;
            spec.resources = ranks;
            spec.steps = 60;
            ranked.push_back(runExperiment(spec));
        }
    }
    emitTable(std::cout, makeBreakdownTable(ranked, "procs"),
              "native_ranked_tasks");
    emitTable(std::cout, makeMpiFunctionTable(ranked),
              "native_ranked_mpi");
    return 0;
}
