/**
 * @file
 * Native-engine characterization (the validation path of Figure 2's
 * framework): runs the *real* from-scratch engine on host-scale
 * instances of all five benchmarks, serial and decomposed, and prints
 * the same task-breakdown and MPI tables the modeled figures use.
 */

#include <iostream>
#include <sstream>

#include "core/experiment.h"
#include "harness/report.h"
#include "obs/bench_options.h"
#include "util/table.h"
#include "util/thread_pool.h"

using namespace mdbench;

namespace {

std::string
formatDouble(double value, int precision)
{
    std::ostringstream os;
    os.precision(precision);
    os << std::fixed << value;
    return os.str();
}

/**
 * Shared-memory thread scaling of the real engine: TS/s at 1, 2, 4, and
 * the machine-default thread count, per benchmark. This is in-core
 * threading of the hot kernels, distinct from the simulated MPI-rank
 * scaling of the ranked tables below.
 */
void
emitThreadScaling(std::ostream &os)
{
    Table table({"bench", "threads", "TS/s", "speedup"});
    for (BenchmarkId id : {BenchmarkId::LJ, BenchmarkId::EAM}) {
        double baseline = 0.0;
        for (int threads : {1, 2, 4, 0}) {
            ExperimentSpec spec;
            spec.mode = ExperimentMode::NativeSerial;
            spec.benchmark = id;
            spec.natoms = 4000;
            spec.steps = id == BenchmarkId::EAM ? 40 : 100;
            spec.threads = threads == 0 ? ThreadPool::threads() : threads;
            const ExperimentRecord record = runExperiment(spec);
            if (threads == 1)
                baseline = record.timestepsPerSecond;
            table.addRow({benchmarkName(id), std::to_string(spec.threads),
                          formatDouble(record.timestepsPerSecond, 2),
                          formatDouble(baseline > 0.0
                                           ? record.timestepsPerSecond /
                                                 baseline
                                           : 0.0,
                                       2)});
        }
    }
    emitTable(os, table, "native_thread_scaling");
}

} // namespace

int
main(int argc, char **argv)
{
    BenchRun run(argc, argv, "bench_native_breakdown");
    printFigureHeader(std::cout, "Native breakdown",
                      "Real-engine task breakdown on the reproduction "
                      "host (small instances; validates the Fig. 2 "
                      "instrumentation path)");

    std::vector<ExperimentRecord> records;
    struct Config
    {
        BenchmarkId id;
        long natoms;
        long steps;
    };
    const std::vector<Config> configs = {
        {BenchmarkId::Chain, 4000, 150}, {BenchmarkId::Chute, 3000, 1500},
        {BenchmarkId::EAM, 4000, 80},    {BenchmarkId::LJ, 4000, 150},
        {BenchmarkId::Rhodo, 2000, 25}};
    for (const Config &config : configs) {
        ExperimentSpec spec;
        spec.mode = ExperimentMode::NativeSerial;
        spec.benchmark = config.id;
        spec.natoms = config.natoms;
        spec.steps = config.steps;
        records.push_back(runExperiment(spec));
    }
    emitTable(std::cout, makeBreakdownTable(records, "procs(=1)"),
              "native_serial");

    emitThreadScaling(std::cout);

    // Decomposed runs with simulated MPI (LJ / Chain / Chute).
    std::vector<ExperimentRecord> ranked;
    for (BenchmarkId id :
         {BenchmarkId::LJ, BenchmarkId::Chain, BenchmarkId::Chute}) {
        for (int ranks : {2, 4, 8}) {
            ExperimentSpec spec;
            spec.mode = ExperimentMode::NativeRanked;
            spec.benchmark = id;
            spec.natoms = 4000;
            spec.resources = ranks;
            spec.steps = 60;
            ranked.push_back(runExperiment(spec));
        }
    }
    emitTable(std::cout, makeBreakdownTable(ranked, "procs"),
              "native_ranked_tasks");
    emitTable(std::cout, makeMpiFunctionTable(ranked),
              "native_ranked_mpi");
    return 0;
}
