/**
 * @file
 * Table 2 reproduction: the benchmark-suite taxonomy with
 * *measured* neighbors/atom from native instances of each experiment.
 */

#include <iostream>

#include "core/suite.h"
#include "harness/report.h"
#include "obs/bench_options.h"
#include "util/string_utils.h"

using namespace mdbench;

int
main(int argc, char **argv)
{
    BenchRun run(argc, argv, "bench_table2_suite");
    printFigureHeader(std::cout, "Table 2",
                      "Main characteristics of the benchmark suite "
                      "(neighbors/atom measured on native instances)");

    Table table({"Benchmark", "Force field", "Cutoff", "Neighbor skin",
                 "Neigh/atom (measured)", "Neigh/atom (paper)",
                 "pair_modify", "kspace_style", "Integration", "atoms"});
    AnchorReport anchors;
    for (BenchmarkId id : allBenchmarks()) {
        const TaxonomyRow row = measureTaxonomy(id, 4000);
        table.addRow({benchmarkName(id), row.forceField, row.cutoff,
                      row.neighborSkin,
                      strprintf("%.1f", row.measuredNeighborsPerAtom),
                      strprintf("%.0f", row.paperNeighborsPerAtom),
                      row.pairModify, row.kspaceStyle, row.integration,
                      std::to_string(row.atoms)});
        anchors.add(std::string(benchmarkName(id)) + " neighbors/atom",
                    row.paperNeighborsPerAtom,
                    row.measuredNeighborsPerAtom);
    }
    emitTable(std::cout, table, "table2");
    anchors.print(std::cout);
    return 0;
}
