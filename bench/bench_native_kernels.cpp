/**
 * @file
 * google-benchmark microbenchmarks of the native engine's kernels:
 * pair styles, neighbor construction, FFT, PPPM solve, and SHAKE.
 * These measure the from-scratch substrate itself (the reproduction
 * host's numbers, not the paper platform).
 */

#include <benchmark/benchmark.h>

#include "core/suite.h"
#include "kspace/fft3d.h"
#include "md/simulation.h"
#include "obs/bench_options.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace {

using namespace mdbench;

// Thread-count sweep used by the *Threads benchmarks below: 1, 2, 4,
// and the machine default (0 = MDBENCH_THREADS / hardware_concurrency).
#define MDBENCH_THREAD_SWEEP(bench, cells)                                   \
    BENCHMARK(bench)                                                         \
        ->Args({cells, 1})                                                   \
        ->Args({cells, 2})                                                   \
        ->Args({cells, 4})                                                   \
        ->Args({cells, 0})

void
BM_PairLJCompute(benchmark::State &state)
{
    ThreadPool::setThreads(1); // serial reference
    auto sim = buildLJ(static_cast<int>(state.range(0)));
    sim->thermoEvery = 0;
    sim->setup();
    for (auto _ : state) {
        sim->atoms.zeroForces();
        sim->pair->compute(*sim, sim->neighbor.list());
        benchmark::DoNotOptimize(sim->pair->energy());
    }
    state.SetItemsProcessed(state.iterations() *
                            sim->neighbor.list().pairCount());
}
BENCHMARK(BM_PairLJCompute)->Arg(5)->Arg(8)->Arg(12);

void
BM_PairLJComputeThreads(benchmark::State &state)
{
    ThreadPool::setThreads(static_cast<int>(state.range(1)));
    auto sim = buildLJ(static_cast<int>(state.range(0)));
    sim->thermoEvery = 0;
    sim->setup();
    for (auto _ : state) {
        sim->atoms.zeroForces();
        sim->pair->compute(*sim, sim->neighbor.list());
        benchmark::DoNotOptimize(sim->pair->energy());
    }
    state.SetItemsProcessed(state.iterations() *
                            sim->neighbor.list().pairCount());
    state.counters["threads"] = sim->threadCount();
    ThreadPool::setThreads(1);
}
MDBENCH_THREAD_SWEEP(BM_PairLJComputeThreads, 8);

void
BM_PairEamCompute(benchmark::State &state)
{
    ThreadPool::setThreads(1); // serial reference
    auto sim = buildEAM(static_cast<int>(state.range(0)));
    sim->thermoEvery = 0;
    sim->setup();
    for (auto _ : state) {
        sim->atoms.zeroForces();
        sim->pair->compute(*sim, sim->neighbor.list());
        benchmark::DoNotOptimize(sim->pair->energy());
    }
    state.SetItemsProcessed(state.iterations() *
                            sim->neighbor.list().pairCount());
}
BENCHMARK(BM_PairEamCompute)->Arg(5)->Arg(8);

void
BM_PairEamComputeThreads(benchmark::State &state)
{
    ThreadPool::setThreads(static_cast<int>(state.range(1)));
    auto sim = buildEAM(static_cast<int>(state.range(0)));
    sim->thermoEvery = 0;
    sim->setup();
    for (auto _ : state) {
        sim->atoms.zeroForces();
        sim->pair->compute(*sim, sim->neighbor.list());
        benchmark::DoNotOptimize(sim->pair->energy());
    }
    state.SetItemsProcessed(state.iterations() *
                            sim->neighbor.list().pairCount());
    state.counters["threads"] = sim->threadCount();
    ThreadPool::setThreads(1);
}
MDBENCH_THREAD_SWEEP(BM_PairEamComputeThreads, 8);

void
BM_NeighborBuild(benchmark::State &state)
{
    ThreadPool::setThreads(1); // serial reference
    auto sim = buildLJ(static_cast<int>(state.range(0)));
    sim->thermoEvery = 0;
    sim->setup();
    for (auto _ : state) {
        sim->neighbor.build(*sim);
        benchmark::DoNotOptimize(sim->neighbor.list().pairCount());
    }
    state.SetItemsProcessed(state.iterations() * sim->atoms.nlocal());
}
BENCHMARK(BM_NeighborBuild)->Arg(5)->Arg(8)->Arg(12);

void
BM_NeighborBuildThreads(benchmark::State &state)
{
    ThreadPool::setThreads(static_cast<int>(state.range(1)));
    auto sim = buildLJ(static_cast<int>(state.range(0)));
    sim->thermoEvery = 0;
    sim->setup();
    for (auto _ : state) {
        sim->neighbor.build(*sim);
        benchmark::DoNotOptimize(sim->neighbor.list().pairCount());
    }
    state.SetItemsProcessed(state.iterations() * sim->atoms.nlocal());
    state.counters["threads"] = sim->threadCount();
    ThreadPool::setThreads(1);
}
MDBENCH_THREAD_SWEEP(BM_NeighborBuildThreads, 8);

void
BM_Fft3d(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    Fft3d fft(n, n, n);
    Rng rng(7);
    std::vector<Complex> data(fft.size());
    for (auto &value : data)
        value = Complex(rng.uniform(-1, 1), rng.uniform(-1, 1));
    for (auto _ : state) {
        fft.forward(data);
        fft.inverse(data);
        benchmark::DoNotOptimize(data[0]);
    }
    state.SetItemsProcessed(state.iterations() * fft.size());
}
BENCHMARK(BM_Fft3d)->Arg(16)->Arg(24)->Arg(32);

void
BM_RhodoProxyStep(benchmark::State &state)
{
    auto sim = buildRhodoProxy(static_cast<int>(state.range(0)));
    sim->thermoEvery = 0;
    sim->setup();
    for (auto _ : state)
        sim->run(1);
    state.SetItemsProcessed(state.iterations() * sim->atoms.nlocal());
}
BENCHMARK(BM_RhodoProxyStep)->Arg(8);

void
BM_ChuteStep(benchmark::State &state)
{
    auto sim = buildChute(10, 10, 6);
    sim->thermoEvery = 0;
    sim->setup();
    for (auto _ : state)
        sim->run(1);
    state.SetItemsProcessed(state.iterations() * sim->atoms.nlocal());
}
BENCHMARK(BM_ChuteStep);

} // namespace

// Expanded BENCHMARK_MAIN() with the shared mdbench flags stripped
// first, so --trace/--manifest coexist with google-benchmark's own
// command line.
int
main(int argc, char **argv)
{
    mdbench::BenchRun run(argc, argv, "bench_native_kernels");
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
