/**
 * @file
 * Figure 12 reproduction: rhodopsin MPI-function breakdown vs kspace
 * error threshold — data exchange (Send/Sendrecv) overtakes
 * synchronization as the mesh grows.
 */

#include <iostream>

#include "harness/report.h"
#include "harness/sweep.h"
#include "obs/bench_options.h"
#include "util/string_utils.h"

using namespace mdbench;

int
main(int argc, char **argv)
{
    BenchRun run(argc, argv, "bench_fig12_kspace_mpi_functions");
    printFigureHeader(std::cout, "Figure 12",
                      "rhodo MPI-function breakdown vs kspace error "
                      "threshold");

    for (double accuracy : paperErrorThresholds()) {
        SweepOptions options;
        options.kspaceAccuracy = accuracy;
        const auto records = runModelSweep(cpuSweep(
            {BenchmarkId::Rhodo}, paperSizesK(), {4, 8, 16, 32, 64},
            options));
        std::cout << "\n--- threshold " << formatThreshold(accuracy)
                  << " ---\n";
        emitTable(std::cout, makeMpiFunctionTable(records),
                  "fig12_" + formatThreshold(accuracy));
    }

    SweepOptions loose;
    SweepOptions tight;
    tight.kspaceAccuracy = 1e-7;
    const auto a = runModelExperiment(
        cpuSweep({BenchmarkId::Rhodo}, {2048}, {64}, loose)[0]);
    const auto b = runModelExperiment(
        cpuSweep({BenchmarkId::Rhodo}, {2048}, {64}, tight)[0]);
    std::cout << "\nObservation reproduced: the data-exchange share "
                 "(Sendrecv) grows from "
              << static_cast<int>(
                     a.mpiFunctionFraction(MpiFunction::Sendrecv) * 100)
              << "% to "
              << static_cast<int>(
                     b.mpiFunctionFraction(MpiFunction::Sendrecv) * 100)
              << "% at 1e-7 (less synchronization, more actual data).\n";
    return 0;
}
