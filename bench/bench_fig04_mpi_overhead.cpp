/**
 * @file
 * Figure 4 reproduction: total MPI overhead percentage (top) and MPI
 * imbalance percentage (bottom) for the "-long" 10k-step runs.
 */

#include <iostream>

#include "harness/report.h"
#include "harness/sweep.h"
#include "obs/bench_options.h"

using namespace mdbench;

int
main(int argc, char **argv)
{
    BenchRun run(argc, argv, "bench_fig04_mpi_overhead");
    printFigureHeader(std::cout, "Figure 4",
                      "Total MPI overhead and MPI imbalance percentage, "
                      "averaged over ranks (10k-step runs)");

    const auto records = runModelSweep(
        cpuSweep(allBenchmarks(), paperSizesK(), {4, 8, 16, 32, 64}));
    emitTable(std::cout, makeMpiOverheadTable(records), "fig04");

    std::cout << "\nObservations reproduced:\n"
              << " - MPI share decreases with system size (surface-to-"
                 "volume argument of Section 5.1)\n"
              << " - chain and chute show markedly higher imbalance than "
                 "eam and lj\n";
    return 0;
}
