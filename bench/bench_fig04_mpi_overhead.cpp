/**
 * @file
 * Figure 4 reproduction: total MPI overhead percentage (top) and MPI
 * imbalance percentage (bottom) for the "-long" 10k-step runs.
 */

#include <iostream>

#include "core/experiment.h"
#include "harness/report.h"
#include "harness/sweep.h"
#include "obs/bench_options.h"

using namespace mdbench;

int
main(int argc, char **argv)
{
    BenchRun run(argc, argv, "bench_fig04_mpi_overhead");
    printFigureHeader(std::cout, "Figure 4",
                      "Total MPI overhead and MPI imbalance percentage, "
                      "averaged over ranks (10k-step runs)");

    const auto records = runModelSweep(
        cpuSweep(allBenchmarks(), paperSizesK(), {4, 8, 16, 32, 64}));
    emitTable(std::cout, makeMpiOverheadTable(records), "fig04");

    // Native companion: the same shares from the real engine running
    // decomposed at host scale, with the measured host wall clock per
    // step alongside the modeled percentages (the model rows above have
    // no host run, hence "-" in their wall column).
    std::cout << "\n-- native decomposed companion (measured wall) --\n";
    std::vector<ExperimentSpec> nativeSpecs;
    for (int ranks : {4, 8}) {
        ExperimentSpec spec;
        spec.mode = ExperimentMode::NativeRanked;
        spec.benchmark = BenchmarkId::LJ;
        spec.natoms = 4000;
        spec.resources = ranks;
        spec.steps = 300;
        nativeSpecs.push_back(spec);
    }
    emitTable(std::cout, makeMpiOverheadTable(runSweep(nativeSpecs)),
              "fig04_native");

    std::cout << "\nObservations reproduced:\n"
              << " - MPI share decreases with system size (surface-to-"
                 "volume argument of Section 5.1)\n"
              << " - chain and chute show markedly higher imbalance than "
                 "eam and lj\n";
    return 0;
}
