/**
 * @file
 * Figure 10 reproduction: rhodopsin performance and parallel efficiency
 * on the CPU instance as the kspace relative error threshold tightens
 * from 1e-4 to 1e-7.
 */

#include <iostream>

#include "harness/report.h"
#include "harness/sweep.h"
#include "obs/bench_options.h"
#include "util/string_utils.h"

using namespace mdbench;

int
main(int argc, char **argv)
{
    BenchRun run(argc, argv, "bench_fig10_kspace_cpu_perf");
    printFigureHeader(std::cout, "Figure 10",
                      "rhodo CPU performance and parallel efficiency vs "
                      "kspace error threshold");

    Table table({"variant", "size[k]", "procs", "perf [TS/s]",
                 "parallel eff [%]"});
    for (double accuracy : paperErrorThresholds()) {
        SweepOptions options;
        options.kspaceAccuracy = accuracy;
        const auto records = runModelSweep(cpuSweep(
            {BenchmarkId::Rhodo}, paperSizesK(), paperRankCounts(),
            options));
        const std::string variant =
            accuracy == 1e-4 ? "rhodo"
                             : "rhodo-e-" + std::to_string(static_cast<int>(
                                   -std::log10(accuracy)));
        for (const auto &record : records) {
            table.addRow({variant,
                          std::to_string(record.spec.natoms / 1000),
                          std::to_string(record.spec.resources),
                          strprintf("%9.2f", record.timestepsPerSecond),
                          strprintf("%6.2f",
                                    record.parallelEfficiencyPct)});
        }
    }
    emitTable(std::cout, table, "fig10");

    AnchorReport anchors;
    SweepOptions tight;
    tight.kspaceAccuracy = 1e-7;
    const auto loose = runModelExperiment(
        cpuSweep({BenchmarkId::Rhodo}, {2048}, {64})[0]);
    const auto hard = runModelExperiment(
        cpuSweep({BenchmarkId::Rhodo}, {2048}, {64}, tight)[0]);
    anchors.add("rhodo 2048k 64p @1e-4 [TS/s]", 10.77,
                loose.timestepsPerSecond);
    anchors.add("rhodo 2048k 64p @1e-7 [TS/s]", 3.54,
                hard.timestepsPerSecond);
    anchors.add("parallel eff @1e-4 [%]", 74.29,
                loose.parallelEfficiencyPct);
    anchors.add("parallel eff @1e-7 [%]", 56.54,
                hard.parallelEfficiencyPct);
    anchors.print(std::cout);
    return 0;
}
