/**
 * @file
 * Ablation: the paper's Section 10 optimization directions for the GPU
 * package, projected with the calibrated model:
 *   (a) port SHAKE (and fixes) to the device instead of the host CPU;
 *   (b) batch/overlap PCIe transfers so the link runs near its
 *       bandwidth instead of being latency-bound.
 * Both are modeled as what-ifs on the rhodo 2M-atom configuration.
 */

#include <iostream>

#include "gpusim/gpu_model.h"
#include "harness/report.h"
#include "obs/bench_options.h"
#include "util/string_utils.h"

using namespace mdbench;

int
main(int argc, char **argv)
{
    BenchRun run(argc, argv, "bench_ablation_gpu_offload");
    printFigureHeader(std::cout, "Ablation: GPU-package what-ifs",
                      "projected effect of the paper's suggested GPU "
                      "optimizations (rhodo, 8 V100s)");

    Table table({"configuration", "size[k]", "perf [TS/s]",
                 "device util [%]", "speedup"});
    for (long sizeK : {256L, 2048L}) {
        const GpuModel asIs;
        const auto workload =
            WorkloadInstance::make(BenchmarkId::Rhodo, sizeK * 1000);
        const auto baseline = asIs.evaluate(workload, 8);

        // (a) SHAKE ported to the device: the host-side constraint
        // solve disappears (device-side cost is small next to the pair
        // kernels).
        WorkloadInstance shakeOnGpu = workload;
        shakeOnGpu.spec.usesShake = false;
        const auto portedShake = asIs.evaluate(shakeOnGpu, 8);

        // (b) PCIe used at full bandwidth: model a platform whose
        // effective link speed reflects batched, overlapped transfers.
        PlatformInstance batched = PlatformInstance::gpuInstance();
        batched.gpu->pcieGBs *= 4.0;
        const GpuModel batchedModel(batched);
        const auto fastLink = batchedModel.evaluate(workload, 8);

        // Both together.
        const auto both = batchedModel.evaluate(shakeOnGpu, 8);

        auto addRow = [&](const char *name, const GpuModelResult &r) {
            table.addRow({name, std::to_string(sizeK),
                          strprintf("%8.2f", r.timestepsPerSecond),
                          strprintf("%5.1f", r.deviceUtilization * 100),
                          strprintf("%.2fx",
                                    r.timestepsPerSecond /
                                        baseline.timestepsPerSecond)});
        };
        addRow("reference GPU package", baseline);
        addRow("+ SHAKE on device", portedShake);
        addRow("+ batched PCIe transfers", fastLink);
        addRow("+ both", both);
    }
    emitTable(std::cout, table, "ablation_gpu_offload");
    std::cout << "\nTakeaway (paper Section 10): porting the remaining "
                 "host-side steps and restructuring data movement are "
                 "the levers that close the gap — not more device "
                 "flops.\n";
    return 0;
}
