/**
 * @file
 * Figure 3 reproduction: breakdown of execution time by Table 1 task
 * for all five benchmarks, sizes 32k-2048k, 1-64 MPI processes, on the
 * modeled CPU instance.
 */

#include <iostream>

#include "harness/report.h"
#include "harness/sweep.h"
#include "obs/bench_options.h"

using namespace mdbench;

int
main(int argc, char **argv)
{
    BenchRun run(argc, argv, "bench_fig03_cpu_breakdown");
    printFigureHeader(std::cout, "Figure 3",
                      "CPU-instance execution-time breakdown by task "
                      "(one row per benchmark/size/process count)");

    const auto records = runModelSweep(
        cpuSweep(allBenchmarks(), paperSizesK(), paperRankCounts()));
    emitTable(std::cout, makeBreakdownTable(records, "procs"), "fig03");

    // The paper's headline observations, restated as checks.
    std::cout << "\nObservations reproduced:\n";
    const auto lj1 = runModelExperiment(
        cpuSweep({BenchmarkId::LJ}, {32}, {1})[0]);
    std::cout << " - lj spends "
              << static_cast<int>(
                     lj1.taskBreakdown.fraction(Task::Pair) * 100)
              << "% of an unparallelized run in Pair (paper: >75%)\n";
    const auto chain1 = runModelExperiment(
        cpuSweep({BenchmarkId::Chain}, {32}, {1})[0]);
    std::cout << " - chain (5 neigh/atom) Pair share: "
              << static_cast<int>(
                     chain1.taskBreakdown.fraction(Task::Pair) * 100)
              << "% (paper: significantly less than lj)\n";
    return 0;
}
