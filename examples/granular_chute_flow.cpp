/**
 * @file
 * Granular scenario (the paper's Chute workload): settle a packed bed
 * on the frictional bottom wall, tilt gravity to the chute angle, and
 * measure the downslope velocity profile versus height — the physics
 * the gran/hooke/history + wall + gravity stack exists for.
 *
 * Build & run:  ./examples/granular_chute_flow
 */

#include <cstdio>
#include <vector>

#include "core/suite.h"
#include "util/stats.h"

int
main()
{
    using namespace mdbench;

    auto sim = buildChute(12, 12, 8);
    sim->thermoEvery = 0;
    sim->setup();
    std::printf("chute: %zu grains, box %.0fx%.0f, bed ~8 layers, "
                "gravity tilted 26 degrees\n",
                sim->atoms.nlocal(), sim->box.lengths().x,
                sim->box.lengths().y);

    // Let the bed settle and the flow develop.
    std::printf("settling + flow development (20000 steps at dt=1e-4) "
                "...\n");
    sim->run(20000);

    // Downslope (x) velocity profile binned by height.
    const int bins = 10;
    std::vector<RunningStat> profile(bins);
    double zMax = 0.0;
    for (std::size_t i = 0; i < sim->atoms.nlocal(); ++i)
        zMax = std::max(zMax, sim->atoms.x[i].z);
    for (std::size_t i = 0; i < sim->atoms.nlocal(); ++i) {
        const int bin = std::min(
            bins - 1,
            static_cast<int>(sim->atoms.x[i].z / (zMax + 1e-9) * bins));
        profile[bin].push(sim->atoms.v[i].x);
    }

    std::printf("\n%12s %14s %8s\n", "height bin", "<v_x> downslope",
                "grains");
    for (int b = 0; b < bins; ++b) {
        if (profile[b].count() == 0)
            continue;
        std::printf("%5.2f-%-5.2f %14.4f %8zu\n", b * zMax / bins,
                    (b + 1) * zMax / bins, profile[b].mean(),
                    profile[b].count());
    }

    RunningStat spin;
    for (std::size_t i = 0; i < sim->atoms.nlocal(); ++i)
        spin.push(sim->atoms.omega[i].y);
    std::printf("\nmean spin about y (rolling): %.4f\n", spin.mean());
    std::printf("Expected shape: velocity grows with height (shear "
                "flow over the frictional wall), grains near the wall "
                "roll (+y spin).\n");
    return 0;
}
