/**
 * @file
 * Quickstart: build the classic Lennard-Jones melt with the public API,
 * run it, and watch the thermodynamic output — the "hello world" of
 * this library (and of MD benchmarking).
 *
 * Build & run:  ./examples/quickstart
 */

#include <cstdio>

#include "core/suite.h"

int
main()
{
    using namespace mdbench;

    // A 4000-atom LJ melt at the paper's state point (rho* = 0.8442,
    // T* = 1.44, cutoff 2.5 sigma), NVE integration.
    auto sim = buildLJ(10);
    sim->thermoEvery = 50;
    sim->setup();

    std::printf("LJ melt: %zu atoms, box %.2f sigma\n",
                sim->atoms.nlocal(), sim->box.lengths().x);
    std::printf("%8s %12s %12s %12s %12s\n", "step", "T*", "PE/atom",
                "Etot/atom", "P*");

    sim->run(500);

    const double n = static_cast<double>(sim->atoms.nlocal());
    for (const ThermoRow &row : sim->thermoLog()) {
        std::printf("%8ld %12.4f %12.4f %12.4f %12.4f\n", row.step,
                    row.temperature, row.potential / n, row.total / n,
                    row.pressure);
    }

    // Energy conservation is the first sanity check of any MD engine.
    const double first = sim->thermoLog().front().total;
    const double last = sim->thermoLog().back().total;
    std::printf("\nrelative energy drift over 500 steps: %.2e\n",
                (last - first) / std::abs(first));
    std::printf("timesteps simulated per wall-second: see "
                "bench_native_kernels for the measured rates\n");
    return 0;
}
