/**
 * @file
 * Characterization scenario: use the calibrated platform models as a
 * what-if tool — how would my workload behave on the paper's CPU and
 * GPU instances, where is the CPU/GPU crossover, and what does the
 * energy bill look like? This is the workflow the paper's framework
 * (Figure 2) supports for capacity planning.
 *
 * Build & run:  ./examples/platform_whatif
 */

#include <cstdio>

#include "gpusim/gpu_model.h"
#include "perf/cpu_model.h"

int
main()
{
    using namespace mdbench;

    const CpuModel cpu;
    const GpuModel gpu;

    std::printf("What-if: biomolecular (rhodo-class) system sizes on the "
                "paper's two instances\n\n");
    std::printf("%10s %16s %16s %14s %14s\n", "atoms", "CPU 64p [TS/s]",
                "GPU 8dev [TS/s]", "CPU [ns/day]", "GPU [ns/day]");
    for (long atoms : {32000L, 128000L, 512000L, 2048000L, 8192000L}) {
        const auto w = WorkloadInstance::make(BenchmarkId::Rhodo, atoms);
        const auto c = cpu.evaluate(w, 64);
        const auto g = gpu.evaluate(w, 8);
        std::printf("%10ld %16.2f %16.2f %14.2f %14.2f\n", atoms,
                    c.timestepsPerSecond, g.timestepsPerSecond,
                    c.nsPerDay, g.nsPerDay);
    }

    std::printf("\nEnergy to simulate 1 ns of a 2M-atom rhodo system:\n");
    const auto w = WorkloadInstance::make(BenchmarkId::Rhodo, 2048000);
    const auto c = cpu.evaluate(w, 64);
    const auto g = gpu.evaluate(w, 8);
    const double stepsPerNs = 1e6 / 2.0; // 2 fs timestep
    std::printf("  CPU instance: %.1f kWh (%.0f W for %.1f h)\n",
                c.powerWatts * stepsPerNs * c.stepSeconds / 3.6e6,
                c.powerWatts, stepsPerNs * c.stepSeconds / 3600.0);
    std::printf("  GPU instance: %.1f kWh (%.0f W for %.1f h)\n",
                g.powerWatts * stepsPerNs * g.stepSeconds / 3.6e6,
                g.powerWatts, stepsPerNs * g.stepSeconds / 3600.0);

    std::printf("\nSweet spots by error threshold (rhodo 2048k):\n");
    std::printf("%12s %16s %16s\n", "threshold", "CPU 64p [TS/s]",
                "GPU 8dev [TS/s]");
    for (double accuracy : paperErrorThresholds()) {
        const auto wt =
            WorkloadInstance::make(BenchmarkId::Rhodo, 2048000, accuracy);
        std::printf("%12.0e %16.2f %16.2f\n", accuracy,
                    cpu.evaluate(wt, 64).timestepsPerSecond,
                    gpu.evaluate(wt, 8).timestepsPerSecond);
    }
    std::printf("\nTakeaway (paper Section 10): the GPU instance wins at "
                "the default threshold but collapses first as the mesh "
                "grows — data movement, not flops, sets the limit.\n");
    return 0;
}
