/**
 * @file
 * Polymer-melt scenario (the paper's Chain workload): relax a
 * Kremer-Grest bead-spring melt under a Langevin thermostat and track
 * chain conformations — bond lengths and end-to-end distances — as the
 * initially stretched lattice chains coil up.
 *
 * Build & run:  ./examples/polymer_relaxation
 */

#include <cstdio>
#include <map>

#include "core/suite.h"
#include "util/stats.h"

int
main()
{
    using namespace mdbench;

    auto sim = buildChain(20); // 20 chains x 100 beads
    sim->thermoEvery = 0;
    sim->setup();
    std::printf("Kremer-Grest melt: %zu beads in %zu chains\n",
                sim->atoms.nlocal(), sim->topology.bonds.size() / 99);

    auto chainStats = [&](RunningStat &bonds, RunningStat &endToEnd) {
        std::map<std::int64_t, std::pair<Vec3, Vec3>> ends;
        for (const Bond &bond : sim->topology.bonds) {
            const auto a = sim->topology.indexOf(bond.tagA);
            const auto b = sim->topology.indexOf(bond.tagB);
            bonds.push(sim->box
                           .minimumImage(sim->atoms.x[a] - sim->atoms.x[b])
                           .norm());
        }
        // Unwrapped end-to-end distance per chain via bond walking.
        for (std::size_t i = 0; i < sim->atoms.nlocal(); ++i) {
            const auto mol = sim->atoms.molecule[i];
            const auto tag = sim->atoms.tag[i];
            if ((tag - 1) % 100 == 0)
                ends[mol].first = sim->atoms.x[i];
        }
        for (const auto &[mol, pair] : ends) {
            Vec3 walk = pair.first;
            const std::int64_t firstTag = (mol - 1) * 100 + 1;
            for (int k = 0; k < 99; ++k) {
                const auto a = sim->topology.indexOf(firstTag + k);
                const auto b = sim->topology.indexOf(firstTag + k + 1);
                walk += sim->box.minimumImage(sim->atoms.x[b] -
                                              sim->atoms.x[a]);
            }
            endToEnd.push((walk - pair.first)
                              .norm()); // |sum of bond vectors|
        }
    };

    std::printf("%8s %14s %14s %10s\n", "step", "<bond len>",
                "<end-to-end>", "T*");
    for (int block = 0; block <= 10; ++block) {
        RunningStat bonds;
        RunningStat endToEnd;
        chainStats(bonds, endToEnd);
        std::printf("%8ld %14.4f %14.3f %10.3f\n", sim->step,
                    bonds.mean(), endToEnd.mean(), sim->temperature());
        if (block < 10)
            sim->run(200);
    }

    std::printf("\nThe ideal Kremer-Grest bond length is ~0.97 sigma; "
                "the lattice-stretched chains relax toward it while the "
                "Langevin thermostat holds T* near 1.\n");
    return 0;
}
