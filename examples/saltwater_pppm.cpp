/**
 * @file
 * Long-range electrostatics scenario (the machinery behind the paper's
 * Rhodopsin workload and Section 7 study): a molten-salt-like box of
 * +-1 charges solved with PPPM at several error thresholds, validated
 * against the exact Ewald reference — showing the accuracy/cost knob
 * the paper sweeps.
 *
 * Build & run:  ./examples/saltwater_pppm
 */

#include <cstdio>
#include <vector>

#include "forcefield/pair_lj_charmm_coul_long.h"
#include "kspace/ewald.h"
#include "kspace/pppm.h"
#include "md/simulation.h"
#include "util/rng.h"
#include "util/timer.h"

using namespace mdbench;

namespace {

std::unique_ptr<Simulation>
makeSaltBox(double accuracy, bool ewald)
{
    auto sim = std::make_unique<Simulation>();
    const double length = 12.0;
    sim->box = Box({0, 0, 0}, {length, length, length});
    sim->atoms.setNumTypes(2);
    Rng rng(271828);
    for (int i = 0; i < 200; ++i) {
        const int sign = i % 2 ? 1 : -1;
        const auto idx = sim->atoms.addAtom(
            i + 1, sign > 0 ? 1 : 2,
            {rng.uniform(0, length), rng.uniform(0, length),
             rng.uniform(0, length)});
        sim->atoms.q[idx] = sign;
    }
    auto pair = std::make_unique<PairLJCharmmCoulLong>(2, 3.0, 3.4, 3.8);
    pair->setCoeff(1, 0.1, 1.0);
    pair->setCoeff(2, 0.1, 1.0);
    sim->pair = std::move(pair);
    if (ewald)
        sim->kspace = std::make_unique<Ewald>(accuracy);
    else
        sim->kspace = std::make_unique<Pppm>(accuracy);
    sim->neighbor.skin = 0.3;
    sim->thermoEvery = 0;
    return sim;
}

} // namespace

int
main()
{
    // Exact reference forces from a tight Ewald sum.
    auto reference = makeSaltBox(1e-7, true);
    reference->setup();
    std::vector<Vec3> exact(reference->atoms.f.begin(),
                            reference->atoms.f.begin() +
                                reference->atoms.nlocal());
    double fScale = 0.0;
    for (const auto &f : exact)
        fScale += f.normSq();
    fScale = std::sqrt(fScale / exact.size());

    std::printf("200 ions, Ewald reference computed.\n\n");
    std::printf("%10s %14s %16s %14s\n", "threshold", "PPPM grid",
                "rel force RMSE", "ms / solve");

    for (double accuracy : {1e-3, 1e-4, 1e-5, 1e-6}) {
        auto sim = makeSaltBox(accuracy, false);
        sim->setup();
        auto &pppm = static_cast<Pppm &>(*sim->kspace);

        double rmse = 0.0;
        for (std::size_t i = 0; i < sim->atoms.nlocal(); ++i)
            rmse += (sim->atoms.f[i] - exact[i]).normSq();
        rmse = std::sqrt(rmse / exact.size()) / fScale;

        WallTimer timer;
        const int repeats = 5;
        for (int r = 0; r < repeats; ++r)
            sim->computeForces();
        const double ms = timer.seconds() / repeats * 1e3;

        std::printf("%10.0e %8dx%dx%d %16.2e %14.2f\n", accuracy,
                    pppm.grid()[0], pppm.grid()[1], pppm.grid()[2], rmse,
                    ms);
    }

    std::printf("\nTighter thresholds buy accuracy with a rapidly "
                "growing mesh — the cost the paper charts in Figures "
                "10-14.\n");
    return 0;
}
