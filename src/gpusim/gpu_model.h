/**
 * @file
 * Simulated execution of the LAMMPS GPU package on the paper's
 * 8x V100 "GPU instance" (Section 6).
 *
 * The model builds a per-step device timeline from the same kernel set
 * the paper profiles in Figure 8 (k_lj_fast, k_eam_fast/k_energy_fast,
 * k_charmm_long, calc_neigh_list_cell, make_rho/particle_map/interp,
 * plus CUDA memcpy H2D/D2H), a PCIe transfer model, host-side work on
 * the weaker 8167M CPU (fixes, SHAKE, bonded terms, the PPPM FFTs), and
 * an occupancy curve that collapses when each device holds too few
 * atoms — the mechanisms behind the paper's multi-GPU scaling findings.
 */

#ifndef MDBENCH_GPUSIM_GPU_MODEL_H
#define MDBENCH_GPUSIM_GPU_MODEL_H

#include <array>
#include <string>

#include "perf/platform.h"
#include "perf/workload.h"
#include "util/timer.h"

namespace mdbench {

/** Device-activity categories of the paper's Figure 8. */
enum class GpuActivity : std::size_t {
    MemcpyDtoH = 0,
    MemcpyHtoD,
    Memset,
    CalcNeighListCell,
    KLjFast,
    KernelInfo,
    KernelSpecial,
    KernelZero,
    Transpose,
    KEamFast,
    KEnergyFast,
    Interp,
    KCharmmLong,
    MakeRho,
    ParticleMap,
    NumActivities
};

constexpr std::size_t kNumGpuActivities =
    static_cast<std::size_t>(GpuActivity::NumActivities);

/** Figure 8 legend label, e.g. "[CUDA memcpy HtoD]" or "k lj fast". */
const char *gpuActivityName(GpuActivity activity);

/** Result of modeling one GPU-package configuration. */
struct GpuModelResult
{
    double stepSeconds = 0.0;
    double timestepsPerSecond = 0.0;
    double powerWatts = 0.0;          ///< devices + host
    double energyEfficiency = 0.0;    ///< TS/s/W (Fig. 9 middle)
    double nsPerDay = 0.0;            ///< 2 fs timesteps
    double deviceUtilization = 0.0;   ///< kernel-busy fraction (Sec. 10)

    /** Host-view task breakdown (Fig. 7). */
    TaskTimer taskBreakdown;

    /** Per-activity device seconds per step (Fig. 8). */
    std::array<double, kNumGpuActivities> deviceSeconds{};

    /** Fraction of total device-active time in @p activity. */
    double activityFraction(GpuActivity activity) const;

    double
    deviceSecondsOf(GpuActivity activity) const
    {
        return deviceSeconds[static_cast<std::size_t>(activity)];
    }
};

/**
 * GPU-package cost model.
 */
class GpuModel
{
  public:
    explicit GpuModel(
        PlatformInstance platform = PlatformInstance::gpuInstance());

    /**
     * Evaluate one configuration.
     * @param workload Instantiated workload (no Chute — unsupported by
     *                 the reference GPU package, as the paper notes).
     * @param ngpus    Devices used (1..platform.gpuCount).
     */
    GpuModelResult evaluate(const WorkloadInstance &workload,
                            int ngpus) const;

    /** Parallel efficiency in percent vs one device. */
    double parallelEfficiency(const WorkloadInstance &workload,
                              int ngpus) const;

    const PlatformInstance &platform() const { return platform_; }

  private:
    PlatformInstance platform_;
};

} // namespace mdbench

#endif // MDBENCH_GPUSIM_GPU_MODEL_H
