#include "gpusim/gpu_model.h"

#include <algorithm>
#include <cmath>

#include "perf/calibration.h"
#include "perf/power.h"
#include "util/error.h"

namespace mdbench {

namespace {

double
precisionFactorGpu(Precision precision, const WorkloadSpec &spec)
{
    switch (precision) {
      case Precision::Single: return calib::kGpuPrecisionSingle;
      case Precision::Mixed:  return 1.0;
      case Precision::Double:
        // The charmm/coul kernel is bandwidth-bound on V100 and nearly
        // insensitive to FP64 throughput (paper Fig. 16, rhodo).
        return spec.usesKspace ? 1.06 : calib::kGpuPrecisionDouble;
      default: panic("invalid Precision");
    }
}

} // namespace

const char *
gpuActivityName(GpuActivity activity)
{
    switch (activity) {
      case GpuActivity::MemcpyDtoH:        return "[CUDA memcpy DtoH]";
      case GpuActivity::MemcpyHtoD:        return "[CUDA memcpy HtoD]";
      case GpuActivity::Memset:            return "[CUDA memset]";
      case GpuActivity::CalcNeighListCell: return "calc neigh list cell";
      case GpuActivity::KLjFast:           return "k lj fast";
      case GpuActivity::KernelInfo:        return "kernel info";
      case GpuActivity::KernelSpecial:     return "kernel special";
      case GpuActivity::KernelZero:        return "kernel zero";
      case GpuActivity::Transpose:         return "transpose";
      case GpuActivity::KEamFast:          return "k eam fast";
      case GpuActivity::KEnergyFast:       return "k energy fast";
      case GpuActivity::Interp:            return "interp";
      case GpuActivity::KCharmmLong:       return "k charmm long";
      case GpuActivity::MakeRho:           return "make rho";
      case GpuActivity::ParticleMap:       return "particle map";
      default: panic("invalid GpuActivity");
    }
}

double
GpuModelResult::activityFraction(GpuActivity activity) const
{
    double total = 0.0;
    for (double s : deviceSeconds)
        total += s;
    return total > 0.0
               ? deviceSeconds[static_cast<std::size_t>(activity)] / total
               : 0.0;
}

GpuModel::GpuModel(PlatformInstance platform)
    : platform_(std::move(platform))
{
    require(platform_.gpu.has_value(), "GpuModel needs a GPU platform");
}

GpuModelResult
GpuModel::evaluate(const WorkloadInstance &workload, int ngpus) const
{
    require(ngpus >= 1 && ngpus <= platform_.gpuCount,
            "device count out of range");
    const WorkloadSpec &spec = workload.spec;
    require(spec.id != BenchmarkId::Chute,
            "gran/hooke/history is unsupported by the reference GPU "
            "package (paper Section 6)");

    const GpuSpec &gpu = *platform_.gpu;
    const double natoms = static_cast<double>(workload.natoms);
    const double perDevice = natoms / ngpus;
    const double precision = precisionFactorGpu(workload.precision, spec);

    // Occupancy (latency hiding needs resident work) and warp efficiency
    // (short neighbor lists leave warp lanes idle).
    const double occupancy =
        calib::kGpuMinEfficiency +
        (1.0 - calib::kGpuMinEfficiency) *
            (perDevice / (perDevice + calib::kGpuSaturationAtoms));
    const double warpEfficiency =
        spec.neighborsPerAtom /
        (spec.neighborsPerAtom + calib::kGpuListHalfSat);
    const double deviceRate = calib::kGpuInteractionsPerSmCycle *
                              gpu.freqGHz * 1e9 * gpu.sms * occupancy *
                              warpEfficiency; // units/s per device

    GpuModelResult result;
    auto device = [&result](GpuActivity activity) -> double & {
        return result.deviceSeconds[static_cast<std::size_t>(activity)];
    };

    // ---- pair + neighbor kernels -------------------------------------------
    const double pairInteractions =
        workload.pairInteractionsPerStep() / ngpus;
    const double pairSeconds = pairInteractions * spec.pairCostUnits *
                               spec.gpuPairFactor * precision / deviceRate;
    switch (spec.id) {
      case BenchmarkId::EAM:
        // Split across the two EAM kernels the paper names (Fig. 8).
        device(GpuActivity::KEamFast) = 0.62 * pairSeconds;
        device(GpuActivity::KEnergyFast) = 0.38 * pairSeconds;
        break;
      case BenchmarkId::Rhodo:
        device(GpuActivity::KCharmmLong) = pairSeconds;
        break;
      default:
        device(GpuActivity::KLjFast) = pairSeconds;
        break;
    }

    const double candidateRatio =
        std::pow((spec.cutoff + spec.skin) / spec.cutoff, 3);
    // The PPPM neighbor kernel degrades past the paper's 2M-atom
    // "breaking point" (Fig. 8 discussion).
    const double neighBreak =
        spec.usesKspace && natoms > calib::kGpuNeighBreakAtoms
            ? std::pow(natoms / calib::kGpuNeighBreakAtoms,
                       calib::kGpuNeighBreakExponent)
            : 1.0;
    device(GpuActivity::CalcNeighListCell) =
        perDevice * spec.neighborsPerAtom * candidateRatio *
        calib::kNeighPerCandidate * neighBreak /
        (deviceRate * spec.rebuildInterval);

    // Small bookkeeping kernels (packing, zeroing, special-bond maps).
    const double atomKernelRate = deviceRate / warpEfficiency;
    device(GpuActivity::KernelZero) = perDevice * 0.08 / atomKernelRate;
    device(GpuActivity::KernelInfo) = perDevice * 0.05 / atomKernelRate;
    device(GpuActivity::KernelSpecial) =
        spec.hasBonds ? perDevice * 0.35 / atomKernelRate : 0.0;
    device(GpuActivity::Transpose) = perDevice * 0.18 / atomKernelRate;
    device(GpuActivity::Memset) = perDevice * 0.02 / atomKernelRate;

    // ---- PPPM on the GPU package ---------------------------------------------
    // particle_map / make_rho / interp run on the device; the 3-D FFTs
    // run on the host, so charge/field meshes cross PCIe every step —
    // the memcpy growth of Section 7.
    double gridBytes = 0.0;
    if (spec.usesKspace) {
        const double gridPoints =
            static_cast<double>(workload.kspaceGridPoints()) / ngpus;
        device(GpuActivity::ParticleMap) =
            perDevice * 2.5 / atomKernelRate;
        device(GpuActivity::MakeRho) =
            perDevice * 0.45 * calib::kKspacePerAtom / atomKernelRate;
        device(GpuActivity::Interp) =
            perDevice * 0.55 * calib::kKspacePerAtom / atomKernelRate;
        gridBytes = gridPoints * calib::kGpuKspaceBytesPerPoint;
    }

    // ---- host-side work ---------------------------------------------------------
    // Up to 48 MPI processes drive the devices (Section 6.2); bonded
    // terms, fixes (incl. SHAKE), integration, and the PPPM FFTs stay
    // on the weaker host CPU.
    const int hostRanks = std::min(48, 6 * ngpus);
    const int ranksPerDevice = std::max(1, hostRanks / ngpus);
    const double hostGHz =
        platform_.cpu.baseGHz * calib::kAllCoreTurboOverBase;
    const double hostCoreRate =
        calib::kCpuInteractionsPerCycle * hostGHz * 1e9;
    const double hostRate = hostCoreRate * hostRanks;
    double hostUnits =
        natoms * (spec.bondsPerAtom * calib::kBondCost +
                  spec.anglesPerAtom * calib::kAngleCost +
                  calib::kModifyPerAtom + spec.extraFixCostPerAtom +
                  calib::kOtherPerAtom);
    if (spec.usesShake)
        hostUnits +=
            natoms * calib::kShakePerAtom * calib::kGpuHostShakeFactor;
    if (spec.nptIntegration)
        hostUnits += natoms * calib::kNptPerAtom;
    double hostFftSeconds = 0.0;
    if (spec.usesKspace) {
        const double gridPoints =
            static_cast<double>(workload.kspaceGridPoints());
        hostFftSeconds =
            gridPoints * std::log2(gridPoints) *
            calib::kKspacePerGridPoint /
            (hostCoreRate *
             std::pow(hostRanks, calib::kFftScalingExponent));
    }
    const double hostSeconds = hostUnits / hostRate + hostFftSeconds;

    // ---- PCIe transfers --------------------------------------------------------
    const double pcie = gpu.pcieGBs * 1e9;
    const double atomBytes = perDevice * 32.0   // positions up
                             + perDevice * 24.0 // forces down
                             + perDevice * 80.0 / spec.rebuildInterval;
    const double totalBytes = atomBytes + gridBytes;
    const double copyLatency = calib::kGpuCopiesPerStep * ranksPerDevice *
                               calib::kGpuCopyLatency;
    const double transferSeconds = copyLatency + totalBytes / pcie;
    const double upShare = (perDevice * 32.0 + 0.5 * gridBytes) /
                           std::max(totalBytes, 1.0);
    device(GpuActivity::MemcpyHtoD) = transferSeconds * upShare;
    device(GpuActivity::MemcpyDtoH) = transferSeconds * (1.0 - upShare);

    // ---- per-step totals ---------------------------------------------------------
    double kernelSeconds = 0.0;
    int kernelLaunches = 0;
    for (std::size_t a = 0; a < kNumGpuActivities; ++a) {
        const auto activity = static_cast<GpuActivity>(a);
        if (activity != GpuActivity::MemcpyDtoH &&
            activity != GpuActivity::MemcpyHtoD) {
            kernelSeconds += result.deviceSeconds[a];
            if (result.deviceSeconds[a] > 0.0)
                ++kernelLaunches;
        }
    }
    const double overheadSeconds =
        kernelLaunches * calib::kGpuLaunchOverhead * ranksPerDevice +
        calib::kGpuStepOverhead * ranksPerDevice;

    // The reference package serializes host work, transfers, and kernels
    // to a large degree — the data-movement bottleneck of Section 6.2.
    const double stepSeconds = kernelSeconds + transferSeconds +
                               hostSeconds + overheadSeconds;

    result.stepSeconds = stepSeconds;
    result.timestepsPerSecond = 1.0 / stepSeconds;
    result.nsPerDay = result.timestepsPerSecond * 2e-6 * 86400.0;
    result.deviceUtilization = kernelSeconds / stepSeconds;

    // ---- Fig. 7 host-view task breakdown ------------------------------------------
    const double hostPerUnit = 1.0 / hostRate;
    result.taskBreakdown.add(Task::Pair,
                             pairSeconds + transferSeconds * 0.55);
    result.taskBreakdown.add(
        Task::Neigh, device(GpuActivity::CalcNeighListCell) +
                         transferSeconds * 0.10);
    result.taskBreakdown.add(
        Task::Bond, natoms *
                        (spec.bondsPerAtom * calib::kBondCost +
                         spec.anglesPerAtom * calib::kAngleCost) *
                        hostPerUnit);
    result.taskBreakdown.add(
        Task::Kspace, device(GpuActivity::ParticleMap) +
                          device(GpuActivity::MakeRho) +
                          device(GpuActivity::Interp) + hostFftSeconds +
                          transferSeconds * (gridBytes > 0.0 ? 0.25 : 0.0));
    double modifyHostUnits =
        natoms * (calib::kModifyPerAtom + spec.extraFixCostPerAtom);
    if (spec.usesShake)
        modifyHostUnits +=
            natoms * calib::kShakePerAtom * calib::kGpuHostShakeFactor;
    if (spec.nptIntegration)
        modifyHostUnits += natoms * calib::kNptPerAtom;
    result.taskBreakdown.add(Task::Modify, modifyHostUnits * hostPerUnit);
    result.taskBreakdown.add(Task::Output, stepSeconds * 0.002);
    result.taskBreakdown.add(
        Task::Comm,
        overheadSeconds +
            transferSeconds * (gridBytes > 0.0 ? 0.10 : 0.35));
    result.taskBreakdown.add(
        Task::Other, natoms * calib::kOtherPerAtom * hostPerUnit);

    // ---- power -----------------------------------------------------------------
    const double deviceWatts =
        ngpus * gpuDeviceWatts(gpu, result.deviceUtilization);
    const double hostWatts = cpuNodeWatts(platform_, hostRanks, 0.5);
    result.powerWatts = deviceWatts + hostWatts;
    result.energyEfficiency =
        result.timestepsPerSecond / result.powerWatts;
    return result;
}

double
GpuModel::parallelEfficiency(const WorkloadInstance &workload,
                             int ngpus) const
{
    const double tsN = evaluate(workload, ngpus).timestepsPerSecond;
    const double ts1 = evaluate(workload, 1).timestepsPerSecond;
    return tsN / (ts1 * ngpus) * 100.0;
}

} // namespace mdbench
