/**
 * @file
 * Multi-rank execution of an MD simulation over a spatial decomposition,
 * with simulated MPI (the platform substitution documented in DESIGN.md).
 *
 * Ranks execute sequentially on the host; data movement between
 * subdomains is real (atoms migrate, halos are exchanged, forces fold
 * back), while communication *time* is charged to per-rank virtual
 * clocks through the MpiMachineModel. Physics is therefore bit-honest
 * (validated against serial runs) and timing is modeled.
 *
 * Limitations (documented): k-space solvers, EAM (which needs per-atom
 * density communication), and SHAKE clusters are not supported in
 * decomposed native runs; the paper-scale figures for those come from
 * the src/perf platform model.
 */

#ifndef MDBENCH_PARALLEL_RANKED_SIM_H
#define MDBENCH_PARALLEL_RANKED_SIM_H

#include <functional>
#include <memory>
#include <vector>

#include "md/simulation.h"
#include "parallel/decomp.h"
#include "parallel/mpi_model.h"

namespace mdbench {

class RankedSimulation;

/**
 * Communication layer of one rank inside a RankedSimulation.
 */
class RankComm : public CommLayer
{
  public:
    RankComm(RankedSimulation &parent, int rank);

    void exchange(Simulation &sim) override;
    void borders(Simulation &sim) override;
    void forwardPositions(Simulation &sim) override;
    void reverseForces(Simulation &sim) override;
    void forwardScalar(Simulation &sim, std::vector<double> &values) override;
    void reverseScalar(Simulation &sim, std::vector<double> &values) override;

  private:
    friend class RankedSimulation;

    /** Cross-rank ghost record. */
    struct GhostRecord
    {
        int srcRank;
        std::uint32_t srcIndex;
        std::array<std::int8_t, 3> image;
    };

    RankedSimulation &parent_;
    int rank_;
    std::vector<GhostRecord> ghosts_;
};

/**
 * Driver that steps all ranks through each timestep phase in lockstep.
 */
class RankedSimulation
{
  public:
    /**
     * Partition @p global (a fully built serial system: box, atoms,
     * topology, units, dt) across @p nranks subdomains.
     *
     * @param configureRank Callback that installs the pair/bond styles
     *        and fixes on each rank's Simulation (called once per rank
     *        after partitioning).
     */
    RankedSimulation(Simulation &global, int nranks,
                     const std::function<void(Simulation &)> &configureRank,
                     MpiMachineModel machine = {});

    /** Prepare all ranks (ghosts, lists, initial forces, fixes). */
    void setup();

    /** Advance all ranks @p nsteps timesteps in lockstep. */
    void run(long nsteps);

    int nranks() const { return static_cast<int>(sims_.size()); }
    Simulation &rank(int r) { return *sims_[r]; }
    const Simulation &rank(int r) const { return *sims_[r]; }
    const Decomposition &decomposition() const { return decomp_; }

    /** Simulated per-rank MPI time accounting. */
    const MpiStats &mpiStats() const { return mpiStats_; }

    /** Per-rank virtual clocks (compute measured, comm modeled). */
    const std::vector<double> &clocks() const { return clocks_; }

    /** Virtual wall time of the run so far (slowest rank). */
    double virtualTime() const;

    /** Sum of all ranks' task timers (Table 1 breakdown). */
    TaskTimer aggregateTaskTimer() const;

    /** Total owned atoms across ranks (conservation checks). */
    std::size_t totalAtoms() const;

    /** Copy all owned atoms back into @p out (sorted by tag). */
    void gather(Simulation &out) const;

    /** Bytes exchanged so far (forward + reverse + migration). */
    std::size_t commBytes() const { return commBytes_; }

  private:
    friend class RankComm;

    void migrateAtoms();
    void sortAtoms();
    void rebuildGhosts();
    void assignTopology();
    void forwardAll();
    void synchronizeClocks(MpiFunction reason);
    void chargeComm(int rank, MpiFunction fn, std::size_t bytes,
                    int messages);

    Box globalBox_;
    Topology globalTopology_;
    Decomposition decomp_;
    MpiMachineModel machine_;
    std::vector<std::unique_ptr<Simulation>> sims_;
    std::vector<RankComm *> comms_; ///< borrowed from sims_
    MpiStats mpiStats_;
    std::vector<double> clocks_;
    std::size_t commBytes_ = 0;
    bool setupDone_ = false;
};

} // namespace mdbench

#endif // MDBENCH_PARALLEL_RANKED_SIM_H
