/**
 * @file
 * Multi-rank execution of an MD simulation over a spatial decomposition,
 * with simulated MPI (the platform substitution documented in DESIGN.md).
 *
 * Ranks are real execution contexts: by default they run *concurrently*,
 * multiplexed over the shared ThreadPool (one parallel region per
 * timestep phase, the region boundaries standing in for the blocking
 * collectives of a real MPI run); `MDBENCH_RANK_EXEC=seq` retains the
 * one-rank-at-a-time loop as the bitwise oracle. Data movement between
 * subdomains is real (atoms migrate, halos are exchanged, forces fold
 * back), while communication *time* is charged to per-rank virtual
 * clocks through the MpiMachineModel. Physics is therefore bit-honest
 * (validated against serial runs — and the concurrent driver against
 * the sequential one, bitwise) and timing is modeled.
 *
 * With `MDBENCH_COMM_OVERLAP=1` the halo exchange is nonblocking
 * (modeled Isend/Irecv at the end of each step, Waitall charging only
 * the *exposed* wire time) and overlaps the interior force pass: each
 * rank computes the pairs that read no ghost data while the halo is in
 * flight, then completes the boundary pairs after it lands (DESIGN.md
 * §17). Decomposed ranks always run the split interior/boundary
 * arithmetic, so overlap on/off and sequential/concurrent execution
 * all produce bitwise-identical trajectories.
 *
 * Limitations (documented): k-space solvers, EAM (which needs per-atom
 * density communication), and SHAKE clusters are not supported in
 * decomposed native runs; the paper-scale figures for those come from
 * the src/perf platform model.
 */

#ifndef MDBENCH_PARALLEL_RANKED_SIM_H
#define MDBENCH_PARALLEL_RANKED_SIM_H

#include <atomic>
#include <functional>
#include <memory>
#include <vector>

#include "md/simulation.h"
#include "parallel/decomp.h"
#include "parallel/mpi_model.h"

namespace mdbench {

class RankedSimulation;

/** How the ranked driver schedules its ranks each phase. */
enum class RankExecution {
    Sequential, ///< one rank at a time (the bitwise oracle)
    Concurrent  ///< ranks multiplexed over the shared ThreadPool
};

/**
 * Communication layer of one rank inside a RankedSimulation.
 */
class RankComm : public CommLayer
{
  public:
    RankComm(RankedSimulation &parent, int rank);

    void exchange(Simulation &sim) override;
    void borders(Simulation &sim) override;
    void forwardPositions(Simulation &sim) override;
    void reverseForces(Simulation &sim) override;
    void forwardScalar(Simulation &sim, std::vector<double> &values) override;
    void reverseScalar(Simulation &sim, std::vector<double> &values) override;

  private:
    friend class RankedSimulation;

    /** Cross-rank ghost record. */
    struct GhostRecord
    {
        int srcRank;
        std::uint32_t srcIndex;
        std::array<std::int8_t, 3> image;
    };

    /**
     * Reverse-exchange record: another rank holds a ghost copy of one
     * of our owned atoms. The owner *pulls* the accumulated ghost force
     * home and zeroes the holder's slot — each slot has exactly one
     * owner, so concurrent ranks' pulls touch disjoint memory, and the
     * (holderRank, ghostSlot) ascending build order fixes the fold
     * order independently of scheduling.
     */
    struct PullRecord
    {
        int holderRank;
        std::uint32_t ghostSlot;  ///< index into the holder's ghost range
        std::uint32_t ownedIndex; ///< our owned atom receiving the force
    };

    /** Copy fresh owner positions (and, for styles that read them,
     * velocities/spin) into our ghost slots — the data movement of
     * forwardPositions, without the charge. */
    void copyHalo(Simulation &sim);

    /** Wire bytes per ghost atom of a forward exchange: x always, v and
     * omega only when the rank's pair style reads ghost velocities
     * (LAMMPS's comm_x_only optimization). */
    std::size_t
    perGhostBytes() const
    {
        return haloVelocities_ ? 9 * sizeof(double) : 3 * sizeof(double);
    }

    RankedSimulation &parent_;
    int rank_;
    std::vector<GhostRecord> ghosts_;
    std::vector<PullRecord> incoming_;

    /** True when per-step halo copies must include v and omega
     * (granular styles; see PairStyle::needsGhostVelocities). */
    bool haloVelocities_ = true;

    /** Halo bytes received from each source rank per forward exchange
     * (size nranks; 0 for non-sources). Rebuilt with the ghosts. */
    std::vector<std::size_t> bytesFromSource_;
    /** Ranks with bytesFromSource_ > 0, ascending (Waitall iterates
     * this instead of scanning all nranks). */
    std::vector<int> sourceRanks_;
    int sourceCount_ = 0; ///< ranks we receive halo data from
};

/**
 * Driver that steps all ranks through each timestep phase in lockstep.
 */
class RankedSimulation
{
  public:
    /**
     * Partition @p global (a fully built serial system: box, atoms,
     * topology, units, dt) across @p nranks subdomains.
     *
     * @param configureRank Callback that installs the pair/bond styles
     *        and fixes on each rank's Simulation (called once per rank
     *        after partitioning).
     */
    RankedSimulation(Simulation &global, int nranks,
                     const std::function<void(Simulation &)> &configureRank,
                     MpiMachineModel machine = {});

    /** Prepare all ranks (ghosts, lists, initial forces, fixes). */
    void setup();

    /** Advance all ranks @p nsteps timesteps in lockstep. */
    void run(long nsteps);

    int nranks() const { return static_cast<int>(sims_.size()); }
    Simulation &rank(int r) { return *sims_[r]; }
    const Simulation &rank(int r) const { return *sims_[r]; }
    const Decomposition &decomposition() const { return decomp_; }

    // -- execution knobs ---------------------------------------------------

    /** Schedule ranks sequentially (oracle) or concurrently. */
    void setExecution(RankExecution exec) { exec_ = exec; }
    RankExecution execution() const { return exec_; }

    /** Overlap halo exchange with the interior force pass. */
    void setCommOverlap(bool on) { overlap_ = on; }
    bool commOverlap() const { return overlap_; }

    /** MDBENCH_RANK_EXEC=seq|concurrent (default concurrent). */
    static RankExecution defaultExecution();

    /** MDBENCH_COMM_OVERLAP=0|1 (default off). */
    static bool defaultCommOverlap();

    // -- results -----------------------------------------------------------

    /** Simulated per-rank MPI time accounting. */
    const MpiStats &mpiStats() const { return mpiStats_; }

    /** Per-rank virtual clocks (compute measured, comm modeled). */
    const std::vector<double> &clocks() const { return clocks_; }

    /** Virtual wall time of the run so far (slowest rank). */
    double virtualTime() const;

    /** Sum of all ranks' task timers (Table 1 breakdown). */
    TaskTimer aggregateTaskTimer() const;

    /** Total owned atoms across ranks (conservation checks). */
    std::size_t totalAtoms() const;

    /** Copy all owned atoms back into @p out (sorted by tag). */
    void gather(Simulation &out) const;

    /** Bytes exchanged so far (forward + reverse + migration). */
    std::size_t
    commBytes() const
    {
        return commBytes_.load(std::memory_order_relaxed);
    }

  private:
    friend class RankComm;

    // Serial (between-region) orchestration.
    void migrateAtoms();
    void sortAtoms();
    void rebuildGhosts();
    void assignTopology();
    void synchronizeClocks(MpiFunction blockedIn);

    /**
     * Run @p fn(rank) for every rank: a loop in sequential mode, one
     * ThreadPool region in concurrent mode. The region boundary is the
     * barrier standing in for a blocking collective — per-rank work
     * inside a region may read other ranks' data only if no rank
     * mutates it within the same region.
     */
    void forRanks(const std::function<void(int)> &fn);

    // Per-rank step program (shared by both execution modes; each call
    // touches only rank-local state plus the cross-rank reads/writes
    // documented on the reverse/forward exchanges).
    void rankIntegrate(int r);      ///< ++step, first half, rebuild vote
    void rankPostHalo(int r);       ///< post modeled Isend/Irecv
    void rankForwardBlocking(int r);///< blocking halo copy + Send charge
    void rankBuildNeighbors(int r); ///< neighbor list rebuild
    void rankForces(int r, bool haloInFlight); ///< zero+interior[+wait+copy]+boundary
    void rankReverse(int r);        ///< pull ghost forces home
    void rankFinal(int r);          ///< second half + thermo

    /** Charge the modeled Waitall: the exposed part of the in-flight
     * halo wire time, given when each source posted its send. */
    void completeHaloRecv(int r);

    /** Counter/stat bookkeeping with explicit modeled seconds. */
    void chargeCommTime(int rank, MpiFunction fn, double seconds,
                        std::size_t bytes, int messages);

    /** chargeCommTime with seconds = messages·latency + bytes/bandwidth. */
    void chargeComm(int rank, MpiFunction fn, std::size_t bytes,
                    int messages);

    Box globalBox_;
    Topology globalTopology_;
    Decomposition decomp_;
    MpiMachineModel machine_;
    std::vector<std::unique_ptr<Simulation>> sims_;
    std::vector<RankComm *> comms_; ///< borrowed from sims_
    MpiStats mpiStats_;
    std::vector<double> clocks_;

    RankExecution exec_ = defaultExecution();
    bool overlap_ = defaultCommOverlap();

    /** Clock snapshot each rank took when posting its halo sends (read
     * by receivers' Waitall in the following region). */
    std::vector<double> postClock_;

    /** Per-rank reneighbor votes gathered at the collective decision. */
    std::vector<std::uint8_t> rebuildVote_;

    /** Halo bytes each rank sends per forward exchange. */
    std::vector<std::size_t> outBytes_;

    /** Ranks each rank sends halo data to. */
    std::vector<int> destCount_;

    /** Ceiling of the previous synchronizeClocks (monotonicity check). */
    double lastSyncClock_ = 0.0;

    std::atomic<std::size_t> commBytes_{0};
    bool setupDone_ = false;
};

} // namespace mdbench

#endif // MDBENCH_PARALLEL_RANKED_SIM_H
