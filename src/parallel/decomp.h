/**
 * @file
 * Brick spatial decomposition of the simulation box across MPI ranks
 * (the LAMMPS parallelization strategy described in the paper's
 * Section 2.2).
 */

#ifndef MDBENCH_PARALLEL_DECOMP_H
#define MDBENCH_PARALLEL_DECOMP_H

#include <array>

#include "md/box.h"
#include "md/vec3.h"

namespace mdbench {

/**
 * A px * py * pz grid of subdomains covering an orthogonal box.
 */
class Decomposition
{
  public:
    /**
     * Factor @p nranks into a near-cubic grid that minimizes the total
     * subdomain surface for the given box shape.
     */
    Decomposition(int nranks, const Box &box);

    int nranks() const { return grid_[0] * grid_[1] * grid_[2]; }

    /** Ranks per axis. */
    const std::array<int, 3> &grid() const { return grid_; }

    /** Grid cell of @p rank (x fastest). */
    std::array<int, 3> cellOf(int rank) const;

    /** Rank of a (possibly out-of-range, wrapped) grid cell. */
    int rankOf(int cx, int cy, int cz) const;

    /** Subdomain bounds of @p rank. */
    void bounds(int rank, Vec3 &lo, Vec3 &hi) const;

    /** Rank owning a wrapped position. */
    int ownerOf(const Vec3 &wrappedPos) const;

    /**
     * Surface-to-volume communication estimate: ghost-shell volume
     * fraction of one subdomain for a shell of thickness @p cutoff
     * (the O(6 L^2 cutoff d) vs O(L^3 npa d) argument of Section 5.1).
     */
    double ghostFraction(double cutoff) const;

  private:
    Box box_;
    std::array<int, 3> grid_{1, 1, 1};
};

} // namespace mdbench

#endif // MDBENCH_PARALLEL_DECOMP_H
