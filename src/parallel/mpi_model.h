/**
 * @file
 * Simulated MPI: function taxonomy, per-rank time accounting, and the
 * machine model that converts communication events into virtual time.
 *
 * The paper's Figures 4, 5, 12, and 14 are built from exactly this data:
 * per-rank time in each MPI function, the total MPI share of the run,
 * and the imbalance (time waiting on the slowest rank).
 *
 * The host running this reproduction has no MPI and (possibly) a single
 * core, so ranks execute sequentially and all communication costs are
 * *modeled*: each event advances the involved ranks' virtual clocks
 * according to a latency/bandwidth machine description calibrated to the
 * paper's CPU instance (see src/perf/calibration.*).
 */

#ifndef MDBENCH_PARALLEL_MPI_MODEL_H
#define MDBENCH_PARALLEL_MPI_MODEL_H

#include <array>
#include <cstddef>
#include <vector>

namespace mdbench {

/**
 * The MPI functions the paper's breakdown plots distinguish, plus the
 * nonblocking trio (Isend/Irecv/Waitall) the overlapped halo exchange
 * charges: posts cost only their latency, and Waitall charges the
 * *exposed* wire time — whatever of the modeled transfer was not hidden
 * behind the interior force computation (DESIGN.md §17).
 */
enum class MpiFunction : std::size_t {
    Allreduce = 0,
    Init,
    Send,
    Sendrecv,
    Wait,
    Waitany,
    Isend,
    Irecv,
    Waitall,
    Others,
    NumFunctions
};

constexpr std::size_t kNumMpiFunctions =
    static_cast<std::size_t>(MpiFunction::NumFunctions);

/** Human-readable name, e.g. "MPI_Allreduce". */
const char *mpiFunctionName(MpiFunction fn);

/** Per-rank accumulated seconds in each MPI function. */
class MpiStats
{
  public:
    explicit MpiStats(int nranks = 1);

    void add(int rank, MpiFunction fn, double seconds);

    double seconds(int rank, MpiFunction fn) const;

    /** Total MPI seconds of @p rank across all functions. */
    double rankTotal(int rank) const;

    /** Mean over ranks of rankTotal(). */
    double meanTotal() const;

    /** Mean over ranks of one function's time. */
    double meanFunction(MpiFunction fn) const;

    /** Fraction of meanTotal() spent in @p fn (the Fig. 5 breakdown). */
    double functionFraction(MpiFunction fn) const;

    int nranks() const { return static_cast<int>(perRank_.size()); }

    void reset();

  private:
    std::vector<std::array<double, kNumMpiFunctions>> perRank_;
};

/**
 * Latency/bandwidth machine description for intra-node MPI.
 */
struct MpiMachineModel
{
    double latency = 1.0e-6;           ///< per-message latency [s]
    double bandwidth = 12.0e9;         ///< intra-node bytes/s
    double initBase = 0.08;            ///< MPI_Init fixed cost [s]
    double initPerRank = 0.012;        ///< MPI_Init growth per rank [s]
    double allreduceLatency = 1.5e-6;  ///< per-hop allreduce latency [s]

    /** Point-to-point message time. */
    double
    sendTime(std::size_t bytes) const
    {
        return latency + static_cast<double>(bytes) / bandwidth;
    }

    /**
     * Allreduce time: log2(nranks) hops of latency plus the payload
     * traversing each hop.
     */
    double allreduceTime(std::size_t bytes, int nranks) const;

    /**
     * MPI_Init cost for a communicator of @p nranks — the paper observes
     * this grows with the rank count (Section 5.1) and remains a large
     * share of total MPI time.
     */
    double
    initTime(int nranks) const
    {
        return initBase + initPerRank * nranks;
    }
};

} // namespace mdbench

#endif // MDBENCH_PARALLEL_MPI_MODEL_H
