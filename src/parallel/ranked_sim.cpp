#include "parallel/ranked_sim.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <string>
#include <unordered_map>

#include "obs/counters.h"
#include "obs/task_scope.h"
#include "obs/trace.h"
#include "util/error.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace mdbench {

namespace {
// Approximate wire sizes per atom for the three exchange kinds.
constexpr std::size_t kBytesPositionVelocity = 6 * sizeof(double);
constexpr std::size_t kBytesForce = 3 * sizeof(double);
constexpr std::size_t kBytesMigrate = 14 * sizeof(double);
} // namespace

// ---------------------------------------------------------------- RankComm

RankComm::RankComm(RankedSimulation &parent, int rank)
    : parent_(parent), rank_(rank)
{}

void
RankComm::exchange(Simulation &)
{
    // Migration is orchestrated centrally by RankedSimulation; a direct
    // call happens only through Simulation::reneighbor, which the ranked
    // driver never uses.
    panic("RankComm::exchange must go through RankedSimulation");
}

void
RankComm::borders(Simulation &)
{
    panic("RankComm::borders must go through RankedSimulation");
}

void
RankComm::copyHalo(Simulation &sim)
{
    const Vec3 len = parent_.globalBox_.lengths();
    AtomStore &atoms = sim.atoms;
    const std::size_t nlocal = atoms.nlocal();
    ensure(atoms.nghost() == ghosts_.size(), "ghost bookkeeping out of sync");
    // Owners' positions are stable while any rank copies: every caller
    // runs in a phase whose ranks read owned x/v/omega but never write
    // them (integration happens in a previous phase).
    for (std::size_t g = 0; g < ghosts_.size(); ++g) {
        const GhostRecord &rec = ghosts_[g];
        const AtomStore &src = parent_.rank(rec.srcRank).atoms;
        const Vec3 shift{rec.image[0] * len.x, rec.image[1] * len.y,
                         rec.image[2] * len.z};
        atoms.x[nlocal + g] = src.x[rec.srcIndex] + shift;
        if (haloVelocities_) {
            atoms.v[nlocal + g] = src.v[rec.srcIndex];
            atoms.omega[nlocal + g] = src.omega[rec.srcIndex];
        }
    }
}

void
RankComm::forwardPositions(Simulation &sim)
{
    copyHalo(sim);
    parent_.chargeComm(rank_, MpiFunction::Send,
                       ghosts_.size() * perGhostBytes(), 6);
}

void
RankComm::reverseForces(Simulation &sim)
{
    // Owner-side pull: fold every ghost copy of our owned atoms home
    // and zero the holder's slot. Each ghost slot has exactly one
    // owner, so concurrent ranks write disjoint memory; incoming_ is
    // ordered (holderRank, ghostSlot) ascending, fixing the fold order
    // at any schedule.
    AtomStore &atoms = sim.atoms;
    std::size_t sentBytes = 0;
    for (const PullRecord &rec : incoming_) {
        AtomStore &holder = parent_.rank(rec.holderRank).atoms;
        const std::size_t slot = holder.nlocal() + rec.ghostSlot;
        Vec3 &force = holder.f[slot];
        Vec3 &torque = holder.torque[slot];
        if (force.x == 0.0 && force.y == 0.0 && force.z == 0.0 &&
            torque.x == 0.0 && torque.y == 0.0 && torque.z == 0.0) {
            continue;
        }
        atoms.f[rec.ownedIndex] += force;
        atoms.torque[rec.ownedIndex] += torque;
        force = {};
        torque = {};
        sentBytes += kBytesForce;
    }
    parent_.chargeComm(rank_, MpiFunction::Sendrecv, sentBytes, 6);
}

void
RankComm::forwardScalar(Simulation &, std::vector<double> &)
{
    fatal("per-atom scalar communication (EAM) is not supported in "
          "decomposed native runs; use a serial run or the perf model");
}

void
RankComm::reverseScalar(Simulation &, std::vector<double> &)
{
    fatal("per-atom scalar communication (EAM) is not supported in "
          "decomposed native runs; use a serial run or the perf model");
}

// -------------------------------------------------------- RankedSimulation

RankExecution
RankedSimulation::defaultExecution()
{
    if (const char *env = std::getenv("MDBENCH_RANK_EXEC")) {
        const std::string value(env);
        if (value == "seq" || value == "sequential")
            return RankExecution::Sequential;
    }
    return RankExecution::Concurrent;
}

bool
RankedSimulation::defaultCommOverlap()
{
    if (const char *env = std::getenv("MDBENCH_COMM_OVERLAP"))
        return env[0] == '1' || env[0] == 'y' || env[0] == 'Y' ||
               env[0] == 't' || env[0] == 'T';
    return false;
}

RankedSimulation::RankedSimulation(
    Simulation &global, int nranks,
    const std::function<void(Simulation &)> &configureRank,
    MpiMachineModel machine)
    : globalBox_(global.box), globalTopology_(global.topology),
      decomp_(nranks, global.box), machine_(machine), mpiStats_(nranks),
      clocks_(nranks, 0.0), postClock_(nranks, 0.0), rebuildVote_(nranks, 0),
      outBytes_(nranks, 0), destCount_(nranks, 0)
{
    require(nranks >= 1, "need at least one rank");
    require(global.topology.shakeClusters.empty(),
            "SHAKE clusters are not supported in decomposed native runs");
    require(!global.kspace,
            "k-space solvers are not supported in decomposed native runs");

    globalTopology_.buildExclusions();

    // Create the per-rank simulations and scatter the atoms.
    sims_.reserve(nranks);
    comms_.reserve(nranks);
    for (int r = 0; r < nranks; ++r) {
        auto sim = std::make_unique<Simulation>();
        sim->box = globalBox_;
        sim->units = global.units;
        sim->dt = global.dt;
        sim->thermoEvery = 0;
        sim->atoms.typeParams = global.atoms.typeParams;
        auto comm = std::make_unique<RankComm>(*this, r);
        comms_.push_back(comm.get());
        sim->comm = std::move(comm);
        sims_.push_back(std::move(sim));
    }

    for (std::size_t i = 0; i < global.atoms.nlocal(); ++i) {
        const Vec3 wrapped = globalBox_.wrap(global.atoms.x[i]);
        const int owner = decomp_.ownerOf(wrapped);
        AtomStore &dst = sims_[owner]->atoms;
        const std::size_t idx =
            dst.addAtom(global.atoms.tag[i], global.atoms.type[i], wrapped);
        dst.v[idx] = global.atoms.v[i];
        dst.omega[idx] = global.atoms.omega[i];
        dst.q[idx] = global.atoms.q[i];
        dst.molecule[idx] = global.atoms.molecule[i];
    }

    for (auto &sim : sims_) {
        configureRank(*sim);
        // Every rank checks pair exclusions against the global topology.
        for (const Bond &bond : globalTopology_.bonds)
            sim->topology.addExclusion(bond.tagA, bond.tagB);
        for (const Angle &angle : globalTopology_.angles) {
            sim->topology.addExclusion(angle.tagA, angle.tagB);
            sim->topology.addExclusion(angle.tagB, angle.tagC);
            sim->topology.addExclusion(angle.tagA, angle.tagC);
        }
    }
    assignTopology();
}

void
RankedSimulation::chargeCommTime(int rank, MpiFunction fn, double seconds,
                                 std::size_t bytes, int messages)
{
    ensure(seconds >= 0.0, "negative modeled comm time");
    if (messages > 0)
        counterAdd(Counter::MpiMessages,
                   static_cast<std::uint64_t>(messages));
    if (bytes > 0) {
        counterAdd(Counter::MpiModeledBytes, bytes);
        commBytes_.fetch_add(bytes, std::memory_order_relaxed);
    }
    if (traceEnabled())
        traceInstant("mpi", mpiFunctionName(fn));
    // Per-rank rows only: safe from concurrent rank contexts because
    // each touches its own stats row, clock, and task timer.
    mpiStats_.add(rank, fn, seconds);
    clocks_[rank] += seconds;
    // Also visible in the Table 1 breakdown as "Comm".
    sims_[rank]->timer.add(Task::Comm, seconds);
}

void
RankedSimulation::chargeComm(int rank, MpiFunction fn, std::size_t bytes,
                             int messages)
{
    chargeCommTime(rank, fn,
                   messages * machine_.latency +
                       static_cast<double>(bytes) / machine_.bandwidth,
                   bytes, messages);
}

void
RankedSimulation::synchronizeClocks(MpiFunction blockedIn)
{
    // Charge the skew to the MPI function the fast ranks actually block
    // in at this synchronization point (MPI_Allreduce at the rebuild
    // vote, MPI_Wait at the reverse exchange), not a generic catch-all.
    const double maxClock = *std::max_element(clocks_.begin(), clocks_.end());
    ensure(maxClock >= lastSyncClock_,
           "per-rank virtual clocks must be monotone across sync points");
    lastSyncClock_ = maxClock;
    for (int r = 0; r < nranks(); ++r) {
        const double wait = maxClock - clocks_[r];
        if (wait > 0.0) {
            mpiStats_.add(r, blockedIn, wait);
            clocks_[r] = maxClock;
        }
    }
}

void
RankedSimulation::forRanks(const std::function<void(int)> &fn)
{
    if (exec_ == RankExecution::Concurrent && nranks() > 1) {
        // One pool region per phase: the region boundary is the
        // barrier standing in for a blocking collective. Rank contexts
        // run their own kernels inline (nested parallelFor calls
        // execute on the calling thread), so per-rank arithmetic is
        // identical to the sequential schedule by the slice-determinism
        // contract.
        ThreadPool::global().parallelFor(
            0, static_cast<std::size_t>(nranks()), 1,
            [&](std::size_t begin, std::size_t end, int) {
                for (std::size_t r = begin; r < end; ++r)
                    fn(static_cast<int>(r));
            });
    } else {
        for (int r = 0; r < nranks(); ++r)
            fn(r);
    }
}

void
RankedSimulation::rankIntegrate(int r)
{
    Simulation &sim = *sims_[r];
    WallTimer wall;
    ++sim.step;
    sim.integrateInitial();
    rebuildVote_[r] = sim.needsReneighbor() ? 1 : 0;
    clocks_[r] += wall.seconds();
}

void
RankedSimulation::rankPostHalo(int r)
{
    // Post the nonblocking halo for the next force phase: receives
    // first, then sends (latency only — the wire time is charged where
    // it is exposed, at the receivers' Waitall). The post clock is what
    // receivers read to decide how much of the transfer their interior
    // compute hid.
    const RankComm &comm = *comms_[r];
    if (comm.sourceCount_ > 0)
        chargeCommTime(r, MpiFunction::Irecv,
                       comm.sourceCount_ * machine_.latency, 0,
                       comm.sourceCount_);
    if (destCount_[r] > 0) {
        chargeCommTime(r, MpiFunction::Isend,
                       destCount_[r] * machine_.latency, 0, destCount_[r]);
        counterAdd(Counter::CommBytesInflight, outBytes_[r]);
    }
    postClock_[r] = clocks_[r];
}

void
RankedSimulation::completeHaloRecv(int r)
{
    const RankComm &comm = *comms_[r];
    double arrival = 0.0;
    for (int s : comm.sourceRanks_) {
        arrival = std::max(arrival,
                           postClock_[s] +
                               machine_.sendTime(comm.bytesFromSource_[s]));
    }
    const double wait = std::max(0.0, arrival - clocks_[r]);
    chargeCommTime(r, MpiFunction::Waitall, wait,
                   comm.ghosts_.size() * comm.perGhostBytes(), 0);
}

void
RankedSimulation::rankForwardBlocking(int r)
{
    TaskScope scope(sims_[r]->timer, Task::Comm);
    comms_[r]->forwardPositions(*sims_[r]);
}

void
RankedSimulation::rankBuildNeighbors(int r)
{
    Simulation &sim = *sims_[r];
    WallTimer wall;
    TaskScope scope(sim.timer, Task::Neigh);
    sim.neighbor.build(sim);
    clocks_[r] += wall.seconds();
}

void
RankedSimulation::rankForces(int r, bool haloInFlight)
{
    TraceScope trace("parallel", "rank_step");
    Simulation &sim = *sims_[r];
    {
        WallTimer wall;
        sim.zeroForceAccumulators();
        sim.computePairInterior();
        clocks_[r] += wall.seconds();
    }
    if (haloInFlight) {
        completeHaloRecv(r);
        TaskScope scope(sim.timer, Task::Comm);
        comms_[r]->copyHalo(sim);
    }
    WallTimer wall;
    sim.computeBoundaryForces();
    clocks_[r] += wall.seconds();
}

void
RankedSimulation::rankReverse(int r)
{
    sims_[r]->reverseForceComm();
}

void
RankedSimulation::rankFinal(int r)
{
    Simulation &sim = *sims_[r];
    WallTimer wall;
    sim.integrateFinal();
    sim.maybeSampleThermo();
    clocks_[r] += wall.seconds();
}

void
RankedSimulation::migrateAtoms()
{
    // Drop ghosts everywhere, wrap positions, then move strays.
    for (auto &sim : sims_)
        sim->atoms.clearGhosts();
    for (auto &comm : comms_) {
        comm->ghosts_.clear();
        comm->incoming_.clear();
    }

    struct Move
    {
        int from;
        int to;
        std::size_t index;
    };
    std::vector<Move> moves;
    for (int r = 0; r < nranks(); ++r) {
        AtomStore &atoms = sims_[r]->atoms;
        for (std::size_t i = 0; i < atoms.nlocal(); ++i) {
            atoms.x[i] = globalBox_.wrap(atoms.x[i]);
            const int owner = decomp_.ownerOf(atoms.x[i]);
            if (owner != r)
                moves.push_back({r, owner, i});
        }
    }

    // Apply removals in descending index order per rank so that the
    // swap-removal does not invalidate pending indices.
    std::sort(moves.begin(), moves.end(), [](const Move &a, const Move &b) {
        return a.from == b.from ? a.index > b.index : a.from < b.from;
    });
    for (const Move &move : moves) {
        AtomStore &src = sims_[move.from]->atoms;
        AtomStore &dst = sims_[move.to]->atoms;
        const std::size_t i = move.index;
        const std::size_t idx = dst.addAtom(src.tag[i], src.type[i],
                                            src.x[i]);
        dst.v[idx] = src.v[i];
        dst.omega[idx] = src.omega[i];
        dst.q[idx] = src.q[i];
        dst.molecule[idx] = src.molecule[i];
        src.removeAtom(i);
        chargeComm(move.from, MpiFunction::Sendrecv, kBytesMigrate, 1);
        chargeComm(move.to, MpiFunction::Sendrecv, kBytesMigrate, 1);
    }
}

void
RankedSimulation::sortAtoms()
{
    // Safe only in this window: migrateAtoms() just dropped every ghost
    // and every cross-rank ghost record, so no store holds indices into
    // another rank's (about to be reordered) owned range.
    for (int r = 0; r < nranks(); ++r) {
        WallTimer wall;
        sims_[r]->maybeSortAtoms();
        clocks_[r] += wall.seconds();
    }
}

void
RankedSimulation::rebuildGhosts()
{
    for (int r = 0; r < nranks(); ++r) {
        sims_[r]->atoms.clearGhosts();
        comms_[r]->ghosts_.clear();
    }

    const Vec3 len = globalBox_.lengths();
    const auto &grid = decomp_.grid();
    const Vec3 cellSpan{len.x / grid[0], len.y / grid[1], len.z / grid[2]};

    for (int s = 0; s < nranks(); ++s) {
        const AtomStore &src = sims_[s]->atoms;
        const double cut = sims_[s]->commCutoff();
        for (std::size_t i = 0; i < src.nlocal(); ++i) {
            for (int sx = -1; sx <= 1; ++sx) {
                if (sx != 0 && !globalBox_.periodic(0))
                    continue;
                for (int sy = -1; sy <= 1; ++sy) {
                    if (sy != 0 && !globalBox_.periodic(1))
                        continue;
                    for (int sz = -1; sz <= 1; ++sz) {
                        if (sz != 0 && !globalBox_.periodic(2))
                            continue;
                        const Vec3 shift{sx * len.x, sy * len.y,
                                         sz * len.z};
                        const Vec3 pos = src.x[i] + shift;
                        // Candidate destination cells whose expanded
                        // subdomain [lo-cut, hi+cut) contains pos.
                        const int cxLo = static_cast<int>(std::floor(
                            (pos.x - cut - globalBox_.lo().x) / cellSpan.x));
                        const int cxHi = static_cast<int>(std::floor(
                            (pos.x + cut - globalBox_.lo().x) / cellSpan.x));
                        const int cyLo = static_cast<int>(std::floor(
                            (pos.y - cut - globalBox_.lo().y) / cellSpan.y));
                        const int cyHi = static_cast<int>(std::floor(
                            (pos.y + cut - globalBox_.lo().y) / cellSpan.y));
                        const int czLo = static_cast<int>(std::floor(
                            (pos.z - cut - globalBox_.lo().z) / cellSpan.z));
                        const int czHi = static_cast<int>(std::floor(
                            (pos.z + cut - globalBox_.lo().z) / cellSpan.z));
                        for (int cx = cxLo; cx <= cxHi; ++cx) {
                            if (cx < 0 || cx >= grid[0])
                                continue;
                            for (int cy = cyLo; cy <= cyHi; ++cy) {
                                if (cy < 0 || cy >= grid[1])
                                    continue;
                                for (int cz = czLo; cz <= czHi; ++cz) {
                                    if (cz < 0 || cz >= grid[2])
                                        continue;
                                    const int dst =
                                        decomp_.rankOf(cx, cy, cz);
                                    if (dst == s && !sx && !sy && !sz)
                                        continue;
                                    sims_[dst]->atoms.addGhostFrom(
                                        src, i, shift);
                                    comms_[dst]->ghosts_.push_back(
                                        {s, static_cast<std::uint32_t>(i),
                                         {static_cast<std::int8_t>(sx),
                                          static_cast<std::int8_t>(sy),
                                          static_cast<std::int8_t>(sz)}});
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    // Derive the reverse-exchange pull records and the per-(src, dst)
    // halo byte counts the nonblocking model charges. The (holder
    // ascending, slot ascending) build order fixes each owner's fold
    // order independently of the execution schedule.
    for (int r = 0; r < nranks(); ++r) {
        comms_[r]->incoming_.clear();
        comms_[r]->bytesFromSource_.assign(nranks(), 0);
        comms_[r]->sourceRanks_.clear();
        comms_[r]->sourceCount_ = 0;
        outBytes_[r] = 0;
        destCount_[r] = 0;
    }
    for (int h = 0; h < nranks(); ++h) {
        const auto &ghosts = comms_[h]->ghosts_;
        const std::size_t ghostBytes = comms_[h]->perGhostBytes();
        for (std::size_t g = 0; g < ghosts.size(); ++g) {
            const RankComm::GhostRecord &rec = ghosts[g];
            comms_[rec.srcRank]->incoming_.push_back(
                {h, static_cast<std::uint32_t>(g), rec.srcIndex});
            comms_[h]->bytesFromSource_[rec.srcRank] += ghostBytes;
        }
    }
    for (int r = 0; r < nranks(); ++r) {
        for (int s = 0; s < nranks(); ++s) {
            if (comms_[r]->bytesFromSource_[s] == 0)
                continue;
            comms_[r]->sourceRanks_.push_back(s);
            ++comms_[r]->sourceCount_;
            ++destCount_[s];
            outBytes_[s] += comms_[r]->bytesFromSource_[s];
        }
    }

    for (int r = 0; r < nranks(); ++r) {
        chargeComm(r, MpiFunction::Sendrecv,
                   comms_[r]->ghosts_.size() * kBytesPositionVelocity, 6);
        sims_[r]->topology.buildTagMap(sims_[r]->atoms);
    }
}

void
RankedSimulation::assignTopology()
{
    // Build tag -> owner-rank map, then hand each bond/angle to the rank
    // owning its first (bonds) / vertex (angles) atom.
    std::unordered_map<std::int64_t, int> ownerOfTag;
    for (int r = 0; r < nranks(); ++r) {
        const AtomStore &atoms = sims_[r]->atoms;
        for (std::size_t i = 0; i < atoms.nlocal(); ++i)
            ownerOfTag[atoms.tag[i]] = r;
    }
    for (auto &sim : sims_) {
        sim->topology.bonds.clear();
        sim->topology.angles.clear();
    }
    for (const Bond &bond : globalTopology_.bonds)
        sims_[ownerOfTag.at(bond.tagA)]->topology.bonds.push_back(bond);
    for (const Angle &angle : globalTopology_.angles)
        sims_[ownerOfTag.at(angle.tagB)]->topology.angles.push_back(angle);
}

void
RankedSimulation::setup()
{
    // MPI context creation: the cost the paper finds surprisingly large
    // and growing with the rank count (Section 5.1).
    for (int r = 0; r < nranks(); ++r) {
        const double init = machine_.initTime(nranks());
        mpiStats_.add(r, MpiFunction::Init, init);
        clocks_[r] += init;
    }

    migrateAtoms();
    sortAtoms();
    assignTopology();
    for (int r = 0; r < nranks(); ++r) {
        Simulation *sim = sims_[r].get();
        if (sim->pair) {
            sim->neighbor.cutoff =
                std::max(sim->neighbor.cutoff, sim->pair->cutoff());
            sim->neighbor.full =
                sim->neighbor.full || sim->pair->needsFullList();
            sim->pair->setup(*sim);
        }
        // Half-list ranks always run the split interior/boundary
        // arithmetic so the overlap knob changes scheduling only, never
        // results. Full lists (granular history) stay unsplit: their
        // boundary pass simply covers everything after the halo lands.
        sim->neighbor.splitGhostPairs =
            sim->pair != nullptr && !sim->neighbor.full;
        // Per-step halos carry velocities only for styles that read
        // them; everything else gets the x-only fast path.
        comms_[r]->haloVelocities_ =
            !sim->pair || sim->pair->needsGhostVelocities();
    }
    rebuildGhosts();
    for (int r = 0; r < nranks(); ++r) {
        Simulation &sim = *sims_[r];
        WallTimer wall;
        {
            TaskScope scope(sim.timer, Task::Neigh);
            sim.neighbor.build(sim);
        }
        sim.zeroForceAccumulators();
        clocks_[r] += wall.seconds();
    }
    // Same phase discipline as run(): no rank may zero its accumulators
    // after another rank's pull already consumed its ghost slots.
    for (int r = 0; r < nranks(); ++r) {
        WallTimer wall;
        sims_[r]->computeLocalForces();
        clocks_[r] += wall.seconds();
    }
    for (int r = 0; r < nranks(); ++r) {
        Simulation &sim = *sims_[r];
        WallTimer wall;
        sim.reverseForceComm();
        for (auto &fix : sim.fixes) {
            TaskScope scope(sim.timer, Task::Modify);
            fix->setup(sim);
        }
        clocks_[r] += wall.seconds();
    }
    synchronizeClocks(MpiFunction::Wait);
    setupDone_ = true;
}

void
RankedSimulation::run(long nsteps)
{
    ensure(setupDone_, "RankedSimulation::run before setup()");
    if (nsteps <= 0)
        return;

    // Step k+1's first integration half (and, with overlap, its halo
    // posts) ride in step k's tail phase; the first step's run here.
    forRanks([&](int r) {
        rankIntegrate(r);
        if (overlap_)
            rankPostHalo(r);
    });

    for (long stepIdx = 0; stepIdx < nsteps; ++stepIdx) {
        // The rebuild decision is collective (an Allreduce in LAMMPS):
        // every rank pays the modeled reduction, and the step skew up
        // to this point materializes as time inside MPI_Allreduce.
        bool rebuild = false;
        for (int r = 0; r < nranks(); ++r)
            rebuild = rebuild || rebuildVote_[r] != 0;
        const double allreduce =
            machine_.allreduceTime(sizeof(int), nranks());
        for (int r = 0; r < nranks(); ++r) {
            mpiStats_.add(r, MpiFunction::Allreduce, allreduce);
            clocks_[r] += allreduce;
        }
        synchronizeClocks(MpiFunction::Allreduce);

        if (rebuild) {
            // Reneighbor: serial orchestration (migration mutates every
            // store), then a per-rank build phase. Any halo posted for
            // this step addressed the old ghost pattern and is simply
            // not consumed — real codes reneighbor exactly when the
            // pattern changes.
            migrateAtoms();
            sortAtoms();
            assignTopology();
            rebuildGhosts();
            forRanks([&](int r) { rankBuildNeighbors(r); });
        } else if (!overlap_) {
            // Blocking halo exchange in its own phase: every rank's
            // forward completes before any force work starts.
            forRanks([&](int r) { rankForwardBlocking(r); });
        } else {
            counterAdd(Counter::CommOverlapSteps);
        }

        const bool haloInFlight = overlap_ && !rebuild;
        forRanks([&](int r) { rankForces(r, haloInFlight); });

        // The reverse exchange is a blocking neighbor-wise barrier:
        // ranks that finished computing early block in MPI_Wait for the
        // slowest rank's forces.
        synchronizeClocks(MpiFunction::Wait);

        const bool last = stepIdx + 1 == nsteps;
        if (overlap_) {
            // Nonblocking tail: reverse, final half, and the next
            // step's integrate + halo posts fuse into one phase — the
            // pull-based reverse completes each rank's own forces
            // independently of its neighbors' progress.
            forRanks([&](int r) {
                rankReverse(r);
                rankFinal(r);
                if (!last) {
                    rankIntegrate(r);
                    rankPostHalo(r);
                }
            });
        } else {
            // Blocking semantics: each exchange phase is a barrier.
            forRanks([&](int r) { rankReverse(r); });
            forRanks([&](int r) { rankFinal(r); });
            if (!last)
                forRanks([&](int r) { rankIntegrate(r); });
        }
    }
}

double
RankedSimulation::virtualTime() const
{
    return *std::max_element(clocks_.begin(), clocks_.end());
}

TaskTimer
RankedSimulation::aggregateTaskTimer() const
{
    TaskTimer total;
    for (const auto &sim : sims_)
        total.merge(sim->timer);
    return total;
}

std::size_t
RankedSimulation::totalAtoms() const
{
    std::size_t count = 0;
    for (const auto &sim : sims_)
        count += sim->atoms.nlocal();
    return count;
}

void
RankedSimulation::gather(Simulation &out) const
{
    struct Entry
    {
        std::int64_t tag;
        int type;
        Vec3 x;
        Vec3 v;
        double q;
    };
    std::vector<Entry> entries;
    for (const auto &sim : sims_) {
        const AtomStore &atoms = sim->atoms;
        for (std::size_t i = 0; i < atoms.nlocal(); ++i)
            entries.push_back({atoms.tag[i], atoms.type[i], atoms.x[i],
                               atoms.v[i], atoms.q[i]});
    }
    std::sort(entries.begin(), entries.end(),
              [](const Entry &a, const Entry &b) { return a.tag < b.tag; });
    out.box = globalBox_;
    out.atoms = AtomStore{};
    out.atoms.typeParams = sims_[0]->atoms.typeParams;
    for (const Entry &entry : entries) {
        const std::size_t idx =
            out.atoms.addAtom(entry.tag, entry.type, entry.x);
        out.atoms.v[idx] = entry.v;
        out.atoms.q[idx] = entry.q;
    }
}

} // namespace mdbench
