#include "parallel/ranked_sim.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "obs/counters.h"
#include "obs/task_scope.h"
#include "obs/trace.h"
#include "util/error.h"
#include "util/timer.h"

namespace mdbench {

namespace {
// Approximate wire sizes per atom for the three exchange kinds.
constexpr std::size_t kBytesPosition = 3 * sizeof(double);
constexpr std::size_t kBytesPositionVelocity = 6 * sizeof(double);
constexpr std::size_t kBytesForce = 3 * sizeof(double);
constexpr std::size_t kBytesMigrate = 14 * sizeof(double);
} // namespace

// ---------------------------------------------------------------- RankComm

RankComm::RankComm(RankedSimulation &parent, int rank)
    : parent_(parent), rank_(rank)
{}

void
RankComm::exchange(Simulation &)
{
    // Migration is orchestrated centrally by RankedSimulation; a direct
    // call happens only through Simulation::reneighbor, which the ranked
    // driver never uses.
    panic("RankComm::exchange must go through RankedSimulation");
}

void
RankComm::borders(Simulation &)
{
    panic("RankComm::borders must go through RankedSimulation");
}

void
RankComm::forwardPositions(Simulation &sim)
{
    const Vec3 len = parent_.globalBox_.lengths();
    AtomStore &atoms = sim.atoms;
    const std::size_t nlocal = atoms.nlocal();
    ensure(atoms.nghost() == ghosts_.size(), "ghost bookkeeping out of sync");
    for (std::size_t g = 0; g < ghosts_.size(); ++g) {
        const GhostRecord &rec = ghosts_[g];
        const AtomStore &src = parent_.rank(rec.srcRank).atoms;
        const Vec3 shift{rec.image[0] * len.x, rec.image[1] * len.y,
                         rec.image[2] * len.z};
        atoms.x[nlocal + g] = src.x[rec.srcIndex] + shift;
        atoms.v[nlocal + g] = src.v[rec.srcIndex];
        atoms.omega[nlocal + g] = src.omega[rec.srcIndex];
    }
    parent_.chargeComm(rank_, MpiFunction::Send,
                       ghosts_.size() * kBytesPositionVelocity, 6);
}

void
RankComm::reverseForces(Simulation &sim)
{
    AtomStore &atoms = sim.atoms;
    const std::size_t nlocal = atoms.nlocal();
    std::size_t sentBytes = 0;
    for (std::size_t g = 0; g < ghosts_.size(); ++g) {
        Vec3 &force = atoms.f[nlocal + g];
        Vec3 &torque = atoms.torque[nlocal + g];
        if (force.x == 0.0 && force.y == 0.0 && force.z == 0.0 &&
            torque.x == 0.0 && torque.y == 0.0 && torque.z == 0.0) {
            continue;
        }
        const GhostRecord &rec = ghosts_[g];
        AtomStore &src = parent_.rank(rec.srcRank).atoms;
        src.f[rec.srcIndex] += force;
        src.torque[rec.srcIndex] += torque;
        force = {};
        torque = {};
        sentBytes += kBytesForce;
    }
    parent_.chargeComm(rank_, MpiFunction::Sendrecv, sentBytes, 6);
}

void
RankComm::forwardScalar(Simulation &, std::vector<double> &)
{
    fatal("per-atom scalar communication (EAM) is not supported in "
          "decomposed native runs; use a serial run or the perf model");
}

void
RankComm::reverseScalar(Simulation &, std::vector<double> &)
{
    fatal("per-atom scalar communication (EAM) is not supported in "
          "decomposed native runs; use a serial run or the perf model");
}

// -------------------------------------------------------- RankedSimulation

RankedSimulation::RankedSimulation(
    Simulation &global, int nranks,
    const std::function<void(Simulation &)> &configureRank,
    MpiMachineModel machine)
    : globalBox_(global.box), globalTopology_(global.topology),
      decomp_(nranks, global.box), machine_(machine), mpiStats_(nranks),
      clocks_(nranks, 0.0)
{
    require(nranks >= 1, "need at least one rank");
    require(global.topology.shakeClusters.empty(),
            "SHAKE clusters are not supported in decomposed native runs");
    require(!global.kspace,
            "k-space solvers are not supported in decomposed native runs");

    globalTopology_.buildExclusions();

    // Create the per-rank simulations and scatter the atoms.
    sims_.reserve(nranks);
    comms_.reserve(nranks);
    for (int r = 0; r < nranks; ++r) {
        auto sim = std::make_unique<Simulation>();
        sim->box = globalBox_;
        sim->units = global.units;
        sim->dt = global.dt;
        sim->thermoEvery = 0;
        sim->atoms.typeParams = global.atoms.typeParams;
        auto comm = std::make_unique<RankComm>(*this, r);
        comms_.push_back(comm.get());
        sim->comm = std::move(comm);
        sims_.push_back(std::move(sim));
    }

    for (std::size_t i = 0; i < global.atoms.nlocal(); ++i) {
        const Vec3 wrapped = globalBox_.wrap(global.atoms.x[i]);
        const int owner = decomp_.ownerOf(wrapped);
        AtomStore &dst = sims_[owner]->atoms;
        const std::size_t idx =
            dst.addAtom(global.atoms.tag[i], global.atoms.type[i], wrapped);
        dst.v[idx] = global.atoms.v[i];
        dst.omega[idx] = global.atoms.omega[i];
        dst.q[idx] = global.atoms.q[i];
        dst.molecule[idx] = global.atoms.molecule[i];
    }

    for (auto &sim : sims_) {
        configureRank(*sim);
        // Every rank checks pair exclusions against the global topology.
        for (const Bond &bond : globalTopology_.bonds)
            sim->topology.addExclusion(bond.tagA, bond.tagB);
        for (const Angle &angle : globalTopology_.angles) {
            sim->topology.addExclusion(angle.tagA, angle.tagB);
            sim->topology.addExclusion(angle.tagB, angle.tagC);
            sim->topology.addExclusion(angle.tagA, angle.tagC);
        }
    }
    assignTopology();
}

void
RankedSimulation::chargeComm(int rank, MpiFunction fn, std::size_t bytes,
                             int messages)
{
    const double time =
        messages * machine_.latency +
        static_cast<double>(bytes) / machine_.bandwidth;
    counterAdd(Counter::MpiMessages, static_cast<std::uint64_t>(messages));
    counterAdd(Counter::MpiModeledBytes, bytes);
    if (traceEnabled())
        traceInstant("mpi", mpiFunctionName(fn));
    mpiStats_.add(rank, fn, time);
    clocks_[rank] += time;
    commBytes_ += bytes;
    // Also visible in the Table 1 breakdown as "Comm".
    sims_[rank]->timer.add(Task::Comm, time);
}

void
RankedSimulation::synchronizeClocks(MpiFunction reason)
{
    const double maxClock = *std::max_element(clocks_.begin(), clocks_.end());
    for (int r = 0; r < nranks(); ++r) {
        const double wait = maxClock - clocks_[r];
        if (wait > 0.0) {
            mpiStats_.add(r, reason, wait);
            clocks_[r] = maxClock;
        }
    }
}

void
RankedSimulation::migrateAtoms()
{
    // Drop ghosts everywhere, wrap positions, then move strays.
    for (auto &sim : sims_)
        sim->atoms.clearGhosts();
    for (auto &comm : comms_)
        comm->ghosts_.clear();

    struct Move
    {
        int from;
        int to;
        std::size_t index;
    };
    std::vector<Move> moves;
    for (int r = 0; r < nranks(); ++r) {
        AtomStore &atoms = sims_[r]->atoms;
        for (std::size_t i = 0; i < atoms.nlocal(); ++i) {
            atoms.x[i] = globalBox_.wrap(atoms.x[i]);
            const int owner = decomp_.ownerOf(atoms.x[i]);
            if (owner != r)
                moves.push_back({r, owner, i});
        }
    }

    // Apply removals in descending index order per rank so that the
    // swap-removal does not invalidate pending indices.
    std::sort(moves.begin(), moves.end(), [](const Move &a, const Move &b) {
        return a.from == b.from ? a.index > b.index : a.from < b.from;
    });
    for (const Move &move : moves) {
        AtomStore &src = sims_[move.from]->atoms;
        AtomStore &dst = sims_[move.to]->atoms;
        const std::size_t i = move.index;
        const std::size_t idx = dst.addAtom(src.tag[i], src.type[i],
                                            src.x[i]);
        dst.v[idx] = src.v[i];
        dst.omega[idx] = src.omega[i];
        dst.q[idx] = src.q[i];
        dst.molecule[idx] = src.molecule[i];
        src.removeAtom(i);
        chargeComm(move.from, MpiFunction::Sendrecv, kBytesMigrate, 1);
        chargeComm(move.to, MpiFunction::Sendrecv, kBytesMigrate, 1);
    }
}

void
RankedSimulation::sortAtoms()
{
    // Safe only in this window: migrateAtoms() just dropped every ghost
    // and every cross-rank ghost record, so no store holds indices into
    // another rank's (about to be reordered) owned range.
    for (int r = 0; r < nranks(); ++r) {
        WallTimer wall;
        sims_[r]->maybeSortAtoms();
        clocks_[r] += wall.seconds();
    }
}

void
RankedSimulation::rebuildGhosts()
{
    for (int r = 0; r < nranks(); ++r) {
        sims_[r]->atoms.clearGhosts();
        comms_[r]->ghosts_.clear();
    }

    const Vec3 len = globalBox_.lengths();
    const auto &grid = decomp_.grid();
    const Vec3 cellSpan{len.x / grid[0], len.y / grid[1], len.z / grid[2]};

    for (int s = 0; s < nranks(); ++s) {
        const AtomStore &src = sims_[s]->atoms;
        const double cut = sims_[s]->commCutoff();
        for (std::size_t i = 0; i < src.nlocal(); ++i) {
            for (int sx = -1; sx <= 1; ++sx) {
                if (sx != 0 && !globalBox_.periodic(0))
                    continue;
                for (int sy = -1; sy <= 1; ++sy) {
                    if (sy != 0 && !globalBox_.periodic(1))
                        continue;
                    for (int sz = -1; sz <= 1; ++sz) {
                        if (sz != 0 && !globalBox_.periodic(2))
                            continue;
                        const Vec3 shift{sx * len.x, sy * len.y,
                                         sz * len.z};
                        const Vec3 pos = src.x[i] + shift;
                        // Candidate destination cells whose expanded
                        // subdomain [lo-cut, hi+cut) contains pos.
                        const int cxLo = static_cast<int>(std::floor(
                            (pos.x - cut - globalBox_.lo().x) / cellSpan.x));
                        const int cxHi = static_cast<int>(std::floor(
                            (pos.x + cut - globalBox_.lo().x) / cellSpan.x));
                        const int cyLo = static_cast<int>(std::floor(
                            (pos.y - cut - globalBox_.lo().y) / cellSpan.y));
                        const int cyHi = static_cast<int>(std::floor(
                            (pos.y + cut - globalBox_.lo().y) / cellSpan.y));
                        const int czLo = static_cast<int>(std::floor(
                            (pos.z - cut - globalBox_.lo().z) / cellSpan.z));
                        const int czHi = static_cast<int>(std::floor(
                            (pos.z + cut - globalBox_.lo().z) / cellSpan.z));
                        for (int cx = cxLo; cx <= cxHi; ++cx) {
                            if (cx < 0 || cx >= grid[0])
                                continue;
                            for (int cy = cyLo; cy <= cyHi; ++cy) {
                                if (cy < 0 || cy >= grid[1])
                                    continue;
                                for (int cz = czLo; cz <= czHi; ++cz) {
                                    if (cz < 0 || cz >= grid[2])
                                        continue;
                                    const int dst =
                                        decomp_.rankOf(cx, cy, cz);
                                    if (dst == s && !sx && !sy && !sz)
                                        continue;
                                    sims_[dst]->atoms.addGhostFrom(
                                        src, i, shift);
                                    comms_[dst]->ghosts_.push_back(
                                        {s, static_cast<std::uint32_t>(i),
                                         {static_cast<std::int8_t>(sx),
                                          static_cast<std::int8_t>(sy),
                                          static_cast<std::int8_t>(sz)}});
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    for (int r = 0; r < nranks(); ++r) {
        chargeComm(r, MpiFunction::Sendrecv,
                   comms_[r]->ghosts_.size() * kBytesPositionVelocity, 6);
        sims_[r]->topology.buildTagMap(sims_[r]->atoms);
    }
}

void
RankedSimulation::assignTopology()
{
    // Build tag -> owner-rank map, then hand each bond/angle to the rank
    // owning its first (bonds) / vertex (angles) atom.
    std::unordered_map<std::int64_t, int> ownerOfTag;
    for (int r = 0; r < nranks(); ++r) {
        const AtomStore &atoms = sims_[r]->atoms;
        for (std::size_t i = 0; i < atoms.nlocal(); ++i)
            ownerOfTag[atoms.tag[i]] = r;
    }
    for (auto &sim : sims_) {
        sim->topology.bonds.clear();
        sim->topology.angles.clear();
    }
    for (const Bond &bond : globalTopology_.bonds)
        sims_[ownerOfTag.at(bond.tagA)]->topology.bonds.push_back(bond);
    for (const Angle &angle : globalTopology_.angles)
        sims_[ownerOfTag.at(angle.tagB)]->topology.angles.push_back(angle);
}

void
RankedSimulation::forwardAll()
{
    for (int r = 0; r < nranks(); ++r) {
        TaskScope scope(sims_[r]->timer, Task::Comm);
        comms_[r]->forwardPositions(*sims_[r]);
    }
}

void
RankedSimulation::setup()
{
    // MPI context creation: the cost the paper finds surprisingly large
    // and growing with the rank count (Section 5.1).
    for (int r = 0; r < nranks(); ++r) {
        const double init = machine_.initTime(nranks());
        mpiStats_.add(r, MpiFunction::Init, init);
        clocks_[r] += init;
    }

    migrateAtoms();
    sortAtoms();
    assignTopology();
    for (auto &sim : sims_) {
        if (sim->pair) {
            sim->neighbor.cutoff =
                std::max(sim->neighbor.cutoff, sim->pair->cutoff());
            sim->neighbor.full =
                sim->neighbor.full || sim->pair->needsFullList();
            sim->pair->setup(*sim);
        }
    }
    rebuildGhosts();
    for (int r = 0; r < nranks(); ++r) {
        Simulation &sim = *sims_[r];
        WallTimer wall;
        {
            TaskScope scope(sim.timer, Task::Neigh);
            sim.neighbor.build(sim);
        }
        sim.zeroForceAccumulators();
        clocks_[r] += wall.seconds();
    }
    // Same three-sweep discipline as run(): no rank may zero its
    // accumulators after another rank folded ghost forces into them.
    for (int r = 0; r < nranks(); ++r) {
        WallTimer wall;
        sims_[r]->computeLocalForces();
        clocks_[r] += wall.seconds();
    }
    for (int r = 0; r < nranks(); ++r) {
        Simulation &sim = *sims_[r];
        WallTimer wall;
        sim.reverseForceComm();
        for (auto &fix : sim.fixes) {
            TaskScope scope(sim.timer, Task::Modify);
            fix->setup(sim);
        }
        clocks_[r] += wall.seconds();
    }
    synchronizeClocks(MpiFunction::Wait);
    setupDone_ = true;
}

void
RankedSimulation::run(long nsteps)
{
    ensure(setupDone_, "RankedSimulation::run before setup()");
    for (long stepIdx = 0; stepIdx < nsteps; ++stepIdx) {
        // Phase 1: first integration half on every rank.
        for (int r = 0; r < nranks(); ++r) {
            WallTimer wall;
            ++sims_[r]->step;
            sims_[r]->integrateInitial();
            clocks_[r] += wall.seconds();
        }

        // Rebuild decision is collective (an Allreduce in LAMMPS).
        bool rebuild = false;
        for (int r = 0; r < nranks(); ++r) {
            WallTimer wall;
            rebuild = sims_[r]->needsReneighbor() || rebuild;
            clocks_[r] += wall.seconds();
        }
        for (int r = 0; r < nranks(); ++r) {
            const double t = machine_.allreduceTime(sizeof(int), nranks());
            mpiStats_.add(r, MpiFunction::Allreduce, t);
            clocks_[r] += t;
        }

        if (rebuild) {
            migrateAtoms();
            sortAtoms();
            assignTopology();
            rebuildGhosts();
            for (int r = 0; r < nranks(); ++r) {
                Simulation &sim = *sims_[r];
                WallTimer wall;
                TaskScope scope(sim.timer, Task::Neigh);
                sim.neighbor.build(sim);
                clocks_[r] += wall.seconds();
            }
        } else {
            forwardAll();
        }

        // Phase 2: forces. All ranks must zero their accumulators
        // before any rank folds ghost forces into a neighbor, hence the
        // three sweeps. Ranks finish computing at different times; the
        // reverse exchange is where the skew materializes as MPI_Wait.
        for (int r = 0; r < nranks(); ++r)
            sims_[r]->zeroForceAccumulators();
        for (int r = 0; r < nranks(); ++r) {
            WallTimer wall;
            sims_[r]->computeLocalForces();
            clocks_[r] += wall.seconds();
        }
        synchronizeClocks(MpiFunction::Wait);
        for (int r = 0; r < nranks(); ++r)
            sims_[r]->reverseForceComm();

        // Phase 3: final integration half.
        for (int r = 0; r < nranks(); ++r) {
            WallTimer wall;
            sims_[r]->integrateFinal();
            sims_[r]->maybeSampleThermo();
            clocks_[r] += wall.seconds();
        }
    }
}

double
RankedSimulation::virtualTime() const
{
    return *std::max_element(clocks_.begin(), clocks_.end());
}

TaskTimer
RankedSimulation::aggregateTaskTimer() const
{
    TaskTimer total;
    for (const auto &sim : sims_)
        total.merge(sim->timer);
    return total;
}

std::size_t
RankedSimulation::totalAtoms() const
{
    std::size_t count = 0;
    for (const auto &sim : sims_)
        count += sim->atoms.nlocal();
    return count;
}

void
RankedSimulation::gather(Simulation &out) const
{
    struct Entry
    {
        std::int64_t tag;
        int type;
        Vec3 x;
        Vec3 v;
        double q;
    };
    std::vector<Entry> entries;
    for (const auto &sim : sims_) {
        const AtomStore &atoms = sim->atoms;
        for (std::size_t i = 0; i < atoms.nlocal(); ++i)
            entries.push_back({atoms.tag[i], atoms.type[i], atoms.x[i],
                               atoms.v[i], atoms.q[i]});
    }
    std::sort(entries.begin(), entries.end(),
              [](const Entry &a, const Entry &b) { return a.tag < b.tag; });
    out.box = globalBox_;
    out.atoms = AtomStore{};
    out.atoms.typeParams = sims_[0]->atoms.typeParams;
    for (const Entry &entry : entries) {
        const std::size_t idx =
            out.atoms.addAtom(entry.tag, entry.type, entry.x);
        out.atoms.v[idx] = entry.v;
        out.atoms.q[idx] = entry.q;
    }
}

} // namespace mdbench
