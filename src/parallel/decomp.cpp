#include "parallel/decomp.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace mdbench {

Decomposition::Decomposition(int nranks, const Box &box) : box_(box)
{
    require(nranks >= 1, "need at least one rank");

    // Enumerate all factorizations px * py * pz == nranks and pick the
    // one minimizing total subdomain surface area.
    const Vec3 len = box.lengths();
    double bestSurface = 1e300;
    for (int px = 1; px <= nranks; ++px) {
        if (nranks % px)
            continue;
        const int rem = nranks / px;
        for (int py = 1; py <= rem; ++py) {
            if (rem % py)
                continue;
            const int pz = rem / py;
            const double lx = len.x / px;
            const double ly = len.y / py;
            const double lz = len.z / pz;
            const double surface = lx * ly + ly * lz + lz * lx;
            if (surface < bestSurface) {
                bestSurface = surface;
                grid_ = {px, py, pz};
            }
        }
    }
}

std::array<int, 3>
Decomposition::cellOf(int rank) const
{
    ensure(rank >= 0 && rank < nranks(), "rank out of range");
    const int cx = rank % grid_[0];
    const int cy = (rank / grid_[0]) % grid_[1];
    const int cz = rank / (grid_[0] * grid_[1]);
    return {cx, cy, cz};
}

int
Decomposition::rankOf(int cx, int cy, int cz) const
{
    auto wrap = [](int c, int n) { return ((c % n) + n) % n; };
    return wrap(cx, grid_[0]) +
           grid_[0] * (wrap(cy, grid_[1]) +
                       grid_[1] * wrap(cz, grid_[2]));
}

void
Decomposition::bounds(int rank, Vec3 &lo, Vec3 &hi) const
{
    const auto cell = cellOf(rank);
    const Vec3 len = box_.lengths();
    lo = {box_.lo().x + len.x * cell[0] / grid_[0],
          box_.lo().y + len.y * cell[1] / grid_[1],
          box_.lo().z + len.z * cell[2] / grid_[2]};
    hi = {box_.lo().x + len.x * (cell[0] + 1) / grid_[0],
          box_.lo().y + len.y * (cell[1] + 1) / grid_[1],
          box_.lo().z + len.z * (cell[2] + 1) / grid_[2]};
}

int
Decomposition::ownerOf(const Vec3 &wrappedPos) const
{
    const Vec3 len = box_.lengths();
    auto cellIndex = [&](double coord, double lo, double span, int n) {
        int cell = static_cast<int>((coord - lo) / span * n);
        return std::clamp(cell, 0, n - 1);
    };
    return rankOf(cellIndex(wrappedPos.x, box_.lo().x, len.x, grid_[0]),
                  cellIndex(wrappedPos.y, box_.lo().y, len.y, grid_[1]),
                  cellIndex(wrappedPos.z, box_.lo().z, len.z, grid_[2]));
}

double
Decomposition::ghostFraction(double cutoff) const
{
    const Vec3 len = box_.lengths();
    const double lx = len.x / grid_[0];
    const double ly = len.y / grid_[1];
    const double lz = len.z / grid_[2];
    const double inner = lx * ly * lz;
    const double outer = (lx + 2 * cutoff) * (ly + 2 * cutoff) *
                         (lz + 2 * cutoff);
    return (outer - inner) / inner;
}

} // namespace mdbench
