#include "parallel/mpi_model.h"

#include <cmath>

#include "util/error.h"

namespace mdbench {

const char *
mpiFunctionName(MpiFunction fn)
{
    switch (fn) {
      case MpiFunction::Allreduce: return "MPI_Allreduce";
      case MpiFunction::Init:      return "MPI_Init";
      case MpiFunction::Send:      return "MPI_Send";
      case MpiFunction::Sendrecv:  return "MPI_Sendrecv";
      case MpiFunction::Wait:      return "MPI_Wait";
      case MpiFunction::Waitany:   return "MPI_Waitany";
      case MpiFunction::Isend:     return "MPI_Isend";
      case MpiFunction::Irecv:     return "MPI_Irecv";
      case MpiFunction::Waitall:   return "MPI_Waitall";
      case MpiFunction::Others:    return "others";
      default: panic("invalid MpiFunction");
    }
}

MpiStats::MpiStats(int nranks)
{
    require(nranks >= 1, "MpiStats needs at least one rank");
    perRank_.resize(static_cast<std::size_t>(nranks));
    reset();
}

void
MpiStats::reset()
{
    for (auto &row : perRank_)
        row.fill(0.0);
}

void
MpiStats::add(int rank, MpiFunction fn, double seconds)
{
    ensure(rank >= 0 && rank < nranks(), "rank out of range");
    ensure(seconds >= 0.0, "negative MPI time");
    perRank_[rank][static_cast<std::size_t>(fn)] += seconds;
}

double
MpiStats::seconds(int rank, MpiFunction fn) const
{
    return perRank_[rank][static_cast<std::size_t>(fn)];
}

double
MpiStats::rankTotal(int rank) const
{
    double sum = 0.0;
    for (double s : perRank_[rank])
        sum += s;
    return sum;
}

double
MpiStats::meanTotal() const
{
    double sum = 0.0;
    for (int r = 0; r < nranks(); ++r)
        sum += rankTotal(r);
    return sum / nranks();
}

double
MpiStats::meanFunction(MpiFunction fn) const
{
    double sum = 0.0;
    for (int r = 0; r < nranks(); ++r)
        sum += seconds(r, fn);
    return sum / nranks();
}

double
MpiStats::functionFraction(MpiFunction fn) const
{
    const double total = meanTotal();
    return total > 0.0 ? meanFunction(fn) / total : 0.0;
}

double
MpiMachineModel::allreduceTime(std::size_t bytes, int nranks) const
{
    if (nranks <= 1)
        return 0.0;
    const double hops = std::ceil(std::log2(static_cast<double>(nranks)));
    return hops * (allreduceLatency + static_cast<double>(bytes) /
                                          bandwidth);
}

} // namespace mdbench
