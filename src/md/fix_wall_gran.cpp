#include "md/fix_wall_gran.h"

#include <cmath>

#include "md/simulation.h"
#include "util/error.h"

namespace mdbench {

FixWallGran::FixWallGran(double z0, double kn, double kt, double gamman,
                         double gammat, double xmu)
    : z0_(z0), kn_(kn), kt_(kt), gamman_(gamman), gammat_(gammat), xmu_(xmu)
{
    require(kn > 0.0, "wall normal stiffness must be positive");
}

void
FixWallGran::postForce(Simulation &sim)
{
    AtomStore &atoms = sim.atoms;
    const double dt = sim.dt;

    for (std::size_t i = 0; i < atoms.nlocal(); ++i) {
        const double radius = atoms.typeParams[atoms.type[i]].radius;
        const double gap = atoms.x[i].z - z0_;
        const double overlap = radius - gap;
        if (overlap <= 0.0) {
            history_.erase(atoms.tag[i]);
            continue;
        }

        // Relative velocity of the contact point on the sphere surface
        // against the static wall: v + omega x r_c with r_c = -R z_hat.
        const Vec3 &v = atoms.v[i];
        const Vec3 &omega = atoms.omega[i];
        const Vec3 contactVel{v.x - omega.y * radius, v.y + omega.x * radius,
                              v.z};
        const double vn = contactVel.z;
        const Vec3 vt{contactVel.x, contactVel.y, 0.0};

        // Hookean normal force with velocity damping.
        const double m = atoms.massOf(i);
        const double fn = kn_ * overlap - gamman_ * m * vn;

        // Tangential spring on the accumulated shear displacement.
        Vec3 &shear = history_[atoms.tag[i]];
        shear += vt * dt;
        Vec3 ft = shear * (-kt_) - vt * (gammat_ * m);

        // Coulomb cap: |ft| <= xmu * |fn|.
        const double ftMag = ft.norm();
        const double cap = xmu_ * std::fabs(fn);
        if (ftMag > cap && ftMag > 0.0) {
            const double ratio = cap / ftMag;
            // Rescale the stored shear so the spring matches the slipping
            // force (standard granular history treatment).
            shear = (ft * ratio + vt * (gammat_ * m)) / (-kt_);
            ft *= ratio;
        }

        atoms.f[i] += Vec3{ft.x, ft.y, fn};
        // Torque = r_c x F with r_c = -R z_hat.
        atoms.torque[i] += Vec3{radius * ft.y, -radius * ft.x, 0.0};
    }
}

} // namespace mdbench
