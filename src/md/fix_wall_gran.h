/**
 * @file
 * Granular bottom wall (LAMMPS `fix wall/gran hooke/history zplane`):
 * a frictional Hookean wall at the bottom of the Chute box.
 */

#ifndef MDBENCH_MD_FIX_WALL_GRAN_H
#define MDBENCH_MD_FIX_WALL_GRAN_H

#include <unordered_map>

#include "md/fix.h"
#include "md/vec3.h"

namespace mdbench {

/**
 * Hookean wall with tangential shear history, normal to +z at z = z0.
 */
class FixWallGran : public Fix
{
  public:
    /**
     * @param z0    Wall position.
     * @param kn    Normal spring stiffness.
     * @param kt    Tangential spring stiffness.
     * @param gamman Normal damping coefficient.
     * @param gammat Tangential damping coefficient.
     * @param xmu   Friction coefficient (tangential force cap).
     */
    FixWallGran(double z0, double kn, double kt, double gamman,
                double gammat, double xmu);

    std::string name() const override { return "wall/gran"; }
    void postForce(Simulation &sim) override;

    /** Number of atoms currently touching the wall (statistics). */
    std::size_t contactCount() const { return history_.size(); }

  private:
    double z0_;
    double kn_;
    double kt_;
    double gamman_;
    double gammat_;
    double xmu_;
    /** Accumulated tangential displacement per touching atom (by tag). */
    std::unordered_map<std::int64_t, Vec3> history_;
};

} // namespace mdbench

#endif // MDBENCH_MD_FIX_WALL_GRAN_H
