#include "md/fix_nh.h"

#include <algorithm>
#include <cmath>

#include "md/simulation.h"
#include "util/error.h"

namespace mdbench {

FixNVT::FixNVT(double target, double tdamp) : tTarget_(target), tdamp_(tdamp)
{
    require(target > 0.0, "nvt target temperature must be positive");
    require(tdamp > 0.0, "nvt damping time must be positive");
}

void
FixNVT::thermostatHalfStep(Simulation &sim)
{
    const double tCurrent = sim.temperature();
    const double halfDt = 0.5 * sim.dt;
    // Nose-Hoover: d(etaDot)/dt = (T/T0 - 1) / tdamp^2.
    etaDot_ += halfDt * (tCurrent / tTarget_ - 1.0) / (tdamp_ * tdamp_);
    const double scale = std::exp(-halfDt * etaDot_);
    for (std::size_t i = 0; i < sim.atoms.nlocal(); ++i)
        sim.atoms.v[i] *= scale;
}

void
FixNVT::initialIntegrate(Simulation &sim)
{
    thermostatHalfStep(sim);
    AtomStore &atoms = sim.atoms;
    const double dt = sim.dt;
    const double half = 0.5 * dt * sim.units.ftm2v;
    for (std::size_t i = 0; i < atoms.nlocal(); ++i) {
        const double dtfm = half / atoms.massOf(i);
        atoms.v[i] += atoms.f[i] * dtfm;
        atoms.x[i] += atoms.v[i] * dt;
    }
}

void
FixNVT::finalIntegrate(Simulation &sim)
{
    AtomStore &atoms = sim.atoms;
    const double half = 0.5 * sim.dt * sim.units.ftm2v;
    for (std::size_t i = 0; i < atoms.nlocal(); ++i) {
        const double dtfm = half / atoms.massOf(i);
        atoms.v[i] += atoms.f[i] * dtfm;
    }
    thermostatHalfStep(sim);
}

FixNPT::FixNPT(double tTarget, double tdamp, double pTarget, double pdamp)
    : FixNVT(tTarget, tdamp), pTarget_(pTarget), pdamp_(pdamp)
{
    require(pdamp > 0.0, "npt pressure damping time must be positive");
}

void
FixNPT::barostatHalfStep(Simulation &sim)
{
    const double pCurrent = sim.pressure();
    const double halfDt = 0.5 * sim.dt;
    // Strain-rate relaxation toward the pressure setpoint. The reference
    // pressure scale k T N / V keeps the rate dimensionless across unit
    // systems.
    const double nkt = sim.units.boltz * tTarget_ *
                       static_cast<double>(sim.atoms.nlocal()) *
                       sim.units.nktv2p / sim.box.volume();
    const double scale = nkt > 0.0 ? nkt : 1.0;
    omegaDot_ += halfDt * (pCurrent - pTarget_) / (scale * pdamp_ * pdamp_);
    // Keep the barostat from running away on rough pressure estimates.
    const double cap = 0.1 / pdamp_;
    omegaDot_ = std::clamp(omegaDot_, -cap, cap);
}

void
FixNPT::dilate(Simulation &sim)
{
    const double factor = std::exp(sim.dt * omegaDot_);
    // Box::dilate scales about the box center, so positions must too.
    const Vec3 center = (sim.box.lo() + sim.box.hi()) * 0.5;
    sim.box.dilate(factor);
    for (std::size_t i = 0; i < sim.atoms.nlocal(); ++i)
        sim.atoms.x[i] = center + (sim.atoms.x[i] - center) * factor;
    // Counter-scaling of velocities preserves the phase-space measure.
    const double vScale = std::exp(-sim.dt * omegaDot_);
    for (std::size_t i = 0; i < sim.atoms.nlocal(); ++i)
        sim.atoms.v[i] *= vScale;
}

void
FixNPT::initialIntegrate(Simulation &sim)
{
    barostatHalfStep(sim);
    dilate(sim);
    FixNVT::initialIntegrate(sim);
}

void
FixNPT::finalIntegrate(Simulation &sim)
{
    FixNVT::finalIntegrate(sim);
    barostatHalfStep(sim);
}

} // namespace mdbench
