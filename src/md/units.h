/**
 * @file
 * Unit-system conversion constants, mirroring LAMMPS `units lj/metal/real`.
 *
 * The engine is unit-agnostic: positions, velocities, forces, and energies
 * are stored in the experiment's native units and only the conversion
 * factors below enter the equations of motion and thermodynamics.
 */

#ifndef MDBENCH_MD_UNITS_H
#define MDBENCH_MD_UNITS_H

namespace mdbench {

/** Conversion factors for one unit system. */
struct Units
{
    const char *name;   ///< "lj", "metal", or "real"
    double boltz;       ///< Boltzmann constant [energy/temperature]
    double mvv2e;       ///< mass * velocity^2 -> energy
    double ftm2v;       ///< force/mass * time -> velocity (1 / mvv2e)
    double qqr2e;       ///< charge^2 / distance -> energy (Coulomb constant)
    double nktv2p;      ///< N k T / V -> pressure

    /** Reduced Lennard-Jones units (everything 1). */
    static Units lj();

    /** eV / Angstrom / ps / g-mol units. */
    static Units metal();

    /** kcal-mol / Angstrom / fs / g-mol units. */
    static Units real();
};

} // namespace mdbench

#endif // MDBENCH_MD_UNITS_H
