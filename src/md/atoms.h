/**
 * @file
 * Structure-of-arrays atom storage.
 *
 * Owned (local) atoms occupy indices [0, nlocal); ghost copies (periodic
 * images in serial runs, halo atoms in decomposed runs) occupy
 * [nlocal, nlocal + nghost). Per-atom arrays always have
 * nlocal + nghost entries — plus, while the SIMD padded neighbor
 * packing is active, one inert pad slot at index nall() that sentinel
 * neighbor ids gather from (see ensurePadAtom and DESIGN.md §12). The
 * pad slot is excluded from nlocal/nghost/nall and never participates
 * in physics, communication, or reorders.
 */

#ifndef MDBENCH_MD_ATOMS_H
#define MDBENCH_MD_ATOMS_H

#include <cstdint>
#include <vector>

#include "md/vec3.h"

namespace mdbench {

/** Per-type static properties. */
struct AtomTypeParams
{
    double mass = 1.0;
    double radius = 0.5; ///< particle radius (granular styles)
};

/**
 * SoA container for per-atom state.
 */
class AtomStore
{
  public:
    /** Reserve capacity for @p n owned atoms. */
    void reserve(std::size_t n);

    /**
     * Append an owned atom. Must not be called while ghosts exist.
     *
     * @param tag   Globally unique 1-based atom id (stable across ranks).
     * @param type  1-based atom type.
     * @param pos   Initial position.
     * @return local index of the new atom.
     */
    std::size_t addAtom(std::int64_t tag, int type, const Vec3 &pos);

    /** Number of owned atoms. */
    std::size_t nlocal() const { return nlocal_; }

    /** Number of ghost atoms (excludes the SIMD pad slot). */
    std::size_t nghost() const { return x.size() - nlocal_ - npad_; }

    /** Owned + ghost count (excludes the SIMD pad slot). */
    std::size_t nall() const { return x.size() - npad_; }

    /** Number of SIMD pad slots present (0 or 1). */
    std::size_t npad() const { return npad_; }

    /** Drop all ghost atoms and the pad slot (keeps owned atoms). */
    void clearGhosts();

    /**
     * Ensure the inert SIMD pad slot exists at index nall() with
     * position @p pos (placed far outside every cutoff by the caller so
     * the kernels' distance masks zero its lanes). The slot has type 1,
     * zero charge, zero velocity/force, and tag -1; it is dropped by
     * clearGhosts() and must not exist across any structural mutation
     * (addAtom/addGhost/removeAtom/applyPermutation assert this).
     * @return the pad index (== nall()).
     */
    std::size_t ensurePadAtom(const Vec3 &pos);

    /**
     * Append a ghost copy of atom @p src displaced by @p shift.
     * Copies tag/type/charge/molecule; velocity is copied as well (granular
     * styles need ghost velocities).
     * @return index of the ghost.
     */
    std::size_t addGhost(std::size_t src, const Vec3 &shift);

    /**
     * Append a ghost copied from another store (cross-rank halo).
     * ghostOf is set to -1: the owner lives in a different store and is
     * tracked by the communication layer instead.
     * @return index of the ghost.
     */
    std::size_t addGhostFrom(const AtomStore &src, std::size_t i,
                             const Vec3 &shift);

    /** Remove owned atom @p i by swapping the last owned atom into it. */
    void removeAtom(std::size_t i);

    /**
     * Reorder the owned atoms so that new index @p k holds the atom
     * previously at oldOf[k]. Remaps every per-atom SoA array
     * (positions through ghostOf). @p oldOf must be a permutation of
     * [0, nlocal), and no ghosts may exist: any subsystem holding local
     * indices (ghost records, neighbor lists, saved positions) must be
     * rebuilt afterwards — see the permutation contract in DESIGN.md
     * §10. Callers identify atoms across a reorder by tag.
     */
    void applyPermutation(const std::vector<std::uint32_t> &oldOf);

    /** Zero the force accumulators of all owned and ghost atoms. */
    void zeroForces();

    // Per-atom state, indexable by [0, nall()).
    std::vector<Vec3> x;               ///< positions
    std::vector<Vec3> v;               ///< velocities
    std::vector<Vec3> f;               ///< force accumulators
    std::vector<Vec3> omega;           ///< angular velocities (granular)
    std::vector<Vec3> torque;          ///< torque accumulators (granular)
    std::vector<double> q;             ///< charges
    std::vector<int> type;             ///< 1-based type ids
    std::vector<std::int64_t> tag;     ///< global ids (1-based)
    std::vector<std::int64_t> molecule; ///< molecule ids (0 = none)
    std::vector<std::int32_t> ghostOf; ///< owner index for ghosts, -1 for owned

    /** Per-type parameters; index 0 unused (types are 1-based). */
    std::vector<AtomTypeParams> typeParams;

    /** Mass of atom @p i via its type. */
    double massOf(std::size_t i) const { return typeParams[type[i]].mass; }

    /** Define types 1..n with unit mass (idempotent growth). */
    void setNumTypes(int n);

  private:
    std::size_t nlocal_ = 0;
    std::size_t npad_ = 0; ///< SIMD pad slots past the ghosts (0 or 1)
};

} // namespace mdbench

#endif // MDBENCH_MD_ATOMS_H
