/**
 * @file
 * Trajectory output (the "Output" task of Table 1): an extended-XYZ
 * writer usable with common visualization tools (OVITO, VMD, ASE).
 */

#ifndef MDBENCH_MD_DUMP_H
#define MDBENCH_MD_DUMP_H

#include <ostream>
#include <string>

namespace mdbench {

class Simulation;

/**
 * Write one extended-XYZ frame of the owned atoms of @p sim.
 *
 * The comment line carries the step number and the orthogonal box as a
 * `Lattice="..."` attribute; atom lines are `T<type> x y z`.
 */
void writeXyzFrame(std::ostream &os, const Simulation &sim);

/**
 * Appending frame writer bound to a file path.
 */
class XyzDump
{
  public:
    /** Truncates @p path on construction. */
    explicit XyzDump(std::string path);

    /** Append the current frame of @p sim; returns frames written. */
    long write(const Simulation &sim);

    long frames() const { return frames_; }
    const std::string &path() const { return path_; }

  private:
    std::string path_;
    long frames_ = 0;
};

} // namespace mdbench

#endif // MDBENCH_MD_DUMP_H
