/**
 * @file
 * Minimal 3-component vector used throughout the MD engine.
 */

#ifndef MDBENCH_MD_VEC3_H
#define MDBENCH_MD_VEC3_H

#include <cmath>

namespace mdbench {

/** Plain 3-vector of doubles with the usual arithmetic. */
struct Vec3
{
    double x = 0.0;
    double y = 0.0;
    double z = 0.0;

    Vec3 operator+(const Vec3 &o) const { return {x + o.x, y + o.y, z + o.z}; }
    Vec3 operator-(const Vec3 &o) const { return {x - o.x, y - o.y, z - o.z}; }
    Vec3 operator*(double s) const { return {x * s, y * s, z * s}; }
    Vec3 operator/(double s) const { return {x / s, y / s, z / s}; }
    Vec3 operator-() const { return {-x, -y, -z}; }

    Vec3 &
    operator+=(const Vec3 &o)
    {
        x += o.x;
        y += o.y;
        z += o.z;
        return *this;
    }

    Vec3 &
    operator-=(const Vec3 &o)
    {
        x -= o.x;
        y -= o.y;
        z -= o.z;
        return *this;
    }

    Vec3 &
    operator*=(double s)
    {
        x *= s;
        y *= s;
        z *= s;
        return *this;
    }

    /** Dot product. */
    double dot(const Vec3 &o) const { return x * o.x + y * o.y + z * o.z; }

    /** Cross product. */
    Vec3
    cross(const Vec3 &o) const
    {
        return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
    }

    /** Squared Euclidean norm. */
    double normSq() const { return dot(*this); }

    /** Euclidean norm. */
    double norm() const { return std::sqrt(normSq()); }
};

inline Vec3 operator*(double s, const Vec3 &v) { return v * s; }

} // namespace mdbench

#endif // MDBENCH_MD_VEC3_H
