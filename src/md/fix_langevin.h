/**
 * @file
 * Langevin thermostat (LAMMPS `fix langevin`), used by the Chain workload.
 */

#ifndef MDBENCH_MD_FIX_LANGEVIN_H
#define MDBENCH_MD_FIX_LANGEVIN_H

#include "md/fix.h"
#include "util/rng.h"

namespace mdbench {

/**
 * Adds friction -(m / damp) v and the matching fluctuation force so the
 * system samples the canonical ensemble at the target temperature.
 */
class FixLangevin : public Fix
{
  public:
    /**
     * @param target Target temperature.
     * @param damp   Relaxation time of the friction (time units).
     * @param seed   RNG seed for the stochastic kicks.
     */
    FixLangevin(double target, double damp, std::uint64_t seed);

    std::string name() const override { return "langevin"; }
    void postForce(Simulation &sim) override;

  private:
    double target_;
    double damp_;
    Rng rng_;
};

} // namespace mdbench

#endif // MDBENCH_MD_FIX_LANGEVIN_H
