#include "md/box.h"

#include <cmath>

#include "util/error.h"

namespace mdbench {

Box::Box(const Vec3 &lo, const Vec3 &hi) : lo_(lo), hi_(hi)
{
    require(hi.x > lo.x && hi.y > lo.y && hi.z > lo.z,
            "box upper corner must exceed lower corner");
}

void
Box::setPeriodic(bool px, bool py, bool pz)
{
    periodic_ = {px, py, pz};
}

double
Box::volume() const
{
    const Vec3 len = lengths();
    return len.x * len.y * len.z;
}

Vec3
Box::wrap(const Vec3 &pos) const
{
    Vec3 out = pos;
    const Vec3 len = lengths();
    if (periodic_[0])
        out.x -= len.x * std::floor((out.x - lo_.x) / len.x);
    if (periodic_[1])
        out.y -= len.y * std::floor((out.y - lo_.y) / len.y);
    if (periodic_[2])
        out.z -= len.z * std::floor((out.z - lo_.z) / len.z);
    return out;
}

Vec3
Box::minimumImage(const Vec3 &delta) const
{
    Vec3 out = delta;
    const Vec3 len = lengths();
    if (periodic_[0])
        out.x -= len.x * std::round(out.x / len.x);
    if (periodic_[1])
        out.y -= len.y * std::round(out.y / len.y);
    if (periodic_[2])
        out.z -= len.z * std::round(out.z / len.z);
    return out;
}

void
Box::dilate(double factor)
{
    require(factor > 0.0, "box dilation factor must be positive");
    const Vec3 center = (lo_ + hi_) * 0.5;
    lo_ = center + (lo_ - center) * factor;
    hi_ = center + (hi_ - center) * factor;
}

bool
Box::contains(const Vec3 &pos) const
{
    return pos.x >= lo_.x && pos.x < hi_.x && pos.y >= lo_.y &&
           pos.y < hi_.y && pos.z >= lo_.z && pos.z < hi_.z;
}

} // namespace mdbench
