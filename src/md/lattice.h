/**
 * @file
 * Crystal-lattice system builders (fcc / sc / hcp-like slabs).
 *
 * All five benchmark systems start from deterministic lattices (the paper's
 * sizes 32k..2048k are 4 k^3 fcc cells with k = 20/40/60/80), so builders
 * take a cell count per axis rather than an atom count.
 */

#ifndef MDBENCH_MD_LATTICE_H
#define MDBENCH_MD_LATTICE_H

#include <cstdint>

#include "md/vec3.h"

namespace mdbench {

class Simulation;

/**
 * Fill @p sim with an fcc lattice of nx * ny * nz unit cells, 4 atoms per
 * cell, lattice constant @p a, all of type @p type. Defines the box as
 * exactly the lattice span (periodic). Atom tags are assigned 1..N in
 * deterministic order.
 *
 * @return number of atoms created.
 */
std::int64_t buildFcc(Simulation &sim, int nx, int ny, int nz, double a,
                      int type = 1);

/**
 * Fill @p sim with a simple-cubic lattice (1 atom per cell).
 *
 * @return number of atoms created.
 */
std::int64_t buildSc(Simulation &sim, int nx, int ny, int nz, double a,
                     int type = 1);

/**
 * Lattice constant for an fcc crystal at reduced density @p rho
 * (4 atoms per a^3): a = (4 / rho)^(1/3).
 */
double fccLatticeConstant(double rho);

} // namespace mdbench

#endif // MDBENCH_MD_LATTICE_H
