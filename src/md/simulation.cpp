#include "md/simulation.h"

#include <cmath>

#include "obs/counters.h"
#include "obs/task_scope.h"
#include "obs/trace.h"
#include "util/error.h"
#include "util/thread_pool.h"

namespace mdbench {

Simulation::Simulation()
{
    comm = std::make_unique<SerialComm>();
}

int
Simulation::threadCount() const
{
    return ThreadPool::threads();
}

double
Simulation::commCutoff() const
{
    // Ghosts must cover every pair the neighbor list may hold; bonded
    // interactions are assumed shorter than the pair cutoff + skin (true
    // for all five benchmark workloads).
    return neighbor.cutoff + neighbor.skin;
}

void
Simulation::setSortEvery(int every)
{
    require(every >= 0, "sort interval must be >= 0");
    neighbor.sortEvery = every;
}

bool
Simulation::maybeSortAtoms()
{
    if (neighbor.sortEvery <= 0)
        return false;
    if (!neighbor.sortDue() || atoms.nghost() != 0) {
        counterAdd(Counter::SortSkipped);
        return false;
    }
    TaskScope scope(timer, Task::Neigh);
    TraceScope trace("neigh", "spatial_sort");
    neighbor.computeSortOrder(*this, sortOrder_);
    atoms.applyPermutation(sortOrder_);
    for (auto &fix : fixes)
        fix->onAtomsReordered(*this, sortOrder_);
    neighbor.noteSortApplied();
    counterAdd(Counter::SortApplied);
    return true;
}

void
Simulation::reneighbor()
{
    {
        TaskScope scope(timer, Task::Comm);
        comm->exchange(*this);
    }
    // Between exchange and borders the owned atoms are wrapped and no
    // ghosts exist: the only point in the step where a reorder cannot
    // invalidate live indices (ghost records, neighbor list, tag map
    // are all rebuilt below).
    maybeSortAtoms();
    {
        TaskScope scope(timer, Task::Comm);
        comm->borders(*this);
        topology.buildTagMap(atoms);
    }
    {
        TaskScope scope(timer, Task::Neigh);
        neighbor.build(*this);
    }
    ++reneighborCount_;
}

void
Simulation::zeroForceAccumulators()
{
    atoms.zeroForces();
}

void
Simulation::computeLocalForces()
{
    computePairInterior();
    computeBoundaryForces();
}

void
Simulation::computePairInterior()
{
    if (!pair || !neighbor.splitActive())
        return;
    TaskScope scope(timer, Task::Pair);
    const NeighborList &interior = neighbor.interiorList();
    counterAdd(Counter::PairInteriorPairs, interior.pairCount());
    pair->compute(*this, interior);
    pairInteriorEnergy_ = pair->energy();
    pairInteriorVirial_ = pair->virial();
}

void
Simulation::computeBoundaryForces()
{
    if (pair) {
        TaskScope scope(timer, Task::Pair);
        if (neighbor.splitActive()) {
            const NeighborList &boundary = neighbor.boundaryList();
            counterAdd(Counter::PairBoundaryPairs, boundary.pairCount());
            pair->compute(*this, boundary);
            // compute() reset the accumulators; the interior pass's
            // energy/virial belong to the same logical evaluation.
            pair->addAccumulated(pairInteriorEnergy_,
                                 pairInteriorVirial_);
        } else {
            // Re-derive the SIMD packing if a width/tier/layout knob
            // changed since the list was built, so kernels never
            // consume a packing built for a different geometry.
            neighbor.ensureFreshPacking(*this);
            pair->compute(*this, neighbor.list());
        }
    }
    if (bondStyle || angleStyle) {
        TaskScope scope(timer, Task::Bond);
        if (bondStyle)
            bondStyle->compute(*this);
        if (angleStyle)
            angleStyle->compute(*this);
    }
    if (kspace) {
        TaskScope scope(timer, Task::Kspace);
        kspace->compute(*this);
    }
}

void
Simulation::reverseForceComm()
{
    TaskScope scope(timer, Task::Comm);
    comm->reverseForces(*this);
}

void
Simulation::computeForces()
{
    zeroForceAccumulators();
    computeLocalForces();
    reverseForceComm();
}

void
Simulation::setup()
{
    require(pair || bondStyle || !atoms.x.empty(),
            "simulation has no atoms and no styles");
    if (pair) {
        neighbor.cutoff = std::max(neighbor.cutoff, pair->cutoff());
        // Upgrade to a full list when the style demands one, but keep an
        // explicit full request (every kernel consumes full lists; the
        // half/full bench knob depends on the request surviving setup).
        neighbor.full = neighbor.full || pair->needsFullList();
        pair->setup(*this);
    }
    require(neighbor.cutoff > 0.0, "neighbor cutoff must be positive");

    if (kspace)
        kspace->setup(*this);

    // Preserve exclusions installed externally (decomposed runs inject
    // the global set before per-rank setup).
    if (topology.exclusionCount() == 0)
        topology.buildExclusions();
    reneighbor();
    computeForces();
    for (auto &fix : fixes) {
        TaskScope scope(timer, Task::Modify);
        fix->setup(*this);
    }
    setupDone_ = true;

    if (thermoEvery > 0) {
        TaskScope scope(timer, Task::Output);
        thermoLog_.push_back(sampleThermo());
    }
}

void
Simulation::integrateInitial()
{
    TaskScope scope(timer, Task::Modify);
    for (auto &fix : fixes)
        fix->preIntegrate(*this);
    for (auto &fix : fixes)
        fix->initialIntegrate(*this);
}

void
Simulation::integrateFinal()
{
    TaskScope scope(timer, Task::Modify);
    for (auto &fix : fixes)
        fix->postForce(*this);
    for (auto &fix : fixes)
        fix->finalIntegrate(*this);
    for (auto &fix : fixes)
        fix->endOfStep(*this);
}

bool
Simulation::needsReneighbor()
{
    // Distance check runs at most every `neighbor.every` steps,
    // mirroring LAMMPS's neigh_modify every/check semantics.
    TaskScope scope(timer, Task::Other);
    if (neighbor.every > 0 &&
        (step - neighbor.lastBuildStep_) >= neighbor.every) {
        return neighbor.checkTrigger(*this);
    }
    return false;
}

void
Simulation::maybeSampleThermo()
{
    if (thermoEvery > 0 && step % thermoEvery == 0) {
        TaskScope scope(timer, Task::Output);
        thermoLog_.push_back(sampleThermo());
    }
}

void
Simulation::run(long nsteps)
{
    ensure(setupDone_, "Simulation::run before setup()");
    for (long i = 0; i < nsteps; ++i) {
        ++step;
        integrateInitial();

        if (needsReneighbor()) {
            reneighbor();
        } else {
            TaskScope scope(timer, Task::Comm);
            comm->forwardPositions(*this);
        }

        // The force computation proper; postForce/finalIntegrate follow.
        computeForces();
        integrateFinal();
        maybeSampleThermo();
    }
}

double
Simulation::kineticEnergy() const
{
    double sum = 0.0;
    for (std::size_t i = 0; i < atoms.nlocal(); ++i)
        sum += atoms.massOf(i) * atoms.v[i].normSq();
    return 0.5 * units.mvv2e * sum;
}

long
Simulation::degreesOfFreedom() const
{
    long dof = 3 * static_cast<long>(atoms.nlocal()) - 3;
    for (const auto &fix : fixes)
        dof -= fix->removedDof(*this);
    return dof > 0 ? dof : 1;
}

double
Simulation::temperature() const
{
    return 2.0 * kineticEnergy() /
           (static_cast<double>(degreesOfFreedom()) * units.boltz);
}

double
Simulation::potentialEnergy() const
{
    double pe = 0.0;
    if (pair)
        pe += pair->energy();
    if (bondStyle)
        pe += bondStyle->energy();
    if (angleStyle)
        pe += angleStyle->energy();
    if (kspace)
        pe += kspace->energy();
    return pe;
}

double
Simulation::pressure() const
{
    double w = 0.0;
    if (pair)
        w += pair->virial();
    if (bondStyle)
        w += bondStyle->virial();
    if (angleStyle)
        w += angleStyle->virial();
    if (kspace)
        w += kspace->virial();
    const double volume = box.volume();
    return (2.0 * kineticEnergy() + w) / (3.0 * volume) * units.nktv2p;
}

ThermoRow
Simulation::sampleThermo()
{
    ThermoRow row;
    row.step = step;
    row.kinetic = kineticEnergy();
    row.potential = potentialEnergy();
    row.total = row.kinetic + row.potential;
    row.temperature = temperature();
    row.pressure = pressure();
    row.volume = box.volume();
    return row;
}

} // namespace mdbench
