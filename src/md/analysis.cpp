#include "md/analysis.h"

#include <algorithm>
#include <cmath>

#include "md/neighbor.h"
#include "md/simulation.h"
#include "util/error.h"

namespace mdbench {

double
Rdf::peakPosition() const
{
    if (g.empty())
        return 0.0;
    const auto it = std::max_element(g.begin(), g.end());
    return r(static_cast<std::size_t>(it - g.begin()));
}

Rdf
computeRdf(const Simulation &sim, double rMax, int bins)
{
    require(bins >= 2, "rdf needs at least two bins");
    require(rMax > 0.0, "rdf range must be positive");
    require(sim.isSetup(), "computeRdf needs a set-up simulation");
    const NeighborList &list = sim.neighbor.list();
    require(rMax <= list.buildCutoff + 1e-12,
            "rdf range exceeds the neighbor-list cutoff");

    Rdf rdf;
    rdf.binWidth = rMax / bins;
    rdf.g.assign(static_cast<std::size_t>(bins), 0.0);

    const AtomStore &atoms = sim.atoms;
    const std::size_t nlocal = atoms.nlocal();
    // Each stored pair contributes to both atoms' shells.
    const double perPair = list.full ? 1.0 : 2.0;
    for (std::size_t i = 0; i < nlocal; ++i) {
        const auto [begin, end] = list.range(i);
        for (std::uint32_t k = begin; k < end; ++k) {
            const double r =
                (atoms.x[i] - atoms.x[list.neighbors[k]]).norm();
            if (r >= rMax)
                continue;
            rdf.g[static_cast<std::size_t>(r / rdf.binWidth)] += perPair;
        }
    }

    // Normalize by the ideal-gas shell population.
    const double density =
        static_cast<double>(nlocal) / sim.box.volume();
    for (int b = 0; b < bins; ++b) {
        const double rLo = b * rdf.binWidth;
        const double rHi = rLo + rdf.binWidth;
        const double shell =
            4.0 / 3.0 * M_PI * (rHi * rHi * rHi - rLo * rLo * rLo);
        rdf.g[b] /= static_cast<double>(nlocal) * density * shell;
    }
    return rdf;
}

MsdTracker::MsdTracker(const Simulation &sim)
{
    const std::size_t n = sim.atoms.nlocal();
    lastWrapped_.resize(n);
    displacement_.assign(n, Vec3{});
    slotOfTag_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        lastWrapped_[i] = sim.box.wrap(sim.atoms.x[i]);
        slotOfTag_[sim.atoms.tag[i]] = i;
    }
}

double
MsdTracker::sample(const Simulation &sim)
{
    ensure(sim.atoms.nlocal() == lastWrapped_.size(),
           "MsdTracker: atom count changed");
    double sum = 0.0;
    for (std::size_t i = 0; i < lastWrapped_.size(); ++i) {
        // Resolve by tag: spatial sorting may have moved the atom to a
        // different local index since capture.
        const auto it = slotOfTag_.find(sim.atoms.tag[i]);
        ensure(it != slotOfTag_.end(), "MsdTracker: unknown atom tag");
        const std::size_t slot = it->second;
        const Vec3 wrapped = sim.box.wrap(sim.atoms.x[i]);
        displacement_[slot] +=
            sim.box.minimumImage(wrapped - lastWrapped_[slot]);
        lastWrapped_[slot] = wrapped;
        sum += displacement_[slot].normSq();
    }
    msd_ = sum / static_cast<double>(lastWrapped_.size());
    return msd_;
}

} // namespace mdbench
