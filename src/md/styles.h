/**
 * @file
 * Base classes for interaction styles: pair, bond, angle, and k-space.
 *
 * Concrete styles live in src/forcefield (short-range and bonded) and
 * src/kspace (long-range). Each style accumulates its potential energy and
 * scalar virial during compute(); the Simulation reads them for thermo
 * output and pressure.
 */

#ifndef MDBENCH_MD_STYLES_H
#define MDBENCH_MD_STYLES_H

#include <algorithm>
#include <cstddef>
#include <string>

namespace mdbench {

class Simulation;
struct NeighborList;

/**
 * Slice grain for force kernels that reduce through per-slice scratch
 * buffers: at most 8 slices per compute (scratch memory and the serial
 * fraction of the reduction both scale with the slice count), at least
 * 64 atoms per slice so tiny systems stay single-slice.
 */
inline std::size_t
forceKernelGrain(std::size_t nlocal)
{
    return std::max<std::size_t>(64, nlocal / 8);
}

/** Common bookkeeping for all interaction styles. */
class StyleBase
{
  public:
    virtual ~StyleBase() = default;

    /** Short identifier, e.g. "lj/cut" or "pppm". */
    virtual std::string name() const = 0;

    /** Potential energy accumulated by the last compute(). */
    double energy() const { return energy_; }

    /** Scalar virial (sum of r . f over interactions) of last compute(). */
    double virial() const { return virial_; }

    /**
     * Fold energy/virial accumulated by an earlier compute() call back
     * in after a later call reset the accumulators — the
     * interior/boundary split force phases run one logical evaluation
     * as two compute() calls (DESIGN.md §17).
     */
    void
    addAccumulated(double energy, double virial)
    {
        energy_ += energy;
        virial_ += virial;
    }

  protected:
    void
    resetAccumulators()
    {
        energy_ = 0.0;
        virial_ = 0.0;
    }

    double energy_ = 0.0;
    double virial_ = 0.0;
};

/**
 * Short-range pairwise potential.
 */
class PairStyle : public StyleBase
{
  public:
    /** Accumulate forces from all listed pairs. */
    virtual void compute(Simulation &sim, const NeighborList &list) = 0;

    /** Interaction cutoff (the neighbor skin is added on top). */
    virtual double cutoff() const = 0;

    /** Whether this style requires a full (twice-per-pair) list. */
    virtual bool needsFullList() const { return false; }

    /** Whether ghosts must carry velocities (granular styles). */
    virtual bool needsGhostVelocities() const { return false; }

    /** Called once before the first run (after the box/atoms exist). */
    virtual void setup(Simulation &) {}
};

/**
 * Two-body bonded potential evaluated over Topology::bonds.
 */
class BondStyle : public StyleBase
{
  public:
    virtual void compute(Simulation &sim) = 0;
};

/**
 * Three-body angle potential evaluated over Topology::angles.
 */
class AngleStyle : public StyleBase
{
  public:
    virtual void compute(Simulation &sim) = 0;
};

/**
 * Long-range (k-space) solver for Coulomb interactions.
 */
class KspaceStyle : public StyleBase
{
  public:
    /**
     * Size grids / tune the splitting parameter for the current system.
     * Called at run setup and whenever the box changes appreciably.
     */
    virtual void setup(Simulation &sim) = 0;

    /** Accumulate long-range forces on owned atoms. */
    virtual void compute(Simulation &sim) = 0;

    /** Ewald splitting parameter g (used by coul/long real-space). */
    virtual double splittingParameter() const = 0;

    /** Requested relative accuracy in forces (paper's error threshold). */
    virtual double accuracy() const = 0;
};

} // namespace mdbench

#endif // MDBENCH_MD_STYLES_H
