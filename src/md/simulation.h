/**
 * @file
 * The Simulation: owns all state and runs the Verlet timestep loop of the
 * paper's Figure 1, charging each phase to the Table 1 task it belongs to.
 */

#ifndef MDBENCH_MD_SIMULATION_H
#define MDBENCH_MD_SIMULATION_H

#include <memory>
#include <string>
#include <vector>

#include "md/atoms.h"
#include "md/box.h"
#include "md/comm.h"
#include "md/fix.h"
#include "md/neighbor.h"
#include "md/styles.h"
#include "md/topology.h"
#include "md/units.h"
#include "util/timer.h"

namespace mdbench {

/** One row of thermodynamic output ("Output" task of Table 1). */
struct ThermoRow
{
    long step = 0;
    double temperature = 0.0;
    double kinetic = 0.0;
    double potential = 0.0;
    double total = 0.0;
    double pressure = 0.0;
    double volume = 0.0;
};

/**
 * A molecular dynamics simulation of one spatial domain.
 *
 * In serial runs the domain is the whole box; in decomposed runs
 * (src/parallel) each rank's Simulation covers one subdomain and a
 * RankComm stitches them together.
 */
class Simulation
{
  public:
    Simulation();

    // -- state ------------------------------------------------------------
    Box box;
    AtomStore atoms;
    Topology topology;
    Units units = Units::lj();
    double dt = 0.005;
    long step = 0;

    // -- styles and fixes ---------------------------------------------------
    std::unique_ptr<PairStyle> pair;
    std::unique_ptr<BondStyle> bondStyle;
    std::unique_ptr<AngleStyle> angleStyle;
    std::unique_ptr<KspaceStyle> kspace;
    std::vector<std::unique_ptr<Fix>> fixes;

    Neighbor neighbor;
    std::unique_ptr<CommLayer> comm;

    /** Add a fix and return a reference to it. */
    template <typename FixT, typename... Args>
    FixT &
    addFix(Args &&...args)
    {
        fixes.push_back(std::make_unique<FixT>(std::forward<Args>(args)...));
        return static_cast<FixT &>(*fixes.back());
    }

    // -- execution ----------------------------------------------------------

    /**
     * Prepare for a run: wrap atoms, build ghosts and neighbor lists,
     * evaluate initial forces, and call every fix's setup().
     */
    void setup();

    /** Advance @p nsteps timesteps. setup() must have been called. */
    void run(long nsteps);

    /** Record thermo output every this many steps (0 = never). */
    int thermoEvery = 100;

    /** Collected thermo rows. */
    const std::vector<ThermoRow> &thermoLog() const { return thermoLog_; }

    /** Per-task time breakdown of all run() calls so far. */
    TaskTimer timer;

    // -- thermodynamics -------------------------------------------------------

    /** Total kinetic energy of owned atoms. */
    double kineticEnergy() const;

    /** Instantaneous temperature from kinetic energy and DOF. */
    double temperature() const;

    /** Potential energy from the last force evaluation. */
    double potentialEnergy() const;

    /** Scalar pressure from kinetic + virial contributions. */
    double pressure() const;

    /** Degrees of freedom (3N - 3 - fix-removed). */
    long degreesOfFreedom() const;

    /** Take one thermo sample now (also used by tests). */
    ThermoRow sampleThermo();

    // -- hooks used by comm/parallel ------------------------------------------

    /** Communication cutoff = pair cutoff + skin (and bond stretch room). */
    double commCutoff() const;

    /** Number of reneighbor events during run(). */
    long reneighborCount() const { return reneighborCount_; }

    /**
     * Threads of the shared pool executing this simulation's pair and
     * neighbor kernels (process-wide; see ThreadPool::setThreads).
     */
    int threadCount() const;

    /** True when setup() has run. */
    bool isSetup() const { return setupDone_; }

    /** Force a reneighbor (exchange + borders + build) now. */
    void reneighbor();

    /**
     * Spatially reorder the owned atoms into neighbor-bin order if the
     * sort policy is due (see Neighbor::sortEvery). May only run while
     * no ghosts exist; reneighbor() and the ranked driver call it right
     * after migration, before ghost/list rebuilds. Fixes are notified
     * through Fix::onAtomsReordered.
     * @return true when a reorder was applied.
     */
    bool maybeSortAtoms();

    /** Spatial sort interval in neighbor rebuilds (0 = disabled). */
    int sortEvery() const { return neighbor.sortEvery; }

    /** Set the sort interval (programmatic MDBENCH_SORT_EVERY). */
    void setSortEvery(int every);

    /** Evaluate all forces for the current positions. */
    void computeForces();

    /**
     * Split force phases for decomposed runs (a rank must not zero its
     * accumulators after a neighbor already folded ghost forces into
     * them): zero -> local -> reverse, each across all ranks in turn.
     */
    void zeroForceAccumulators();
    void computeLocalForces();
    void reverseForceComm();

    /**
     * Overlap-split force phases (DESIGN.md §17). When the Neighbor
     * carries interior/boundary sublists (decomposed ranks), the
     * interior pairs read no ghost data and can run while the halo
     * exchange is in flight; the boundary pairs plus the bonded terms
     * (which may read ghost positions) run after it lands. With the
     * split inactive, computePairInterior() is a no-op and
     * computeBoundaryForces() evaluates everything, so in every mode
     * computeLocalForces() == the two calls in order.
     */
    void computePairInterior();
    void computeBoundaryForces();

    /**
     * Individual timestep phases, public so that a multi-rank driver
     * (parallel::RankedSimulation) can run all ranks through each phase
     * in lockstep. Serial run() composes exactly these.
     */
    void integrateInitial();
    void integrateFinal();

    /** True when the neighbor rebuild criterion fires this step. */
    bool needsReneighbor();

    /** Take the periodic thermo sample if due ("Output" task). */
    void maybeSampleThermo();

  private:
    /** Interior-pass accumulators folded back after the boundary pass. */
    double pairInteriorEnergy_ = 0.0;
    double pairInteriorVirial_ = 0.0;

    std::vector<ThermoRow> thermoLog_;
    std::vector<std::uint32_t> sortOrder_; ///< reusable sort scratch
    long reneighborCount_ = 0;
    bool setupDone_ = false;
};

} // namespace mdbench

#endif // MDBENCH_MD_SIMULATION_H
