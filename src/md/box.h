/**
 * @file
 * Orthogonal simulation box with per-axis periodic boundary conditions.
 */

#ifndef MDBENCH_MD_BOX_H
#define MDBENCH_MD_BOX_H

#include <array>

#include "md/vec3.h"

namespace mdbench {

/**
 * An axis-aligned simulation box.
 *
 * Each axis is independently periodic or fixed (fixed axes are used by the
 * Chute experiment, which has a wall at the bottom of the z axis).
 */
class Box
{
  public:
    Box() = default;

    /** Construct from lower and upper corners, fully periodic. */
    Box(const Vec3 &lo, const Vec3 &hi);

    /** Set periodicity per axis. */
    void setPeriodic(bool px, bool py, bool pz);

    const Vec3 &lo() const { return lo_; }
    const Vec3 &hi() const { return hi_; }

    /** Edge lengths. */
    Vec3 lengths() const { return hi_ - lo_; }

    /** Box volume. */
    double volume() const;

    /** Whether axis @p axis (0..2) is periodic. */
    bool periodic(int axis) const { return periodic_[axis]; }

    /**
     * Wrap @p pos into the primary cell along periodic axes.
     * Non-periodic axes are left untouched.
     */
    Vec3 wrap(const Vec3 &pos) const;

    /**
     * Minimum-image displacement @p a - @p b.
     * Assumes each box edge exceeds twice the interaction range.
     */
    Vec3 minimumImage(const Vec3 &delta) const;

    /** Rescale the box isotropically about its center by @p factor. */
    void dilate(double factor);

    /** True if @p pos lies inside the box (half-open on the high side). */
    bool contains(const Vec3 &pos) const;

  private:
    Vec3 lo_{0, 0, 0};
    Vec3 hi_{1, 1, 1};
    std::array<bool, 3> periodic_{true, true, true};
};

} // namespace mdbench

#endif // MDBENCH_MD_BOX_H
