/**
 * @file
 * Molecular topology: bonds, angles, and rigid (SHAKE) clusters.
 *
 * Topology is stored with *global tags*, and resolved to local indices on
 * demand through a tag map, so it survives atom migration and reordering.
 */

#ifndef MDBENCH_MD_TOPOLOGY_H
#define MDBENCH_MD_TOPOLOGY_H

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace mdbench {

class AtomStore;

/** A two-body bonded interaction between atoms with global tags. */
struct Bond
{
    std::int64_t tagA = 0;
    std::int64_t tagB = 0;
    int type = 1;
};

/** A three-body angle interaction (B is the vertex). */
struct Angle
{
    std::int64_t tagA = 0;
    std::int64_t tagB = 0;
    std::int64_t tagC = 0;
    int type = 1;
};

/** A rigid cluster constrained by SHAKE (e.g. a 3-site water molecule). */
struct ShakeCluster
{
    /** Atom tags; tags[0] is the central atom. */
    std::vector<std::int64_t> tags;
    /** Constrained distances: pairs (i, j) of indices into tags + target. */
    struct Constraint
    {
        int i = 0;
        int j = 0;
        double distance = 0.0;
    };
    std::vector<Constraint> constraints;
};

/**
 * Container for bonded topology plus a tag -> local-index resolver.
 */
class Topology
{
  public:
    std::vector<Bond> bonds;
    std::vector<Angle> angles;
    std::vector<ShakeCluster> shakeClusters;

    /**
     * Build the special-bonds exclusion set: 1-2 pairs (bonds) and 1-3
     * pairs (angle ends) are removed from the pairwise neighbor lists,
     * matching LAMMPS `special_bonds 0 0 1` semantics used by the
     * Chain and Rhodopsin workloads.
     */
    void buildExclusions();

    /**
     * Add one exclusion directly (used by the decomposed driver, whose
     * per-rank topologies hold only locally-owned bonds but must exclude
     * globally).
     */
    void addExclusion(std::int64_t tagA, std::int64_t tagB);

    /** Number of exclusion entries. */
    std::size_t exclusionCount() const { return exclusions_.size(); }

    /** True when the (tagA, tagB) pair is excluded from pair interactions. */
    bool excluded(std::int64_t tagA, std::int64_t tagB) const;

    /** Rebuild the tag -> index map from @p atoms (owned + ghosts). */
    void buildTagMap(const AtomStore &atoms);

    /**
     * Resolve @p tag to a local index, preferring owned atoms.
     * @return index, or -1 when the tag is not present.
     */
    std::int64_t indexOf(std::int64_t tag) const;

    /** Number of map entries (owned + ghost tags). */
    std::size_t mappedAtoms() const { return tagMap_.size(); }

  private:
    static std::uint64_t pairKey(std::int64_t tagA, std::int64_t tagB);

    std::unordered_map<std::int64_t, std::int64_t> tagMap_;
    std::unordered_set<std::uint64_t> exclusions_;
};

} // namespace mdbench

#endif // MDBENCH_MD_TOPOLOGY_H
