#include "md/dump.h"

#include <fstream>

#include "md/simulation.h"
#include "util/error.h"
#include "util/string_utils.h"

namespace mdbench {

void
writeXyzFrame(std::ostream &os, const Simulation &sim)
{
    const AtomStore &atoms = sim.atoms;
    const Vec3 len = sim.box.lengths();
    os << atoms.nlocal() << '\n';
    os << strprintf("Lattice=\"%g 0 0 0 %g 0 0 0 %g\" "
                    "Properties=species:S:1:pos:R:3 step=%ld\n",
                    len.x, len.y, len.z, sim.step);
    for (std::size_t i = 0; i < atoms.nlocal(); ++i) {
        const Vec3 pos = sim.box.wrap(atoms.x[i]);
        os << strprintf("T%d %.8g %.8g %.8g\n", atoms.type[i], pos.x,
                        pos.y, pos.z);
    }
}

XyzDump::XyzDump(std::string path) : path_(std::move(path))
{
    std::ofstream file(path_, std::ios::trunc);
    require(file.good(), "cannot open dump file: " + path_);
}

long
XyzDump::write(const Simulation &sim)
{
    std::ofstream file(path_, std::ios::app);
    require(file.good(), "cannot append to dump file: " + path_);
    writeXyzFrame(file, sim);
    return ++frames_;
}

} // namespace mdbench
