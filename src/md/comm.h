/**
 * @file
 * Communication layer abstraction (ghost atoms, force folding, migration).
 *
 * The MD engine is written against this interface so that the same timestep
 * loop runs in two settings:
 *  - SerialComm: a single domain whose ghosts are periodic images of its
 *    own atoms (this file);
 *  - RankComm (src/parallel): one subdomain of a spatial decomposition
 *    whose ghosts come from neighboring ranks.
 *
 * The "Comm" task of the paper's Table 1 is exactly the time spent inside
 * these methods.
 */

#ifndef MDBENCH_MD_COMM_H
#define MDBENCH_MD_COMM_H

#include <array>
#include <cstdint>
#include <vector>

#include "md/vec3.h"

namespace mdbench {

class Simulation;

/**
 * Abstract ghost/exchange layer.
 */
class CommLayer
{
  public:
    virtual ~CommLayer() = default;

    /**
     * Migrate atoms to their owners and wrap positions into the box.
     * Called only on reneighbor steps, before borders().
     */
    virtual void exchange(Simulation &sim) = 0;

    /**
     * Rebuild the ghost set out to the communication cutoff.
     * Called only on reneighbor steps, after exchange().
     */
    virtual void borders(Simulation &sim) = 0;

    /** Refresh ghost positions (and velocities) from their owners. */
    virtual void forwardPositions(Simulation &sim) = 0;

    /** Fold ghost forces (and torques) into their owners. */
    virtual void reverseForces(Simulation &sim) = 0;

    /** Copy a per-atom scalar from owners to their ghosts. */
    virtual void forwardScalar(Simulation &sim,
                               std::vector<double> &values) = 0;

    /** Accumulate a per-atom scalar from ghosts into their owners. */
    virtual void reverseScalar(Simulation &sim,
                               std::vector<double> &values) = 0;

    /** Ghost cutoff distance used by the last borders() call. */
    double ghostCutoff() const { return ghostCutoff_; }

  protected:
    double ghostCutoff_ = 0.0;
};

/**
 * Single-domain communication: ghosts are periodic images.
 *
 * Each ghost records its owner plus an integer image code per axis in
 * {-1, 0, +1}; positions are re-derived from the owner and the *current*
 * box lengths, so box dilation (NPT) is handled transparently.
 */
class SerialComm : public CommLayer
{
  public:
    void exchange(Simulation &sim) override;
    void borders(Simulation &sim) override;
    void forwardPositions(Simulation &sim) override;
    void reverseForces(Simulation &sim) override;
    void forwardScalar(Simulation &sim, std::vector<double> &values) override;
    void reverseScalar(Simulation &sim, std::vector<double> &values) override;

  private:
    /** Owner index and image code of each ghost, parallel to ghost range. */
    struct GhostRecord
    {
        std::uint32_t owner;
        std::array<std::int8_t, 3> image;
    };
    std::vector<GhostRecord> ghosts_;
};

} // namespace mdbench

#endif // MDBENCH_MD_COMM_H
