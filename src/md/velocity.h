/**
 * @file
 * Velocity initialization: Maxwell-Boltzmann sampling, momentum zeroing,
 * and temperature rescaling (LAMMPS `velocity create` equivalent).
 */

#ifndef MDBENCH_MD_VELOCITY_H
#define MDBENCH_MD_VELOCITY_H

#include <cstdint>

namespace mdbench {

class Simulation;
class Rng;

/**
 * Assign Maxwell-Boltzmann velocities at temperature @p target to all
 * owned atoms, zero the net momentum, and rescale so the instantaneous
 * temperature equals @p target exactly.
 */
void createVelocities(Simulation &sim, double target, Rng &rng);

/** Remove the center-of-mass momentum of the owned atoms. */
void zeroMomentum(Simulation &sim);

/** Rescale velocities so the instantaneous temperature equals @p target. */
void scaleToTemperature(Simulation &sim, double target);

} // namespace mdbench

#endif // MDBENCH_MD_VELOCITY_H
