/**
 * @file
 * Constant gravitational acceleration (LAMMPS `fix gravity`), used by the
 * Chute workload with the acceleration vector tilted at the chute angle.
 */

#ifndef MDBENCH_MD_FIX_GRAVITY_H
#define MDBENCH_MD_FIX_GRAVITY_H

#include "md/fix.h"
#include "md/vec3.h"

namespace mdbench {

/** Applies F = m g along a fixed direction every step. */
class FixGravity : public Fix
{
  public:
    /**
     * @param magnitude Gravitational acceleration (velocity/time units).
     * @param direction Unit-ish direction vector (normalized internally).
     */
    FixGravity(double magnitude, const Vec3 &direction);

    /** Chute-style gravity: magnitude 1, tilted by @p degrees around y. */
    static FixGravity chute(double magnitude, double degrees);

    std::string name() const override { return "gravity"; }
    void postForce(Simulation &sim) override;

    /** The applied acceleration vector. */
    const Vec3 &acceleration() const { return g_; }

  private:
    Vec3 g_;
};

} // namespace mdbench

#endif // MDBENCH_MD_FIX_GRAVITY_H
