#include "md/units.h"

namespace mdbench {

Units
Units::lj()
{
    return {"lj", 1.0, 1.0, 1.0, 1.0, 1.0};
}

Units
Units::metal()
{
    // g/mol * (A/ps)^2 = 1.0364269e-4 eV; q^2/A = 14.399645 eV for e^2.
    const double mvv2e = 1.0364269e-4;
    return {"metal", 8.617333262e-5, mvv2e, 1.0 / mvv2e, 14.399645,
            1.6021765e6};
}

Units
Units::real()
{
    // g/mol * (A/fs)^2 = 1e7 J/mol = 2390.0574 kcal/mol.
    const double mvv2e = 2390.0573615334906;
    return {"real", 1.987204259e-3, mvv2e, 1.0 / mvv2e, 332.06371,
            68568.415};
}

} // namespace mdbench
