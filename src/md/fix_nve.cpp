#include "md/fix_nve.h"

#include "md/simulation.h"

namespace mdbench {

void
FixNVE::initialIntegrate(Simulation &sim)
{
    AtomStore &atoms = sim.atoms;
    const double dt = sim.dt;
    const double half = 0.5 * dt * sim.units.ftm2v;
    for (std::size_t i = 0; i < atoms.nlocal(); ++i) {
        const double dtfm = half / atoms.massOf(i);
        atoms.v[i] += atoms.f[i] * dtfm;
        atoms.x[i] += atoms.v[i] * dt;
    }
}

void
FixNVE::finalIntegrate(Simulation &sim)
{
    AtomStore &atoms = sim.atoms;
    const double half = 0.5 * sim.dt * sim.units.ftm2v;
    for (std::size_t i = 0; i < atoms.nlocal(); ++i) {
        const double dtfm = half / atoms.massOf(i);
        atoms.v[i] += atoms.f[i] * dtfm;
    }
}

void
FixNVESphere::integrateRotation(Simulation &sim)
{
    AtomStore &atoms = sim.atoms;
    const double half = 0.5 * sim.dt * sim.units.ftm2v;
    for (std::size_t i = 0; i < atoms.nlocal(); ++i) {
        const auto &params = atoms.typeParams[atoms.type[i]];
        // Solid-sphere moment of inertia I = (2/5) m r^2.
        const double inertia =
            0.4 * params.mass * params.radius * params.radius;
        atoms.omega[i] += atoms.torque[i] * (half / inertia);
    }
}

void
FixNVESphere::initialIntegrate(Simulation &sim)
{
    FixNVE::initialIntegrate(sim);
    integrateRotation(sim);
}

void
FixNVESphere::finalIntegrate(Simulation &sim)
{
    FixNVE::finalIntegrate(sim);
    integrateRotation(sim);
}

} // namespace mdbench
