/**
 * @file
 * SHAKE/RATTLE holonomic constraints (LAMMPS `fix shake`), used by the
 * Rhodopsin workload to keep solvent molecules rigid.
 *
 * After the unconstrained position update, SHAKE iteratively projects the
 * positions of each cluster back onto the constraint manifold; after the
 * final velocity update, RATTLE removes velocity components along the
 * constrained directions.
 */

#ifndef MDBENCH_MD_FIX_SHAKE_H
#define MDBENCH_MD_FIX_SHAKE_H

#include <vector>

#include "md/fix.h"
#include "md/vec3.h"

namespace mdbench {

/**
 * Constrains the clusters listed in Topology::shakeClusters.
 *
 * This fix must be added *after* the integrator fix so that its
 * initialIntegrate() hook sees the already-drifted positions.
 */
class FixShake : public Fix
{
  public:
    /**
     * @param tolerance Relative tolerance on squared distances.
     * @param maxIterations Iteration cap per cluster per step.
     */
    explicit FixShake(double tolerance = 1e-8, int maxIterations = 100);

    std::string name() const override { return "shake"; }
    void setup(Simulation &sim) override;
    void preIntegrate(Simulation &sim) override;
    void initialIntegrate(Simulation &sim) override;
    void finalIntegrate(Simulation &sim) override;
    long removedDof(const Simulation &sim) const override;

    /** Largest relative constraint violation after the last solve. */
    double maxResidual() const { return maxResidual_; }

  private:
    void solvePositions(Simulation &sim);
    void solveVelocities(Simulation &sim);

    double tolerance_;
    int maxIterations_;
    double maxResidual_ = 0.0;
    /** Positions before the drift, indexed like the atom store. */
    std::vector<Vec3> savedPos_;
};

} // namespace mdbench

#endif // MDBENCH_MD_FIX_SHAKE_H
