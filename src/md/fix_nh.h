/**
 * @file
 * Nose-Hoover style thermostat and isotropic barostat
 * (LAMMPS `fix nvt` / `fix npt`), used by the Rhodopsin workload.
 *
 * The implementation is a single-chain Nose-Hoover thermostat combined
 * with an isotropic Berendsen-like barostat integrated with the same
 * exponential scalings as MTK but without the full chain; this keeps the
 * dynamics stable and relaxing to the setpoints, which is what the
 * characterization workload requires.
 */

#ifndef MDBENCH_MD_FIX_NH_H
#define MDBENCH_MD_FIX_NH_H

#include "md/fix.h"

namespace mdbench {

/** Nose-Hoover NVT thermostat. */
class FixNVT : public Fix
{
  public:
    /**
     * @param target Target temperature.
     * @param tdamp  Thermostat relaxation time.
     */
    FixNVT(double target, double tdamp);

    std::string name() const override { return "nvt"; }
    void initialIntegrate(Simulation &sim) override;
    void finalIntegrate(Simulation &sim) override;

    /** Current thermostat velocity (for tests). */
    double etaDot() const { return etaDot_; }

  protected:
    /** Advance the thermostat a half step and scale velocities. */
    void thermostatHalfStep(Simulation &sim);

    double tTarget_;
    double tdamp_;
    double etaDot_ = 0.0;
};

/** Nose-Hoover thermostat plus isotropic pressure control. */
class FixNPT : public FixNVT
{
  public:
    /**
     * @param tTarget Target temperature.
     * @param tdamp   Thermostat relaxation time.
     * @param pTarget Target pressure.
     * @param pdamp   Barostat relaxation time.
     */
    FixNPT(double tTarget, double tdamp, double pTarget, double pdamp);

    std::string name() const override { return "npt"; }
    void initialIntegrate(Simulation &sim) override;
    void finalIntegrate(Simulation &sim) override;

    /** Current barostat strain rate (for tests). */
    double omegaDot() const { return omegaDot_; }

  private:
    void barostatHalfStep(Simulation &sim);
    void dilate(Simulation &sim);

    double pTarget_;
    double pdamp_;
    double omegaDot_ = 0.0;
};

} // namespace mdbench

#endif // MDBENCH_MD_FIX_NH_H
