/**
 * @file
 * Padded position staging for the SIMD pair kernels (DESIGN.md §12-13).
 *
 * Kernels restage AtomStore positions each compute as 4-element
 * [x, y, z, w] records — one per atom slot including the neighbor
 * packing's pad slot — so the inner loops use `loadXyzw` transpose
 * loads instead of three or four hardware gathers. The w slot carries
 * the kernel's per-atom payload (charge for lj/charmm/coul/long,
 * F'(rho) for EAM's second pass, zero for lj/cut).
 *
 * The element type is the precision policy's `real`: the double tier
 * stages 32-byte double records, the mixed/single tiers stage 16-byte
 * float records so float-lane kernels consume float coordinates
 * without converting per pair — conversion happens exactly once per
 * compute, here.
 */

#ifndef MDBENCH_MD_XPACK_H
#define MDBENCH_MD_XPACK_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "md/vec3.h"

namespace mdbench {

template <typename T>
class XPack
{
    static_assert(sizeof(Vec3) == 3 * sizeof(double));

  public:
    /**
     * Restage [x, y, z, payload] records for @p n atom slots (owned +
     * ghost + pad). @p payload may be null (w = 0). Returns the
     * 64-byte-aligned record base, so every record sits whole inside a
     * cache line (split-line record loads cost ~1.4x).
     */
    const T *
    stage(const Vec3 *x, const double *payload, std::size_t n)
    {
        reserve(n);
        T *out = aligned_;
        const double *xd = reinterpret_cast<const double *>(x);
        for (std::size_t a = 0; a < n; ++a) {
            out[4 * a + 0] = static_cast<T>(xd[3 * a + 0]);
            out[4 * a + 1] = static_cast<T>(xd[3 * a + 1]);
            out[4 * a + 2] = static_cast<T>(xd[3 * a + 2]);
            out[4 * a + 3] = payload ? static_cast<T>(payload[a]) : T(0);
        }
        return out;
    }

    /**
     * Restage records in a caller-chosen order: record slot k holds
     * atom order[k]. The cluster pair kernel stages positions in the
     * neighbor build's bin order so j-cluster loads are contiguous
     * (loadXyzRun) instead of gathered; the payload slot is zero.
     */
    const T *
    stagePermuted(const Vec3 *x, const std::uint32_t *order, std::size_t n)
    {
        reserve(n);
        T *out = aligned_;
        const double *xd = reinterpret_cast<const double *>(x);
        for (std::size_t k = 0; k < n; ++k) {
            const std::size_t a = order[k];
            out[4 * k + 0] = static_cast<T>(xd[3 * a + 0]);
            out[4 * k + 1] = static_cast<T>(xd[3 * a + 1]);
            out[4 * k + 2] = static_cast<T>(xd[3 * a + 2]);
            out[4 * k + 3] = T(0);
        }
        return out;
    }

    /**
     * Rewrite only the w payload slots of an already-staged buffer
     * (EAM refills F'(rho) between its two radial passes). Returns the
     * record base.
     */
    const T *
    setPayload(const double *payload, std::size_t n)
    {
        T *out = aligned_;
        for (std::size_t a = 0; a < n; ++a)
            out[4 * a + 3] = static_cast<T>(payload[a]);
        return out;
    }

    /**
     * Bare aligned storage for @p n records, to be filled by the
     * caller (the neighbor build stages bin-ordered candidate records
     * in parallel slices). Contents are unspecified until written.
     */
    T *
    records(std::size_t n)
    {
        reserve(n);
        return aligned_;
    }

  private:
    void
    reserve(std::size_t n)
    {
        buf_.resize(4 * n + 64 / sizeof(T));
        aligned_ = reinterpret_cast<T *>(
            (reinterpret_cast<std::uintptr_t>(buf_.data()) + 63) &
            ~std::uintptr_t{63});
    }

    std::vector<T> buf_;
    T *aligned_ = nullptr;
};

} // namespace mdbench

#endif // MDBENCH_MD_XPACK_H
