#include "md/atoms.h"

#include "util/error.h"

namespace mdbench {

void
AtomStore::reserve(std::size_t n)
{
    x.reserve(n);
    v.reserve(n);
    f.reserve(n);
    omega.reserve(n);
    torque.reserve(n);
    q.reserve(n);
    type.reserve(n);
    tag.reserve(n);
    molecule.reserve(n);
    ghostOf.reserve(n);
}

std::size_t
AtomStore::addAtom(std::int64_t atom_tag, int atom_type, const Vec3 &pos)
{
    ensure(nghost() == 0, "cannot add owned atoms while ghosts exist");
    ensure(npad_ == 0, "cannot add owned atoms while the pad slot exists");
    x.push_back(pos);
    v.push_back({});
    f.push_back({});
    omega.push_back({});
    torque.push_back({});
    q.push_back(0.0);
    type.push_back(atom_type);
    tag.push_back(atom_tag);
    molecule.push_back(0);
    ghostOf.push_back(-1);
    return nlocal_++;
}

void
AtomStore::clearGhosts()
{
    x.resize(nlocal_);
    v.resize(nlocal_);
    f.resize(nlocal_);
    omega.resize(nlocal_);
    torque.resize(nlocal_);
    q.resize(nlocal_);
    type.resize(nlocal_);
    tag.resize(nlocal_);
    molecule.resize(nlocal_);
    ghostOf.resize(nlocal_);
    npad_ = 0;
}

std::size_t
AtomStore::ensurePadAtom(const Vec3 &pos)
{
    if (npad_ == 1) {
        x[nall()] = pos;
        return nall();
    }
    x.push_back(pos);
    v.push_back({});
    f.push_back({});
    omega.push_back({});
    torque.push_back({});
    q.push_back(0.0);
    type.push_back(1);
    tag.push_back(-1);
    molecule.push_back(0);
    ghostOf.push_back(-1);
    npad_ = 1;
    return nall();
}

std::size_t
AtomStore::addGhost(std::size_t src, const Vec3 &shift)
{
    ensure(src < nall(), "ghost source out of range");
    ensure(npad_ == 0, "cannot add ghosts while the pad slot exists");
    x.push_back(x[src] + shift);
    v.push_back(v[src]);
    f.push_back({});
    omega.push_back(omega[src]);
    torque.push_back({});
    q.push_back(q[src]);
    type.push_back(type[src]);
    tag.push_back(tag[src]);
    molecule.push_back(molecule[src]);
    // Chase ghost-of-ghost chains back to the owner.
    const std::int32_t owner =
        ghostOf[src] >= 0 ? ghostOf[src] : static_cast<std::int32_t>(src);
    ghostOf.push_back(owner);
    return x.size() - 1;
}

std::size_t
AtomStore::addGhostFrom(const AtomStore &src, std::size_t i,
                        const Vec3 &shift)
{
    ensure(i < src.nall(), "ghost source out of range");
    ensure(npad_ == 0, "cannot add ghosts while the pad slot exists");
    x.push_back(src.x[i] + shift);
    v.push_back(src.v[i]);
    f.push_back({});
    omega.push_back(src.omega[i]);
    torque.push_back({});
    q.push_back(src.q[i]);
    type.push_back(src.type[i]);
    tag.push_back(src.tag[i]);
    molecule.push_back(src.molecule[i]);
    ghostOf.push_back(-1);
    return x.size() - 1;
}

void
AtomStore::removeAtom(std::size_t i)
{
    ensure(nghost() == 0, "cannot remove owned atoms while ghosts exist");
    ensure(npad_ == 0, "cannot remove owned atoms while the pad slot exists");
    ensure(i < nlocal_, "removeAtom index out of range");
    const std::size_t last = nlocal_ - 1;
    x[i] = x[last];
    v[i] = v[last];
    f[i] = f[last];
    omega[i] = omega[last];
    torque[i] = torque[last];
    q[i] = q[last];
    type[i] = type[last];
    tag[i] = tag[last];
    molecule[i] = molecule[last];
    ghostOf[i] = ghostOf[last];
    x.pop_back();
    v.pop_back();
    f.pop_back();
    omega.pop_back();
    torque.pop_back();
    q.pop_back();
    type.pop_back();
    tag.pop_back();
    molecule.pop_back();
    ghostOf.pop_back();
    --nlocal_;
}

namespace {

/** arr[k] = arr[oldOf[k]] for all k, via a gather into @p scratch. */
template <typename T>
void
gatherInto(std::vector<T> &arr, const std::vector<std::uint32_t> &oldOf,
           std::vector<T> &scratch)
{
    scratch.resize(arr.size());
    for (std::size_t k = 0; k < oldOf.size(); ++k)
        scratch[k] = arr[oldOf[k]];
    arr.swap(scratch);
}

} // namespace

void
AtomStore::applyPermutation(const std::vector<std::uint32_t> &oldOf)
{
    ensure(nghost() == 0, "cannot reorder owned atoms while ghosts exist");
    // The sentinel pad slot is invisible to permutations by contract:
    // sorts run in the post-exchange window where clearGhosts() already
    // dropped it, so a pad here means a caller reordered atoms while a
    // packed neighbor list still held live sentinel gathers.
    ensure(npad_ == 0, "cannot reorder owned atoms while the pad slot exists");
    ensure(oldOf.size() == nlocal_,
           "permutation size does not match nlocal");
    // Verify bijectivity: each old index must appear exactly once. The
    // check is O(n) like the gathers below, and sorts are rare (every
    // N neighbor rebuilds), so it stays on unconditionally.
    std::vector<bool> seen(nlocal_, false);
    for (const std::uint32_t old : oldOf) {
        ensure(old < nlocal_ && !seen[old],
               "applyPermutation: not a permutation of [0, nlocal)");
        seen[old] = true;
    }

    std::vector<Vec3> vecScratch;
    gatherInto(x, oldOf, vecScratch);
    gatherInto(v, oldOf, vecScratch);
    gatherInto(f, oldOf, vecScratch);
    gatherInto(omega, oldOf, vecScratch);
    gatherInto(torque, oldOf, vecScratch);
    std::vector<double> dblScratch;
    gatherInto(q, oldOf, dblScratch);
    std::vector<int> intScratch;
    gatherInto(type, oldOf, intScratch);
    std::vector<std::int64_t> i64Scratch;
    gatherInto(tag, oldOf, i64Scratch);
    gatherInto(molecule, oldOf, i64Scratch);
    std::vector<std::int32_t> i32Scratch;
    gatherInto(ghostOf, oldOf, i32Scratch);
}

void
AtomStore::zeroForces()
{
    for (auto &fi : f)
        fi = {};
    for (auto &ti : torque)
        ti = {};
}

void
AtomStore::setNumTypes(int n)
{
    require(n >= 1, "need at least one atom type");
    if (typeParams.size() < static_cast<std::size_t>(n) + 1)
        typeParams.resize(static_cast<std::size_t>(n) + 1);
}

} // namespace mdbench
