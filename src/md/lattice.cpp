#include "md/lattice.h"

#include <cmath>

#include "md/simulation.h"
#include "util/error.h"

namespace mdbench {

namespace {

/** The four fcc basis offsets in units of the lattice constant. */
constexpr double kFccBasis[4][3] = {
    {0.0, 0.0, 0.0}, {0.5, 0.5, 0.0}, {0.5, 0.0, 0.5}, {0.0, 0.5, 0.5}};

} // namespace

double
fccLatticeConstant(double rho)
{
    require(rho > 0.0, "density must be positive");
    return std::cbrt(4.0 / rho);
}

std::int64_t
buildFcc(Simulation &sim, int nx, int ny, int nz, double a, int type)
{
    require(nx > 0 && ny > 0 && nz > 0, "cell counts must be positive");
    sim.box = Box({0, 0, 0}, {nx * a, ny * a, nz * a});
    sim.atoms.setNumTypes(type);
    sim.atoms.reserve(static_cast<std::size_t>(4) * nx * ny * nz);

    std::int64_t tag = 1;
    for (int iz = 0; iz < nz; ++iz) {
        for (int iy = 0; iy < ny; ++iy) {
            for (int ix = 0; ix < nx; ++ix) {
                for (const auto &basis : kFccBasis) {
                    const Vec3 pos{(ix + basis[0]) * a, (iy + basis[1]) * a,
                                   (iz + basis[2]) * a};
                    sim.atoms.addAtom(tag++, type, pos);
                }
            }
        }
    }
    return tag - 1;
}

std::int64_t
buildSc(Simulation &sim, int nx, int ny, int nz, double a, int type)
{
    require(nx > 0 && ny > 0 && nz > 0, "cell counts must be positive");
    sim.box = Box({0, 0, 0}, {nx * a, ny * a, nz * a});
    sim.atoms.setNumTypes(type);
    sim.atoms.reserve(static_cast<std::size_t>(nx) * ny * nz);

    std::int64_t tag = 1;
    for (int iz = 0; iz < nz; ++iz)
        for (int iy = 0; iy < ny; ++iy)
            for (int ix = 0; ix < nx; ++ix)
                sim.atoms.addAtom(tag++, type,
                                  {(ix + 0.25) * a, (iy + 0.25) * a,
                                   (iz + 0.25) * a});
    return tag - 1;
}

} // namespace mdbench
