/**
 * @file
 * Post-processing analyses over simulation snapshots: radial
 * distribution function, mean-squared displacement, and temperature
 * profiles — the "Compute system properties of interest" step (VIII)
 * of the paper's Figure 1, exposed as a library for the examples.
 */

#ifndef MDBENCH_MD_ANALYSIS_H
#define MDBENCH_MD_ANALYSIS_H

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "md/vec3.h"

namespace mdbench {

class Simulation;

/** Radial distribution function g(r) histogram. */
struct Rdf
{
    double binWidth = 0.0;
    std::vector<double> g; ///< g(r) per bin, normalized to 1 at infinity

    /** Center of bin @p i. */
    double r(std::size_t i) const { return (i + 0.5) * binWidth; }

    /** r of the highest-g bin (the first-shell peak for solids). */
    double peakPosition() const;
};

/**
 * Compute g(r) over the owned atoms out to @p rMax with @p bins bins.
 * Uses the current neighbor list, so rMax must not exceed the list
 * cutoff (cutoff + skin).
 */
Rdf computeRdf(const Simulation &sim, double rMax, int bins = 100);

/**
 * Tracks mean-squared displacement against a reference snapshot
 * (LAMMPS `compute msd`). Displacements are accumulated from wrapped
 * positions via minimum-image hops, so box wrapping does not corrupt
 * the measurement as long as sample() is called at least once per
 * half-box of motion. Internal state is keyed by atom tag, so the
 * tracker survives spatial reordering (Simulation::maybeSortAtoms).
 */
class MsdTracker
{
  public:
    /** Capture the reference positions (owned atoms of @p sim). */
    explicit MsdTracker(const Simulation &sim);

    /** Accumulate motion since the last sample; returns current MSD. */
    double sample(const Simulation &sim);

    /** MSD at the last sample() call. */
    double value() const { return msd_; }

  private:
    /** Slot of each tag; slots are fixed at capture time. */
    std::unordered_map<std::int64_t, std::size_t> slotOfTag_;
    std::vector<Vec3> lastWrapped_;
    std::vector<Vec3> displacement_;
    double msd_ = 0.0;
};

} // namespace mdbench

#endif // MDBENCH_MD_ANALYSIS_H
