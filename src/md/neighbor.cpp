#include "md/neighbor.h"

#include <algorithm>
#include <cmath>

#include "md/simulation.h"
#include "util/error.h"

namespace mdbench {

double
NeighborList::neighborsPerAtom() const
{
    const std::size_t n = offsets.empty() ? 0 : offsets.size() - 1;
    if (n == 0)
        return 0.0;
    // Half lists store each physical pair once, so each pair contributes
    // a neighbor to both of its atoms.
    const double perPair = full ? 1.0 : 2.0;
    return perPair * static_cast<double>(neighbors.size()) /
           static_cast<double>(n);
}

bool
Neighbor::checkTrigger(const Simulation &sim) const
{
    const AtomStore &atoms = sim.atoms;
    if (lastBuildPos_.size() != atoms.nlocal())
        return true;
    const double trigger = triggerDistance();
    const double triggerSq = trigger * trigger;
    for (std::size_t i = 0; i < atoms.nlocal(); ++i) {
        if ((atoms.x[i] - lastBuildPos_[i]).normSq() > triggerSq)
            return true;
    }
    return false;
}

void
Neighbor::build(Simulation &sim)
{
    const AtomStore &atoms = sim.atoms;
    const Box &box = sim.box;
    const std::size_t nlocal = atoms.nlocal();
    const std::size_t nall = atoms.nall();

    const double cut = cutoff + skin;
    require(cut > 0.0, "neighbor build cutoff must be positive");
    const double cutSq = cut * cut;

    // Bin the extended domain (box plus a ghost shell of one cutoff).
    const Vec3 lo = box.lo() - Vec3{cut, cut, cut};
    const Vec3 hi = box.hi() + Vec3{cut, cut, cut};
    const Vec3 len = hi - lo;
    int nb[3];
    double inv[3];
    const double lens[3] = {len.x, len.y, len.z};
    for (int axis = 0; axis < 3; ++axis) {
        nb[axis] = std::max(1, static_cast<int>(lens[axis] / cut));
        inv[axis] = nb[axis] / lens[axis];
    }
    const std::size_t nbins = static_cast<std::size_t>(nb[0]) * nb[1] * nb[2];

    auto binIndex = [&](const Vec3 &pos) {
        int bx = static_cast<int>((pos.x - lo.x) * inv[0]);
        int by = static_cast<int>((pos.y - lo.y) * inv[1]);
        int bz = static_cast<int>((pos.z - lo.z) * inv[2]);
        bx = std::clamp(bx, 0, nb[0] - 1);
        by = std::clamp(by, 0, nb[1] - 1);
        bz = std::clamp(bz, 0, nb[2] - 1);
        return std::array<int, 3>{bx, by, bz};
    };
    auto flatten = [&](int bx, int by, int bz) {
        return (static_cast<std::size_t>(bz) * nb[1] + by) * nb[0] + bx;
    };

    // Linked-cell lists: head per bin, next per atom.
    std::vector<std::int32_t> head(nbins, -1);
    std::vector<std::int32_t> next(nall, -1);
    for (std::size_t i = 0; i < nall; ++i) {
        const auto b = binIndex(atoms.x[i]);
        const std::size_t flat = flatten(b[0], b[1], b[2]);
        next[i] = head[flat];
        head[flat] = static_cast<std::int32_t>(i);
    }

    const bool checkExclusions = !sim.topology.bonds.empty() ||
                                 !sim.topology.angles.empty();

    list_.full = full;
    list_.buildCutoff = cut;
    list_.offsets.assign(nlocal + 1, 0);
    list_.neighbors.clear();
    list_.neighbors.reserve(list_.neighbors.capacity());

    for (std::size_t i = 0; i < nlocal; ++i) {
        const Vec3 xi = atoms.x[i];
        const auto bi = binIndex(xi);
        for (int dz = -1; dz <= 1; ++dz) {
            const int bz = bi[2] + dz;
            if (bz < 0 || bz >= nb[2])
                continue;
            for (int dy = -1; dy <= 1; ++dy) {
                const int by = bi[1] + dy;
                if (by < 0 || by >= nb[1])
                    continue;
                for (int dx = -1; dx <= 1; ++dx) {
                    const int bx = bi[0] + dx;
                    if (bx < 0 || bx >= nb[0])
                        continue;
                    for (std::int32_t j = head[flatten(bx, by, bz)]; j >= 0;
                         j = next[j]) {
                        const std::size_t ju = static_cast<std::size_t>(j);
                        if (ju == i)
                            continue;
                        if (!full) {
                            // Half-list inclusion rule (Newton on): local
                            // pairs once by index order; pairs with ghosts
                            // once by a coordinate tie-break, so that of the
                            // two mirrored boundary pairs exactly one side
                            // stores it.
                            if (ju < nlocal) {
                                if (ju < i)
                                    continue;
                            } else {
                                const Vec3 &xj = atoms.x[ju];
                                if (xj.z != xi.z) {
                                    if (xj.z < xi.z)
                                        continue;
                                } else if (xj.y != xi.y) {
                                    if (xj.y < xi.y)
                                        continue;
                                } else if (xj.x < xi.x) {
                                    continue;
                                }
                            }
                        }
                        if ((atoms.x[ju] - xi).normSq() >= cutSq)
                            continue;
                        if (checkExclusions &&
                            sim.topology.excluded(atoms.tag[i],
                                                  atoms.tag[ju])) {
                            continue;
                        }
                        list_.neighbors.push_back(
                            static_cast<std::uint32_t>(ju));
                    }
                }
            }
        }
        list_.offsets[i + 1] = static_cast<std::uint32_t>(
            list_.neighbors.size());
    }

    lastBuildPos_.assign(atoms.x.begin(), atoms.x.begin() + nlocal);
    ++buildCount_;
    if (firstBuildStep_ < 0)
        firstBuildStep_ = sim.step;
    lastBuildStep_ = sim.step;
}

double
Neighbor::averageRebuildInterval() const
{
    if (buildCount_ < 2)
        return 0.0;
    return static_cast<double>(lastBuildStep_ - firstBuildStep_) /
           static_cast<double>(buildCount_ - 1);
}

} // namespace mdbench
