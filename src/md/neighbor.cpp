#include "md/neighbor.h"

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <type_traits>

#include "md/simulation.h"
#include "obs/counters.h"
#include "obs/trace.h"
#include "util/error.h"
#include "util/simd.h"
#include "util/thread_pool.h"

namespace mdbench {

#include <cstdlib>

namespace {

/** Grain for the per-atom neighbor loops (no reduction scratch). */
constexpr std::size_t kNeighborGrain = 128;

/** Uniform bin grid over the box plus a ghost shell of one cutoff. */
struct BinGrid
{
    mdbench::Vec3 lo;
    int nb[3];
    double inv[3];
    std::size_t nbins;

    std::array<int, 3>
    cellOf(const mdbench::Vec3 &pos) const
    {
        int bx = static_cast<int>((pos.x - lo.x) * inv[0]);
        int by = static_cast<int>((pos.y - lo.y) * inv[1]);
        int bz = static_cast<int>((pos.z - lo.z) * inv[2]);
        bx = std::clamp(bx, 0, nb[0] - 1);
        by = std::clamp(by, 0, nb[1] - 1);
        bz = std::clamp(bz, 0, nb[2] - 1);
        return {bx, by, bz};
    }

    std::size_t
    flatten(int bx, int by, int bz) const
    {
        return (static_cast<std::size_t>(bz) * nb[1] + by) * nb[0] + bx;
    }
};

BinGrid
makeBinGrid(const mdbench::Box &box, double cut)
{
    BinGrid grid;
    grid.lo = box.lo() - mdbench::Vec3{cut, cut, cut};
    const mdbench::Vec3 hi = box.hi() + mdbench::Vec3{cut, cut, cut};
    const mdbench::Vec3 len = hi - grid.lo;
    const double lens[3] = {len.x, len.y, len.z};
    for (int axis = 0; axis < 3; ++axis) {
        grid.nb[axis] = std::max(1, static_cast<int>(lens[axis] / cut));
        grid.inv[axis] = grid.nb[axis] / lens[axis];
    }
    grid.nbins =
        static_cast<std::size_t>(grid.nb[0]) * grid.nb[1] * grid.nb[2];
    return grid;
}

/**
 * Counting-sort binning: bin counts -> prefix sum -> scatter into a
 * contiguous per-bin atom array. Within a bin atoms end up in ascending
 * index order (the scatter walks atoms in order), and the contiguous
 * layout streams better than chasing head/next chains. Shared by the
 * list build (over owned + ghost atoms) and the spatial sort (over
 * owned atoms only), so both traverse identical bin geometry.
 */
void
countingSortBins(const BinGrid &grid, const mdbench::Vec3 *x, std::size_t n,
                 std::vector<std::uint32_t> &binOf,
                 std::vector<std::uint32_t> &binStart,
                 std::vector<std::uint32_t> &binCursor,
                 std::vector<std::uint32_t> &binAtoms)
{
    binOf.resize(n);
    binStart.assign(grid.nbins + 1, 0);
    for (std::size_t i = 0; i < n; ++i) {
        const auto b = grid.cellOf(x[i]);
        const std::uint32_t flat =
            static_cast<std::uint32_t>(grid.flatten(b[0], b[1], b[2]));
        binOf[i] = flat;
        ++binStart[flat + 1];
    }
    for (std::size_t b = 0; b < grid.nbins; ++b)
        binStart[b + 1] += binStart[b];
    binAtoms.resize(n);
    binCursor.assign(binStart.begin(), binStart.end() - 1);
    for (std::size_t i = 0; i < n; ++i)
        binAtoms[binCursor[binOf[i]]++] = static_cast<std::uint32_t>(i);
}

/**
 * W-wide distance test of one bin chunk: bit l of the result is set
 * when candidate cand[l] lies within cutSq of xi. The r² expression
 * matches the pair kernels' fma association, which on the generic
 * backend is bitwise `Vec3::normSq` (addition is commutative); ISA
 * backends fuse, which can flip inclusion only for pairs within one
 * ulp of the *build* cutoff (cutoff + skin) — physics is unaffected
 * because every kernel re-masks at the true cutoff.
 */
template <int W>
inline int
candidateDistanceMask(const double *xd, const std::uint32_t *cand,
                      const mdbench::Vec3 &xi, double cutSq)
{
    using D = mdbench::Simd<double, W>;
    const mdbench::SimdIndex<W> j = mdbench::SimdIndex<W>::load(cand);
    const mdbench::SimdIndex<W> base = j * 3u;
    const D xj = D::gather(xd, base);
    const D yj = D::gather(xd, base + 1u);
    const D zj = D::gather(xd, base + 2u);
    const D dx = xj - D(xi.x);
    const D dy = yj - D(xi.y);
    const D dz = zj - D(xi.z);
    const D rsq = D::fma(dz, dz, D::fma(dy, dy, dx * dx));
    return (rsq < D(cutSq)).bits();
}

} // namespace

void
countSimdLaneUse(const NeighborList &list, int traversals)
{
    const std::size_t t = static_cast<std::size_t>(traversals);
    counterAdd(Counter::PairSimdLanesActive, t * list.pairCount());
    counterAdd(Counter::PairSimdPaddingWaste, t * list.paddedSlots);
}

double
NeighborList::neighborsPerAtom() const
{
    const std::size_t n = offsets.empty() ? 0 : offsets.size() - 1;
    if (n == 0)
        return 0.0;
    // Half lists store each physical pair once, so each pair contributes
    // a neighbor to both of its atoms.
    const double perPair = full ? 1.0 : 2.0;
    return perPair * static_cast<double>(neighbors.size()) /
           static_cast<double>(n);
}

bool
Neighbor::checkTrigger(const Simulation &sim) const
{
    TraceScope trace("neigh", "trigger_check");
    counterAdd(Counter::NeighTriggerChecks);
    const AtomStore &atoms = sim.atoms;
    if (lastBuildPos_.size() != atoms.nlocal())
        return true;
    const double trigger = triggerDistance();
    const double triggerSq = trigger * trigger;

    ThreadPool &pool = ThreadPool::global();
    if (pool.size() == 1) {
        // Serial fast path keeps the early exit.
        for (std::size_t i = 0; i < atoms.nlocal(); ++i) {
            if ((atoms.x[i] - lastBuildPos_[i]).normSq() > triggerSq)
                return true;
        }
        return false;
    }

    // Parallel max-displacement reduction; the boolean outcome is
    // independent of slicing.
    const SliceRange slices(0, atoms.nlocal(), kNeighborGrain);
    std::array<double, SliceRange::kMaxSlices> maxSq{};
    pool.run(slices, [&](std::size_t begin, std::size_t end, int s) {
        double m = 0.0;
        for (std::size_t i = begin; i < end; ++i)
            m = std::max(m, (atoms.x[i] - lastBuildPos_[i]).normSq());
        maxSq[s] = m;
    });
    for (int s = 0; s < slices.count(); ++s) {
        if (maxSq[s] > triggerSq)
            return true;
    }
    return false;
}

void
Neighbor::build(Simulation &sim)
{
    TraceScope trace("neigh", "build");
    buildImpl(sim);
}

void
Neighbor::buildImpl(Simulation &sim)
{
    const AtomStore &atoms = sim.atoms;
    const Box &box = sim.box;
    const std::size_t nlocal = atoms.nlocal();
    const std::size_t nall = atoms.nall();

    const double cut = cutoff + skin;
    require(cut > 0.0, "neighbor build cutoff must be positive");
    const double cutSq = cut * cut;

    // Bin the extended domain (box plus a ghost shell of one cutoff).
    const BinGrid grid = makeBinGrid(box, cut);
    const int *nb = grid.nb;
    countingSortBins(grid, atoms.x.data(), nall, binOf_, binStart_,
                     binCursor_, binAtoms_);

    const bool checkExclusions = !sim.topology.bonds.empty() ||
                                 !sim.topology.angles.empty();

    list_.full = full;
    list_.buildCutoff = cut;
    list_.offsets.assign(nlocal + 1, 0);

    // Raw pointers into the bin structures: the fill loops below append
    // to a member vector, so indexing the members directly would force
    // the compiler to re-load their data pointers every iteration.
    const std::uint32_t *binStart = binStart_.data();
    const std::uint32_t *binAtoms = binAtoms_.data();
    const Vec3 *x = atoms.x.data();

    // W-wide candidate distance pre-filter: the dominant cost of the
    // bin walk is the per-candidate r² check, so chunks of W
    // candidates are tested at once and only passing lanes take the
    // scalar inclusion checks (in ascending-lane order, preserving the
    // emit order exactly — the index/tie-break/exclusion rules are
    // independent of the distance test). Widths 0/1 keep the original
    // scalar walk below as the bitwise oracle.
    const int filterW = [] {
        const int dw = simdWidthFor(false);
        if (dw >= 8)
            return 8;
        if (dw >= 4)
            return 4;
        return dw == 2 ? 2 : 0;
    }();
    const double *xd = reinterpret_cast<const double *>(x);
    static_assert(sizeof(Vec3) == 3 * sizeof(double));

    // Stencil walk shared by every fill strategy: emit(j) for each
    // neighbor of i, in a traversal order that depends only on the
    // binning (never on threading), so all paths build identical lists.
    auto visitNeighbors = [&](std::size_t i, auto &&emit) {
        const Vec3 xi = x[i];
        const auto bi = grid.cellOf(xi);
        // Non-distance inclusion checks for a candidate that already
        // passed the W-wide distance mask. Mirrors the scalar walk's
        // rules; only the (pure) check order differs.
        auto considerNear = [&](std::size_t ju) {
            if (ju == i)
                return;
            if (!full && ju < nlocal && ju < i)
                return;
            if (!full && ju >= nlocal) {
                const Vec3 xj = x[ju];
                if (xj.z != xi.z) {
                    if (xj.z < xi.z)
                        return;
                } else if (xj.y != xi.y) {
                    if (xj.y < xi.y)
                        return;
                } else if (xj.x < xi.x) {
                    return;
                }
            }
            if (checkExclusions &&
                sim.topology.excluded(atoms.tag[i], atoms.tag[ju]))
                return;
            emit(static_cast<std::uint32_t>(ju));
        };
        for (int dz = -1; dz <= 1; ++dz) {
            const int bz = bi[2] + dz;
            if (bz < 0 || bz >= nb[2])
                continue;
            for (int dy = -1; dy <= 1; ++dy) {
                const int by = bi[1] + dy;
                if (by < 0 || by >= nb[1])
                    continue;
                for (int dx = -1; dx <= 1; ++dx) {
                    const int bx = bi[0] + dx;
                    if (bx < 0 || bx >= nb[0])
                        continue;
                    const std::size_t bin = grid.flatten(bx, by, bz);
                    const std::uint32_t binEnd = binStart[bin + 1];
                    std::uint32_t idx = binStart[bin];
                    auto filtered = [&](auto widthTag) {
                        constexpr int W = decltype(widthTag)::value;
                        for (; idx + W <= binEnd; idx += W) {
                            int mask = candidateDistanceMask<W>(
                                xd, binAtoms + idx, xi, cutSq);
                            for (; mask; mask &= mask - 1) {
                                const int l = std::countr_zero(
                                    static_cast<unsigned>(mask));
                                considerNear(binAtoms[idx + l]);
                            }
                        }
                    };
                    if (filterW == 8)
                        filtered(std::integral_constant<int, 8>{});
                    else if (filterW == 4)
                        filtered(std::integral_constant<int, 4>{});
                    else if (filterW == 2)
                        filtered(std::integral_constant<int, 2>{});
                    for (; idx < binEnd; ++idx) {
                        const std::size_t ju = binAtoms[idx];
                        if (ju == i)
                            continue;
                        // Half-list inclusion rule (Newton on): local
                        // pairs once by index order (rejected before
                        // the position load); pairs with ghosts once by
                        // a coordinate tie-break, so that of the two
                        // mirrored boundary pairs exactly one side
                        // stores it.
                        if (!full && ju < nlocal && ju < i)
                            continue;
                        // One load serves both the ghost tie-break and
                        // the distance check below.
                        const Vec3 xj = x[ju];
                        if (!full && ju >= nlocal) {
                            if (xj.z != xi.z) {
                                if (xj.z < xi.z)
                                    continue;
                            } else if (xj.y != xi.y) {
                                if (xj.y < xi.y)
                                    continue;
                            } else if (xj.x < xi.x) {
                                continue;
                            }
                        }
                        if ((xj - xi).normSq() >= cutSq)
                            continue;
                        if (checkExclusions &&
                            sim.topology.excluded(atoms.tag[i],
                                                  atoms.tag[ju])) {
                            continue;
                        }
                        emit(static_cast<std::uint32_t>(ju));
                    }
                }
            }
        }
    };

    ThreadPool &pool = ThreadPool::global();
    if (pool.size() == 1 || nlocal < 2 * kNeighborGrain) {
        // Serial single-pass fill. Sizing the payload from the previous
        // build (plus slack for density fluctuations) makes the first
        // fill after a rebuild allocation-free in steady state.
        list_.neighbors.clear();
        list_.neighbors.reserve(prevNeighborCount_ +
                                prevNeighborCount_ / 16 + 64);
        for (std::size_t i = 0; i < nlocal; ++i) {
            visitNeighbors(i, [&](std::uint32_t ju) {
                list_.neighbors.push_back(ju);
            });
            list_.offsets[i + 1] =
                static_cast<std::uint32_t>(list_.neighbors.size());
        }
    } else {
        // Two-pass count-then-fill: after the exclusive prefix sum each
        // thread writes the disjoint range [offsets[i], offsets[i+1]),
        // so the fill needs no synchronization.
        pool.parallelFor(0, nlocal, kNeighborGrain,
                         [&](std::size_t begin, std::size_t end, int) {
                             for (std::size_t i = begin; i < end; ++i) {
                                 std::uint32_t count = 0;
                                 visitNeighbors(i, [&](std::uint32_t) {
                                     ++count;
                                 });
                                 list_.offsets[i + 1] = count;
                             }
                         });
        for (std::size_t i = 0; i < nlocal; ++i)
            list_.offsets[i + 1] += list_.offsets[i];
        list_.neighbors.resize(list_.offsets[nlocal]);
        pool.parallelFor(0, nlocal, kNeighborGrain,
                         [&](std::size_t begin, std::size_t end, int) {
                             for (std::size_t i = begin; i < end; ++i) {
                                 std::uint32_t cursor = list_.offsets[i];
                                 visitNeighbors(i, [&](std::uint32_t ju) {
                                     list_.neighbors[cursor++] = ju;
                                 });
                             }
                         });
    }
    prevNeighborCount_ = list_.neighbors.size();
    counterAdd(Counter::NeighBuilds);
    counterAdd(Counter::NeighPairs, list_.neighbors.size());

    packPadded(sim);

    lastBuildPos_.assign(atoms.x.begin(), atoms.x.begin() + nlocal);
    ++buildCount_;
    ++buildsSinceSort_;
    if (firstBuildStep_ < 0)
        firstBuildStep_ = sim.step;
    lastBuildStep_ = sim.step;
}

void
Neighbor::packPadded(Simulation &sim)
{
    const std::size_t nlocal = sim.atoms.nlocal();
    // Float tiers pack at the float-lane width (twice the double-lane
    // width at a given ISA level, the precision × SIMD synergy); the
    // tier is recorded on the list so kernels dispatch on the geometry
    // that was actually built.
    const Precision tier = precisionTier();
    const int width = simdWidthFor(tier != Precision::Double);
    list_.padWidth = width;
    list_.packTier = tier;
    if (width < 1 || nlocal == 0) {
        list_.packedOffsets.clear();
        list_.packedNeighbors.clear();
        list_.paddedSlots = 0;
        list_.sentinel = 0;
        list_.padWidth = 0;
        list_.packTier = Precision::Double;
        return;
    }
    TraceScope trace("neigh", "pack_padded");

    // The pad slot sits far beyond the box on every axis, so even after
    // atoms drift between rebuilds no real position comes within the
    // build cutoff of it: the kernels' r² mask is false for every
    // sentinel lane and padding contributes exact zeros.
    const Vec3 span = sim.box.lengths();
    const Vec3 padPos = sim.box.hi() + span + Vec3{1.0e6, 1.0e6, 1.0e6};
    list_.sentinel =
        static_cast<std::uint32_t>(sim.atoms.ensurePadAtom(padPos));

    const std::uint32_t w = static_cast<std::uint32_t>(width);
    list_.packedOffsets.resize(nlocal + 1);
    list_.packedOffsets[0] = 0;
    for (std::size_t i = 0; i < nlocal; ++i) {
        const std::uint32_t count = list_.offsets[i + 1] - list_.offsets[i];
        const std::uint32_t padded = (count + w - 1) / w * w;
        list_.packedOffsets[i + 1] = list_.packedOffsets[i] + padded;
    }
    list_.packedNeighbors.resize(list_.packedOffsets[nlocal]);
    const std::uint32_t *src = list_.neighbors.data();
    std::uint32_t *dst = list_.packedNeighbors.data();
    const std::uint32_t sentinel = list_.sentinel;
    ThreadPool::global().parallelFor(
        0, nlocal, kNeighborGrain,
        [&](std::size_t begin, std::size_t end, int) {
            for (std::size_t i = begin; i < end; ++i) {
                const std::uint32_t rowBegin = list_.offsets[i];
                const std::uint32_t count = list_.offsets[i + 1] - rowBegin;
                std::uint32_t cursor = list_.packedOffsets[i];
                const std::uint32_t rowEnd = list_.packedOffsets[i + 1];
                for (std::uint32_t k = 0; k < count; ++k)
                    dst[cursor++] = src[rowBegin + k];
                while (cursor < rowEnd)
                    dst[cursor++] = sentinel;
            }
        });
    list_.paddedSlots =
        list_.packedNeighbors.size() - list_.neighbors.size();
    counterAdd(Counter::NeighPaddedSlots, list_.paddedSlots);
}

int
Neighbor::defaultSortEvery()
{
    if (const char *env = std::getenv("MDBENCH_SORT_EVERY")) {
        const int every = std::atoi(env);
        if (every > 0)
            return every;
    }
    return 0;
}

void
Neighbor::computeSortOrder(const Simulation &sim,
                           std::vector<std::uint32_t> &order)
{
    const AtomStore &atoms = sim.atoms;
    const double cut = cutoff + skin;
    require(cut > 0.0, "sort order needs a positive neighbor cutoff");
    // Same grid as the next build, restricted to the owned atoms: the
    // neighbor ids of spatially close atoms become close indices, so
    // the pair-kernel x[j] gathers walk the position array nearly
    // monotonically (LAMMPS `atom_modify sort` / MD-Bench layout).
    const BinGrid grid = makeBinGrid(sim.box, cut);
    countingSortBins(grid, atoms.x.data(), atoms.nlocal(), binOf_,
                     binStart_, binCursor_, binAtoms_);
    order.assign(binAtoms_.begin(), binAtoms_.end());
}

void
Neighbor::noteSortApplied()
{
    buildsSinceSort_ = 0;
    ++sortCount_;
    // Saved build positions are indexed by the pre-sort order; drop
    // them so any trigger check before the next build forces a rebuild
    // instead of comparing unrelated atoms.
    lastBuildPos_.clear();
}

double
Neighbor::averageRebuildInterval() const
{
    if (buildCount_ < 2)
        return 0.0;
    return static_cast<double>(lastBuildStep_ - firstBuildStep_) /
           static_cast<double>(buildCount_ - 1);
}

} // namespace mdbench
