#include "md/neighbor.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <type_traits>

#include "md/simulation.h"
#include "obs/counters.h"
#include "obs/trace.h"
#include "util/error.h"
#include "util/simd.h"
#include "util/thread_pool.h"

namespace mdbench {

namespace {

/** Grain for the per-atom neighbor loops (no reduction scratch). */
constexpr std::size_t kNeighborGrain = 128;

/** Grain for the per-i-cluster pair-list loops (M atoms per row). */
constexpr std::size_t kClusterGrain = 32;

/** i-cluster height of the cluster-pair layout (DESIGN.md §14). */
constexpr int kClusterM = 4;

/**
 * Trailing slots kept readable past the logical end of the bin-ordered
 * arrays so the W-wide filter can always load a whole chunk; the lanes
 * beyond a bin's end are masked off, never consumed.
 */
constexpr std::size_t kSimdPad = 16;

/** Uniform bin grid over the box plus a ghost shell of one cutoff. */
struct BinGrid
{
    mdbench::Vec3 lo;
    int nb[3];
    double inv[3];
    std::size_t nbins;

    std::array<int, 3>
    cellOf(const mdbench::Vec3 &pos) const
    {
        int bx = static_cast<int>((pos.x - lo.x) * inv[0]);
        int by = static_cast<int>((pos.y - lo.y) * inv[1]);
        int bz = static_cast<int>((pos.z - lo.z) * inv[2]);
        bx = std::clamp(bx, 0, nb[0] - 1);
        by = std::clamp(by, 0, nb[1] - 1);
        bz = std::clamp(bz, 0, nb[2] - 1);
        return {bx, by, bz};
    }

    std::size_t
    flatten(int bx, int by, int bz) const
    {
        return (static_cast<std::size_t>(bz) * nb[1] + by) * nb[0] + bx;
    }
};

BinGrid
makeBinGrid(const mdbench::Box &box, double cut)
{
    BinGrid grid;
    grid.lo = box.lo() - mdbench::Vec3{cut, cut, cut};
    const mdbench::Vec3 hi = box.hi() + mdbench::Vec3{cut, cut, cut};
    const mdbench::Vec3 len = hi - grid.lo;
    const double lens[3] = {len.x, len.y, len.z};
    for (int axis = 0; axis < 3; ++axis) {
        grid.nb[axis] = std::max(1, static_cast<int>(lens[axis] / cut));
        grid.inv[axis] = grid.nb[axis] / lens[axis];
    }
    grid.nbins =
        static_cast<std::size_t>(grid.nb[0]) * grid.nb[1] * grid.nb[2];
    return grid;
}

/**
 * Counting-sort binning: bin counts -> prefix sum -> scatter into a
 * contiguous per-bin atom array. Within a bin atoms end up in ascending
 * index order (the scatter walks atoms in order), and the contiguous
 * layout streams better than chasing head/next chains. Shared by the
 * list build (over owned + ghost atoms) and the spatial sort (over
 * owned atoms only), so both traverse identical bin geometry.
 */
void
countingSortBins(const BinGrid &grid, const mdbench::Vec3 *x, std::size_t n,
                 std::vector<std::uint32_t> &binOf,
                 std::vector<std::uint32_t> &binStart,
                 std::vector<std::uint32_t> &binCursor,
                 std::vector<std::uint32_t> &binAtoms)
{
    binOf.resize(n);
    binStart.assign(grid.nbins + 1, 0);
    for (std::size_t i = 0; i < n; ++i) {
        const auto b = grid.cellOf(x[i]);
        const std::uint32_t flat =
            static_cast<std::uint32_t>(grid.flatten(b[0], b[1], b[2]));
        binOf[i] = flat;
        ++binStart[flat + 1];
    }
    for (std::size_t b = 0; b < grid.nbins; ++b)
        binStart[b + 1] += binStart[b];
    binAtoms.resize(n);
    binCursor.assign(binStart.begin(), binStart.end() - 1);
    for (std::size_t i = 0; i < n; ++i)
        binAtoms[binCursor[binOf[i]]++] = static_cast<std::uint32_t>(i);
}

/**
 * Threaded counting sort over the shared pool, bitwise identical to
 * the serial version: per-slice histograms, a serial (bin, slice)
 * prefix that assigns each slice a scatter cursor per bin, then a
 * parallel scatter. Slices are a fixed partition of the atom range and
 * walk atoms ascending, so within a bin the final order is ascending
 * atom index exactly as the serial scatter produces.
 */
void
countingSortBinsParallel(const BinGrid &grid, const mdbench::Vec3 *x,
                         std::size_t n, ThreadPool &pool,
                         std::vector<std::uint32_t> &binOf,
                         std::vector<std::uint32_t> &binStart,
                         std::vector<std::uint32_t> &binSliceCount,
                         std::vector<std::uint32_t> &binAtoms)
{
    const SliceRange slices(0, n, kNeighborGrain);
    const std::size_t nslices = static_cast<std::size_t>(slices.count());
    const std::size_t nbins = grid.nbins;
    binOf.resize(n);
    binSliceCount.assign(nslices * nbins, 0);
    pool.run(slices, [&](std::size_t begin, std::size_t end, int s) {
        std::uint32_t *counts = binSliceCount.data() + s * nbins;
        for (std::size_t i = begin; i < end; ++i) {
            const auto b = grid.cellOf(x[i]);
            const std::uint32_t flat =
                static_cast<std::uint32_t>(grid.flatten(b[0], b[1], b[2]));
            binOf[i] = flat;
            ++counts[flat];
        }
    });
    // Serial prefix over (bin, slice): leaves each slice's per-bin
    // scatter cursor in its histogram slot and the bin offsets in
    // binStart, matching the serial prefix bin for bin.
    binStart.resize(nbins + 1);
    binStart[0] = 0;
    std::uint32_t running = 0;
    for (std::size_t b = 0; b < nbins; ++b) {
        for (std::size_t s = 0; s < nslices; ++s) {
            const std::uint32_t count = binSliceCount[s * nbins + b];
            binSliceCount[s * nbins + b] = running;
            running += count;
        }
        binStart[b + 1] = running;
    }
    binAtoms.resize(n);
    pool.run(slices, [&](std::size_t begin, std::size_t end, int s) {
        std::uint32_t *cursor = binSliceCount.data() + s * nbins;
        for (std::size_t i = begin; i < end; ++i)
            binAtoms[cursor[binOf[i]]++] = static_cast<std::uint32_t>(i);
    });
}

/**
 * W-wide distance test of one bin chunk: bit l of the result is set
 * when candidate cand[l] lies within cutSq of xi. The r² expression
 * matches the pair kernels' fma association, which on the generic
 * backend is bitwise `Vec3::normSq` (addition is commutative); ISA
 * backends fuse, which can flip inclusion only for pairs within one
 * ulp of the *build* cutoff (cutoff + skin) — physics is unaffected
 * because every kernel re-masks at the true cutoff.
 */
template <int W>
inline int
candidateDistanceMask(const double *xd, const std::uint32_t *cand,
                      const mdbench::Vec3 &xi, double cutSq)
{
    using D = mdbench::Simd<double, W>;
    const mdbench::SimdIndex<W> j = mdbench::SimdIndex<W>::load(cand);
    const mdbench::SimdIndex<W> base = j * 3u;
    const D xj = D::gather(xd, base);
    const D yj = D::gather(xd, base + 1u);
    const D zj = D::gather(xd, base + 2u);
    const D dx = xj - D(xi.x);
    const D dy = yj - D(xi.y);
    const D dz = zj - D(xi.z);
    const D rsq = D::fma(dz, dz, D::fma(dy, dy, dx * dx));
    return (rsq < D(cutSq)).bits();
}

/** Everything the vectorized row fill reads, hoisted once per build. */
struct BuildCtx
{
    const BinGrid &grid;
    const std::uint32_t *binStart; ///< CSR bin offsets
    const std::uint32_t *binAtoms; ///< bin-ordered atom ids (+ pad)
    const double *sx;              ///< bin-ordered x coordinates (+ pad)
    const double *sy;              ///< bin-ordered y coordinates (+ pad)
    const double *sz;              ///< bin-ordered z coordinates (+ pad)
    const mdbench::Vec3 *x;        ///< positions in atom order
    std::size_t nlocal;
    double cutSq;
};

/**
 * The stencil of atom @p i as contiguous binAtoms runs. flatten() is
 * x-fastest, so the dx = -1..1 triple of every (dy, dz) row is one
 * dense range of bin ids and therefore one dense range of bin-ordered
 * slots: at most 9 runs instead of 27 bins. Walking a run ascending
 * visits exactly the bins the scalar oracle visits, in its order.
 */
struct StencilRuns
{
    std::array<std::uint32_t, 9> lo; ///< first binAtoms slot of each run
    std::array<std::uint32_t, 9> hi; ///< one past the last slot
    int count = 0;
    std::uint32_t total = 0; ///< candidate slots across all runs
};

inline StencilRuns
stencilRuns(const BuildCtx &c, const mdbench::Vec3 &xi)
{
    const auto bi = c.grid.cellOf(xi);
    const int *nb = c.grid.nb;
    const int x0 = std::max(bi[0] - 1, 0);
    const int x1 = std::min(bi[0] + 1, nb[0] - 1);
    StencilRuns runs;
    for (int dz = -1; dz <= 1; ++dz) {
        const int bz = bi[2] + dz;
        if (bz < 0 || bz >= nb[2])
            continue;
        for (int dy = -1; dy <= 1; ++dy) {
            const int by = bi[1] + dy;
            if (by < 0 || by >= nb[1])
                continue;
            const std::size_t bin = c.grid.flatten(x0, by, bz);
            const std::uint32_t beg = c.binStart[bin];
            const std::uint32_t end =
                c.binStart[bin + static_cast<std::size_t>(x1 - x0) + 1];
            if (beg == end)
                continue;
            runs.lo[static_cast<std::size_t>(runs.count)] = beg;
            runs.hi[static_cast<std::size_t>(runs.count)] = end;
            ++runs.count;
            runs.total += end - beg;
        }
    }
    return runs;
}

/**
 * Fully vectorized CSR row fill for atom @p i (the exclusion-free
 * path): every stencil candidate is tested in a W-wide chunk of the
 * bin-ordered staging — contiguous transpose loads, no gathers — and
 * the whole inclusion predicate (distance, half-list index order,
 * ghost coordinate tie-break) is evaluated as lane masks. Accepted
 * lanes append through compressStore in ascending lane order, which is
 * exactly the scalar walk's emit order, so the produced rows are
 * identical to the scalar oracle's (modulo the documented 1-ulp ISA
 * fma contraction at the build cutoff).
 *
 * Chunks start at each run's first slot and lanes are independent, so
 * the result does not depend on W's chunk phase; lanes past the run
 * end read the next bin's staged records (or the pad at the array
 * end) and are masked off by the lane-index compare before they can
 * contribute.
 *
 * With Fill unset only the accepted count is computed (the threaded
 * two-pass build's first pass). The caller precomputes @p runs — once
 * per row per pass — and charges runs.total to the candidate counter
 * from the pass that runs once.
 */
template <int W, bool Full, bool Fill>
inline std::uint32_t
fillRowSimd(const BuildCtx &c, std::size_t i, const StencilRuns &runs,
            std::uint32_t *dst)
{
    using D = mdbench::Simd<double, W>;
    using M = mdbench::SimdMask<double, W>;
    using I = mdbench::SimdIndex<W>;

    const mdbench::Vec3 xi = c.x[i];
    const D xiV(xi.x), yiV(xi.y), ziV(xi.z);
    const D cutSqV(c.cutSq);
    const std::uint32_t i32 = static_cast<std::uint32_t>(i);
    const std::uint32_t nlocal32 = static_cast<std::uint32_t>(c.nlocal);
    std::uint32_t n = 0;
    const auto chunk = [&](std::uint32_t at, int laneMask) {
        const I ids = I::load(c.binAtoms + at);
        const D xj = D::loadu(c.sx + at);
        const D yj = D::loadu(c.sy + at);
        const D zj = D::loadu(c.sz + at);
        const D ddx = xj - xiV;
        const D ddy = yj - yiV;
        const D ddz = zj - ziV;
        const D rsq = D::fma(ddz, ddz, D::fma(ddy, ddy, ddx * ddx));
        const M dist = rsq < cutSqV;
        M inc;
        if constexpr (Full) {
            // Full list: every in-range candidate except i itself.
            inc = M::fromIndexEQ(ids, i32).andnot(dist);
        } else {
            // Half list: local pairs once by index order, ghost pairs
            // once by the z/y/x coordinate tie-break (mirrors the
            // scalar walk lane for lane, including the ±0.0-safe
            // equal compares).
            const M isLocal = M::fromIndexLT(ids, nlocal32);
            const M idGT = M::fromIndexGT(ids, i32);
            const M tb = (zj > ziV) |
                         ((zj == ziV) &
                          ((yj > yiV) | ((yj == yiV) & (xj >= xiV))));
            inc = dist & ((isLocal & idGT) | isLocal.andnot(tb));
        }
        const int bits = inc.bits() & laneMask;
        if constexpr (Fill) {
            n += static_cast<std::uint32_t>(
                compressStore(dst + n, ids, bits));
        } else {
            n += static_cast<std::uint32_t>(
                std::popcount(static_cast<unsigned>(bits)));
        }
    };
    constexpr int kFullMask = (1 << W) - 1;
    for (int run = 0; run < runs.count; ++run) {
        const std::uint32_t runEnd = runs.hi[static_cast<std::size_t>(run)];
        std::uint32_t idx = runs.lo[static_cast<std::size_t>(run)];
        // Whole chunks need no lane-validity mask; the single tail
        // chunk keeps only its first runEnd - idx lanes (the rest read
        // the next bin's staged records, or the pad at the array end).
        for (; idx + W <= runEnd; idx += W)
            chunk(idx, kFullMask);
        if (idx < runEnd)
            chunk(idx, (1 << (runEnd - idx)) - 1);
    }
    return n;
}

/**
 * Vectorized CSR build over all owned atoms: serial single-pass append
 * (cursor fill with geometric headroom) or threaded two-pass
 * count/prefix/fill where each row lands in its exact [offsets[i],
 * offsets[i+1]) range — compressStore writes exactly its popcount, so
 * thread-owned rows can abut with no tail slop and the payload is
 * bitwise independent of the thread count.
 */
template <int W, bool Full>
void
buildRowsSimd(NeighborList &list, const BuildCtx &ctx, ThreadPool &pool,
              std::size_t prevCount, std::size_t &candidates)
{
    const std::size_t nlocal = ctx.nlocal;
    if (pool.size() == 1 || nlocal < 2 * kNeighborGrain) {
        list.neighbors.resize(prevCount + prevCount / 16 + 64);
        std::size_t cursor = 0;
        for (std::size_t i = 0; i < nlocal; ++i) {
            const StencilRuns runs = stencilRuns(ctx, ctx.x[i]);
            candidates += runs.total;
            if (list.neighbors.size() < cursor + runs.total) {
                list.neighbors.resize(std::max(2 * list.neighbors.size(),
                                               cursor + runs.total));
            }
            cursor += fillRowSimd<W, Full, true>(
                ctx, i, runs, list.neighbors.data() + cursor);
            list.offsets[i + 1] = static_cast<std::uint32_t>(cursor);
        }
        list.neighbors.resize(cursor);
        return;
    }
    pool.parallelFor(0, nlocal, kNeighborGrain,
                     [&](std::size_t begin, std::size_t end, int) {
                         for (std::size_t i = begin; i < end; ++i) {
                             const StencilRuns runs =
                                 stencilRuns(ctx, ctx.x[i]);
                             list.offsets[i + 1] =
                                 fillRowSimd<W, Full, false>(ctx, i, runs,
                                                             nullptr);
                         }
                     });
    for (std::size_t i = 0; i < nlocal; ++i)
        list.offsets[i + 1] += list.offsets[i];
    list.neighbors.resize(list.offsets[nlocal]);
    std::array<std::size_t, SliceRange::kMaxSlices> sliceCand{};
    std::uint32_t *nbrs = list.neighbors.data();
    const std::uint32_t *offs = list.offsets.data();
    pool.parallelFor(0, nlocal, kNeighborGrain,
                     [&](std::size_t begin, std::size_t end, int s) {
                         std::size_t cand = 0;
                         for (std::size_t i = begin; i < end; ++i) {
                             const StencilRuns runs =
                                 stencilRuns(ctx, ctx.x[i]);
                             cand += runs.total;
                             fillRowSimd<W, Full, true>(ctx, i, runs,
                                                        nbrs + offs[i]);
                         }
                         sliceCand[static_cast<std::size_t>(s)] += cand;
                     });
    for (std::size_t s = 0; s < sliceCand.size(); ++s)
        candidates += sliceCand[s];
}

/** Width × flavor dispatch for the vectorized build. */
void
dispatchBuildRows(int filterW, bool full, NeighborList &list,
                  const BuildCtx &ctx, ThreadPool &pool,
                  std::size_t prevCount, std::size_t &candidates)
{
    auto run = [&](auto widthTag, auto fullTag) {
        buildRowsSimd<decltype(widthTag)::value, decltype(fullTag)::value>(
            list, ctx, pool, prevCount, candidates);
    };
    auto width = [&](auto fullTag) {
        if (filterW == 8)
            run(std::integral_constant<int, 8>{}, fullTag);
        else if (filterW == 4)
            run(std::integral_constant<int, 4>{}, fullTag);
        else
            run(std::integral_constant<int, 2>{}, fullTag);
    };
    if (full)
        width(std::true_type{});
    else
        width(std::false_type{});
}

/**
 * Scalar stencil-walk build: the bitwise oracle (width knob 0/1) and
 * the only path for systems with exclusions (the exclusion probe is a
 * hash lookup, not mask algebra). Kept out of line and marked noinline
 * for the same reason Neighbor::buildImpl is: the vectorized staging
 * that now shares buildImpl would push gcc's function-size estimate
 * past its large-function limits and the hot candidate loop here would
 * stop being unrolled (~2x on the serial 500k-atom build). The W-wide
 * distance pre-filter is compiled in only when a width is active
 * (@p Prefilter) so the width-0 oracle keeps the seed's exact loop
 * shape — the dead dispatch alone costs ~15% at 500k atoms.
 */
template <bool Prefilter>
[[gnu::noinline]] void
buildRowsScalarImpl(Simulation &sim, NeighborList &list,
                    const BinGrid &grid, const std::uint32_t *binStart,
                    const std::uint32_t *binAtoms, std::size_t nlocal,
                    double cutSq, bool checkExclusions, int filterW,
                    ThreadPool &pool, std::size_t prevCount,
                    std::size_t &candidates)
{
    const AtomStore &atoms = sim.atoms;
    const Vec3 *x = atoms.x.data();
    static_assert(sizeof(Vec3) == 3 * sizeof(double));
    [[maybe_unused]] const double *xd =
        reinterpret_cast<const double *>(x);
    const bool full = list.full;
    const int *nb = grid.nb;

    // Stencil walk shared by every fill strategy: emit(j) for each
    // neighbor of i, in a traversal order that depends only on the
    // binning (never on threading), so all paths build identical lists.
    // The W-wide distance pre-filter tests chunks of W candidates at
    // once and only passing lanes take the scalar inclusion checks (in
    // ascending-lane order, preserving the emit order exactly — the
    // index/tie-break/exclusion rules are independent of the distance
    // test). @p cand, when non-null, accumulates the candidate total
    // for the build counters (passed only by the pass that runs once).
    auto visitNeighbors = [&](std::size_t i, auto &&emit,
                              std::size_t *cand) {
        const Vec3 xi = x[i];
        const auto bi = grid.cellOf(xi);
        // Non-distance inclusion checks for a candidate that already
        // passed the W-wide distance mask. Mirrors the scalar walk's
        // rules; only the (pure) check order differs.
        [[maybe_unused]] auto considerNear = [&](std::size_t ju) {
            if (ju == i)
                return;
            if (!full && ju < nlocal && ju < i)
                return;
            if (!full && ju >= nlocal) {
                const Vec3 xj = x[ju];
                if (xj.z != xi.z) {
                    if (xj.z < xi.z)
                        return;
                } else if (xj.y != xi.y) {
                    if (xj.y < xi.y)
                        return;
                } else if (xj.x < xi.x) {
                    return;
                }
            }
            if (checkExclusions &&
                sim.topology.excluded(atoms.tag[i], atoms.tag[ju]))
                return;
            emit(static_cast<std::uint32_t>(ju));
        };
        for (int dz = -1; dz <= 1; ++dz) {
            const int bz = bi[2] + dz;
            if (bz < 0 || bz >= nb[2])
                continue;
            for (int dy = -1; dy <= 1; ++dy) {
                const int by = bi[1] + dy;
                if (by < 0 || by >= nb[1])
                    continue;
                for (int dx = -1; dx <= 1; ++dx) {
                    const int bx = bi[0] + dx;
                    if (bx < 0 || bx >= nb[0])
                        continue;
                    const std::size_t bin = grid.flatten(bx, by, bz);
                    const std::uint32_t binEnd = binStart[bin + 1];
                    std::uint32_t idx = binStart[bin];
                    if (cand)
                        *cand += binEnd - idx;
                    if constexpr (Prefilter) {
                        auto filtered = [&](auto widthTag) {
                            constexpr int W = decltype(widthTag)::value;
                            for (; idx + W <= binEnd; idx += W) {
                                int mask = candidateDistanceMask<W>(
                                    xd, binAtoms + idx, xi, cutSq);
                                for (; mask; mask &= mask - 1) {
                                    const int l = std::countr_zero(
                                        static_cast<unsigned>(mask));
                                    considerNear(binAtoms[idx + l]);
                                }
                            }
                        };
                        if (filterW == 8)
                            filtered(std::integral_constant<int, 8>{});
                        else if (filterW == 4)
                            filtered(std::integral_constant<int, 4>{});
                        else if (filterW == 2)
                            filtered(std::integral_constant<int, 2>{});
                    }
                    for (; idx < binEnd; ++idx) {
                        const std::size_t ju = binAtoms[idx];
                        if (ju == i)
                            continue;
                        // Half-list inclusion rule (Newton on): local
                        // pairs once by index order (rejected before
                        // the position load); pairs with ghosts once by
                        // a coordinate tie-break, so that of the two
                        // mirrored boundary pairs exactly one side
                        // stores it.
                        if (!full && ju < nlocal && ju < i)
                            continue;
                        // One load serves both the ghost tie-break and
                        // the distance check below.
                        const Vec3 xj = x[ju];
                        if (!full && ju >= nlocal) {
                            if (xj.z != xi.z) {
                                if (xj.z < xi.z)
                                    continue;
                            } else if (xj.y != xi.y) {
                                if (xj.y < xi.y)
                                    continue;
                            } else if (xj.x < xi.x) {
                                continue;
                            }
                        }
                        if ((xj - xi).normSq() >= cutSq)
                            continue;
                        if (checkExclusions &&
                            sim.topology.excluded(atoms.tag[i],
                                                  atoms.tag[ju])) {
                            continue;
                        }
                        emit(static_cast<std::uint32_t>(ju));
                    }
                }
            }
        }
    };

    if (pool.size() == 1 || nlocal < 2 * kNeighborGrain) {
        // Serial single-pass fill. Sizing the payload from the previous
        // build (plus slack for density fluctuations) makes the first
        // fill after a rebuild allocation-free in steady state.
        list.neighbors.clear();
        list.neighbors.reserve(prevCount + prevCount / 16 + 64);
        for (std::size_t i = 0; i < nlocal; ++i) {
            visitNeighbors(i, [&](std::uint32_t ju) {
                list.neighbors.push_back(ju);
            }, &candidates);
            list.offsets[i + 1] =
                static_cast<std::uint32_t>(list.neighbors.size());
        }
        return;
    }
    // Two-pass count-then-fill: after the exclusive prefix sum each
    // thread writes the disjoint range [offsets[i], offsets[i+1]),
    // so the fill needs no synchronization.
    pool.parallelFor(0, nlocal, kNeighborGrain,
                     [&](std::size_t begin, std::size_t end, int) {
                         for (std::size_t i = begin; i < end; ++i) {
                             std::uint32_t count = 0;
                             visitNeighbors(i, [&](std::uint32_t) {
                                 ++count;
                             }, nullptr);
                             list.offsets[i + 1] = count;
                         }
                     });
    for (std::size_t i = 0; i < nlocal; ++i)
        list.offsets[i + 1] += list.offsets[i];
    list.neighbors.resize(list.offsets[nlocal]);
    std::array<std::size_t, SliceRange::kMaxSlices> sliceCand{};
    pool.parallelFor(0, nlocal, kNeighborGrain,
                     [&](std::size_t begin, std::size_t end, int s) {
                         std::size_t cand = 0;
                         for (std::size_t i = begin; i < end; ++i) {
                             std::uint32_t cursor = list.offsets[i];
                             visitNeighbors(i, [&](std::uint32_t ju) {
                                 list.neighbors[cursor++] = ju;
                             }, &cand);
                         }
                         sliceCand[static_cast<std::size_t>(s)] +=
                             cand;
                     });
    for (std::size_t s = 0; s < sliceCand.size(); ++s)
        candidates += sliceCand[s];
}

/** Prefilter on/off dispatch for the scalar walk. */
void
buildRowsScalar(Simulation &sim, NeighborList &list, const BinGrid &grid,
                const std::uint32_t *binStart,
                const std::uint32_t *binAtoms, std::size_t nlocal,
                double cutSq, bool checkExclusions, int filterW,
                ThreadPool &pool, std::size_t prevCount,
                std::size_t &candidates)
{
    if (filterW >= 2) {
        buildRowsScalarImpl<true>(sim, list, grid, binStart, binAtoms,
                                  nlocal, cutSq, checkExclusions, filterW,
                                  pool, prevCount, candidates);
    } else {
        buildRowsScalarImpl<false>(sim, list, grid, binStart, binAtoms,
                                   nlocal, cutSq, checkExclusions, filterW,
                                   pool, prevCount, candidates);
    }
}

/** Squared distance between two axis-aligned boxes (0 if overlapping). */
inline double
bboxDistSq(const double *a, const double *b)
{
    double total = 0.0;
    for (int axis = 0; axis < 3; ++axis) {
        const double d = std::max(
            {0.0, a[axis] - b[3 + axis], b[axis] - a[3 + axis]});
        total += d * d;
    }
    return total;
}

} // namespace

void
countSimdLaneUse(const NeighborList &list, int traversals)
{
    const std::size_t t = static_cast<std::size_t>(traversals);
    counterAdd(Counter::PairSimdLanesActive, t * list.pairCount());
    counterAdd(Counter::PairSimdPaddingWaste, t * list.paddedSlots);
}

void
countClusterLaneUse(const NeighborList &list, int traversals)
{
    const std::size_t t = static_cast<std::size_t>(traversals);
    const std::size_t lanePairs =
        list.clusterPairCount() *
        static_cast<std::size_t>(list.clusterM) *
        static_cast<std::size_t>(list.clusterN);
    const std::size_t active =
        (list.full ? 1 : 2) * list.pairCount();
    counterAdd(Counter::PairSimdLanesActive, t * active);
    counterAdd(Counter::PairSimdPaddingWaste,
               t * (lanePairs > active ? lanePairs - active : 0));
}

double
NeighborList::neighborsPerAtom() const
{
    const std::size_t n = offsets.empty() ? 0 : offsets.size() - 1;
    if (n == 0)
        return 0.0;
    // Half lists store each physical pair once, so each pair contributes
    // a neighbor to both of its atoms.
    const double perPair = full ? 1.0 : 2.0;
    return perPair * static_cast<double>(neighbors.size()) /
           static_cast<double>(n);
}

bool
Neighbor::checkTrigger(const Simulation &sim) const
{
    TraceScope trace("neigh", "trigger_check");
    counterAdd(Counter::NeighTriggerChecks);
    const AtomStore &atoms = sim.atoms;
    if (lastBuildPos_.size() != atoms.nlocal())
        return true;
    const double trigger = triggerDistance();
    const double triggerSq = trigger * trigger;

    ThreadPool &pool = ThreadPool::global();
    if (pool.size() == 1) {
        // Serial fast path keeps the early exit.
        for (std::size_t i = 0; i < atoms.nlocal(); ++i) {
            if ((atoms.x[i] - lastBuildPos_[i]).normSq() > triggerSq)
                return true;
        }
        return false;
    }

    // Parallel max-displacement reduction; the boolean outcome is
    // independent of slicing.
    const SliceRange slices(0, atoms.nlocal(), kNeighborGrain);
    std::array<double, SliceRange::kMaxSlices> maxSq{};
    pool.run(slices, [&](std::size_t begin, std::size_t end, int s) {
        double m = 0.0;
        for (std::size_t i = begin; i < end; ++i)
            m = std::max(m, (atoms.x[i] - lastBuildPos_[i]).normSq());
        maxSq[s] = m;
    });
    for (int s = 0; s < slices.count(); ++s) {
        if (maxSq[s] > triggerSq)
            return true;
    }
    return false;
}

void
Neighbor::build(Simulation &sim)
{
    TraceScope trace("neigh", "build");
    buildImpl(sim);
}

void
Neighbor::buildImpl(Simulation &sim)
{
    const AtomStore &atoms = sim.atoms;
    const Box &box = sim.box;
    const std::size_t nlocal = atoms.nlocal();
    const std::size_t nall = atoms.nall();

    const double cut = cutoff + skin;
    require(cut > 0.0, "neighbor build cutoff must be positive");
    const double cutSq = cut * cut;

    ThreadPool &pool = ThreadPool::global();

    // Bin the extended domain (box plus a ghost shell of one cutoff).
    const BinGrid grid = makeBinGrid(box, cut);
    if (pool.size() > 1 && nall >= 4 * kNeighborGrain) {
        countingSortBinsParallel(grid, atoms.x.data(), nall, pool, binOf_,
                                 binStart_, binSliceCount_, binAtoms_);
    } else {
        countingSortBins(grid, atoms.x.data(), nall, binOf_, binStart_,
                         binCursor_, binAtoms_);
    }
    // Readable (masked-off) slots past the last bin for whole-chunk
    // loads; zero ids point at a real record but never pass the
    // lane-validity mask.
    binAtoms_.resize(nall + kSimdPad, 0);

    const bool checkExclusions = !sim.topology.bonds.empty() ||
                                 !sim.topology.angles.empty();
    hasExclusions_ = checkExclusions;

    list_.full = full;
    list_.buildCutoff = cut;
    list_.offsets.assign(nlocal + 1, 0);

    // Raw pointers into the bin structures: the fill loops below append
    // to a member vector, so indexing the members directly would force
    // the compiler to re-load their data pointers every iteration.
    const std::uint32_t *binStart = binStart_.data();
    const std::uint32_t *binAtoms = binAtoms_.data();
    const Vec3 *x = atoms.x.data();

    // W-wide candidate filter width: the dominant cost of the bin walk
    // is the per-candidate r² check. Widths 0/1 keep the original
    // scalar walk below as the bitwise oracle.
    const int filterW = [] {
        const int dw = simdWidthFor(false);
        if (dw >= 8)
            return 8;
        if (dw >= 4)
            return 4;
        return dw == 2 ? 2 : 0;
    }();
    std::size_t candidates = 0;
    const bool vectorized = filterW >= 2 && !checkExclusions && nlocal > 0;
    if (vectorized) {
        // Fully vectorized build: candidate coordinates are staged once
        // in bin order as three SoA runs, so the per-run chunks are
        // plain contiguous vector loads and accepted lanes compress
        // straight into the CSR rows. The three arrays share one
        // aligned allocation (records() hands out 4 doubles per slot).
        TraceScope filterTrace("neigh", "build_filter");
        const std::size_t stride = nall + kSimdPad;
        double *sx = buildStage_.records(stride);
        double *sy = sx + stride;
        double *sz = sy + stride;
        pool.parallelFor(0, nall, 4 * kNeighborGrain,
                         [&](std::size_t begin, std::size_t end, int) {
                             for (std::size_t k = begin; k < end; ++k) {
                                 const Vec3 &p = x[binAtoms[k]];
                                 sx[k] = p.x;
                                 sy[k] = p.y;
                                 sz[k] = p.z;
                             }
                         });
        for (std::size_t k = nall; k < stride; ++k) {
            sx[k] = 0.0;
            sy[k] = 0.0;
            sz[k] = 0.0;
        }
        const BuildCtx ctx{grid, binStart, binAtoms, sx,
                           sy,   sz,       x,        nlocal, cutSq};
        dispatchBuildRows(filterW, full, list_, ctx, pool,
                          prevNeighborCount_, candidates);
    } else {
        TraceScope filterTrace("neigh", "build_filter");
        buildRowsScalar(sim, list_, grid, binStart, binAtoms, nlocal,
                        cutSq, checkExclusions, filterW, pool,
                        prevNeighborCount_, candidates);
    }
    prevNeighborCount_ = list_.neighbors.size();
    counterAdd(Counter::NeighBuilds);
    counterAdd(Counter::NeighPairs, list_.neighbors.size());
    counterAdd(Counter::NeighBuildCandidates, candidates);
    counterAdd(Counter::NeighBuildAccepted, list_.neighbors.size());

    packLists(sim, /*refresh=*/false);

    lastBuildPos_.assign(atoms.x.begin(), atoms.x.begin() + nlocal);
    ++buildCount_;
    ++buildsSinceSort_;
    if (firstBuildStep_ < 0)
        firstBuildStep_ = sim.step;
    lastBuildStep_ = sim.step;
}

void
Neighbor::packLists(Simulation &sim, bool refresh)
{
    if (splitGhostPairs) {
        // Ranks that split interior/boundary work pack each sublist
        // separately (the cluster layout cannot split its rows, so
        // split ranks always use padded CSR). The main list keeps no
        // packing — the force drivers only ever traverse the sublists.
        list_.packedOffsets.clear();
        list_.packedNeighbors.clear();
        list_.padWidth = 0;
        list_.paddedSlots = 0;
        list_.clusterJAtoms.clear();
        list_.clusterIAtoms.clear();
        list_.clusterOffsets.clear();
        list_.clusterPairs.clear();
        list_.clusterN = 0;
        list_.clusterM = 0;
        buildSplitLists(sim);
        packPadded(sim, interiorList_);
        packPadded(sim, boundaryList_);
        packedWidth_ = simdWidthFor(precisionTier() != Precision::Double);
        packedTier_ = precisionTier();
        packedLayout_ = NeighLayout::Csr;
        (void)refresh;
        return;
    }
    splitBuilt_ = false;
    const Precision tier = precisionTier();
    const NeighLayout layout = neighLayout();
    const int width = simdWidthFor(tier != Precision::Double);
    if (layout == NeighLayout::Cluster && width >= 2 && !hasExclusions_ &&
        sim.atoms.nlocal() > 0) {
        packClusters(sim, refresh);
    } else {
        list_.clusterJAtoms.clear();
        list_.clusterIAtoms.clear();
        list_.clusterOffsets.clear();
        list_.clusterPairs.clear();
        list_.clusterN = 0;
        list_.clusterM = 0;
        packPadded(sim, list_);
    }
    // Record the knob values the packing was built with so
    // ensureFreshPacking can detect a stale packing without rebuilding.
    packedWidth_ = width;
    packedTier_ = tier;
    packedLayout_ = layout;
}

void
Neighbor::buildSplitLists(const Simulation &sim)
{
    const std::uint32_t nlocal =
        static_cast<std::uint32_t>(sim.atoms.nlocal());
    for (NeighborList *sub : {&interiorList_, &boundaryList_}) {
        sub->full = list_.full;
        sub->buildCutoff = list_.buildCutoff;
        sub->offsets.assign(nlocal + 1, 0);
        sub->neighbors.clear();
    }
    interiorList_.neighbors.reserve(list_.neighbors.size());
    for (std::uint32_t i = 0; i < nlocal; ++i) {
        const auto range = list_.range(i);
        for (std::uint32_t k = range.first; k < range.second; ++k) {
            const std::uint32_t j = list_.neighbors[k];
            (j < nlocal ? interiorList_ : boundaryList_)
                .neighbors.push_back(j);
        }
        interiorList_.offsets[i + 1] =
            static_cast<std::uint32_t>(interiorList_.neighbors.size());
        boundaryList_.offsets[i + 1] =
            static_cast<std::uint32_t>(boundaryList_.neighbors.size());
    }
    splitBuilt_ = true;
}

void
Neighbor::ensureFreshPacking(Simulation &sim)
{
    if (buildCount_ == 0 || splitGhostPairs)
        return;
    const Precision tier = precisionTier();
    const int width = simdWidthFor(tier != Precision::Double);
    if (width == packedWidth_ && tier == packedTier_ &&
        neighLayout() == packedLayout_)
        return;
    // A knob changed between builds: re-derive the packing from the
    // plain list. Mid-skin-cycle positions have drifted, so the
    // cluster pruning widens its margins (refresh=true).
    packLists(sim, /*refresh=*/true);
}

void
Neighbor::packPadded(Simulation &sim, NeighborList &list)
{
    const std::size_t nlocal = sim.atoms.nlocal();
    // Float tiers pack at the float-lane width (twice the double-lane
    // width at a given ISA level, the precision × SIMD synergy); the
    // tier is recorded on the list so kernels dispatch on the geometry
    // that was actually built.
    const Precision tier = precisionTier();
    const int width = simdWidthFor(tier != Precision::Double);
    list.padWidth = width;
    list.packTier = tier;
    if (width < 1 || nlocal == 0) {
        list.packedOffsets.clear();
        list.packedNeighbors.clear();
        list.paddedSlots = 0;
        list.sentinel = 0;
        list.padWidth = 0;
        list.packTier = Precision::Double;
        return;
    }
    TraceScope trace("neigh", "pack_padded");

    // The pad slot sits far beyond the box on every axis, so even after
    // atoms drift between rebuilds no real position comes within the
    // build cutoff of it: the kernels' r² mask is false for every
    // sentinel lane and padding contributes exact zeros.
    const Vec3 span = sim.box.lengths();
    const Vec3 padPos = sim.box.hi() + span + Vec3{1.0e6, 1.0e6, 1.0e6};
    list.sentinel =
        static_cast<std::uint32_t>(sim.atoms.ensurePadAtom(padPos));

    const std::uint32_t w = static_cast<std::uint32_t>(width);
    list.packedOffsets.resize(nlocal + 1);
    list.packedOffsets[0] = 0;
    for (std::size_t i = 0; i < nlocal; ++i) {
        const std::uint32_t count = list.offsets[i + 1] - list.offsets[i];
        const std::uint32_t padded = (count + w - 1) / w * w;
        list.packedOffsets[i + 1] = list.packedOffsets[i] + padded;
    }
    list.packedNeighbors.resize(list.packedOffsets[nlocal]);
    const std::uint32_t *src = list.neighbors.data();
    std::uint32_t *dst = list.packedNeighbors.data();
    const std::uint32_t sentinel = list.sentinel;
    ThreadPool::global().parallelFor(
        0, nlocal, kNeighborGrain,
        [&](std::size_t begin, std::size_t end, int) {
            for (std::size_t i = begin; i < end; ++i) {
                const std::uint32_t rowBegin = list.offsets[i];
                const std::uint32_t count = list.offsets[i + 1] - rowBegin;
                std::uint32_t cursor = list.packedOffsets[i];
                const std::uint32_t rowEnd = list.packedOffsets[i + 1];
                for (std::uint32_t k = 0; k < count; ++k)
                    dst[cursor++] = src[rowBegin + k];
                while (cursor < rowEnd)
                    dst[cursor++] = sentinel;
            }
        });
    list.paddedSlots = list.packedNeighbors.size() - list.neighbors.size();
    counterAdd(Counter::NeighPaddedSlots, list.paddedSlots);
}

void
Neighbor::packClusters(Simulation &sim, bool refresh)
{
    TraceScope trace("neigh", "pack_clusters");
    const std::size_t nlocal = sim.atoms.nlocal();
    const std::size_t nall = sim.atoms.nall();
    const Precision tier = precisionTier();
    const int width = simdWidthFor(tier != Precision::Double);

    // The cluster layout replaces the padded packing: padWidth 0 sends
    // styles without a cluster kernel to their scalar loops; the tier
    // stays recorded for the cluster kernel's precision dispatch.
    list_.packTier = tier;
    list_.padWidth = 0;
    list_.packedOffsets.clear();
    list_.packedNeighbors.clear();
    list_.paddedSlots = 0;

    const Vec3 span = sim.box.lengths();
    const Vec3 padPos = sim.box.hi() + span + Vec3{1.0e6, 1.0e6, 1.0e6};
    list_.sentinel =
        static_cast<std::uint32_t>(sim.atoms.ensurePadAtom(padPos));
    const std::uint32_t sentinel = list_.sentinel;

    // j-clusters: runs of `width` consecutive bin-order slots over all
    // atoms (owned + ghost), the last one padded with the sentinel.
    // The slot order IS the build's counting-sort order, so cluster
    // kernels that stage positions in this order load j coordinates
    // contiguously.
    const std::size_t w = static_cast<std::size_t>(width);
    const std::size_t njc = (nall + w - 1) / w;
    list_.clusterN = width;
    list_.clusterM = kClusterM;
    list_.clusterJAtoms.assign(njc * w, sentinel);
    std::copy(binAtoms_.begin(),
              binAtoms_.begin() + static_cast<std::ptrdiff_t>(nall),
              list_.clusterJAtoms.begin());

    // i-clusters: runs of kClusterM owned atoms in the same bin order.
    ownedOrder_.clear();
    ownedOrder_.reserve(nlocal);
    for (std::size_t k = 0; k < nall; ++k) {
        if (binAtoms_[k] < nlocal)
            ownedOrder_.push_back(binAtoms_[k]);
    }
    const std::size_t m = static_cast<std::size_t>(kClusterM);
    const std::size_t nic = (nlocal + m - 1) / m;
    list_.clusterIAtoms.assign(nic * m, sentinel);
    std::copy(ownedOrder_.begin(), ownedOrder_.end(),
              list_.clusterIAtoms.begin());

    ThreadPool &pool = ThreadPool::global();
    const Vec3 *x = sim.atoms.x.data();

    // Per-j-cluster bounding boxes from the current positions (min xyz,
    // max xyz). min/max folds are order-independent, so the boxes are
    // deterministic under any slicing.
    clusterBounds_.resize(6 * njc);
    double *bounds = clusterBounds_.data();
    pool.parallelFor(
        0, njc, kClusterGrain * 4,
        [&](std::size_t begin, std::size_t end, int) {
            for (std::size_t jc = begin; jc < end; ++jc) {
                double lo[3] = {1e300, 1e300, 1e300};
                double hi[3] = {-1e300, -1e300, -1e300};
                for (std::size_t l = 0; l < w; ++l) {
                    const std::uint32_t a =
                        list_.clusterJAtoms[jc * w + l];
                    if (a == sentinel)
                        break; // sentinel pads only trail the last jc
                    const Vec3 &p = x[a];
                    lo[0] = std::min(lo[0], p.x);
                    lo[1] = std::min(lo[1], p.y);
                    lo[2] = std::min(lo[2], p.z);
                    hi[0] = std::max(hi[0], p.x);
                    hi[1] = std::max(hi[1], p.y);
                    hi[2] = std::max(hi[2], p.z);
                }
                for (int axis = 0; axis < 3; ++axis) {
                    bounds[6 * jc + axis] = lo[axis];
                    bounds[6 * jc + 3 + axis] = hi[axis];
                }
            }
        });

    // Candidate j-clusters per i-cluster: every jc overlapping the ±1
    // bin stencil of any member's *build* bin (binOf_ — the bin-order
    // slots are indexed by the build binning, so the stencil covers
    // every plain-list pair even after positions drift), bbox-pruned
    // at the build cutoff. A mid-cycle refresh widens the prune margin
    // by one skin: each atom has moved at most skin/2 since the build,
    // so any listed pair's bbox distance grew by at most skin.
    const double cutBuild = list_.buildCutoff;
    const double margin = refresh ? cutBuild + skin : cutBuild;
    const double marginSq = margin * margin;
    const BinGrid grid = makeBinGrid(sim.box, cutBuild);
    const std::uint32_t *binStart = binStart_.data();
    const std::uint32_t *binOf = binOf_.data();

    const SliceRange slices(0, nic, kClusterGrain);
    const std::size_t nslices = static_cast<std::size_t>(slices.count());
    std::vector<std::vector<std::uint32_t>> slicePairs(nslices);
    list_.clusterOffsets.assign(nic + 1, 0);
    std::uint32_t *icCounts = list_.clusterOffsets.data() + 1;
    pool.run(slices, [&](std::size_t begin, std::size_t end, int s) {
        std::vector<std::uint32_t> &out =
            slicePairs[static_cast<std::size_t>(s)];
        std::vector<std::uint32_t> cands;
        for (std::size_t ic = begin; ic < end; ++ic) {
            // Distinct member bins (members are bin-order neighbors,
            // so usually a single bin).
            std::uint32_t memberBins[kClusterM];
            int nbins = 0;
            double lo[3] = {1e300, 1e300, 1e300};
            double hi[3] = {-1e300, -1e300, -1e300};
            for (std::size_t l = 0; l < m; ++l) {
                const std::uint32_t a = list_.clusterIAtoms[ic * m + l];
                if (a == sentinel)
                    break;
                const Vec3 &p = x[a];
                lo[0] = std::min(lo[0], p.x);
                lo[1] = std::min(lo[1], p.y);
                lo[2] = std::min(lo[2], p.z);
                hi[0] = std::max(hi[0], p.x);
                hi[1] = std::max(hi[1], p.y);
                hi[2] = std::max(hi[2], p.z);
                const std::uint32_t bin = binOf[a];
                bool seen = false;
                for (int q = 0; q < nbins; ++q)
                    seen = seen || memberBins[q] == bin;
                if (!seen)
                    memberBins[nbins++] = bin;
            }
            const double icBox[6] = {lo[0], lo[1], lo[2],
                                     hi[0], hi[1], hi[2]};
            cands.clear();
            for (int q = 0; q < nbins; ++q) {
                const std::uint32_t flat = memberBins[q];
                const int bx0 = static_cast<int>(flat % grid.nb[0]);
                const int by0 = static_cast<int>(
                    (flat / grid.nb[0]) % grid.nb[1]);
                const int bz0 = static_cast<int>(
                    flat / (static_cast<std::size_t>(grid.nb[0]) *
                            grid.nb[1]));
                for (int dz = -1; dz <= 1; ++dz) {
                    const int bz = bz0 + dz;
                    if (bz < 0 || bz >= grid.nb[2])
                        continue;
                    for (int dy = -1; dy <= 1; ++dy) {
                        const int by = by0 + dy;
                        if (by < 0 || by >= grid.nb[1])
                            continue;
                        for (int dx = -1; dx <= 1; ++dx) {
                            const int bx = bx0 + dx;
                            if (bx < 0 || bx >= grid.nb[0])
                                continue;
                            const std::size_t bin =
                                grid.flatten(bx, by, bz);
                            const std::uint32_t first = binStart[bin];
                            const std::uint32_t last =
                                binStart[bin + 1];
                            if (first == last)
                                continue;
                            const std::uint32_t jcFirst =
                                first / static_cast<std::uint32_t>(w);
                            const std::uint32_t jcLast =
                                (last - 1) /
                                static_cast<std::uint32_t>(w);
                            for (std::uint32_t jc = jcFirst;
                                 jc <= jcLast; ++jc)
                                cands.push_back(jc);
                        }
                    }
                }
            }
            std::sort(cands.begin(), cands.end());
            cands.erase(std::unique(cands.begin(), cands.end()),
                        cands.end());
            std::uint32_t kept = 0;
            for (const std::uint32_t jc : cands) {
                if (bboxDistSq(icBox, bounds + 6 * jc) < marginSq) {
                    out.push_back(jc);
                    ++kept;
                }
            }
            icCounts[ic] = kept;
        }
    });
    for (std::size_t ic = 0; ic < nic; ++ic)
        list_.clusterOffsets[ic + 1] += list_.clusterOffsets[ic];
    list_.clusterPairs.resize(list_.clusterOffsets[nic]);
    pool.run(slices, [&](std::size_t begin, std::size_t, int s) {
        const std::vector<std::uint32_t> &src =
            slicePairs[static_cast<std::size_t>(s)];
        std::copy(src.begin(), src.end(),
                  list_.clusterPairs.begin() +
                      list_.clusterOffsets[begin]);
    });
}

int
Neighbor::defaultSortEvery()
{
    if (const char *env = std::getenv("MDBENCH_SORT_EVERY")) {
        const int every = std::atoi(env);
        if (every > 0)
            return every;
    }
    return 0;
}

void
Neighbor::computeSortOrder(const Simulation &sim,
                           std::vector<std::uint32_t> &order)
{
    const AtomStore &atoms = sim.atoms;
    const double cut = cutoff + skin;
    require(cut > 0.0, "sort order needs a positive neighbor cutoff");
    // Same grid as the next build, restricted to the owned atoms: the
    // neighbor ids of spatially close atoms become close indices, so
    // the pair-kernel x[j] gathers walk the position array nearly
    // monotonically (LAMMPS `atom_modify sort` / MD-Bench layout).
    const BinGrid grid = makeBinGrid(sim.box, cut);
    countingSortBins(grid, atoms.x.data(), atoms.nlocal(), binOf_,
                     binStart_, binCursor_, binAtoms_);
    order.assign(binAtoms_.begin(), binAtoms_.end());
}

void
Neighbor::noteSortApplied()
{
    buildsSinceSort_ = 0;
    ++sortCount_;
    // Saved build positions are indexed by the pre-sort order; drop
    // them so any trigger check before the next build forces a rebuild
    // instead of comparing unrelated atoms.
    lastBuildPos_.clear();
}

double
Neighbor::averageRebuildInterval() const
{
    if (buildCount_ < 2)
        return 0.0;
    return static_cast<double>(lastBuildStep_ - firstBuildStep_) /
           static_cast<double>(buildCount_ - 1);
}

} // namespace mdbench
