/**
 * @file
 * Velocity-Verlet integrators: plain NVE and the spherical-particle
 * variant used by the granular Chute workload.
 */

#ifndef MDBENCH_MD_FIX_NVE_H
#define MDBENCH_MD_FIX_NVE_H

#include "md/fix.h"

namespace mdbench {

/**
 * Plain constant-NVE velocity-Verlet time integration (LAMMPS `fix nve`),
 * the integrator of every benchmark except Rhodopsin.
 */
class FixNVE : public Fix
{
  public:
    std::string name() const override { return "nve"; }
    void initialIntegrate(Simulation &sim) override;
    void finalIntegrate(Simulation &sim) override;
};

/**
 * NVE integration for finite-size spheres: additionally integrates
 * angular velocity from torque (LAMMPS `fix nve/sphere`).
 */
class FixNVESphere : public FixNVE
{
  public:
    std::string name() const override { return "nve/sphere"; }
    void initialIntegrate(Simulation &sim) override;
    void finalIntegrate(Simulation &sim) override;

  private:
    void integrateRotation(Simulation &sim);
};

} // namespace mdbench

#endif // MDBENCH_MD_FIX_NVE_H
