#include "md/topology.h"

#include "md/atoms.h"

namespace mdbench {

void
Topology::buildTagMap(const AtomStore &atoms)
{
    tagMap_.clear();
    tagMap_.reserve(atoms.nall());
    // Insert ghosts first so that owned atoms overwrite them: lookups then
    // prefer the owned copy, which is the one integrated.
    for (std::size_t i = atoms.nlocal(); i < atoms.nall(); ++i)
        tagMap_[atoms.tag[i]] = static_cast<std::int64_t>(i);
    for (std::size_t i = 0; i < atoms.nlocal(); ++i)
        tagMap_[atoms.tag[i]] = static_cast<std::int64_t>(i);
}

std::int64_t
Topology::indexOf(std::int64_t tag) const
{
    const auto it = tagMap_.find(tag);
    return it == tagMap_.end() ? -1 : it->second;
}

std::uint64_t
Topology::pairKey(std::int64_t tagA, std::int64_t tagB)
{
    const std::uint64_t lo = static_cast<std::uint64_t>(
        tagA < tagB ? tagA : tagB);
    const std::uint64_t hi = static_cast<std::uint64_t>(
        tagA < tagB ? tagB : tagA);
    return (hi << 32) | lo;
}

void
Topology::buildExclusions()
{
    exclusions_.clear();
    exclusions_.reserve(bonds.size() + angles.size());
    for (const Bond &bond : bonds)
        exclusions_.insert(pairKey(bond.tagA, bond.tagB));
    for (const Angle &angle : angles) {
        exclusions_.insert(pairKey(angle.tagA, angle.tagB));
        exclusions_.insert(pairKey(angle.tagB, angle.tagC));
        exclusions_.insert(pairKey(angle.tagA, angle.tagC));
    }
}

void
Topology::addExclusion(std::int64_t tagA, std::int64_t tagB)
{
    exclusions_.insert(pairKey(tagA, tagB));
}

bool
Topology::excluded(std::int64_t tagA, std::int64_t tagB) const
{
    if (exclusions_.empty())
        return false;
    return exclusions_.contains(pairKey(tagA, tagB));
}

} // namespace mdbench
