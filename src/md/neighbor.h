/**
 * @file
 * Binned neighbor-list construction with a skin distance.
 *
 * Implements the cutoff + skin scheme described in Section 2 of the paper:
 * lists hold every pair within (cutoff + skin) and are rebuilt only when
 * some atom has moved more than half the skin since the last build.
 */

#ifndef MDBENCH_MD_NEIGHBOR_H
#define MDBENCH_MD_NEIGHBOR_H

#include <cstdint>
#include <vector>

#include "md/vec3.h"
#include "md/xpack.h"
#include "util/neigh_layout.h"
#include "util/precision.h"

namespace mdbench {

class Simulation;

/**
 * CSR neighbor list over the owned atoms.
 *
 * Half lists contain each physical pair once (forces applied to both
 * sides via Newton's third law); full lists contain each pair twice,
 * once per side (used by gran/hooke/history, which the paper notes does
 * not exploit Newton's third law).
 */
struct NeighborList
{
    std::vector<std::uint32_t> offsets;   ///< size nlocal + 1
    std::vector<std::uint32_t> neighbors; ///< CSR payload (owned or ghost ids)
    bool full = false;                    ///< full vs half list
    double buildCutoff = 0.0;             ///< cutoff + skin used at build

    // SIMD padded packing (DESIGN.md §12): a second CSR view of the
    // same pairs whose rows are padded to a multiple of padWidth with
    // copies of `sentinel` — the index of the AtomStore pad slot, an
    // inert atom placed far outside every cutoff so the kernels'
    // distance masks zero the padding lanes. Built only when the SIMD
    // layer is active (padWidth >= 1); the plain list above always
    // remains valid and is the scalar oracle.
    std::vector<std::uint32_t> packedOffsets;   ///< size nlocal + 1
    std::vector<std::uint32_t> packedNeighbors; ///< rows padded to padWidth
    int padWidth = 0;              ///< packing vector width (0 = disabled)
    std::uint32_t sentinel = 0;    ///< pad-slot index filling padded slots
    std::size_t paddedSlots = 0;   ///< sentinel entries across all rows

    /**
     * Precision tier the packing was built for (util/precision.h).
     * Float tiers pack at the float-lane width (twice the double-lane
     * width at a given ISA level); kernels dispatch on this recorded
     * tier rather than the live global so a knob change between build
     * and compute cannot mismatch the padded geometry.
     */
    Precision packTier = Precision::Double;

    // Cluster-pair layout (DESIGN.md §14), built instead of the padded
    // packing when MDBENCH_NEIGH_LAYOUT=cluster. j-clusters are runs of
    // clusterN consecutive bin-ordered atom slots (the build's counting
    // sort order, padded with `sentinel`); i-clusters are runs of
    // clusterM owned atoms in the same order. One stored (i-cluster,
    // j-cluster) pair serves clusterM × clusterN lane pairs; traversal
    // is full-style (forces land on the i side only, energies ×1/2).
    std::vector<std::uint32_t> clusterJAtoms;  ///< njc × clusterN slots
    std::vector<std::uint32_t> clusterIAtoms;  ///< nic × clusterM slots
    std::vector<std::uint32_t> clusterOffsets; ///< size nic + 1
    std::vector<std::uint32_t> clusterPairs;   ///< j-cluster ids (CSR)
    int clusterN = 0; ///< j-cluster width (0 = cluster layout off)
    int clusterM = 0; ///< i-cluster height

    /** True when the cluster layout was built at j width @p w. */
    bool clusterFor(int w) const { return clusterN == w && clusterN >= 2; }

    /** Stored cluster pairs. */
    std::size_t clusterPairCount() const { return clusterPairs.size(); }

    /** Neighbors of atom @p i as a begin/end index pair. */
    std::pair<std::uint32_t, std::uint32_t>
    range(std::size_t i) const
    {
        return {offsets[i], offsets[i + 1]};
    }

    /** Padded neighbors of @p i (length a multiple of padWidth). */
    std::pair<std::uint32_t, std::uint32_t>
    packedRange(std::size_t i) const
    {
        return {packedOffsets[i], packedOffsets[i + 1]};
    }

    /** True when the padded packing was built at width @p w. */
    bool packedFor(int w) const { return padWidth == w && padWidth >= 1; }

    /** Total stored pairs (excludes padding). */
    std::size_t pairCount() const { return neighbors.size(); }

    /** Average neighbors per owned atom. */
    double neighborsPerAtom() const;
};

/**
 * Charge the SIMD lane-utilization counters for @p traversals padded
 * traversals of @p list (pair.simd_lanes_active += pairs,
 * pair.simd_padding_waste += padded sentinel slots, each ×
 * traversals). Shared by every vectorized kernel so the accounting is
 * uniform: charged per kernel *invocation* — once per list traversal,
 * twice for EAM's two radial passes — never per list build, which
 * keeps manifest lane-utilization ratios comparable across sortEvery
 * and rebuild-interval settings.
 */
void countSimdLaneUse(const NeighborList &list, int traversals = 1);

/**
 * Cluster-layout analogue of countSimdLaneUse: active lanes are the
 * stored pairs as the full-style traversal visits them (twice for half
 * lists, once per side for full lists); waste is every other lane pair
 * of the stored cluster pairs (cutoff-rejected, self, and sentinel
 * slots).
 */
void countClusterLaneUse(const NeighborList &list, int traversals = 1);

/**
 * Neighbor-list manager: binning, rebuild policy, and build statistics.
 */
class Neighbor
{
  public:
    /** Pair-style interaction cutoff (excludes skin). */
    double cutoff = 0.0;

    /** Extra margin stored in the list (paper Table 2 "Neighbor skin"). */
    double skin = 0.3;

    /** Build a full list (each pair twice) instead of a half list. */
    bool full = false;

    /**
     * Partition every build into interior/boundary sublists (DESIGN.md
     * §17): a pair is *boundary* when its j side is a ghost — it reads
     * halo data — and *interior* otherwise. Decomposed ranks set this
     * so the force drivers can compute interior pairs while the halo
     * exchange is in flight and finish the boundary pairs after it
     * lands. Each sublist gets its own padded SIMD packing (the cluster
     * layout, which cannot split rows, falls back to padded CSR); the
     * two-pass arithmetic stays a fixed regrouping of the one-pass
     * per-row sums at any schedule because the sublists preserve the
     * build's per-row neighbor order.
     */
    bool splitGhostPairs = false;

    /** True when the current build produced the sublists. */
    bool splitActive() const { return splitBuilt_; }

    /** Pairs whose j side is owned (computable before the halo). */
    const NeighborList &interiorList() const { return interiorList_; }

    /** Pairs whose j side is a ghost (need fresh halo positions). */
    const NeighborList &boundaryList() const { return boundaryList_; }

    /** Rebuild at most every this many steps (0 = purely distance based). */
    int every = 1;

    /**
     * Spatially reorder the owned atoms every this many neighbor
     * rebuilds (0 = never). Initialized from the MDBENCH_SORT_EVERY
     * environment variable; see Simulation::setSortEvery for the
     * programmatic knob and DESIGN.md §10 for the policy.
     */
    int sortEvery = defaultSortEvery();

    /** MDBENCH_SORT_EVERY, or 0 (disabled) when unset/invalid. */
    static int defaultSortEvery();

    /**
     * True when the sort policy asks for a reorder before the next
     * build. The very first build is always due: the initial atom order
     * is whatever the builder (or a restart file) produced, so an
     * enabled policy establishes spatial order at setup and then
     * re-sorts every sortEvery rebuilds.
     */
    bool
    sortDue() const
    {
        return sortEvery > 0 &&
               (buildCount_ == 0 || buildsSinceSort_ >= sortEvery);
    }

    /**
     * Counting-sort bin ordering of the owned atoms: order[k] is the
     * old index of the atom that belongs at index k when atoms are
     * grouped by ascending spatial bin (ties by ascending old index).
     * Reuses the build's binning arrays; the traversal depends only on
     * positions, never on threading.
     */
    void computeSortOrder(const Simulation &sim,
                          std::vector<std::uint32_t> &order);

    /**
     * Record that the owned atoms were reordered: resets the sort
     * interval and invalidates lastBuildPos_ (its indices no longer
     * match), so the next trigger check forces a rebuild.
     */
    void noteSortApplied();

    /** Number of spatial sorts applied since construction. */
    long sortCount() const { return sortCount_; }

    /** Distance the fastest atom may travel before a rebuild triggers. */
    double triggerDistance() const { return 0.5 * skin; }

    /** True when any owned atom moved more than triggerDistance(). */
    bool checkTrigger(const Simulation &sim) const;

    /** Build the list from the current owned + ghost atoms. */
    void build(Simulation &sim);

    /** The current list. */
    const NeighborList &list() const { return list_; }

    /** Number of builds since construction. */
    long buildCount() const { return buildCount_; }

    /** Steps at which builds happened (statistics for the harness). */
    double averageRebuildInterval() const;

    /**
     * Re-derive the packing (padded CSR or cluster pairs) from the
     * existing plain list when the SIMD width, precision tier, or
     * layout knob changed since the last build — called by the force
     * loop before every pair compute, so a knob change between builds
     * can never leave a kernel traversing stale-width geometry.
     */
    void ensureFreshPacking(Simulation &sim);

  private:
    /**
     * The build proper. Kept out of line behind the traced build()
     * wrapper: extra calls in the same function push gcc's size
     * estimate past its large-function limit and it stops unrolling
     * the hot fill loop (~10% on the serial build).
     */
    [[gnu::noinline]] void buildImpl(Simulation &sim);

    /**
     * Build the padded packing of @p list at the current simdWidth() (a
     * no-op that clears the packed arrays when the SIMD layer is off)
     * and install the AtomStore pad slot the sentinel ids gather from.
     */
    void packPadded(Simulation &sim, NeighborList &list);

    /**
     * Build the cluster-pair layout from the build's binning (or, with
     * @p refresh, mid-skin-cycle from drifted positions — the bbox
     * prune and candidate stencil then widen by one skin / one bin so
     * every plain-list pair stays covered). Falls back to packPadded
     * when the SIMD layer is off or the system has exclusions.
     */
    void packClusters(Simulation &sim, bool refresh);

    /** Layout dispatch for packPadded/packClusters + bookkeeping. */
    void packLists(Simulation &sim, bool refresh);

    /** Partition list_ into interiorList_/boundaryList_ by j side. */
    void buildSplitLists(const Simulation &sim);

    NeighborList list_;
    NeighborList interiorList_; ///< owned-j pairs (splitGhostPairs)
    NeighborList boundaryList_; ///< ghost-j pairs (splitGhostPairs)
    bool splitBuilt_ = false;
    std::vector<Vec3> lastBuildPos_;

    // Counting-sort binning state, persistent across builds so the
    // arrays are allocation-free in steady state.
    std::vector<std::uint32_t> binOf_;     ///< flat bin of each atom
    std::vector<std::uint32_t> binStart_;  ///< CSR bin offsets (nbins + 1)
    std::vector<std::uint32_t> binCursor_; ///< scatter cursors (scratch)
    std::vector<std::uint32_t> binAtoms_;  ///< atoms grouped by bin

    /** Per-(slice, bin) histograms for the parallel counting sort. */
    std::vector<std::uint32_t> binSliceCount_;

    /** Bin-ordered [x, y, z, 0] records staged for the SIMD filter. */
    XPack<double> buildStage_;

    /** Owned atoms in bin order (cluster i-side grouping). */
    std::vector<std::uint32_t> ownedOrder_;

    /** Per-j-cluster bounding boxes (xyz min, xyz max — scratch). */
    std::vector<double> clusterBounds_;

    /** Knob values the current packing was built with. */
    int packedWidth_ = 0;
    Precision packedTier_ = Precision::Double;
    NeighLayout packedLayout_ = NeighLayout::Csr;

    /** True when the last build had bond/angle exclusions to honor. */
    bool hasExclusions_ = false;

    /** Payload size of the previous build (sizes the serial reserve). */
    std::size_t prevNeighborCount_ = 0;

    long buildsSinceSort_ = 0;
    long sortCount_ = 0;
    long buildCount_ = 0;
    long lastBuildStep_ = 0;
    long firstBuildStep_ = -1;

    friend class Simulation;
};

} // namespace mdbench

#endif // MDBENCH_MD_NEIGHBOR_H
