#include "md/comm.h"

#include "md/simulation.h"
#include "obs/counters.h"
#include "obs/trace.h"
#include "util/error.h"

namespace mdbench {

void
SerialComm::exchange(Simulation &sim)
{
    TraceScope trace("comm", "exchange");
    counterAdd(Counter::CommExchanges);
    AtomStore &atoms = sim.atoms;
    atoms.clearGhosts();
    ghosts_.clear();
    for (std::size_t i = 0; i < atoms.nlocal(); ++i)
        atoms.x[i] = sim.box.wrap(atoms.x[i]);
}

void
SerialComm::borders(Simulation &sim)
{
    TraceScope trace("comm", "borders");
    AtomStore &atoms = sim.atoms;
    const Box &box = sim.box;
    const double cut = sim.commCutoff();
    ghostCutoff_ = cut;
    const Vec3 len = box.lengths();
    require((!box.periodic(0) || len.x > 2.0 * cut) &&
                (!box.periodic(1) || len.y > 2.0 * cut) &&
                (!box.periodic(2) || len.z > 2.0 * cut),
            "box too small for the communication cutoff (needs > 2x)");

    atoms.clearGhosts();
    ghosts_.clear();

    const std::size_t nlocal = atoms.nlocal();
    for (std::size_t i = 0; i < nlocal; ++i) {
        const Vec3 &pos = atoms.x[i];
        // Determine which periodic images of atom i fall within the ghost
        // shell of the primary box: image code -1 shifts by +L (the atom
        // near the low face appears beyond the high face) and vice versa.
        std::int8_t codes[3][3];
        int counts[3];
        const double loDist[3] = {pos.x - box.lo().x, pos.y - box.lo().y,
                                  pos.z - box.lo().z};
        const double hiDist[3] = {box.hi().x - pos.x, box.hi().y - pos.y,
                                  box.hi().z - pos.z};
        for (int axis = 0; axis < 3; ++axis) {
            counts[axis] = 0;
            codes[axis][counts[axis]++] = 0;
            if (box.periodic(axis)) {
                if (loDist[axis] < cut)
                    codes[axis][counts[axis]++] = 1;  // shift +L
                if (hiDist[axis] < cut)
                    codes[axis][counts[axis]++] = -1; // shift -L
            }
        }
        for (int a = 0; a < counts[0]; ++a) {
            for (int b = 0; b < counts[1]; ++b) {
                for (int c = 0; c < counts[2]; ++c) {
                    if (!codes[0][a] && !codes[1][b] && !codes[2][c])
                        continue;
                    const Vec3 shift{codes[0][a] * len.x,
                                     codes[1][b] * len.y,
                                     codes[2][c] * len.z};
                    atoms.addGhost(i, shift);
                    ghosts_.push_back({static_cast<std::uint32_t>(i),
                                       {codes[0][a], codes[1][b],
                                        codes[2][c]}});
                }
            }
        }
    }
    counterAdd(Counter::CommGhostAtoms, ghosts_.size());
}

void
SerialComm::forwardPositions(Simulation &sim)
{
    TraceScope trace("comm", "forward_positions");
    AtomStore &atoms = sim.atoms;
    const Vec3 len = sim.box.lengths();
    const std::size_t nlocal = atoms.nlocal();
    ensure(atoms.nghost() == ghosts_.size(), "ghost bookkeeping out of sync");
    for (std::size_t g = 0; g < ghosts_.size(); ++g) {
        const GhostRecord &rec = ghosts_[g];
        const Vec3 shift{rec.image[0] * len.x, rec.image[1] * len.y,
                         rec.image[2] * len.z};
        atoms.x[nlocal + g] = atoms.x[rec.owner] + shift;
        atoms.v[nlocal + g] = atoms.v[rec.owner];
    }
}

void
SerialComm::reverseForces(Simulation &sim)
{
    TraceScope trace("comm", "reverse_forces");
    AtomStore &atoms = sim.atoms;
    const std::size_t nlocal = atoms.nlocal();
    for (std::size_t g = 0; g < ghosts_.size(); ++g) {
        atoms.f[ghosts_[g].owner] += atoms.f[nlocal + g];
        atoms.torque[ghosts_[g].owner] += atoms.torque[nlocal + g];
        atoms.f[nlocal + g] = {};
        atoms.torque[nlocal + g] = {};
    }
}

void
SerialComm::forwardScalar(Simulation &sim, std::vector<double> &values)
{
    const std::size_t nlocal = sim.atoms.nlocal();
    ensure(values.size() >= nlocal + ghosts_.size(),
           "scalar array smaller than atom count");
    for (std::size_t g = 0; g < ghosts_.size(); ++g)
        values[nlocal + g] = values[ghosts_[g].owner];
}

void
SerialComm::reverseScalar(Simulation &sim, std::vector<double> &values)
{
    const std::size_t nlocal = sim.atoms.nlocal();
    ensure(values.size() >= nlocal + ghosts_.size(),
           "scalar array smaller than atom count");
    for (std::size_t g = 0; g < ghosts_.size(); ++g) {
        values[ghosts_[g].owner] += values[nlocal + g];
        values[nlocal + g] = 0.0;
    }
}

} // namespace mdbench
