#include "md/fix_gravity.h"

#include <cmath>

#include "md/simulation.h"
#include "util/error.h"

namespace mdbench {

FixGravity::FixGravity(double magnitude, const Vec3 &direction)
{
    const double norm = direction.norm();
    require(norm > 0.0, "gravity direction must be nonzero");
    g_ = direction * (magnitude / norm);
}

FixGravity
FixGravity::chute(double magnitude, double degrees)
{
    // LAMMPS `fix gravity chute` tilts gravity toward +x by the chute
    // angle measured from the vertical.
    const double rad = degrees * M_PI / 180.0;
    return FixGravity(magnitude, {std::sin(rad), 0.0, -std::cos(rad)});
}

void
FixGravity::postForce(Simulation &sim)
{
    AtomStore &atoms = sim.atoms;
    const double invFtm2v = 1.0 / sim.units.ftm2v;
    for (std::size_t i = 0; i < atoms.nlocal(); ++i)
        atoms.f[i] += g_ * (atoms.massOf(i) * invFtm2v);
}

} // namespace mdbench
