#include "md/fix_shake.h"

#include <cmath>

#include "md/simulation.h"
#include "util/error.h"

namespace mdbench {

FixShake::FixShake(double tolerance, int maxIterations)
    : tolerance_(tolerance), maxIterations_(maxIterations)
{
    require(tolerance > 0.0, "shake tolerance must be positive");
}

void
FixShake::setup(Simulation &sim)
{
    // Enforce the constraints on the initial configuration as well, so a
    // slightly off-manifold builder output does not inject energy.
    savedPos_ = sim.atoms.x;
    solvePositions(sim);
    solveVelocities(sim);
}

void
FixShake::preIntegrate(Simulation &sim)
{
    savedPos_ = sim.atoms.x;
}

void
FixShake::initialIntegrate(Simulation &sim)
{
    solvePositions(sim);
}

void
FixShake::finalIntegrate(Simulation &sim)
{
    solveVelocities(sim);
}

long
FixShake::removedDof(const Simulation &sim) const
{
    long n = 0;
    for (const auto &cluster : sim.topology.shakeClusters)
        n += static_cast<long>(cluster.constraints.size());
    return n;
}

void
FixShake::solvePositions(Simulation &sim)
{
    AtomStore &atoms = sim.atoms;
    const Topology &topo = sim.topology;
    const double invDt = 1.0 / sim.dt;
    maxResidual_ = 0.0;

    for (const auto &cluster : topo.shakeClusters) {
        // Resolve tags once per cluster.
        std::vector<std::size_t> idx(cluster.tags.size());
        bool owned = true;
        for (std::size_t k = 0; k < cluster.tags.size(); ++k) {
            const std::int64_t local = topo.indexOf(cluster.tags[k]);
            ensure(local >= 0, "shake cluster atom not found");
            idx[k] = static_cast<std::size_t>(local);
            owned = owned && idx[k] < atoms.nlocal();
        }
        ensure(owned, "shake clusters must not span rank boundaries");

        for (int iter = 0; iter < maxIterations_; ++iter) {
            bool converged = true;
            for (const auto &con : cluster.constraints) {
                const std::size_t a = idx[con.i];
                const std::size_t b = idx[con.j];
                const double dsq = con.distance * con.distance;
                const Vec3 rab = sim.box.minimumImage(atoms.x[a] -
                                                      atoms.x[b]);
                const double diff = rab.normSq() - dsq;
                if (std::fabs(diff) <= tolerance_ * dsq)
                    continue;
                converged = false;
                const Vec3 rabOld = sim.box.minimumImage(savedPos_[a] -
                                                         savedPos_[b]);
                const double invMa = 1.0 / atoms.massOf(a);
                const double invMb = 1.0 / atoms.massOf(b);
                const double denom =
                    2.0 * (invMa + invMb) * rab.dot(rabOld);
                ensure(std::fabs(denom) > 1e-12,
                       "shake constraint degenerate (perpendicular drift)");
                const double g = diff / denom;
                const Vec3 dA = rabOld * (-g * invMa);
                const Vec3 dB = rabOld * (g * invMb);
                atoms.x[a] += dA;
                atoms.x[b] += dB;
                atoms.v[a] += dA * invDt;
                atoms.v[b] += dB * invDt;
            }
            if (converged)
                break;
        }
        for (const auto &con : cluster.constraints) {
            const Vec3 rab = sim.box.minimumImage(
                atoms.x[idx[con.i]] - atoms.x[idx[con.j]]);
            const double dsq = con.distance * con.distance;
            maxResidual_ = std::max(maxResidual_,
                                    std::fabs(rab.normSq() - dsq) / dsq);
        }
    }
}

void
FixShake::solveVelocities(Simulation &sim)
{
    AtomStore &atoms = sim.atoms;
    const Topology &topo = sim.topology;

    for (const auto &cluster : topo.shakeClusters) {
        std::vector<std::size_t> idx(cluster.tags.size());
        for (std::size_t k = 0; k < cluster.tags.size(); ++k) {
            const std::int64_t local = topo.indexOf(cluster.tags[k]);
            ensure(local >= 0, "shake cluster atom not found");
            idx[k] = static_cast<std::size_t>(local);
        }
        for (int iter = 0; iter < maxIterations_; ++iter) {
            bool converged = true;
            for (const auto &con : cluster.constraints) {
                const std::size_t a = idx[con.i];
                const std::size_t b = idx[con.j];
                const Vec3 rab = sim.box.minimumImage(atoms.x[a] -
                                                      atoms.x[b]);
                const Vec3 vab = atoms.v[a] - atoms.v[b];
                const double invMa = 1.0 / atoms.massOf(a);
                const double invMb = 1.0 / atoms.massOf(b);
                const double k =
                    rab.dot(vab) / (rab.normSq() * (invMa + invMb));
                if (std::fabs(k) <= tolerance_)
                    continue;
                converged = false;
                atoms.v[a] -= rab * (k * invMa);
                atoms.v[b] += rab * (k * invMb);
            }
            if (converged)
                break;
        }
    }
}

} // namespace mdbench
