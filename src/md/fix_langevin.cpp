#include "md/fix_langevin.h"

#include <cmath>

#include "md/simulation.h"
#include "util/error.h"

namespace mdbench {

FixLangevin::FixLangevin(double target, double damp, std::uint64_t seed)
    : target_(target), damp_(damp), rng_(seed)
{
    require(target > 0.0, "langevin target temperature must be positive");
    require(damp > 0.0, "langevin damping time must be positive");
}

void
FixLangevin::postForce(Simulation &sim)
{
    AtomStore &atoms = sim.atoms;
    const Units &units = sim.units;
    const double dt = sim.dt;
    for (std::size_t i = 0; i < atoms.nlocal(); ++i) {
        const double m = atoms.massOf(i);
        // Friction force chosen so that dv/dt = -v / damp.
        const double gamma = m / (units.ftm2v * damp_);
        // Fluctuation: per-step velocity kick with variance
        // 2 kB T dt ftm2v / (m damp), expressed as a force.
        const double sigmaDv = std::sqrt(
            2.0 * units.boltz * target_ * dt * units.ftm2v / (m * damp_));
        const double fr = sigmaDv * m / (units.ftm2v * dt);
        atoms.f[i] += Vec3{-gamma * atoms.v[i].x + fr * rng_.gaussian(),
                           -gamma * atoms.v[i].y + fr * rng_.gaussian(),
                           -gamma * atoms.v[i].z + fr * rng_.gaussian()};
    }
}

} // namespace mdbench
