/**
 * @file
 * Fix base class: operations applied to atoms at fixed points of the
 * timestep (paper Table 1, "Modify" task).
 *
 * The hook order within one timestep is:
 *   preIntegrate -> initialIntegrate -> [forces] -> postForce
 *   -> finalIntegrate -> endOfStep
 */

#ifndef MDBENCH_MD_FIX_H
#define MDBENCH_MD_FIX_H

#include <string>

namespace mdbench {

class Simulation;

/**
 * Base class for all fixes (integrators, thermostats, constraints, walls).
 */
class Fix
{
  public:
    virtual ~Fix() = default;

    /** Short identifier, e.g. "nve" or "shake". */
    virtual std::string name() const = 0;

    /** Called once before the first timestep of a run. */
    virtual void setup(Simulation &) {}

    /** Called before any integration of the step (state capture). */
    virtual void preIntegrate(Simulation &) {}

    /** First Verlet half-kick + drift. */
    virtual void initialIntegrate(Simulation &) {}

    /** Extra forces after the force computation (thermostats, gravity). */
    virtual void postForce(Simulation &) {}

    /** Second Verlet half-kick. */
    virtual void finalIntegrate(Simulation &) {}

    /** Housekeeping at the very end of the step. */
    virtual void endOfStep(Simulation &) {}

    /** Degrees of freedom removed by this fix (e.g. SHAKE constraints). */
    virtual long removedDof(const Simulation &) const { return 0; }
};

} // namespace mdbench

#endif // MDBENCH_MD_FIX_H
