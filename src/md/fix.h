/**
 * @file
 * Fix base class: operations applied to atoms at fixed points of the
 * timestep (paper Table 1, "Modify" task).
 *
 * The hook order within one timestep is:
 *   preIntegrate -> initialIntegrate -> [forces] -> postForce
 *   -> finalIntegrate -> endOfStep
 */

#ifndef MDBENCH_MD_FIX_H
#define MDBENCH_MD_FIX_H

#include <cstdint>
#include <string>
#include <vector>

namespace mdbench {

class Simulation;

/**
 * Base class for all fixes (integrators, thermostats, constraints, walls).
 */
class Fix
{
  public:
    virtual ~Fix() = default;

    /** Short identifier, e.g. "nve" or "shake". */
    virtual std::string name() const = 0;

    /** Called once before the first timestep of a run. */
    virtual void setup(Simulation &) {}

    /** Called before any integration of the step (state capture). */
    virtual void preIntegrate(Simulation &) {}

    /** First Verlet half-kick + drift. */
    virtual void initialIntegrate(Simulation &) {}

    /** Extra forces after the force computation (thermostats, gravity). */
    virtual void postForce(Simulation &) {}

    /** Second Verlet half-kick. */
    virtual void finalIntegrate(Simulation &) {}

    /** Housekeeping at the very end of the step. */
    virtual void endOfStep(Simulation &) {}

    /**
     * The owned atoms were spatially reordered: new index k holds the
     * atom previously at oldOf[k]. A fix that persists per-atom state
     * indexed by local id across steps must remap it here (gather by
     * oldOf) or key it by tag instead. State that is recaptured every
     * step (e.g. SHAKE's saved positions) needs no action: the reorder
     * happens during reneighboring, never inside a step phase.
     */
    virtual void onAtomsReordered(Simulation &,
                                  const std::vector<std::uint32_t> &)
    {
    }

    /** Degrees of freedom removed by this fix (e.g. SHAKE constraints). */
    virtual long removedDof(const Simulation &) const { return 0; }
};

} // namespace mdbench

#endif // MDBENCH_MD_FIX_H
