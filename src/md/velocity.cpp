#include "md/velocity.h"

#include <cmath>

#include "md/simulation.h"
#include "util/error.h"
#include "util/rng.h"

namespace mdbench {

void
zeroMomentum(Simulation &sim)
{
    AtomStore &atoms = sim.atoms;
    Vec3 momentum{};
    double totalMass = 0.0;
    for (std::size_t i = 0; i < atoms.nlocal(); ++i) {
        const double m = atoms.massOf(i);
        momentum += atoms.v[i] * m;
        totalMass += m;
    }
    if (totalMass <= 0.0)
        return;
    const Vec3 vcm = momentum / totalMass;
    for (std::size_t i = 0; i < atoms.nlocal(); ++i)
        atoms.v[i] -= vcm;
}

void
scaleToTemperature(Simulation &sim, double target)
{
    const double current = sim.temperature();
    require(current > 0.0, "cannot rescale zero-temperature velocities");
    const double factor = std::sqrt(target / current);
    for (std::size_t i = 0; i < sim.atoms.nlocal(); ++i)
        sim.atoms.v[i] *= factor;
}

void
createVelocities(Simulation &sim, double target, Rng &rng)
{
    AtomStore &atoms = sim.atoms;
    const double kT = sim.units.boltz * target;
    for (std::size_t i = 0; i < atoms.nlocal(); ++i) {
        const double sigma =
            std::sqrt(kT / (atoms.massOf(i) * sim.units.mvv2e));
        atoms.v[i] = {sigma * rng.gaussian(), sigma * rng.gaussian(),
                      sigma * rng.gaussian()};
    }
    zeroMomentum(sim);
    scaleToTemperature(sim, target);
}

} // namespace mdbench
