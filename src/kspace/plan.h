/**
 * @file
 * K-space parameter planning: Ewald splitting parameter, Ewald k-space
 * extent, and PPPM grid size as functions of the *relative force error
 * threshold* — the experiment parameter the paper sweeps in Section 7.
 *
 * The estimators follow the standard Hockney-Eastwood / Deserno-Holm
 * formulas that LAMMPS itself uses, so the grid growth with tighter
 * thresholds (and hence the extra FFT work and communication) matches
 * the mechanism behind the paper's Figures 10-14.
 */

#ifndef MDBENCH_KSPACE_PLAN_H
#define MDBENCH_KSPACE_PLAN_H

#include "md/vec3.h"

namespace mdbench {

/** Inputs to k-space planning that do not require an atom store. */
struct KspaceProblem
{
    Vec3 boxLength{1, 1, 1}; ///< edge lengths
    long natoms = 0;         ///< number of charges
    double qSqSum = 0.0;     ///< sum of squared charges
    double qqr2e = 1.0;      ///< Coulomb constant of the unit system
    double cutoff = 10.0;    ///< real-space cutoff
    double accuracy = 1e-4;  ///< relative force error threshold
    int order = 5;           ///< charge assignment order (PPPM)
};

/** Planned k-space parameters. */
struct KspacePlan
{
    double gEwald = 0.0;      ///< Ewald splitting parameter
    int kmax[3] = {0, 0, 0};  ///< Ewald k-space extent per axis
    int grid[3] = {0, 0, 0};  ///< PPPM mesh points per axis (2/3/5-smooth)
    double realError = 0.0;   ///< estimated real-space RMS force error
    double kspaceError = 0.0; ///< estimated k-space RMS force error (PPPM)

    /** Total PPPM grid points. */
    long gridPoints() const
    {
        return static_cast<long>(grid[0]) * grid[1] * grid[2];
    }
};

/** Plan parameters for the given problem (both Ewald and PPPM outputs). */
KspacePlan planKspace(const KspaceProblem &problem);

/**
 * Estimated PPPM ik-differentiation RMS force error for grid spacing
 * @p h along an axis of length @p prd (Deserno-Holm).
 */
double estimateIkError(double h, double prd, const KspaceProblem &problem,
                       double gEwald);

/** Estimated real-space RMS force error for the planned splitting. */
double estimateRealError(const KspaceProblem &problem, double gEwald);

} // namespace mdbench

#endif // MDBENCH_KSPACE_PLAN_H
