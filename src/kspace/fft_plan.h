/**
 * @file
 * Reusable 1-D FFT plans: the radix factorization and twiddle-factor
 * table for one transform length, computed once and shared by every
 * transform of that length (LAMMPS/FFTW-style planning, scaled down).
 *
 * Before planning, every fft1d call re-derived its factor chain and
 * evaluated cos/sin per butterfly — at a fixed PPPM grid that work is
 * identical every step. A plan folds it into a table of the n-th roots
 * of unity (any level's twiddle is a strided lookup) plus the radix
 * sequence, and the process-wide cache hands the same immutable plan to
 * every caller, so repeated setups and the three field FFTs per step
 * all share one table per axis length.
 *
 * Plans are immutable after construction and therefore safe to execute
 * from any number of threads concurrently (each execution only needs a
 * caller-provided scratch line). The cache itself is mutex-guarded;
 * hot paths should resolve their plans once (Fft3d does so per axis at
 * construction) rather than per transform.
 */

#ifndef MDBENCH_KSPACE_FFT_PLAN_H
#define MDBENCH_KSPACE_FFT_PLAN_H

#include <complex>
#include <vector>

namespace mdbench {

using Complex = std::complex<double>;

/**
 * Factorization and twiddle table for length-@p n 1-D transforms.
 */
class FftPlan
{
  public:
    explicit FftPlan(int n);

    /** Transform length the plan was built for. */
    int length() const { return n_; }

    /** Mixed-radix factor sequence (product equals length()). */
    const std::vector<int> &factors() const { return factors_; }

    /**
     * In-place transform of @p data (length() elements, unit stride);
     * sign -1 forward / +1 unnormalized inverse. @p scratch must hold
     * length() elements and is clobbered. Reentrant: concurrent calls
     * on distinct data/scratch are safe.
     */
    void execute(Complex *data, int sign, Complex *scratch) const;

  private:
    void executeRecursive(Complex *data, Complex *scratch, int len,
                          int level, int sign) const;

    int n_;
    std::vector<int> factors_;   ///< radix per recursion level
    std::vector<Complex> roots_; ///< exp(-2 pi i k / n), k in [0, n)
};

/**
 * The process-wide plan for length @p n, built on first request and
 * cached for the life of the process (plans are small: ~16 bytes per
 * grid point). Counts `kspace.plan_cache_hits` on reuse. The returned
 * reference is never invalidated.
 */
const FftPlan &fftPlanFor(int n);

} // namespace mdbench

#endif // MDBENCH_KSPACE_FFT_PLAN_H
