/**
 * @file
 * Classical Ewald summation (LAMMPS `kspace_style ewald`): the exact
 * O(N k^3) reference solver used to validate PPPM and for small systems.
 */

#ifndef MDBENCH_KSPACE_EWALD_H
#define MDBENCH_KSPACE_EWALD_H

#include <vector>

#include "kspace/plan.h"
#include "md/styles.h"
#include "md/vec3.h"
#include "util/thread_pool.h"

namespace mdbench {

/**
 * Direct reciprocal-space Ewald sum.
 */
class Ewald : public KspaceStyle
{
  public:
    /** @param accuracy Relative force error threshold. */
    explicit Ewald(double accuracy);

    std::string name() const override { return "ewald"; }
    void setup(Simulation &sim) override;
    void compute(Simulation &sim) override;
    double splittingParameter() const override { return gEwald_; }
    double accuracy() const override { return accuracy_; }

    /** k-space extent chosen by setup(). */
    const int *kmax() const { return plan_.kmax; }

  private:
    double accuracy_;
    double gEwald_ = 0.0;
    KspacePlan plan_;
    std::vector<Vec3> kvecs_;       ///< k vectors of the half space
    std::vector<double> prefactor_; ///< 4 pi exp(-k^2/4g^2)/k^2 per k
    /// Deterministic per-slice force reduction over k-vector slices
    /// (every atom's force sums contributions from all k).
    ReduceScratch<Vec3> fscratch_;
};

} // namespace mdbench

#endif // MDBENCH_KSPACE_EWALD_H
