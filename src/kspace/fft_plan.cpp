#include "kspace/fft_plan.h"

#include <cmath>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "obs/counters.h"
#include "util/error.h"

namespace mdbench {

namespace {

/** Smallest prime-ish factor used by the mixed-radix decomposition. */
int
smallestFactor(int n)
{
    for (int r : {2, 3, 5})
        if (n % r == 0)
            return r;
    for (int r = 7; r * r <= n; r += 2)
        if (n % r == 0)
            return r;
    return n;
}

} // namespace

FftPlan::FftPlan(int n) : n_(n)
{
    require(n >= 1, "fft length must be positive");
    for (int rest = n; rest > 1;) {
        const int radix = smallestFactor(rest);
        factors_.push_back(radix);
        rest /= radix;
    }
    roots_.resize(static_cast<std::size_t>(n));
    for (int k = 0; k < n; ++k) {
        const double angle = -2.0 * M_PI * k / n;
        roots_[static_cast<std::size_t>(k)] =
            Complex(std::cos(angle), std::sin(angle));
    }
}

void
FftPlan::execute(Complex *data, int sign, Complex *scratch) const
{
    ensure(sign == 1 || sign == -1, "fft sign must be +-1");
    executeRecursive(data, scratch, n_, 0, sign);
}

/**
 * Recursive mixed-radix decimation in time over the planned factor
 * sequence: every subtransform at recursion depth @p level has length
 * n / (factors[0] * ... * factors[level-1]), so one linear factor list
 * serves the whole tree, and any level's twiddle exp(+-2 pi i m / len)
 * is roots_[(m mod len) * (n / len)] (conjugated for the inverse).
 */
void
FftPlan::executeRecursive(Complex *data, Complex *scratch, int len,
                          int level, int sign) const
{
    if (len == 1)
        return;
    const int radix = factors_[static_cast<std::size_t>(level)];
    const int m = len / radix;

    // Split into radix interleaved subsequences and transform each.
    for (int q = 0; q < radix; ++q)
        for (int i = 0; i < m; ++i)
            scratch[q * m + i] = data[q + i * radix];
    for (int q = 0; q < radix; ++q)
        executeRecursive(scratch + q * m, data, m, level + 1, sign);

    // Combine: X[k + s m] = sum_q w^(q (k + s m)) Xq[k].
    const std::size_t stride = static_cast<std::size_t>(n_ / len);
    for (int k = 0; k < m; ++k) {
        for (int s = 0; s < radix; ++s) {
            const int out = k + s * m;
            Complex acc = scratch[k];
            for (int q = 1; q < radix; ++q) {
                const std::size_t turn =
                    static_cast<std::size_t>(q) * out %
                    static_cast<std::size_t>(len);
                const Complex &w = roots_[turn * stride];
                acc += scratch[q * m + k] *
                       (sign < 0 ? w : std::conj(w));
            }
            data[out] = acc;
        }
    }
}

const FftPlan &
fftPlanFor(int n)
{
    require(n >= 1, "fft length must be positive");
    static std::mutex mutex;
    // Leaked on purpose: callers hold references until process exit and
    // plan memory is bounded by the distinct lengths ever requested.
    static auto &cache =
        *new std::unordered_map<int, std::unique_ptr<FftPlan>>;
    std::lock_guard<std::mutex> lock(mutex);
    auto [it, inserted] = cache.try_emplace(n);
    if (inserted)
        it->second = std::make_unique<FftPlan>(n);
    else
        counterAdd(Counter::KspacePlanCacheHits);
    return *it->second;
}

} // namespace mdbench
