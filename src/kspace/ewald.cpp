#include "kspace/ewald.h"

#include <cmath>

#include "md/simulation.h"
#include "obs/counters.h"
#include "obs/trace.h"
#include "util/error.h"
#include "util/logging.h"

namespace mdbench {

Ewald::Ewald(double accuracy) : accuracy_(accuracy)
{
    require(accuracy > 0.0, "ewald accuracy must be positive");
}

void
Ewald::setup(Simulation &sim)
{
    KspaceProblem problem;
    problem.boxLength = sim.box.lengths();
    problem.natoms = static_cast<long>(sim.atoms.nlocal());
    problem.qqr2e = sim.units.qqr2e;
    problem.cutoff = sim.pair ? sim.pair->cutoff() : sim.neighbor.cutoff;
    problem.accuracy = accuracy_;
    double qsum = 0.0;
    problem.qSqSum = 0.0;
    for (std::size_t i = 0; i < sim.atoms.nlocal(); ++i) {
        qsum += sim.atoms.q[i];
        problem.qSqSum += sim.atoms.q[i] * sim.atoms.q[i];
    }
    if (std::fabs(qsum) > 1e-8 * std::sqrt(problem.qSqSum))
        warn("ewald: system is not charge neutral");

    plan_ = planKspace(problem);
    gEwald_ = plan_.gEwald;

    // Enumerate the half space of k vectors (k and -k contribute equal
    // conjugate terms, folded in with a factor 2 below).
    kvecs_.clear();
    prefactor_.clear();
    const Vec3 len = sim.box.lengths();
    const double gsqInv4 = 1.0 / (4.0 * gEwald_ * gEwald_);
    for (int mx = 0; mx <= plan_.kmax[0]; ++mx) {
        const int loY = mx == 0 ? 0 : -plan_.kmax[1];
        for (int my = loY; my <= plan_.kmax[1]; ++my) {
            const int loZ = (mx == 0 && my == 0) ? 1 : -plan_.kmax[2];
            for (int mz = loZ; mz <= plan_.kmax[2]; ++mz) {
                const Vec3 k{2.0 * M_PI * mx / len.x,
                             2.0 * M_PI * my / len.y,
                             2.0 * M_PI * mz / len.z};
                const double ksq = k.normSq();
                kvecs_.push_back(k);
                prefactor_.push_back(4.0 * M_PI * std::exp(-ksq * gsqInv4) /
                                     ksq);
            }
        }
    }
}

void
Ewald::compute(Simulation &sim)
{
    TraceScope trace("kspace", "ewald");
    counterAdd(Counter::KspaceSolves);
    resetAccumulators();
    AtomStore &atoms = sim.atoms;
    const std::size_t nlocal = atoms.nlocal();
    const double qqr2e = sim.units.qqr2e;
    const double volume = sim.box.volume();

    double qsqsum = 0.0;
    for (std::size_t i = 0; i < nlocal; ++i)
        qsqsum += atoms.q[i] * atoms.q[i];

    // Structure factors and forces, parallel over k-vector slices. A
    // slice computes each of its k's structure factor serially over
    // atoms (ascending i, as before) and accumulates the per-atom
    // forces into its private scratch buffer; runAndReduce folds the
    // buffers into f in ascending slice order, so every atom's force
    // sums its k contributions in ascending k order at any thread
    // count. Energy folds the same way through per-slice partials.
    ThreadPool &pool = ThreadPool::global();
    const SliceRange kSlices(0, kvecs_.size(), 1);
    SlicePartials<double> energyParts;
    fscratch_.runAndReduce(
        pool, kSlices, nlocal, atoms.f.data(),
        [&](std::size_t kBegin, std::size_t kEnd, int s, int buffer) {
            auto fw = fscratch_.acc(buffer);
            std::vector<double> cosK(nlocal);
            std::vector<double> sinK(nlocal);
            double energy = 0.0;
            for (std::size_t kk = kBegin; kk < kEnd; ++kk) {
                const Vec3 &k = kvecs_[kk];
                double sReal = 0.0;
                double sImag = 0.0;
                for (std::size_t i = 0; i < nlocal; ++i) {
                    const double phase = k.dot(atoms.x[i]);
                    cosK[i] = std::cos(phase);
                    sinK[i] = std::sin(phase);
                    sReal += atoms.q[i] * cosK[i];
                    sImag += atoms.q[i] * sinK[i];
                }
                // Factor 2 folds the -k half space.
                const double pre =
                    2.0 * prefactor_[kk] * qqr2e / (2.0 * volume);
                energy += pre * (sReal * sReal + sImag * sImag);
                const double fpre = 2.0 * prefactor_[kk] * qqr2e / volume;
                for (std::size_t i = 0; i < nlocal; ++i) {
                    const double coef = fpre * atoms.q[i] *
                                        (sinK[i] * sReal -
                                         cosK[i] * sImag);
                    fw.at(i) += k * coef;
                }
            }
            energyParts[s] = energy;
        });
    energy_ = energyParts.fold(kSlices, energy_);

    // Self-energy correction.
    energy_ -= qqr2e * gEwald_ / std::sqrt(M_PI) * qsqsum;

    // The scalar Coulomb virial equals the Coulomb energy (1/r
    // homogeneity); this approximation is documented in DESIGN.md.
    virial_ = energy_;
}

} // namespace mdbench
