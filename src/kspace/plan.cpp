#include "kspace/plan.h"

#include <cmath>

#include "kspace/fft3d.h"
#include "util/error.h"

namespace mdbench {

namespace {

/**
 * Deserno-Holm expansion coefficients for the ik-differentiation error
 * estimate, per assignment order (same table as LAMMPS pppm.cpp).
 */
const double *
aconsRow(int order)
{
    static const double a1[] = {2.0 / 3.0};
    static const double a2[] = {1.0 / 50.0, 5.0 / 294.0};
    static const double a3[] = {1.0 / 588.0, 7.0 / 1440.0, 21.0 / 3872.0};
    static const double a4[] = {1.0 / 4320.0, 3.0 / 1936.0,
                                7601.0 / 2271360.0, 143.0 / 28800.0};
    static const double a5[] = {1.0 / 23232.0, 7601.0 / 13628160.0,
                                143.0 / 69120.0, 517231.0 / 106536960.0,
                                106640677.0 / 11737571328.0};
    static const double a6[] = {691.0 / 68140800.0, 13.0 / 57600.0,
                                47021.0 / 35512320.0,
                                9694607.0 / 2095994880.0,
                                733191589.0 / 59609088000.0,
                                326190917.0 / 11700633600.0};
    static const double a7[] = {1.0 / 345600.0, 3617.0 / 35512320.0,
                                745739.0 / 838397952.0,
                                56399353.0 / 12773376000.0,
                                25091609.0 / 1560084480.0,
                                1755948832039.0 / 36229939200000.0,
                                4887769399.0 / 37838389248.0};
    switch (order) {
      case 1: return a1;
      case 2: return a2;
      case 3: return a3;
      case 4: return a4;
      case 5: return a5;
      case 6: return a6;
      case 7: return a7;
      default: fatal("PPPM assignment order must be in [1, 7]");
    }
}

/** Ewald k-space RMS error for kmax modes along an axis of length prd. */
double
ewaldRms(int km, double prd, const KspaceProblem &p, double g)
{
    if (km <= 0)
        return 1e300;
    const double q2 = p.qSqSum * p.qqr2e / p.natoms;
    return 2.0 * q2 * g / prd *
           std::sqrt(1.0 / (M_PI * km * p.natoms)) *
           std::exp(-M_PI * M_PI * km * km / (g * g * prd * prd));
}

} // namespace

double
estimateIkError(double h, double prd, const KspaceProblem &p, double g)
{
    const double *acons = aconsRow(p.order);
    double sum = 0.0;
    for (int m = 0; m < p.order; ++m)
        sum += acons[m] * std::pow(h * g, 2.0 * m);
    const double q2 = p.qSqSum * p.qqr2e / p.natoms;
    return q2 * std::pow(h * g, p.order) *
           std::sqrt(g * prd * std::sqrt(2.0 * M_PI) * sum / p.natoms) /
           (prd * prd);
}

double
estimateRealError(const KspaceProblem &p, double g)
{
    const double q2 = p.qSqSum * p.qqr2e / p.natoms;
    const double volume = p.boxLength.x * p.boxLength.y * p.boxLength.z;
    return 2.0 * q2 * std::exp(-g * g * p.cutoff * p.cutoff) /
           std::sqrt(static_cast<double>(p.natoms) * p.cutoff * volume);
}

KspacePlan
planKspace(const KspaceProblem &problem)
{
    require(problem.natoms > 0, "kspace planning needs atoms");
    require(problem.qSqSum > 0.0, "kspace planning needs nonzero charges");
    require(problem.accuracy > 0.0, "accuracy threshold must be positive");
    require(problem.cutoff > 0.0, "cutoff must be positive");

    KspacePlan plan;

    // LAMMPS's splitting-parameter heuristic.
    plan.gEwald = (1.35 - 0.15 * std::log(problem.accuracy)) /
                  problem.cutoff;

    // Absolute error target: relative threshold times the force between
    // two elementary charges one distance-unit apart.
    const double target = problem.accuracy * problem.qqr2e;

    const double lengths[3] = {problem.boxLength.x, problem.boxLength.y,
                               problem.boxLength.z};

    // Ewald extent: grow kmax per axis until the RMS estimate fits.
    for (int axis = 0; axis < 3; ++axis) {
        int km = 1;
        while (ewaldRms(km, lengths[axis], problem, plan.gEwald) > target &&
               km < 256) {
            ++km;
        }
        plan.kmax[axis] = km;
    }

    // PPPM mesh: start from the h ~ 1/g mesh LAMMPS produces at the
    // default 1e-4 threshold, densified toward tighter thresholds with
    // the empirically observed exponent (the paper's Section 7 slowdown
    // factors on both instances pin the mesh growth near
    // points-per-axis ~ accuracy^-0.17), then refine further if the
    // ik-differentiation error estimate still exceeds the target.
    const double gRef = (1.35 - 0.15 * std::log(1e-4)) / problem.cutoff;
    const double densify = std::pow(1e-4 / problem.accuracy, 0.17);
    double worst = 0.0;
    for (int axis = 0; axis < 3; ++axis) {
        int n = nextSmooth235(std::max(
            2, static_cast<int>(lengths[axis] * gRef * densify)));
        while (estimateIkError(lengths[axis] / n, lengths[axis], problem,
                               plan.gEwald) > target &&
               n < 16384) {
            n = nextSmooth235(n + 1);
        }
        plan.grid[axis] = n;
        worst = std::max(worst, estimateIkError(lengths[axis] / n,
                                                lengths[axis], problem,
                                                plan.gEwald));
    }
    plan.kspaceError = worst;
    plan.realError = estimateRealError(problem, plan.gEwald);
    return plan;
}

} // namespace mdbench
