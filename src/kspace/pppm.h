/**
 * @file
 * Particle-particle particle-mesh long-range solver
 * (LAMMPS `kspace_style pppm`), the O(N log N) method behind the
 * Rhodopsin workload and the paper's error-threshold sensitivity study.
 *
 * The mesh part uses B-spline charge assignment of configurable order,
 * an exact B-spline (Euler-spline) deconvolution in the influence
 * function, and ik differentiation with three inverse FFTs — the
 * make_rho / poisson / interpolate pipeline whose GPU kernels
 * (make_rho, particle_map, interp) the paper profiles in Figure 8.
 */

#ifndef MDBENCH_KSPACE_PPPM_H
#define MDBENCH_KSPACE_PPPM_H

#include <cstdint>
#include <memory>
#include <vector>

#include "kspace/fft3d.h"
#include "kspace/plan.h"
#include "md/styles.h"

namespace mdbench {

/**
 * PPPM solver with grid size chosen from the relative error threshold.
 */
class Pppm : public KspaceStyle
{
  public:
    /**
     * @param accuracy Relative force error threshold (the paper sweeps
     *                 1e-4 .. 1e-7 in Section 7).
     * @param order    B-spline assignment order (LAMMPS default 5).
     */
    explicit Pppm(double accuracy, int order = 5);

    std::string name() const override { return "pppm"; }
    void setup(Simulation &sim) override;
    void compute(Simulation &sim) override;
    double splittingParameter() const override { return gEwald_; }
    double accuracy() const override { return accuracy_; }

    /** Mesh points per axis chosen by setup(). */
    const int *grid() const { return plan_.grid; }

    /** Assignment order. */
    int order() const { return order_; }

    /** Workload statistics of the last compute (for the harness). */
    struct Stats
    {
        long gridPoints = 0;
        long fftCount = 0; ///< forward + inverse 3-D FFTs per step
    };
    const Stats &stats() const { return stats_; }

  private:
    /** B-spline weights of one particle along one axis. */
    struct AxisWeights
    {
        int firstNode = 0;
        double w[8] = {};
    };
    AxisWeights weightsFor(double u) const;

    /**
     * The solve proper, out of line behind the traced compute()
     * wrapper: probe calls in the same function push gcc's size
     * estimate over its large-function limit and the charge-mapping
     * and interpolation loops lose their unrolling.
     */
    [[gnu::noinline]] void computeImpl(Simulation &sim);

    void buildInfluence(const Vec3 &boxLength);

    double accuracy_;
    int order_;
    double gEwald_ = 0.0;
    KspacePlan plan_;
    std::unique_ptr<Fft3d> fft_;
    std::vector<double> influence_;   ///< energy-convention G(k) per mode
    std::vector<Vec3> kvec_;          ///< signed k vector per mode
    std::vector<Complex> rho_;        ///< charge mesh / scratch
    std::vector<Complex> field_[3];   ///< E-field meshes
    Stats stats_;
    Vec3 setupBoxLength_{0, 0, 0};

    // Per-step scratch, persistent to amortize allocation.
    std::vector<AxisWeights> wx_;     ///< per-atom stencil, x axis
    std::vector<AxisWeights> wy_;     ///< per-atom stencil, y axis
    std::vector<AxisWeights> wz_;     ///< per-atom stencil, z axis
    /// CSR of charge contributions keyed by wrapped z-plane: the scatter
    /// parallelizes over plane slabs with exclusive grid ownership (see
    /// computeImpl). Entries encode (atom << 3 | stencil offset).
    std::vector<std::uint32_t> planeStart_;
    std::vector<std::uint32_t> planeCursor_;
    std::vector<std::uint64_t> planeEntries_;
};

} // namespace mdbench

#endif // MDBENCH_KSPACE_PPPM_H
