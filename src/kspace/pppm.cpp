#include "kspace/pppm.h"

#include <cmath>

#include "md/simulation.h"
#include "obs/counters.h"
#include "obs/trace.h"
#include "util/error.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace mdbench {

namespace {

/**
 * Integer samples M_p(k), k = 0..p, of the cardinal B-spline.
 *
 * Computed by the integer-lattice Cox-de Boor recursion (the pointwise
 * recursion degenerates at the knots, where every recursive path lands
 * exactly on a breakpoint of M_1).
 */
std::vector<double>
bsplineIntegerSamples(int p)
{
    std::vector<double> m(static_cast<std::size_t>(p) + 1, 0.0);
    m[0] = 1.0; // M_1 on [0,1): value 1 at the left knot
    for (int n = 2; n <= p; ++n) {
        std::vector<double> next(m.size(), 0.0);
        for (int k = 1; k <= n; ++k) {
            const double lower = k <= p ? m[k] : 0.0;
            next[k] = (k * lower + (n - k) * m[k - 1]) / (n - 1);
        }
        m = std::move(next);
    }
    return m;
}

} // namespace

Pppm::Pppm(double accuracy, int order) : accuracy_(accuracy), order_(order)
{
    require(accuracy > 0.0, "pppm accuracy must be positive");
    require(order >= 1 && order <= 7, "pppm order must be in [1, 7]");
}

Pppm::AxisWeights
Pppm::weightsFor(double u) const
{
    AxisWeights out;
    const int p = order_;
    const int jstart = static_cast<int>(std::floor(u - 0.5 * p)) + 1;
    const double f = u - jstart + 0.5 * p - (p - 1);

    // Iterative Cox-de Boor: after round n, w[m] = M_n(f + m).
    double w[8] = {1.0};
    for (int n = 2; n <= p; ++n) {
        w[n - 1] = 0.0;
        for (int m = n - 1; m >= 0; --m) {
            const double left = (f + m) * w[m];
            const double right = (m > 0) ? (n - f - m) * w[m - 1] : 0.0;
            w[m] = (left + right) / (n - 1);
        }
    }
    // Weight w[m] belongs to node jstart + (p - 1 - m).
    out.firstNode = jstart;
    for (int m = 0; m < p; ++m)
        out.w[p - 1 - m] = w[m];
    return out;
}

void
Pppm::buildInfluence(const Vec3 &boxLength)
{
    const int nx = plan_.grid[0];
    const int ny = plan_.grid[1];
    const int nz = plan_.grid[2];
    const double lengths[3] = {boxLength.x, boxLength.y, boxLength.z};

    // Per-axis Euler-spline deconvolution factors |W(m)|^2.
    const std::vector<double> samples = bsplineIntegerSamples(order_);
    std::vector<double> denom[3];
    for (int axis = 0; axis < 3; ++axis) {
        const int n = plan_.grid[axis];
        denom[axis].resize(n);
        for (int m = 0; m < n; ++m) {
            if (order_ == 1) {
                denom[axis][m] = 1.0;
                continue;
            }
            double real = 0.0;
            double imag = 0.0;
            for (int k = 1; k <= order_ - 1; ++k) {
                const double weight = samples[k];
                const double angle = 2.0 * M_PI * m * k / n;
                real += weight * std::cos(angle);
                imag += weight * std::sin(angle);
            }
            denom[axis][m] = real * real + imag * imag;
        }
    }

    influence_.assign(size_t(nx) * ny * nz, 0.0);
    kvec_.assign(size_t(nx) * ny * nz, Vec3{});
    const double gsqInv4 = 1.0 / (4.0 * gEwald_ * gEwald_);
    // Each z-plane of the table is written by exactly one slice, so the
    // parallel build is trivially identical at any thread count.
    ThreadPool::global().parallelFor(
        0, static_cast<std::size_t>(nz), 1,
        [&](std::size_t mzBegin, std::size_t mzEnd, int) {
            for (std::size_t mz = mzBegin; mz < mzEnd; ++mz) {
                const int sz = static_cast<int>(mz) <= nz / 2
                                   ? static_cast<int>(mz)
                                   : static_cast<int>(mz) - nz;
                for (int my = 0; my < ny; ++my) {
                    const int sy = my <= ny / 2 ? my : my - ny;
                    for (int mx = 0; mx < nx; ++mx) {
                        const int sx = mx <= nx / 2 ? mx : mx - nx;
                        const std::size_t idx =
                            (mz * ny + my) * nx + mx;
                        if (sx == 0 && sy == 0 && sz == 0)
                            continue;
                        const Vec3 k{2.0 * M_PI * sx / lengths[0],
                                     2.0 * M_PI * sy / lengths[1],
                                     2.0 * M_PI * sz / lengths[2]};
                        const double ksq = k.normSq();
                        const double d =
                            denom[0][mx] * denom[1][my] * denom[2][mz];
                        if (d < 1e-12)
                            continue; // Nyquist-degenerate mode
                        kvec_[idx] = k;
                        influence_[idx] = 4.0 * M_PI *
                                          std::exp(-ksq * gsqInv4) /
                                          (ksq * d);
                    }
                }
            }
        });
    setupBoxLength_ = boxLength;
}

void
Pppm::setup(Simulation &sim)
{
    KspaceProblem problem;
    problem.boxLength = sim.box.lengths();
    problem.natoms = static_cast<long>(sim.atoms.nlocal());
    problem.qqr2e = sim.units.qqr2e;
    problem.cutoff = sim.pair ? sim.pair->cutoff() : sim.neighbor.cutoff;
    problem.accuracy = accuracy_;
    problem.order = order_;
    double qsum = 0.0;
    problem.qSqSum = 0.0;
    for (std::size_t i = 0; i < sim.atoms.nlocal(); ++i) {
        qsum += sim.atoms.q[i];
        problem.qSqSum += sim.atoms.q[i] * sim.atoms.q[i];
    }
    if (std::fabs(qsum) > 1e-8 * std::sqrt(problem.qSqSum))
        warn("pppm: system is not charge neutral");

    plan_ = planKspace(problem);
    gEwald_ = plan_.gEwald;
    fft_ = std::make_unique<Fft3d>(plan_.grid[0], plan_.grid[1],
                                   plan_.grid[2]);
    rho_.assign(fft_->size(), Complex{});
    for (auto &grid : field_)
        grid.assign(fft_->size(), Complex{});
    buildInfluence(sim.box.lengths());
    inform("pppm: grid " + std::to_string(plan_.grid[0]) + "x" +
           std::to_string(plan_.grid[1]) + "x" +
           std::to_string(plan_.grid[2]) +
           " g_ewald " + std::to_string(gEwald_));
}

void
Pppm::compute(Simulation &sim)
{
    ensure(fft_ != nullptr, "pppm compute before setup");
    TraceScope trace("kspace", "pppm");
    counterAdd(Counter::KspaceSolves);
    computeImpl(sim);
}

void
Pppm::computeImpl(Simulation &sim)
{
    resetAccumulators();
    stats_ = Stats{};

    AtomStore &atoms = sim.atoms;
    const std::size_t nlocal = atoms.nlocal();
    const Vec3 len = sim.box.lengths();

    // NPT dilates the box; refresh the influence function when it moved.
    const Vec3 drift = len - setupBoxLength_;
    if (std::fabs(drift.x) > 1e-3 * len.x ||
        std::fabs(drift.y) > 1e-3 * len.y ||
        std::fabs(drift.z) > 1e-3 * len.z) {
        buildInfluence(len);
    }

    const int nx = plan_.grid[0];
    const int ny = plan_.grid[1];
    const int nz = plan_.grid[2];
    const double invH[3] = {nx / len.x, ny / len.y, nz / len.z};

    ThreadPool &pool = ThreadPool::global();
    const SliceRange atomSlices(0, nlocal, forceKernelGrain(nlocal));

    // particle_map: per-atom stencil weights along each axis, plus the
    // q^2 sum via per-slice partials (fixed slice partition + ascending
    // fold = the summation tree is independent of the thread count).
    wx_.resize(nlocal);
    wy_.resize(nlocal);
    wz_.resize(nlocal);
    SlicePartials<double> qsqParts;
    {
        TraceScope map("kspace", "particle_map");
        pool.run(atomSlices,
                 [&](std::size_t begin, std::size_t end, int s) {
                     double qsq = 0.0;
                     for (std::size_t i = begin; i < end; ++i) {
                         const Vec3 pos = sim.box.wrap(atoms.x[i]);
                         wx_[i] = weightsFor((pos.x - sim.box.lo().x) *
                                             invH[0]);
                         wy_[i] = weightsFor((pos.y - sim.box.lo().y) *
                                             invH[1]);
                         wz_[i] = weightsFor((pos.z - sim.box.lo().z) *
                                             invH[2]);
                         qsq += atoms.q[i] * atoms.q[i];
                     }
                     qsqParts[s] = qsq;
                 });
    }
    const double qsqsum = qsqParts.fold(atomSlices);

    // make_rho: scatter charges to the mesh with exclusive z-plane
    // ownership. A serial counting pass buckets every (atom, z-offset)
    // contribution by its wrapped plane in ascending (atom, offset)
    // order; the parallel scatter then walks plane slabs, so each grid
    // cell is written by exactly one slice and accumulates its
    // contributions in the same ascending atom order as a serial
    // scatter — bitwise identical at any thread count.
    {
        TraceScope scatter("kspace", "make_rho");
        Complex *rho = rho_.data();
        pool.parallelFor(0, rho_.size(), 4096,
                         [&](std::size_t begin, std::size_t end, int) {
                             for (std::size_t m = begin; m < end; ++m)
                                 rho[m] = Complex{};
                         });

        planeStart_.assign(static_cast<std::size_t>(nz) + 1, 0);
        for (std::size_t i = 0; i < nlocal; ++i) {
            if (atoms.q[i] == 0.0)
                continue;
            for (int c = 0; c < order_; ++c) {
                const int gz = ((wz_[i].firstNode + c) % nz + nz) % nz;
                ++planeStart_[static_cast<std::size_t>(gz) + 1];
            }
        }
        for (int z = 0; z < nz; ++z)
            planeStart_[static_cast<std::size_t>(z) + 1] +=
                planeStart_[static_cast<std::size_t>(z)];
        planeCursor_.assign(planeStart_.begin(), planeStart_.end() - 1);
        planeEntries_.resize(
            planeStart_[static_cast<std::size_t>(nz)]);
        for (std::size_t i = 0; i < nlocal; ++i) {
            if (atoms.q[i] == 0.0)
                continue;
            for (int c = 0; c < order_; ++c) {
                const int gz = ((wz_[i].firstNode + c) % nz + nz) % nz;
                planeEntries_[planeCursor_[static_cast<std::size_t>(
                    gz)]++] = (static_cast<std::uint64_t>(i) << 3) |
                              static_cast<std::uint64_t>(c);
            }
        }

        const SliceRange slabs(0, static_cast<std::size_t>(nz), 1);
        pool.run(slabs, [&](std::size_t zBegin, std::size_t zEnd, int) {
            for (std::size_t z = zBegin; z < zEnd; ++z) {
                Complex *plane = rho + z * ny * nx;
                for (std::uint32_t e = planeStart_[z];
                     e < planeStart_[z + 1]; ++e) {
                    const std::uint64_t entry = planeEntries_[e];
                    const std::size_t i =
                        static_cast<std::size_t>(entry >> 3);
                    const int c = static_cast<int>(entry & 7);
                    const double qz =
                        atoms.q[i] * wz_[i].w[c];
                    for (int b = 0; b < order_; ++b) {
                        const int gy =
                            ((wy_[i].firstNode + b) % ny + ny) % ny;
                        const double qyz = qz * wy_[i].w[b];
                        Complex *row =
                            plane + static_cast<std::size_t>(gy) * nx;
                        for (int a = 0; a < order_; ++a) {
                            const int gx =
                                ((wx_[i].firstNode + a) % nx + nx) % nx;
                            row[gx] += qyz * wx_[i].w[a];
                        }
                    }
                }
            }
        });
    }

    const double qqr2e = sim.units.qqr2e;
    const double volume = sim.box.volume();

    // poisson: forward FFT, influence multiply with ik-differentiated
    // field spectra (independent per mode; energy via per-slice
    // partials), then the three inverse field FFTs. The FFTs batch
    // their 1-D lines across the pool internally.
    {
        TraceScope poisson("kspace", "poisson");
        fft_->forward(rho_);
        ++stats_.fftCount;

        const double fieldScale =
            static_cast<double>(fft_->size()) / volume; // unnorm. inverse
        const Complex *rho = rho_.data();
        const double *influence = influence_.data();
        const Vec3 *kvec = kvec_.data();
        Complex *fieldX = field_[0].data();
        Complex *fieldY = field_[1].data();
        Complex *fieldZ = field_[2].data();
        const SliceRange modeSlices(0, influence_.size(), 2048);
        SlicePartials<double> energyParts;
        pool.run(modeSlices,
                 [&](std::size_t begin, std::size_t end, int s) {
                     double energy = 0.0;
                     const Complex minusI(0.0, -1.0);
                     for (std::size_t m = begin; m < end; ++m) {
                         const Complex rhoK = rho[m];
                         const double g = influence[m];
                         if (g == 0.0) {
                             fieldX[m] = fieldY[m] = fieldZ[m] =
                                 Complex{};
                             continue;
                         }
                         energy += 0.5 * qqr2e / volume * g *
                                   std::norm(rhoK);
                         const Complex phi = rhoK * (g * fieldScale);
                         fieldX[m] = minusI * kvec[m].x * phi;
                         fieldY[m] = minusI * kvec[m].y * phi;
                         fieldZ[m] = minusI * kvec[m].z * phi;
                     }
                     energyParts[s] = energy;
                 });
        energy_ = energyParts.fold(modeSlices, energy_);

        for (auto &grid : field_) {
            fft_->inverse(grid);
            ++stats_.fftCount;
        }
    }

    // interp: fields back to the particles. Embarrassingly parallel —
    // atom i only reads the meshes and writes f[i].
    {
        TraceScope interp("kspace", "interp");
        const Complex *fieldX = field_[0].data();
        const Complex *fieldY = field_[1].data();
        const Complex *fieldZ = field_[2].data();
        pool.run(atomSlices, [&](std::size_t begin, std::size_t end,
                                 int) {
            for (std::size_t i = begin; i < end; ++i) {
                const double q = atoms.q[i];
                if (q == 0.0)
                    continue;
                Vec3 e{};
                for (int c = 0; c < order_; ++c) {
                    const int gz =
                        ((wz_[i].firstNode + c) % nz + nz) % nz;
                    for (int b = 0; b < order_; ++b) {
                        const int gy =
                            ((wy_[i].firstNode + b) % ny + ny) % ny;
                        const double wyz = wz_[i].w[c] * wy_[i].w[b];
                        for (int a = 0; a < order_; ++a) {
                            const int gx =
                                ((wx_[i].firstNode + a) % nx + nx) % nx;
                            const double weight = wyz * wx_[i].w[a];
                            const std::size_t cell =
                                (static_cast<std::size_t>(gz) * ny + gy) *
                                    nx +
                                gx;
                            e.x += weight * fieldX[cell].real();
                            e.y += weight * fieldY[cell].real();
                            e.z += weight * fieldZ[cell].real();
                        }
                    }
                }
                atoms.f[i] += e * (q * qqr2e);
            }
        });
    }

    // Self-energy correction; virial via the 1/r homogeneity argument
    // (documented in DESIGN.md).
    energy_ -= qqr2e * gEwald_ / std::sqrt(M_PI) * qsqsum;
    virial_ = energy_;
    stats_.gridPoints = static_cast<long>(fft_->size());
}

} // namespace mdbench
