/**
 * @file
 * From-scratch complex FFT: mixed-radix (2/3/5, with a generic fallback)
 * 1-D transform and a 3-D transform built on it.
 *
 * This is the computational core of the PPPM long-range solver — the
 * O(N log N) step the paper identifies as the poorly-scaling part of the
 * Rhodopsin timestep. The 1-D transforms execute against cached FftPlan
 * twiddle tables (kspace/fft_plan.h), and the 3-D transform runs its
 * independent line batches on the shared ThreadPool: every 1-D line is
 * owned by exactly one slice, so the result is bitwise identical at any
 * thread count.
 */

#ifndef MDBENCH_KSPACE_FFT3D_H
#define MDBENCH_KSPACE_FFT3D_H

#include <complex>
#include <vector>

#include "kspace/fft_plan.h"

namespace mdbench {

/**
 * In-place 1-D FFT of @p data (length @p n), sign -1 forward / +1 inverse.
 * The inverse is unnormalized (caller divides by n).
 * Works for any n, fastest when n factors into 2, 3, and 5.
 * Resolves the cached plan for @p n on every call; transform loops that
 * fix n should resolve the plan once via fftPlanFor() instead.
 */
void fft1d(Complex *data, int n, int sign);

/** True when @p n factors completely into 2, 3, and 5. */
bool isSmooth235(int n);

/** Smallest integer >= @p n that factors into 2, 3, and 5. */
int nextSmooth235(int n);

/**
 * 3-D FFT over a contiguous array indexed data[(z * ny + y) * nx + x].
 *
 * Construction resolves (and caches) the per-axis FftPlans; transforms
 * batch the nx*ny / ny*nz / nx*nz independent 1-D lines of each axis
 * across the global ThreadPool.
 */
class Fft3d
{
  public:
    Fft3d(int nx, int ny, int nz);

    int nx() const { return nx_; }
    int ny() const { return ny_; }
    int nz() const { return nz_; }
    std::size_t size() const
    {
        return static_cast<std::size_t>(nx_) * ny_ * nz_;
    }

    /** Forward transform (sign -1), in place. */
    void forward(std::vector<Complex> &data) const;

    /** Inverse transform with 1/(nx ny nz) normalization, in place. */
    void inverse(std::vector<Complex> &data) const;

  private:
    void transform(std::vector<Complex> &data, int sign) const;

    int nx_;
    int ny_;
    int nz_;
    const FftPlan *planX_; ///< cached process-wide, never invalidated
    const FftPlan *planY_;
    const FftPlan *planZ_;
};

} // namespace mdbench

#endif // MDBENCH_KSPACE_FFT3D_H
