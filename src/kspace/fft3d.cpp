#include "kspace/fft3d.h"

#include <algorithm>
#include <cmath>

#include "obs/counters.h"
#include "obs/trace.h"
#include "util/error.h"

namespace mdbench {

namespace {

/** Smallest prime-ish factor used by the mixed-radix decomposition. */
int
smallestFactor(int n)
{
    for (int r : {2, 3, 5})
        if (n % r == 0)
            return r;
    for (int r = 7; r * r <= n; r += 2)
        if (n % r == 0)
            return r;
    return n;
}

/**
 * Recursive mixed-radix decimation-in-time FFT.
 * data has @p n elements at unit stride; scratch has n elements too.
 */
void
fftRecursive(Complex *data, Complex *scratch, int n, int sign)
{
    if (n == 1)
        return;
    const int radix = smallestFactor(n);
    const int m = n / radix;

    // Split into radix interleaved subsequences and transform each.
    for (int q = 0; q < radix; ++q)
        for (int i = 0; i < m; ++i)
            scratch[q * m + i] = data[q + i * radix];
    for (int q = 0; q < radix; ++q)
        fftRecursive(scratch + q * m, data, m, sign);

    // Combine: X[k + s m] = sum_q w^(q (k + s m)) Xq[k].
    const double unit = sign * 2.0 * M_PI / n;
    for (int k = 0; k < m; ++k) {
        for (int s = 0; s < radix; ++s) {
            const int out = k + s * m;
            Complex acc = scratch[k];
            for (int q = 1; q < radix; ++q) {
                const double angle = unit * q * out;
                acc += scratch[q * m + k] *
                       Complex(std::cos(angle), std::sin(angle));
            }
            data[out] = acc;
        }
    }
}

} // namespace

void
fft1d(Complex *data, int n, int sign)
{
    require(n >= 1, "fft length must be positive");
    ensure(sign == 1 || sign == -1, "fft sign must be +-1");
    std::vector<Complex> scratch(static_cast<std::size_t>(n));
    fftRecursive(data, scratch.data(), n, sign);
}

bool
isSmooth235(int n)
{
    if (n < 1)
        return false;
    for (int r : {2, 3, 5})
        while (n % r == 0)
            n /= r;
    return n == 1;
}

int
nextSmooth235(int n)
{
    int candidate = n < 1 ? 1 : n;
    while (!isSmooth235(candidate))
        ++candidate;
    return candidate;
}

Fft3d::Fft3d(int nx, int ny, int nz) : nx_(nx), ny_(ny), nz_(nz)
{
    require(nx >= 1 && ny >= 1 && nz >= 1, "fft grid dims must be positive");
}

void
Fft3d::transform(std::vector<Complex> &data, int sign) const
{
    ensure(data.size() == size(), "fft3d data size mismatch");
    std::vector<Complex> scratch(
        static_cast<std::size_t>(std::max({nx_, ny_, nz_})));

    // X axis: contiguous rows.
    for (int z = 0; z < nz_; ++z)
        for (int y = 0; y < ny_; ++y)
            fft1d(&data[(static_cast<std::size_t>(z) * ny_ + y) * nx_], nx_,
                  sign);

    // Y axis: gather strided columns.
    for (int z = 0; z < nz_; ++z) {
        for (int x = 0; x < nx_; ++x) {
            for (int y = 0; y < ny_; ++y)
                scratch[y] = data[(static_cast<std::size_t>(z) * ny_ + y) *
                                      nx_ + x];
            fft1d(scratch.data(), ny_, sign);
            for (int y = 0; y < ny_; ++y)
                data[(static_cast<std::size_t>(z) * ny_ + y) * nx_ + x] =
                    scratch[y];
        }
    }

    // Z axis.
    for (int y = 0; y < ny_; ++y) {
        for (int x = 0; x < nx_; ++x) {
            for (int z = 0; z < nz_; ++z)
                scratch[z] = data[(static_cast<std::size_t>(z) * ny_ + y) *
                                      nx_ + x];
            fft1d(scratch.data(), nz_, sign);
            for (int z = 0; z < nz_; ++z)
                data[(static_cast<std::size_t>(z) * ny_ + y) * nx_ + x] =
                    scratch[z];
        }
    }
}

void
Fft3d::forward(std::vector<Complex> &data) const
{
    TraceScope trace("kspace", "fft_forward");
    counterAdd(Counter::KspaceFfts);
    transform(data, -1);
}

void
Fft3d::inverse(std::vector<Complex> &data) const
{
    TraceScope trace("kspace", "fft_inverse");
    counterAdd(Counter::KspaceFfts);
    transform(data, 1);
    const double norm = 1.0 / static_cast<double>(size());
    for (Complex &value : data)
        value *= norm;
}

} // namespace mdbench
