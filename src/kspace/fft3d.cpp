#include "kspace/fft3d.h"

#include <algorithm>

#include "obs/counters.h"
#include "obs/trace.h"
#include "util/error.h"
#include "util/thread_pool.h"

namespace mdbench {

void
fft1d(Complex *data, int n, int sign)
{
    require(n >= 1, "fft length must be positive");
    ensure(sign == 1 || sign == -1, "fft sign must be +-1");
    const FftPlan &plan = fftPlanFor(n);
    std::vector<Complex> scratch(static_cast<std::size_t>(n));
    plan.execute(data, sign, scratch.data());
}

bool
isSmooth235(int n)
{
    if (n < 1)
        return false;
    for (int r : {2, 3, 5})
        while (n % r == 0)
            n /= r;
    return n == 1;
}

int
nextSmooth235(int n)
{
    int candidate = n < 1 ? 1 : n;
    while (!isSmooth235(candidate))
        ++candidate;
    return candidate;
}

Fft3d::Fft3d(int nx, int ny, int nz)
    : nx_(nx), ny_(ny), nz_(nz), planX_(&fftPlanFor(nx)),
      planY_(&fftPlanFor(ny)), planZ_(&fftPlanFor(nz))
{
    require(nx >= 1 && ny >= 1 && nz >= 1, "fft grid dims must be positive");
}

/**
 * Each axis pass transforms its batch of independent 1-D lines in
 * parallel; a line is read and written only by the slice that owns it
 * and the passes are separated by the pool's region barrier, so the
 * result is bitwise identical at any thread count.
 */
void
Fft3d::transform(std::vector<Complex> &data, int sign) const
{
    ensure(data.size() == size(), "fft3d data size mismatch");
    ThreadPool &pool = ThreadPool::global();
    Complex *grid = data.data();
    const std::size_t nx = static_cast<std::size_t>(nx_);
    const std::size_t ny = static_cast<std::size_t>(ny_);
    const std::size_t nz = static_cast<std::size_t>(nz_);
    counterAdd(Counter::KspaceFft1dLines, ny * nz + nx * nz + nx * ny);

    // X axis: contiguous rows, line r covers z = r / ny, y = r % ny.
    pool.parallelFor(0, ny * nz, 1,
                     [&](std::size_t begin, std::size_t end, int) {
                         std::vector<Complex> scratch(nx);
                         for (std::size_t r = begin; r < end; ++r)
                             planX_->execute(grid + r * nx, sign,
                                             scratch.data());
                     });

    // Y axis: strided columns, line r covers z = r / nx, x = r % nx.
    pool.parallelFor(0, nx * nz, 1,
                     [&](std::size_t begin, std::size_t end, int) {
                         std::vector<Complex> line(ny);
                         std::vector<Complex> scratch(ny);
                         for (std::size_t r = begin; r < end; ++r) {
                             const std::size_t z = r / nx;
                             const std::size_t x = r % nx;
                             Complex *base = grid + z * ny * nx + x;
                             for (std::size_t y = 0; y < ny; ++y)
                                 line[y] = base[y * nx];
                             planY_->execute(line.data(), sign,
                                             scratch.data());
                             for (std::size_t y = 0; y < ny; ++y)
                                 base[y * nx] = line[y];
                         }
                     });

    // Z axis: strided columns, line r covers y = r / nx, x = r % nx.
    pool.parallelFor(0, nx * ny, 1,
                     [&](std::size_t begin, std::size_t end, int) {
                         std::vector<Complex> line(nz);
                         std::vector<Complex> scratch(nz);
                         for (std::size_t r = begin; r < end; ++r) {
                             Complex *base = grid + r;
                             for (std::size_t z = 0; z < nz; ++z)
                                 line[z] = base[z * ny * nx];
                             planZ_->execute(line.data(), sign,
                                             scratch.data());
                             for (std::size_t z = 0; z < nz; ++z)
                                 base[z * ny * nx] = line[z];
                         }
                     });
}

void
Fft3d::forward(std::vector<Complex> &data) const
{
    TraceScope trace("kspace", "fft_forward");
    counterAdd(Counter::KspaceFfts);
    transform(data, -1);
}

void
Fft3d::inverse(std::vector<Complex> &data) const
{
    TraceScope trace("kspace", "fft_inverse");
    counterAdd(Counter::KspaceFfts);
    transform(data, 1);
    const double norm = 1.0 / static_cast<double>(size());
    Complex *grid = data.data();
    ThreadPool::global().parallelFor(
        0, data.size(), 4096,
        [&](std::size_t begin, std::size_t end, int) {
            for (std::size_t i = begin; i < end; ++i)
                grid[i] *= norm;
        });
}

} // namespace mdbench
