#include "util/table.h"

#include <algorithm>

#include "util/error.h"

namespace mdbench {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    require(!headers_.empty(), "Table needs at least one column");
}

void
Table::addRow(std::vector<std::string> cells)
{
    require(cells.size() == headers_.size(),
            "Table row width does not match header width");
    rows_.push_back(std::move(cells));
}

void
Table::printAscii(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto printRow = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << (c == 0 ? "| " : " | ");
            os << row[c];
            os << std::string(widths[c] - row[c].size(), ' ');
        }
        os << " |\n";
    };
    auto printRule = [&]() {
        for (std::size_t c = 0; c < widths.size(); ++c) {
            os << (c == 0 ? "+-" : "-+-");
            os << std::string(widths[c], '-');
        }
        os << "-+\n";
    };

    printRule();
    printRow(headers_);
    printRule();
    for (const auto &row : rows_)
        printRow(row);
    printRule();
}

void
Table::printCsv(std::ostream &os) const
{
    auto escape = [](const std::string &cell) {
        if (cell.find_first_of(",\"\n") == std::string::npos)
            return cell;
        std::string out = "\"";
        for (char ch : cell) {
            if (ch == '"')
                out += '"';
            out += ch;
        }
        out += '"';
        return out;
    };
    auto printRow = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c)
                os << ',';
            os << escape(row[c]);
        }
        os << '\n';
    };
    printRow(headers_);
    for (const auto &row : rows_)
        printRow(row);
}

} // namespace mdbench
