/**
 * @file
 * Floating-point precision policy for the native compute path.
 *
 * Three tiers (the paper's Section 8 study, made real):
 *
 *  - double: all arithmetic and accumulation in double. The seed
 *    behavior; bitwise-stable against the scalar oracle kernels.
 *  - mixed:  float coordinates/charges and per-pair force arithmetic,
 *    double accumulation of per-atom forces, energies and virials
 *    (the Trott et al. production design, arXiv 1009.4330).
 *  - single: float arithmetic and float row accumulation; per-atom
 *    storage remains double (one widening store per row).
 *
 * The active tier is a process-wide knob mirroring the SIMD width
 * knob in util/simd.h: `MDBENCH_PRECISION` sets the default,
 * `setPrecisionTier()` overrides it at runtime, and kernels template
 * themselves on one of the policy structs below.
 */

#ifndef MDBENCH_UTIL_PRECISION_H
#define MDBENCH_UTIL_PRECISION_H

namespace mdbench {

/**
 * Floating-point precision modes of the Section 8 study.
 *
 * `EngineDefault` is a request sentinel only ("inherit the engine
 * default"), used by ExperimentSpec; the active tier resolved by
 * precisionTier() is always one of the three concrete tiers.
 */
enum class Precision { Mixed = 0, Single, Double, EngineDefault };

/** Lowercase tier name ("mixed", "single", "double", "default"). */
const char *precisionName(Precision precision);

/**
 * Parse a tier name ("double" | "mixed" | "single", plus "default"
 * for the EngineDefault sentinel). Returns false on unknown text.
 */
bool parsePrecision(const char *text, Precision &out);

/**
 * Default tier from `MDBENCH_PRECISION` (double | mixed | single).
 * Unset or unparseable means Precision::Double: the native engine
 * computes in full double unless explicitly asked otherwise.
 */
Precision defaultPrecisionTier();

/** The active tier: the override if set, else defaultPrecisionTier(). */
Precision precisionTier();

/**
 * Override the active tier for subsequent force computations and
 * neighbor packings. Pass Precision::EngineDefault to clear the
 * override and fall back to the environment default.
 */
void setPrecisionTier(Precision precision);

/**
 * Kernel precision policies. `real` is the type of per-pair
 * arithmetic (coordinates, distances, coefficient math); `acc` is the
 * type of row-level energy/virial accumulation. Per-atom force
 * storage is always double — float tiers widen once per atom row.
 */
struct PrecisionDouble
{
    using real = double;
    using acc = double;
    static constexpr Precision kTier = Precision::Double;
};

struct PrecisionMixed
{
    using real = float;
    using acc = double;
    static constexpr Precision kTier = Precision::Mixed;
};

struct PrecisionSingle
{
    using real = float;
    using acc = float;
    static constexpr Precision kTier = Precision::Single;
};

} // namespace mdbench

#endif // MDBENCH_UTIL_PRECISION_H
