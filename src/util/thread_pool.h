/**
 * @file
 * Shared-memory parallel execution layer: a persistent worker pool with
 * static-chunked parallelFor, plus the per-slice scratch buffers the
 * force kernels use for deterministic reductions.
 *
 * Determinism contract: parallelFor partitions a range into *slices*
 * whose count and boundaries depend only on (range, grain) — never on
 * the number of worker threads. A kernel that accumulates into
 * per-slice buffers and folds them in ascending slice order therefore
 * produces bitwise-identical results at any thread count (slices are
 * merely *scheduled* onto threads; the summation tree is fixed).
 */

#ifndef MDBENCH_UTIL_THREAD_POOL_H
#define MDBENCH_UTIL_THREAD_POOL_H

#include <algorithm>
#include <array>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mdbench {

/**
 * Fixed partition of [begin, end) into at most kMaxSlices contiguous
 * slices of at least @p grain elements each. The partition is a pure
 * function of (begin, end, grain) so reduction trees built over slices
 * are independent of the executing thread count.
 */
class SliceRange
{
  public:
    /** Upper bound on slices per range (bounds reduction scratch). */
    static constexpr int kMaxSlices = 64;

    SliceRange(std::size_t begin, std::size_t end, std::size_t grain);

    /** Number of slices (0 only for an empty range). */
    int count() const { return count_; }

    /** First element of slice @p s. */
    std::size_t
    begin(int s) const
    {
        return begin_ + range_ * static_cast<std::size_t>(s) /
                            static_cast<std::size_t>(count_);
    }

    /** One past the last element of slice @p s. */
    std::size_t
    end(int s) const
    {
        return begin_ + range_ * (static_cast<std::size_t>(s) + 1) /
                            static_cast<std::size_t>(count_);
    }

  private:
    std::size_t begin_ = 0;
    std::size_t range_ = 0;
    int count_ = 0;
};

/**
 * Persistent worker pool. Workers park on a condition variable between
 * parallel regions; no thread is spawned per call. The calling thread
 * participates in the work, so a pool of size 1 executes inline with no
 * synchronization at all.
 *
 * The process-wide pool is reached through global()/setThreads(); the
 * default size comes from the MDBENCH_THREADS environment variable or,
 * absent that, std::thread::hardware_concurrency().
 */
class ThreadPool
{
  public:
    using SliceFn = std::function<void(std::size_t, std::size_t, int)>;

    /** @param nthreads Total threads including the caller (0 = default). */
    explicit ThreadPool(int nthreads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Total executing threads (caller + workers), always >= 1. */
    int size() const { return nthreads_; }

    /** Re-size the pool (joins or spawns workers as needed; 0 = default). */
    void resize(int nthreads);

    /**
     * Run @p fn(sliceBegin, sliceEnd, sliceIndex) over every slice of
     * the fixed partition of [begin, end) with the given grain. Slices
     * are claimed dynamically by the participating threads; the call
     * returns when all slices have completed. The first exception thrown
     * by @p fn is rethrown on the calling thread (remaining slices are
     * skipped). Calls from inside a parallel region execute inline.
     */
    void parallelFor(std::size_t begin, std::size_t end, std::size_t grain,
                     const SliceFn &fn);

    /** Same, over an existing partition (for kernels that size scratch). */
    void run(const SliceRange &slices, const SliceFn &fn);

    /**
     * Observability bracket for a region a templated caller executes
     * inline (runAndReduce's serial path): counts the region and its
     * slices and emits the same "pool" trace scope run() would, while
     * the kernel call itself stays a direct template call — routing
     * through run()'s SliceFn would block inlining of the hot kernels.
     */
    class InlineRegionScope
    {
      public:
        explicit InlineRegionScope(int slices) noexcept;
        ~InlineRegionScope() noexcept;

        InlineRegionScope(const InlineRegionScope &) = delete;
        InlineRegionScope &operator=(const InlineRegionScope &) = delete;

      private:
        bool traced_ = false;
    };

    // -- process-wide pool -------------------------------------------------

    /** The shared pool used by the MD kernels. */
    static ThreadPool &global();

    /** Resize the shared pool (0 restores the environment default). */
    static void setThreads(int nthreads);

    /** Current size of the shared pool. */
    static int threads();

  private:
    void workerLoop();
    void runSlices(const SliceRange &slices, const SliceFn &fn,
                   std::uint64_t generation);

    std::vector<std::thread> workers_;
    int nthreads_ = 1;

    std::mutex mutex_;
    std::condition_variable wake_;
    std::condition_variable done_;
    bool stop_ = false;
    std::uint64_t generation_ = 0;

    // State of the in-flight parallel region.
    SliceRange jobSlices_{0, 0, 1};
    const SliceFn *fn_ = nullptr;

    /**
     * Slice-claim word: generation in the high 32 bits, next unclaimed
     * slice index in the low 32. Claiming compare-exchanges the whole
     * word, so a worker that woke up for an earlier region (its copied
     * generation no longer matches) can never claim a slice of — and
     * then run a dangling function pointer against — a region that
     * started after it read fn_. With back-to-back short regions and an
     * oversubscribed pool that stale-claim window is hit in practice.
     */
    std::atomic<std::uint64_t> claim_{0};
    int pendingSlices_ = 0;
    std::exception_ptr firstError_;
};

/**
 * Per-slice scalar partial sums folded in ascending slice order — the
 * deterministic-reduction idiom for energies/virials/charge sums, named
 * (kernels were open-coding a kMaxSlices array + fold loop each).
 *
 * The kernel writes partial s from the slice that executes it; fold()
 * adds the partials in ascending slice index, so the summation tree
 * depends only on the SliceRange partition, never on the thread count.
 */
template <typename T>
class SlicePartials
{
  public:
    /** Partial owned by slice @p s (zero-initialized). */
    T &operator[](int s) { return parts_[static_cast<std::size_t>(s)]; }

    /** total + partials of @p slices, added in ascending slice order. */
    T
    fold(const SliceRange &slices, T total = T{}) const
    {
        for (int s = 0; s < slices.count(); ++s)
            total += parts_[static_cast<std::size_t>(s)];
        return total;
    }

  private:
    std::array<T, SliceRange::kMaxSlices> parts_{};
};

/**
 * Per-slice accumulation buffers for deterministic force/density
 * reductions over half neighbor lists.
 *
 * Usage: hand the sliced kernel to runAndReduce(), routing every
 * accumulation through the Accumulator handle it receives; the folds
 * into the destination array happen in ascending slice order and
 * re-zero the buffers as they go (fused, so a buffer is touched once
 * per step). Buffers persist across calls to amortize allocation.
 *
 * Each write marks its 64-entry block in a per-buffer byte map, and the
 * folds skip unmarked blocks. Atom indices are spatially coherent, so a
 * slice touches only entries near its own index range plus a few ghost
 * patches — skipping the rest is what keeps the scratch scheme cheap.
 * The touched pattern is a pure function of the slice partition, never
 * of the thread count, so the folds remain bitwise reproducible.
 */
template <typename T>
class ReduceScratch
{
  public:
    /** log2 of the touched-block granularity in entries. */
    static constexpr std::size_t kBlockShift = 6;
    static constexpr std::size_t kBlock = std::size_t{1} << kBlockShift;

    /** Touched-block flag. Deliberately not a char type: a store
     * through (unsigned) char may alias any object, which would force
     * the kernels to reload their hoisted pointers after every mark. */
    enum class Mark : std::uint8_t { clear = 0, set = 1 };

    /** Writer handle for one buffer: marks the block of every entry it
     * hands out so the folds can skip untouched blocks. */
    class Accumulator
    {
      public:
        Accumulator() = default;
        Accumulator(T *data, Mark *touched) : data_(data), touched_(touched)
        {
        }

        T &
        at(std::size_t j)
        {
            touched_[j >> kBlockShift] = Mark::set;
            return data_[j];
        }

      private:
        T *data_ = nullptr;
        Mark *touched_ = nullptr;
    };

    /** Ensure @p count zeroed buffers of @p n entries each. */
    void
    prepare(int count, std::size_t n)
    {
        if (buffers_.size() < static_cast<std::size_t>(count))
            buffers_.resize(count);
        const std::size_t nblocks = blockCount(n);
        for (int s = 0; s < count; ++s) {
            auto &buffer = buffers_[static_cast<std::size_t>(s)];
            // reduceAndClear re-zeroes buffers as it folds them, so a
            // clean buffer of the right size needs no touch here.
            if (buffer.data.size() != n || dirty_) {
                buffer.data.assign(n, T{});
                buffer.touched.assign(nblocks, Mark::clear);
            }
        }
        n_ = n;
        dirty_ = true;
    }

    /** Writer handle for buffer @p s. */
    Accumulator
    acc(int s)
    {
        auto &buffer = buffers_[static_cast<std::size_t>(s)];
        return Accumulator(buffer.data.data(), buffer.touched.data());
    }

    /**
     * Run @p fn(sliceBegin, sliceEnd, slice, buffer) over every slice
     * and fold the scratch into @p dst. The kernel routes every
     * cross-slice accumulation through acc(buffer).
     *
     * Serially a single buffer serves every slice and is folded right
     * after each slice finishes, while its working set is still
     * cache-hot; in parallel each slice gets a private buffer and the
     * fold happens once at the end. Per destination element both
     * orders compute dst += P_0 + P_1 + ... over the per-slice partial
     * sums in ascending slice order, so the two paths are bitwise
     * identical at any thread count.
     */
    template <typename Fn>
    void
    runAndReduce(ThreadPool &pool, const SliceRange &slices, std::size_t n,
                 T *dst, Fn &&fn)
    {
        if (pool.size() == 1) {
            prepare(1, n);
            ThreadPool::InlineRegionScope obs(slices.count());
            for (int s = 0; s < slices.count(); ++s) {
                fn(slices.begin(s), slices.end(s), s, 0);
                foldBuffer(dst, 0, 0, blockCount(n_));
            }
            dirty_ = false;
        } else {
            prepare(slices.count(), n);
            pool.run(slices,
                     [&](std::size_t begin, std::size_t end, int s) {
                         fn(begin, end, s, s);
                     });
            reduceAndClear(dst, slices, pool);
        }
    }

    /**
     * dst[j] += sum over slices s (ascending) of buffer(s)[j], zeroing
     * buffers and touched marks as they are read. @p slices must be the
     * partition the accumulation ran over.
     */
    void
    reduceAndClear(T *dst, const SliceRange &slices)
    {
        foldBlocks(dst, slices, 0, blockCount(n_));
        dirty_ = false;
    }

    /**
     * Parallel variant: each thread folds a disjoint block range, every
     * destination entry over ascending slice index, so the result is
     * bitwise identical to the serial overload regardless of how blocks
     * are chunked across threads.
     */
    void
    reduceAndClear(T *dst, const SliceRange &slices, ThreadPool &pool)
    {
        pool.parallelFor(0, blockCount(n_), 64,
                         [&](std::size_t b0, std::size_t b1, int) {
                             foldBlocks(dst, slices, b0, b1);
                         });
        dirty_ = false;
    }

  private:
    struct SliceBuffer
    {
        std::vector<T> data;
        std::vector<Mark> touched;
    };

    static std::size_t
    blockCount(std::size_t n)
    {
        return (n + kBlock - 1) >> kBlockShift;
    }

    void
    foldBlocks(T *dst, const SliceRange &slices, std::size_t b0,
               std::size_t b1)
    {
        for (int s = 0; s < slices.count(); ++s)
            foldBuffer(dst, s, b0, b1);
    }

    /** dst[j] += buffer(s)[j] over the touched blocks in [b0, b1),
     * zeroing entries and marks as they are read. */
    void
    foldBuffer(T *dst, int s, std::size_t b0, std::size_t b1)
    {
        auto &buffer = buffers_[static_cast<std::size_t>(s)];
        T *buf = buffer.data.data();
        for (std::size_t b = b0; b < b1; ++b) {
            if (buffer.touched[b] == Mark::clear)
                continue;
            buffer.touched[b] = Mark::clear;
            const std::size_t j1 = std::min(n_, (b + 1) << kBlockShift);
            for (std::size_t j = b << kBlockShift; j < j1; ++j) {
                dst[j] += buf[j];
                buf[j] = T{};
            }
        }
    }

    std::vector<SliceBuffer> buffers_;
    std::size_t n_ = 0;
    bool dirty_ = false;
};

} // namespace mdbench

#endif // MDBENCH_UTIL_THREAD_POOL_H
