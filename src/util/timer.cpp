#include "util/timer.h"

#include "util/error.h"

namespace mdbench {

const char *
taskName(Task task)
{
    switch (task) {
      case Task::Bond:   return "Bond";
      case Task::Comm:   return "Comm";
      case Task::Kspace: return "Kspace";
      case Task::Modify: return "Modify";
      case Task::Neigh:  return "Neigh";
      case Task::Output: return "Output";
      case Task::Pair:   return "Pair";
      case Task::Other:  return "Other";
      default: panic("invalid Task enumerator");
    }
}

void
TaskTimer::reset()
{
    acc_.fill(0.0);
    depth_ = 0;
}

void
TaskTimer::start(Task task)
{
    ensure(depth_ < kMaxNesting, "TaskTimer::start nested too deeply");
    // Exclusive semantics: charge the suspended task up to this point
    // so nested intervals are never counted twice.
    if (depth_ > 0)
        acc_[static_cast<std::size_t>(stack_[depth_ - 1])] +=
            running_.seconds();
    stack_[depth_++] = task;
    running_.reset();
}

void
TaskTimer::stop()
{
    ensure(depth_ > 0, "TaskTimer::stop without a running task");
    acc_[static_cast<std::size_t>(stack_[--depth_])] += running_.seconds();
    running_.reset(); // the parent task resumes accumulating from here
}

void
TaskTimer::add(Task task, double seconds)
{
    ensure(seconds >= 0.0, "cannot charge negative time");
    acc_[static_cast<std::size_t>(task)] += seconds;
}

double
TaskTimer::seconds(Task task) const
{
    return acc_[static_cast<std::size_t>(task)];
}

double
TaskTimer::total() const
{
    double sum = 0.0;
    for (double s : acc_)
        sum += s;
    return sum;
}

double
TaskTimer::fraction(Task task) const
{
    const double t = total();
    return t > 0.0 ? seconds(task) / t : 0.0;
}

void
TaskTimer::merge(const TaskTimer &other)
{
    for (std::size_t i = 0; i < kNumTasks; ++i)
        acc_[i] += other.acc_[i];
}

} // namespace mdbench
