#include "util/thread_pool.h"

#include <algorithm>
#include <cstdlib>

#include "obs/counters.h"
#include "obs/trace.h"

namespace mdbench {

namespace {

/** True on any thread currently executing inside a parallel region. */
thread_local bool tlInParallelRegion = false;

int
defaultThreadCount()
{
    if (const char *env = std::getenv("MDBENCH_THREADS")) {
        const int n = std::atoi(env);
        if (n >= 1)
            return n;
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw >= 1 ? static_cast<int>(hw) : 1;
}

} // namespace

SliceRange::SliceRange(std::size_t begin, std::size_t end, std::size_t grain)
    : begin_(begin), range_(end > begin ? end - begin : 0)
{
    if (range_ == 0) {
        count_ = 0;
        return;
    }
    const std::size_t g = std::max<std::size_t>(grain, 1);
    // At least `grain` elements per slice, at most kMaxSlices slices.
    count_ = static_cast<int>(
        std::min<std::size_t>(std::max<std::size_t>(range_ / g, 1),
                              static_cast<std::size_t>(kMaxSlices)));
}

ThreadPool::ThreadPool(int nthreads)
{
    resize(nthreads);
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    wake_.notify_all();
    for (auto &worker : workers_)
        worker.join();
}

void
ThreadPool::resize(int nthreads)
{
    if (nthreads <= 0)
        nthreads = defaultThreadCount();
    if (nthreads == nthreads_ && nthreads_ == 1 + static_cast<int>(workers_.size()))
        return;

    // Join the existing crew, then (re)hire.
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    wake_.notify_all();
    for (auto &worker : workers_)
        worker.join();
    workers_.clear();

    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = false;
        nthreads_ = nthreads;
    }
    workers_.reserve(static_cast<std::size_t>(nthreads - 1));
    for (int t = 1; t < nthreads; ++t)
        workers_.emplace_back([this] { workerLoop(); });
}

void
ThreadPool::workerLoop()
{
    std::uint64_t seenGeneration = 0;
    for (;;) {
        SliceRange slices(0, 0, 1);
        const SliceFn *fn = nullptr;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock, [&] {
                return stop_ || generation_ != seenGeneration;
            });
            if (stop_)
                return;
            seenGeneration = generation_;
            // A stale wakeup can land after the region already drained
            // and the caller tore it down; there is nothing to do then.
            if (fn_ == nullptr)
                continue;
            slices = jobSlices_; // by value: outlives the caller's copy
            fn = fn_;
        }
        // Dereferencing fn is safe even if the region completes
        // concurrently: claiming a valid slice keeps pendingSlices_
        // above zero until this thread's own decrement, and an
        // exhausted claim never touches fn.
        runSlices(slices, *fn);
    }
}

void
ThreadPool::runSlices(const SliceRange &slices, const SliceFn &fn)
{
    // One scope per participating thread per region, so a trace shows
    // which thread worked (and stalled) in every parallel region.
    TraceScope trace("pool", "slices");
    tlInParallelRegion = true;
    int completed = 0;
    std::exception_ptr error;
    for (;;) {
        const int s = nextSlice_.fetch_add(1, std::memory_order_relaxed);
        if (s >= slices.count())
            break;
        if (!error) {
            try {
                fn(slices.begin(s), slices.end(s), s);
            } catch (...) {
                // Record and drain the remaining slices without running
                // them, so the region still terminates promptly.
                error = std::current_exception();
            }
        }
        ++completed;
    }
    tlInParallelRegion = false;
    counterAdd(Counter::PoolSlices, static_cast<std::uint64_t>(completed));

    std::lock_guard<std::mutex> lock(mutex_);
    if (error && !firstError_)
        firstError_ = error;
    pendingSlices_ -= completed;
    if (pendingSlices_ == 0)
        done_.notify_all();
}

void
ThreadPool::run(const SliceRange &slices, const SliceFn &fn)
{
    if (slices.count() == 0)
        return;
    counterAdd(Counter::PoolRegions);
    // Inline execution: single-threaded pools, single-slice ranges, and
    // nested calls from inside a region (workers must not block on
    // their own pool).
    if (nthreads_ == 1 || slices.count() == 1 || tlInParallelRegion) {
        TraceScope trace("pool", "region_inline");
        counterAdd(Counter::PoolSlices,
                   static_cast<std::uint64_t>(slices.count()));
        for (int s = 0; s < slices.count(); ++s)
            fn(slices.begin(s), slices.end(s), s);
        return;
    }

    TraceScope trace("pool", "region");
    {
        std::lock_guard<std::mutex> lock(mutex_);
        jobSlices_ = slices;
        fn_ = &fn;
        nextSlice_.store(0, std::memory_order_relaxed);
        pendingSlices_ = slices.count();
        firstError_ = nullptr;
        ++generation_;
    }
    wake_.notify_all();

    // The caller is thread 0 of the crew.
    runSlices(slices, fn);

    std::exception_ptr error;
    {
        std::unique_lock<std::mutex> lock(mutex_);
        done_.wait(lock, [&] { return pendingSlices_ == 0; });
        fn_ = nullptr;
        error = firstError_;
        firstError_ = nullptr;
    }
    if (error)
        std::rethrow_exception(error);
}

void
ThreadPool::parallelFor(std::size_t begin, std::size_t end, std::size_t grain,
                        const SliceFn &fn)
{
    run(SliceRange(begin, end, grain), fn);
}

ThreadPool &
ThreadPool::global()
{
    static ThreadPool pool;
    return pool;
}

void
ThreadPool::setThreads(int nthreads)
{
    global().resize(nthreads);
}

int
ThreadPool::threads()
{
    return global().size();
}

ThreadPool::InlineRegionScope::InlineRegionScope(int slices) noexcept
{
    counterAdd(Counter::PoolRegions);
    counterAdd(Counter::PoolSlices, static_cast<std::uint64_t>(slices));
    if (traceEnabled()) {
        traced_ = true;
        traceBegin("pool", "region_inline");
    }
}

ThreadPool::InlineRegionScope::~InlineRegionScope() noexcept
{
    if (traced_)
        traceEnd("pool", "region_inline");
}

} // namespace mdbench
