#include "util/thread_pool.h"

#include <algorithm>
#include <cstdlib>

#include "obs/counters.h"
#include "obs/trace.h"

namespace mdbench {

namespace {

/** True on any thread currently executing inside a parallel region. */
thread_local bool tlInParallelRegion = false;

int
defaultThreadCount()
{
    if (const char *env = std::getenv("MDBENCH_THREADS")) {
        const int n = std::atoi(env);
        if (n >= 1)
            return n;
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw >= 1 ? static_cast<int>(hw) : 1;
}

} // namespace

SliceRange::SliceRange(std::size_t begin, std::size_t end, std::size_t grain)
    : begin_(begin), range_(end > begin ? end - begin : 0)
{
    if (range_ == 0) {
        count_ = 0;
        return;
    }
    const std::size_t g = std::max<std::size_t>(grain, 1);
    // At least `grain` elements per slice, at most kMaxSlices slices.
    count_ = static_cast<int>(
        std::min<std::size_t>(std::max<std::size_t>(range_ / g, 1),
                              static_cast<std::size_t>(kMaxSlices)));
}

ThreadPool::ThreadPool(int nthreads)
{
    resize(nthreads);
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    wake_.notify_all();
    for (auto &worker : workers_)
        worker.join();
}

void
ThreadPool::resize(int nthreads)
{
    if (nthreads <= 0)
        nthreads = defaultThreadCount();
    if (nthreads == nthreads_ && nthreads_ == 1 + static_cast<int>(workers_.size()))
        return;

    // Join the existing crew, then (re)hire.
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    wake_.notify_all();
    for (auto &worker : workers_)
        worker.join();
    workers_.clear();

    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = false;
        nthreads_ = nthreads;
    }
    workers_.reserve(static_cast<std::size_t>(nthreads - 1));
    for (int t = 1; t < nthreads; ++t)
        workers_.emplace_back([this] { workerLoop(); });
}

void
ThreadPool::workerLoop()
{
    std::uint64_t seenGeneration = 0;
    for (;;) {
        SliceRange slices(0, 0, 1);
        const SliceFn *fn = nullptr;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock, [&] {
                return stop_ || generation_ != seenGeneration;
            });
            if (stop_)
                return;
            seenGeneration = generation_;
            // A stale wakeup can land after the region already drained
            // and the caller tore it down; there is nothing to do then.
            if (fn_ == nullptr)
                continue;
            slices = jobSlices_; // by value: outlives the caller's copy
            fn = fn_;
        }
        // Dereferencing fn is safe even if the region completes
        // concurrently: claims are generation-tagged (see claim_), so
        // this thread either claims a slice of generation
        // seenGeneration — keeping pendingSlices_ above zero and the
        // caller (whose frame owns the function object) blocked until
        // this thread's own decrement — or touches neither fn nor the
        // region's accounting.
        runSlices(slices, *fn, seenGeneration);
    }
}

void
ThreadPool::runSlices(const SliceRange &slices, const SliceFn &fn,
                      std::uint64_t generation)
{
    tlInParallelRegion = true;
    int completed = 0;
    std::exception_ptr error;
    bool traced = false;
    std::uint64_t claim = claim_.load(std::memory_order_relaxed);
    for (;;) {
        // Claim the next slice only while the claim word still belongs
        // to our region; a single compare-exchange makes the
        // generation check and the claim atomic.
        if ((claim >> 32) != (generation & 0xffffffffu))
            break;
        const int s = static_cast<int>(claim & 0xffffffffu);
        if (s >= slices.count())
            break;
        if (!claim_.compare_exchange_weak(claim, claim + 1,
                                          std::memory_order_relaxed))
            continue; // claim reloaded; maybe another slice, maybe done
        // One scope per thread that claimed work, so a trace shows
        // which threads carried every region. Opened only after a
        // successful claim and closed before the accounting flush
        // below, so every ring write of a pool thread is ordered
        // before the caller can leave the region (and a stale-woken
        // thread that claimed nothing writes no events at all).
        if (!traced && traceEnabled()) {
            traced = true;
            traceBegin("pool", "slices");
        }
        if (!error) {
            try {
                fn(slices.begin(s), slices.end(s), s);
            } catch (...) {
                // Record and drain the remaining slices without running
                // them, so the region still terminates promptly.
                error = std::current_exception();
            }
        }
        ++completed;
        claim = claim_.load(std::memory_order_relaxed);
    }
    tlInParallelRegion = false;
    if (traced)
        traceEnd("pool", "slices");
    if (completed == 0) {
        // No claims (errors only arise from claimed slices): this
        // region's accounting is none of our business — and with a
        // stale generation, the region may already be torn down.
        return;
    }
    counterAdd(Counter::PoolSlices, static_cast<std::uint64_t>(completed));

    std::lock_guard<std::mutex> lock(mutex_);
    if (error && !firstError_)
        firstError_ = error;
    pendingSlices_ -= completed;
    if (pendingSlices_ == 0)
        done_.notify_all();
}

void
ThreadPool::run(const SliceRange &slices, const SliceFn &fn)
{
    if (slices.count() == 0)
        return;
    counterAdd(Counter::PoolRegions);
    // Inline execution: single-threaded pools, single-slice ranges, and
    // nested calls from inside a region (workers must not block on
    // their own pool).
    if (nthreads_ == 1 || slices.count() == 1 || tlInParallelRegion) {
        TraceScope trace("pool", "region_inline");
        counterAdd(Counter::PoolSlices,
                   static_cast<std::uint64_t>(slices.count()));
        for (int s = 0; s < slices.count(); ++s)
            fn(slices.begin(s), slices.end(s), s);
        return;
    }

    TraceScope trace("pool", "region");
    std::uint64_t generation;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        jobSlices_ = slices;
        fn_ = &fn;
        pendingSlices_ = slices.count();
        firstError_ = nullptr;
        generation = ++generation_;
        claim_.store((generation & 0xffffffffu) << 32,
                     std::memory_order_relaxed);
    }
    wake_.notify_all();

    // The caller is thread 0 of the crew.
    runSlices(slices, fn, generation);

    std::exception_ptr error;
    {
        std::unique_lock<std::mutex> lock(mutex_);
        done_.wait(lock, [&] { return pendingSlices_ == 0; });
        fn_ = nullptr;
        error = firstError_;
        firstError_ = nullptr;
    }
    if (error)
        std::rethrow_exception(error);
}

void
ThreadPool::parallelFor(std::size_t begin, std::size_t end, std::size_t grain,
                        const SliceFn &fn)
{
    run(SliceRange(begin, end, grain), fn);
}

ThreadPool &
ThreadPool::global()
{
    static ThreadPool pool;
    return pool;
}

void
ThreadPool::setThreads(int nthreads)
{
    global().resize(nthreads);
}

int
ThreadPool::threads()
{
    return global().size();
}

ThreadPool::InlineRegionScope::InlineRegionScope(int slices) noexcept
{
    counterAdd(Counter::PoolRegions);
    counterAdd(Counter::PoolSlices, static_cast<std::uint64_t>(slices));
    if (traceEnabled()) {
        traced_ = true;
        traceBegin("pool", "region_inline");
    }
}

ThreadPool::InlineRegionScope::~InlineRegionScope() noexcept
{
    if (traced_)
        traceEnd("pool", "region_inline");
}

} // namespace mdbench
