/**
 * @file
 * Streaming statistics accumulators used by the characterization harness.
 */

#ifndef MDBENCH_UTIL_STATS_H
#define MDBENCH_UTIL_STATS_H

#include <cstddef>
#include <limits>
#include <vector>

namespace mdbench {

/**
 * Welford-style running mean/variance with min/max tracking.
 */
class RunningStat
{
  public:
    /** Add one sample. */
    void push(double x);

    /** Number of samples so far. */
    std::size_t count() const { return n_; }

    /** Sample mean (0 when empty). */
    double mean() const { return mean_; }

    /** Unbiased sample variance (0 with < 2 samples). */
    double variance() const;

    /** Square root of variance(). */
    double stddev() const;

    /** Smallest sample (+inf when empty). */
    double min() const { return min_; }

    /** Largest sample (-inf when empty). */
    double max() const { return max_; }

    /** Sum of all samples. */
    double sum() const { return sum_; }

    /** Forget all samples. */
    void reset();

  private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double sum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/**
 * Load-imbalance metrics over a set of per-rank values (e.g. busy times).
 *
 * imbalancePercent mirrors the VTune-style metric the paper plots in
 * Figure 4 (bottom): the average idle fraction implied by ranks waiting
 * for the slowest one.
 */
struct Imbalance
{
    double max = 0.0;   ///< slowest rank's value
    double mean = 0.0;  ///< average over ranks
    double min = 0.0;   ///< fastest rank's value

    /** (max - mean) / max * 100; 0 when max == 0. */
    double imbalancePercent() const;

    /** Compute metrics from a vector of per-rank values. */
    static Imbalance fromSamples(const std::vector<double> &values);
};

} // namespace mdbench

#endif // MDBENCH_UTIL_STATS_H
