#include "util/logging.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace mdbench {

namespace {

LogLevel
environmentLevel()
{
    if (const char *env = std::getenv("MDBENCH_LOG_LEVEL")) {
        if (const auto level = parseLogLevel(env))
            return *level;
        std::fprintf(stderr,
                     "warn: ignoring invalid MDBENCH_LOG_LEVEL '%s' "
                     "(want silent|warn|inform|debug or 0-3)\n",
                     env);
    }
    return LogLevel::Warn;
}

/** Function-local static so the env read happens on first use. */
LogLevel &
levelRef()
{
    static LogLevel level = environmentLevel();
    return level;
}

} // namespace

void
setLogLevel(LogLevel level)
{
    levelRef() = level;
}

LogLevel
logLevel()
{
    return levelRef();
}

std::optional<LogLevel>
parseLogLevel(const std::string &text)
{
    std::string lower;
    lower.reserve(text.size());
    for (char c : text)
        lower += static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    if (lower == "silent" || lower == "0")
        return LogLevel::Silent;
    if (lower == "warn" || lower == "1")
        return LogLevel::Warn;
    if (lower == "inform" || lower == "2")
        return LogLevel::Inform;
    if (lower == "debug" || lower == "3")
        return LogLevel::Debug;
    return std::nullopt;
}

LogLevel
refreshLogLevelFromEnvironment()
{
    levelRef() = environmentLevel();
    return levelRef();
}

void
inform(const std::string &msg)
{
    if (logLevel() >= LogLevel::Inform)
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

void
warn(const std::string &msg)
{
    if (logLevel() >= LogLevel::Warn)
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
debugLog(const std::string &msg)
{
    if (logLevel() >= LogLevel::Debug)
        std::fprintf(stderr, "debug: %s\n", msg.c_str());
}

} // namespace mdbench
