#include "util/logging.h"

#include <cstdio>

namespace mdbench {

namespace {
LogLevel gLevel = LogLevel::Warn;
} // namespace

void
setLogLevel(LogLevel level)
{
    gLevel = level;
}

LogLevel
logLevel()
{
    return gLevel;
}

void
inform(const std::string &msg)
{
    if (gLevel >= LogLevel::Inform)
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

void
warn(const std::string &msg)
{
    if (gLevel >= LogLevel::Warn)
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
debugLog(const std::string &msg)
{
    if (gLevel >= LogLevel::Debug)
        std::fprintf(stderr, "debug: %s\n", msg.c_str());
}

} // namespace mdbench
