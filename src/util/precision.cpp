#include "util/precision.h"

#include <cstdlib>
#include <cstring>

#include "util/error.h"

namespace mdbench {

namespace {

// Precision::EngineDefault means "no override": fall back to the
// MDBENCH_PRECISION environment default (itself defaulting to double).
Precision overrideTier = Precision::EngineDefault;

} // namespace

const char *
precisionName(Precision precision)
{
    switch (precision) {
      case Precision::Mixed:  return "mixed";
      case Precision::Single: return "single";
      case Precision::Double: return "double";
      case Precision::EngineDefault: return "default";
      default: panic("invalid Precision");
    }
}

bool
parsePrecision(const char *text, Precision &out)
{
    if (text == nullptr)
        return false;
    if (std::strcmp(text, "double") == 0) {
        out = Precision::Double;
    } else if (std::strcmp(text, "mixed") == 0) {
        out = Precision::Mixed;
    } else if (std::strcmp(text, "single") == 0) {
        out = Precision::Single;
    } else if (std::strcmp(text, "default") == 0) {
        out = Precision::EngineDefault;
    } else {
        return false;
    }
    return true;
}

Precision
defaultPrecisionTier()
{
    const char *env = std::getenv("MDBENCH_PRECISION");
    Precision parsed = Precision::Double;
    if (parsePrecision(env, parsed) && parsed != Precision::EngineDefault)
        return parsed;
    return Precision::Double;
}

Precision
precisionTier()
{
    if (overrideTier != Precision::EngineDefault)
        return overrideTier;
    return defaultPrecisionTier();
}

void
setPrecisionTier(Precision precision)
{
    overrideTier = precision;
}

} // namespace mdbench
