#include "util/stats.h"

#include <algorithm>
#include <cmath>

namespace mdbench {

void
RunningStat::push(double x)
{
    ++n_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

double
RunningStat::variance() const
{
    return n_ >= 2 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

void
RunningStat::reset()
{
    *this = RunningStat();
}

double
Imbalance::imbalancePercent() const
{
    return max > 0.0 ? (max - mean) / max * 100.0 : 0.0;
}

Imbalance
Imbalance::fromSamples(const std::vector<double> &values)
{
    Imbalance result;
    if (values.empty())
        return result;
    RunningStat stat;
    for (double v : values)
        stat.push(v);
    result.max = stat.max();
    result.mean = stat.mean();
    result.min = stat.min();
    return result;
}

} // namespace mdbench
