/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic parts of mdbench (velocity initialization, Langevin
 * kicks, packing jitter) draw from Xoshiro256++ seeded through SplitMix64,
 * so every experiment is exactly reproducible from its seed. We do not use
 * <random> engines because their stream definitions are not guaranteed to
 * be identical across standard library implementations.
 */

#ifndef MDBENCH_UTIL_RNG_H
#define MDBENCH_UTIL_RNG_H

#include <cstdint>

namespace mdbench {

/**
 * Xoshiro256++ generator with SplitMix64 seeding.
 *
 * Provides uniform doubles in [0,1), uniform integers in [0,n), and
 * standard-normal deviates (Box-Muller with caching).
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed; any value (including 0) is valid. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    std::uint64_t nextU64();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n); @p n must be > 0. */
    std::uint64_t uniformInt(std::uint64_t n);

    /** Standard normal deviate (mean 0, stddev 1). */
    double gaussian();

    /** Fork a statistically independent stream (e.g., one per rank). */
    Rng split();

  private:
    std::uint64_t state_[4];
    double cachedGaussian_ = 0.0;
    bool hasCachedGaussian_ = false;
};

} // namespace mdbench

#endif // MDBENCH_UTIL_RNG_H
