/**
 * @file
 * Minimal status-message logging (inform/warn), gem5-style.
 *
 * Messages go to stderr so they never pollute the structured output
 * (tables, CSV) that benches print on stdout. Verbosity is a process-wide
 * setting; the default prints warnings only.
 */

#ifndef MDBENCH_UTIL_LOGGING_H
#define MDBENCH_UTIL_LOGGING_H

#include <string>

namespace mdbench {

/** Logging verbosity levels, from quietest to noisiest. */
enum class LogLevel { Silent = 0, Warn = 1, Inform = 2, Debug = 3 };

/** Set the process-wide verbosity. */
void setLogLevel(LogLevel level);

/** Current process-wide verbosity. */
LogLevel logLevel();

/** Informative message the user should see but not worry about. */
void inform(const std::string &msg);

/** Something works but deserves attention if odd behaviour follows. */
void warn(const std::string &msg);

/** Developer-facing tracing, silenced by default. */
void debugLog(const std::string &msg);

} // namespace mdbench

#endif // MDBENCH_UTIL_LOGGING_H
