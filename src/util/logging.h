/**
 * @file
 * Minimal status-message logging (inform/warn), gem5-style.
 *
 * Messages go to stderr so they never pollute the structured output
 * (tables, CSV) that benches print on stdout. Verbosity is a process-wide
 * setting; the default prints warnings only.
 *
 * Precedence, lowest to highest:
 *  1. built-in default (Warn);
 *  2. the MDBENCH_LOG_LEVEL environment variable, read once on first
 *     use ("silent"|"warn"|"inform"|"debug", case-insensitive, or 0-3);
 *  3. setLogLevel() — an explicit call always wins over the
 *     environment (bench binaries route --log-level through it).
 * refreshLogLevelFromEnvironment() re-applies rule 2, discarding any
 * prior setLogLevel().
 */

#ifndef MDBENCH_UTIL_LOGGING_H
#define MDBENCH_UTIL_LOGGING_H

#include <optional>
#include <string>

namespace mdbench {

/** Logging verbosity levels, from quietest to noisiest. */
enum class LogLevel { Silent = 0, Warn = 1, Inform = 2, Debug = 3 };

/** Set the process-wide verbosity (overrides MDBENCH_LOG_LEVEL). */
void setLogLevel(LogLevel level);

/** Current process-wide verbosity. */
LogLevel logLevel();

/**
 * Parse a level name ("silent"|"warn"|"inform"|"debug", any case) or
 * numeral ("0".."3"); std::nullopt when @p text matches neither.
 */
std::optional<LogLevel> parseLogLevel(const std::string &text);

/**
 * Re-read MDBENCH_LOG_LEVEL and make it the current level (the default
 * when the variable is unset or unparsable). Returns the level now in
 * effect.
 */
LogLevel refreshLogLevelFromEnvironment();

/** Informative message the user should see but not worry about. */
void inform(const std::string &msg);

/** Something works but deserves attention if odd behaviour follows. */
void warn(const std::string &msg);

/** Developer-facing tracing, silenced by default. */
void debugLog(const std::string &msg);

} // namespace mdbench

#endif // MDBENCH_UTIL_LOGGING_H
