/**
 * @file
 * Error handling primitives.
 *
 * Follows the gem5 fatal/panic distinction:
 *  - fatal():  the *user* asked for something impossible (bad configuration,
 *              out-of-range parameter). Throws FatalError.
 *  - panic():  an internal invariant was violated (a bug in mdbench).
 *              Throws PanicError.
 */

#ifndef MDBENCH_UTIL_ERROR_H
#define MDBENCH_UTIL_ERROR_H

#include <stdexcept>
#include <string>

namespace mdbench {

/** Raised when a user-visible configuration error makes progress impossible. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg)
        : std::runtime_error("fatal: " + msg)
    {}
};

/** Raised when an internal invariant is violated (an mdbench bug). */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg)
        : std::logic_error("panic: " + msg)
    {}
};

/** Abort the current operation due to a user/configuration error. */
[[noreturn]] void fatal(const std::string &msg);

/** Abort the current operation due to an internal bug. */
[[noreturn]] void panic(const std::string &msg);

/** Check a user-facing precondition; fatal() with @p msg if it fails. */
inline void
require(bool cond, const std::string &msg)
{
    if (!cond)
        fatal(msg);
}

/** Check an internal invariant; panic() with @p msg if it fails. */
inline void
ensure(bool cond, const std::string &msg)
{
    if (!cond)
        panic(msg);
}

} // namespace mdbench

#endif // MDBENCH_UTIL_ERROR_H
