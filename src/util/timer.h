/**
 * @file
 * Wall-clock timing and the per-task timing breakdown of Table 1.
 *
 * TaskTimer accumulates wall time per LAMMPS-style computational task
 * (Pair, Bond, Kspace, Neigh, Comm, Modify, Output, Other) and is the
 * instrumentation behind the paper's Figure 3 / Figure 7 breakdowns.
 */

#ifndef MDBENCH_UTIL_TIMER_H
#define MDBENCH_UTIL_TIMER_H

#include <array>
#include <chrono>
#include <cstddef>
#include <string>

namespace mdbench {

/** Simple monotonic wall-clock stopwatch. */
class WallTimer
{
  public:
    WallTimer() { reset(); }

    /** Restart the stopwatch. */
    void reset() { start_ = Clock::now(); }

    /** Seconds elapsed since construction or the last reset(). */
    double
    seconds() const
    {
        const auto d = Clock::now() - start_;
        return std::chrono::duration<double>(d).count();
    }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

/**
 * The computational tasks of a LAMMPS timestep (paper Table 1).
 *
 * The enumerator order fixes the presentation order used in all
 * breakdown tables.
 */
enum class Task : std::size_t {
    Bond = 0,   ///< Computation of bonded forces
    Comm,       ///< Inter-processor communication of atoms and properties
    Kspace,     ///< Computation of long-range interaction forces
    Modify,     ///< Fixes and computes invoked by fixes
    Neigh,      ///< Neighbor list construction
    Output,     ///< Output of thermodynamic info and dump files
    Pair,       ///< Computation of pairwise potential
    Other,      ///< All other tasks
    NumTasks
};

/** Number of Task enumerators. */
constexpr std::size_t kNumTasks = static_cast<std::size_t>(Task::NumTasks);

/** Human-readable task name ("Pair", "Kspace", ...). */
const char *taskName(Task task);

/**
 * Accumulator of per-task seconds.
 *
 * Supports both measured accumulation (start/stop around real work) and
 * direct charging of modeled virtual time (add()), so the same breakdown
 * type serves the native engine and the platform-replay models.
 *
 * start()/stop() pairs may nest up to kMaxNesting deep, with exclusive
 * (self-time) semantics: entering a nested task suspends the enclosing
 * one, so total() never double-counts and always tracks real wall time.
 * Deeper nesting, and stop() without a matching start(), panic.
 */
class TaskTimer
{
  public:
    /** Maximum depth of nested start() calls. */
    static constexpr int kMaxNesting = 8;

    TaskTimer() { reset(); }

    /** Zero all accumulators and abandon any running tasks. */
    void reset();

    /** Begin measuring @p task, suspending the enclosing task if any. */
    void start(Task task);

    /** Stop the innermost running task, resuming its parent if any. */
    void stop();

    /** Charge @p seconds of (possibly virtual) time to @p task. */
    void add(Task task, double seconds);

    /** Accumulated seconds for @p task. */
    double seconds(Task task) const;

    /** Sum over all tasks. */
    double total() const;

    /** Fraction of total() spent in @p task; 0 when total() == 0. */
    double fraction(Task task) const;

    /** Merge another breakdown into this one (component-wise add). */
    void merge(const TaskTimer &other);

  private:
    std::array<double, kNumTasks> acc_;
    WallTimer running_; ///< time since the innermost start/resume
    std::array<Task, kMaxNesting> stack_;
    int depth_ = 0;
};

/**
 * RAII helper: charges the enclosing scope's wall time to a task.
 */
class ScopedTask
{
  public:
    ScopedTask(TaskTimer &timer, Task task) : timer_(timer)
    {
        timer_.start(task);
    }

    ~ScopedTask() { timer_.stop(); }

    ScopedTask(const ScopedTask &) = delete;
    ScopedTask &operator=(const ScopedTask &) = delete;

  private:
    TaskTimer &timer_;
};

} // namespace mdbench

#endif // MDBENCH_UTIL_TIMER_H
