/**
 * @file
 * ASCII table and CSV emitters for paper-style output.
 *
 * Every bench binary prints its figure/table through this class so that
 * the textual output has a single consistent look and a machine-readable
 * CSV twin (mirroring the runs.csv flow of the paper's artifact).
 */

#ifndef MDBENCH_UTIL_TABLE_H
#define MDBENCH_UTIL_TABLE_H

#include <ostream>
#include <string>
#include <vector>

namespace mdbench {

/**
 * Column-aligned ASCII table with optional CSV rendering.
 */
class Table
{
  public:
    /** Create a table with fixed column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Append a row; must have exactly as many cells as headers. */
    void addRow(std::vector<std::string> cells);

    /** Number of data rows. */
    std::size_t rows() const { return rows_.size(); }

    /** Column headers (for machine-readable re-emission). */
    const std::vector<std::string> &headers() const { return headers_; }

    /** Raw cell data, row-major (for machine-readable re-emission). */
    const std::vector<std::vector<std::string>> &
    rowData() const
    {
        return rows_;
    }

    /** Render as an aligned ASCII table. */
    void printAscii(std::ostream &os) const;

    /** Render as CSV (headers + rows). */
    void printCsv(std::ostream &os) const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace mdbench

#endif // MDBENCH_UTIL_TABLE_H
