#include "util/neigh_layout.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace mdbench {

namespace {

// -1 means "no override": fall back to the MDBENCH_NEIGH_LAYOUT
// environment default (itself defaulting to csr).
std::atomic<int> gNeighLayoutOverride{-1};

} // namespace

const char *
neighLayoutName(NeighLayout layout)
{
    return layout == NeighLayout::Cluster ? "cluster" : "csr";
}

bool
parseNeighLayout(const char *text, NeighLayout &out)
{
    if (text == nullptr)
        return false;
    if (std::strcmp(text, "csr") == 0) {
        out = NeighLayout::Csr;
        return true;
    }
    if (std::strcmp(text, "cluster") == 0) {
        out = NeighLayout::Cluster;
        return true;
    }
    return false;
}

NeighLayout
defaultNeighLayout()
{
    static const NeighLayout layout = [] {
        NeighLayout out = NeighLayout::Csr;
        parseNeighLayout(std::getenv("MDBENCH_NEIGH_LAYOUT"), out);
        return out;
    }();
    return layout;
}

NeighLayout
neighLayout()
{
    const int override_ =
        gNeighLayoutOverride.load(std::memory_order_relaxed);
    if (override_ >= 0)
        return override_ == 1 ? NeighLayout::Cluster : NeighLayout::Csr;
    return defaultNeighLayout();
}

void
setNeighLayout(int layout)
{
    gNeighLayoutOverride.store(layout >= 0 && layout <= 1 ? layout : -1,
                               std::memory_order_relaxed);
}

} // namespace mdbench
