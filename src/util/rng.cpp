#include "util/rng.h"

#include <cmath>

#include "util/error.h"

namespace mdbench {

namespace {

/** SplitMix64 step, used only to expand the seed into generator state. */
std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t s = seed;
    for (auto &word : state_)
        word = splitmix64(s);
}

std::uint64_t
Rng::nextU64()
{
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 random mantissa bits -> uniform in [0,1).
    return static_cast<double>(nextU64() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::uniformInt(std::uint64_t n)
{
    ensure(n > 0, "uniformInt requires n > 0");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = (~n + 1) % n; // (2^64 - n) mod n
    for (;;) {
        const std::uint64_t r = nextU64();
        if (r >= threshold)
            return r % n;
    }
}

double
Rng::gaussian()
{
    if (hasCachedGaussian_) {
        hasCachedGaussian_ = false;
        return cachedGaussian_;
    }
    // Box-Muller: two uniforms -> two independent normals.
    double u1 = uniform();
    while (u1 <= 0.0)
        u1 = uniform();
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    cachedGaussian_ = r * std::sin(theta);
    hasCachedGaussian_ = true;
    return r * std::cos(theta);
}

Rng
Rng::split()
{
    return Rng(nextU64());
}

} // namespace mdbench
