/**
 * @file
 * Portable SIMD compute layer for the pair kernels (DESIGN.md §12).
 *
 * `Simd<T, W>` is a fixed-width value vector with the handful of
 * operations the force kernels need: broadcast, load/store, gather by
 * 32-bit index, arithmetic, compares returning `SimdMask`, blend
 * (select), and a *sequential* lane sum. Three backends share the same
 * interface:
 *
 *  - a generic array backend (the primary template) that compiles for
 *    any T and W with plain scalar loops — the scalar-fallback oracle
 *    and the body every sanitizer build exercises,
 *  - an AVX2 backend for `Simd<double, 4>` (`__m256d` + `__m128i`
 *    indices) and `Simd<float, 8>` (`__m256` + `__m256i` indices),
 *    selected when the translation unit is compiled with
 *    `-mavx2 -mfma`,
 *  - an AVX-512 backend for `Simd<double, 8>` (`__m512d` + `__m256i`
 *    indices) and `Simd<float, 16>` (`__m512` + `__m512i` indices),
 *    selected under `-mavx512f`.
 *
 * The float backends serve the mixed/single precision tiers
 * (util/precision.h): at a given ISA level float lanes come in twice
 * the count of double lanes, which is exactly the precision × SIMD
 * synergy the paper's Section 8 models and this engine measures.
 *
 * Determinism contract: every wrapper operation is a per-lane IEEE-754
 * operation (no fused multiply-add, no approximate reciprocals), so for
 * a fixed expression the three backends produce bitwise-identical lane
 * values; only the order in which a *kernel* folds lanes together
 * distinguishes widths. `sum()` is defined as the ascending-lane
 * sequential sum for the same reason. A kernel instantiated at W = 1
 * therefore performs exactly the scalar instruction sequence.
 *
 * Width configuration: `simdWidthFor(floatLanes)` is the packed
 * neighbor-list width the engine should use — 0 disables the SIMD path
 * entirely (scalar loops, no padded packing); `simdWidth()` is the
 * double-lane width. The default comes from the `MDBENCH_SIMD`
 * environment variable (`0`/`off` = disabled, `1`/`on`/unset = native
 * compiled width — double that for float lanes — and an explicit
 * `2`/`4`/`8`/`16` forces that width for both element types, through
 * the generic backend when no matching ISA backend exists) gated by a
 * runtime CPU capability check; `setSimdWidth()` overrides it
 * programmatically (benches, tests, ExperimentSpec).
 */

#ifndef MDBENCH_UTIL_SIMD_H
#define MDBENCH_UTIL_SIMD_H

#include <array>
#include <atomic>
#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>

#if !defined(MDBENCH_SIMD_FORCE_SCALAR)
#if defined(__AVX512F__)
#define MDBENCH_SIMD_AVX512 1
#define MDBENCH_SIMD_AVX2 1
#elif defined(__AVX2__) && defined(__FMA__)
#define MDBENCH_SIMD_AVX2 1
#endif
#endif

#if defined(MDBENCH_SIMD_AVX2)
#include <immintrin.h>
#endif

namespace mdbench {

/** Widest backend this translation unit was compiled with. */
inline constexpr int kSimdCompiledWidth =
#if defined(MDBENCH_SIMD_AVX512)
    8;
#elif defined(MDBENCH_SIMD_AVX2)
    4;
#else
    1;
#endif

/** Widest float backend this translation unit was compiled with. */
inline constexpr int kSimdCompiledFloatWidth =
#if defined(MDBENCH_SIMD_AVX512)
    16;
#elif defined(MDBENCH_SIMD_AVX2)
    8;
#else
    1;
#endif

/** Human/manifest name of the compiled backend. */
inline const char *
simdIsaName()
{
#if defined(MDBENCH_SIMD_AVX512)
    return "avx512";
#elif defined(MDBENCH_SIMD_AVX2)
    return "avx2";
#else
    return "scalar";
#endif
}

/**
 * True when the executing CPU supports the compiled ISA backend. A
 * binary built with `-march` flags for a newer CPU than the host would
 * fault inside the intrinsic paths; this check routes such runs to the
 * scalar loops instead (the generic backend compiles to plain scalar
 * code and needs no check).
 */
inline bool
simdRuntimeSupported()
{
#if defined(MDBENCH_SIMD_AVX512) && defined(__GNUC__)
    return __builtin_cpu_supports("avx512f");
#elif defined(MDBENCH_SIMD_AVX2) && defined(__GNUC__)
    return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
    return true;
#endif
}

/** Widths the pair kernels instantiate; others fall back to scalar. */
inline bool
simdWidthSupported(int w)
{
    return w == 1 || w == 2 || w == 4 || w == 8 || w == 16;
}

/**
 * Backend that executes width @p w in this translation unit: the ISA
 * specialization when one matches (which depends on whether the tier
 * computes in float or double lanes), otherwise the generic (unrolled
 * scalar) template; 0 is the plain scalar kernels.
 */
inline const char *
simdBackendName(int w, [[maybe_unused]] bool floatLanes = false)
{
    if (w <= 0)
        return "scalar";
#if defined(MDBENCH_SIMD_AVX512)
    if (w == (floatLanes ? 16 : 8))
        return "avx512";
#endif
#if defined(MDBENCH_SIMD_AVX2)
    if (w == (floatLanes ? 8 : 4))
        return "avx2";
#endif
    return "generic";
}

namespace detail {

/** Resolve the MDBENCH_SIMD default against a native width. */
inline int
simdResolveEnvWidth(int native)
{
    const char *env = std::getenv("MDBENCH_SIMD");
    if (!env || !*env)
        return native;
    if (std::strcmp(env, "0") == 0 || std::strcmp(env, "off") == 0)
        return 0;
    if (std::strcmp(env, "1") == 0 || std::strcmp(env, "on") == 0 ||
        std::strcmp(env, "native") == 0)
        return native;
    const int requested = std::atoi(env);
    if (simdWidthSupported(requested))
        return requested;
    return native;
}

} // namespace detail

/** MDBENCH_SIMD environment default for double lanes, cached. */
inline int
simdDefaultWidth()
{
    static const int width = detail::simdResolveEnvWidth(
        (kSimdCompiledWidth > 1 && simdRuntimeSupported())
            ? kSimdCompiledWidth
            : 0);
    return width;
}

/** MDBENCH_SIMD environment default for float lanes, cached. */
inline int
simdDefaultFloatWidth()
{
    static const int width = detail::simdResolveEnvWidth(
        (kSimdCompiledFloatWidth > 1 && simdRuntimeSupported())
            ? kSimdCompiledFloatWidth
            : 0);
    return width;
}

namespace detail {
/** Programmatic width override; -1 defers to the environment default. */
inline std::atomic<int> gSimdWidthOverride{-1};
} // namespace detail

/**
 * Packed neighbor-list width the engine should use right now for the
 * given lane element type: 0 = SIMD path disabled (plain scalar
 * kernels, no padded packing). An explicit override (setSimdWidth or
 * a numeric MDBENCH_SIMD) forces that lane count for both element
 * types; the native default doubles the lane count for float tiers.
 */
inline int
simdWidthFor(bool floatLanes)
{
    const int override_ =
        detail::gSimdWidthOverride.load(std::memory_order_relaxed);
    if (override_ >= 0)
        return override_;
    return floatLanes ? simdDefaultFloatWidth() : simdDefaultWidth();
}

/** Double-lane packed width (the historical knob). */
inline int
simdWidth()
{
    return simdWidthFor(false);
}

/**
 * Override the packed width: 0 disables the SIMD path, 1/2/4/8/16
 * force that width (through the generic backend when no ISA backend
 * matches), -1 restores the MDBENCH_SIMD environment default. Takes
 * effect at the next neighbor-list build.
 */
inline void
setSimdWidth(int width)
{
    detail::gSimdWidthOverride.store(
        width >= -1 && (width <= 0 || simdWidthSupported(width)) ? width
                                                                 : -1,
        std::memory_order_relaxed);
}

// --------------------------------------------------------------- generic

template <int W>
struct SimdIndex;
template <typename T, int W>
struct SimdMask;
template <typename T, int W>
struct Simd;

/** Vector of W 32-bit element indices (neighbor ids, table slots). */
template <int W>
struct SimdIndex
{
    std::array<std::uint32_t, W> v{};

    static SimdIndex
    load(const std::uint32_t *p)
    {
        SimdIndex r;
        for (int l = 0; l < W; ++l)
            r.v[l] = p[l];
        return r;
    }

    /** Gather base[idx[l]] of a 32-bit integer array (atom types). */
    static SimdIndex
    gather32(const int *base, const SimdIndex &idx)
    {
        SimdIndex r;
        for (int l = 0; l < W; ++l)
            r.v[l] = static_cast<std::uint32_t>(base[idx.v[l]]);
        return r;
    }

    SimdIndex
    operator*(std::uint32_t s) const
    {
        SimdIndex r;
        for (int l = 0; l < W; ++l)
            r.v[l] = v[l] * s;
        return r;
    }

    SimdIndex
    operator+(std::uint32_t s) const
    {
        SimdIndex r;
        for (int l = 0; l < W; ++l)
            r.v[l] = v[l] + s;
        return r;
    }

    /** Per-lane unsigned minimum against a scalar (table clamping). */
    static SimdIndex
    min(const SimdIndex &a, std::uint32_t s)
    {
        SimdIndex r;
        for (int l = 0; l < W; ++l)
            r.v[l] = a.v[l] < s ? a.v[l] : s;
        return r;
    }

    std::uint32_t lane(int l) const { return v[l]; }
};

/** Per-lane boolean result of a Simd comparison. */
template <typename T, int W>
struct SimdMask
{
    std::array<bool, W> m{};

    bool lane(int l) const { return m[l]; }

    /**
     * Active lanes as a bitmap (lane l -> bit l). Zero means no work;
     * iterating set bits ascending visits lanes in scalar order.
     */
    int
    bits() const
    {
        int b = 0;
        for (int l = 0; l < W; ++l)
            b |= static_cast<int>(m[l]) << l;
        return b;
    }

    SimdMask
    operator&(const SimdMask &o) const
    {
        SimdMask r;
        for (int l = 0; l < W; ++l)
            r.m[l] = m[l] && o.m[l];
        return r;
    }

    SimdMask
    operator|(const SimdMask &o) const
    {
        SimdMask r;
        for (int l = 0; l < W; ++l)
            r.m[l] = m[l] || o.m[l];
        return r;
    }

    /** Lanes of @p o with this mask's lanes cleared: ~this & o. */
    SimdMask
    andnot(const SimdMask &o) const
    {
        SimdMask r;
        for (int l = 0; l < W; ++l)
            r.m[l] = !m[l] && o.m[l];
        return r;
    }

    // Index-domain compares lifted into this element type's mask
    // domain (the neighbor build combines id rules with coordinate
    // tie-breaks in one vector predicate). Indices are atom ids and
    // always < 2^31, so the ISA backends may compare signed.

    /** Lane l set when idx[l] < s. */
    static SimdMask
    fromIndexLT(const SimdIndex<W> &idx, std::uint32_t s)
    {
        SimdMask r;
        for (int l = 0; l < W; ++l)
            r.m[l] = idx.lane(l) < s;
        return r;
    }

    /** Lane l set when idx[l] > s. */
    static SimdMask
    fromIndexGT(const SimdIndex<W> &idx, std::uint32_t s)
    {
        SimdMask r;
        for (int l = 0; l < W; ++l)
            r.m[l] = idx.lane(l) > s;
        return r;
    }

    /** Lane l set when idx[l] == s. */
    static SimdMask
    fromIndexEQ(const SimdIndex<W> &idx, std::uint32_t s)
    {
        SimdMask r;
        for (int l = 0; l < W; ++l)
            r.m[l] = idx.lane(l) == s;
        return r;
    }
};

/**
 * Generic array backend: W lanes of T computed with scalar loops. The
 * loops auto-vectorize on friendly targets, but the point of this
 * backend is semantics, not speed — it defines the exact per-lane
 * behaviour the ISA backends must reproduce.
 */
template <typename T, int W>
struct Simd
{
    std::array<T, W> v{};

    Simd() = default;

    /* implicit */ Simd(T s)
    {
        for (int l = 0; l < W; ++l)
            v[l] = s;
    }

    static Simd
    loadu(const T *p)
    {
        Simd r;
        for (int l = 0; l < W; ++l)
            r.v[l] = p[l];
        return r;
    }

    void
    storeu(T *p) const
    {
        for (int l = 0; l < W; ++l)
            p[l] = v[l];
    }

    static Simd
    gather(const T *base, const SimdIndex<W> &idx)
    {
        // lane(), not idx.v[l]: this generic body also runs against an
        // ISA-specialized SimdIndex<W> (forced widths on ISA builds),
        // whose register storage is not lane-addressable by [].
        Simd r;
        for (int l = 0; l < W; ++l)
            r.v[l] = base[idx.lane(l)];
        return r;
    }

    T lane(int l) const { return v[l]; }

    Simd
    operator+(const Simd &o) const
    {
        Simd r;
        for (int l = 0; l < W; ++l)
            r.v[l] = v[l] + o.v[l];
        return r;
    }

    Simd
    operator-(const Simd &o) const
    {
        Simd r;
        for (int l = 0; l < W; ++l)
            r.v[l] = v[l] - o.v[l];
        return r;
    }

    Simd
    operator*(const Simd &o) const
    {
        Simd r;
        for (int l = 0; l < W; ++l)
            r.v[l] = v[l] * o.v[l];
        return r;
    }

    Simd
    operator/(const Simd &o) const
    {
        Simd r;
        for (int l = 0; l < W; ++l)
            r.v[l] = v[l] / o.v[l];
        return r;
    }

    Simd &
    operator+=(const Simd &o)
    {
        for (int l = 0; l < W; ++l)
            v[l] += o.v[l];
        return *this;
    }

    static Simd
    sqrt(const Simd &a)
    {
        Simd r;
        for (int l = 0; l < W; ++l)
            r.v[l] = std::sqrt(a.v[l]);
        return r;
    }

    /**
     * a*b + c. Deliberately UNFUSED here: the generic backend is the
     * bitwise oracle for W==1-vs-scalar equality on builds without FMA
     * codegen, so it must round the product. ISA backends fuse (the
     * determinism contract is per-ISA, not cross-ISA).
     */
    static Simd
    fma(const Simd &a, const Simd &b, const Simd &c)
    {
        Simd r;
        for (int l = 0; l < W; ++l)
            r.v[l] = (a.v[l] * b.v[l]) + c.v[l];
        return r;
    }

    /** a*b - c, same (un)fusion policy as fma(). */
    static Simd
    fms(const Simd &a, const Simd &b, const Simd &c)
    {
        Simd r;
        for (int l = 0; l < W; ++l)
            r.v[l] = (a.v[l] * b.v[l]) - c.v[l];
        return r;
    }

    static Simd
    min(const Simd &a, const Simd &b)
    {
        Simd r;
        for (int l = 0; l < W; ++l)
            r.v[l] = b.v[l] < a.v[l] ? b.v[l] : a.v[l];
        return r;
    }

    static Simd
    max(const Simd &a, const Simd &b)
    {
        Simd r;
        for (int l = 0; l < W; ++l)
            r.v[l] = a.v[l] < b.v[l] ? b.v[l] : a.v[l];
        return r;
    }

    SimdMask<T, W>
    operator<(const Simd &o) const
    {
        SimdMask<T, W> r;
        for (int l = 0; l < W; ++l)
            r.m[l] = v[l] < o.v[l];
        return r;
    }

    SimdMask<T, W>
    operator>(const Simd &o) const
    {
        SimdMask<T, W> r;
        for (int l = 0; l < W; ++l)
            r.m[l] = v[l] > o.v[l];
        return r;
    }

    SimdMask<T, W>
    operator!=(const Simd &o) const
    {
        SimdMask<T, W> r;
        for (int l = 0; l < W; ++l)
            r.m[l] = v[l] != o.v[l];
        return r;
    }

    SimdMask<T, W>
    operator==(const Simd &o) const
    {
        SimdMask<T, W> r;
        for (int l = 0; l < W; ++l)
            r.m[l] = v[l] == o.v[l];
        return r;
    }

    SimdMask<T, W>
    operator>=(const Simd &o) const
    {
        SimdMask<T, W> r;
        for (int l = 0; l < W; ++l)
            r.m[l] = v[l] >= o.v[l];
        return r;
    }

    /** Lanes of @p a where the mask is set, of @p b elsewhere. */
    static Simd
    select(const SimdMask<T, W> &mask, const Simd &a, const Simd &b)
    {
        Simd r;
        for (int l = 0; l < W; ++l)
            r.v[l] = mask.m[l] ? a.v[l] : b.v[l];
        return r;
    }

    /**
     * select(mask, a, 0): rejected lanes become exact +0.0. On the
     * AVX backends this is a single bitwise AND instead of a blend.
     */
    static Simd
    maskZero(const SimdMask<T, W> &mask, const Simd &a)
    {
        Simd r;
        for (int l = 0; l < W; ++l)
            r.v[l] = mask.m[l] ? a.v[l] : T(0);
        return r;
    }

    /** Truncating conversion to element indices (spline locate). */
    static SimdIndex<W>
    truncToIndex(const Simd &a)
    {
        // Round-trip through memory so a specialized SimdIndex<W>
        // (register storage) can be built from this generic body.
        alignas(64) std::uint32_t tmp[W];
        for (int l = 0; l < W; ++l)
            tmp[l] = static_cast<std::uint32_t>(a.v[l]);
        return SimdIndex<W>::load(tmp);
    }

    /** Index-to-value conversion (spline locate's t = s - index). */
    static Simd
    fromIndex(const SimdIndex<W> &idx)
    {
        Simd r;
        for (int l = 0; l < W; ++l)
            r.v[l] = static_cast<T>(static_cast<std::int32_t>(idx.lane(l)));
        return r;
    }

    /** Sequential ascending-lane sum (fixed summation tree). */
    T
    sum() const
    {
        T total = v[0];
        for (int l = 1; l < W; ++l)
            total += v[l];
        return total;
    }
};

/**
 * Structure-of-arrays load from a 4-element-per-record buffer
 * ([x, y, z, w] per index, 32 bytes double / 16 bytes float): lane l
 * of each output comes from pack[4*idx[l] + component]. Pair kernels
 * stage positions (+charge) into such a buffer so this replaces three
 * or four hardware gathers with contiguous loads and an in-register
 * transpose on the ISA backends. @p idx points at W indices in memory
 * (the packed neighbor list), which the ISA backends read as cheap
 * scalar loads instead of extracting lanes from a vector register.
 * The buffer must have a full 4-element record per index (the pad
 * atom included).
 */
template <typename T, int W>
inline void
loadXyzw(const T *pack, const std::uint32_t *idx, Simd<T, W> &x,
         Simd<T, W> &y, Simd<T, W> &z, Simd<T, W> &w)
{
    for (int l = 0; l < W; ++l) {
        const T *rec = pack + 4u * idx[l];
        x.v[l] = rec[0];
        y.v[l] = rec[1];
        z.v[l] = rec[2];
        w.v[l] = rec[3];
    }
}

/** Three-component variant for kernels with no per-atom payload. */
template <typename T, int W>
inline void
loadXyz(const T *pack, const std::uint32_t *idx, Simd<T, W> &x,
        Simd<T, W> &y, Simd<T, W> &z)
{
    for (int l = 0; l < W; ++l) {
        const T *rec = pack + 4u * idx[l];
        x.v[l] = rec[0];
        y.v[l] = rec[1];
        z.v[l] = rec[2];
    }
}

/**
 * Contiguous-record variant of loadXyz: lanes come from the W
 * consecutive 4-element records starting at record index @p first.
 * The neighbor build stages candidates in bin order, so its filter
 * reads runs of records instead of gathering by neighbor id.
 */
template <typename T, int W>
inline void
loadXyzRun(const T *pack, std::size_t first, Simd<T, W> &x, Simd<T, W> &y,
           Simd<T, W> &z)
{
    for (int l = 0; l < W; ++l) {
        const T *rec = pack + 4u * (first + l);
        x.v[l] = rec[0];
        y.v[l] = rec[1];
        z.v[l] = rec[2];
    }
}

/**
 * Compress-store: write the lanes of @p ids whose bit is set in
 * @p maskBits to @p dst in ascending lane order — the vector analogue
 * of the scalar "if (keep) out[n++] = id" append, which is how the
 * vectorized neighbor build emits CSR rows in exactly the scalar
 * order. Writes exactly popcount(maskBits) elements (no tail slop, so
 * rows owned by different threads can abut) and returns that count.
 */
template <int W>
inline int
compressStore(std::uint32_t *dst, const SimdIndex<W> &ids, int maskBits)
{
    int n = 0;
    for (int rest = maskBits; rest; rest &= rest - 1) {
        const int l = std::countr_zero(static_cast<unsigned>(rest));
        dst[n++] = ids.lane(l);
    }
    return n;
}

/**
 * Horizontal sum of three accumulator stripes at once (per-row force
 * flush). The generic body keeps the ascending-lane order of sum();
 * the ISA overloads share shuffle work across the three reductions
 * and sum pairwise, which costs ~a third of three serial sum() chains
 * — per-row flush latency is real overhead for float tiers, whose
 * rows hold half as many groups.
 */
template <typename T, int W>
inline void
sumXyz(const Simd<T, W> &x, const Simd<T, W> &y, const Simd<T, W> &z,
       T &sx, T &sy, T &sz)
{
    sx = x.sum();
    sy = y.sum();
    sz = z.sum();
}

/** Two-stripe companion of sumXyz (per-row energy/virial flush). */
template <typename T, int W>
inline void
sumPair(const Simd<T, W> &a, const Simd<T, W> &b, T &sa, T &sb)
{
    sa = a.sum();
    sb = b.sum();
}

// ------------------------------------------------------------------ AVX2

#if defined(MDBENCH_SIMD_AVX2)

// GCC 12's unmasked gather/convert intrinsics expand through
// _mm256_undefined_pd()-style "__Y = __Y" initializers that trip
// -Wuninitialized once inlined into optimized callers (GCC PR 105593);
// the values are fully overwritten, so silence the false positive for
// the backend definitions (the pragma travels with inlining).
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wuninitialized"
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"

/** AVX2 backend: 4 x u32 indices in an SSE register. */
template <>
struct SimdIndex<4>
{
    __m128i v = _mm_setzero_si128();

    static SimdIndex
    load(const std::uint32_t *p)
    {
        SimdIndex r;
        r.v = _mm_loadu_si128(reinterpret_cast<const __m128i *>(p));
        return r;
    }

    static SimdIndex
    gather32(const int *base, const SimdIndex &idx)
    {
        SimdIndex r;
        r.v = _mm_i32gather_epi32(base, idx.v, 4);
        return r;
    }

    SimdIndex
    operator*(std::uint32_t s) const
    {
        SimdIndex r;
        r.v = _mm_mullo_epi32(v, _mm_set1_epi32(static_cast<int>(s)));
        return r;
    }

    SimdIndex
    operator+(std::uint32_t s) const
    {
        SimdIndex r;
        r.v = _mm_add_epi32(v, _mm_set1_epi32(static_cast<int>(s)));
        return r;
    }

    static SimdIndex
    min(const SimdIndex &a, std::uint32_t s)
    {
        SimdIndex r;
        r.v = _mm_min_epu32(a.v, _mm_set1_epi32(static_cast<int>(s)));
        return r;
    }

    std::uint32_t
    lane(int l) const
    {
        alignas(16) std::uint32_t tmp[4];
        _mm_store_si128(reinterpret_cast<__m128i *>(tmp), v);
        return tmp[l];
    }
};

/**
 * 8 x u32 indices in an AVX2 register. Used by the AVX-512 double
 * backend (W=8) and the AVX2 float backend (W=8) alike — only AVX2
 * intrinsics appear here.
 */
template <>
struct SimdIndex<8>
{
    __m256i v = _mm256_setzero_si256();

    static SimdIndex
    load(const std::uint32_t *p)
    {
        SimdIndex r;
        r.v = _mm256_loadu_si256(reinterpret_cast<const __m256i *>(p));
        return r;
    }

    static SimdIndex
    gather32(const int *base, const SimdIndex &idx)
    {
        SimdIndex r;
        r.v = _mm256_i32gather_epi32(base, idx.v, 4);
        return r;
    }

    SimdIndex
    operator*(std::uint32_t s) const
    {
        SimdIndex r;
        r.v = _mm256_mullo_epi32(v, _mm256_set1_epi32(static_cast<int>(s)));
        return r;
    }

    SimdIndex
    operator+(std::uint32_t s) const
    {
        SimdIndex r;
        r.v = _mm256_add_epi32(v, _mm256_set1_epi32(static_cast<int>(s)));
        return r;
    }

    static SimdIndex
    min(const SimdIndex &a, std::uint32_t s)
    {
        SimdIndex r;
        r.v = _mm256_min_epu32(a.v, _mm256_set1_epi32(static_cast<int>(s)));
        return r;
    }

    std::uint32_t
    lane(int l) const
    {
        alignas(32) std::uint32_t tmp[8];
        _mm256_store_si256(reinterpret_cast<__m256i *>(tmp), v);
        return tmp[l];
    }
};

/** AVX2 mask: all-ones / all-zeros double lanes (blendv convention). */
template <>
struct SimdMask<double, 4>
{
    __m256d m = _mm256_setzero_pd();

    bool
    lane(int l) const
    {
        return (_mm256_movemask_pd(m) >> l) & 1;
    }

    int bits() const { return _mm256_movemask_pd(m); }

    SimdMask
    operator&(const SimdMask &o) const
    {
        SimdMask r;
        r.m = _mm256_and_pd(m, o.m);
        return r;
    }

    SimdMask
    operator|(const SimdMask &o) const
    {
        SimdMask r;
        r.m = _mm256_or_pd(m, o.m);
        return r;
    }

    SimdMask
    andnot(const SimdMask &o) const
    {
        SimdMask r;
        r.m = _mm256_andnot_pd(m, o.m);
        return r;
    }

    // 32-bit id compares widened to double-lane masks (sign-extending
    // the 0/-1 compare result to 64 bits; ids are < 2^31, so the
    // signed epi32 compares agree with the generic unsigned rule).

    static SimdMask
    fromIndexLT(const SimdIndex<4> &idx, std::uint32_t s)
    {
        const __m128i cmp =
            _mm_cmplt_epi32(idx.v, _mm_set1_epi32(static_cast<int>(s)));
        SimdMask r;
        r.m = _mm256_castsi256_pd(_mm256_cvtepi32_epi64(cmp));
        return r;
    }

    static SimdMask
    fromIndexGT(const SimdIndex<4> &idx, std::uint32_t s)
    {
        const __m128i cmp =
            _mm_cmpgt_epi32(idx.v, _mm_set1_epi32(static_cast<int>(s)));
        SimdMask r;
        r.m = _mm256_castsi256_pd(_mm256_cvtepi32_epi64(cmp));
        return r;
    }

    static SimdMask
    fromIndexEQ(const SimdIndex<4> &idx, std::uint32_t s)
    {
        const __m128i cmp =
            _mm_cmpeq_epi32(idx.v, _mm_set1_epi32(static_cast<int>(s)));
        SimdMask r;
        r.m = _mm256_castsi256_pd(_mm256_cvtepi32_epi64(cmp));
        return r;
    }
};

template <>
struct Simd<double, 4>
{
    __m256d v = _mm256_setzero_pd();

    Simd() = default;

    /* implicit */ Simd(double s) : v(_mm256_set1_pd(s)) {}

    static Simd
    loadu(const double *p)
    {
        Simd r;
        r.v = _mm256_loadu_pd(p);
        return r;
    }

    void storeu(double *p) const { _mm256_storeu_pd(p, v); }

    static Simd
    gather(const double *base, const SimdIndex<4> &idx)
    {
        Simd r;
        r.v = _mm256_i32gather_pd(base, idx.v, 8);
        return r;
    }

    double
    lane(int l) const
    {
        alignas(32) double tmp[4];
        _mm256_store_pd(tmp, v);
        return tmp[l];
    }

    Simd
    operator+(const Simd &o) const
    {
        Simd r;
        r.v = _mm256_add_pd(v, o.v);
        return r;
    }

    Simd
    operator-(const Simd &o) const
    {
        Simd r;
        r.v = _mm256_sub_pd(v, o.v);
        return r;
    }

    Simd
    operator*(const Simd &o) const
    {
        Simd r;
        r.v = _mm256_mul_pd(v, o.v);
        return r;
    }

    Simd
    operator/(const Simd &o) const
    {
        Simd r;
        r.v = _mm256_div_pd(v, o.v);
        return r;
    }

    Simd &
    operator+=(const Simd &o)
    {
        v = _mm256_add_pd(v, o.v);
        return *this;
    }

    static Simd
    sqrt(const Simd &a)
    {
        Simd r;
        r.v = _mm256_sqrt_pd(a.v);
        return r;
    }

    /** Fused a*b + c (per-ISA determinism permits fusing here). */
    static Simd
    fma(const Simd &a, const Simd &b, const Simd &c)
    {
        Simd r;
        r.v = _mm256_fmadd_pd(a.v, b.v, c.v);
        return r;
    }

    /** Fused a*b - c. */
    static Simd
    fms(const Simd &a, const Simd &b, const Simd &c)
    {
        Simd r;
        r.v = _mm256_fmsub_pd(a.v, b.v, c.v);
        return r;
    }

    static Simd
    min(const Simd &a, const Simd &b)
    {
        Simd r;
        r.v = _mm256_min_pd(a.v, b.v);
        return r;
    }

    static Simd
    max(const Simd &a, const Simd &b)
    {
        Simd r;
        r.v = _mm256_max_pd(a.v, b.v);
        return r;
    }

    SimdMask<double, 4>
    operator<(const Simd &o) const
    {
        SimdMask<double, 4> r;
        r.m = _mm256_cmp_pd(v, o.v, _CMP_LT_OQ);
        return r;
    }

    SimdMask<double, 4>
    operator>(const Simd &o) const
    {
        SimdMask<double, 4> r;
        r.m = _mm256_cmp_pd(v, o.v, _CMP_GT_OQ);
        return r;
    }

    SimdMask<double, 4>
    operator!=(const Simd &o) const
    {
        SimdMask<double, 4> r;
        r.m = _mm256_cmp_pd(v, o.v, _CMP_NEQ_UQ);
        return r;
    }

    SimdMask<double, 4>
    operator==(const Simd &o) const
    {
        SimdMask<double, 4> r;
        r.m = _mm256_cmp_pd(v, o.v, _CMP_EQ_OQ);
        return r;
    }

    SimdMask<double, 4>
    operator>=(const Simd &o) const
    {
        SimdMask<double, 4> r;
        r.m = _mm256_cmp_pd(v, o.v, _CMP_GE_OQ);
        return r;
    }

    static Simd
    select(const SimdMask<double, 4> &mask, const Simd &a, const Simd &b)
    {
        Simd r;
        r.v = _mm256_blendv_pd(b.v, a.v, mask.m);
        return r;
    }

    static Simd
    maskZero(const SimdMask<double, 4> &mask, const Simd &a)
    {
        Simd r;
        r.v = _mm256_and_pd(mask.m, a.v);
        return r;
    }

    static SimdIndex<4>
    truncToIndex(const Simd &a)
    {
        SimdIndex<4> r;
        r.v = _mm256_cvttpd_epi32(a.v);
        return r;
    }

    static Simd
    fromIndex(const SimdIndex<4> &idx)
    {
        Simd r;
        r.v = _mm256_cvtepi32_pd(idx.v);
        return r;
    }

    double
    sum() const
    {
        alignas(32) double tmp[4];
        _mm256_store_pd(tmp, v);
        return ((tmp[0] + tmp[1]) + tmp[2]) + tmp[3];
    }
};

/**
 * AVX2 loadXyzw: four contiguous 32-byte record loads plus a 4x4
 * in-register transpose — far cheaper than three/four vpgatherdpd on
 * cores that microcode gathers.
 */
inline void
loadXyzw(const double *pack, const std::uint32_t *idx, Simd<double, 4> &x,
         Simd<double, 4> &y, Simd<double, 4> &z, Simd<double, 4> &w)
{
    const __m256d r0 = _mm256_loadu_pd(pack + 4u * idx[0]);
    const __m256d r1 = _mm256_loadu_pd(pack + 4u * idx[1]);
    const __m256d r2 = _mm256_loadu_pd(pack + 4u * idx[2]);
    const __m256d r3 = _mm256_loadu_pd(pack + 4u * idx[3]);
    const __m256d t0 = _mm256_unpacklo_pd(r0, r1); // x0 x1 z0 z1
    const __m256d t1 = _mm256_unpackhi_pd(r0, r1); // y0 y1 w0 w1
    const __m256d t2 = _mm256_unpacklo_pd(r2, r3); // x2 x3 z2 z3
    const __m256d t3 = _mm256_unpackhi_pd(r2, r3); // y2 y3 w2 w3
    x.v = _mm256_permute2f128_pd(t0, t2, 0x20);
    y.v = _mm256_permute2f128_pd(t1, t3, 0x20);
    z.v = _mm256_permute2f128_pd(t0, t2, 0x31);
    w.v = _mm256_permute2f128_pd(t1, t3, 0x31);
}

/** As above, skipping the unused payload shuffle. */
inline void
loadXyz(const double *pack, const std::uint32_t *idx, Simd<double, 4> &x,
        Simd<double, 4> &y, Simd<double, 4> &z)
{
    const __m256d r0 = _mm256_loadu_pd(pack + 4u * idx[0]);
    const __m256d r1 = _mm256_loadu_pd(pack + 4u * idx[1]);
    const __m256d r2 = _mm256_loadu_pd(pack + 4u * idx[2]);
    const __m256d r3 = _mm256_loadu_pd(pack + 4u * idx[3]);
    const __m256d t0 = _mm256_unpacklo_pd(r0, r1); // x0 x1 z0 z1
    const __m256d t1 = _mm256_unpackhi_pd(r0, r1); // y0 y1 w0 w1
    const __m256d t2 = _mm256_unpacklo_pd(r2, r3); // x2 x3 z2 z3
    const __m256d t3 = _mm256_unpackhi_pd(r2, r3); // y2 y3 w2 w3
    x.v = _mm256_permute2f128_pd(t0, t2, 0x20);
    y.v = _mm256_permute2f128_pd(t1, t3, 0x20);
    z.v = _mm256_permute2f128_pd(t0, t2, 0x31);
}

/** Pairwise three-stripe horizontal sum (see the generic template). */
inline void
sumXyz(const Simd<double, 4> &x, const Simd<double, 4> &y,
       const Simd<double, 4> &z, double &sx, double &sy, double &sz)
{
    const __m256d xy = _mm256_hadd_pd(x.v, y.v); // x0+x1 y0+y1 | x2+x3 y2+y3
    const __m128d sxy = _mm_add_pd(_mm256_castpd256_pd128(xy),
                                   _mm256_extractf128_pd(xy, 1));
    const __m128d zlo = _mm256_castpd256_pd128(z.v);
    const __m128d zhi = _mm256_extractf128_pd(z.v, 1);
    const __m128d sz2 = _mm_add_pd(zlo, zhi);
    sx = _mm_cvtsd_f64(sxy);
    sy = _mm_cvtsd_f64(_mm_unpackhi_pd(sxy, sxy));
    sz = _mm_cvtsd_f64(_mm_add_sd(sz2, _mm_unpackhi_pd(sz2, sz2)));
}

/** AVX2 loadXyzRun: the record transpose on 4 consecutive records. */
inline void
loadXyzRun(const double *pack, std::size_t first, Simd<double, 4> &x,
           Simd<double, 4> &y, Simd<double, 4> &z)
{
    const double *rec = pack + 4u * first;
    const __m256d r0 = _mm256_loadu_pd(rec + 0);
    const __m256d r1 = _mm256_loadu_pd(rec + 4);
    const __m256d r2 = _mm256_loadu_pd(rec + 8);
    const __m256d r3 = _mm256_loadu_pd(rec + 12);
    const __m256d t0 = _mm256_unpacklo_pd(r0, r1); // x0 x1 z0 z1
    const __m256d t1 = _mm256_unpackhi_pd(r0, r1); // y0 y1 w0 w1
    const __m256d t2 = _mm256_unpacklo_pd(r2, r3); // x2 x3 z2 z3
    const __m256d t3 = _mm256_unpackhi_pd(r2, r3); // y2 y3 w2 w3
    x.v = _mm256_permute2f128_pd(t0, t2, 0x20);
    y.v = _mm256_permute2f128_pd(t1, t3, 0x20);
    z.v = _mm256_permute2f128_pd(t0, t2, 0x31);
}

namespace detail {

/**
 * Compress permutation tables: row `mask` lists the set-bit lanes of
 * `mask` ascending (padded with 0 — those lanes are masked off at the
 * store). AVX2 has no compress instruction, so the compressStore
 * overloads permute by table lookup and cut the tail with a masked
 * store of exactly popcount(mask) elements.
 */
struct Compress4Table
{
    alignas(16) std::uint32_t perm[16][4];
};

constexpr Compress4Table
makeCompress4Table()
{
    Compress4Table t{};
    for (int mask = 0; mask < 16; ++mask) {
        int n = 0;
        for (int l = 0; l < 4; ++l) {
            if ((mask >> l) & 1)
                t.perm[mask][n++] = static_cast<std::uint32_t>(l);
        }
    }
    return t;
}

inline constexpr Compress4Table kCompress4 = makeCompress4Table();

struct Compress8Table
{
    alignas(32) std::uint32_t perm[256][8];
};

constexpr Compress8Table
makeCompress8Table()
{
    Compress8Table t{};
    for (int mask = 0; mask < 256; ++mask) {
        int n = 0;
        for (int l = 0; l < 8; ++l) {
            if ((mask >> l) & 1)
                t.perm[mask][n++] = static_cast<std::uint32_t>(l);
        }
    }
    return t;
}

inline constexpr Compress8Table kCompress8 = makeCompress8Table();

/** Row `count` enables the first `count` lanes of a maskstore. */
struct TailMaskTable
{
    alignas(32) std::int32_t head[9][8];
};

constexpr TailMaskTable
makeTailMaskTable()
{
    TailMaskTable t{};
    for (int count = 0; count <= 8; ++count) {
        for (int l = 0; l < count; ++l)
            t.head[count][l] = -1;
    }
    return t;
}

inline constexpr TailMaskTable kTailMask = makeTailMaskTable();

} // namespace detail

/**
 * AVX2/AVX-512 compressStore over 4 ids: permute the kept lanes to the
 * front by table lookup, then store exactly popcount(mask) elements
 * with a masked store (AVX-512 builds use the native compress).
 */
inline int
compressStore(std::uint32_t *dst, const SimdIndex<4> &ids, int maskBits)
{
    const unsigned mask = static_cast<unsigned>(maskBits) & 0xFu;
    const int n = std::popcount(mask);
#if defined(MDBENCH_SIMD_AVX512)
    _mm512_mask_compressstoreu_epi32(dst, static_cast<__mmask16>(mask),
                                     _mm512_castsi128_si512(ids.v));
#else
    const __m128i perm = _mm_load_si128(reinterpret_cast<const __m128i *>(
        detail::kCompress4.perm[mask]));
    const __m128 packed =
        _mm_permutevar_ps(_mm_castsi128_ps(ids.v), perm);
    _mm_maskstore_epi32(reinterpret_cast<int *>(dst),
                        _mm_load_si128(reinterpret_cast<const __m128i *>(
                            detail::kTailMask.head[n])),
                        _mm_castps_si128(packed));
#endif
    return n;
}

/** As above over 8 ids (AVX2 float width / AVX-512 double width). */
inline int
compressStore(std::uint32_t *dst, const SimdIndex<8> &ids, int maskBits)
{
    const unsigned mask = static_cast<unsigned>(maskBits) & 0xFFu;
    const int n = std::popcount(mask);
#if defined(MDBENCH_SIMD_AVX512)
    _mm512_mask_compressstoreu_epi32(dst, static_cast<__mmask16>(mask),
                                     _mm512_castsi256_si512(ids.v));
#else
    const __m256i perm = _mm256_load_si256(
        reinterpret_cast<const __m256i *>(detail::kCompress8.perm[mask]));
    const __m256i packed = _mm256_permutevar8x32_epi32(ids.v, perm);
    _mm256_maskstore_epi32(reinterpret_cast<int *>(dst),
                           _mm256_load_si256(
                               reinterpret_cast<const __m256i *>(
                                   detail::kTailMask.head[n])),
                           packed);
#endif
    return n;
}

/** AVX2 float mask: all-ones / all-zeros float lanes. */
template <>
struct SimdMask<float, 8>
{
    __m256 m = _mm256_setzero_ps();

    bool
    lane(int l) const
    {
        return (_mm256_movemask_ps(m) >> l) & 1;
    }

    int bits() const { return _mm256_movemask_ps(m); }

    SimdMask
    operator&(const SimdMask &o) const
    {
        SimdMask r;
        r.m = _mm256_and_ps(m, o.m);
        return r;
    }

    SimdMask
    operator|(const SimdMask &o) const
    {
        SimdMask r;
        r.m = _mm256_or_ps(m, o.m);
        return r;
    }

    /** Lanes of @p o with this mask's lanes cleared: ~this & o. */
    SimdMask
    andnot(const SimdMask &o) const
    {
        SimdMask r;
        r.m = _mm256_andnot_ps(m, o.m);
        return r;
    }

    // Index-domain compares (ids < 2^31, so signed epi32 compare is safe).
    static SimdMask
    fromIndexLT(const SimdIndex<8> &idx, std::uint32_t s)
    {
        SimdMask r;
        r.m = _mm256_castsi256_ps(_mm256_cmpgt_epi32(
            _mm256_set1_epi32(static_cast<int>(s)), idx.v));
        return r;
    }

    static SimdMask
    fromIndexGT(const SimdIndex<8> &idx, std::uint32_t s)
    {
        SimdMask r;
        r.m = _mm256_castsi256_ps(_mm256_cmpgt_epi32(
            idx.v, _mm256_set1_epi32(static_cast<int>(s))));
        return r;
    }

    static SimdMask
    fromIndexEQ(const SimdIndex<8> &idx, std::uint32_t s)
    {
        SimdMask r;
        r.m = _mm256_castsi256_ps(_mm256_cmpeq_epi32(
            idx.v, _mm256_set1_epi32(static_cast<int>(s))));
        return r;
    }
};

/** AVX2 float backend: twice the lanes of `Simd<double, 4>`. */
template <>
struct Simd<float, 8>
{
    __m256 v = _mm256_setzero_ps();

    Simd() = default;

    /* implicit */ Simd(float s) : v(_mm256_set1_ps(s)) {}

    static Simd
    loadu(const float *p)
    {
        Simd r;
        r.v = _mm256_loadu_ps(p);
        return r;
    }

    void storeu(float *p) const { _mm256_storeu_ps(p, v); }

    static Simd
    gather(const float *base, const SimdIndex<8> &idx)
    {
        Simd r;
        r.v = _mm256_i32gather_ps(base, idx.v, 4);
        return r;
    }

    float
    lane(int l) const
    {
        alignas(32) float tmp[8];
        _mm256_store_ps(tmp, v);
        return tmp[l];
    }

    Simd
    operator+(const Simd &o) const
    {
        Simd r;
        r.v = _mm256_add_ps(v, o.v);
        return r;
    }

    Simd
    operator-(const Simd &o) const
    {
        Simd r;
        r.v = _mm256_sub_ps(v, o.v);
        return r;
    }

    Simd
    operator*(const Simd &o) const
    {
        Simd r;
        r.v = _mm256_mul_ps(v, o.v);
        return r;
    }

    Simd
    operator/(const Simd &o) const
    {
        Simd r;
        r.v = _mm256_div_ps(v, o.v);
        return r;
    }

    Simd &
    operator+=(const Simd &o)
    {
        v = _mm256_add_ps(v, o.v);
        return *this;
    }

    static Simd
    sqrt(const Simd &a)
    {
        Simd r;
        r.v = _mm256_sqrt_ps(a.v);
        return r;
    }

    /** Fused a*b + c (per-ISA determinism permits fusing here). */
    static Simd
    fma(const Simd &a, const Simd &b, const Simd &c)
    {
        Simd r;
        r.v = _mm256_fmadd_ps(a.v, b.v, c.v);
        return r;
    }

    /** Fused a*b - c. */
    static Simd
    fms(const Simd &a, const Simd &b, const Simd &c)
    {
        Simd r;
        r.v = _mm256_fmsub_ps(a.v, b.v, c.v);
        return r;
    }

    static Simd
    min(const Simd &a, const Simd &b)
    {
        Simd r;
        r.v = _mm256_min_ps(a.v, b.v);
        return r;
    }

    static Simd
    max(const Simd &a, const Simd &b)
    {
        Simd r;
        r.v = _mm256_max_ps(a.v, b.v);
        return r;
    }

    SimdMask<float, 8>
    operator<(const Simd &o) const
    {
        SimdMask<float, 8> r;
        r.m = _mm256_cmp_ps(v, o.v, _CMP_LT_OQ);
        return r;
    }

    SimdMask<float, 8>
    operator>(const Simd &o) const
    {
        SimdMask<float, 8> r;
        r.m = _mm256_cmp_ps(v, o.v, _CMP_GT_OQ);
        return r;
    }

    SimdMask<float, 8>
    operator!=(const Simd &o) const
    {
        SimdMask<float, 8> r;
        r.m = _mm256_cmp_ps(v, o.v, _CMP_NEQ_UQ);
        return r;
    }

    SimdMask<float, 8>
    operator==(const Simd &o) const
    {
        SimdMask<float, 8> r;
        r.m = _mm256_cmp_ps(v, o.v, _CMP_EQ_OQ);
        return r;
    }

    SimdMask<float, 8>
    operator>=(const Simd &o) const
    {
        SimdMask<float, 8> r;
        r.m = _mm256_cmp_ps(v, o.v, _CMP_GE_OQ);
        return r;
    }

    static Simd
    select(const SimdMask<float, 8> &mask, const Simd &a, const Simd &b)
    {
        Simd r;
        r.v = _mm256_blendv_ps(b.v, a.v, mask.m);
        return r;
    }

    static Simd
    maskZero(const SimdMask<float, 8> &mask, const Simd &a)
    {
        Simd r;
        r.v = _mm256_and_ps(mask.m, a.v);
        return r;
    }

    static SimdIndex<8>
    truncToIndex(const Simd &a)
    {
        SimdIndex<8> r;
        r.v = _mm256_cvttps_epi32(a.v);
        return r;
    }

    static Simd
    fromIndex(const SimdIndex<8> &idx)
    {
        Simd r;
        r.v = _mm256_cvtepi32_ps(idx.v);
        return r;
    }

    float
    sum() const
    {
        alignas(32) float tmp[8];
        _mm256_store_ps(tmp, v);
        float total = tmp[0];
        for (int l = 1; l < 8; ++l)
            total += tmp[l];
        return total;
    }
};

/**
 * AVX2 float loadXyzw: eight contiguous 16-byte record loads plus an
 * 8x4 in-register transpose (unpack within 128-bit halves, shuffle
 * across) — the float analogue of the double transpose above.
 */
inline void
loadXyzw(const float *pack, const std::uint32_t *idx, Simd<float, 8> &x,
         Simd<float, 8> &y, Simd<float, 8> &z, Simd<float, 8> &w)
{
    const __m128 a0 = _mm_loadu_ps(pack + 4u * idx[0]);
    const __m128 a1 = _mm_loadu_ps(pack + 4u * idx[1]);
    const __m128 a2 = _mm_loadu_ps(pack + 4u * idx[2]);
    const __m128 a3 = _mm_loadu_ps(pack + 4u * idx[3]);
    const __m128 a4 = _mm_loadu_ps(pack + 4u * idx[4]);
    const __m128 a5 = _mm_loadu_ps(pack + 4u * idx[5]);
    const __m128 a6 = _mm_loadu_ps(pack + 4u * idx[6]);
    const __m128 a7 = _mm_loadu_ps(pack + 4u * idx[7]);
    const __m256 r04 = _mm256_set_m128(a4, a0); // rec0 low | rec4 high
    const __m256 r15 = _mm256_set_m128(a5, a1);
    const __m256 r26 = _mm256_set_m128(a6, a2);
    const __m256 r37 = _mm256_set_m128(a7, a3);
    const __m256 t0 = _mm256_unpacklo_ps(r04, r15); // x0 x1 y0 y1 | x4 x5 y4 y5
    const __m256 t1 = _mm256_unpackhi_ps(r04, r15); // z0 z1 w0 w1 | z4 z5 w4 w5
    const __m256 t2 = _mm256_unpacklo_ps(r26, r37); // x2 x3 y2 y3 | x6 x7 y6 y7
    const __m256 t3 = _mm256_unpackhi_ps(r26, r37); // z2 z3 w2 w3 | z6 z7 w6 w7
    x.v = _mm256_shuffle_ps(t0, t2, _MM_SHUFFLE(1, 0, 1, 0));
    y.v = _mm256_shuffle_ps(t0, t2, _MM_SHUFFLE(3, 2, 3, 2));
    z.v = _mm256_shuffle_ps(t1, t3, _MM_SHUFFLE(1, 0, 1, 0));
    w.v = _mm256_shuffle_ps(t1, t3, _MM_SHUFFLE(3, 2, 3, 2));
}

/**
 * As above, skipping the unused payload shuffle. (Measured on
 * Skylake-SP: this 8-load transpose beats three vpgatherdps — the
 * microcoded gather loses despite touching all eight lanes at once.)
 */
inline void
loadXyz(const float *pack, const std::uint32_t *idx, Simd<float, 8> &x,
        Simd<float, 8> &y, Simd<float, 8> &z)
{
    const __m128 a0 = _mm_loadu_ps(pack + 4u * idx[0]);
    const __m128 a1 = _mm_loadu_ps(pack + 4u * idx[1]);
    const __m128 a2 = _mm_loadu_ps(pack + 4u * idx[2]);
    const __m128 a3 = _mm_loadu_ps(pack + 4u * idx[3]);
    const __m128 a4 = _mm_loadu_ps(pack + 4u * idx[4]);
    const __m128 a5 = _mm_loadu_ps(pack + 4u * idx[5]);
    const __m128 a6 = _mm_loadu_ps(pack + 4u * idx[6]);
    const __m128 a7 = _mm_loadu_ps(pack + 4u * idx[7]);
    const __m256 r04 = _mm256_set_m128(a4, a0);
    const __m256 r15 = _mm256_set_m128(a5, a1);
    const __m256 r26 = _mm256_set_m128(a6, a2);
    const __m256 r37 = _mm256_set_m128(a7, a3);
    const __m256 t0 = _mm256_unpacklo_ps(r04, r15); // x0 x1 y0 y1 | ...
    const __m256 t1 = _mm256_unpackhi_ps(r04, r15); // z0 z1 w0 w1 | ...
    const __m256 t2 = _mm256_unpacklo_ps(r26, r37); // x2 x3 y2 y3 | ...
    const __m256 t3 = _mm256_unpackhi_ps(r26, r37); // z2 z3 w2 w3 | ...
    x.v = _mm256_shuffle_ps(t0, t2, _MM_SHUFFLE(1, 0, 1, 0));
    y.v = _mm256_shuffle_ps(t0, t2, _MM_SHUFFLE(3, 2, 3, 2));
    z.v = _mm256_shuffle_ps(t1, t3, _MM_SHUFFLE(1, 0, 1, 0));
}

/** AVX2 float loadXyzRun: the 8x4 transpose on consecutive records. */
inline void
loadXyzRun(const float *pack, std::size_t first, Simd<float, 8> &x,
           Simd<float, 8> &y, Simd<float, 8> &z)
{
    const float *base = pack + 4u * first;
    const __m128 a0 = _mm_loadu_ps(base + 0);
    const __m128 a1 = _mm_loadu_ps(base + 4);
    const __m128 a2 = _mm_loadu_ps(base + 8);
    const __m128 a3 = _mm_loadu_ps(base + 12);
    const __m128 a4 = _mm_loadu_ps(base + 16);
    const __m128 a5 = _mm_loadu_ps(base + 20);
    const __m128 a6 = _mm_loadu_ps(base + 24);
    const __m128 a7 = _mm_loadu_ps(base + 28);
    const __m256 r04 = _mm256_set_m128(a4, a0);
    const __m256 r15 = _mm256_set_m128(a5, a1);
    const __m256 r26 = _mm256_set_m128(a6, a2);
    const __m256 r37 = _mm256_set_m128(a7, a3);
    const __m256 t0 = _mm256_unpacklo_ps(r04, r15); // x0 x1 y0 y1 | ...
    const __m256 t1 = _mm256_unpackhi_ps(r04, r15); // z0 z1 w0 w1 | ...
    const __m256 t2 = _mm256_unpacklo_ps(r26, r37); // x2 x3 y2 y3 | ...
    const __m256 t3 = _mm256_unpackhi_ps(r26, r37); // z2 z3 w2 w3 | ...
    x.v = _mm256_shuffle_ps(t0, t2, _MM_SHUFFLE(1, 0, 1, 0));
    y.v = _mm256_shuffle_ps(t0, t2, _MM_SHUFFLE(3, 2, 3, 2));
    z.v = _mm256_shuffle_ps(t1, t3, _MM_SHUFFLE(1, 0, 1, 0));
}

/** Pairwise three-stripe horizontal sum (see the generic template). */
inline void
sumXyz(const Simd<float, 8> &x, const Simd<float, 8> &y,
       const Simd<float, 8> &z, float &sx, float &sy, float &sz)
{
    const __m256 xy = _mm256_hadd_ps(x.v, y.v);
    const __m256 zz = _mm256_hadd_ps(z.v, z.v);
    // x0123 y0123 z0123 z0123 | x4567 y4567 z4567 z4567
    const __m256 xyzz = _mm256_hadd_ps(xy, zz);
    const __m128 s = _mm_add_ps(_mm256_castps256_ps128(xyzz),
                                _mm256_extractf128_ps(xyzz, 1));
    sx = _mm_cvtss_f32(s);
    sy = _mm_cvtss_f32(_mm_shuffle_ps(s, s, 1));
    sz = _mm_cvtss_f32(_mm_shuffle_ps(s, s, 2));
}

/** Pairwise two-stripe horizontal sum (see the generic template). */
inline void
sumPair(const Simd<float, 8> &a, const Simd<float, 8> &b, float &sa,
        float &sb)
{
    // a0+a1 a2+a3 b0+b1 b2+b3 | a4+a5 a6+a7 b4+b5 b6+b7
    const __m256 ab = _mm256_hadd_ps(a.v, b.v);
    const __m128 s = _mm_add_ps(_mm256_castps256_ps128(ab),
                                _mm256_extractf128_ps(ab, 1));
    const __m128 t = _mm_hadd_ps(s, s); // [Σa, Σb, Σa, Σb]
    sa = _mm_cvtss_f32(t);
    sb = _mm_cvtss_f32(_mm_shuffle_ps(t, t, 1));
}

#endif // MDBENCH_SIMD_AVX2

// ---------------------------------------------------------------- AVX512

#if defined(MDBENCH_SIMD_AVX512)

/** AVX-512 mask: a real predicate register. */
template <>
struct SimdMask<double, 8>
{
    __mmask8 m = 0;

    bool lane(int l) const { return (m >> l) & 1; }

    int bits() const { return m; }

    SimdMask
    operator&(const SimdMask &o) const
    {
        SimdMask r;
        r.m = static_cast<__mmask8>(m & o.m);
        return r;
    }

    SimdMask
    operator|(const SimdMask &o) const
    {
        SimdMask r;
        r.m = static_cast<__mmask8>(m | o.m);
        return r;
    }

    /** Lanes of @p o with this mask's lanes cleared: ~this & o. */
    SimdMask
    andnot(const SimdMask &o) const
    {
        SimdMask r;
        r.m = static_cast<__mmask8>(~m & o.m);
        return r;
    }

    // Index-domain compares, widened to 64-bit so the 8 id lanes line
    // up with the 8 double lanes.
    static SimdMask
    fromIndexLT(const SimdIndex<8> &idx, std::uint32_t s)
    {
        SimdMask r;
        r.m = _mm512_cmp_epu64_mask(_mm512_cvtepu32_epi64(idx.v),
                                    _mm512_set1_epi64(s), _MM_CMPINT_LT);
        return r;
    }

    static SimdMask
    fromIndexGT(const SimdIndex<8> &idx, std::uint32_t s)
    {
        SimdMask r;
        r.m = _mm512_cmp_epu64_mask(_mm512_cvtepu32_epi64(idx.v),
                                    _mm512_set1_epi64(s), _MM_CMPINT_NLE);
        return r;
    }

    static SimdMask
    fromIndexEQ(const SimdIndex<8> &idx, std::uint32_t s)
    {
        SimdMask r;
        r.m = _mm512_cmp_epu64_mask(_mm512_cvtepu32_epi64(idx.v),
                                    _mm512_set1_epi64(s), _MM_CMPINT_EQ);
        return r;
    }
};

template <>
struct Simd<double, 8>
{
    __m512d v = _mm512_setzero_pd();

    Simd() = default;

    /* implicit */ Simd(double s) : v(_mm512_set1_pd(s)) {}

    static Simd
    loadu(const double *p)
    {
        Simd r;
        r.v = _mm512_loadu_pd(p);
        return r;
    }

    void storeu(double *p) const { _mm512_storeu_pd(p, v); }

    static Simd
    gather(const double *base, const SimdIndex<8> &idx)
    {
        Simd r;
        r.v = _mm512_i32gather_pd(idx.v, base, 8);
        return r;
    }

    double
    lane(int l) const
    {
        alignas(64) double tmp[8];
        _mm512_store_pd(tmp, v);
        return tmp[l];
    }

    Simd
    operator+(const Simd &o) const
    {
        Simd r;
        r.v = _mm512_add_pd(v, o.v);
        return r;
    }

    Simd
    operator-(const Simd &o) const
    {
        Simd r;
        r.v = _mm512_sub_pd(v, o.v);
        return r;
    }

    Simd
    operator*(const Simd &o) const
    {
        Simd r;
        r.v = _mm512_mul_pd(v, o.v);
        return r;
    }

    Simd
    operator/(const Simd &o) const
    {
        Simd r;
        r.v = _mm512_div_pd(v, o.v);
        return r;
    }

    Simd &
    operator+=(const Simd &o)
    {
        v = _mm512_add_pd(v, o.v);
        return *this;
    }

    static Simd
    sqrt(const Simd &a)
    {
        Simd r;
        r.v = _mm512_sqrt_pd(a.v);
        return r;
    }

    /** Fused a*b + c (per-ISA determinism permits fusing here). */
    static Simd
    fma(const Simd &a, const Simd &b, const Simd &c)
    {
        Simd r;
        r.v = _mm512_fmadd_pd(a.v, b.v, c.v);
        return r;
    }

    /** Fused a*b - c. */
    static Simd
    fms(const Simd &a, const Simd &b, const Simd &c)
    {
        Simd r;
        r.v = _mm512_fmsub_pd(a.v, b.v, c.v);
        return r;
    }

    static Simd
    min(const Simd &a, const Simd &b)
    {
        Simd r;
        r.v = _mm512_min_pd(a.v, b.v);
        return r;
    }

    static Simd
    max(const Simd &a, const Simd &b)
    {
        Simd r;
        r.v = _mm512_max_pd(a.v, b.v);
        return r;
    }

    SimdMask<double, 8>
    operator<(const Simd &o) const
    {
        SimdMask<double, 8> r;
        r.m = _mm512_cmp_pd_mask(v, o.v, _CMP_LT_OQ);
        return r;
    }

    SimdMask<double, 8>
    operator>(const Simd &o) const
    {
        SimdMask<double, 8> r;
        r.m = _mm512_cmp_pd_mask(v, o.v, _CMP_GT_OQ);
        return r;
    }

    SimdMask<double, 8>
    operator!=(const Simd &o) const
    {
        SimdMask<double, 8> r;
        r.m = _mm512_cmp_pd_mask(v, o.v, _CMP_NEQ_UQ);
        return r;
    }

    SimdMask<double, 8>
    operator==(const Simd &o) const
    {
        SimdMask<double, 8> r;
        r.m = _mm512_cmp_pd_mask(v, o.v, _CMP_EQ_OQ);
        return r;
    }

    SimdMask<double, 8>
    operator>=(const Simd &o) const
    {
        SimdMask<double, 8> r;
        r.m = _mm512_cmp_pd_mask(v, o.v, _CMP_GE_OQ);
        return r;
    }

    static Simd
    select(const SimdMask<double, 8> &mask, const Simd &a, const Simd &b)
    {
        Simd r;
        r.v = _mm512_mask_blend_pd(mask.m, b.v, a.v);
        return r;
    }

    static Simd
    maskZero(const SimdMask<double, 8> &mask, const Simd &a)
    {
        Simd r;
        r.v = _mm512_maskz_mov_pd(mask.m, a.v);
        return r;
    }

    static SimdIndex<8>
    truncToIndex(const Simd &a)
    {
        SimdIndex<8> r;
        r.v = _mm512_cvttpd_epi32(a.v);
        return r;
    }

    static Simd
    fromIndex(const SimdIndex<8> &idx)
    {
        Simd r;
        r.v = _mm512_cvtepi32_pd(idx.v);
        return r;
    }

    double
    sum() const
    {
        alignas(64) double tmp[8];
        _mm512_store_pd(tmp, v);
        double total = tmp[0];
        for (int l = 1; l < 8; ++l)
            total += tmp[l];
        return total;
    }
};

/**
 * AVX-512 loadXyzw: four gathers off a single pre-scaled index vector
 * (record base = idx*4 doubles; component picked by the base pointer).
 */
inline void
loadXyzw(const double *pack, const std::uint32_t *idx, Simd<double, 8> &x,
         Simd<double, 8> &y, Simd<double, 8> &z, Simd<double, 8> &w)
{
    const __m256i rec = _mm256_slli_epi32(
        _mm256_loadu_si256(reinterpret_cast<const __m256i *>(idx)), 2);
    x.v = _mm512_i32gather_pd(rec, pack + 0, 8);
    y.v = _mm512_i32gather_pd(rec, pack + 1, 8);
    z.v = _mm512_i32gather_pd(rec, pack + 2, 8);
    w.v = _mm512_i32gather_pd(rec, pack + 3, 8);
}

/** As above, skipping the unused payload gather. */
inline void
loadXyz(const double *pack, const std::uint32_t *idx, Simd<double, 8> &x,
        Simd<double, 8> &y, Simd<double, 8> &z)
{
    const __m256i rec = _mm256_slli_epi32(
        _mm256_loadu_si256(reinterpret_cast<const __m256i *>(idx)), 2);
    x.v = _mm512_i32gather_pd(rec, pack + 0, 8);
    y.v = _mm512_i32gather_pd(rec, pack + 1, 8);
    z.v = _mm512_i32gather_pd(rec, pack + 2, 8);
}

/** AVX-512 loadXyzRun: gather 8 consecutive records. */
inline void
loadXyzRun(const double *pack, std::size_t first, Simd<double, 8> &x,
           Simd<double, 8> &y, Simd<double, 8> &z)
{
    const __m256i rec = _mm256_add_epi32(
        _mm256_setr_epi32(0, 4, 8, 12, 16, 20, 24, 28),
        _mm256_set1_epi32(static_cast<int>(4u * first)));
    x.v = _mm512_i32gather_pd(rec, pack + 0, 8);
    y.v = _mm512_i32gather_pd(rec, pack + 1, 8);
    z.v = _mm512_i32gather_pd(rec, pack + 2, 8);
}

/** AVX-512 backend: 16 x u32 indices in a ZMM register. */
template <>
struct SimdIndex<16>
{
    __m512i v = _mm512_setzero_si512();

    static SimdIndex
    load(const std::uint32_t *p)
    {
        SimdIndex r;
        r.v = _mm512_loadu_si512(p);
        return r;
    }

    static SimdIndex
    gather32(const int *base, const SimdIndex &idx)
    {
        SimdIndex r;
        r.v = _mm512_i32gather_epi32(idx.v, base, 4);
        return r;
    }

    SimdIndex
    operator*(std::uint32_t s) const
    {
        SimdIndex r;
        r.v = _mm512_mullo_epi32(v, _mm512_set1_epi32(static_cast<int>(s)));
        return r;
    }

    SimdIndex
    operator+(std::uint32_t s) const
    {
        SimdIndex r;
        r.v = _mm512_add_epi32(v, _mm512_set1_epi32(static_cast<int>(s)));
        return r;
    }

    static SimdIndex
    min(const SimdIndex &a, std::uint32_t s)
    {
        SimdIndex r;
        r.v = _mm512_min_epu32(a.v, _mm512_set1_epi32(static_cast<int>(s)));
        return r;
    }

    std::uint32_t
    lane(int l) const
    {
        alignas(64) std::uint32_t tmp[16];
        _mm512_store_si512(reinterpret_cast<__m512i *>(tmp), v);
        return tmp[l];
    }
};

/** AVX-512 compressStore over 16 ids: the native compress. */
inline int
compressStore(std::uint32_t *dst, const SimdIndex<16> &ids, int maskBits)
{
    const unsigned mask = static_cast<unsigned>(maskBits) & 0xFFFFu;
    _mm512_mask_compressstoreu_epi32(dst, static_cast<__mmask16>(mask),
                                     ids.v);
    return std::popcount(mask);
}

/** AVX-512 float mask: a 16-bit predicate register. */
template <>
struct SimdMask<float, 16>
{
    __mmask16 m = 0;

    bool lane(int l) const { return (m >> l) & 1; }

    int bits() const { return m; }

    SimdMask
    operator&(const SimdMask &o) const
    {
        SimdMask r;
        r.m = static_cast<__mmask16>(m & o.m);
        return r;
    }

    SimdMask
    operator|(const SimdMask &o) const
    {
        SimdMask r;
        r.m = static_cast<__mmask16>(m | o.m);
        return r;
    }

    /** Lanes of @p o with this mask's lanes cleared: ~this & o. */
    SimdMask
    andnot(const SimdMask &o) const
    {
        SimdMask r;
        r.m = static_cast<__mmask16>(~m & o.m);
        return r;
    }

    // Index-domain compares (lane counts already match at 32 bits).
    static SimdMask
    fromIndexLT(const SimdIndex<16> &idx, std::uint32_t s)
    {
        SimdMask r;
        r.m = _mm512_cmp_epu32_mask(
            idx.v, _mm512_set1_epi32(static_cast<int>(s)), _MM_CMPINT_LT);
        return r;
    }

    static SimdMask
    fromIndexGT(const SimdIndex<16> &idx, std::uint32_t s)
    {
        SimdMask r;
        r.m = _mm512_cmp_epu32_mask(
            idx.v, _mm512_set1_epi32(static_cast<int>(s)), _MM_CMPINT_NLE);
        return r;
    }

    static SimdMask
    fromIndexEQ(const SimdIndex<16> &idx, std::uint32_t s)
    {
        SimdMask r;
        r.m = _mm512_cmp_epu32_mask(
            idx.v, _mm512_set1_epi32(static_cast<int>(s)), _MM_CMPINT_EQ);
        return r;
    }
};

/** AVX-512 float backend: twice the lanes of `Simd<double, 8>`. */
template <>
struct Simd<float, 16>
{
    __m512 v = _mm512_setzero_ps();

    Simd() = default;

    /* implicit */ Simd(float s) : v(_mm512_set1_ps(s)) {}

    static Simd
    loadu(const float *p)
    {
        Simd r;
        r.v = _mm512_loadu_ps(p);
        return r;
    }

    void storeu(float *p) const { _mm512_storeu_ps(p, v); }

    static Simd
    gather(const float *base, const SimdIndex<16> &idx)
    {
        Simd r;
        r.v = _mm512_i32gather_ps(idx.v, base, 4);
        return r;
    }

    float
    lane(int l) const
    {
        alignas(64) float tmp[16];
        _mm512_store_ps(tmp, v);
        return tmp[l];
    }

    Simd
    operator+(const Simd &o) const
    {
        Simd r;
        r.v = _mm512_add_ps(v, o.v);
        return r;
    }

    Simd
    operator-(const Simd &o) const
    {
        Simd r;
        r.v = _mm512_sub_ps(v, o.v);
        return r;
    }

    Simd
    operator*(const Simd &o) const
    {
        Simd r;
        r.v = _mm512_mul_ps(v, o.v);
        return r;
    }

    Simd
    operator/(const Simd &o) const
    {
        Simd r;
        r.v = _mm512_div_ps(v, o.v);
        return r;
    }

    Simd &
    operator+=(const Simd &o)
    {
        v = _mm512_add_ps(v, o.v);
        return *this;
    }

    static Simd
    sqrt(const Simd &a)
    {
        Simd r;
        r.v = _mm512_sqrt_ps(a.v);
        return r;
    }

    /** Fused a*b + c (per-ISA determinism permits fusing here). */
    static Simd
    fma(const Simd &a, const Simd &b, const Simd &c)
    {
        Simd r;
        r.v = _mm512_fmadd_ps(a.v, b.v, c.v);
        return r;
    }

    /** Fused a*b - c. */
    static Simd
    fms(const Simd &a, const Simd &b, const Simd &c)
    {
        Simd r;
        r.v = _mm512_fmsub_ps(a.v, b.v, c.v);
        return r;
    }

    static Simd
    min(const Simd &a, const Simd &b)
    {
        Simd r;
        r.v = _mm512_min_ps(a.v, b.v);
        return r;
    }

    static Simd
    max(const Simd &a, const Simd &b)
    {
        Simd r;
        r.v = _mm512_max_ps(a.v, b.v);
        return r;
    }

    SimdMask<float, 16>
    operator<(const Simd &o) const
    {
        SimdMask<float, 16> r;
        r.m = _mm512_cmp_ps_mask(v, o.v, _CMP_LT_OQ);
        return r;
    }

    SimdMask<float, 16>
    operator>(const Simd &o) const
    {
        SimdMask<float, 16> r;
        r.m = _mm512_cmp_ps_mask(v, o.v, _CMP_GT_OQ);
        return r;
    }

    SimdMask<float, 16>
    operator!=(const Simd &o) const
    {
        SimdMask<float, 16> r;
        r.m = _mm512_cmp_ps_mask(v, o.v, _CMP_NEQ_UQ);
        return r;
    }

    SimdMask<float, 16>
    operator==(const Simd &o) const
    {
        SimdMask<float, 16> r;
        r.m = _mm512_cmp_ps_mask(v, o.v, _CMP_EQ_OQ);
        return r;
    }

    SimdMask<float, 16>
    operator>=(const Simd &o) const
    {
        SimdMask<float, 16> r;
        r.m = _mm512_cmp_ps_mask(v, o.v, _CMP_GE_OQ);
        return r;
    }

    static Simd
    select(const SimdMask<float, 16> &mask, const Simd &a, const Simd &b)
    {
        Simd r;
        r.v = _mm512_mask_blend_ps(mask.m, b.v, a.v);
        return r;
    }

    static Simd
    maskZero(const SimdMask<float, 16> &mask, const Simd &a)
    {
        Simd r;
        r.v = _mm512_maskz_mov_ps(mask.m, a.v);
        return r;
    }

    static SimdIndex<16>
    truncToIndex(const Simd &a)
    {
        SimdIndex<16> r;
        r.v = _mm512_cvttps_epi32(a.v);
        return r;
    }

    static Simd
    fromIndex(const SimdIndex<16> &idx)
    {
        Simd r;
        r.v = _mm512_cvtepi32_ps(idx.v);
        return r;
    }

    float
    sum() const
    {
        alignas(64) float tmp[16];
        _mm512_store_ps(tmp, v);
        float total = tmp[0];
        for (int l = 1; l < 16; ++l)
            total += tmp[l];
        return total;
    }
};

/**
 * AVX-512 float loadXyzw: four gathers off a single pre-scaled index
 * vector (record base = idx*4 floats; component picked by the base
 * pointer).
 */
inline void
loadXyzw(const float *pack, const std::uint32_t *idx, Simd<float, 16> &x,
         Simd<float, 16> &y, Simd<float, 16> &z, Simd<float, 16> &w)
{
    const __m512i rec =
        _mm512_slli_epi32(_mm512_loadu_si512(idx), 2);
    x.v = _mm512_i32gather_ps(rec, pack + 0, 4);
    y.v = _mm512_i32gather_ps(rec, pack + 1, 4);
    z.v = _mm512_i32gather_ps(rec, pack + 2, 4);
    w.v = _mm512_i32gather_ps(rec, pack + 3, 4);
}

/** As above, skipping the unused payload gather. */
inline void
loadXyz(const float *pack, const std::uint32_t *idx, Simd<float, 16> &x,
        Simd<float, 16> &y, Simd<float, 16> &z)
{
    const __m512i rec =
        _mm512_slli_epi32(_mm512_loadu_si512(idx), 2);
    x.v = _mm512_i32gather_ps(rec, pack + 0, 4);
    y.v = _mm512_i32gather_ps(rec, pack + 1, 4);
    z.v = _mm512_i32gather_ps(rec, pack + 2, 4);
}

/** AVX-512 float loadXyzRun: gather 16 consecutive records. */
inline void
loadXyzRun(const float *pack, std::size_t first, Simd<float, 16> &x,
           Simd<float, 16> &y, Simd<float, 16> &z)
{
    const __m512i rec = _mm512_add_epi32(
        _mm512_setr_epi32(0, 4, 8, 12, 16, 20, 24, 28, 32, 36, 40, 44,
                          48, 52, 56, 60),
        _mm512_set1_epi32(static_cast<int>(4u * first)));
    x.v = _mm512_i32gather_ps(rec, pack + 0, 4);
    y.v = _mm512_i32gather_ps(rec, pack + 1, 4);
    z.v = _mm512_i32gather_ps(rec, pack + 2, 4);
}

#endif // MDBENCH_SIMD_AVX512

#if defined(MDBENCH_SIMD_AVX2)
#pragma GCC diagnostic pop
#endif

} // namespace mdbench

#endif // MDBENCH_UTIL_SIMD_H
