/**
 * @file
 * Neighbor-list packing layout knob (DESIGN.md §14).
 *
 * Two SIMD-consumable packings of the plain CSR neighbor list:
 *
 *  - csr:     padded CSR rows (DESIGN.md §12) — each row rounded up to
 *             the lane width with sentinel slots. The default; every
 *             SIMD pair kernel consumes it.
 *  - cluster: MD-Bench/GROMACS-style M×N cluster pairs — atoms grouped
 *             into clusters of M (i side) and N = lane width (j side)
 *             in spatial-bin order, one stored pair per cluster pair.
 *             List memory shrinks ~N× and j loads become contiguous;
 *             kernels without a cluster traversal fall back to their
 *             scalar path.
 *
 * Process-wide knob mirroring the SIMD width (util/simd.h) and
 * precision (util/precision.h) knobs: `MDBENCH_NEIGH_LAYOUT` sets the
 * default, `setNeighLayout()` overrides it at runtime. It lives in
 * util so the observability layer can stamp the active layout into
 * manifests without depending on the md layer.
 */

#ifndef MDBENCH_UTIL_NEIGH_LAYOUT_H
#define MDBENCH_UTIL_NEIGH_LAYOUT_H

namespace mdbench {

/** Neighbor-list packing layouts. */
enum class NeighLayout { Csr = 0, Cluster };

/** Lowercase layout name ("csr", "cluster"). */
const char *neighLayoutName(NeighLayout layout);

/** Parse a layout name ("csr" | "cluster"). False on unknown text. */
bool parseNeighLayout(const char *text, NeighLayout &out);

/**
 * Default layout from `MDBENCH_NEIGH_LAYOUT` (csr | cluster). Unset or
 * unparseable means NeighLayout::Csr.
 */
NeighLayout defaultNeighLayout();

/** The active layout: the override if set, else the default. */
NeighLayout neighLayout();

/**
 * Override the active layout for subsequent neighbor packings
 * (0 = csr, 1 = cluster, -1 = clear the override and fall back to the
 * environment default). Takes effect at the next neighbor build or
 * packing refresh.
 */
void setNeighLayout(int layout);

} // namespace mdbench

#endif // MDBENCH_UTIL_NEIGH_LAYOUT_H
