/**
 * @file
 * Small string formatting helpers shared across the project.
 */

#ifndef MDBENCH_UTIL_STRING_UTILS_H
#define MDBENCH_UTIL_STRING_UTILS_H

#include <string>
#include <vector>

namespace mdbench {

/** printf-style formatting into a std::string. */
std::string strprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Format a double with @p digits significant digits, trimming zeros. */
std::string formatSig(double value, int digits = 4);

/** Join @p parts with @p sep between elements. */
std::string join(const std::vector<std::string> &parts,
                 const std::string &sep);

/** "1.0e-4"-style compact scientific formatting for thresholds. */
std::string formatThreshold(double value);

} // namespace mdbench

#endif // MDBENCH_UTIL_STRING_UTILS_H
