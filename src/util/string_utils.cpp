#include "util/string_utils.h"

#include <cmath>
#include <cstdarg>
#include <cstdio>

namespace mdbench {

std::string
strprintf(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::va_list args2;
    va_copy(args2, args);
    const int needed = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    std::string out;
    if (needed > 0) {
        out.resize(static_cast<std::size_t>(needed));
        std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
    }
    va_end(args2);
    return out;
}

std::string
formatSig(double value, int digits)
{
    std::string s = strprintf("%.*g", digits, value);
    return s;
}

std::string
join(const std::vector<std::string> &parts, const std::string &sep)
{
    std::string out;
    for (std::size_t i = 0; i < parts.size(); ++i) {
        if (i)
            out += sep;
        out += parts[i];
    }
    return out;
}

std::string
formatThreshold(double value)
{
    const int exponent =
        static_cast<int>(std::floor(std::log10(std::fabs(value))));
    const double mantissa = value / std::pow(10.0, exponent);
    return strprintf("%.1fe%d", mantissa, exponent);
}

} // namespace mdbench
