/**
 * @file
 * Hardware descriptions of the paper's two evaluation platforms
 * (Table 3): the dual-socket Xeon 8358 "CPU instance" and the
 * Xeon 8167M + 8x V100 "GPU instance".
 *
 * These are *data*, consumed by the cost models in cpu_model.* and
 * src/gpusim to replay the paper's experiments on platforms this
 * reproduction host does not have (see DESIGN.md, substitutions).
 */

#ifndef MDBENCH_PERF_PLATFORM_H
#define MDBENCH_PERF_PLATFORM_H

#include <optional>
#include <string>

namespace mdbench {

/** CPU package description. */
struct CpuSpec
{
    std::string model;
    int cores = 0;
    int threads = 0;
    double baseGHz = 0.0;
    double turboGHz = 0.0;
    int l1KBPerCore = 0;
    double l2MBPerCore = 0.0;
    double l3MB = 0.0;
    int techNm = 0;
    double tdpW = 0.0;

    /**
     * Effective double-precision interaction throughput of one core in
     * billions of pair-kernel "interaction units" per second, before
     * style-specific efficiency factors (see calibration.h).
     */
    double effectiveGigaInteractions() const;
};

/** GPU device description. */
struct GpuSpec
{
    std::string model;
    int sms = 0;
    double memGB = 0.0;
    double l2MB = 0.0;
    int l1KBPerSm = 0;
    double freqGHz = 0.0;
    int techNm = 0;
    double tdpW = 0.0;
    double pcieGBs = 12.0; ///< effective host<->device bandwidth

    /** Device-wide interaction throughput (giga-interactions/s). */
    double effectiveGigaInteractions() const;
};

/** One evaluation platform (Table 3 column). */
struct PlatformInstance
{
    std::string name;
    CpuSpec cpu;
    int sockets = 1;
    int memoryGB = 0;
    std::optional<GpuSpec> gpu;
    int gpuCount = 0;

    int totalCores() const { return cpu.cores * sockets; }

    /** The paper's CPU instance: 2x Intel Xeon Platinum 8358, 1 TB. */
    static PlatformInstance cpuInstance();

    /** The paper's GPU instance: 2x Xeon 8167M + 8x NVIDIA V100. */
    static PlatformInstance gpuInstance();
};

} // namespace mdbench

#endif // MDBENCH_PERF_PLATFORM_H
