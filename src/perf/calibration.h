/**
 * @file
 * Calibration constants of the platform-replay cost models.
 *
 * One "interaction unit" is the cost of a vectorized Lennard-Jones pair
 * evaluation (including its share of neighbor-list traversal overhead).
 * All other work is expressed in these units through the coefficients
 * below, and converted to seconds by the per-core / per-device rates.
 *
 * The constants are fitted so the model lands near the paper's anchor
 * numbers (DESIGN.md Section 6) — shapes and crossovers are what the
 * reproduction must match, not absolute third-digit agreement.
 */

#ifndef MDBENCH_PERF_CALIBRATION_H
#define MDBENCH_PERF_CALIBRATION_H

namespace mdbench {
namespace calib {

// -- CPU core throughput ----------------------------------------------------

/** Sustained LJ interactions per core cycle (INTEL package, AVX-512). */
constexpr double kCpuInteractionsPerCycle = 0.0438;

/** Single-precision speedup on the pair kernel (Section 8, CPU).
 *  The double-precision penalty is per-style (WorkloadSpec). */
constexpr double kCpuPrecisionSingle = 0.96;

// -- Per-task work coefficients (interaction units) ---------------------------

/** Neighbor candidate check relative to a pair evaluation. */
constexpr double kNeighPerCandidate = 0.30;

/** Binning / bookkeeping per atom per rebuild. */
constexpr double kNeighPerAtom = 2.0;

/** Rebuild-trigger distance check per atom per step. */
constexpr double kCheckPerAtom = 0.06;

/** Bonded terms per bond / per angle. */
constexpr double kBondCost = 3.0;
constexpr double kAngleCost = 5.5;

/** Integration + generic fix cost per atom per step. */
constexpr double kModifyPerAtom = 0.9;

/** Extra Modify cost per atom: SHAKE clusters / NPT barostat. */
constexpr double kShakePerAtom = 3.5;
constexpr double kNptPerAtom = 1.2;

/** Thermo output per atom per sampled step (sampled every 100). */
constexpr double kOutputPerAtom = 0.004;

/** Residual per-atom per-step cost (wraps, force clear). */
constexpr double kOtherPerAtom = 0.25;

/**
 * Memory-subsystem contention: poorly vectorized / latency-bound styles
 * (low core utilization in the paper's profiles) slow down as the
 * socket fills. Multiplies compute time by
 * 1 + kMemContention * (1 - utilization) * fill.
 */
constexpr double kMemContention = 1.2;

/** All-core turbo frequency relative to base (socket fully busy). */
constexpr double kAllCoreTurboOverBase = 1.15;

/** FFT strong-scaling exponent: per-rank FFT work ~ G log G / P^e
 *  (transposes and startup costs erode ideal scaling; Section 7). */
constexpr double kFftScalingExponent = 0.82;

/**
 * Synchronization waits inside the FFT all-to-all (stragglers across
 * rounds): seconds per step ~ this factor * ranks * latency. Dominates
 * rhodo's MPI imbalance at loose thresholds and small sizes (Fig. 14),
 * and fades relative to data exchange at tight thresholds.
 */
constexpr double kKspaceSyncLatencyFactor = 12.0;

/** Extra all-to-all cost when the job spans both sockets. */
constexpr double kCrossSocketA2a = 1.5;

// -- PPPM (kspace) ------------------------------------------------------------

/** Charge assignment + field interpolation per atom (order^3 stencils). */
constexpr double kKspacePerAtom = 85.0;

/** FFT butterflies per grid point per log2(points), times 4 FFTs. */
constexpr double kKspacePerGridPoint = 1.6;

/** Bytes per grid point exchanged in the FFT all-to-all (fwd+inv). */
constexpr double kKspaceBytesPerPoint = 24.0;

// -- Communication -----------------------------------------------------------

/** Bytes per ghost atom: forward positions / reverse forces. */
constexpr double kBytesForward = 24.0;
constexpr double kBytesReverse = 24.0;
/** Border (list rebuild) exchange carries full atom state. */
constexpr double kBytesBorder = 80.0;

// -- MPI_Init (Section 5.1 observation) ---------------------------------------

/**
 * The paper finds MPI_Init time grows with rank count *and* scales with
 * total execution time (library-internal progress/teardown attributed
 * to Init by the profiler). Model: fixed part + runtime-proportional
 * part that grows with ranks.
 */
constexpr double kInitBase = 0.02;      // seconds
constexpr double kInitPerRank = 0.0045; // seconds per rank
constexpr double kInitRuntimeShare = 0.018; // of runtime at 64 ranks

// -- CPU power ---------------------------------------------------------------

constexpr double kSocketIdleWatts = 55.0;
constexpr double kUncoreActiveWatts = 25.0; // per active socket

// -- GPU package -------------------------------------------------------------

/** Device-wide LJ interactions per SM cycle at full occupancy and
 *  full warp efficiency. */
constexpr double kGpuInteractionsPerSmCycle = 0.26;

/** Single-precision speedup / double-precision penalty on device
 *  kernels (Section 8, GPU; the charmm/coul kernel is bandwidth-bound
 *  and handled per-style). */
constexpr double kGpuPrecisionSingle = 0.93;
constexpr double kGpuPrecisionDouble = 1.40;

/** Fraction of peak a kernel reaches with near-zero resident work. */
constexpr double kGpuMinEfficiency = 0.06;

/** Atoms per device for ~50% occupancy (latency hiding). */
constexpr double kGpuSaturationAtoms = 600000.0;

/** Warp efficiency half-saturation in neighbors/atom: short lists
 *  leave most of each warp idle (Chain suffers, Rhodo thrives). */
constexpr double kGpuListHalfSat = 200.0;

/** Per-kernel launch overhead (seconds). */
constexpr double kGpuLaunchOverhead = 8.0e-6;

/** Per-step fixed host-driver overhead per MPI process (seconds). */
constexpr double kGpuStepOverhead = 9.0e-5;

/** Staged host<->device copies per step per MPI process, and the
 *  per-copy latency (the PCIe under-utilization the paper observes). */
constexpr double kGpuCopiesPerStep = 8.0;
constexpr double kGpuCopyLatency = 1.5e-5;

/** Host-side SHAKE penalty in the GPU package (serialized per-molecule
 *  constraint solves with no device support; Section 6.1). */
constexpr double kGpuHostShakeFactor = 5.0;

/** Charge/field mesh bytes staged over PCIe per grid point per step,
 *  including per-rank ghost-layer duplication (calibrated against the
 *  16.09 -> 0.46 TS/s collapse of Section 7 on the GPU instance). */
constexpr double kGpuKspaceBytesPerPoint = 3000.0;

/** Above this atom count the PPPM neighbor-list kernel degrades
 *  superlinearly (the paper's 2-million-atom "breaking point"). */
constexpr double kGpuNeighBreakAtoms = 864000.0;
constexpr double kGpuNeighBreakExponent = 1.8;

/** GPU power model. */
constexpr double kGpuIdleWatts = 52.0;

} // namespace calib
} // namespace mdbench

#endif // MDBENCH_PERF_CALIBRATION_H
