/**
 * @file
 * Power models replacing the paper's powerstat / nvidia-smi sampling
 * (see DESIGN.md substitutions): idle + utilization-proportional active
 * power, capped at TDP.
 */

#ifndef MDBENCH_PERF_POWER_H
#define MDBENCH_PERF_POWER_H

#include "perf/platform.h"

namespace mdbench {

/**
 * Node power of a CPU platform with @p activeCores busy at
 * @p utilization average activity.
 */
double cpuNodeWatts(const PlatformInstance &platform, int activeCores,
                    double utilization);

/** Power of one GPU device at @p utilization (0..1). */
double gpuDeviceWatts(const GpuSpec &gpu, double utilization);

} // namespace mdbench

#endif // MDBENCH_PERF_POWER_H
