#include "perf/platform.h"

namespace mdbench {

double
CpuSpec::effectiveGigaInteractions() const
{
    // One "interaction unit" is normalized to a Lennard-Jones pair
    // evaluation. A vectorized LJ kernel on a Skylake/Icelake-class core
    // sustains roughly 0.55 interactions per cycle (INTEL package).
    return 0.55 * baseGHz;
}

double
GpuSpec::effectiveGigaInteractions() const
{
    // Per SM, roughly 2.2 LJ interactions per cycle at full occupancy.
    return 2.2 * freqGHz * sms;
}

PlatformInstance
PlatformInstance::cpuInstance()
{
    PlatformInstance platform;
    platform.name = "CPU instance";
    platform.cpu = {"Intel Xeon Platinum 8358", 32,   64,  2.6, 3.4,
                    64,                          1.0,  48.0, 10,  250.0};
    platform.sockets = 2;
    platform.memoryGB = 1024;
    return platform;
}

PlatformInstance
PlatformInstance::gpuInstance()
{
    PlatformInstance platform;
    platform.name = "GPU instance";
    platform.cpu = {"Intel Xeon Platinum 8167M", 26,   52,  2.0, 2.4,
                    32,                           1.0,  35.75, 14, 165.0};
    platform.sockets = 2;
    platform.memoryGB = 768;
    platform.gpu = GpuSpec{"NVIDIA V100", 84,  16.0, 6.0, 128,
                           1.35,          12,  300.0, 12.0};
    platform.gpuCount = 8;
    return platform;
}

} // namespace mdbench
