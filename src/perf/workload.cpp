#include "perf/workload.h"

#include <cmath>

#include "util/error.h"

namespace mdbench {

const std::vector<BenchmarkId> &
allBenchmarks()
{
    static const std::vector<BenchmarkId> all = {
        BenchmarkId::Chain, BenchmarkId::Chute, BenchmarkId::EAM,
        BenchmarkId::LJ, BenchmarkId::Rhodo};
    return all;
}

const std::vector<BenchmarkId> &
gpuBenchmarks()
{
    // The standard GPU package has no gran/hooke support (Section 6).
    static const std::vector<BenchmarkId> gpu = {
        BenchmarkId::Chain, BenchmarkId::EAM, BenchmarkId::LJ,
        BenchmarkId::Rhodo};
    return gpu;
}

const char *
benchmarkName(BenchmarkId id)
{
    switch (id) {
      case BenchmarkId::Rhodo: return "rhodo";
      case BenchmarkId::LJ:    return "lj";
      case BenchmarkId::Chain: return "chain";
      case BenchmarkId::EAM:   return "eam";
      case BenchmarkId::Chute: return "chute";
      default: panic("invalid BenchmarkId");
    }
}

WorkloadSpec
WorkloadSpec::get(BenchmarkId id)
{
    WorkloadSpec spec;
    spec.id = id;
    switch (id) {
      case BenchmarkId::Rhodo:
        spec.forceField = "CHARMM";
        spec.cutoff = 10.0; // Angstrom (8.0-10.0 switching)
        spec.skin = 2.0;
        spec.neighborsPerAtom = 440.0;
        spec.hasBonds = true;
        spec.hasAngles = true;
        spec.usesKspace = true;
        spec.usesShake = true;
        spec.nptIntegration = true;
        spec.bondsPerAtom = 0.9;
        spec.anglesPerAtom = 0.6;
        spec.numberDensity = 0.10; // atoms / A^3 (solvated biomolecule)
        spec.pairCostUnits = 1.15; // LJ switch + erfc/exp Coulomb
        spec.rebuildInterval = 8.0;
        spec.coreUtilization = 0.83;
        spec.imbalanceFactor = 0.05;
        spec.chargeSq = 0.4;
        spec.doubleCostFactor = 1.45; // erfc/exp heavy kernel
        break;
      case BenchmarkId::LJ:
        spec.forceField = "lj";
        spec.cutoff = 2.5; // sigma
        spec.skin = 0.3;
        spec.neighborsPerAtom = 55.0;
        spec.numberDensity = 0.8442;
        spec.pairCostUnits = 1.0;
        spec.rebuildInterval = 10.0;
        spec.coreUtilization = 0.48;
        spec.imbalanceFactor = 0.006;
        break;
      case BenchmarkId::Chain:
        spec.forceField = "lj (FENE chains)";
        spec.cutoff = 1.12; // 2^(1/6) sigma, WCA
        spec.skin = 0.4;
        spec.neighborsPerAtom = 5.0;
        spec.hasBonds = true;
        spec.bondsPerAtom = 0.99; // 100-mers
        spec.numberDensity = 0.85;
        spec.pairCostUnits = 3.0; // scalar path, short neighbor lists
        spec.gpuPairFactor = 1.5;
        spec.rebuildInterval = 12.0;
        spec.coreUtilization = 0.56;
        spec.imbalanceFactor = 0.06;
        spec.extraFixCostPerAtom = 10.0; // Langevin thermostat (RNG heavy)
        break;
      case BenchmarkId::EAM:
        spec.forceField = "EAM";
        spec.cutoff = 4.95; // Angstrom
        spec.skin = 1.0;
        spec.neighborsPerAtom = 45.0;
        spec.numberDensity = 4.0 / (3.615 * 3.615 * 3.615); // Cu fcc
        spec.pairCostUnits = 1.8; // two passes + spline lookups
        spec.gpuPairFactor = 2.2;
        spec.rebuildInterval = 25.0;
        spec.coreUtilization = 0.63;
        spec.imbalanceFactor = 0.006;
        break;
      case BenchmarkId::Chute:
        spec.forceField = "gran/hooke/history";
        spec.cutoff = 1.0; // sigma (particle diameter)
        spec.skin = 0.1;
        spec.neighborsPerAtom = 7.0;
        spec.newton3 = false; // paper Section 3
        spec.numberDensity = 1.0;
        spec.pairCostUnits = 1.45; // history bookkeeping, scalar code
        spec.rebuildInterval = 18.0;
        spec.coreUtilization = 0.24;
        spec.imbalanceFactor = 0.11; // gravity-packed bed
        spec.extraFixCostPerAtom = 1.5; // gravity + bottom wall
        spec.sizeCostExponent = 0.20;   // deeper beds, denser contacts
        break;
      default:
        panic("invalid BenchmarkId");
    }
    return spec;
}

double
WorkloadInstance::pairInteractionsPerStep() const
{
    // Half lists visit each pair once (Newton's third law); Chute's
    // full lists compute both sides.
    const double perAtom = spec.newton3 ? spec.neighborsPerAtom / 2.0
                                        : spec.neighborsPerAtom;
    return static_cast<double>(natoms) * perAtom;
}

long
WorkloadInstance::kspaceGridPoints() const
{
    return spec.usesKspace ? kspacePlan.gridPoints() : 0;
}

WorkloadInstance
WorkloadInstance::make(BenchmarkId id, long natoms, double kspaceAccuracy,
                       Precision precision)
{
    require(natoms > 0, "workload needs atoms");
    WorkloadInstance instance;
    instance.spec = WorkloadSpec::get(id);
    instance.natoms = natoms;
    instance.kspaceAccuracy = kspaceAccuracy;
    // The cost models know only the three concrete tiers; the request
    // sentinel resolves to the paper's default study point (mixed).
    instance.precision =
        precision == Precision::EngineDefault ? Precision::Mixed : precision;
    const double edge =
        std::cbrt(static_cast<double>(natoms) / instance.spec.numberDensity);
    instance.boxLength = {edge, edge, edge};

    if (instance.spec.usesKspace) {
        KspaceProblem problem;
        problem.boxLength = instance.boxLength;
        problem.natoms = natoms;
        problem.qSqSum = instance.spec.chargeSq * natoms;
        problem.qqr2e = 332.06371; // real units
        problem.cutoff = instance.spec.cutoff;
        problem.accuracy = kspaceAccuracy;
        problem.order = 5;
        instance.kspacePlan = planKspace(problem);
    }
    return instance;
}

const std::vector<long> &
paperSizesK()
{
    static const std::vector<long> sizes = {32, 256, 864, 2048};
    return sizes;
}

const std::vector<int> &
paperRankCounts()
{
    static const std::vector<int> ranks = {1, 2, 4, 8, 16, 32, 64};
    return ranks;
}

const std::vector<int> &
paperGpuCounts()
{
    static const std::vector<int> gpus = {1, 2, 4, 6, 8};
    return gpus;
}

const std::vector<double> &
paperErrorThresholds()
{
    static const std::vector<double> thresholds = {1e-4, 1e-5, 1e-6, 1e-7};
    return thresholds;
}

} // namespace mdbench
