/**
 * @file
 * Workload descriptors for the five benchmark experiments (Table 2),
 * and the derived per-size quantities the cost models consume.
 */

#ifndef MDBENCH_PERF_WORKLOAD_H
#define MDBENCH_PERF_WORKLOAD_H

#include <string>
#include <vector>

#include "kspace/plan.h"
#include "md/vec3.h"
#include "util/precision.h"

namespace mdbench {

/** The five benchmarks of the paper's Section 3. */
enum class BenchmarkId { Rhodo = 0, LJ, Chain, EAM, Chute };

/** All benchmarks in the paper's plotting order. */
const std::vector<BenchmarkId> &allBenchmarks();

/** Benchmarks supported by the reference GPU package (no Chute). */
const std::vector<BenchmarkId> &gpuBenchmarks();

/** Lowercase name as the paper's plots use ("rhodo", "lj", ...). */
const char *benchmarkName(BenchmarkId id);

/**
 * Static per-benchmark characteristics (the Table 2 taxonomy plus the
 * cost-model coefficients attached to each interaction style).
 */
struct WorkloadSpec
{
    BenchmarkId id;
    std::string forceField;     ///< Table 2 "Force field" row
    double cutoff = 0.0;        ///< in native distance units
    double skin = 0.0;
    double neighborsPerAtom = 0.0;
    bool newton3 = true;        ///< Chute does not use Newton's 3rd law
    bool hasBonds = false;
    bool hasAngles = false;
    bool usesKspace = false;    ///< Rhodopsin only (PPPM)
    bool usesShake = false;
    bool nptIntegration = false;
    double bondsPerAtom = 0.0;
    double anglesPerAtom = 0.0;
    double numberDensity = 0.0; ///< atoms per cubic distance-unit

    /**
     * Relative cost of one neighbor interaction in LJ-pair units
     * (the cost-model normalization; see platform.h).
     */
    double pairCostUnits = 1.0;

    /** Average steps between neighbor-list rebuilds. */
    double rebuildInterval = 10.0;

    /** Average physical-core utilization the paper profiles (Sec. 5.2). */
    double coreUtilization = 0.5;

    /**
     * Residual compute imbalance across ranks at high rank counts
     * (density inhomogeneity, fix load, contact clustering).
     */
    double imbalanceFactor = 0.02;

    /** Mean squared charge per atom (kspace workloads only). */
    double chargeSq = 0.0;

    /** Extra per-atom fix cost (Langevin thermostat, gravity + wall). */
    double extraFixCostPerAtom = 0.0;

    /** Pair-cost growth with system size (Chute's packed bed only). */
    double sizeCostExponent = 0.0;

    /** Pair-kernel slowdown in full double precision (Section 8). */
    double doubleCostFactor = 1.18;

    /** Device pair-kernel cost factor relative to the CPU cost units
     *  (EAM's GPU kernels vectorize a bit better than its CPU path;
     *  Chain's scalar-ish kernel a bit worse). */
    double gpuPairFactor = 1.0;

    /** Table 2 row for @p id. */
    static WorkloadSpec get(BenchmarkId id);
};

/**
 * A workload instantiated at a specific atom count and experiment
 * configuration: everything size-dependent the models need.
 */
struct WorkloadInstance
{
    WorkloadSpec spec;
    long natoms = 0;
    Vec3 boxLength{0, 0, 0};
    double kspaceAccuracy = 1e-4; ///< the Section 7 threshold
    Precision precision = Precision::Mixed;
    KspacePlan kspacePlan;        ///< valid when spec.usesKspace

    /** Pair interactions computed per timestep (half vs full lists). */
    double pairInteractionsPerStep() const;

    /** PPPM mesh points (0 for non-kspace workloads). */
    long kspaceGridPoints() const;

    /**
     * Build the instance: box edge from the density, k-space plan from
     * the error threshold (real units, qqr2e = 332.06).
     */
    static WorkloadInstance make(BenchmarkId id, long natoms,
                                 double kspaceAccuracy = 1e-4,
                                 Precision precision = Precision::Mixed);
};

/** The paper's four experiment sizes, in thousands of atoms. */
const std::vector<long> &paperSizesK();

/** The paper's MPI process counts (Figures 3-6). */
const std::vector<int> &paperRankCounts();

/** The paper's GPU device counts (Figures 7-9). */
const std::vector<int> &paperGpuCounts();

/** The paper's kspace error thresholds (Figures 10-14). */
const std::vector<double> &paperErrorThresholds();

} // namespace mdbench

#endif // MDBENCH_PERF_WORKLOAD_H
