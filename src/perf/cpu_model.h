/**
 * @file
 * Analytic cost model of a LAMMPS-style timestep on the paper's CPU
 * instance: per-task breakdown (Fig. 3), MPI overhead and function
 * breakdown (Figs. 4/5/12/14), strong scaling, energy efficiency
 * (Fig. 6), k-space threshold sensitivity (Figs. 10/11), and precision
 * sensitivity (Fig. 15).
 *
 * The model encodes the mechanisms the paper identifies — pair work
 * proportional to N * npa, surface-to-volume halo traffic, FFT
 * all-to-all, rank-count-dependent MPI_Init, and workload-specific
 * compute imbalance — with coefficients calibrated against the paper's
 * anchor numbers (calibration.h).
 */

#ifndef MDBENCH_PERF_CPU_MODEL_H
#define MDBENCH_PERF_CPU_MODEL_H

#include "parallel/mpi_model.h"
#include "perf/platform.h"
#include "perf/workload.h"
#include "util/timer.h"

namespace mdbench {

/** Everything the CPU-instance figures need for one configuration. */
struct CpuModelResult
{
    double stepSeconds = 0.0;        ///< slowest-rank time per timestep
    double timestepsPerSecond = 0.0; ///< TS/s (Fig. 6 top)
    double powerWatts = 0.0;
    double energyEfficiency = 0.0;   ///< TS/s/W (Fig. 6 middle)
    double mpiTimePercent = 0.0;     ///< Fig. 4 top
    double mpiImbalancePercent = 0.0;///< Fig. 4 bottom
    double nsPerDay = 0.0;           ///< for 2 fs timesteps (rhodo)

    /** Mean-rank seconds per step by Table 1 task (Fig. 3). */
    TaskTimer taskBreakdown;

    /** Per-MPI-function seconds over the modeled run (Fig. 5). */
    std::array<double, kNumMpiFunctions> mpiFunctionSeconds{};

    /** Fraction of MPI time per function. */
    double mpiFunctionFraction(MpiFunction fn) const;
};

/**
 * Cost model over a CPU platform.
 */
class CpuModel
{
  public:
    explicit CpuModel(PlatformInstance platform = PlatformInstance::cpuInstance(),
                      MpiMachineModel machine = {});

    /**
     * Evaluate one configuration.
     *
     * @param workload Instantiated workload (size, threshold, precision).
     * @param ranks    MPI processes (= physical cores used).
     * @param steps    Modeled run length (the paper's long runs use 10k).
     */
    CpuModelResult evaluate(const WorkloadInstance &workload, int ranks,
                            long steps = 10000) const;

    /** Parallel efficiency in percent: TS(P) / (TS(1) * P) * 100. */
    double parallelEfficiency(const WorkloadInstance &workload,
                              int ranks) const;

    const PlatformInstance &platform() const { return platform_; }

  private:
    PlatformInstance platform_;
    MpiMachineModel machine_;
};

} // namespace mdbench

#endif // MDBENCH_PERF_CPU_MODEL_H
