#include "perf/cpu_model.h"

#include <algorithm>
#include <cmath>

#include "parallel/decomp.h"
#include "perf/calibration.h"
#include "perf/power.h"
#include "util/error.h"

namespace mdbench {

namespace {

double
precisionFactorCpu(Precision precision, const WorkloadSpec &spec)
{
    switch (precision) {
      case Precision::Single: return calib::kCpuPrecisionSingle;
      case Precision::Mixed:  return 1.0;
      case Precision::Double: return spec.doubleCostFactor;
      default: panic("invalid Precision");
    }
}

} // namespace

double
CpuModelResult::mpiFunctionFraction(MpiFunction fn) const
{
    double total = 0.0;
    for (double s : mpiFunctionSeconds)
        total += s;
    return total > 0.0 ? mpiFunctionSeconds[static_cast<std::size_t>(fn)] /
                             total
                       : 0.0;
}

CpuModel::CpuModel(PlatformInstance platform, MpiMachineModel machine)
    : platform_(std::move(platform)), machine_(machine)
{
    machine_.initBase = calib::kInitBase;
    machine_.initPerRank = calib::kInitPerRank;
}

CpuModelResult
CpuModel::evaluate(const WorkloadInstance &workload, int ranks,
                   long steps) const
{
    require(ranks >= 1 && ranks <= platform_.totalCores(),
            "rank count exceeds physical cores");
    const WorkloadSpec &spec = workload.spec;
    const double natoms = static_cast<double>(workload.natoms);
    const double perRankAtoms = natoms / ranks;

    // Single-core turbo decays toward the all-core turbo as the socket
    // fills.
    const double fillFraction =
        std::min(1.0, static_cast<double>(ranks) / platform_.cpu.cores);
    const double allCoreGHz =
        platform_.cpu.baseGHz * calib::kAllCoreTurboOverBase;
    const double ghz = platform_.cpu.turboGHz -
                       (platform_.cpu.turboGHz - allCoreGHz) * fillFraction;
    const double unitRate =
        calib::kCpuInteractionsPerCycle * ghz * 1e9; // units/s/core

    const double precision = precisionFactorCpu(workload.precision, spec);

    // ---- per-rank work in interaction units -------------------------------
    // Size-dependent cost growth (Chute: deeper packed beds at larger
    // sizes densify the contact network; zero for other workloads).
    const double sizeCost =
        std::pow(natoms / 32000.0, spec.sizeCostExponent);
    const double pairUnits = workload.pairInteractionsPerStep() / ranks *
                             spec.pairCostUnits * precision * sizeCost;

    const double candidateRatio =
        std::pow((spec.cutoff + spec.skin) / spec.cutoff, 3);
    const double neighUnits =
        (perRankAtoms * spec.neighborsPerAtom * candidateRatio *
             calib::kNeighPerCandidate +
         perRankAtoms * calib::kNeighPerAtom) /
            spec.rebuildInterval +
        perRankAtoms * calib::kCheckPerAtom;

    const double bondUnits =
        perRankAtoms * (spec.bondsPerAtom * calib::kBondCost +
                        spec.anglesPerAtom * calib::kAngleCost);

    double kspaceUnits = 0.0;
    if (spec.usesKspace) {
        const double gridPoints =
            static_cast<double>(workload.kspaceGridPoints());
        const double fftUnits = gridPoints * std::log2(gridPoints) *
                                calib::kKspacePerGridPoint /
                                std::pow(ranks, calib::kFftScalingExponent);
        kspaceUnits = perRankAtoms * calib::kKspacePerAtom * precision +
                      fftUnits;
    }

    double modifyUnits = perRankAtoms * calib::kModifyPerAtom;
    if (spec.usesShake)
        modifyUnits += perRankAtoms * calib::kShakePerAtom;
    if (spec.nptIntegration)
        modifyUnits += perRankAtoms * calib::kNptPerAtom;
    modifyUnits += perRankAtoms * spec.extraFixCostPerAtom;

    const double outputUnits = perRankAtoms * calib::kOutputPerAtom;
    const double otherUnits = perRankAtoms * calib::kOtherPerAtom;

    // Memory-subsystem contention as the socket fills (low-utilization
    // styles suffer most; Section 5.2's core-utilization profile).
    const double headroom = 1.0 - spec.coreUtilization;
    const double contention =
        1.0 + calib::kMemContention * headroom * headroom * headroom *
                  fillFraction;
    const double unitsToSeconds = contention / unitRate;
    const double computeSeconds =
        (pairUnits + neighUnits + bondUnits + kspaceUnits + modifyUnits +
         outputUnits + otherUnits) *
        unitsToSeconds;

    // ---- communication ------------------------------------------------------
    Box box({0, 0, 0}, workload.boxLength);
    const Decomposition decomp(ranks, box);
    const double ghostAtoms =
        perRankAtoms * decomp.ghostFraction(spec.cutoff + spec.skin);

    double sendSeconds = 0.0;     // MPI_Send: forward halo each step
    double sendrecvSeconds = 0.0; // MPI_Sendrecv: reverse + borders + FFT
    double allreduceSeconds = 0.0;
    if (ranks > 1) {
        sendSeconds = 6.0 * machine_.latency +
                      ghostAtoms * calib::kBytesForward / machine_.bandwidth;
        if (spec.newton3) {
            sendrecvSeconds +=
                6.0 * machine_.latency +
                ghostAtoms * calib::kBytesReverse / machine_.bandwidth;
        }
        // Border rebuild, amortized over the reneighbor interval.
        sendrecvSeconds += (6.0 * machine_.latency +
                            ghostAtoms * calib::kBytesBorder /
                                machine_.bandwidth) /
                           spec.rebuildInterval;
        allreduceSeconds += machine_.allreduceTime(8, ranks); // rebuild flag
        if (spec.usesKspace) {
            // FFT transposes: each rank re-distributes its grid slab
            // several times per solve; crossing the socket boundary
            // makes the exchange pattern costlier (the paper's greater
            // rhodo efficiency loss from 32 to 64 ranks).
            const double gridPoints =
                static_cast<double>(workload.kspaceGridPoints());
            const double a2aBytes =
                gridPoints * calib::kKspaceBytesPerPoint / ranks;
            const double crossSocket =
                ranks > platform_.cpu.cores ? calib::kCrossSocketA2a : 1.0;
            sendrecvSeconds += 4.0 * ((ranks - 1) * machine_.latency +
                                      a2aBytes / machine_.bandwidth) *
                               crossSocket;
            allreduceSeconds += machine_.allreduceTime(64, ranks);
        }
    }
    const double commSeconds = sendSeconds + sendrecvSeconds;

    // ---- imbalance and totals ----------------------------------------------
    const double imbalance =
        spec.imbalanceFactor * (1.0 - 1.0 / ranks);
    double waitSeconds = computeSeconds * imbalance;
    if (spec.usesKspace && ranks > 1) {
        // Straggler synchronization across the FFT all-to-all rounds.
        waitSeconds += calib::kKspaceSyncLatencyFactor * ranks *
                       machine_.latency;
    }

    const double stepSeconds =
        computeSeconds + waitSeconds + commSeconds + allreduceSeconds;

    // ---- MPI accounting over the modeled run -------------------------------
    CpuModelResult result;
    const double runBody = steps * stepSeconds;
    const double initSeconds =
        ranks > 1 ? machine_.initTime(ranks) +
                        calib::kInitRuntimeShare * runBody *
                            (static_cast<double>(ranks) / 64.0)
                  : 0.0;
    const double runSeconds = runBody + initSeconds;

    auto &fn = result.mpiFunctionSeconds;
    fn[static_cast<std::size_t>(MpiFunction::Init)] = initSeconds;
    fn[static_cast<std::size_t>(MpiFunction::Send)] = steps * sendSeconds;
    fn[static_cast<std::size_t>(MpiFunction::Sendrecv)] =
        steps * sendrecvSeconds;
    fn[static_cast<std::size_t>(MpiFunction::Allreduce)] =
        steps * allreduceSeconds;
    fn[static_cast<std::size_t>(MpiFunction::Wait)] = steps * waitSeconds;
    fn[static_cast<std::size_t>(MpiFunction::Others)] =
        0.02 * steps * commSeconds;

    double mpiSeconds = 0.0;
    for (double s : fn)
        mpiSeconds += s;
    result.mpiTimePercent =
        ranks > 1 ? mpiSeconds / runSeconds * 100.0 : 0.0;
    result.mpiImbalancePercent =
        ranks > 1 ? steps * waitSeconds / runSeconds * 100.0 : 0.0;

    // ---- Table 1 breakdown (mean rank, seconds per step) --------------------
    result.taskBreakdown.add(Task::Pair, pairUnits * unitsToSeconds);
    result.taskBreakdown.add(Task::Neigh, neighUnits * unitsToSeconds);
    result.taskBreakdown.add(Task::Bond, bondUnits * unitsToSeconds);
    result.taskBreakdown.add(Task::Kspace, kspaceUnits * unitsToSeconds);
    result.taskBreakdown.add(Task::Modify, modifyUnits * unitsToSeconds);
    result.taskBreakdown.add(Task::Output, outputUnits * unitsToSeconds);
    result.taskBreakdown.add(Task::Comm, commSeconds + waitSeconds +
                                             allreduceSeconds);
    result.taskBreakdown.add(Task::Other, otherUnits * unitsToSeconds);

    // ---- throughput, power, efficiency --------------------------------------
    result.stepSeconds = stepSeconds;
    result.timestepsPerSecond = 1.0 / stepSeconds;
    result.nsPerDay = result.timestepsPerSecond * 2e-6 * 86400.0;

    result.powerWatts =
        cpuNodeWatts(platform_, ranks, spec.coreUtilization);
    result.energyEfficiency =
        result.timestepsPerSecond / result.powerWatts;
    return result;
}

double
CpuModel::parallelEfficiency(const WorkloadInstance &workload,
                             int ranks) const
{
    const double tsN = evaluate(workload, ranks).timestepsPerSecond;
    const double ts1 = evaluate(workload, 1).timestepsPerSecond;
    return tsN / (ts1 * ranks) * 100.0;
}

} // namespace mdbench
