#include "perf/power.h"

#include <algorithm>

#include "perf/calibration.h"
#include "util/error.h"

namespace mdbench {

double
cpuNodeWatts(const PlatformInstance &platform, int activeCores,
             double utilization)
{
    require(activeCores >= 0 && activeCores <= platform.totalCores(),
            "active core count out of range");
    require(utilization >= 0.0 && utilization <= 1.0,
            "utilization must be in [0, 1]");
    const int socketsActive =
        activeCores > platform.cpu.cores ? platform.sockets : 1;
    const double perCoreWatts =
        (platform.cpu.tdpW - calib::kSocketIdleWatts -
         calib::kUncoreActiveWatts) /
        platform.cpu.cores;
    const double watts = platform.sockets * calib::kSocketIdleWatts +
                         socketsActive * calib::kUncoreActiveWatts +
                         activeCores * perCoreWatts * utilization +
                         40.0; // DRAM + board
    return std::min(watts,
                    platform.sockets * platform.cpu.tdpW + 80.0);
}

double
gpuDeviceWatts(const GpuSpec &gpu, double utilization)
{
    require(utilization >= 0.0 && utilization <= 1.0,
            "utilization must be in [0, 1]");
    return calib::kGpuIdleWatts +
           (gpu.tdpW - calib::kGpuIdleWatts) * utilization;
}

} // namespace mdbench
