/**
 * @file
 * Low-overhead event tracer: per-thread ring buffers of begin/end/instant
 * events, exported as Chrome `trace_event` JSON (loadable in
 * chrome://tracing or Perfetto).
 *
 * Design constraints (DESIGN.md §9):
 *  - Compiled in but disabled, the cost at every instrumentation point is
 *    a single relaxed atomic load (TraceScope checks traceEnabled() and
 *    does nothing else).
 *  - Enabled, each event is a timestamp plus two pointer stores into the
 *    calling thread's private ring buffer — no locks, no allocation on
 *    the hot path (the ring is allocated once per thread on first use).
 *  - Rings wrap: when a thread records more events than its capacity the
 *    oldest events are overwritten and counted as dropped.
 *
 * Category and name strings must be string literals (or otherwise outlive
 * the tracer): events store the pointers, not copies.
 *
 * Export contract: stop tracing (traceDisable()) and let in-flight
 * parallel regions drain before calling writeChromeTrace(); rings are
 * single-writer and the exporter does not synchronize with writers beyond
 * an acquire on each ring's append index.
 */

#ifndef MDBENCH_OBS_TRACE_H
#define MDBENCH_OBS_TRACE_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <ostream>
#include <string>

namespace mdbench {

namespace detail {
/** Process-wide tracing switch; read relaxed on every hot path. */
extern std::atomic<bool> gTraceEnabled;
} // namespace detail

/** True when event recording is on (one relaxed atomic load). */
inline bool
traceEnabled() noexcept
{
    return detail::gTraceEnabled.load(std::memory_order_relaxed);
}

/** Turn event recording on (rings keep any prior events). */
void traceEnable();

/** Turn event recording off. */
void traceDisable();

/** Drop all buffered events and reset the dropped-event count. */
void traceClear();

// The per-event entry points are noexcept so instrumented hot
// functions need no exception-handling paths for them.

/** Record a begin ("B") event on the calling thread. */
void traceBegin(const char *category, const char *name) noexcept;

/** Record an end ("E") event on the calling thread. */
void traceEnd(const char *category, const char *name) noexcept;

/** Record an instant ("i") event on the calling thread. */
void traceInstant(const char *category, const char *name) noexcept;

/** Events currently buffered across all threads. */
std::size_t traceRecordedEvents();

/** Events overwritten by ring wrap since the last traceClear(). */
std::uint64_t traceDroppedEvents();

/**
 * Ring capacity (events per thread) used for rings created after this
 * call; existing rings are resized in place. Call only while no thread
 * is recording (used by tests to exercise the wrap path cheaply).
 */
void traceSetBufferCapacity(std::size_t events);

/** Serialize all buffered events as Chrome trace_event JSON. */
void writeChromeTrace(std::ostream &os);

/**
 * Write the Chrome trace JSON to @p path.
 * @return false (with a warning) when the file cannot be opened.
 */
bool writeChromeTrace(const std::string &path);

/**
 * RAII begin/end pair. The enabled check is hoisted into the
 * constructor so a scope that starts disabled records nothing even if
 * tracing is switched on mid-scope (keeps B/E events paired).
 */
class TraceScope
{
  public:
    TraceScope(const char *category, const char *name) noexcept
    {
        if (traceEnabled()) {
            category_ = category;
            name_ = name;
            traceBegin(category, name);
        }
    }

    ~TraceScope() noexcept
    {
        if (category_ != nullptr)
            traceEnd(category_, name_);
    }

    TraceScope(const TraceScope &) = delete;
    TraceScope &operator=(const TraceScope &) = delete;

  private:
    const char *category_ = nullptr;
    const char *name_ = nullptr;
};

} // namespace mdbench

#endif // MDBENCH_OBS_TRACE_H
