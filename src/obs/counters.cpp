#include "obs/counters.h"

#include "util/error.h"

namespace mdbench {

namespace detail {
std::array<std::atomic<std::uint64_t>, kNumCounters> gCounters{};
std::array<std::atomic<std::uint64_t>, kNumTasks> gTaskNs{};
} // namespace detail

const char *
counterName(Counter counter)
{
    switch (counter) {
      case Counter::NeighBuilds: return "neigh.builds";
      case Counter::NeighTriggerChecks: return "neigh.trigger_checks";
      case Counter::NeighPairs: return "neigh.pairs";
      case Counter::NeighPaddedSlots: return "neigh.padded_slots";
      case Counter::NeighBuildCandidates: return "neigh.build_candidates";
      case Counter::NeighBuildAccepted: return "neigh.build_accepted";
      case Counter::SortApplied: return "neigh.sorts_applied";
      case Counter::SortSkipped: return "neigh.sorts_skipped";
      case Counter::PairComputes: return "pair.computes";
      case Counter::PairInteractions: return "pair.interactions";
      case Counter::PairSimdLanesActive: return "pair.simd_lanes_active";
      case Counter::PairSimdPaddingWaste: return "pair.simd_padding_waste";
      case Counter::PairFloatComputes: return "pair.float_computes";
      case Counter::PairInteriorPairs: return "pair.interior_pairs";
      case Counter::PairBoundaryPairs: return "pair.boundary_pairs";
      case Counter::CommExchanges: return "comm.exchanges";
      case Counter::CommGhostAtoms: return "comm.ghost_atoms";
      case Counter::CommOverlapSteps: return "comm.overlap_steps";
      case Counter::CommBytesInflight: return "comm.bytes_inflight";
      case Counter::KspaceFfts: return "kspace.ffts";
      case Counter::KspaceFft1dLines: return "kspace.fft1d_lines";
      case Counter::KspacePlanCacheHits: return "kspace.plan_cache_hits";
      case Counter::KspaceSolves: return "kspace.solves";
      case Counter::PoolRegions: return "pool.regions";
      case Counter::PoolSlices: return "pool.slices";
      case Counter::MpiMessages: return "mpi.messages";
      case Counter::MpiModeledBytes: return "mpi.modeled_bytes";
      default: panic("invalid Counter enumerator");
    }
}

void
resetCounters()
{
    for (auto &counter : detail::gCounters)
        counter.store(0, std::memory_order_relaxed);
    for (auto &ns : detail::gTaskNs)
        ns.store(0, std::memory_order_relaxed);
}

void
chargeGlobalTask(Task task, double seconds)
{
    if (seconds <= 0.0)
        return;
    detail::gTaskNs[static_cast<std::size_t>(task)].fetch_add(
        static_cast<std::uint64_t>(seconds * 1e9),
        std::memory_order_relaxed);
}

std::array<double, kNumTasks>
globalTaskSeconds()
{
    std::array<double, kNumTasks> seconds{};
    for (std::size_t t = 0; t < kNumTasks; ++t) {
        seconds[t] = static_cast<double>(detail::gTaskNs[t].load(
                         std::memory_order_relaxed)) *
                     1e-9;
    }
    return seconds;
}

} // namespace mdbench
