/**
 * @file
 * Run manifest: one JSON document per bench run — the canonical
 * machine-readable record (`BENCH_*.json` format) behind every figure
 * binary. Captures platform info, build flags, thread count, per-task
 * seconds, all observability counters, and the per-figure result rows
 * that the ASCII tables print.
 *
 * Schema (`mdbench-manifest-v1`):
 *
 *     {
 *       "schema": "mdbench-manifest-v1",
 *       "program": "<bench binary name>",
 *       "platform": { "hostname", "os", "kernel", "arch",
 *                     "hardware_threads", "compiler" },
 *       "build": { "type", "sanitize", "native_arch", "simd",
 *                  "precision" },
 *       "threads": <thread-pool size>,
 *       "tasks": { "<Task name>": seconds, ... all 8 },
 *       "counters": { "<counter name>": value, ... all registered },
 *       "trace": { "recorded": n, "dropped": n },
 *       "tables": [ { "tag", "headers": [...], "rows": [[...], ...] } ]
 *     }
 */

#ifndef MDBENCH_OBS_MANIFEST_H
#define MDBENCH_OBS_MANIFEST_H

#include <ostream>
#include <string>
#include <vector>

#include "util/table.h"

namespace mdbench {

/** Manifest schema identifier emitted in every document. */
inline constexpr const char *kManifestSchema = "mdbench-manifest-v1";

/** Host platform description recorded in the manifest. */
struct HostInfo
{
    std::string hostname;
    std::string os;
    std::string kernel;
    std::string arch;
    std::string compiler;
    int hardwareThreads = 0;
};

/** Collect the information of the machine running this process. */
HostInfo collectHostInfo();

class RunManifest
{
  public:
    explicit RunManifest(std::string program);

    /** Record a result table (figure/table rows) under @p tag. */
    void addTable(const std::string &tag, const Table &table);

    /**
     * Snapshot the process-wide state: thread-pool size, global task
     * seconds, all counters, and trace buffer statistics. Called once,
     * after the run's work is done.
     */
    void captureRuntime();

    /** Serialize the manifest JSON document. */
    void write(std::ostream &os) const;

    /**
     * Write to @p path.
     * @return false (with a warning) when the file cannot be opened.
     */
    bool writeFile(const std::string &path) const;

  private:
    struct TableRecord
    {
        std::string tag;
        std::vector<std::string> headers;
        std::vector<std::vector<std::string>> rows;
    };

    std::string program_;
    HostInfo host_;
    int threads_ = 0;
    std::string precision_;   ///< active tier at captureRuntime()
    std::string neighLayout_; ///< active packing layout at captureRuntime()
    std::vector<double> taskSeconds_;   ///< kNumTasks entries
    std::vector<std::uint64_t> counts_; ///< kNumCounters entries
    std::uint64_t traceRecorded_ = 0;
    std::uint64_t traceDropped_ = 0;
    std::vector<TableRecord> tables_;
};

/**
 * The manifest of the bench run in progress (set by BenchRun), or
 * nullptr. emitTable() mirrors every printed table into it so figure
 * rows land in the manifest without per-bench plumbing.
 */
RunManifest *activeManifest();

/** Install (or clear, with nullptr) the active manifest. */
void setActiveManifest(RunManifest *manifest);

} // namespace mdbench

#endif // MDBENCH_OBS_MANIFEST_H
