/**
 * @file
 * Instrumented replacement for util's ScopedTask: charges the enclosing
 * scope's wall time to a Simulation-local TaskTimer *and* to the
 * process-global task accumulator (obs/counters), and brackets it with
 * a "task"-category trace event pair.
 *
 * Disabled-tracer cost per scope: the TaskTimer bookkeeping it replaces,
 * one relaxed atomic load, and one relaxed fetch_add.
 */

#ifndef MDBENCH_OBS_TASK_SCOPE_H
#define MDBENCH_OBS_TASK_SCOPE_H

#include "obs/counters.h"
#include "obs/trace.h"
#include "util/timer.h"

namespace mdbench {

class TaskScope
{
  public:
    TaskScope(TaskTimer &timer, Task task) : timer_(timer), task_(task)
    {
        timer_.start(task);
        if (traceEnabled()) {
            traced_ = true;
            traceBegin("task", taskName(task));
        }
        wall_.reset();
    }

    ~TaskScope()
    {
        // Inclusive wall time: a nested TaskScope charges its full
        // extent here, while TaskTimer's stack charges self-time only.
        chargeGlobalTask(task_, wall_.seconds());
        timer_.stop();
        if (traced_)
            traceEnd("task", taskName(task_));
    }

    TaskScope(const TaskScope &) = delete;
    TaskScope &operator=(const TaskScope &) = delete;

  private:
    TaskTimer &timer_;
    Task task_;
    WallTimer wall_;
    bool traced_ = false;
};

} // namespace mdbench

#endif // MDBENCH_OBS_TASK_SCOPE_H
