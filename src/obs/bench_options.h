/**
 * @file
 * Shared command-line options for every bench binary: `--trace FILE`,
 * `--manifest FILE`, `--log-level LEVEL`, `--precision TIER` (and
 * `--help` for the shared flags). BenchRun is the one-liner each bench
 * main creates; it parses
 * and strips the shared flags (leaving unknown flags, e.g. google-
 * benchmark's, untouched), enables the tracer, installs the active
 * manifest, and writes both output files when the run ends.
 */

#ifndef MDBENCH_OBS_BENCH_OPTIONS_H
#define MDBENCH_OBS_BENCH_OPTIONS_H

#include <string>

#include "obs/manifest.h"

namespace mdbench {

/** The shared flags, parsed. */
struct BenchOptions
{
    std::string tracePath;    ///< --trace FILE (empty = no trace)
    std::string manifestPath; ///< --manifest FILE (empty = no manifest)
    std::string logLevel;     ///< --log-level LEVEL (empty = unchanged)
    std::string precision;    ///< --precision TIER (empty = unchanged)
    std::string neighLayout;  ///< --neigh-layout NAME (empty = unchanged)
    bool help = false;        ///< --help seen
    bool noSimd = false;      ///< --no-simd seen (scalar pair kernels)
};

/**
 * Parse the shared flags out of @p argv, compacting it in place and
 * decrementing @p argc (both `--flag value` and `--flag=value` forms).
 * Unrecognized arguments are kept in order. fatal() on a shared flag
 * with a missing value or an invalid --log-level.
 */
BenchOptions parseBenchOptions(int &argc, char **argv);

/** Usage text for the shared flags. */
const char *benchOptionsUsage();

/**
 * RAII driver of one observable bench run. Construct first thing in
 * main(); destruction (normal return) finalizes the manifest and
 * writes the requested output files.
 */
class BenchRun
{
  public:
    BenchRun(int &argc, char **argv, const std::string &program);
    ~BenchRun();

    BenchRun(const BenchRun &) = delete;
    BenchRun &operator=(const BenchRun &) = delete;

    RunManifest &manifest() { return manifest_; }
    const BenchOptions &options() const { return options_; }

  private:
    BenchOptions options_;
    RunManifest manifest_;
};

} // namespace mdbench

#endif // MDBENCH_OBS_BENCH_OPTIONS_H
