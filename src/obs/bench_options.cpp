#include "obs/bench_options.h"

#include <cstdio>
#include <cstring>

#include "obs/trace.h"
#include "util/error.h"
#include "util/logging.h"
#include "util/neigh_layout.h"
#include "util/precision.h"
#include "util/simd.h"

namespace mdbench {

namespace {

/**
 * Match `--name value` / `--name=value` at argv[i]; on a hit, store the
 * value and the number of argv slots consumed (1 or 2).
 */
bool
matchValueFlag(int argc, char **argv, int i, const char *name,
               std::string &value, int &consumed)
{
    const std::size_t len = std::strlen(name);
    if (std::strncmp(argv[i], name, len) != 0)
        return false;
    if (argv[i][len] == '=') {
        value = argv[i] + len + 1;
        consumed = 1;
        return true;
    }
    if (argv[i][len] == '\0') {
        require(i + 1 < argc,
                std::string(name) + " requires a value argument");
        value = argv[i + 1];
        consumed = 2;
        return true;
    }
    return false;
}

} // namespace

BenchOptions
parseBenchOptions(int &argc, char **argv)
{
    BenchOptions options;
    int out = 1;
    for (int i = 1; i < argc;) {
        int consumed = 1;
        if (matchValueFlag(argc, argv, i, "--trace", options.tracePath,
                           consumed) ||
            matchValueFlag(argc, argv, i, "--manifest",
                           options.manifestPath, consumed) ||
            matchValueFlag(argc, argv, i, "--log-level", options.logLevel,
                           consumed) ||
            matchValueFlag(argc, argv, i, "--precision",
                           options.precision, consumed) ||
            matchValueFlag(argc, argv, i, "--neigh-layout",
                           options.neighLayout, consumed)) {
            i += consumed;
            continue;
        }
        if (std::strcmp(argv[i], "--no-simd") == 0) {
            options.noSimd = true;
            ++i;
            continue;
        }
        if (std::strcmp(argv[i], "--help") == 0) {
            options.help = true;
            // keep --help visible to wrapped parsers (google-benchmark)
        }
        argv[out++] = argv[i++];
    }
    argc = out;
    argv[argc] = nullptr;

    if (!options.logLevel.empty()) {
        const auto level = parseLogLevel(options.logLevel);
        require(level.has_value(),
                "invalid --log-level '" + options.logLevel +
                    "' (want silent|warn|inform|debug or 0-3)");
        setLogLevel(*level);
    }
    if (!options.precision.empty()) {
        Precision tier = Precision::EngineDefault;
        require(parsePrecision(options.precision.c_str(), tier),
                "invalid --precision '" + options.precision +
                    "' (want double|mixed|single|default)");
        setPrecisionTier(tier);
    }
    if (!options.neighLayout.empty()) {
        NeighLayout layout = NeighLayout::Csr;
        require(parseNeighLayout(options.neighLayout.c_str(), layout),
                "invalid --neigh-layout '" + options.neighLayout +
                    "' (want csr|cluster)");
        setNeighLayout(static_cast<int>(layout));
    }
    return options;
}

const char *
benchOptionsUsage()
{
    return "shared bench options:\n"
           "  --trace FILE      write a Chrome trace_event JSON "
           "(chrome://tracing, Perfetto)\n"
           "  --manifest FILE   write the run manifest JSON "
           "(mdbench-manifest-v1)\n"
           "  --log-level L     silent|warn|inform|debug or 0-3 "
           "(overrides MDBENCH_LOG_LEVEL)\n"
           "  --no-simd         run scalar pair kernels "
           "(overrides MDBENCH_SIMD)\n"
           "  --precision TIER  double|mixed|single|default native "
           "compute tier (overrides MDBENCH_PRECISION)\n"
           "  --neigh-layout L  csr|cluster neighbor packing layout "
           "(overrides MDBENCH_NEIGH_LAYOUT)\n";
}

BenchRun::BenchRun(int &argc, char **argv, const std::string &program)
    : options_(parseBenchOptions(argc, argv)), manifest_(program)
{
    if (options_.help)
        std::fputs(benchOptionsUsage(), stdout);
    if (options_.noSimd)
        setSimdWidth(0);
    if (!options_.tracePath.empty())
        traceEnable();
    setActiveManifest(&manifest_);
}

BenchRun::~BenchRun()
{
    setActiveManifest(nullptr);
    if (!options_.tracePath.empty())
        traceDisable();
    manifest_.captureRuntime();
    if (!options_.manifestPath.empty() &&
        manifest_.writeFile(options_.manifestPath)) {
        std::fprintf(stderr, "manifest written to %s\n",
                     options_.manifestPath.c_str());
    }
    if (!options_.tracePath.empty() &&
        writeChromeTrace(options_.tracePath)) {
        std::fprintf(stderr, "trace written to %s\n",
                     options_.tracePath.c_str());
    }
}

} // namespace mdbench
