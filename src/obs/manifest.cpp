#include "obs/manifest.h"

#include <fstream>
#include <thread>

#include "obs/counters.h"
#include "obs/json.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/neigh_layout.h"
#include "util/precision.h"
#include "util/simd.h"
#include "util/thread_pool.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/utsname.h>
#include <unistd.h>
#endif

// Build description injected by the top-level CMakeLists; fall back to
// unknowns so the file also compiles standalone.
#ifndef MDBENCH_BUILD_TYPE
#define MDBENCH_BUILD_TYPE "unknown"
#endif
#ifndef MDBENCH_BUILD_SANITIZE
#define MDBENCH_BUILD_SANITIZE ""
#endif
#ifndef MDBENCH_BUILD_NATIVE_ARCH
#define MDBENCH_BUILD_NATIVE_ARCH 0
#endif

namespace mdbench {

namespace {

RunManifest *gActiveManifest = nullptr;

} // namespace

HostInfo
collectHostInfo()
{
    HostInfo info;
    info.hardwareThreads =
        static_cast<int>(std::thread::hardware_concurrency());
#if defined(__unix__) || defined(__APPLE__)
    struct utsname names;
    if (uname(&names) == 0) {
        info.os = names.sysname;
        info.kernel = names.release;
        info.arch = names.machine;
        info.hostname = names.nodename;
    }
    char host[256] = {0};
    if (info.hostname.empty() && gethostname(host, sizeof(host) - 1) == 0)
        info.hostname = host;
#endif
    if (info.os.empty())
        info.os = "unknown";
#if defined(__VERSION__)
    info.compiler = __VERSION__;
#else
    info.compiler = "unknown";
#endif
    return info;
}

RunManifest::RunManifest(std::string program)
    : program_(std::move(program)), host_(collectHostInfo())
{
}

void
RunManifest::addTable(const std::string &tag, const Table &table)
{
    TableRecord record;
    record.tag = tag;
    record.headers = table.headers();
    record.rows = table.rowData();
    tables_.push_back(std::move(record));
}

void
RunManifest::captureRuntime()
{
    threads_ = ThreadPool::threads();
    precision_ = precisionName(precisionTier());
    neighLayout_ = neighLayoutName(neighLayout());
    const auto tasks = globalTaskSeconds();
    taskSeconds_.assign(tasks.begin(), tasks.end());
    counts_.resize(kNumCounters);
    for (std::size_t c = 0; c < kNumCounters; ++c)
        counts_[c] = counterValue(static_cast<Counter>(c));
    traceRecorded_ = traceRecordedEvents();
    traceDropped_ = traceDroppedEvents();
}

void
RunManifest::write(std::ostream &os) const
{
    JsonWriter json(os);
    json.beginObject();
    json.key("schema").value(kManifestSchema);
    json.key("program").value(program_);

    json.key("platform").beginObject();
    json.key("hostname").value(host_.hostname);
    json.key("os").value(host_.os);
    json.key("kernel").value(host_.kernel);
    json.key("arch").value(host_.arch);
    json.key("hardware_threads").value(host_.hardwareThreads);
    json.key("compiler").value(host_.compiler);
    json.endObject();

    json.key("build").beginObject();
    json.key("type").value(MDBENCH_BUILD_TYPE);
    json.key("sanitize").value(MDBENCH_BUILD_SANITIZE);
    json.key("native_arch").value(MDBENCH_BUILD_NATIVE_ARCH != 0);
    json.key("simd").value(simdIsaName());
    json.key("precision").value(precision_.empty() ? "double"
                                                   : precision_.c_str());
    json.key("neigh_layout")
        .value(neighLayout_.empty() ? "csr" : neighLayout_.c_str());
    json.endObject();

    json.key("threads").value(threads_);

    json.key("tasks").beginObject();
    for (std::size_t t = 0; t < kNumTasks; ++t) {
        json.key(taskName(static_cast<Task>(t)))
            .value(t < taskSeconds_.size() ? taskSeconds_[t] : 0.0);
    }
    json.endObject();

    json.key("counters").beginObject();
    for (std::size_t c = 0; c < kNumCounters; ++c) {
        json.key(counterName(static_cast<Counter>(c)))
            .value(c < counts_.size() ? counts_[c] : std::uint64_t{0});
    }
    json.endObject();

    json.key("trace").beginObject();
    json.key("recorded").value(traceRecorded_);
    json.key("dropped").value(traceDropped_);
    json.endObject();

    json.key("tables").beginArray();
    for (const auto &table : tables_) {
        json.beginObject();
        json.key("tag").value(table.tag);
        json.key("headers").beginArray();
        for (const auto &header : table.headers)
            json.value(header);
        json.endArray();
        json.key("rows").beginArray();
        for (const auto &row : table.rows) {
            json.beginArray();
            for (const auto &cell : row)
                json.value(cell);
            json.endArray();
        }
        json.endArray();
        json.endObject();
    }
    json.endArray();

    json.endObject();
    os << '\n';
}

bool
RunManifest::writeFile(const std::string &path) const
{
    std::ofstream file(path);
    if (!file) {
        warn("manifest: cannot open " + path + " for writing");
        return false;
    }
    write(file);
    return file.good();
}

RunManifest *
activeManifest()
{
    return gActiveManifest;
}

void
setActiveManifest(RunManifest *manifest)
{
    gActiveManifest = manifest;
}

} // namespace mdbench
