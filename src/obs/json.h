/**
 * @file
 * Minimal JSON support for the observability layer: a streaming writer
 * (manifests, trace export) and a small recursive-descent parser used
 * to validate emitted documents in tests.
 *
 * Deliberately tiny — no external dependency, no DOM mutation API.
 * The parser accepts the JSON this repository emits (objects, arrays,
 * strings with standard escapes, numbers, booleans, null) and is strict
 * about structure (trailing garbage or malformed literals fail).
 */

#ifndef MDBENCH_OBS_JSON_H
#define MDBENCH_OBS_JSON_H

#include <cstddef>
#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace mdbench {

/** Escape @p text for inclusion in a JSON string literal. */
std::string jsonEscape(const std::string &text);

/**
 * Streaming JSON writer with automatic comma placement. Calls must
 * form a well-nested document: a value (or key+value inside objects)
 * at a time, beginObject/endObject and beginArray/endArray balanced.
 */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &os) : os_(os) {}

    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Emit an object key; the next call must emit its value. */
    JsonWriter &key(const std::string &name);

    JsonWriter &value(const std::string &text);
    JsonWriter &value(const char *text);
    JsonWriter &value(double number);
    JsonWriter &value(std::uint64_t number);
    JsonWriter &value(int number);
    JsonWriter &value(bool flag);

  private:
    /** Emit the separating comma, if a sibling value precedes. */
    void separate();

    std::ostream &os_;
    std::vector<bool> hasSibling_; ///< per open scope
    bool pendingKey_ = false;
};

/**
 * Parsed JSON value (immutable once parsed). Object member order is
 * preserved.
 */
class JsonValue
{
  public:
    enum class Type { Null, Bool, Number, String, Array, Object };

    /** Parse @p text; std::nullopt on any syntax error. */
    static std::optional<JsonValue> parse(const std::string &text);

    Type type() const { return type_; }
    bool isObject() const { return type_ == Type::Object; }
    bool isArray() const { return type_ == Type::Array; }

    bool asBool() const { return boolean_; }
    double asNumber() const { return number_; }
    const std::string &asString() const { return string_; }

    /** Array length or object member count (0 for scalars). */
    std::size_t size() const;

    /** Object lookup; nullptr when absent or not an object. */
    const JsonValue *find(const std::string &name) const;

    /** Array element access (must be an array, index in range). */
    const JsonValue &at(std::size_t index) const;

    /** Object members in document order. */
    const std::vector<std::pair<std::string, JsonValue>> &
    members() const
    {
        return members_;
    }

  private:
    Type type_ = Type::Null;
    bool boolean_ = false;
    double number_ = 0.0;
    std::string string_;
    std::vector<JsonValue> elements_;
    std::vector<std::pair<std::string, JsonValue>> members_;

    friend class JsonParser;
};

} // namespace mdbench

#endif // MDBENCH_OBS_JSON_H
