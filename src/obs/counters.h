/**
 * @file
 * Process-wide observability counters (DESIGN.md §9).
 *
 * A fixed registry of monotonically increasing event counters covering
 * the engine's hot layers (neighbor rebuilds, pair interactions, ghost
 * exchange, FFT transforms, thread-pool work, modeled MPI traffic),
 * plus a process-global per-Task seconds accumulator that mirrors the
 * Simulation-local TaskTimer into the run manifest.
 *
 * counterAdd() is the COUNTER_ADD-style accessor: one relaxed atomic
 * fetch_add, safe from any thread, cheap enough to stay always-on (call
 * it once per kernel invocation or slice, never per atom).
 */

#ifndef MDBENCH_OBS_COUNTERS_H
#define MDBENCH_OBS_COUNTERS_H

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>

#include "util/timer.h"

namespace mdbench {

/** The registered counters. Keep counterName() in sync. */
enum class Counter : std::size_t {
    NeighBuilds = 0,    ///< neighbor-list builds
    NeighTriggerChecks, ///< displacement trigger evaluations
    NeighPairs,         ///< pairs stored by neighbor builds
    NeighPaddedSlots,   ///< sentinel slots added by SIMD padded packing
    NeighBuildCandidates, ///< stencil candidates examined by builds
    NeighBuildAccepted,   ///< candidates accepted into the list
    SortApplied,        ///< spatial atom reorders applied
    SortSkipped,        ///< sort-enabled rebuilds that did not reorder
    PairComputes,       ///< pair-style compute() calls
    PairInteractions,   ///< neighbor pairs visited by pair kernels
    PairSimdLanesActive,  ///< real-pair lanes processed by SIMD kernels
    PairSimdPaddingWaste, ///< sentinel lanes processed by SIMD kernels
    PairFloatComputes,    ///< pair compute() calls run at a float tier
    PairInteriorPairs,    ///< pairs computed in interior (pre-halo) passes
    PairBoundaryPairs,    ///< pairs computed in boundary (post-halo) passes
    CommExchanges,      ///< comm exchange/borders rebuilds
    CommGhostAtoms,     ///< ghost atoms created by borders()
    CommOverlapSteps,   ///< steps whose halo exchange overlapped compute
    CommBytesInflight,  ///< halo bytes in flight during interior compute
    KspaceFfts,         ///< 3-D FFT transforms executed
    KspaceFft1dLines,   ///< 1-D line transforms batched by 3-D FFTs
    KspacePlanCacheHits,///< FFT plan cache lookups served from cache
    KspaceSolves,       ///< k-space solver compute() calls
    PoolRegions,        ///< thread-pool parallel regions dispatched
    PoolSlices,         ///< slices executed across all regions
    MpiMessages,        ///< modeled MPI messages (ranked runs)
    MpiModeledBytes,    ///< modeled MPI payload bytes (ranked runs)
    NumCounters
};

constexpr std::size_t kNumCounters =
    static_cast<std::size_t>(Counter::NumCounters);

namespace detail {
extern std::array<std::atomic<std::uint64_t>, kNumCounters> gCounters;
extern std::array<std::atomic<std::uint64_t>, kNumTasks> gTaskNs;
} // namespace detail

/** Stable machine-readable name, e.g. "neigh.builds". */
const char *counterName(Counter counter);

/** Add @p n to @p counter (relaxed; safe from any thread). */
inline void
counterAdd(Counter counter, std::uint64_t n = 1) noexcept
{
    detail::gCounters[static_cast<std::size_t>(counter)].fetch_add(
        n, std::memory_order_relaxed);
}

/** Current value of @p counter. */
inline std::uint64_t
counterValue(Counter counter) noexcept
{
    return detail::gCounters[static_cast<std::size_t>(counter)].load(
        std::memory_order_relaxed);
}

/** Zero every counter and the global task accumulator (tests/benches). */
void resetCounters();

/**
 * Charge @p seconds of wall time to the process-global accumulator for
 * @p task (inclusive time: nested scopes charge their full extent).
 */
void chargeGlobalTask(Task task, double seconds);

/** Process-global accumulated seconds per Table 1 task. */
std::array<double, kNumTasks> globalTaskSeconds();

} // namespace mdbench

#endif // MDBENCH_OBS_COUNTERS_H
