#include "obs/trace.h"

#include <chrono>
#include <fstream>
#include <memory>
#include <mutex>
#include <vector>

#include "util/logging.h"

namespace mdbench {

namespace detail {
std::atomic<bool> gTraceEnabled{false};
} // namespace detail

namespace {

/** Event phases, matching the Chrome trace_event "ph" field. */
enum class Phase : std::uint8_t { Begin, End, Instant };

struct TraceEvent
{
    const char *category;
    const char *name;
    std::uint64_t tsNs; ///< nanoseconds since the tracer epoch
    Phase phase;
};

/**
 * One thread's event ring. Single writer (the owning thread); the
 * exporter reads under the registry mutex after acquiring `appended`.
 * `appended` counts every event ever recorded; the live window is the
 * last min(appended, capacity) slots, so wrap drops the oldest events.
 */
struct EventRing
{
    explicit EventRing(int tid, std::size_t capacity)
        : tid(tid), events(capacity)
    {
    }

    int tid;
    std::vector<TraceEvent> events;
    std::atomic<std::uint64_t> appended{0};

    std::uint64_t
    dropped() const
    {
        const std::uint64_t n = appended.load(std::memory_order_acquire);
        return n > events.size() ? n - events.size() : 0;
    }
};

struct Registry
{
    std::mutex mutex;
    std::vector<std::shared_ptr<EventRing>> rings;
    std::size_t capacity = 1 << 15; ///< events per thread (~1 MB)
    int nextTid = 0;
};

Registry &
registry()
{
    static Registry instance;
    return instance;
}

std::chrono::steady_clock::time_point
epoch()
{
    static const auto start = std::chrono::steady_clock::now();
    return start;
}

std::uint64_t
nowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch())
            .count());
}

/** The calling thread's ring, created and registered on first use. */
EventRing &
threadRing()
{
    // The registry holds a shared_ptr so rings survive thread exit and
    // their events still appear in the export.
    thread_local std::shared_ptr<EventRing> ring = [] {
        Registry &reg = registry();
        std::lock_guard<std::mutex> lock(reg.mutex);
        auto created =
            std::make_shared<EventRing>(reg.nextTid++, reg.capacity);
        reg.rings.push_back(created);
        return created;
    }();
    return *ring;
}

void
record(const char *category, const char *name, Phase phase)
{
    EventRing &ring = threadRing();
    const std::uint64_t n = ring.appended.load(std::memory_order_relaxed);
    TraceEvent &slot = ring.events[n % ring.events.size()];
    slot.category = category;
    slot.name = name;
    slot.tsNs = nowNs();
    slot.phase = phase;
    // Release so the exporter's acquire on `appended` sees the slot.
    ring.appended.store(n + 1, std::memory_order_release);
}

char
phaseChar(Phase phase)
{
    switch (phase) {
      case Phase::Begin: return 'B';
      case Phase::End: return 'E';
      default: return 'i';
    }
}

} // namespace

void
traceEnable()
{
    epoch(); // pin the timestamp origin before the first event
    detail::gTraceEnabled.store(true);
}

void
traceDisable()
{
    detail::gTraceEnabled.store(false);
}

void
traceClear()
{
    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    for (auto &ring : reg.rings)
        ring->appended.store(0, std::memory_order_release);
}

void
traceBegin(const char *category, const char *name) noexcept
{
    if (traceEnabled())
        record(category, name, Phase::Begin);
}

void
traceEnd(const char *category, const char *name) noexcept
{
    if (traceEnabled())
        record(category, name, Phase::End);
}

void
traceInstant(const char *category, const char *name) noexcept
{
    if (traceEnabled())
        record(category, name, Phase::Instant);
}

std::size_t
traceRecordedEvents()
{
    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    std::size_t total = 0;
    for (const auto &ring : reg.rings) {
        const std::uint64_t n =
            ring->appended.load(std::memory_order_acquire);
        total += static_cast<std::size_t>(
            std::min<std::uint64_t>(n, ring->events.size()));
    }
    return total;
}

std::uint64_t
traceDroppedEvents()
{
    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    std::uint64_t total = 0;
    for (const auto &ring : reg.rings)
        total += ring->dropped();
    return total;
}

void
traceSetBufferCapacity(std::size_t events)
{
    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    reg.capacity = events > 0 ? events : 1;
    for (auto &ring : reg.rings) {
        ring->events.assign(reg.capacity, TraceEvent{});
        ring->appended.store(0, std::memory_order_release);
    }
}

void
writeChromeTrace(std::ostream &os)
{
    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    bool first = true;
    for (const auto &ring : reg.rings) {
        const std::uint64_t appended =
            ring->appended.load(std::memory_order_acquire);
        const std::uint64_t capacity = ring->events.size();
        const std::uint64_t window = std::min(appended, capacity);
        for (std::uint64_t k = appended - window; k < appended; ++k) {
            const TraceEvent &event = ring->events[k % capacity];
            if (!first)
                os << ',';
            first = false;
            os << "{\"name\":\"" << event.name << "\",\"cat\":\""
               << event.category << "\",\"ph\":\""
               << phaseChar(event.phase) << "\",\"pid\":1,\"tid\":"
               << ring->tid << ",\"ts\":"
               << static_cast<double>(event.tsNs) / 1000.0;
            if (event.phase == Phase::Instant)
                os << ",\"s\":\"t\"";
            os << '}';
        }
    }
    os << "]}\n";
}

bool
writeChromeTrace(const std::string &path)
{
    std::ofstream file(path);
    if (!file) {
        warn("trace: cannot open " + path + " for writing");
        return false;
    }
    writeChromeTrace(file);
    return file.good();
}

} // namespace mdbench
