#include "obs/json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

#include "util/error.h"

namespace mdbench {

std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

// -- JsonWriter -------------------------------------------------------------

void
JsonWriter::separate()
{
    if (pendingKey_) {
        pendingKey_ = false;
        return; // the key already emitted the comma
    }
    if (!hasSibling_.empty()) {
        if (hasSibling_.back())
            os_ << ',';
        hasSibling_.back() = true;
    }
}

JsonWriter &
JsonWriter::beginObject()
{
    separate();
    os_ << '{';
    hasSibling_.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    ensure(!hasSibling_.empty(), "JsonWriter::endObject without begin");
    hasSibling_.pop_back();
    os_ << '}';
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    separate();
    os_ << '[';
    hasSibling_.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    ensure(!hasSibling_.empty(), "JsonWriter::endArray without begin");
    hasSibling_.pop_back();
    os_ << ']';
    return *this;
}

JsonWriter &
JsonWriter::key(const std::string &name)
{
    separate();
    os_ << '"' << jsonEscape(name) << "\":";
    pendingKey_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &text)
{
    separate();
    os_ << '"' << jsonEscape(text) << '"';
    return *this;
}

JsonWriter &
JsonWriter::value(const char *text)
{
    return value(std::string(text));
}

JsonWriter &
JsonWriter::value(double number)
{
    separate();
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", number);
    os_ << buf;
    return *this;
}

JsonWriter &
JsonWriter::value(std::uint64_t number)
{
    separate();
    os_ << number;
    return *this;
}

JsonWriter &
JsonWriter::value(int number)
{
    separate();
    os_ << number;
    return *this;
}

JsonWriter &
JsonWriter::value(bool flag)
{
    separate();
    os_ << (flag ? "true" : "false");
    return *this;
}

// -- JsonValue --------------------------------------------------------------

std::size_t
JsonValue::size() const
{
    if (type_ == Type::Array)
        return elements_.size();
    if (type_ == Type::Object)
        return members_.size();
    return 0;
}

const JsonValue *
JsonValue::find(const std::string &name) const
{
    if (type_ != Type::Object)
        return nullptr;
    for (const auto &[key, member] : members_) {
        if (key == name)
            return &member;
    }
    return nullptr;
}

const JsonValue &
JsonValue::at(std::size_t index) const
{
    ensure(type_ == Type::Array && index < elements_.size(),
           "JsonValue::at out of range");
    return elements_[index];
}

/** Recursive-descent parser over a string view of the document. */
class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : text_(text) {}

    std::optional<JsonValue>
    run()
    {
        JsonValue value;
        if (!parseValue(value))
            return std::nullopt;
        skipSpace();
        if (pos_ != text_.size())
            return std::nullopt; // trailing garbage
        return value;
    }

  private:
    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    bool
    literal(const char *word)
    {
        std::size_t n = 0;
        while (word[n] != '\0') {
            if (pos_ + n >= text_.size() || text_[pos_ + n] != word[n])
                return false;
            ++n;
        }
        pos_ += n;
        return true;
    }

    bool
    parseString(std::string &out)
    {
        if (text_[pos_] != '"')
            return false;
        ++pos_;
        out.clear();
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"')
                return true;
            if (c == '\\') {
                if (pos_ >= text_.size())
                    return false;
                const char esc = text_[pos_++];
                switch (esc) {
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/': out += '/'; break;
                  case 'b': out += '\b'; break;
                  case 'f': out += '\f'; break;
                  case 'n': out += '\n'; break;
                  case 'r': out += '\r'; break;
                  case 't': out += '\t'; break;
                  case 'u': {
                    if (pos_ + 4 > text_.size())
                        return false;
                    const std::string hex = text_.substr(pos_, 4);
                    pos_ += 4;
                    const long code = std::strtol(hex.c_str(), nullptr, 16);
                    // Non-BMP escapes are not needed by our documents;
                    // encode the BMP code point as UTF-8.
                    if (code < 0x80) {
                        out += static_cast<char>(code);
                    } else if (code < 0x800) {
                        out += static_cast<char>(0xC0 | (code >> 6));
                        out += static_cast<char>(0x80 | (code & 0x3F));
                    } else {
                        out += static_cast<char>(0xE0 | (code >> 12));
                        out += static_cast<char>(0x80 |
                                                 ((code >> 6) & 0x3F));
                        out += static_cast<char>(0x80 | (code & 0x3F));
                    }
                    break;
                  }
                  default: return false;
                }
            } else {
                out += c;
            }
        }
        return false; // unterminated
    }

    bool
    parseValue(JsonValue &out)
    {
        skipSpace();
        if (pos_ >= text_.size())
            return false;
        const char c = text_[pos_];
        if (c == '{')
            return parseObject(out);
        if (c == '[')
            return parseArray(out);
        if (c == '"') {
            out.type_ = JsonValue::Type::String;
            return parseString(out.string_);
        }
        if (c == 't') {
            out.type_ = JsonValue::Type::Bool;
            out.boolean_ = true;
            return literal("true");
        }
        if (c == 'f') {
            out.type_ = JsonValue::Type::Bool;
            out.boolean_ = false;
            return literal("false");
        }
        if (c == 'n') {
            out.type_ = JsonValue::Type::Null;
            return literal("null");
        }
        return parseNumber(out);
    }

    bool
    parseNumber(JsonValue &out)
    {
        const char *start = text_.c_str() + pos_;
        // strtod is laxer than JSON (hex, inf, leading zeros, ".5"); check
        // the token against the JSON number grammar before converting.
        const char *p = start;
        if (*p == '-')
            ++p;
        if (*p == '0') {
            ++p;
        } else if (*p >= '1' && *p <= '9') {
            while (*p >= '0' && *p <= '9')
                ++p;
        } else {
            return false;
        }
        if (*p == '.') {
            ++p;
            if (*p < '0' || *p > '9')
                return false;
            while (*p >= '0' && *p <= '9')
                ++p;
        }
        if (*p == 'e' || *p == 'E') {
            ++p;
            if (*p == '+' || *p == '-')
                ++p;
            if (*p < '0' || *p > '9')
                return false;
            while (*p >= '0' && *p <= '9')
                ++p;
        }
        char *end = nullptr;
        const double number = std::strtod(start, &end);
        if (end != p)
            return false;
        pos_ += static_cast<std::size_t>(end - start);
        out.type_ = JsonValue::Type::Number;
        out.number_ = number;
        return true;
    }

    bool
    parseObject(JsonValue &out)
    {
        out.type_ = JsonValue::Type::Object;
        ++pos_; // '{'
        skipSpace();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            return true;
        }
        for (;;) {
            skipSpace();
            std::string name;
            if (pos_ >= text_.size() || !parseString(name))
                return false;
            skipSpace();
            if (pos_ >= text_.size() || text_[pos_++] != ':')
                return false;
            JsonValue member;
            if (!parseValue(member))
                return false;
            out.members_.emplace_back(std::move(name), std::move(member));
            skipSpace();
            if (pos_ >= text_.size())
                return false;
            const char next = text_[pos_++];
            if (next == '}')
                return true;
            if (next != ',')
                return false;
        }
    }

    bool
    parseArray(JsonValue &out)
    {
        out.type_ = JsonValue::Type::Array;
        ++pos_; // '['
        skipSpace();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            return true;
        }
        for (;;) {
            JsonValue element;
            if (!parseValue(element))
                return false;
            out.elements_.push_back(std::move(element));
            skipSpace();
            if (pos_ >= text_.size())
                return false;
            const char next = text_[pos_++];
            if (next == ']')
                return true;
            if (next != ',')
                return false;
        }
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

std::optional<JsonValue>
JsonValue::parse(const std::string &text)
{
    return JsonParser(text).run();
}

} // namespace mdbench
