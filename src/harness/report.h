/**
 * @file
 * Paper-style figure/table emitters (the Aggregator + Formatted Output
 * stages of Figure 2): every bench binary renders its figure through
 * these helpers so the output is uniform and machine-readable.
 */

#ifndef MDBENCH_HARNESS_REPORT_H
#define MDBENCH_HARNESS_REPORT_H

#include <ostream>
#include <string>
#include <vector>

#include "harness/experiment.h"
#include "util/table.h"

namespace mdbench {

/** Print a figure banner: id, caption, and reproduction mode. */
void printFigureHeader(std::ostream &os, const std::string &figureId,
                       const std::string &caption);

/**
 * Fig. 3 / Fig. 7 style: one row per (benchmark, size, resources) with
 * percentage columns per Table 1 task.
 */
Table makeBreakdownTable(const std::vector<ExperimentRecord> &records,
                         const std::string &resourceHeader);

/**
 * Fig. 5 / Fig. 12 style: percentage columns per MPI function.
 */
Table makeMpiFunctionTable(const std::vector<ExperimentRecord> &records);

/**
 * Fig. 4 / Fig. 14 style: total MPI % and imbalance % columns.
 */
Table makeMpiOverheadTable(const std::vector<ExperimentRecord> &records);

/**
 * Fig. 6 / Fig. 9 / Fig. 10 ... style: TS/s, efficiency columns.
 */
Table makeScalingTable(const std::vector<ExperimentRecord> &records,
                       const std::string &resourceHeader, bool gpu = false);

/**
 * Anchor comparison: paper value vs reproduced value with the ratio,
 * recorded in EXPERIMENTS.md.
 */
class AnchorReport
{
  public:
    void add(const std::string &what, double paperValue,
             double measuredValue);

    /** Print as a table; returns the worst |log-ratio| seen. */
    double print(std::ostream &os) const;

  private:
    struct Anchor
    {
        std::string what;
        double paper;
        double measured;
    };
    std::vector<Anchor> anchors_;
};

/** Render @p table as ASCII and, below it, as a CSV block. */
void emitTable(std::ostream &os, const Table &table,
               const std::string &csvTag);

} // namespace mdbench

#endif // MDBENCH_HARNESS_REPORT_H
