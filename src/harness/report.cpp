#include "harness/report.h"

#include <cmath>

#include "obs/manifest.h"
#include "util/string_utils.h"

namespace mdbench {

void
printFigureHeader(std::ostream &os, const std::string &figureId,
                  const std::string &caption)
{
    os << "\n=== " << figureId << " — " << caption << " ===\n";
}

namespace {

std::string
pct(double fraction)
{
    return strprintf("%5.1f", fraction * 100.0);
}

std::string
resourceCell(const ExperimentRecord &record)
{
    return std::to_string(record.spec.resources);
}

/** Measured host wall ms/step, or "-" for model replays (no host run). */
std::string
wallCell(const ExperimentRecord &record)
{
    if (record.wallSeconds <= 0.0 || record.spec.steps <= 0)
        return "-";
    return strprintf("%8.4f", record.wallSeconds /
                                  static_cast<double>(record.spec.steps) *
                                  1e3);
}

} // namespace

Table
makeBreakdownTable(const std::vector<ExperimentRecord> &records,
                   const std::string &resourceHeader)
{
    std::vector<std::string> headers = {"benchmark", "size[k]",
                                        resourceHeader};
    for (std::size_t t = 0; t < kNumTasks; ++t)
        headers.push_back(std::string(taskName(static_cast<Task>(t))) +
                          "%");
    Table table(std::move(headers));
    for (const auto &record : records) {
        std::vector<std::string> row = {
            benchmarkName(record.spec.benchmark),
            std::to_string(record.spec.natoms / 1000),
            resourceCell(record)};
        for (std::size_t t = 0; t < kNumTasks; ++t)
            row.push_back(
                pct(record.taskBreakdown.fraction(static_cast<Task>(t))));
        table.addRow(std::move(row));
    }
    return table;
}

Table
makeMpiFunctionTable(const std::vector<ExperimentRecord> &records)
{
    std::vector<std::string> headers = {"benchmark", "size[k]", "procs"};
    for (std::size_t f = 0; f < kNumMpiFunctions; ++f)
        headers.push_back(
            std::string(mpiFunctionName(static_cast<MpiFunction>(f))) +
            "%");
    headers.push_back("wall[ms/step]");
    Table table(std::move(headers));
    for (const auto &record : records) {
        std::vector<std::string> row = {
            benchmarkName(record.spec.benchmark),
            std::to_string(record.spec.natoms / 1000),
            resourceCell(record)};
        for (std::size_t f = 0; f < kNumMpiFunctions; ++f)
            row.push_back(pct(record.mpiFunctionFraction(
                static_cast<MpiFunction>(f))));
        row.push_back(wallCell(record));
        table.addRow(std::move(row));
    }
    return table;
}

Table
makeMpiOverheadTable(const std::vector<ExperimentRecord> &records)
{
    Table table({"benchmark", "size[k]", "procs", "MPI time %",
                 "MPI imbalance %", "wall[ms/step]"});
    for (const auto &record : records) {
        table.addRow({benchmarkName(record.spec.benchmark),
                      std::to_string(record.spec.natoms / 1000),
                      resourceCell(record),
                      strprintf("%6.2f", record.mpiTimePercent),
                      strprintf("%6.2f", record.mpiImbalancePercent),
                      wallCell(record)});
    }
    return table;
}

Table
makeScalingTable(const std::vector<ExperimentRecord> &records,
                 const std::string &resourceHeader, bool gpu)
{
    std::vector<std::string> headers = {
        "benchmark", "size[k]", resourceHeader,
        "perf [TS/s]", "parallel eff [%]", "energy eff [TS/s/W]"};
    if (gpu)
        headers.push_back("device util [%]");
    Table table(std::move(headers));
    for (const auto &record : records) {
        std::vector<std::string> row = {
            benchmarkName(record.spec.benchmark),
            std::to_string(record.spec.natoms / 1000),
            resourceCell(record),
            strprintf("%10.2f", record.timestepsPerSecond),
            strprintf("%6.2f", record.parallelEfficiencyPct),
            strprintf("%8.4f", record.energyEfficiency)};
        if (gpu)
            row.push_back(strprintf("%5.1f",
                                    record.deviceUtilization * 100.0));
        table.addRow(std::move(row));
    }
    return table;
}

void
AnchorReport::add(const std::string &what, double paperValue,
                  double measuredValue)
{
    anchors_.push_back({what, paperValue, measuredValue});
}

double
AnchorReport::print(std::ostream &os) const
{
    Table table({"anchor", "paper", "reproduced", "ratio"});
    double worst = 0.0;
    for (const auto &anchor : anchors_) {
        const double ratio = anchor.measured / anchor.paper;
        worst = std::max(worst, std::fabs(std::log(ratio)));
        table.addRow({anchor.what, formatSig(anchor.paper, 4),
                      formatSig(anchor.measured, 4),
                      strprintf("%.2fx", ratio)});
    }
    os << "\n-- paper anchors --\n";
    table.printAscii(os);
    return worst;
}

void
emitTable(std::ostream &os, const Table &table, const std::string &csvTag)
{
    table.printAscii(os);
    os << "\n[csv:" << csvTag << "]\n";
    table.printCsv(os);
    os << "[/csv]\n";
    // Every emitted result table also lands in the run manifest (when a
    // bench installed one), keyed by the same tag as the CSV block.
    if (RunManifest *manifest = activeManifest())
        manifest->addTable(csvTag, table);
}

} // namespace mdbench
