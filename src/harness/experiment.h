/**
 * @file
 * Experiment specification and result record — the "Settings" and
 * "Formatted Output" boxes of the paper's Figure 2 automation framework.
 */

#ifndef MDBENCH_HARNESS_EXPERIMENT_H
#define MDBENCH_HARNESS_EXPERIMENT_H

#include <string>
#include <vector>

#include "parallel/mpi_model.h"
#include "perf/workload.h"
#include "util/timer.h"

namespace mdbench {

/** How an experiment executes (the framework's platform substitution). */
enum class ExperimentMode {
    NativeSerial, ///< run the real engine on the host, one domain
    NativeRanked, ///< run the real engine decomposed with simulated MPI
    ModelCpu,     ///< replay the paper's CPU instance via the cost model
    ModelGpu      ///< replay the paper's GPU instance via the cost model
};

const char *experimentModeName(ExperimentMode mode);

/** One point of the parameter space. */
struct ExperimentSpec
{
    ExperimentMode mode = ExperimentMode::ModelCpu;
    BenchmarkId benchmark = BenchmarkId::LJ;
    long natoms = 32000;
    int resources = 1; ///< MPI ranks (CPU) or devices (GPU)
    double kspaceAccuracy = 1e-4;

    /**
     * Compute precision tier (util/precision.h). EngineDefault defers
     * to the engine: native modes keep the process-wide tier
     * (MDBENCH_PRECISION, Double when unset), model modes replay the
     * paper's default study point (mixed). Any concrete tier applies
     * to both.
     */
    Precision precision = Precision::EngineDefault;
    long steps = 10000; ///< modeled run length / native step count

    /**
     * Shared-memory threads for native modes (0 = leave the process-wide
     * pool as configured; see ThreadPool::setThreads / MDBENCH_THREADS).
     * Orthogonal to `resources`, which counts simulated MPI ranks.
     */
    int threads = 0;

    /**
     * Spatial sort interval in neighbor rebuilds for native modes
     * (-1 = engine default from MDBENCH_SORT_EVERY, 0 = disabled;
     * see Simulation::setSortEvery).
     */
    int sortEvery = -1;

    /**
     * SIMD vector width for native modes (-1 = engine default from
     * MDBENCH_SIMD, 0 = scalar kernels, otherwise the packing width;
     * see setSimdWidth in util/simd.h). Takes effect at the run's
     * first neighbor build.
     */
    int simdWidth = -1;

    /**
     * Neighbor-list packing layout for native modes (-1 = engine
     * default from MDBENCH_NEIGH_LAYOUT, 0 = padded CSR, 1 = cluster
     * pairs; see setNeighLayout in md/neighbor.h). Takes effect at the
     * run's first neighbor build.
     */
    int neighLayout = -1;

    /**
     * Overlap the halo exchange with the interior force pass in
     * NativeRanked mode (-1 = engine default from MDBENCH_COMM_OVERLAP,
     * 0 = blocking exchange, 1 = nonblocking overlap; DESIGN.md §17).
     */
    int commOverlap = -1;

    /**
     * Rank scheduling for NativeRanked mode (-1 = engine default from
     * MDBENCH_RANK_EXEC, 0 = sequential oracle, 1 = concurrent over the
     * shared ThreadPool).
     */
    int rankExec = -1;

    /** "<bench>-<size>k" label as the paper's plots use. */
    std::string label() const;
};

/** Uniform result record across all modes. */
struct ExperimentRecord
{
    ExperimentSpec spec;
    double timestepsPerSecond = 0.0;
    double parallelEfficiencyPct = 0.0;
    double energyEfficiency = 0.0; ///< TS/s/W
    double powerWatts = 0.0;
    double mpiTimePercent = 0.0;
    double mpiImbalancePercent = 0.0;
    double deviceUtilization = 0.0; ///< GPU mode only
    double nsPerDay = 0.0;

    /**
     * Measured host wall-clock seconds of the run (native modes only;
     * 0 for model replays). Distinct from the modeled virtual time that
     * timestepsPerSecond is derived from: this is what the concurrent
     * rank scheduler and the comm-overlap knob actually move.
     */
    double wallSeconds = 0.0;
    TaskTimer taskBreakdown;
    /** MPI function seconds over the run (CPU modes). */
    std::array<double, kNumMpiFunctions> mpiFunctionSeconds{};

    double mpiFunctionFraction(MpiFunction fn) const;
};

/**
 * Run a ModelCpu / ModelGpu experiment (platform replay).
 * Native modes additionally need the system builders and are dispatched
 * by runExperiment() in src/core/experiment.h.
 */
ExperimentRecord runModelExperiment(const ExperimentSpec &spec);

} // namespace mdbench

#endif // MDBENCH_HARNESS_EXPERIMENT_H
