#include "harness/sweep.h"

namespace mdbench {

namespace {

std::vector<ExperimentSpec>
makeSweep(ExperimentMode mode, const std::vector<BenchmarkId> &benchmarks,
          const std::vector<long> &sizesK,
          const std::vector<int> &resources, const SweepOptions &options)
{
    std::vector<ExperimentSpec> specs;
    specs.reserve(benchmarks.size() * sizesK.size() * resources.size());
    for (BenchmarkId benchmark : benchmarks) {
        for (long sizeK : sizesK) {
            for (int count : resources) {
                ExperimentSpec spec;
                spec.mode = mode;
                spec.benchmark = benchmark;
                spec.natoms = sizeK * 1000;
                spec.resources = count;
                spec.kspaceAccuracy = options.kspaceAccuracy;
                spec.precision = options.precision;
                spec.steps = options.steps;
                specs.push_back(spec);
            }
        }
    }
    return specs;
}

} // namespace

std::vector<ExperimentSpec>
cpuSweep(const std::vector<BenchmarkId> &benchmarks,
         const std::vector<long> &sizesK, const std::vector<int> &ranks,
         const SweepOptions &options)
{
    return makeSweep(ExperimentMode::ModelCpu, benchmarks, sizesK, ranks,
                     options);
}

std::vector<ExperimentSpec>
gpuSweep(const std::vector<BenchmarkId> &benchmarks,
         const std::vector<long> &sizesK, const std::vector<int> &gpus,
         const SweepOptions &options)
{
    return makeSweep(ExperimentMode::ModelGpu, benchmarks, sizesK, gpus,
                     options);
}

std::vector<ExperimentRecord>
runModelSweep(const std::vector<ExperimentSpec> &specs)
{
    std::vector<ExperimentRecord> records;
    records.reserve(specs.size());
    for (const ExperimentSpec &spec : specs)
        records.push_back(runModelExperiment(spec));
    return records;
}

} // namespace mdbench
