#include "harness/experiment.h"

#include "gpusim/gpu_model.h"
#include "perf/cpu_model.h"
#include "util/error.h"
#include "util/string_utils.h"

namespace mdbench {

const char *
experimentModeName(ExperimentMode mode)
{
    switch (mode) {
      case ExperimentMode::NativeSerial: return "native-serial";
      case ExperimentMode::NativeRanked: return "native-ranked";
      case ExperimentMode::ModelCpu:     return "model-cpu";
      case ExperimentMode::ModelGpu:     return "model-gpu";
      default: panic("invalid ExperimentMode");
    }
}

std::string
ExperimentSpec::label() const
{
    return strprintf("%s-%ldk", benchmarkName(benchmark), natoms / 1000);
}

double
ExperimentRecord::mpiFunctionFraction(MpiFunction fn) const
{
    double total = 0.0;
    for (double s : mpiFunctionSeconds)
        total += s;
    return total > 0.0 ? mpiFunctionSeconds[static_cast<std::size_t>(fn)] /
                             total
                       : 0.0;
}

ExperimentRecord
runModelExperiment(const ExperimentSpec &spec)
{
    ExperimentRecord record;
    record.spec = spec;
    const WorkloadInstance workload = WorkloadInstance::make(
        spec.benchmark, spec.natoms, spec.kspaceAccuracy, spec.precision);

    if (spec.mode == ExperimentMode::ModelCpu) {
        static const CpuModel model;
        const CpuModelResult result =
            model.evaluate(workload, spec.resources, spec.steps);
        record.timestepsPerSecond = result.timestepsPerSecond;
        record.parallelEfficiencyPct =
            model.parallelEfficiency(workload, spec.resources);
        record.energyEfficiency = result.energyEfficiency;
        record.powerWatts = result.powerWatts;
        record.mpiTimePercent = result.mpiTimePercent;
        record.mpiImbalancePercent = result.mpiImbalancePercent;
        record.nsPerDay = result.nsPerDay;
        record.taskBreakdown = result.taskBreakdown;
        record.mpiFunctionSeconds = result.mpiFunctionSeconds;
    } else if (spec.mode == ExperimentMode::ModelGpu) {
        static const GpuModel model;
        const GpuModelResult result =
            model.evaluate(workload, spec.resources);
        record.timestepsPerSecond = result.timestepsPerSecond;
        record.parallelEfficiencyPct =
            model.parallelEfficiency(workload, spec.resources);
        record.energyEfficiency = result.energyEfficiency;
        record.powerWatts = result.powerWatts;
        record.deviceUtilization = result.deviceUtilization;
        record.nsPerDay = result.nsPerDay;
        record.taskBreakdown = result.taskBreakdown;
    } else {
        fatal("runModelExperiment handles model modes only; use "
              "runExperiment (core) for native modes");
    }
    return record;
}

} // namespace mdbench
