/**
 * @file
 * Parameter-space sweep generators (the "Settings" stage of Figure 2):
 * cartesian products over benchmarks, sizes, and resource counts in the
 * row-major order the paper's figure grids use.
 */

#ifndef MDBENCH_HARNESS_SWEEP_H
#define MDBENCH_HARNESS_SWEEP_H

#include <vector>

#include "harness/experiment.h"

namespace mdbench {

/** Sweep options shared by the figure benches. */
struct SweepOptions
{
    double kspaceAccuracy = 1e-4;
    Precision precision = Precision::Mixed;
    long steps = 10000;
};

/**
 * CPU-instance sweep: benchmark-major, then size, then rank count
 * (matching the paper's per-row, left-to-right figure layout).
 */
std::vector<ExperimentSpec>
cpuSweep(const std::vector<BenchmarkId> &benchmarks,
         const std::vector<long> &sizesK, const std::vector<int> &ranks,
         const SweepOptions &options = {});

/** GPU-instance sweep (same ordering, resources = devices). */
std::vector<ExperimentSpec>
gpuSweep(const std::vector<BenchmarkId> &benchmarks,
         const std::vector<long> &sizesK, const std::vector<int> &gpus,
         const SweepOptions &options = {});

/** Run model-mode specs and collect the records. */
std::vector<ExperimentRecord>
runModelSweep(const std::vector<ExperimentSpec> &specs);

} // namespace mdbench

#endif // MDBENCH_HARNESS_SWEEP_H
