#include "core/experiment.h"

#include "core/suite.h"
#include "parallel/ranked_sim.h"
#include "perf/power.h"
#include "util/error.h"
#include "util/precision.h"
#include "util/simd.h"
#include "util/stats.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace mdbench {

namespace {

/** Styles-only configurator for decomposed ranks. */
void
configureRankFor(Simulation &sim, BenchmarkId id,
                 const SuiteOptions &options)
{
    // Construct a minimal suite instance and move its styles and fixes
    // onto the rank; re-deriving them here would duplicate the Table 2
    // configuration in two places.
    std::unique_ptr<Simulation> reference;
    switch (id) {
      case BenchmarkId::LJ:
        reference = buildLJ(4, options);
        break;
      case BenchmarkId::Chain:
        reference = buildChain(1, options);
        break;
      case BenchmarkId::Chute:
        reference = buildChute(4, 4, 2, options);
        break;
      default:
        fatal("native decomposed runs support LJ, Chain, and Chute only");
    }
    sim.pair = std::move(reference->pair);
    sim.bondStyle = std::move(reference->bondStyle);
    sim.angleStyle = std::move(reference->angleStyle);
    sim.fixes = std::move(reference->fixes);
    sim.neighbor.skin = reference->neighbor.skin;
    sim.dt = reference->dt;
    sim.units = reference->units;
    sim.box.setPeriodic(reference->box.periodic(0),
                        reference->box.periodic(1),
                        reference->box.periodic(2));
}

ExperimentRecord
runNativeSerial(const ExperimentSpec &spec)
{
    SuiteOptions options;
    options.kspaceAccuracy = spec.kspaceAccuracy;
    auto sim = buildNative(spec.benchmark, spec.natoms, options);
    sim->thermoEvery = 0;
    if (spec.sortEvery >= 0)
        sim->setSortEvery(spec.sortEvery);

    // Apply the requested shared-memory thread count, SIMD width, and
    // precision tier for the duration of this experiment, restoring
    // them afterwards so experiments in a sweep do not leak
    // configuration into each other.
    const int previousThreads = ThreadPool::threads();
    if (spec.threads > 0)
        ThreadPool::setThreads(spec.threads);
    if (spec.simdWidth >= 0)
        setSimdWidth(spec.simdWidth);
    if (spec.neighLayout >= 0)
        setNeighLayout(spec.neighLayout);
    if (spec.precision != Precision::EngineDefault)
        setPrecisionTier(spec.precision);
    sim->setup();

    WallTimer wall;
    sim->run(spec.steps);
    const double elapsed = wall.seconds();
    if (spec.precision != Precision::EngineDefault)
        setPrecisionTier(Precision::EngineDefault);
    if (spec.simdWidth >= 0)
        setSimdWidth(-1);
    if (spec.neighLayout >= 0)
        setNeighLayout(-1);
    if (spec.threads > 0)
        ThreadPool::setThreads(previousThreads);

    ExperimentRecord record;
    record.spec = spec;
    record.timestepsPerSecond =
        elapsed > 0.0 ? static_cast<double>(spec.steps) / elapsed : 0.0;
    record.parallelEfficiencyPct = 100.0;
    record.wallSeconds = elapsed;
    record.taskBreakdown = sim->timer;
    return record;
}

ExperimentRecord
runNativeRanked(const ExperimentSpec &spec)
{
    SuiteOptions options;
    auto global = buildNative(spec.benchmark, spec.natoms, options);
    // The ranked driver configures each rank itself.
    global->pair.reset();
    global->bondStyle.reset();
    global->angleStyle.reset();
    global->kspace.reset();
    global->fixes.clear();

    RankedSimulation ranked(
        *global, spec.resources,
        [&](Simulation &sim) {
            configureRankFor(sim, spec.benchmark, options);
            if (spec.sortEvery >= 0)
                sim.setSortEvery(spec.sortEvery);
        });
    if (spec.commOverlap >= 0)
        ranked.setCommOverlap(spec.commOverlap != 0);
    if (spec.rankExec >= 0)
        ranked.setExecution(spec.rankExec != 0 ? RankExecution::Concurrent
                                               : RankExecution::Sequential);
    const int previousThreads = ThreadPool::threads();
    if (spec.threads > 0)
        ThreadPool::setThreads(spec.threads);
    if (spec.simdWidth >= 0)
        setSimdWidth(spec.simdWidth);
    if (spec.neighLayout >= 0)
        setNeighLayout(spec.neighLayout);
    if (spec.precision != Precision::EngineDefault)
        setPrecisionTier(spec.precision);
    ranked.setup();
    WallTimer wall;
    ranked.run(spec.steps);
    const double elapsed = wall.seconds();
    if (spec.precision != Precision::EngineDefault)
        setPrecisionTier(Precision::EngineDefault);
    if (spec.simdWidth >= 0)
        setSimdWidth(-1);
    if (spec.neighLayout >= 0)
        setNeighLayout(-1);
    if (spec.threads > 0)
        ThreadPool::setThreads(previousThreads);

    ExperimentRecord record;
    record.spec = spec;
    const double virtualTime = ranked.virtualTime();
    record.timestepsPerSecond =
        virtualTime > 0.0 ? static_cast<double>(spec.steps) / virtualTime
                          : 0.0;
    record.wallSeconds = elapsed;
    record.taskBreakdown = ranked.aggregateTaskTimer();
    const MpiStats &stats = ranked.mpiStats();
    for (std::size_t f = 0; f < kNumMpiFunctions; ++f)
        record.mpiFunctionSeconds[f] =
            stats.meanFunction(static_cast<MpiFunction>(f)) *
            stats.nranks();
    record.mpiTimePercent =
        virtualTime > 0.0 ? stats.meanTotal() / virtualTime * 100.0 : 0.0;
    std::vector<double> busy(ranked.nranks());
    for (int r = 0; r < ranked.nranks(); ++r)
        busy[r] = ranked.clocks()[r] -
                  stats.seconds(r, MpiFunction::Wait);
    const Imbalance imbalance = Imbalance::fromSamples(busy);
    record.mpiImbalancePercent = imbalance.imbalancePercent();
    return record;
}

} // namespace

ExperimentRecord
runExperiment(const ExperimentSpec &spec)
{
    switch (spec.mode) {
      case ExperimentMode::ModelCpu:
      case ExperimentMode::ModelGpu:
        return runModelExperiment(spec);
      case ExperimentMode::NativeSerial:
        return runNativeSerial(spec);
      case ExperimentMode::NativeRanked:
        return runNativeRanked(spec);
      default:
        panic("invalid ExperimentMode");
    }
}

std::vector<ExperimentRecord>
runSweep(const std::vector<ExperimentSpec> &specs)
{
    std::vector<ExperimentRecord> records;
    records.reserve(specs.size());
    for (const ExperimentSpec &spec : specs)
        records.push_back(runExperiment(spec));
    return records;
}

} // namespace mdbench
