/**
 * @file
 * Top-level experiment facade: runs any ExperimentSpec, dispatching
 * between platform-replay models (full paper scale) and native
 * execution of the real engine (host scale), the two operating points
 * of this reproduction (DESIGN.md Section 3).
 */

#ifndef MDBENCH_CORE_EXPERIMENT_H
#define MDBENCH_CORE_EXPERIMENT_H

#include "harness/experiment.h"

namespace mdbench {

/**
 * Run one experiment.
 *
 * - ModelCpu / ModelGpu: delegates to runModelExperiment.
 * - NativeSerial: builds the benchmark with the src/core suite builders
 *   at spec.natoms, runs spec.steps real timesteps, and reports the
 *   measured TS/s and task breakdown.
 * - NativeRanked: same, decomposed over spec.resources subdomains with
 *   simulated MPI (LJ, Chain, and Chute only; EAM needs per-atom
 *   density communication and Rhodo needs k-space/SHAKE, which the
 *   native decomposed path does not implement — see DESIGN.md).
 */
ExperimentRecord runExperiment(const ExperimentSpec &spec);

/** Run a mixed sweep through runExperiment. */
std::vector<ExperimentRecord>
runSweep(const std::vector<ExperimentSpec> &specs);

} // namespace mdbench

#endif // MDBENCH_CORE_EXPERIMENT_H
