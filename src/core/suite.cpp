#include "core/suite.h"

#include <cmath>

#include "forcefield/bond_styles.h"
#include "forcefield/pair_eam.h"
#include "forcefield/pair_gran_hooke_history.h"
#include "forcefield/pair_lj_charmm_coul_long.h"
#include "forcefield/pair_lj_cut.h"
#include "kspace/ewald.h"
#include "kspace/pppm.h"
#include "md/fix_gravity.h"
#include "md/fix_langevin.h"
#include "md/fix_nh.h"
#include "md/fix_nve.h"
#include "md/fix_shake.h"
#include "md/fix_wall_gran.h"
#include "md/lattice.h"
#include "md/velocity.h"
#include "util/error.h"
#include "util/rng.h"
#include "util/string_utils.h"

namespace mdbench {

namespace {

// Chute granular parameters (LAMMPS bench/in.chute).
constexpr double kChuteKn = 2000.0;
constexpr double kChuteKt = 2.0 / 7.0 * kChuteKn;
constexpr double kChuteGammaN = 50.0;
constexpr double kChuteGammaT = 25.0;
constexpr double kChuteXmu = 0.5;

// Rhodo-proxy solvent geometry (TIP3P-like rigid 3-site molecules).
constexpr double kSolventSpacing = 3.107; // A -> 0.1 atoms/A^3
constexpr double kBondOH = 0.9572;
constexpr double kAngleHOH = 104.52 * M_PI / 180.0;

/**
 * Install pair/bond/kspace styles and fixes for @p id on @p sim.
 * Pure style configuration: atoms/box/velocities stay untouched, so the
 * same function configures every rank of a decomposed run.
 */
void
configureStyles(Simulation &sim, BenchmarkId id,
                const SuiteOptions &options)
{
    switch (id) {
      case BenchmarkId::LJ: {
        auto pair = std::make_unique<PairLJCut>(1, 2.5);
        pair->setCoeff(1, 1, 1.0, 1.0);
        sim.pair = std::move(pair);
        sim.neighbor.skin = 0.3;
        sim.dt = 0.005;
        sim.addFix<FixNVE>();
        break;
      }
      case BenchmarkId::Chain: {
        auto pair = std::make_unique<PairLJCut>(
            1, std::pow(2.0, 1.0 / 6.0), true); // WCA
        pair->setCoeff(1, 1, 1.0, 1.0);
        sim.pair = std::move(pair);
        sim.bondStyle = std::make_unique<BondFENE>();
        sim.neighbor.skin = 0.4;
        sim.dt = 0.006;
        sim.addFix<FixNVE>();
        sim.addFix<FixLangevin>(1.0, 1.0, options.seed + 17);
        break;
      }
      case BenchmarkId::EAM: {
        sim.units = Units::metal();
        sim.pair =
            std::make_unique<PairEAM>(EamTables::makeSyntheticCopper());
        sim.neighbor.skin = 1.0;
        sim.dt = 0.005; // ps
        sim.addFix<FixNVE>();
        break;
      }
      case BenchmarkId::Chute: {
        sim.pair = std::make_unique<PairGranHookeHistory>(
            kChuteKn, kChuteKt, kChuteGammaN, kChuteGammaT, kChuteXmu,
            1.0);
        sim.neighbor.skin = 0.1;
        sim.dt = 1e-4;
        sim.addFix<FixNVESphere>();
        sim.fixes.push_back(std::make_unique<FixGravity>(
            FixGravity::chute(1.0, 26.0)));
        sim.addFix<FixWallGran>(0.0, kChuteKn, kChuteKt, kChuteGammaN,
                                kChuteGammaT, kChuteXmu);
        break;
      }
      case BenchmarkId::Rhodo: {
        sim.units = Units::real();
        auto pair = std::make_unique<PairLJCharmmCoulLong>(3, 8.0, 10.0,
                                                           10.0);
        pair->setCoeff(1, 0.1521, 3.1507); // O (TIP3P)
        pair->setCoeff(2, 0.0, 1.0);       // H
        pair->setCoeff(3, 0.2, 4.0);       // solute bead
        sim.pair = std::move(pair);
        sim.bondStyle = std::make_unique<BondHarmonic>();
        static_cast<BondHarmonic &>(*sim.bondStyle)
            .setCoeff(1, {100.0, kSolventSpacing});
        sim.angleStyle = std::make_unique<AngleHarmonic>();
        static_cast<AngleHarmonic &>(*sim.angleStyle)
            .setCoeff(1, {30.0, M_PI});
        if (options.useEwaldInsteadOfPppm)
            sim.kspace = std::make_unique<Ewald>(options.kspaceAccuracy);
        else
            sim.kspace = std::make_unique<Pppm>(options.kspaceAccuracy);
        sim.neighbor.skin = 2.0;
        sim.dt = 2.0; // fs
        sim.addFix<FixNPT>(308.0, 200.0, 1.0, 2000.0);
        sim.addFix<FixShake>(1e-6);
        break;
      }
      default:
        panic("invalid BenchmarkId");
    }
}

} // namespace

std::unique_ptr<Simulation>
buildLJ(int cells, const SuiteOptions &options)
{
    require(cells >= 4, "LJ melt needs >= 4 cells per axis");
    auto sim = std::make_unique<Simulation>();
    buildFcc(*sim, cells, cells, cells, fccLatticeConstant(0.8442));
    configureStyles(*sim, BenchmarkId::LJ, options);
    Rng rng(options.seed);
    createVelocities(*sim, 1.44, rng);
    return sim;
}

std::unique_ptr<Simulation>
buildChain(int chains, const SuiteOptions &options)
{
    require(chains >= 1, "need at least one chain");
    const int beads = chains * 100;
    const double spacing = std::cbrt(1.0 / 0.85);
    const int n = static_cast<int>(std::ceil(std::cbrt(beads)));
    require(n >= 4, "chain system too small for the WCA cutoff");

    auto sim = std::make_unique<Simulation>();
    sim->box = Box({0, 0, 0}, {n * spacing, n * spacing, n * spacing});
    sim->atoms.setNumTypes(1);
    sim->atoms.reserve(beads);

    // Boustrophedon walk through the cubic lattice: consecutive sites
    // are adjacent, so consecutive beads start one lattice spacing apart
    // (inside the FENE well).
    std::int64_t tag = 1;
    for (int index = 0; index < beads; ++index) {
        const int iz = index / (n * n);
        const int rem = index % (n * n);
        const int iyRaw = rem / n;
        int ix = rem % n;
        // Serpentine rows keyed on the *global* row index so the walk
        // stays contiguous across layer transitions too.
        const int iy = (iz % 2) ? n - 1 - iyRaw : iyRaw;
        if ((iz * n + iyRaw) % 2)
            ix = n - 1 - ix;
        sim->atoms.addAtom(tag, 1,
                           {(ix + 0.5) * spacing, (iy + 0.5) * spacing,
                            (iz + 0.5) * spacing});
        sim->atoms.molecule[tag - 1] = (index / 100) + 1;
        if (index % 100 != 0)
            sim->topology.bonds.push_back({tag - 1, tag, 1});
        ++tag;
    }

    configureStyles(*sim, BenchmarkId::Chain, options);
    Rng rng(options.seed);
    createVelocities(*sim, 1.0, rng);
    return sim;
}

std::unique_ptr<Simulation>
buildEAM(int cells, const SuiteOptions &options)
{
    require(cells >= 4, "EAM solid needs >= 4 cells per axis");
    auto sim = std::make_unique<Simulation>();
    buildFcc(*sim, cells, cells, cells, 3.615);
    sim->atoms.typeParams[1].mass = 63.546;
    configureStyles(*sim, BenchmarkId::EAM, options);
    Rng rng(options.seed);
    createVelocities(*sim, 800.0, rng);
    return sim;
}

std::unique_ptr<Simulation>
buildChute(int nx, int ny, int layers, const SuiteOptions &options)
{
    require(nx >= 4 && ny >= 4 && layers >= 2, "chute bed too small");
    auto sim = std::make_unique<Simulation>();
    const double height = layers * 0.9 + 20.0;
    sim->box = Box({0, 0, 0},
                   {static_cast<double>(nx), static_cast<double>(ny),
                    height});
    sim->box.setPeriodic(true, true, false);
    sim->atoms.setNumTypes(1);
    sim->atoms.typeParams[1].mass = 1.0;
    sim->atoms.typeParams[1].radius = 0.5;

    // Jittered close-ish packing that settles quickly under gravity.
    Rng rng(options.seed);
    std::int64_t tag = 1;
    // Slightly pre-compressed columns (0.98 in-plane, 0.85 vertical) so
    // the bed is already in contact and relaxes under gravity instead of
    // raining down; the jitter breaks the lattice symmetry.
    for (int layer = 0; layer < layers; ++layer) {
        const double z = 0.55 + layer * 0.85;
        for (int iy = 0; iy < ny; ++iy) {
            for (int ix = 0; ix < nx; ++ix) {
                const Vec3 pos{
                    std::fmod((ix + 0.5) * 0.98 + rng.uniform(-0.02, 0.02) +
                                  nx,
                              static_cast<double>(nx)),
                    std::fmod((iy + 0.5) * 0.98 + rng.uniform(-0.02, 0.02) +
                                  ny,
                              static_cast<double>(ny)),
                    z + rng.uniform(-0.01, 0.01)};
                sim->atoms.addAtom(tag++, 1, pos);
            }
        }
    }
    configureStyles(*sim, BenchmarkId::Chute, options);
    return sim;
}

std::unique_ptr<Simulation>
buildRhodoProxy(int moleculesPerAxis, const SuiteOptions &options)
{
    require(moleculesPerAxis >= 4, "rhodo proxy needs >= 4 molecules/axis");
    auto sim = std::make_unique<Simulation>();
    const int m = moleculesPerAxis;
    const double edge = m * kSolventSpacing;
    sim->box = Box({0, 0, 0}, {edge, edge, edge});
    sim->atoms.setNumTypes(3);
    sim->atoms.typeParams[1].mass = 15.9994; // O
    sim->atoms.typeParams[2].mass = 1.008;   // H
    sim->atoms.typeParams[3].mass = 12.011;  // solute bead

    const double hx = kBondOH * std::sin(kAngleHOH / 2.0);
    const double hy = kBondOH * std::cos(kAngleHOH / 2.0);
    const double hh = 2.0 * hx;

    Rng rng(options.seed);
    std::int64_t tag = 1;
    std::int64_t lastSoluteTag = 0;
    std::int64_t soluteRun = 0;
    for (int iz = 0; iz < m; ++iz) {
        for (int iy = 0; iy < m; ++iy) {
            for (int ix = 0; ix < m; ++ix) {
                const Vec3 center{(ix + 0.5) * kSolventSpacing,
                                  (iy + 0.5) * kSolventSpacing,
                                  (iz + 0.5) * kSolventSpacing};
                // One lattice row in ~11 hosts the solute chain: beads
                // bonded along x, neutral, with angle terms. This is the
                // "protein" share of the proxy workload (Bond task).
                if (iy % 11 == 3 && iz % 11 == 5) {
                    const std::size_t bead =
                        sim->atoms.addAtom(tag, 3, center);
                    sim->atoms.molecule[bead] = -1;
                    if (lastSoluteTag > 0 && soluteRun >= 1)
                        sim->topology.bonds.push_back(
                            {lastSoluteTag, tag, 1});
                    if (lastSoluteTag > 1 && soluteRun >= 2)
                        sim->topology.angles.push_back(
                            {tag - 2, lastSoluteTag, tag, 1});
                    lastSoluteTag = tag;
                    ++soluteRun;
                    ++tag;
                    continue;
                }
                if (ix == m - 1) {
                    // Row ends: break the solute chain at wrap-around.
                    lastSoluteTag = 0;
                    soluteRun = 0;
                }

                const std::int64_t oTag = tag;
                const std::size_t o = sim->atoms.addAtom(tag++, 1, center);
                const std::size_t h1 = sim->atoms.addAtom(
                    tag++, 2, center + Vec3{hx, hy, 0.0});
                const std::size_t h2 = sim->atoms.addAtom(
                    tag++, 2, center + Vec3{-hx, hy, 0.0});
                sim->atoms.q[o] = -0.834;
                sim->atoms.q[h1] = 0.417;
                sim->atoms.q[h2] = 0.417;
                sim->atoms.molecule[o] = oTag;
                sim->atoms.molecule[h1] = oTag;
                sim->atoms.molecule[h2] = oTag;

                ShakeCluster cluster;
                cluster.tags = {oTag, oTag + 1, oTag + 2};
                cluster.constraints = {
                    {0, 1, kBondOH}, {0, 2, kBondOH}, {1, 2, hh}};
                sim->topology.shakeClusters.push_back(cluster);
            }
            lastSoluteTag = 0;
            soluteRun = 0;
        }
    }

    // Solute beads carry no charge, so the system stays neutral.
    configureStyles(*sim, BenchmarkId::Rhodo, options);
    createVelocities(*sim, 308.0, rng);
    return sim;
}

std::unique_ptr<Simulation>
buildNative(BenchmarkId id, long targetAtoms, const SuiteOptions &options)
{
    require(targetAtoms > 0, "target atom count must be positive");
    switch (id) {
      case BenchmarkId::LJ: {
        const int cells = std::max(
            4, static_cast<int>(std::lround(std::cbrt(targetAtoms / 4.0))));
        return buildLJ(cells, options);
      }
      case BenchmarkId::Chain: {
        const int chains =
            std::max(1, static_cast<int>(targetAtoms / 100));
        return buildChain(chains, options);
      }
      case BenchmarkId::EAM: {
        const int cells = std::max(
            4, static_cast<int>(std::lround(std::cbrt(targetAtoms / 4.0))));
        return buildEAM(cells, options);
      }
      case BenchmarkId::Chute: {
        const int layers = 8;
        const int base = std::max(
            4, static_cast<int>(std::lround(
                   std::sqrt(targetAtoms / static_cast<double>(layers)))));
        return buildChute(base, base, layers, options);
      }
      case BenchmarkId::Rhodo: {
        const int m = std::max(
            4, static_cast<int>(std::lround(std::cbrt(targetAtoms / 3.0))));
        return buildRhodoProxy(m, options);
      }
      default:
        panic("invalid BenchmarkId");
    }
}

TaxonomyRow
measureTaxonomy(BenchmarkId id, long targetAtoms)
{
    auto sim = buildNative(id, targetAtoms);
    sim->thermoEvery = 0;
    sim->setup();

    const WorkloadSpec spec = WorkloadSpec::get(id);
    // Count neighbors within the *bare* cutoff (Table 2 convention),
    // not the stored cutoff + skin.
    const NeighborList &list = sim->neighbor.list();
    const double cutSq = spec.cutoff * spec.cutoff;
    long pairs = 0;
    for (std::size_t i = 0; i < sim->atoms.nlocal(); ++i) {
        const auto [begin, end] = list.range(i);
        for (std::uint32_t k = begin; k < end; ++k) {
            const std::uint32_t j = list.neighbors[k];
            if ((sim->atoms.x[i] - sim->atoms.x[j]).normSq() < cutSq)
                ++pairs;
        }
    }
    const double perPair = list.full ? 1.0 : 2.0;

    TaxonomyRow row;
    row.id = id;
    row.forceField = spec.forceField;
    const char *unit = (id == BenchmarkId::EAM || id == BenchmarkId::Rhodo)
                           ? " A"
                           : " sigma";
    row.cutoff = (id == BenchmarkId::Rhodo ? "8.0-10.0" :
                                             formatSig(spec.cutoff, 3)) +
                 std::string(unit);
    row.neighborSkin = formatSig(spec.skin, 2) + std::string(unit);
    row.measuredNeighborsPerAtom =
        perPair * static_cast<double>(pairs) /
        static_cast<double>(sim->atoms.nlocal());
    row.paperNeighborsPerAtom = spec.neighborsPerAtom;
    row.pairModify =
        id == BenchmarkId::Rhodo ? "mix arithmetic" : "-";
    row.kspaceStyle = spec.usesKspace ? "pppm" : "-";
    row.integration = spec.nptIntegration ? "NPT" : "NVE";
    row.atoms = static_cast<long>(sim->atoms.nlocal());
    return row;
}

} // namespace mdbench
