/**
 * @file
 * The benchmark suite: native (really-executing) builders for the five
 * MD experiments of the paper's Section 3, with the Table 2 parameters.
 *
 * Builders return fully configured Simulations (box, atoms, styles,
 * fixes, velocities) ready for setup() + run(). Sizes are expressed in
 * lattice cells / molecules so systems stay commensurate; use
 * buildNative(id, targetAtoms) for an approximate atom-count interface.
 */

#ifndef MDBENCH_CORE_SUITE_H
#define MDBENCH_CORE_SUITE_H

#include <cstdint>
#include <memory>
#include <string>

#include "md/simulation.h"
#include "perf/workload.h"

namespace mdbench {

/** Options common to all native builders. */
struct SuiteOptions
{
    std::uint64_t seed = 12345;
    double kspaceAccuracy = 1e-4; ///< Rhodo only (PPPM threshold)
    bool useEwaldInsteadOfPppm = false; ///< Rhodo: exact reference solver
};

/** LJ melt: fcc rho* = 0.8442, cutoff 2.5, T* = 1.44, NVE. */
std::unique_ptr<Simulation> buildLJ(int cells,
                                    const SuiteOptions &options = {});

/**
 * Chain: Kremer-Grest bead-spring melt of 100-mers (FENE + WCA),
 * Langevin thermostat at T* = 1.0, NVE integration.
 * @param chains Number of 100-bead chains.
 */
std::unique_ptr<Simulation> buildChain(int chains,
                                       const SuiteOptions &options = {});

/** EAM: copper fcc solid (a = 3.615 A), synthetic Cu tables, NVE. */
std::unique_ptr<Simulation> buildEAM(int cells,
                                     const SuiteOptions &options = {});

/**
 * Chute: granular flow, gran/hooke/history, gravity tilted 26 degrees,
 * bottom wall, non-periodic z, full neighbor lists (no Newton-3).
 * @param nx,ny Base grid of grains; @param layers bed depth in grains.
 */
std::unique_ptr<Simulation> buildChute(int nx, int ny, int layers,
                                       const SuiteOptions &options = {});

/**
 * Rhodo proxy: rigid 3-site solvent (SHAKE) + a charged/neutral solute
 * chain fraction, CHARMM LJ 8-10 A switching + coul/long via PPPM at
 * the configured error threshold, NPT integration, real units.
 * @param moleculesPerAxis Solvent molecules per box axis.
 */
std::unique_ptr<Simulation>
buildRhodoProxy(int moleculesPerAxis, const SuiteOptions &options = {});

/**
 * Size-driven builder: picks the discrete builder parameter so the atom
 * count is close to @p targetAtoms.
 */
std::unique_ptr<Simulation> buildNative(BenchmarkId id, long targetAtoms,
                                        const SuiteOptions &options = {});

/** One row of the paper's Table 2, with *measured* neighbors/atom. */
struct TaxonomyRow
{
    BenchmarkId id;
    std::string forceField;
    std::string cutoff;
    std::string neighborSkin;
    double measuredNeighborsPerAtom = 0.0; ///< within the bare cutoff
    double paperNeighborsPerAtom = 0.0;
    std::string pairModify;
    std::string kspaceStyle;
    std::string integration;
    long atoms = 0;
};

/**
 * Build a small native instance of @p id and measure its taxonomy
 * (Table 2 reproduction).
 */
TaxonomyRow measureTaxonomy(BenchmarkId id, long targetAtoms = 4000);

} // namespace mdbench

#endif // MDBENCH_CORE_SUITE_H
