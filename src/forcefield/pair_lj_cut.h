/**
 * @file
 * Lennard-Jones pair potential with cutoff (LAMMPS `pair_style lj/cut`),
 * the force field of the LJ melt and (in WCA form) Chain workloads.
 */

#ifndef MDBENCH_FORCEFIELD_PAIR_LJ_CUT_H
#define MDBENCH_FORCEFIELD_PAIR_LJ_CUT_H

#include <type_traits>
#include <vector>

#include "md/styles.h"
#include "md/vec3.h"
#include "md/xpack.h"
#include "util/precision.h"
#include "util/thread_pool.h"

namespace mdbench {

/** Coefficient mixing rules (LAMMPS `pair_modify mix`). */
enum class MixRule { Arithmetic, Geometric };

/**
 * 12-6 Lennard-Jones with a radial cutoff and optional energy shift.
 */
class PairLJCut : public PairStyle
{
  public:
    /**
     * @param ntypes Number of atom types.
     * @param cutoff Global cutoff distance.
     * @param shift  Shift energies so E(cutoff) = 0 (WCA when the cutoff
     *               is at the potential minimum).
     */
    PairLJCut(int ntypes, double cutoff, bool shift = false);

    /** Set epsilon/sigma for a type pair (1-based; symmetric). */
    void setCoeff(int typeA, int typeB, double epsilon, double sigma);

    /** Fill unset off-diagonal coefficients with @p rule mixing. */
    void mix(MixRule rule);

    std::string name() const override { return "lj/cut"; }
    double cutoff() const override { return cutoff_; }
    void compute(Simulation &sim, const NeighborList &list) override;

  private:
    struct Coeff
    {
        double lj1 = 0.0;    ///< 48 eps sigma^12
        double lj2 = 0.0;    ///< 24 eps sigma^6
        double lj3 = 0.0;    ///< 4 eps sigma^12
        double lj4 = 0.0;    ///< 4 eps sigma^6
        double eshift = 0.0; ///< energy at the cutoff (subtracted if shift)
        double epsilon = 0.0;
        double sigma = 0.0;
        bool set = false;
    };

    Coeff &coeff(int typeA, int typeB);
    const Coeff &coeff(int typeA, int typeB) const;
    void precompute(Coeff &c) const;

    /**
     * The kernel proper. kSingleType skips the per-pair type lookup
     * entirely (one Coeff hoisted out of both loops) — all five paper
     * workloads have 1-2 types, and LJ/Chain/EAM/Chute have one. The
     * arithmetic is identical on both paths, so results are bitwise
     * independent of which one runs.
     */
    template <bool kSingleType>
    void computeImpl(Simulation &sim, const NeighborList &list);

    /**
     * SIMD kernel over the padded packing (DESIGN.md §12-13): W-wide
     * gather / masked-cutoff select / multiply-accumulate groups with a
     * per-lane masked scatter for the j-side Newton updates. Mirrors
     * computeImpl's operation order exactly, so at W = 1 on a
     * no-FMA build the double-tier instantiation reproduces the scalar
     * kernel's results.
     *
     * P is the precision policy (util/precision.h): per-pair
     * arithmetic runs in P::real lanes; the double tier accumulates
     * energy/virial in slice-long lane stripes (the bitwise-legacy
     * order), float tiers flush per-row partial sums into P::acc
     * scalars (double for mixed, float for single). Per-atom forces
     * always land in the double AtomStore/scratch arrays — float
     * tiers widen once per atom row.
     *
     * kHalf bakes the list flavor in at compile time: the full-list
     * instantiation carries no Newton-scatter code (which would
     * otherwise inflate register pressure in the hot loop) and the
     * half-list one no wasted double-count scaling.
     */
    template <typename P, int W, bool kSingleType, bool kHalf>
    void computeSimdImpl(Simulation &sim, const NeighborList &list);

    /**
     * SIMD kernel over the cluster-pair layout (DESIGN.md §14): one
     * stored M×N cluster pair serves M·N lane-pairs, traversed
     * full-style (both cluster sides visit an owned-owned pair, the
     * 1/2 double-count factor restores the totals) so forces land only
     * in the i rows — no Newton scatter, no reduction scratch, and
     * bitwise thread-determinism for free. j positions are staged in
     * the build's bin order, so every j-cluster load is a contiguous
     * record transpose; the self lane and sentinel padding are masked
     * exactly like the padded packing's sentinels.
     */
    template <typename P, int W, bool kSingleType>
    void computeClusterImpl(Simulation &sim, const NeighborList &list);

    /** Tier dispatch: the list's recorded packTier picks the policy. */
    template <bool kSingleType>
    void dispatch(Simulation &sim, const NeighborList &list);

    /** Width dispatch: packed-list widths take the SIMD kernel. */
    template <typename P, bool kSingleType>
    void dispatchWidth(Simulation &sim, const NeighborList &list);

    /** Rebuild the float coefficient mirror if coefficients changed. */
    void refreshFloatCoeffs();

    int ntypes_;
    double cutoff_;
    bool shift_;
    std::vector<Coeff> coeffs_; ///< (ntypes+1)^2 row-major table

    /**
     * Float mirror of coeffs_ (same element stride, values cast once)
     * gathered by the float-tier kernels; rebuilt lazily after any
     * setCoeff.
     */
    std::vector<float> coeffsF_;
    bool coeffsFDirty_ = true;

    /** Per-slice j-side force buffers (half lists, Newton on). */
    ReduceScratch<Vec3> fscratch_;

    /**
     * Position staging as padded [x, y, z, 0] records (md/xpack.h),
     * refilled each compute in the active tier's `real` type; feeds
     * loadXyzw so the SIMD kernel loads j positions without hardware
     * gathers (and, on float tiers, without per-pair conversions).
     */
    XPack<double> xpackD_;
    XPack<float> xpackF_;

    template <typename T>
    XPack<T> &
    xpack()
    {
        if constexpr (std::is_same_v<T, double>)
            return xpackD_;
        else
            return xpackF_;
    }
};

} // namespace mdbench

#endif // MDBENCH_FORCEFIELD_PAIR_LJ_CUT_H
