/**
 * @file
 * Bonded two-body potentials: FENE (Chain workload) and harmonic
 * (Rhodopsin-proxy solute), plus the harmonic angle style.
 */

#ifndef MDBENCH_FORCEFIELD_BOND_STYLES_H
#define MDBENCH_FORCEFIELD_BOND_STYLES_H

#include <vector>

#include "md/styles.h"

namespace mdbench {

/**
 * Finite Extensible Nonlinear Elastic bond with the embedded WCA
 * repulsion of the Kremer-Grest model (LAMMPS `bond_style fene`).
 */
class BondFENE : public BondStyle
{
  public:
    /** Per-bond-type coefficients. */
    struct Coeff
    {
        double k = 30.0;      ///< attractive spring strength
        double r0 = 1.5;      ///< maximum extension
        double epsilon = 1.0; ///< WCA epsilon
        double sigma = 1.0;   ///< WCA sigma
    };

    explicit BondFENE(int nBondTypes = 1);

    /** Set coefficients for bond type @p type (1-based). */
    void setCoeff(int type, const Coeff &coeff);

    std::string name() const override { return "fene"; }
    void compute(Simulation &sim) override;

  private:
    std::vector<Coeff> coeffs_;
};

/** Harmonic bond E = k (r - r0)^2 (LAMMPS `bond_style harmonic`). */
class BondHarmonic : public BondStyle
{
  public:
    struct Coeff
    {
        double k = 100.0;
        double r0 = 1.0;
    };

    explicit BondHarmonic(int nBondTypes = 1);

    void setCoeff(int type, const Coeff &coeff);

    std::string name() const override { return "harmonic"; }
    void compute(Simulation &sim) override;

  private:
    std::vector<Coeff> coeffs_;
};

/** Harmonic angle E = k (theta - theta0)^2 (LAMMPS `angle_style harmonic`). */
class AngleHarmonic : public AngleStyle
{
  public:
    struct Coeff
    {
        double k = 50.0;
        double theta0 = 109.47 * 3.14159265358979323846 / 180.0; ///< radians
    };

    explicit AngleHarmonic(int nAngleTypes = 1);

    void setCoeff(int type, const Coeff &coeff);

    std::string name() const override { return "harmonic"; }
    void compute(Simulation &sim) override;

  private:
    std::vector<Coeff> coeffs_;
};

} // namespace mdbench

#endif // MDBENCH_FORCEFIELD_BOND_STYLES_H
