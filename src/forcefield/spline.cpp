#include "forcefield/spline.h"

#include <algorithm>

#include "util/error.h"

namespace mdbench {

CubicSpline::CubicSpline(double x0, double dx, std::vector<double> y)
    : x0_(x0), dx_(dx), y_(std::move(y))
{
    require(dx > 0.0, "spline grid spacing must be positive");
    require(y_.size() >= 3, "spline needs at least three samples");

    // Solve the tridiagonal natural-spline system for second derivatives.
    const std::size_t n = y_.size();
    m_.assign(n, 0.0);
    std::vector<double> diag(n, 0.0);
    std::vector<double> rhs(n, 0.0);
    diag[0] = 1.0;
    for (std::size_t i = 1; i + 1 < n; ++i) {
        diag[i] = 4.0;
        rhs[i] = 6.0 * (y_[i + 1] - 2.0 * y_[i] + y_[i - 1]) / (dx_ * dx_);
    }
    diag[n - 1] = 1.0;

    // Thomas algorithm (sub/super diagonals are 1 except at the ends).
    for (std::size_t i = 2; i + 1 < n; ++i) {
        const double w = 1.0 / diag[i - 1];
        diag[i] -= w;
        rhs[i] -= w * rhs[i - 1];
    }
    for (std::size_t i = n - 1; i-- > 1;)
        m_[i] = (rhs[i] - (i + 2 < n ? m_[i + 1] : 0.0)) / diag[i];
}

void
CubicSpline::locate(double x, std::size_t &index, double &t) const
{
    const std::size_t n = y_.size();
    double s = (x - x0_) / dx_;
    s = std::clamp(s, 0.0, static_cast<double>(n - 1));
    index = std::min(static_cast<std::size_t>(s), n - 2);
    t = s - static_cast<double>(index);
}

double
CubicSpline::value(double x) const
{
    double v;
    double d;
    eval(x, v, d);
    return v;
}

double
CubicSpline::derivative(double x) const
{
    double v;
    double d;
    eval(x, v, d);
    return d;
}

void
CubicSpline::eval(double x, double &value, double &derivative) const
{
    std::size_t i;
    double t;
    locate(x, i, t);
    const double a = 1.0 - t;
    const double h2 = dx_ * dx_;
    value = a * y_[i] + t * y_[i + 1] +
            ((a * a * a - a) * m_[i] + (t * t * t - t) * m_[i + 1]) * h2 /
                6.0;
    derivative = (y_[i + 1] - y_[i]) / dx_ +
                 ((3.0 * t * t - 1.0) * m_[i + 1] -
                  (3.0 * a * a - 1.0) * m_[i]) *
                     dx_ / 6.0;
}

} // namespace mdbench
