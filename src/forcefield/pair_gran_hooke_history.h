/**
 * @file
 * Frictional granular contact potential with shear history
 * (LAMMPS `pair_style gran/hooke/history`), the force field of the
 * Chute workload.
 *
 * As the paper notes, this style does not exploit Newton's third law:
 * it runs on a *full* neighbor list and each side of a contact computes
 * its own force and its own copy of the tangential-displacement history.
 */

#ifndef MDBENCH_FORCEFIELD_PAIR_GRAN_HOOKE_HISTORY_H
#define MDBENCH_FORCEFIELD_PAIR_GRAN_HOOKE_HISTORY_H

#include <cstdint>
#include <unordered_map>

#include "md/styles.h"
#include "md/vec3.h"

namespace mdbench {

/**
 * Hookean normal spring + damped tangential history spring with a
 * Coulomb friction cap.
 */
class PairGranHookeHistory : public PairStyle
{
  public:
    /**
     * @param kn     Normal spring stiffness.
     * @param kt     Tangential spring stiffness (LAMMPS default 2/7 kn).
     * @param gamman Normal viscous damping.
     * @param gammat Tangential viscous damping (default gamman / 2).
     * @param xmu    Coulomb friction coefficient.
     * @param maxDiameter Largest particle diameter (sets the cutoff).
     */
    PairGranHookeHistory(double kn, double kt, double gamman, double gammat,
                         double xmu, double maxDiameter);

    std::string name() const override { return "gran/hooke/history"; }
    double cutoff() const override { return maxDiameter_; }
    bool needsFullList() const override { return true; }
    bool needsGhostVelocities() const override { return true; }
    void compute(Simulation &sim, const NeighborList &list) override;

    /** Number of tracked contact histories (statistics). */
    std::size_t historyCount() const { return shear_.size(); }

  private:
    /** Directed key (tag of owner side, tag of other side). */
    static std::uint64_t contactKey(std::int64_t tagI, std::int64_t tagJ);

    double kn_;
    double kt_;
    double gamman_;
    double gammat_;
    double xmu_;
    double maxDiameter_;
    /** Tangential displacement per directed contact, persisted across
     *  neighbor rebuilds as the paper's "frictional history" requires. */
    std::unordered_map<std::uint64_t, Vec3> shear_;
};

} // namespace mdbench

#endif // MDBENCH_FORCEFIELD_PAIR_GRAN_HOOKE_HISTORY_H
