#include "forcefield/pair_eam.h"

#include <array>
#include <cmath>

#include "md/neighbor.h"
#include "md/simulation.h"
#include "obs/counters.h"
#include "obs/trace.h"
#include "util/error.h"

namespace mdbench {

EamTables
EamTables::makeSyntheticCopper(double cutoff, int points)
{
    require(points >= 16, "EAM table needs a reasonable resolution");

    // Copper-like constants: Morse pair term fitted to Cu dimer data and
    // an exponentially decaying density; both smoothly truncated so value
    // and slope vanish at the cutoff.
    const double morseD = 0.3429;   // eV
    const double morseA = 1.3588;   // 1/A
    const double r0 = 2.866;        // A, Cu dimer distance
    const double rhoAmp = 1.0;
    const double rhoBeta = 3.9;

    auto morse = [&](double r) {
        const double e = std::exp(-morseA * (r - r0));
        return morseD * ((1.0 - e) * (1.0 - e) - 1.0);
    };
    auto morseDeriv = [&](double r) {
        const double e = std::exp(-morseA * (r - r0));
        return 2.0 * morseD * morseA * e * (1.0 - e);
    };
    auto density = [&](double r) {
        return rhoAmp * std::exp(-rhoBeta * (r / r0 - 1.0));
    };
    auto densityDeriv = [&](double r) {
        return -rhoBeta / r0 * density(r);
    };

    const double rMin = 1.0; // below this, clamp (never sampled in a solid)
    const double dr = (cutoff - rMin) / (points - 1);
    std::vector<double> phiSamples(points);
    std::vector<double> rhoSamples(points);
    const double phiC = morse(cutoff);
    const double phiD = morseDeriv(cutoff);
    const double rhoC = density(cutoff);
    const double rhoD = densityDeriv(cutoff);
    for (int i = 0; i < points; ++i) {
        const double r = rMin + i * dr;
        phiSamples[i] = morse(r) - phiC - phiD * (r - cutoff);
        rhoSamples[i] = density(r) - rhoC - rhoD * (r - cutoff);
    }

    // Equilibrium host density: 12 fcc nearest neighbors at a/sqrt(2)
    // with a = 3.615 A.
    const double nn = 3.615 / std::sqrt(2.0);
    const double rhoE = 12.0 * (density(nn) - rhoC - rhoD * (nn - cutoff));
    const double embedF0 = 2.3; // eV-scale embedding strength
    const double rhoMax = 3.0 * rhoE;
    const double drho = rhoMax / (points - 1);
    std::vector<double> embedSamples(points);
    for (int i = 0; i < points; ++i) {
        const double rho = i * drho;
        embedSamples[i] = -embedF0 * std::sqrt(rho / rhoE);
    }

    EamTables tables;
    tables.phi = CubicSpline(rMin, dr, std::move(phiSamples));
    tables.rho = CubicSpline(rMin, dr, std::move(rhoSamples));
    tables.embed = CubicSpline(0.0, drho, std::move(embedSamples));
    tables.cutoff = cutoff;
    return tables;
}

PairEAM::PairEAM(EamTables tables) : tables_(std::move(tables))
{
    require(tables_.cutoff > 0.0, "EAM cutoff must be positive");
}

void
PairEAM::compute(Simulation &sim, const NeighborList &list)
{
    ensure(!list.full, "eam requires a half neighbor list");
    TraceScope trace("pair", "eam");
    counterAdd(Counter::PairComputes);
    counterAdd(Counter::PairInteractions, list.pairCount());
    resetAccumulators();
    AtomStore &atoms = sim.atoms;
    const std::size_t nlocal = atoms.nlocal();
    const std::size_t nall = atoms.nall();
    const double cutSq = tables_.cutoff * tables_.cutoff;

    ThreadPool &pool = ThreadPool::global();
    const SliceRange slices(0, nlocal, forceKernelGrain(nlocal));
    std::array<double, SliceRange::kMaxSlices> energySlice{};
    std::array<double, SliceRange::kMaxSlices> virialSlice{};

    // Pass 1: host electron densities. Both sides of every pair go
    // through the reduction scratch (see PairLJCut::compute);
    // runAndReduce folds the per-slice partial sums into rhoBar_ in
    // ascending slice order.
    rhoBar_.assign(nall, 0.0);
    const Vec3 *x = atoms.x.data();
    rhoScratch_.runAndReduce(pool, slices, nall, rhoBar_.data(), [&](
        std::size_t sliceBegin, std::size_t sliceEnd, int, int buffer) {
        auto rho = rhoScratch_.acc(buffer);
        for (std::size_t i = sliceBegin; i < sliceEnd; ++i) {
            const Vec3 xi = x[i];
            double rhoI = 0.0;
            const auto [begin, end] = list.range(i);
            for (std::uint32_t k = begin; k < end; ++k) {
                const std::uint32_t j = list.neighbors[k];
                const double r2 = (xi - x[j]).normSq();
                if (r2 >= cutSq)
                    continue;
                const double contribution =
                    tables_.rho.value(std::sqrt(r2));
                rhoI += contribution;
                rho.at(j) += contribution;
            }
            rho.at(i) += rhoI;
        }
    });
    sim.comm->reverseScalar(sim, rhoBar_);

    // Embedding energies and derivatives for owned atoms, then share the
    // derivatives with ghosts for the force pass. Purely per-atom.
    fp_.assign(nall, 0.0);
    pool.run(slices, [&](std::size_t sliceBegin, std::size_t sliceEnd,
                         int s) {
        double embedEnergy = 0.0;
        for (std::size_t i = sliceBegin; i < sliceEnd; ++i) {
            double value;
            double deriv;
            tables_.embed.eval(rhoBar_[i], value, deriv);
            embedEnergy += value;
            fp_[i] = deriv;
        }
        energySlice[s] = embedEnergy;
    });
    for (int s = 0; s < slices.count(); ++s)
        energy_ += energySlice[s];
    sim.comm->forwardScalar(sim, fp_);

    // Pass 2: forces from pair term + density-mediated embedding term.
    const double *fp = fp_.data();
    fscratch_.runAndReduce(pool, slices, nall, atoms.f.data(), [&](
        std::size_t sliceBegin, std::size_t sliceEnd, int s, int buffer) {
        auto fw = fscratch_.acc(buffer);
        double energy = 0.0;
        double virial = 0.0;
        for (std::size_t i = sliceBegin; i < sliceEnd; ++i) {
            const Vec3 xi = x[i];
            Vec3 fi{};
            const auto [begin, end] = list.range(i);
            for (std::uint32_t k = begin; k < end; ++k) {
                const std::uint32_t j = list.neighbors[k];
                const Vec3 delta = xi - x[j];
                const double r2 = delta.normSq();
                if (r2 >= cutSq)
                    continue;
                const double r = std::sqrt(r2);
                double phiV;
                double phiD;
                tables_.phi.eval(r, phiV, phiD);
                const double rhoD = tables_.rho.derivative(r);
                // -dE/dr along the pair axis.
                const double fScalar = -((fp[i] + fp[j]) * rhoD + phiD);
                const Vec3 fvec = delta * (fScalar / r);
                fi += fvec;
                fw.at(j) -= fvec;
                energy += phiV;
                virial += fScalar * r;
            }
            fw.at(i) += fi;
        }
        energySlice[s] = energy;
        virialSlice[s] = virial;
    });
    for (int s = 0; s < slices.count(); ++s) {
        energy_ += energySlice[s];
        virial_ += virialSlice[s];
    }
}

} // namespace mdbench
